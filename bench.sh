#!/usr/bin/env bash
# bench.sh — run the retrieval hot-path benchmarks and emit
# BENCH_hotpath.json, the perf trajectory future PRs compare against.
#
# Usage: ./bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")"

OUT="${1:-BENCH_hotpath.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Pin GOMAXPROCS so the -N suffix go test appends to benchmark names is
# known exactly (cgroup limits can make Go's effective value differ from
# nproc), keeping JSON keys stable across environments.
export GOMAXPROCS="${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}"

# Samples per bench; the JSON records the per-bench *minimum* ns/op —
# the noise-robust estimator on a shared 1-CPU box, where a single
# sample can swing either way by tens of percent (see the layout-noise
# note in ROADMAP.md). bench_compare.sh sets 3; the default 1 keeps
# ad-hoc trajectory runs fast.
COUNT="${BENCH_COUNT:-1}"

echo "== go vet ./... (tier-1 gate)" >&2
go vet ./...

# Which dense-kernel dispatch this machine runs (avx2 | purego) — the
# header names it so trajectories from different kernel sets are never
# compared blindly.
SIMD="$(go run ./cmd/simdprobe)"
echo "== simd dispatch: $SIMD" >&2

echo "== hot-path benchmarks" >&2
go test -run '^$' -bench 'BenchmarkHotPath' -benchmem -count "$COUNT" . | tee -a "$TMP" >&2
# BenchmarkSampleNeighbors also matches the Parallel (multi-core
# contention) and Batch (scatter-gather) variants.
go test -run '^$' -bench 'BenchmarkSampleNeighbors|BenchmarkSampleTree' -benchmem -count "$COUNT" ./internal/engine/ | tee -a "$TMP" >&2
go test -run '^$' -bench 'BenchmarkFocalBiased|BenchmarkBuildTree' -benchmem -count "$COUNT" ./internal/sampling/ | tee -a "$TMP" >&2
go test -run '^$' -bench 'BenchmarkServingEmbedding|BenchmarkEndToEndRequest|BenchmarkCacheRefresh' -benchmem -count "$COUNT" ./internal/serve/ | tee -a "$TMP" >&2
go test -run '^$' -bench 'BenchmarkSearchInto|BenchmarkQuantizedScan|BenchmarkFullPrecisionScan' -benchmem -count "$COUNT" ./internal/ann/ | tee -a "$TMP" >&2
# Dense kernels behind the dispatch seam: the dispatched and generic
# variants side by side quantify the SIMD win at serving dims.
go test -run '^$' -bench 'BenchmarkDot|BenchmarkMatVec|BenchmarkAxpy' -benchmem -count "$COUNT" ./internal/tensor/ | tee -a "$TMP" >&2
# Remote graph store: loopback TCP round trip, scatter-gather batch
# (serial + concurrent callers on the shared multiplexed pool) and the
# multi-shard remote tree.
go test -run '^$' -bench 'BenchmarkRPCRoundTrip|BenchmarkRemoteBatch$|BenchmarkRemoteBatchParallel|BenchmarkRemoteTree' -benchmem -count "$COUNT" ./internal/rpc/ | tee -a "$TMP" >&2
# Failover latency: first draw after a replica kill (fixed iteration
# count — every iteration rebuilds a 2-server cluster outside the timer)
# and steady-state draws with one replica dead.
go test -run '^$' -bench 'BenchmarkFailoverFirstDraw' -benchtime 50x -count 1 ./internal/rpc/ 2>/dev/null | tee -a "$TMP" >&2
go test -run '^$' -bench 'BenchmarkFailoverDeadReplica' -benchmem -count "$COUNT" ./internal/rpc/ 2>/dev/null | tee -a "$TMP" >&2
# Write path: WAL append throughput (fsync-batched group commit) and the
# delta layer — copy-on-write apply and post-compaction mixture draws.
go test -run '^$' -bench 'BenchmarkWALAppend' -benchmem -count "$COUNT" ./internal/ingest/ | tee -a "$TMP" >&2
go test -run '^$' -bench 'BenchmarkDeltaApply|BenchmarkDeltaSample' -benchmem -count "$COUNT" ./internal/engine/ | tee -a "$TMP" >&2
go test -run '^$' -bench 'BenchmarkAblationAlias' -benchmem -count "$COUNT" . | tee -a "$TMP" >&2

# Fold "BenchmarkName  N  x ns/op  y B/op  z allocs/op" lines into JSON,
# keeping the minimum ns/op per bench across the $COUNT samples (B/op
# and allocs/op are deterministic; the fastest sample's values ride
# along). The header records GOMAXPROCS and the machine CPU count so
# multi-core and 1-CPU trajectories are distinguishable across boxes.
NUM_CPU="$(nproc 2>/dev/null || echo 1)"
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v procs="$GOMAXPROCS" -v cpus="$NUM_CPU" -v simd="$SIMD" '
/^Benchmark/ {
    name = $1
    # go test appends -GOMAXPROCS only when it exceeds 1; strip exactly it
    # so subtest suffixes like alias-deg-256 survive.
    if (procs > 1) sub("-" procs "$", "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!(name in min_ns)) {
        order[++n] = name
    } else if (ns + 0 >= min_ns[name] + 0) {
        next
    }
    min_ns[name] = ns; min_b[name] = bytes; min_a[name] = allocs
}
END {
    print "{"
    printf "  \"generated\": \"%s\",\n  \"gomaxprocs\": %d,\n  \"num_cpu\": %d,\n  \"simd\": \"%s\",\n  \"benchmarks\": {\n", date, procs, cpus, simd
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
            name, min_ns[name], (min_b[name] == "" ? "null" : min_b[name]), \
            (min_a[name] == "" ? "null" : min_a[name]), (i < n ? "," : "")
    }
    print "  }\n}"
}
' "$TMP" > "$OUT.new"

# Preserve the committed "baseline" section (the pre-refactor numbers PR 1
# recorded) so every regeneration keeps the comparison anchor. Refuse to
# clobber it silently when the merge tool is missing.
if [ -f "$OUT" ] && grep -q '"baseline"' "$OUT" && ! command -v python3 >/dev/null; then
    echo "error: $OUT has a baseline section but python3 is unavailable to preserve it; aborting" >&2
    exit 1
fi
if [ -f "$OUT" ] && command -v python3 >/dev/null; then
    python3 - "$OUT" "$OUT.new" <<'PY'
import json, sys
old_path, new_path = sys.argv[1], sys.argv[2]
try:
    with open(old_path) as f:
        old = json.load(f)
except Exception:
    old = {}
with open(new_path) as f:
    new = json.load(f)
if "baseline" in old:
    new["baseline"] = old["baseline"]
with open(new_path, "w") as f:
    json.dump(new, f, indent=2)
    f.write("\n")
PY
fi
mv "$OUT.new" "$OUT"

echo "wrote $OUT" >&2
