// A/B test: the Table IV scenario — train Zoomer and PinSage, put each
// behind a retrieval channel, replay the same traffic through both under
// a shared click/pricing model, and report CTR/PPC/RPM lifts.
package main

import (
	"fmt"

	"zoomer/internal/abtest"
	"zoomer/internal/baselines"
	"zoomer/internal/core"
	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/partition"
)

func main() {
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 51))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	// Both models train through a sharded engine view of the graph.
	eng := engine.New(res.Graph, engine.Config{Shards: 4, Replicas: 1, Strategy: partition.Hash, Locality: true})
	defer eng.Close()
	g := core.EngineView{Engine: eng, M: res.Mapping}
	ds := loggen.BuildExamples(logs, 1, 0.2, 52)
	train := core.InstancesFromExamples(ds.Train, res.Mapping)
	test := core.InstancesFromExamples(ds.Test, res.Mapping)

	zcfg := core.DefaultConfig()
	zcfg.EmbedDim, zcfg.OutDim = 16, 16
	zcfg.Hops, zcfg.FanOut = 1, 5
	bcfg := baselines.DefaultConfig()
	bcfg.EmbedDim, bcfg.OutDim = 16, 16
	bcfg.Hops, bcfg.FanOut = 1, 5

	zoomer := core.NewZoomer(g, logs.Vocab(), zcfg, 53)
	pinsage := baselines.NewPinSage(g, logs.Vocab(), bcfg, 54)

	tc := core.DefaultTrainConfig()
	tc.Epochs = 2
	tc.MaxSteps = 250
	fmt.Println("training both channels...")
	zres := core.Train(zoomer, train, test, tc)
	pres := core.Train(pinsage, train, test, tc)
	fmt.Printf("zoomer AUC %.3f | pinsage AUC %.3f\n", zres.TestAUC, pres.TestAUC)

	items := res.Mapping.NodesOfType(graph.Item)
	control := abtest.NewModelChannel("pinsage", pinsage, items, 55)
	treatment := abtest.NewModelChannel("zoomer", zoomer, items, 56)
	traffic := abtest.TrafficFromLogs(logs, res.Mapping, 120)

	// Each arm serves from its own live engine config; the read surfaces
	// are bit-identical, so the lift isolates the models.
	controlEng := engine.New(res.Graph, engine.Config{Shards: 2, Replicas: 1, Strategy: partition.DegreeBalanced, Locality: false})
	defer controlEng.Close()
	out := abtest.RunArms(g, traffic,
		abtest.Arm{Channel: control, View: core.EngineView{Engine: controlEng, M: res.Mapping}},
		abtest.Arm{Channel: treatment, View: g},
		abtest.DefaultConfig())
	fmt.Printf("control   (pinsage): CTR %.4f  PPC %.3f  RPM %.2f\n",
		out.Control.CTR(), out.Control.PPC(), out.Control.RPM())
	fmt.Printf("treatment (zoomer):  CTR %.4f  PPC %.3f  RPM %.2f\n",
		out.Treatment.CTR(), out.Treatment.PPC(), out.Treatment.RPM())
	fmt.Printf("lifts: CTR %+.2f%%  PPC %+.2f%%  RPM %+.2f%%\n",
		out.CTRLift, out.PPCLift, out.RPMLift)
}
