// Search retrieval: the full production path of Fig. 3/Fig. 7 — train
// Zoomer, export the trimmed serving weights, index item embeddings in
// the two-layer inverted index, and retrieve items for live search
// requests through the neighbor-cache serving stack.
package main

import (
	"fmt"

	"zoomer/internal/ann"
	"zoomer/internal/core"
	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/rng"
	"zoomer/internal/serve"
	"zoomer/internal/tensor"
)

func main() {
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 7))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	g := res.Graph
	ds := loggen.BuildExamples(logs, 1, 0.2, 8)
	train := core.InstancesFromExamples(ds.Train, res.Mapping)
	test := core.InstancesFromExamples(ds.Test, res.Mapping)

	cfg := core.DefaultConfig()
	cfg.EmbedDim, cfg.OutDim = 16, 16
	cfg.Hops, cfg.FanOut = 1, 5
	model := core.NewZoomer(g, logs.Vocab(), cfg, 9)
	tc := core.DefaultTrainConfig()
	tc.MaxSteps = 200
	out := core.Train(model, train, test, tc)
	fmt.Printf("trained: AUC %.3f\n", out.TestAUC)

	// Export for serving: static node embeddings + edge-attention-only
	// aggregation (§VII-E's trimmed online model).
	emb := serve.NewEmbedder(model.ExportServing())

	// Index all item embeddings in the IVF index (iGraph stand-in).
	items := g.NodesOfType(graph.Item)
	ids := make([]int64, len(items))
	vecs := make([]tensor.Vec, len(items))
	for i, it := range items {
		ids[i] = int64(it)
		vecs[i] = emb.Item(it)
	}
	index := ann.Build(ids, vecs, ann.Config{NumLists: 8, Iters: 6, Seed: 10})
	fmt.Printf("indexed %d items into %d inverted lists\n", index.Len(), index.NumLists())

	// Serving stack: sharded graph engine + async neighbor cache.
	eng := engine.New(g, engine.DefaultConfig())
	cache := serve.NewNeighborCache(eng, 30, 11)
	defer cache.Close()

	// Retrieve for a few real requests from the logs.
	r := rng.New(12)
	traffic := 0
	for _, s := range logs.Sessions {
		for _, ev := range s.Events {
			u := res.Mapping.UserNode(s.User)
			q := res.Mapping.QueryNode(ev.Query)
			eu, eq2 := cache.Get(u, r), cache.Get(q, r)
			uq := emb.UserQuery(u, q, eu.Neighbors(), eq2.Neighbors(), nil)
			eu.Release()
			eq2.Release()
			top := index.Search(uq, 5, 4)
			fmt.Printf("user %d query %d ->", s.User, ev.Query)
			for _, t := range top {
				fmt.Printf(" item%d(%.2f)", g.LocalIndex(graph.NodeID(t.ID)), t.Score)
			}
			fmt.Println()
			traffic++
			if traffic == 5 {
				hits, misses, _ := cache.Stats()
				fmt.Printf("cache: %d hits, %d misses\n", hits, misses)
				return
			}
		}
	}
}
