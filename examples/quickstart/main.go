// Quickstart: generate a small behavior-log world, build the retrieval
// graph, train Zoomer for a few hundred steps, and score some requests —
// the minimal end-to-end path through the public API.
package main

import (
	"fmt"

	"zoomer/internal/core"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

func main() {
	// 1. Synthesize behavior logs (stand-in for production click logs).
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 42))
	fmt.Printf("world: %d users, %d queries, %d items, %d sessions\n",
		len(logs.Users), len(logs.Queries), len(logs.Items), len(logs.Sessions))

	// 2. Build the heterogeneous retrieval graph (interaction + MinHash
	//    similarity edges).
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	st := res.Graph.Stats()
	fmt.Printf("graph: %d nodes, %d edges (mean degree %.1f)\n", st.Nodes, st.Edges, st.MeanDegree)

	// 3. Extract labeled CTR examples and split train/test.
	ds := loggen.BuildExamples(logs, 1, 0.2, 43)
	train := core.InstancesFromExamples(ds.Train, res.Mapping)
	test := core.InstancesFromExamples(ds.Test, res.Mapping)

	// 4. Train Zoomer: focal-biased ROI sampling + multi-level attention.
	cfg := core.DefaultConfig()
	cfg.EmbedDim, cfg.OutDim = 16, 16
	cfg.Hops, cfg.FanOut = 1, 5
	model := core.NewZoomer(res.Graph, logs.Vocab(), cfg, 44)

	tc := core.DefaultTrainConfig()
	tc.Epochs = 2
	tc.MaxSteps = 200
	out := core.Train(model, train, test, tc)
	fmt.Printf("trained %d steps in %.1fs — test AUC %.3f\n",
		out.Steps, out.Duration.Seconds(), out.TestAUC)

	// 5. Score a request: how well does each candidate item match this
	//    user's current query intent?
	r := rng.New(45)
	ex := test[0]
	uq := model.UserQueryEmbedding(ex.User, ex.Query, r)
	fmt.Println("top matches for one (user, query) request:")
	type scored struct {
		item  int32
		score float32
	}
	var best []scored
	for i := 0; i < 10; i++ {
		item := res.Mapping.ItemNode(i)
		s := tensor.Cosine(uq, model.ItemEmbedding(item, r))
		best = append(best, scored{int32(i), s})
	}
	for _, b := range best {
		fmt.Printf("  item %3d  score %+.3f\n", b.item, b.score)
	}
}
