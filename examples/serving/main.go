// Serving: the Fig. 9 scenario in miniature — run the online retrieval
// service (trimmed model, async neighbor cache, IVF index) under rising
// offered load and watch response time climb as the worker pool
// saturates. The graph sits behind the partitioned engine: -shards /
// -replicas size the store, and the sweep prints how load spreads over
// the shards.
package main

import (
	"flag"
	"fmt"
	"time"

	"zoomer/internal/ann"
	"zoomer/internal/core"
	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/serve"
	"zoomer/internal/tensor"
)

func main() {
	shards := flag.Int("shards", 4, "graph engine partitions")
	replicas := flag.Int("replicas", 2, "replicas per shard")
	flag.Parse()

	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 31))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	g := res.Graph

	cfg := core.DefaultConfig()
	cfg.EmbedDim, cfg.OutDim = 16, 16
	cfg.Hops, cfg.FanOut = 1, 5
	model := core.NewZoomer(g, logs.Vocab(), cfg, 32)
	// Untrained weights are fine: serving latency is weight-independent.

	emb := serve.NewEmbedder(model.ExportServing())
	eng := engine.New(g, engine.Config{Shards: *shards, Replicas: *replicas})
	es := eng.Stats()
	fmt.Printf("engine: %d shards x %d replicas, nodes/shard %v\n",
		es.Shards, es.Replicas, es.NodesPerShard)
	cache := serve.NewNeighborCache(eng, 30, 33)
	defer cache.Close()

	items := g.NodesOfType(graph.Item)
	ids := make([]int64, len(items))
	vecs := make([]tensor.Vec, len(items))
	for i, it := range items {
		ids[i] = int64(it)
		vecs[i] = emb.Item(it)
	}
	index := ann.Build(ids, vecs, ann.Config{NumLists: 8, Iters: 4, Seed: 34})

	scfg := serve.DefaultConfig()
	scfg.Workers = 2
	srv := serve.NewServer(emb, cache, index, scfg)
	defer srv.Close()

	users := g.NodesOfType(graph.User)
	queries := g.NodesOfType(graph.Query)
	serve.LoadTest(srv, users, queries, 500, 100*time.Millisecond, 35) // warm caches

	fmt.Printf("%-8s  %-12s  %-12s  %-8s  %s\n", "QPS", "mean RT", "p99 RT", "served", "shard load")
	prev := eng.Stats().RequestsPerShard
	for i, qps := range []float64{500, 2000, 8000, 30000} {
		st := serve.LoadTest(srv, users, queries, qps, 300*time.Millisecond, 36+uint64(i))
		cur := eng.Stats().RequestsPerShard
		loads := make([]int64, len(cur))
		for s := range loads {
			loads[s] = cur[s] - prev[s]
		}
		prev = cur
		fmt.Printf("%-8.0f  %-12s  %-12s  %-8d  %v\n", qps, st.MeanRT, st.P99, st.Served, loads)
	}
	hits, misses, refreshes := cache.Stats()
	fmt.Printf("cache: %d hits / %d misses / %d async refreshes\n", hits, misses, refreshes)
	final := eng.Stats()
	fmt.Printf("engine: per-shard requests %v (imbalance %.2f)\n", final.RequestsPerShard, final.Imbalance)
}
