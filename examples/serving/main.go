// Serving: the Fig. 9 scenario in miniature — run the online retrieval
// service (trimmed model, async neighbor cache, IVF index) under rising
// offered load and watch response time climb as the worker pool
// saturates. The graph sits behind the partitioned engine: -shards /
// -replicas size the store, and the sweep prints how load spreads over
// the shards. With -remote the partitions are served by two in-process
// TCP shard servers and the serving tier talks to them over loopback —
// the full distributed deployment in one binary, returning bit-identical
// samples to the in-process engine.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"zoomer/internal/ann"
	"zoomer/internal/core"
	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/rpc"
	"zoomer/internal/serve"
	"zoomer/internal/tensor"
)

func main() {
	shards := flag.Int("shards", 4, "graph engine partitions")
	replicas := flag.Int("replicas", 2, "replicas per shard")
	remote := flag.Bool("remote", false, "serve the shards over loopback TCP instead of in-process")
	flag.Parse()

	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 31))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	g := res.Graph

	cfg := core.DefaultConfig()
	cfg.EmbedDim, cfg.OutDim = 16, 16
	cfg.Hops, cfg.FanOut = 1, 5
	model := core.NewZoomer(g, logs.Vocab(), cfg, 32)
	// Untrained weights are fine: serving latency is weight-independent.

	emb := serve.NewEmbedder(model.ExportServing())
	var eng *engine.Engine
	if *remote {
		// Two shard servers splitting the partitions, exactly as separate
		// zoomer-shard processes would.
		half := (*shards + 1) / 2
		var addrs []string
		for _, owned := range [][]int{seq(0, half), seq(half, *shards)} {
			if len(owned) == 0 {
				continue
			}
			srv := rpc.NewServer(g, rpc.ServerConfig{Shards: *shards, Owned: owned, Replicas: *replicas})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			srv.Start(ln)
			defer srv.Close()
			addrs = append(addrs, ln.Addr().String())
		}
		cluster, err := rpc.DialCluster(addrs...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer cluster.Close()
		eng = cluster.Engine
		fmt.Printf("engine: %d remote shards behind %d loopback servers %v\n",
			eng.NumShards(), len(addrs), addrs)
	} else {
		eng = engine.New(g, engine.Config{Shards: *shards, Replicas: *replicas})
	}
	es := eng.Stats()
	fmt.Printf("engine: %d shards x %d replicas, nodes/shard %v\n",
		es.Shards, es.Replicas, es.NodesPerShard)
	cache := serve.NewNeighborCache(eng, 30, 33)
	defer cache.Close()

	items := g.NodesOfType(graph.Item)
	ids := make([]int64, len(items))
	vecs := make([]tensor.Vec, len(items))
	for i, it := range items {
		ids[i] = int64(it)
		vecs[i] = emb.Item(it)
	}
	index := ann.Build(ids, vecs, ann.Config{NumLists: 8, Iters: 4, Seed: 34})

	scfg := serve.DefaultConfig()
	scfg.Workers = 2
	srv := serve.NewServer(emb, cache, index, scfg)
	defer srv.Close()

	users := g.NodesOfType(graph.User)
	queries := g.NodesOfType(graph.Query)
	if _, err := serve.LoadTest(srv, users, queries, 500, 100*time.Millisecond, 35); err != nil { // warm caches
		panic(err)
	}

	fmt.Printf("%-8s  %-12s  %-12s  %-8s  %s\n", "QPS", "mean RT", "p99 RT", "served", "shard load")
	prev := eng.Stats().RequestsPerShard
	for i, qps := range []float64{500, 2000, 8000, 30000} {
		st, err := serve.LoadTest(srv, users, queries, qps, 300*time.Millisecond, 36+uint64(i))
		if err != nil {
			panic(err)
		}
		cur := eng.Stats().RequestsPerShard
		loads := make([]int64, len(cur))
		for s := range loads {
			loads[s] = cur[s] - prev[s]
		}
		prev = cur
		fmt.Printf("%-8.0f  %-12s  %-12s  %-8d  %v\n", qps, st.MeanRT, st.P99, st.Served, loads)
	}
	hits, misses, refreshes := cache.Stats()
	fmt.Printf("cache: %d hits / %d misses / %d async refreshes\n", hits, misses, refreshes)
	final := eng.Stats()
	fmt.Printf("engine: per-shard requests %v (imbalance %.2f)\n", final.RequestsPerShard, final.Imbalance)
}

// seq returns [lo, hi) as a slice.
func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
