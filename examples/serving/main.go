// Serving: the Fig. 9 scenario in miniature — run the online retrieval
// service (trimmed model, async neighbor cache, IVF index) under rising
// offered load and watch response time climb as the worker pool
// saturates.
package main

import (
	"fmt"
	"time"

	"zoomer/internal/ann"
	"zoomer/internal/core"
	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/serve"
	"zoomer/internal/tensor"
)

func main() {
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 31))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	g := res.Graph

	cfg := core.DefaultConfig()
	cfg.EmbedDim, cfg.OutDim = 16, 16
	cfg.Hops, cfg.FanOut = 1, 5
	model := core.NewZoomer(g, logs.Vocab(), cfg, 32)
	// Untrained weights are fine: serving latency is weight-independent.

	emb := serve.NewEmbedder(model.ExportServing())
	eng := engine.New(g, engine.DefaultConfig())
	cache := serve.NewNeighborCache(eng, 30, 33)
	defer cache.Close()

	items := g.NodesOfType(graph.Item)
	ids := make([]int64, len(items))
	vecs := make([]tensor.Vec, len(items))
	for i, it := range items {
		ids[i] = int64(it)
		vecs[i] = emb.Item(it)
	}
	index := ann.Build(ids, vecs, ann.Config{NumLists: 8, Iters: 4, Seed: 34})

	scfg := serve.DefaultConfig()
	scfg.Workers = 2
	srv := serve.NewServer(emb, cache, index, scfg)
	defer srv.Close()

	users := g.NodesOfType(graph.User)
	queries := g.NodesOfType(graph.Query)
	serve.LoadTest(srv, users, queries, 500, 100*time.Millisecond, 35) // warm caches

	fmt.Printf("%-8s  %-12s  %-12s  %s\n", "QPS", "mean RT", "p99 RT", "served")
	for i, qps := range []float64{500, 2000, 8000, 30000} {
		st := serve.LoadTest(srv, users, queries, qps, 300*time.Millisecond, 36+uint64(i))
		fmt.Printf("%-8.0f  %-12s  %-12s  %d\n", qps, st.MeanRT, st.P99, st.Served)
	}
	hits, misses, refreshes := cache.Stats()
	fmt.Printf("cache: %d hits / %d misses / %d async refreshes\n", hits, misses, refreshes)
}
