// MovieLens benchmark: the Table II scenario — compare Zoomer against a
// heterogeneous-attention baseline (HAN) on the MovieLens-mode dataset
// (user/tag/movie graph, one-hop aggregation, binary interacted-under-tag
// labels).
package main

import (
	"fmt"

	"zoomer/internal/baselines"
	"zoomer/internal/core"
	"zoomer/internal/engine"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/partition"
)

func main() {
	cfg := loggen.MovieLensConfig(21)
	// Keep the example fast; the full-size run lives in the Table II
	// harness (cmd/zoomer-experiments -exp table2).
	cfg.Users, cfg.Queries, cfg.Items = 300, 60, 400
	cfg.Topics = 8
	logs := loggen.MustGenerate(cfg)
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	fmt.Printf("movielens world: %d users, %d tags, %d movies\n",
		len(logs.Users), len(logs.Queries), len(logs.Items))

	ds := loggen.BuildExamples(logs, 1, 0.2, 22)
	train := core.InstancesFromExamples(ds.Train, res.Mapping)
	test := core.InstancesFromExamples(ds.Test, res.Mapping)
	fmt.Printf("examples: %d train / %d test\n", len(train), len(test))

	// Train through the sharded engine — the same read path the serving
	// tier uses; draws are bit-identical to the monolithic graph.
	eng := engine.New(res.Graph, engine.Config{Shards: 2, Replicas: 1, Strategy: partition.Hash, Locality: true})
	defer eng.Close()
	view := core.EngineView{Engine: eng, M: res.Mapping}

	v := logs.Vocab()
	zcfg := core.DefaultConfig()
	zcfg.EmbedDim, zcfg.OutDim = 16, 16
	zcfg.Hops, zcfg.FanOut = 1, 5 // MovieLens uses one-hop aggregation
	bcfg := baselines.DefaultConfig()
	bcfg.EmbedDim, bcfg.OutDim = 16, 16
	bcfg.Hops, bcfg.FanOut = 1, 5

	models := []core.Model{
		baselines.NewHAN(view, v, bcfg, 23),
		core.NewZoomer(view, v, zcfg, 24),
	}
	tc := core.DefaultTrainConfig()
	tc.Epochs = 2
	tc.MaxSteps = 300
	for _, m := range models {
		out := core.Train(m, train, test, tc)
		fmt.Printf("%-8s AUC %.2f (%d steps, %.1fs)\n",
			m.Name(), out.TestAUC*100, out.Steps, out.Duration.Seconds())
	}
}
