// Package main_test is the benchmark harness of deliverable (d): one
// testing.B benchmark per table and figure of the paper's evaluation,
// each driving the corresponding experiment harness (CI-sized budgets —
// run cmd/zoomer-experiments without -quick for the full-size rows), plus
// the design-choice ablation benches called out in DESIGN.md §5.
package main_test

import (
	"testing"
	"time"

	"zoomer/internal/alias"
	"zoomer/internal/experiments"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/ps"
	"zoomer/internal/rng"
	"zoomer/internal/sampling"
	"zoomer/internal/tensor"
)

func quickOpts(seed uint64) experiments.Options {
	return experiments.Options{Seed: seed, Quick: true}
}

// --- One benchmark per paper table/figure -------------------------------

func BenchmarkFig4aTrainingCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4a(quickOpts(uint64(i) + 1))
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig4bQueryDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4b(quickOpts(uint64(i) + 1))
		if res.Pairs == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig4cFocalSimilarityCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4c(quickOpts(uint64(i) + 1))
		if len(res.ShortCDF) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable2MovieLens(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(quickOpts(uint64(i) + 1))
		if len(res.Rows) != 6 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkTable3TaobaoGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(quickOpts(uint64(i) + 1))
		if len(res.Rows) != 10 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkFig8Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(quickOpts(uint64(i) + 1))
		if len(res.Cells) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable4ABTest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table4(quickOpts(uint64(i) + 1))
		if res.Control.Impressions == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig9ServingLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(quickOpts(uint64(i) + 1))
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig10TrainingTimeVsScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10(quickOpts(uint64(i) + 1))
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig11SamplingNumber(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11(quickOpts(uint64(i) + 1))
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig12EfficiencyEffectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig12(quickOpts(uint64(i) + 1))
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig13Interpretability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig13(quickOpts(uint64(i) + 1))
		if len(res.FixedUser) == 0 && len(res.FixedQuery) == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- Design-choice ablations (DESIGN.md §5) ------------------------------

// BenchmarkAblationRelevanceScore compares the paper's eq. (5) Tanimoto
// relevance against the cosine replacement it mentions, on the sampler's
// hot path.
func BenchmarkAblationRelevanceScore(b *testing.B) {
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 1))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	g := res.Graph
	var ego graph.NodeID
	for id := 0; id < g.NumNodes(); id++ {
		if g.Degree(graph.NodeID(id)) >= 10 {
			ego = graph.NodeID(id)
			break
		}
	}
	focal := tensor.Copy(g.Content(ego))
	for _, bc := range []struct {
		name string
		rel  sampling.RelevanceFunc
	}{
		{"tanimoto-eq5", sampling.TanimotoRelevance},
		{"cosine", sampling.CosineRelevance},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s := &sampling.FocalBiased{Relevance: bc.rel}
			r := rng.New(2)
			for i := 0; i < b.N; i++ {
				_ = s.Sample(g, ego, focal, 5, r, nil)
			}
		})
	}
}

// BenchmarkAblationAlias compares the graph engine's O(1) alias-table
// sampling against a linear CDF scan, across degrees.
func BenchmarkAblationAlias(b *testing.B) {
	for _, degree := range []int{16, 256, 4096} {
		r := rng.New(3)
		weights := make([]float64, degree)
		var total float64
		for i := range weights {
			weights[i] = r.Float64() + 0.01
			total += weights[i]
		}
		tab := alias.MustNew(weights)
		b.Run(formatInt("alias-deg", degree), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = tab.Sample(r)
			}
		})
		b.Run(formatInt("linear-deg", degree), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x := r.Float64() * total
				for j, w := range weights {
					x -= w
					if x <= 0 {
						_ = j
						break
					}
				}
			}
		})
	}
}

// BenchmarkAblationAsyncPS compares asynchronous against synchronous
// parameter-server updates on the distributed MF trainer.
func BenchmarkAblationAsyncPS(b *testing.B) {
	r := rng.New(4)
	var examples []ps.MFExample
	for i := 0; i < 2000; i++ {
		u := int32(r.Intn(40))
		it := int32(r.Intn(40))
		label := float32(0)
		if (u < 20) == (it < 20) {
			label = 1
		}
		examples = append(examples, ps.MFExample{User: u, Item: it, Label: label})
	}
	for _, mode := range []struct {
		name string
		sync bool
	}{{"async", false}, {"sync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := ps.TrainMF(examples, ps.MFConfig{
					Dim: 8, Workers: 4, Epochs: 2, LR: 0.1, Sync: mode.sync, Seed: 5,
				})
				if res.TrainAUC < 0.5 {
					b.Fatal("training diverged")
				}
			}
		})
	}
}

// BenchmarkAblationPipeline compares the 3-stage asynchronous training
// pipeline of §VI against sequential stage execution.
func BenchmarkAblationPipeline(b *testing.B) {
	items := make([]any, 24)
	for i := range items {
		items[i] = i
	}
	stage := func(v any) any { time.Sleep(200 * time.Microsecond); return v }
	stages := []ps.Stage{stage, stage, stage}
	b.Run("pipelined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ps.RunPipeline(items, stages, 4)
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ps.RunSequential(items, stages)
		}
	})
}

func formatInt(prefix string, v int) string {
	return prefix + "-" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
