#!/bin/sh
# gateway-smoke: end-to-end exercise of the containerized topology's
# process graph without a container runtime — two zoomer-shard servers,
# a zoomer-gateway front door dialed to them over TCP, and a
# zoomer-loadgen sweep with one light point and one overload point.
#
# Asserts the full degradation ladder on the overload point (degraded
# cache-only answers, 503 sheds or 504 deadline misses — never a
# transport failure), then SIGTERMs the gateway and requires a clean
# graceful drain (exit 0, "gateway stopped" logged). Chained into
# `make ci` as the serving tier's acceptance test.
set -eu

cd "$(dirname "$0")/.."
WORK=$(mktemp -d)
SHARD0_PID='' SHARD1_PID='' GATEWAY_PID=''

cleanup() {
	for pid in "$GATEWAY_PID" "$SHARD0_PID" "$SHARD1_PID"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	# Reap whatever is still up so the temp dir is not busy.
	wait 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "gateway-smoke: building binaries..."
go build -o "$WORK/zoomer-shard" ./cmd/zoomer-shard
go build -o "$WORK/zoomer-gateway" ./cmd/zoomer-gateway
go build -o "$WORK/zoomer-loadgen" ./cmd/zoomer-loadgen

# Fixed loopback ports high enough to dodge the usual suspects.
S0=127.0.0.1:7481
S1=127.0.0.1:7482
GW=127.0.0.1:8491

# The world must match across every process: tiny scale, seed 1, two
# hash partitions, one per server.
"$WORK/zoomer-shard" -scale tiny -seed 1 -shards 2 -own 0 -replicas 1 \
	-listen "$S0" >"$WORK/shard0.log" 2>&1 &
SHARD0_PID=$!
"$WORK/zoomer-shard" -scale tiny -seed 1 -shards 2 -own 1 -replicas 1 \
	-listen "$S1" >"$WORK/shard1.log" 2>&1 &
SHARD1_PID=$!

wait_serving() { # $1 = logfile, $2 = name
	i=0
	while ! grep -q "^serving shards" "$1" 2>/dev/null; do
		i=$((i + 1))
		if [ "$i" -gt 240 ]; then
			echo "gateway-smoke: $2 never came up:" >&2
			cat "$1" >&2
			exit 1
		fi
		sleep 0.5
	done
}
wait_serving "$WORK/shard0.log" shard0
wait_serving "$WORK/shard1.log" shard1

# A deliberately tiny admission window (cap 2, soft threshold 1) so the
# overload point is guaranteed to climb the degradation ladder even on
# a fast box: any two overlapping requests already degrade the second.
"$WORK/zoomer-gateway" -scale tiny -seed 1 -train 25 -listen "$GW" \
	-remote "$S0,$S1" -max-inflight 2 -shed-frac 0.5 \
	>"$WORK/gateway.log" 2>&1 &
GATEWAY_PID=$!

echo "gateway-smoke: sweeping (loadgen waits for /healthz)..."
"$WORK/zoomer-loadgen" -target "http://$GW" -qps 50,4000 -duration 2s \
	-warmup 300ms -concurrency 128 | tee "$WORK/sweep.txt"

# Table columns: QPS sent ok degraded shed deadline failed local_sat ...
awk '
	/^QPS/ { header = 1; next }
	header && NF >= 8 {
		rows++; ok += $3; degr += $4; shed += $5; dlx += $6; failed += $7
	}
	END {
		if (rows < 2) { print "gateway-smoke: expected 2 sweep rows, got " rows; exit 1 }
		if (ok == 0) { print "gateway-smoke: no successful retrievals"; exit 1 }
		if (failed != 0) { print "gateway-smoke: " failed " transport failures"; exit 1 }
		if (degr + shed + dlx == 0) { print "gateway-smoke: overload never engaged the degradation ladder"; exit 1 }
		print "gateway-smoke: ok=" ok " degraded=" degr " shed=" shed " deadline=" dlx " failed=0"
	}
' "$WORK/sweep.txt"

echo "gateway-smoke: probing binary + metrics endpoints..."
curl -fsS "http://$GW/v1/retrieve.bin?rand=1" >"$WORK/answer.bin"
if [ "$(head -c 4 "$WORK/answer.bin")" != "ZGR1" ]; then
	echo "gateway-smoke: binary endpoint did not answer a ZGR1 frame" >&2
	exit 1
fi
curl -fsS "http://$GW/metrics" >"$WORK/metrics.txt"
grep -q '^zoomer_gateway_requests_total' "$WORK/metrics.txt" || {
	echo "gateway-smoke: metrics endpoint missing request counters" >&2
	exit 1
}

echo "gateway-smoke: draining gateway (SIGTERM)..."
kill -TERM "$GATEWAY_PID"
DRAIN_RC=0
wait "$GATEWAY_PID" || DRAIN_RC=$?
GATEWAY_PID=''
if [ "$DRAIN_RC" -ne 0 ]; then
	echo "gateway-smoke: gateway exited $DRAIN_RC on SIGTERM:" >&2
	tail -20 "$WORK/gateway.log" >&2
	exit 1
fi
if ! grep -q "gateway stopped" "$WORK/gateway.log"; then
	echo "gateway-smoke: graceful drain did not complete:" >&2
	tail -20 "$WORK/gateway.log" >&2
	exit 1
fi

echo "gateway-smoke: PASS"
