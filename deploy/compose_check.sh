#!/bin/sh
# compose-check: lint the deploy topology. Prefers a real
# `docker compose config` validation when a compose plugin exists;
# otherwise falls back to a structural YAML check (parses, has the
# expected services, every service names a command). Chained into
# `make ci` so a broken topology file cannot land.
set -eu

cd "$(dirname "$0")/.."
FILE=deploy/docker-compose.yml

if docker compose version >/dev/null 2>&1; then
	docker compose -f "$FILE" config -q
	echo "compose-check: docker compose config OK"
	exit 0
fi
if command -v docker-compose >/dev/null 2>&1; then
	docker-compose -f "$FILE" config -q
	echo "compose-check: docker-compose config OK"
	exit 0
fi

python3 - "$FILE" <<'EOF'
import sys, yaml

with open(sys.argv[1]) as f:
    doc = yaml.safe_load(f)

services = doc.get("services")
if not isinstance(services, dict):
    sys.exit("compose-check: no services mapping")
for want in ("shard0", "shard1", "gateway", "loadgen"):
    if want not in services:
        sys.exit(f"compose-check: missing service {want}")
for name, svc in services.items():
    if not isinstance(svc, dict):
        sys.exit(f"compose-check: service {name} is not a mapping")
    if "command" not in svc:
        sys.exit(f"compose-check: service {name} has no command")
    for dep in svc.get("depends_on", []):
        if dep not in services:
            sys.exit(f"compose-check: {name} depends on unknown service {dep}")
print("compose-check: structural YAML check OK (no compose plugin found)")
EOF
