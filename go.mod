module zoomer

go 1.22
