#!/usr/bin/env bash
# bench_compare.sh — re-run the benchmark suite and fail if any hot-path
# bench (BenchmarkHotPath*) regresses more than 20% in ns/op against the
# committed BENCH_hotpath.json, or stops being allocation-free.
#
# Usage: ./bench_compare.sh [baseline.json]   (env THRESH=1.20 to tune)
set -euo pipefail
cd "$(dirname "$0")"

BASE="${1:-BENCH_hotpath.json}"
THRESH="${THRESH:-1.20}"
if [ ! -f "$BASE" ]; then
    echo "error: baseline $BASE not found (run ./bench.sh first)" >&2
    exit 1
fi
command -v python3 >/dev/null || { echo "error: python3 required" >&2; exit 1; }

NOW="$(mktemp /tmp/bench_now.XXXXXX.json)"
trap 'rm -f "$NOW"' EXIT
./bench.sh "$NOW"

python3 - "$BASE" "$NOW" "$THRESH" <<'PY'
import json, sys

base_path, now_path, thresh = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(base_path) as f:
    base = json.load(f)["benchmarks"]
with open(now_path) as f:
    now = json.load(f)["benchmarks"]

failed = False
print(f"{'hot-path bench':44s} {'baseline':>10s} {'now':>10s}  verdict")
for name in sorted(n for n in now if n.startswith("BenchmarkHotPath")):
    cur = now[name]
    old = base.get(name)
    if old is None:
        print(f"{name:44s} {'-':>10s} {cur['ns_op']:>10}  new (no baseline)")
        continue
    ratio = cur["ns_op"] / old["ns_op"]
    verdict = f"{ratio:.2f}x ok"
    if ratio > thresh:
        verdict = f"{ratio:.2f}x REGRESSION (> {thresh:.2f}x)"
        failed = True
    if cur.get("allocs_op"):
        verdict += f" + ALLOCATES ({cur['allocs_op']} allocs/op)"
        failed = True
    print(f"{name:44s} {old['ns_op']:>10} {cur['ns_op']:>10}  {verdict}")

missing = [n for n in base if n.startswith("BenchmarkHotPath") and n not in now]
for name in missing:
    print(f"{name:44s} dropped from the suite  REGRESSION")
    failed = True

sys.exit(1 if failed else 0)
PY
