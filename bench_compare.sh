#!/usr/bin/env bash
# bench_compare.sh — re-run the benchmark suite and fail if any hot-path
# bench (BenchmarkHotPath*) regresses more than 20% in ns/op against the
# committed BENCH_hotpath.json, or stops being allocation-free. The
# remote RPC benches (BenchmarkRPCRoundTrip, BenchmarkRemote*) are gated
# too, at a looser threshold (RPC_THRESH, default 1.60) because loopback
# numbers on small containers carry scheduler noise; their allocation
# behavior is pinned by TestRemoteHotPathDoesNotAllocate instead of here.
#
# The dense-kernel benches (BenchmarkDot*, BenchmarkMatVec*,
# BenchmarkAxpy*, BenchmarkQuantizedScan) are gated at the same default
# threshold and must stay allocation-free — a kernel that silently falls
# back to a slower path or starts allocating fails here. Comparison is
# refused outright when the baseline was recorded under a different simd
# dispatch than the current run.
#
# Noise handling, in two layers (this container's scheduler/timer noise
# can swing an untouched bench 0.6x-1.6x between single samples):
#   1. The suite runs BENCH_COUNT (default 3) samples per bench and
#      bench.sh folds the per-bench minimum into the JSON.
#   2. Benches still over threshold get one second-chance pass: each is
#      re-measured in isolation (its 3 samples no longer back-to-back
#      with the original noise burst) and the minimum is merged before
#      the final verdict. A genuine regression is slow in every sample
#      of both passes; correlated noise is not. Allocation failures are
#      deterministic and are never retried.
#
# Usage: ./bench_compare.sh [baseline.json]
#        (env THRESH=1.20 RPC_THRESH=1.60 KERNEL_THRESH=1.20
#         BENCH_COUNT=3 to tune)
set -euo pipefail
cd "$(dirname "$0")"

BASE="${1:-BENCH_hotpath.json}"
THRESH="${THRESH:-1.20}"
RPC_THRESH="${RPC_THRESH:-1.60}"
KERNEL_THRESH="${KERNEL_THRESH:-1.20}"
export GOMAXPROCS="${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}"
if [ ! -f "$BASE" ]; then
    echo "error: baseline $BASE not found (run ./bench.sh first)" >&2
    exit 1
fi
command -v python3 >/dev/null || { echo "error: python3 required" >&2; exit 1; }

NOW="$(mktemp /tmp/bench_now.XXXXXX.json)"
FLAGGED="$(mktemp /tmp/bench_flagged.XXXXXX)"
RETRY="$(mktemp /tmp/bench_retry.XXXXXX)"
trap 'rm -f "$NOW" "$FLAGGED" "$RETRY"' EXIT
BENCH_COUNT="${BENCH_COUNT:-3}" ./bench.sh "$NOW"

# compare <now.json> <flagged-out|/dev/null>: prints the verdict table;
# writes ratio-regressed (retryable) bench names one per line.
compare() {
    python3 - "$BASE" "$1" "$THRESH" "$RPC_THRESH" "$KERNEL_THRESH" "$2" <<'PY'
import json, sys

base_path, now_path = sys.argv[1], sys.argv[2]
thresh, rpc_thresh, kernel_thresh = float(sys.argv[3]), float(sys.argv[4]), float(sys.argv[5])
flagged_path = sys.argv[6]
with open(base_path) as f:
    base_doc = json.load(f)
with open(now_path) as f:
    now_doc = json.load(f)
base, now = base_doc["benchmarks"], now_doc["benchmarks"]

# Kernel numbers from different dispatches (avx2 vs purego) are not a
# regression signal — refuse the comparison instead of failing it.
base_simd, now_simd = base_doc.get("simd"), now_doc.get("simd")
if base_simd and now_simd and base_simd != now_simd:
    print(f"error: baseline recorded with simd={base_simd}, current run is simd={now_simd}; "
          "regenerate the baseline with ./bench.sh under the same build", file=sys.stderr)
    sys.exit(1)

RPC_PREFIXES = ("BenchmarkRPCRoundTrip", "BenchmarkRemote")
KERNEL_PREFIXES = ("BenchmarkDot", "BenchmarkMatVec", "BenchmarkAxpy", "BenchmarkQuantizedScan")

def is_rpc(name):
    return name.startswith(RPC_PREFIXES)

def is_kernel(name):
    return name.startswith(KERNEL_PREFIXES)

def gated(name):
    return name.startswith("BenchmarkHotPath") or is_rpc(name) or is_kernel(name)

failed = False
retryable = []
print(f"{'gated bench':44s} {'baseline':>10s} {'now':>10s}  verdict")
for name in sorted(n for n in now if gated(n)):
    cur = now[name]
    old = base.get(name)
    if old is None:
        print(f"{name:44s} {'-':>10s} {cur['ns_op']:>10}  new (no baseline)")
        continue
    limit = rpc_thresh if is_rpc(name) else kernel_thresh if is_kernel(name) else thresh
    ratio = cur["ns_op"] / old["ns_op"]
    verdict = f"{ratio:.2f}x ok"
    if ratio > limit:
        verdict = f"{ratio:.2f}x REGRESSION (> {limit:.2f}x)"
        failed = True
        retryable.append(name)
    # Allocation gate: hot-path benches only; the RPC pins live in
    # TestRemoteHotPathDoesNotAllocate (loopback allocs/op here include
    # warm-up noise from connection buffers).
    if not is_rpc(name) and cur.get("allocs_op"):
        verdict += f" + ALLOCATES ({cur['allocs_op']} allocs/op)"
        failed = True
        if name in retryable:  # an alloc failure is not noise; no retry
            retryable.remove(name)
    print(f"{name:44s} {old['ns_op']:>10} {cur['ns_op']:>10}  {verdict}")

missing = [n for n in base if gated(n) and n not in now]
for name in missing:
    print(f"{name:44s} dropped from the suite  REGRESSION")
    failed = True

if flagged_path != "/dev/null":
    with open(flagged_path, "w") as f:
        f.write("".join(n + "\n" for n in retryable))
sys.exit(1 if failed else 0)
PY
}

pkg_for() {
    case "$1" in
    BenchmarkRPCRoundTrip* | BenchmarkRemote*) echo ./internal/rpc/ ;;
    BenchmarkQuantizedScan*) echo ./internal/ann/ ;;
    BenchmarkDot* | BenchmarkMatVec* | BenchmarkAxpy*) echo ./internal/tensor/ ;;
    *) echo . ;; # BenchmarkHotPath*
    esac
}

if compare "$NOW" "$FLAGGED"; then
    exit 0
fi
if [ ! -s "$FLAGGED" ]; then
    exit 1 # allocation/dropped-bench failures only: deterministic, no retry
fi

echo "== second chance: re-measuring flagged benches in isolation" >&2
sort -u "$FLAGGED" | sed 's|/.*||' | sort -u | while read -r top; do
    go test -run '^$' -bench "^${top}\$" -benchmem -count 3 "$(pkg_for "$top")"
done >"$RETRY"

python3 - "$NOW" "$RETRY" "$GOMAXPROCS" <<'PY'
import json, re, sys

now_path, raw_path, procs = sys.argv[1], sys.argv[2], int(sys.argv[3])
pat = re.compile(r"^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?")
with open(now_path) as f:
    doc = json.load(f)
bench = doc["benchmarks"]
for line in open(raw_path):
    m = pat.match(line)
    if not m:
        continue
    name, ns = m.group(1), float(m.group(2))
    if procs > 1 and name.endswith(f"-{procs}"):
        name = name[: -len(f"-{procs}")]
    cur = bench.get(name)
    # Merge the minimum ns/op only; the first pass's allocs stand (an
    # allocation regression must not be retried away).
    if cur is not None and ns < cur["ns_op"]:
        cur["ns_op"] = ns
with open(now_path, "w") as f:
    json.dump(doc, f, indent=2)
PY

echo "== final verdict (isolated minima merged)" >&2
compare "$NOW" /dev/null
