package main_test

import (
	"testing"

	"zoomer/internal/ann"
	"zoomer/internal/core"
	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/ingest"
	"zoomer/internal/loggen"
	"zoomer/internal/rng"
	"zoomer/internal/sampling"
	"zoomer/internal/serve"
	"zoomer/internal/tensor"
)

// hotPathWorld stands up the serving stack the BenchmarkHotPath* family
// measures: graph, engine with precomputed alias tables, exported
// serving weights and a warm neighbor cache.
type hotPathWorld struct {
	g     *graph.Graph
	eng   *engine.Engine
	emb   *serve.Embedder
	nbrsU []graph.NodeID
	nbrsQ []graph.NodeID
	user  graph.NodeID
	query graph.NodeID
}

func buildHotPathWorld(b *testing.B) *hotPathWorld {
	b.Helper()
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 1))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	g := res.Graph
	cfg := core.DefaultConfig()
	cfg.EmbedDim = 32
	cfg.OutDim = 32
	model := core.NewZoomer(g, logs.Vocab(), cfg, 2)
	emb := serve.NewEmbedder(model.ExportServing())
	eng := engine.New(g, engine.DefaultConfig())

	r := rng.New(3)
	w := &hotPathWorld{
		g:     g,
		eng:   eng,
		emb:   emb,
		user:  g.NodesOfType(graph.User)[0],
		query: g.NodesOfType(graph.Query)[0],
	}
	w.nbrsU = eng.SampleNeighbors(w.user, 30, r)
	w.nbrsQ = eng.SampleNeighbors(w.query, 30, r)
	return w
}

// BenchmarkHotPathSampleNeighbors measures the lock-free engine sampler
// writing into a caller-owned buffer: the steady-state cache-refresh
// path. Must report 0 allocs/op.
func BenchmarkHotPathSampleNeighbors(b *testing.B) {
	w := buildHotPathWorld(b)
	r := rng.New(1)
	ids := make([]graph.NodeID, 256)
	for i := range ids {
		ids[i] = graph.NodeID(r.Intn(w.g.NumNodes()))
	}
	buf := make([]graph.NodeID, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.eng.SampleNeighborsInto(ids[i%len(ids)], buf, r)
	}
}

// BenchmarkHotPathFocalBiased measures the eq. (5) sampler with a reused
// scratch: fused Tanimoto scoring plus bounded-heap top-k. Must report
// 0 allocs/op.
func BenchmarkHotPathFocalBiased(b *testing.B) {
	w := buildHotPathWorld(b)
	s := sampling.NewFocalBiased()
	r := rng.New(2)
	var ego graph.NodeID
	for id := 0; id < w.g.NumNodes(); id++ {
		if w.g.Degree(graph.NodeID(id)) >= 20 {
			ego = graph.NodeID(id)
			break
		}
	}
	focal := w.g.Content(ego)
	sc := sampling.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(w.g, ego, focal, 10, r, sc)
	}
}

// BenchmarkHotPathBuildTree measures steady-state ROI construction off
// the scratch arena.
func BenchmarkHotPathBuildTree(b *testing.B) {
	w := buildHotPathWorld(b)
	s := sampling.NewFocalBiased()
	r := rng.New(2)
	var ego graph.NodeID
	for id := 0; id < w.g.NumNodes(); id++ {
		if w.g.Degree(graph.NodeID(id)) >= 20 {
			ego = graph.NodeID(id)
			break
		}
	}
	focal := w.g.Content(ego)
	sc := sampling.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Reset()
		_ = sampling.BuildTree(w.g, ego, focal, 2, 10, s, r, sc)
	}
}

// BenchmarkHotPathUserQuery measures the trimmed-model request embedding
// with a per-worker scratch. Must report 0 allocs/op.
func BenchmarkHotPathUserQuery(b *testing.B) {
	w := buildHotPathWorld(b)
	sc := w.emb.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.emb.UserQuery(w.user, w.query, w.nbrsU, w.nbrsQ, sc)
	}
}

// BenchmarkHotPathSampleBatch measures the scatter-gather batch sampler
// (one shard visit per shard per batch): the cache-refresh steady state.
// Must report 0 allocs/op.
func BenchmarkHotPathSampleBatch(b *testing.B) {
	w := buildHotPathWorld(b)
	r := rng.New(4)
	const batch, k = 64, 10
	ids := make([]graph.NodeID, batch)
	for i := range ids {
		ids[i] = graph.NodeID(r.Intn(w.g.NumNodes()))
	}
	out := make([]graph.NodeID, batch*k)
	ns := make([]int32, batch)
	bs := engine.NewBatchScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.eng.SampleNeighborsBatchInto(ids, k, out, ns, r, bs)
	}
}

// BenchmarkHotPathSampleTree measures engine-native multi-hop expansion
// (one batch per frontier level) off the batch scratch. Must report
// 0 allocs/op.
func BenchmarkHotPathSampleTree(b *testing.B) {
	w := buildHotPathWorld(b)
	r := rng.New(5)
	var ego graph.NodeID
	for id := 0; id < w.g.NumNodes(); id++ {
		if w.g.Degree(graph.NodeID(id)) >= 20 {
			ego = graph.NodeID(id)
			break
		}
	}
	bs := engine.NewBatchScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = w.eng.SampleTree(ego, 2, 10, r, bs)
	}
}

// BenchmarkHotPathDeltaSample measures the lock-free sampler against
// nodes carrying live delta overlays — the post-ingest read hot path,
// base alias table mixed with appended edges. Must report 0 allocs/op:
// installing delta segments must not push the read path onto the heap.
func BenchmarkHotPathDeltaSample(b *testing.B) {
	w := buildHotPathWorld(b)
	r := rng.New(6)
	ids := make([]graph.NodeID, 256)
	for i := range ids {
		ids[i] = graph.NodeID(r.Intn(w.g.NumNodes()))
	}
	// Land appended edges on every sampled node (several batches, so some
	// overlays are compacted into alias tables and some stay raw).
	for round := 0; round < 4; round++ {
		batch := make([]ingest.Edge, 0, len(ids))
		for i, id := range ids {
			batch = append(batch, ingest.Edge{
				Src:    id,
				Dst:    graph.NodeID((int(id) + i + round + 1) % w.g.NumNodes()),
				Type:   graph.Click,
				Weight: 1 + float32(round),
			})
		}
		if _, err := w.eng.Append(batch); err != nil {
			b.Fatal(err)
		}
	}
	buf := make([]graph.NodeID, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.eng.SampleNeighborsInto(ids[i%len(ids)], buf, r)
	}
}

// BenchmarkHotPathSearchInto measures the zero-allocation ANN probe with
// a per-worker scratch over the serving index. Must report 0 allocs/op.
func BenchmarkHotPathSearchInto(b *testing.B) {
	w := buildHotPathWorld(b)
	items := w.g.NodesOfType(graph.Item)
	ids := make([]int64, len(items))
	vecs := make([]tensor.Vec, len(items))
	for i, it := range items {
		ids[i] = int64(it)
		vecs[i] = w.emb.Item(it)
	}
	index := ann.Build(ids, vecs, ann.Config{NumLists: 16, Iters: 4, Seed: 6})
	sc := index.NewSearchScratch()
	q := w.emb.UserQuery(w.user, w.query, w.nbrsU, w.nbrsQ, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = index.SearchInto(q, 100, 4, sc)
	}
}
