// Command zoomer-gateway is the HTTP front door of the serving stack:
// it stands up the online tier (trimmed model, neighbor cache, ANN
// index, worker pool) over in-process or remote shards and serves
// retrieval over HTTP with admission control, per-request deadlines,
// load shedding and graceful drain. See docs/OPERATIONS.md for the
// runbook and deploy/ for the containerized topology.
//
// Usage:
//
//	zoomer-gateway -scale small -listen :8080
//	zoomer-gateway -scale small -seed 1 -remote shard0:7001,shard1:7002
//
// Endpoints:
//
//	GET /v1/retrieve?user=U&query=Q[&k=K][&deadline_ms=D]   JSON answer
//	GET /v1/retrieve?rand=1                                 gateway picks the pair
//	GET /v1/retrieve.bin?...                                binary answer (ZGR1 frame)
//	POST /v1/append                                         JSON edge batch into the delta layer
//	GET /healthz                                            200 ok / 503 draining
//	GET /metrics                                            Prometheus text format (incl. ingest rows)
//
// SIGINT/SIGTERM starts the graceful drain: healthz flips to 503, new
// retrievals are refused, in-flight requests finish, then the HTTP
// listener and the serving stack (cluster connections included) close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zoomer/internal/gateway"
	"zoomer/internal/serve"
	"zoomer/internal/servestack"
)

func main() {
	listen := flag.String("listen", ":8080", "HTTP listen address")
	scale := flag.String("scale", "small", "tiny | small | medium | large")
	seed := flag.Uint64("seed", 1, "random seed (must match zoomer-shard's with -remote)")
	trainSteps := flag.Int("train", 100, "warm-up training steps before export")
	workers := flag.Int("workers", 4, "serving workers")
	cacheK := flag.Int("cachek", 30, "cached neighbors per node")
	topK := flag.Int("topk", 100, "retrieved items per request")
	queueSize := flag.Int("queue", 4096, "serve queue depth")
	shards := flag.Int("shards", 4, "graph engine partitions (in-process mode)")
	replicas := flag.Int("replicas", 2, "replicas per shard (in-process mode)")
	strategy := flag.String("partition", "hash", "node-to-shard assignment: hash | degree-balanced")
	remote := flag.String("remote", "", "comma-separated zoomer-shard addresses (empty: in-process shards)")
	rpcConns := flag.Int("rpc-conns", 0, "multiplexed connections per shard server (0 = default)")
	rpcWindow := flag.Int("rpc-window", 0, "in-flight requests per connection (0 = default)")
	maxInFlight := flag.Int("max-inflight", 256, "hard admission cap (beyond: 503)")
	shedFrac := flag.Float64("shed-frac", 0.75, "soft shed threshold as a fraction of max-inflight (beyond: cache-only answers)")
	defDeadline := flag.Duration("default-deadline", 200*time.Millisecond, "per-request deadline when the client sends none")
	maxDeadline := flag.Duration("max-deadline", 2*time.Second, "clamp on client-requested deadlines")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "bound on the graceful drain wait")
	logJSON := flag.Bool("log-json", false, "emit JSON logs instead of text")
	flag.Parse()

	var h slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(h)

	var addrs []string
	if *remote != "" {
		addrs = strings.Split(*remote, ",")
	}
	stack, err := servestack.Build(servestack.Config{
		Scale: *scale, Seed: *seed, TrainSteps: *trainSteps,
		Shards: *shards, Replicas: *replicas, Strategy: *strategy,
		Remote: addrs, RPCConns: *rpcConns, RPCWindow: *rpcWindow,
		Serve: serve.Config{Workers: *workers, CacheK: *cacheK, TopK: *topK, QueueSize: *queueSize},
	}, func(format string, args ...any) {
		log.Info(fmt.Sprintf(format, args...))
	})
	if err != nil {
		log.Error("bring-up failed", "err", err)
		os.Exit(1)
	}
	defer stack.Close()

	gw := gateway.New(stack.Server, stack.Users, stack.Queries, stack.Graph.NumNodes(), gateway.Config{
		MaxInFlight:     *maxInFlight,
		ShedFraction:    *shedFrac,
		DefaultDeadline: *defDeadline,
		MaxDeadline:     *maxDeadline,
		Logger:          log,
	})
	// The write path: POST /v1/append feeds the engine's delta layer
	// (journaled + replicated when the shards run with -wal-dir) and
	// invalidates cached neighbor lists for the touched source nodes.
	// The stack is the facet so remote ingest rows are polled live.
	gw.EnableIngest(stack, stack.Cache)

	httpSrv := &http.Server{Addr: *listen, Handler: gw.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		s := <-sig
		log.Info("signal received, draining", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := gw.Drain(ctx); err != nil {
			log.Error("drain failed", "err", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Error("http shutdown failed", "err", err)
		}
	}()

	log.Info("gateway listening", "addr", *listen,
		"max_inflight", *maxInFlight, "shed_frac", *shedFrac,
		"default_deadline", *defDeadline, "users", len(stack.Users), "queries", len(stack.Queries))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("listen failed", "err", err)
		os.Exit(1)
	}
	<-done
	log.Info("gateway stopped")
}
