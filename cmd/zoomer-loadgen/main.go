// Command zoomer-loadgen drives an open-loop HTTP load sweep against a
// zoomer-gateway and prints a Fig. 9-style table: p50/p95/p99 response
// time against offered QPS, with the gateway's degradation ladder
// (degraded cache-only answers, 503 sheds, 504 deadline misses) broken
// out per point. It needs no world knowledge — requests use the
// gateway's rand=1 pair-picking mode.
//
// Usage:
//
//	zoomer-loadgen -target http://localhost:8080 -qps 200,500,1000,2000 -duration 3s
//
// The sweep is open-loop: requests are launched on the offered
// schedule regardless of completions, so overload shows up as latency
// and shed counts, not as a silently reduced offered rate. A bounded
// launcher pool caps client-side concurrency; launches that find the
// pool exhausted are counted (local_sat) rather than silently skipped,
// so client saturation is visible instead of polluting the server-side
// numbers.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type point struct {
	qps                    float64
	sent, ok, degraded     int64
	shed, deadline, failed int64
	localSat               int64
	lats                   []time.Duration
}

func pct(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	i := int(float64(len(lats)) * p)
	if i >= len(lats) {
		i = len(lats) - 1
	}
	return lats[i]
}

func main() {
	target := flag.String("target", "http://localhost:8080", "gateway base URL")
	qpsList := flag.String("qps", "200,500,1000,2000", "comma-separated offered QPS points")
	duration := flag.Duration("duration", 3*time.Second, "measurement window per point")
	deadlineMS := flag.Int("deadline-ms", 0, "per-request deadline sent to the gateway (0: gateway default)")
	conc := flag.Int("concurrency", 512, "max in-flight client requests")
	binary := flag.Bool("binary", false, "use the binary endpoint instead of JSON")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "warm-up run before the sweep (0: skip)")
	flag.Parse()

	var qps []float64
	for _, s := range strings.Split(*qpsList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad qps %q: sweep points must be positive numbers\n", s)
			os.Exit(2)
		}
		qps = append(qps, v)
	}

	path := "/v1/retrieve?rand=1"
	if *binary {
		path = "/v1/retrieve.bin?rand=1"
	}
	if *deadlineMS > 0 {
		path += "&deadline_ms=" + strconv.Itoa(*deadlineMS)
	}
	url := strings.TrimRight(*target, "/") + path

	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *conc,
			MaxIdleConnsPerHost: *conc,
		},
	}

	// Wait for the gateway to come up (world building takes a while).
	healthz := strings.TrimRight(*target, "/") + "/healthz"
	for start := time.Now(); ; {
		resp, err := client.Get(healthz)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Since(start) > 5*time.Minute {
			fmt.Fprintln(os.Stderr, "gateway never became healthy")
			os.Exit(1)
		}
		time.Sleep(500 * time.Millisecond)
	}

	if *warmup > 0 {
		runPoint(client, url, 200, *warmup, *conc)
	}

	fmt.Printf("%-10s %-8s %-8s %-9s %-7s %-9s %-7s %-9s %-12s %-12s %-12s\n",
		"QPS", "sent", "ok", "degraded", "shed", "deadline", "failed", "local_sat", "p50", "p95", "p99")
	for _, q := range qps {
		pt := runPoint(client, url, q, *duration, *conc)
		sort.Slice(pt.lats, func(i, j int) bool { return pt.lats[i] < pt.lats[j] })
		fmt.Printf("%-10.0f %-8d %-8d %-9d %-7d %-9d %-7d %-9d %-12v %-12v %-12v\n",
			q, pt.sent, pt.ok, pt.degraded, pt.shed, pt.deadline, pt.failed, pt.localSat,
			pct(pt.lats, 0.50).Round(10*time.Microsecond),
			pct(pt.lats, 0.95).Round(10*time.Microsecond),
			pct(pt.lats, 0.99).Round(10*time.Microsecond))
	}
}

func runPoint(client *http.Client, url string, qps float64, d time.Duration, conc int) *point {
	pt := &point{qps: qps}
	interval := time.Duration(float64(time.Second) / qps)
	deadline := time.Now().Add(d)
	sem := make(chan struct{}, conc)
	var mu sync.Mutex
	var wg sync.WaitGroup
	var ok, degraded, shed, dlx, failed atomic.Int64

	next := time.Now()
	for time.Now().Before(deadline) {
		select {
		case sem <- struct{}{}:
			pt.sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				start := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					failed.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat := time.Since(start)
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					if resp.Header.Get("X-Zoomer-Degraded") == "1" {
						degraded.Add(1)
					}
					mu.Lock()
					pt.lats = append(pt.lats, lat)
					mu.Unlock()
				case http.StatusServiceUnavailable:
					shed.Add(1)
				case http.StatusGatewayTimeout:
					dlx.Add(1)
				default:
					failed.Add(1)
				}
			}()
		default:
			pt.localSat++
		}
		next = next.Add(interval)
		if sleep := time.Until(next); sleep > 0 {
			time.Sleep(sleep)
		}
	}
	wg.Wait()
	pt.ok = ok.Load()
	pt.degraded = degraded.Load()
	pt.shed = shed.Load()
	pt.deadline = dlx.Load()
	pt.failed = failed.Load()
	return pt
}
