// Command graphgen generates a synthetic Taobao-style retrieval graph and
// prints its statistics — node/edge mixes, degree distribution — so the
// scaled-down analogs can be compared against the paper's §VII-A numbers.
//
// Usage:
//
//	graphgen -scale medium -seed 7
//	graphgen -scale small -out graph.zmrg   # compact binary for zoomer-shard -graph
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
)

func main() {
	scale := flag.String("scale", "small", "tiny | small | medium | large | movielens")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", "", "also write the graph as a compact binary file (for zoomer-shard -graph)")
	flag.Parse()

	var cfg loggen.Config
	switch *scale {
	case "tiny":
		cfg = loggen.TaobaoConfig(loggen.ScaleTiny, *seed)
	case "small":
		cfg = loggen.TaobaoConfig(loggen.ScaleSmall, *seed)
	case "medium":
		cfg = loggen.TaobaoConfig(loggen.ScaleMedium, *seed)
	case "large":
		cfg = loggen.TaobaoConfig(loggen.ScaleLarge, *seed)
	case "movielens":
		cfg = loggen.MovieLensConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	logs := loggen.MustGenerate(cfg)
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	g := res.Graph
	st := g.Stats()

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n, err := g.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, n)
	}

	fmt.Printf("scale: %s  seed: %d\n", *scale, *seed)
	fmt.Printf("sessions: %d  interactions: %d\n", len(logs.Sessions), logs.NumInteractions())
	fmt.Printf("nodes: %d  (users %d, queries %d, items %d)\n",
		st.Nodes, st.NodesByType[graph.User], st.NodesByType[graph.Query], st.NodesByType[graph.Item])
	fmt.Printf("edges: %d  (click %d, session %d, similarity %d)\n",
		st.Edges, st.EdgesByType[graph.Click], st.EdgesByType[graph.Session], st.EdgesByType[graph.Similarity])
	fmt.Printf("degree: mean %.2f  max %d\n", st.MeanDegree, st.MaxDegree)

	// Degree distribution deciles.
	degrees := make([]int, g.NumNodes())
	for i := range degrees {
		degrees[i] = g.Degree(graph.NodeID(i))
	}
	sort.Ints(degrees)
	fmt.Print("degree deciles:")
	for d := 0; d <= 10; d++ {
		idx := d * (len(degrees) - 1) / 10
		fmt.Printf(" %d", degrees[idx])
	}
	fmt.Println()

	// Edge mix between node-type pairs (the paper reports e.g. "75% are
	// user-user edges" for the 12-hour graph).
	var mix [graph.NumNodeTypes][graph.NumNodeTypes]int
	for id := 0; id < g.NumNodes(); id++ {
		from := g.Type(graph.NodeID(id))
		for _, e := range g.Neighbors(graph.NodeID(id)) {
			mix[from][g.Type(e.To)]++
		}
	}
	fmt.Println("edge mix (% of directed edges):")
	types := []graph.NodeType{graph.User, graph.Query, graph.Item}
	for _, a := range types {
		for _, b := range types {
			if mix[a][b] == 0 {
				continue
			}
			fmt.Printf("  %s-%s: %.1f%%\n", a, b, 100*float64(mix[a][b])/float64(st.Edges))
		}
	}
}
