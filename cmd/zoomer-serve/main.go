// Command zoomer-serve stands up the online serving stack (trimmed model,
// neighbor caches, two-layer ANN index) and runs an open-loop load sweep,
// printing response time against offered QPS.
//
// Usage:
//
//	zoomer-serve -scale small -qps 1000,5000,20000 -duration 500ms
//
// With -remote the graph store is a cluster of zoomer-shard servers
// instead of in-process partitions; the shard servers must be started
// with the same -scale/-seed/-shards/-partition so they serve the
// identical graph (the engine's reads are then bit-identical — the
// loopback equivalence tests pin that down):
//
//	zoomer-shard -scale small -seed 1 -shards 4 -own 0,1 -listen :7001 &
//	zoomer-shard -scale small -seed 1 -shards 4 -own 2,3 -listen :7002 &
//	zoomer-serve -scale small -seed 1 -remote localhost:7001,localhost:7002
//
// Each shard server is reached through a small bounded pool of
// multiplexed connections shared by every worker and cache refresher:
// -rpc-conns bounds the pool, -rpc-window the in-flight requests per
// connection. A server that stops answering trips a consecutive-failure
// circuit — one probe call redials at a time while the rest fail fast
// with typed errors — instead of every caller redialing per call.
//
// Shard ownership may move between the dialed servers at runtime
// (zoomer-shard -admin -acquire/-release): the serving tier follows the
// handoff on its own — the first request hitting a drained partition is
// redirected, ownership is re-resolved and the request retried against
// the new owner — so draining a shard server for maintenance needs no
// restart here. See docs/OPERATIONS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"zoomer/internal/ann"
	"zoomer/internal/core"
	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/partition"
	"zoomer/internal/rpc"
	"zoomer/internal/serve"
	"zoomer/internal/tensor"
)

func main() {
	scale := flag.String("scale", "small", "tiny | small | medium | large")
	qpsList := flag.String("qps", "1000,2000,5000,10000,20000,50000", "comma-separated offered QPS points")
	duration := flag.Duration("duration", 400*time.Millisecond, "measurement window per point")
	workers := flag.Int("workers", 4, "serving workers")
	cacheK := flag.Int("cachek", 30, "cached neighbors per node")
	shards := flag.Int("shards", 4, "graph engine partitions (capacity axis)")
	replicas := flag.Int("replicas", 2, "replicas per shard (throughput axis)")
	strategy := flag.String("partition", "hash", "node-to-shard assignment: hash | degree-balanced")
	remote := flag.String("remote", "", "comma-separated zoomer-shard addresses (empty: in-process shards)")
	rpcConns := flag.Int("rpc-conns", 0, "multiplexed connections per shard server (0 = default 2)")
	rpcWindow := flag.Int("rpc-window", 0, "in-flight requests per connection (0 = default 32)")
	trainSteps := flag.Int("train", 100, "warm-up training steps before export")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	strat, err := partition.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	scales := map[string]loggen.Scale{
		"tiny": loggen.ScaleTiny, "small": loggen.ScaleSmall,
		"medium": loggen.ScaleMedium, "large": loggen.ScaleLarge,
	}
	sc, ok := scales[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	var qps []float64
	for _, s := range strings.Split(*qpsList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad qps %q: %v\n", s, err)
			os.Exit(2)
		}
		if v <= 0 {
			fmt.Fprintf(os.Stderr, "bad qps %q: sweep points must be positive (the open-loop submitter derives its inter-arrival gap from the rate)\n", s)
			os.Exit(2)
		}
		qps = append(qps, v)
	}

	fmt.Println("building world and model...")
	logs := loggen.MustGenerate(loggen.TaobaoConfig(sc, *seed))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	g := res.Graph
	ds := loggen.BuildExamples(logs, 1, 0.2, *seed+1)
	train := core.InstancesFromExamples(ds.Train, res.Mapping)
	test := core.InstancesFromExamples(ds.Test, res.Mapping)

	model := core.NewZoomer(g, logs.Vocab(), core.DefaultConfig(), *seed+2)
	tc := core.DefaultTrainConfig()
	tc.MaxSteps = *trainSteps
	core.Train(model, train, test, tc)

	fmt.Println("exporting serving weights and building index...")
	emb := serve.NewEmbedder(model.ExportServing())
	var eng *engine.Engine
	if *remote != "" {
		addrs := strings.Split(*remote, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		cluster, err := rpc.DialClusterWith(rpc.ClientConfig{Conns: *rpcConns, Window: *rpcWindow}, addrs...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer cluster.Close()
		if cluster.Info.NumNodes != g.NumNodes() {
			fmt.Fprintf(os.Stderr, "remote cluster serves %d nodes, local world has %d — start zoomer-shard with the same -scale/-seed\n",
				cluster.Info.NumNodes, g.NumNodes())
			os.Exit(1)
		}
		eng = cluster.Engine
		fmt.Printf("engine: %d remote shards (%s partitioning, routing epoch %d) behind %d servers\n",
			eng.NumShards(), cluster.Info.Strategy, eng.Routing().Epoch(), len(addrs))
	} else {
		eng = engine.New(g, engine.Config{Shards: *shards, Replicas: *replicas, Strategy: strat, Locality: true})
	}
	st := eng.Stats()
	fmt.Printf("engine: %d shards x %d replicas, nodes/shard %v, edges/shard %v\n",
		st.Shards, st.Replicas, st.NodesPerShard, st.EdgesPerShard)
	cache := serve.NewNeighborCache(eng, *cacheK, *seed+3)
	defer cache.Close()

	items := g.NodesOfType(graph.Item)
	ids := make([]int64, len(items))
	vecs := make([]tensor.Vec, len(items))
	for i, it := range items {
		ids[i] = int64(it)
		vecs[i] = emb.Item(it)
	}
	nlist := len(items) / 64
	if nlist < 4 {
		nlist = 4
	}
	index := ann.Build(ids, vecs, ann.Config{NumLists: nlist, Iters: 6, Seed: *seed + 4})

	scfg := serve.DefaultConfig()
	scfg.Workers = *workers
	scfg.CacheK = *cacheK
	srv := serve.NewServer(emb, cache, index, scfg)
	defer srv.Close()

	users := g.NodesOfType(graph.User)
	queries := g.NodesOfType(graph.Query)
	// Cache warm-up.
	if _, err := serve.LoadTest(srv, users, queries, 500, 100*time.Millisecond, *seed+5); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%-10s %-14s %-14s %-10s %-10s %s\n", "QPS", "mean RT (ms)", "p99 RT (ms)", "served", "dropped", "shard load")
	prev := eng.Stats().RequestsPerShard
	for i, q := range qps {
		st, err := serve.LoadTest(srv, users, queries, q, *duration, *seed+6+uint64(i))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		es := eng.Stats()
		loads := make([]int64, len(es.RequestsPerShard))
		for s := range loads {
			loads[s] = es.RequestsPerShard[s] - prev[s]
		}
		prev = es.RequestsPerShard
		fmt.Printf("%-10.0f %-14.3f %-14.3f %-10d %-10d %v\n",
			q, float64(st.MeanRT.Microseconds())/1000, float64(st.P99.Microseconds())/1000,
			st.Served, st.Dropped, loads)
	}
	hits, misses, refreshes := cache.Stats()
	fmt.Printf("cache: %d hits / %d misses / %d async refreshes\n", hits, misses, refreshes)
	final := eng.Stats()
	fmt.Printf("engine: per-shard requests %v (max/mean imbalance %.2f), per-replica %v\n",
		final.RequestsPerShard, final.Imbalance, final.RequestsPerRep)
}
