// Command simdprobe prints which dense-kernel dispatch this build
// selects on this machine: "avx2" when the AVX2+FMA assembly kernels are
// active, "purego" under the purego build tag or on hardware without
// them. bench.sh records the value in the BENCH_hotpath.json header so
// perf trajectories name the kernel set that produced them.
package main

import (
	"fmt"

	"zoomer/internal/tensor"
)

func main() { fmt.Println(tensor.SIMD()) }
