// Command zoomer-train trains Zoomer or a baseline on a synthetic Taobao
// graph and reports test AUC. Training reads the graph through the
// core.GraphView seam, so the same run can sample from the monolithic
// in-process graph, a local sharded engine, or a remote zoomer-shard
// cluster — with bit-identical results (see the cross-topology
// equivalence suite in internal/experiments).
//
// Usage:
//
//	zoomer-train -model zoomer -scale small -epochs 3
//	zoomer-train -model graphsage -fanout 10 -steps 500
//	zoomer-train -shards 4 -partition degree-balanced    # local sharded engine
//
// Distributed training: start shard servers with the same world
// parameters, then point -remote at them (the runbook lives in
// docs/OPERATIONS.md):
//
//	zoomer-shard -scale small -seed 1 -shards 4 -own 0,1 -listen :7001 &
//	zoomer-shard -scale small -seed 1 -shards 4 -own 2,3 -listen :7002 &
//	zoomer-train -scale small -seed 1 -remote localhost:7001,localhost:7002
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zoomer/internal/baselines"
	"zoomer/internal/core"
	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/partition"
	"zoomer/internal/rpc"
)

func main() {
	model := flag.String("model", "zoomer", "zoomer | gcn | graphsage | pinsage | pinnersage | pixie | han | gce-gnn | fgnn | stamp | mccf")
	scale := flag.String("scale", "small", "tiny | small | medium | large")
	epochs := flag.Int("epochs", 3, "training epochs")
	steps := flag.Int("steps", 0, "max training steps (0 = epoch-bounded)")
	batch := flag.Int("batch", 32, "batch size")
	fanout := flag.Int("fanout", 10, "sampled neighbors per hop")
	hops := flag.Int("hops", 2, "aggregation depth")
	dim := flag.Int("dim", 32, "embedding dimensionality")
	lr := flag.Float64("lr", 0.01, "learning rate")
	seed := flag.Uint64("seed", 1, "random seed")
	shards := flag.Int("shards", 0, "train over a local sharded engine with this many partitions (0 = monolithic graph)")
	strategy := flag.String("partition", "hash", "node-to-shard assignment: hash | degree-balanced")
	locality := flag.Bool("locality", true, "BFS shard-locality reordering (sharded engine only)")
	replicas := flag.Int("replicas", 1, "replica copies per shard (sharded engine only)")
	remote := flag.String("remote", "", "comma-separated zoomer-shard addresses (train over the RPC engine)")
	flag.Parse()

	scales := map[string]loggen.Scale{
		"tiny": loggen.ScaleTiny, "small": loggen.ScaleSmall,
		"medium": loggen.ScaleMedium, "large": loggen.ScaleLarge,
	}
	sc, ok := scales[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	strat, err := partition.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("generating %s world...\n", sc)
	logs := loggen.MustGenerate(loggen.TaobaoConfig(sc, *seed))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	st := res.Graph.Stats()
	fmt.Printf("graph: %d nodes (%d users / %d queries / %d items), %d edges\n",
		st.Nodes, st.NodesByType[graph.User], st.NodesByType[graph.Query], st.NodesByType[graph.Item], st.Edges)
	ds := loggen.BuildExamples(logs, 1, 0.2, *seed+1)
	train := core.InstancesFromExamples(ds.Train, res.Mapping)
	test := core.InstancesFromExamples(ds.Test, res.Mapping)
	fmt.Printf("examples: %d train / %d test\n", len(train), len(test))

	// The graph view training samples through: monolithic graph by
	// default, a local sharded engine with -shards, a dialed cluster of
	// zoomer-shard servers with -remote.
	var view core.GraphView = res.Graph
	switch {
	case *remote != "":
		addrs := strings.Split(*remote, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		cluster, err := rpc.DialCluster(addrs...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dial cluster: %v\n", err)
			os.Exit(1)
		}
		defer cluster.Close()
		eng := cluster.Engine
		if eng.NumNodes() != res.Graph.NumNodes() {
			fmt.Fprintf(os.Stderr, "remote cluster serves %d nodes, local world has %d — start zoomer-shard with the same -scale/-seed\n",
				eng.NumNodes(), res.Graph.NumNodes())
			os.Exit(1)
		}
		view = core.EngineView{Engine: eng, M: res.Mapping}
		fmt.Printf("engine: %d remote shards (%s partitioning) behind %d servers\n",
			eng.NumShards(), cluster.Info.Strategy, len(addrs))
	case *shards > 0:
		eng := engine.New(res.Graph, engine.Config{Shards: *shards, Replicas: *replicas, Strategy: strat, Locality: *locality})
		defer eng.Close()
		view = core.EngineView{Engine: eng, M: res.Mapping}
		fmt.Printf("engine: %d local shards x %d replicas (%s partitioning, locality %v)\n",
			*shards, *replicas, strat, *locality)
	}

	v := logs.Vocab()
	var m core.Model
	switch *model {
	case "zoomer", "gcn", "zoomer-fe", "zoomer-fs", "zoomer-es":
		cfg := core.DefaultConfig()
		cfg.EmbedDim, cfg.OutDim = *dim, *dim
		cfg.Hops, cfg.FanOut = *hops, *fanout
		switch *model {
		case "gcn":
			cfg.UseFeatureProj, cfg.UseEdgeAttn, cfg.UseSemanticAttn = false, false, false
		case "zoomer-fe":
			cfg.UseSemanticAttn = false
		case "zoomer-fs":
			cfg.UseEdgeAttn = false
		case "zoomer-es":
			cfg.UseFeatureProj = false
		}
		m = core.NewZoomer(view, v, cfg, *seed+2)
	default:
		cfg := baselines.DefaultConfig()
		cfg.EmbedDim, cfg.OutDim = *dim, *dim
		cfg.Hops, cfg.FanOut = *hops, *fanout
		ctor := map[string]func(core.GraphView, loggen.Vocab, baselines.Config, uint64) core.Model{
			"graphsage":  baselines.NewGraphSAGE,
			"pinsage":    baselines.NewPinSage,
			"pinnersage": baselines.NewPinnerSage,
			"pixie":      baselines.NewPixie,
			"han":        baselines.NewHAN,
			"gce-gnn":    baselines.NewGCEGNN,
			"fgnn":       baselines.NewFGNN,
			"stamp":      baselines.NewSTAMP,
			"mccf":       baselines.NewMCCF,
		}[*model]
		if ctor == nil {
			fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
			os.Exit(2)
		}
		m = ctor(view, v, cfg, *seed+2)
	}

	tc := core.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.MaxSteps = *steps
	tc.BatchSize = *batch
	tc.LR = float32(*lr)
	tc.Seed = *seed + 3
	tc.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }

	fmt.Printf("training %s...\n", m.Name())
	out := core.Train(m, train, test, tc)
	fmt.Printf("done: %d steps in %.1fs, final loss %.4f, test AUC %.4f\n",
		out.Steps, out.Duration.Seconds(), out.FinalLoss, out.TestAUC)
}
