// Command zoomer-train trains Zoomer or a baseline on a synthetic Taobao
// graph and reports test AUC.
//
// Usage:
//
//	zoomer-train -model zoomer -scale small -epochs 3
//	zoomer-train -model graphsage -fanout 10 -steps 500
package main

import (
	"flag"
	"fmt"
	"os"

	"zoomer/internal/baselines"
	"zoomer/internal/core"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
)

func main() {
	model := flag.String("model", "zoomer", "zoomer | gcn | graphsage | pinsage | pinnersage | pixie | han | gce-gnn | fgnn | stamp | mccf")
	scale := flag.String("scale", "small", "tiny | small | medium | large")
	epochs := flag.Int("epochs", 3, "training epochs")
	steps := flag.Int("steps", 0, "max training steps (0 = epoch-bounded)")
	batch := flag.Int("batch", 32, "batch size")
	fanout := flag.Int("fanout", 10, "sampled neighbors per hop")
	hops := flag.Int("hops", 2, "aggregation depth")
	dim := flag.Int("dim", 32, "embedding dimensionality")
	lr := flag.Float64("lr", 0.01, "learning rate")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	scales := map[string]loggen.Scale{
		"tiny": loggen.ScaleTiny, "small": loggen.ScaleSmall,
		"medium": loggen.ScaleMedium, "large": loggen.ScaleLarge,
	}
	sc, ok := scales[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	fmt.Printf("generating %s world...\n", sc)
	logs := loggen.MustGenerate(loggen.TaobaoConfig(sc, *seed))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	st := res.Graph.Stats()
	fmt.Printf("graph: %d nodes (%d users / %d queries / %d items), %d edges\n",
		st.Nodes, st.NodesByType[graph.User], st.NodesByType[graph.Query], st.NodesByType[graph.Item], st.Edges)
	ds := loggen.BuildExamples(logs, 1, 0.2, *seed+1)
	train := core.InstancesFromExamples(ds.Train, res.Mapping)
	test := core.InstancesFromExamples(ds.Test, res.Mapping)
	fmt.Printf("examples: %d train / %d test\n", len(train), len(test))

	v := logs.Vocab()
	g := res.Graph
	var m core.Model
	switch *model {
	case "zoomer", "gcn", "zoomer-fe", "zoomer-fs", "zoomer-es":
		cfg := core.DefaultConfig()
		cfg.EmbedDim, cfg.OutDim = *dim, *dim
		cfg.Hops, cfg.FanOut = *hops, *fanout
		switch *model {
		case "gcn":
			cfg.UseFeatureProj, cfg.UseEdgeAttn, cfg.UseSemanticAttn = false, false, false
		case "zoomer-fe":
			cfg.UseSemanticAttn = false
		case "zoomer-fs":
			cfg.UseEdgeAttn = false
		case "zoomer-es":
			cfg.UseFeatureProj = false
		}
		m = core.NewZoomer(g, v, cfg, *seed+2)
	default:
		cfg := baselines.DefaultConfig()
		cfg.EmbedDim, cfg.OutDim = *dim, *dim
		cfg.Hops, cfg.FanOut = *hops, *fanout
		ctor := map[string]func(*graph.Graph, loggen.Vocab, baselines.Config, uint64) core.Model{
			"graphsage":  baselines.NewGraphSAGE,
			"pinsage":    baselines.NewPinSage,
			"pinnersage": baselines.NewPinnerSage,
			"pixie":      baselines.NewPixie,
			"han":        baselines.NewHAN,
			"gce-gnn":    baselines.NewGCEGNN,
			"fgnn":       baselines.NewFGNN,
			"stamp":      baselines.NewSTAMP,
			"mccf":       baselines.NewMCCF,
		}[*model]
		if ctor == nil {
			fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
			os.Exit(2)
		}
		m = ctor(g, v, cfg, *seed+2)
	}

	tc := core.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.MaxSteps = *steps
	tc.BatchSize = *batch
	tc.LR = float32(*lr)
	tc.Seed = *seed + 3
	tc.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }

	fmt.Printf("training %s...\n", m.Name())
	out := core.Train(m, train, test, tc)
	fmt.Printf("done: %d steps in %.1fs, final loss %.4f, test AUC %.4f\n",
		out.Steps, out.Duration.Seconds(), out.FinalLoss, out.TestAUC)
}
