// Command zoomer-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	zoomer-experiments -exp all            # everything, full size
//	zoomer-experiments -exp table3,fig8    # selected experiments
//	zoomer-experiments -exp fig9 -quick    # CI-sized budgets
//
// Experiment ids: fig4a fig4b fig4c table2 table3 fig8 table4 fig9 fig10
// fig11 fig12 fig13.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"zoomer/internal/experiments"
)

var registry = []struct {
	id  string
	run func(experiments.Options) fmt.Stringer
}{
	{"fig4a", func(o experiments.Options) fmt.Stringer { return experiments.Fig4a(o) }},
	{"fig4b", func(o experiments.Options) fmt.Stringer { return experiments.Fig4b(o) }},
	{"fig4c", func(o experiments.Options) fmt.Stringer { return experiments.Fig4c(o) }},
	{"table2", func(o experiments.Options) fmt.Stringer { return experiments.Table2(o) }},
	{"table3", func(o experiments.Options) fmt.Stringer { return experiments.Table3(o) }},
	{"fig8", func(o experiments.Options) fmt.Stringer { return experiments.Fig8(o) }},
	{"table4", func(o experiments.Options) fmt.Stringer { return experiments.Table4(o) }},
	{"fig9", func(o experiments.Options) fmt.Stringer { return experiments.Fig9(o) }},
	{"fig10", func(o experiments.Options) fmt.Stringer { return experiments.Fig10(o) }},
	{"fig11", func(o experiments.Options) fmt.Stringer { return experiments.Fig11(o) }},
	{"fig12", func(o experiments.Options) fmt.Stringer { return experiments.Fig12(o) }},
	{"fig13", func(o experiments.Options) fmt.Stringer { return experiments.Fig13(o) }},
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	quick := flag.Bool("quick", false, "CI-sized budgets")
	seed := flag.Uint64("seed", 1, "base random seed")
	verbose := flag.Bool("v", false, "progress logging")
	flag.Parse()

	opts := experiments.Options{Seed: *seed, Quick: *quick}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}

	want := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	known := map[string]bool{}
	for _, e := range registry {
		known[e.id] = true
	}
	for id := range want {
		if !known[id] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
	}

	for _, e := range registry {
		if *exp != "all" && !want[e.id] {
			continue
		}
		start := time.Now()
		res := e.run(opts)
		fmt.Printf("== %s (%.1fs) ==\n%s\n", e.id, time.Since(start).Seconds(), res)
	}
}
