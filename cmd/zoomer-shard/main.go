// Command zoomer-shard runs one graph shard server: it builds (or loads)
// the graph, partitions it, precomputes alias tables for the shards it
// owns, and serves them over TCP with the internal/rpc protocol — the
// server side of the paper's distributed graph engine (§VI). A serving
// tier started with the same world parameters connects with
// zoomer-serve -remote.
//
// Usage (a two-server cluster over four partitions):
//
//	zoomer-shard -scale small -seed 1 -shards 4 -own 0,1 -listen :7001 &
//	zoomer-shard -scale small -seed 1 -shards 4 -own 2,3 -listen :7002 &
//	zoomer-serve -scale small -seed 1 -remote localhost:7001,localhost:7002
//
// With -graph the graph is loaded from a compact binary file (graphgen
// -out) instead of regenerated, so every server — and the serving tier —
// is guaranteed the identical graph.
//
// The wire protocol (version 4) multiplexes many in-flight requests per
// connection; -rpc-workers bounds how many of one connection's requests
// are dispatched concurrently and -rpc-window how many may queue behind
// them. A client that speaks the old one-request-per-connection protocol
// is rejected loudly at the preface handshake.
//
// # Durable ingestion
//
// With -wal-dir the server journals every accepted graph-append to a
// per-shard write-ahead log under that directory and replays it on
// startup (and on admin acquire), so a crash — kill -9 included — loses
// nothing that was acknowledged. -fsync (default true) syncs each
// group-committed batch before acknowledging; with -fsync=false
// durability is bounded by the OS page cache (a process crash still
// loses nothing; a machine crash loses the tail):
//
//	zoomer-shard -own 0,1 -listen :7001 -wal-dir /var/lib/zoomer/wal
//
// Without -wal-dir appends are accepted into the in-memory delta layer
// only — durability then rests on replica-group siblings.
//
// # Replicas and dynamic membership
//
// With -advertise the server announces a reachable address to the
// cluster: its routing blobs carry replica placement, its redirects and
// epoch polls carry the member list, and a serving tier discovers it
// even when dialed before it existed. -join names any live member to
// announce to at startup — the one step that makes a freshly started
// server discoverable:
//
//	zoomer-shard -own 0,1 -listen :7003 -advertise localhost:7003 -join localhost:7001
//
// Multiple servers may own the same partitions at once (N-way replicas):
// a serving tier spreads reads across all of them and fails over
// transparently when one dies.
//
// # Admin mode: live shard handoff
//
// With -admin the binary acts as an admin client to a running server
// instead of serving itself: -acquire/-release send reassign commands
// that move partitions in and out of the server's served set at runtime,
// and -status prints the server's routing epoch, owned partitions and
// member view. To migrate partition 1 from the :7001 server to the
// :7002 server with zero downtime, acquire on the destination before
// draining the source:
//
//	zoomer-shard -admin localhost:7002 -acquire 1
//	zoomer-shard -admin localhost:7001 -release 1
//
// Admin operations are deadline-bounded: the target server is probed
// with -admin-retries short-deadline attempts (backing off between
// them) before any command is sent, so an unreachable server fails
// within seconds instead of hanging. Exit codes: 0 success, 1 command
// refused/failed, 2 usage error, 3 server unreachable within the
// deadline (rpc.ErrAdminDeadline).
//
// A serving tier attached with zoomer-serve -remote follows the move on
// its own: the first request that hits the drained server is answered
// with a wrong-epoch redirect, the tier re-resolves ownership across its
// servers and retries — no restart, no failed requests, bit-identical
// draws (see docs/OPERATIONS.md for the full runbook).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/partition"
	"zoomer/internal/rpc"
)

func main() {
	listen := flag.String("listen", ":7001", "TCP address to serve on")
	graphFile := flag.String("graph", "", "load the graph from this binary file instead of generating")
	scale := flag.String("scale", "small", "generated world size: tiny | small | medium | large")
	seed := flag.Uint64("seed", 1, "world seed (must match the serving tier's)")
	shards := flag.Int("shards", 4, "total graph partitions")
	own := flag.String("own", "", "comma-separated shard ids this server owns (default: all)")
	replicas := flag.Int("replicas", 2, "replicas per owned shard")
	strategy := flag.String("partition", "hash", "node-to-shard assignment: hash | degree-balanced")
	locality := flag.Bool("locality", true, "BFS-reorder each shard's rows for cache locality (must match across the cluster)")
	rpcWorkers := flag.Int("rpc-workers", 0, "concurrent request dispatch per connection (0 = default 4)")
	rpcWindow := flag.Int("rpc-window", 0, "buffered requests per connection before the read loop blocks (0 = default 64)")
	walDir := flag.String("wal-dir", "", "journal graph-appends to per-shard WALs under this directory (replayed on startup)")
	fsync := flag.Bool("fsync", true, "with -wal-dir: fsync each group-committed append before acknowledging")
	advertise := flag.String("advertise", "", "address to announce to the cluster (enables membership + replica placement)")
	join := flag.String("join", "", "comma-separated addresses of live cluster members to announce to at startup (requires -advertise)")
	admin := flag.String("admin", "", "admin mode: address of a running zoomer-shard to command instead of serving")
	acquire := flag.String("acquire", "", "comma-separated partition ids the -admin server should acquire")
	release := flag.String("release", "", "comma-separated partition ids the -admin server should drain")
	status := flag.Bool("status", false, "with -admin: print the server's routing epoch, owned partitions and member view")
	adminTimeout := flag.Duration("admin-timeout", 5*time.Minute,
		"per-command deadline in admin mode (an acquire blocks while the server builds the partition's alias tables)")
	adminRetries := flag.Int("admin-retries", 3, "reachability probes before an admin command fails with exit code 3")
	flag.Parse()

	if *admin != "" {
		os.Exit(runAdmin(*admin, *acquire, *release, *status, *adminTimeout, *adminRetries))
	}
	if *acquire != "" || *release != "" || *status {
		fmt.Fprintln(os.Stderr, "-acquire/-release/-status require -admin <addr>")
		os.Exit(2)
	}
	if *join != "" && *advertise == "" {
		fmt.Fprintln(os.Stderr, "-join requires -advertise (the address to announce)")
		os.Exit(2)
	}

	strat, err := partition.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var owned []int
	if *own != "" {
		for _, s := range strings.Split(*own, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -own entry %q: %v\n", s, err)
				os.Exit(2)
			}
			owned = append(owned, id)
		}
	}

	var g *graph.Graph
	if *graphFile != "" {
		f, err := os.Open(*graphFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		g, err = graph.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading %s: %v\n", *graphFile, err)
			os.Exit(1)
		}
		fmt.Printf("loaded graph from %s: %d nodes, %d edges\n", *graphFile, g.NumNodes(), g.NumEdges())
	} else {
		scales := map[string]loggen.Scale{
			"tiny": loggen.ScaleTiny, "small": loggen.ScaleSmall,
			"medium": loggen.ScaleMedium, "large": loggen.ScaleLarge,
		}
		sc, ok := scales[*scale]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
			os.Exit(2)
		}
		fmt.Printf("building world (scale %s, seed %d)...\n", *scale, *seed)
		logs := loggen.MustGenerate(loggen.TaobaoConfig(sc, *seed))
		g = graphbuild.Build(logs, graphbuild.DefaultConfig()).Graph
	}

	fmt.Printf("partitioning into %d shards (%s) and building alias tables...\n", *shards, strat)
	srv := rpc.NewServer(g, rpc.ServerConfig{
		Shards:      *shards,
		Strategy:    strat,
		Owned:       owned,
		Replicas:    *replicas,
		Locality:    *locality,
		Advertise:   *advertise,
		ConnWorkers: *rpcWorkers,
		ConnWindow:  *rpcWindow,
		WALDir:      *walDir,
		Fsync:       *fsync,
	})
	if err := srv.ListenAndServe(*listen); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("serving shards %v of %d on %s (%d replicas each)\n",
		srv.OwnedShards(), *shards, srv.Addr(), *replicas)
	if *walDir != "" {
		for _, st := range srv.IngestStats() {
			if st.Seq > 0 {
				fmt.Printf("  shard %d WAL replayed to seq %d (%d delta edges, %d segments)\n",
					st.Shard, st.Seq, st.DeltaEdges, st.WALSegments)
			}
		}
		fmt.Printf("journaling appends under %s (fsync %v)\n", *walDir, *fsync)
	}
	if *join != "" {
		for _, peer := range strings.Split(*join, ",") {
			peer = strings.TrimSpace(peer)
			if peer == "" {
				continue
			}
			if err := srv.AnnounceTo(peer, 0); err != nil {
				fmt.Fprintf(os.Stderr, "join: %v (continuing; clients dialing %s directly still work)\n", err, *advertise)
				continue
			}
			fmt.Printf("announced %s to cluster member %s\n", *advertise, peer)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}

// parseIDList parses a comma-separated partition id list.
func parseIDList(flagName, s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var ids []int
	for _, f := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %v", flagName, f, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// runAdmin drives a running shard server: acquire partitions first, then
// drain (the order a zero-downtime handoff needs when both lists target
// the same server), then report status. The server is probed with
// short-deadline attempts before any command goes out, so an
// unreachable server fails within seconds (exit code 3, typed
// rpc.ErrAdminDeadline) instead of hanging for the operation deadline —
// which stays generous, covering the server-side alias-table build an
// acquire blocks on. Returns the process exit code.
func runAdmin(addr, acquire, release string, status bool, timeout time.Duration, retries int) int {
	acq, err := parseIDList("-acquire", acquire)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rel, err := parseIDList("-release", release)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(acq) == 0 && len(rel) == 0 && !status {
		fmt.Fprintln(os.Stderr, "-admin needs -acquire, -release or -status")
		return 2
	}
	code := func(err error) int {
		if errors.Is(err, rpc.ErrAdminDeadline) {
			return 3
		}
		return 1
	}
	adm := rpc.NewAdmin(addr, rpc.AdminConfig{Attempts: retries, OpTimeout: timeout})
	defer adm.Close()
	for _, id := range acq {
		epoch, err := adm.Reassign(id, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acquire %d on %s: %v\n", id, addr, err)
			return code(err)
		}
		fmt.Printf("%s acquired partition %d (routing epoch %d)\n", addr, id, epoch)
	}
	for _, id := range rel {
		epoch, err := adm.Reassign(id, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "release %d on %s: %v\n", id, addr, err)
			return code(err)
		}
		fmt.Printf("%s drained partition %d (routing epoch %d)\n", addr, id, epoch)
	}
	if status {
		epoch, owned, members, err := adm.Status()
		if err != nil {
			fmt.Fprintf(os.Stderr, "status of %s: %v\n", addr, err)
			return code(err)
		}
		fmt.Printf("%s routing epoch %d, %d partitions:\n", addr, epoch, len(owned))
		for _, sh := range owned {
			fmt.Printf("  partition %d: %d nodes, %d edges\n", sh.ID, sh.Nodes, sh.Edges)
			if ing := sh.Ingest; ing != nil && ing.Seq > 0 {
				fmt.Printf("    ingest: seq %d, %d delta edges over %d nodes, %d compactions, %d WAL segments, %d fsyncs\n",
					ing.Seq, ing.DeltaEdges, ing.DeltaNodes, ing.Compactions, ing.WALSegments, ing.Fsyncs)
			}
		}
		if len(members) > 0 {
			fmt.Printf("  members: %s\n", strings.Join(members, ", "))
		}
	}
	return 0
}
