#!/bin/sh
# docs-check: fail on broken intra-repo links in tracked Markdown files.
#
# Every inline Markdown link target [text](target) that is not an
# external URL or a pure in-page anchor must resolve to a file or
# directory relative to the linking file (anchors are stripped before
# the check). Chained into `make ci` so a doc move or rename cannot
# silently orphan references.
set -eu

fail=0
for f in $(git ls-files '*.md'); do
	dir=$(dirname "$f")
	# One link target per line: grab "](target)" and strip the wrapping.
	for link in $(grep -oE '\]\([^() ]+\)' "$f" | sed -e 's/^](//' -e 's/)$//'); do
		case "$link" in
		http://* | https://* | mailto:*) continue ;; # external
		\#*) continue ;;                             # in-page anchor
		esac
		target=${link%%#*}
		[ -z "$target" ] && continue
		if [ ! -e "$dir/$target" ]; then
			echo "docs-check: $f: broken link -> $link" >&2
			fail=1
		fi
	done
done

if [ "$fail" -ne 0 ]; then
	echo "docs-check: FAILED" >&2
	exit 1
fi
echo "docs-check: all intra-repo Markdown links resolve"
