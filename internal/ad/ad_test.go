package ad

import (
	"math"
	"testing"

	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// checkGrad verifies the analytic gradient of loss(param) against central
// finite differences for a parameter of the given shape.
func checkGrad(t *testing.T, name string, rows, cols int, seed uint64,
	loss func(tp *Tape, p *Node) *Node) {
	t.Helper()
	r := rng.New(seed)
	param := tensor.NewMatrix(rows, cols)
	for i := range param.Data {
		param.Data[i] = r.Float32()*2 - 1
	}
	grad := tensor.NewMatrix(rows, cols)

	tp := NewTape()
	out := loss(tp, tp.Watch(param, grad))
	tp.Backward(out)

	eval := func() float64 {
		tp := NewTape()
		g := tensor.NewMatrix(rows, cols)
		return float64(loss(tp, tp.Watch(param, g)).Scalar())
	}

	const h = 1e-3
	for i := range param.Data {
		orig := param.Data[i]
		param.Data[i] = orig + h
		fp := eval()
		param.Data[i] = orig - h
		fm := eval()
		param.Data[i] = orig
		want := (fp - fm) / (2 * h)
		got := float64(grad.Data[i])
		tol := 2e-2 * (1 + math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Fatalf("%s: grad[%d] = %v, finite diff = %v", name, i, got, want)
		}
	}
}

func constMat(tp *Tape, r *rng.RNG, rows, cols int) *Node {
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Float32()*2 - 1
	}
	return tp.Const(m)
}

func TestGradAdd(t *testing.T) {
	checkGrad(t, "add", 2, 3, 1, func(tp *Tape, p *Node) *Node {
		c := constMat(tp, rng.New(2), 2, 3)
		return tp.SumAll(tp.Add(p, c))
	})
}

func TestGradSub(t *testing.T) {
	checkGrad(t, "sub", 2, 3, 3, func(tp *Tape, p *Node) *Node {
		c := constMat(tp, rng.New(4), 2, 3)
		return tp.SumAll(tp.Sub(c, p))
	})
}

func TestGradMul(t *testing.T) {
	checkGrad(t, "mul", 2, 3, 5, func(tp *Tape, p *Node) *Node {
		c := constMat(tp, rng.New(6), 2, 3)
		return tp.SumAll(tp.Mul(p, c))
	})
	// Self-product exercises gradient accumulation through both inputs.
	checkGrad(t, "mul-self", 2, 2, 7, func(tp *Tape, p *Node) *Node {
		return tp.SumAll(tp.Mul(p, p))
	})
}

func TestGradDiv(t *testing.T) {
	checkGrad(t, "div-num", 1, 4, 8, func(tp *Tape, p *Node) *Node {
		den := tensor.NewMatrix(1, 4)
		for i := range den.Data {
			den.Data[i] = 1.5 + float32(i)*0.25
		}
		return tp.SumAll(tp.Div(p, tp.Const(den)))
	})
	checkGrad(t, "div-den", 1, 4, 9, func(tp *Tape, p *Node) *Node {
		// Shift the denominator away from zero to keep finite diffs valid.
		shifted := tp.Add(p, tp.Const(&tensor.Matrix{Rows: 1, Cols: 4, Data: []float32{3, 3, 3, 3}}))
		num := constMat(tp, rng.New(10), 1, 4)
		return tp.SumAll(tp.Div(num, shifted))
	})
}

func TestGradScale(t *testing.T) {
	checkGrad(t, "scale", 3, 2, 11, func(tp *Tape, p *Node) *Node {
		return tp.SumAll(tp.Scale(-2.5, p))
	})
}

func TestGradMatMul(t *testing.T) {
	checkGrad(t, "matmul-left", 3, 4, 12, func(tp *Tape, p *Node) *Node {
		b := constMat(tp, rng.New(13), 4, 2)
		return tp.SumAll(tp.MatMul(p, b))
	})
	checkGrad(t, "matmul-right", 4, 2, 14, func(tp *Tape, p *Node) *Node {
		a := constMat(tp, rng.New(15), 3, 4)
		return tp.SumAll(tp.MatMul(a, p))
	})
}

func TestGradAddBias(t *testing.T) {
	checkGrad(t, "bias", 1, 3, 16, func(tp *Tape, p *Node) *Node {
		m := constMat(tp, rng.New(17), 4, 3)
		return tp.SumAll(tp.AddBias(m, p))
	})
	checkGrad(t, "bias-matrix", 4, 3, 18, func(tp *Tape, p *Node) *Node {
		b := constMat(tp, rng.New(19), 1, 3)
		return tp.SumAll(tp.AddBias(p, b))
	})
}

func TestGradConcat(t *testing.T) {
	checkGrad(t, "concat-cols", 2, 3, 20, func(tp *Tape, p *Node) *Node {
		c := constMat(tp, rng.New(21), 2, 2)
		// Weight the concat so each side has distinct gradient structure.
		cat := tp.ConcatCols(p, c, p)
		w := constMat(tp, rng.New(22), 2, 8)
		return tp.SumAll(tp.Mul(cat, w))
	})
	checkGrad(t, "concat-rows", 2, 3, 23, func(tp *Tape, p *Node) *Node {
		c := constMat(tp, rng.New(24), 1, 3)
		cat := tp.ConcatRows(c, p)
		w := constMat(tp, rng.New(25), 3, 3)
		return tp.SumAll(tp.Mul(cat, w))
	})
}

func TestGradSliceRows(t *testing.T) {
	checkGrad(t, "slice", 4, 3, 26, func(tp *Tape, p *Node) *Node {
		s := tp.SliceRows(p, 1, 3)
		w := constMat(tp, rng.New(27), 2, 3)
		return tp.SumAll(tp.Mul(s, w))
	})
}

func TestGradSoftmaxRows(t *testing.T) {
	checkGrad(t, "softmax", 2, 4, 28, func(tp *Tape, p *Node) *Node {
		sm := tp.SoftmaxRows(p)
		w := constMat(tp, rng.New(29), 2, 4)
		return tp.SumAll(tp.Mul(sm, w))
	})
}

func TestGradActivations(t *testing.T) {
	checkGrad(t, "sigmoid", 2, 3, 30, func(tp *Tape, p *Node) *Node {
		return tp.SumAll(tp.Sigmoid(p))
	})
	checkGrad(t, "tanh", 2, 3, 31, func(tp *Tape, p *Node) *Node {
		return tp.SumAll(tp.Tanh(p))
	})
	// ReLU/LeakyReLU: shift inputs off zero to avoid the kink.
	checkGrad(t, "relu", 2, 3, 32, func(tp *Tape, p *Node) *Node {
		shift := tensor.NewMatrix(2, 3)
		for i := range shift.Data {
			shift.Data[i] = 2.5
		}
		return tp.SumAll(tp.ReLU(tp.Add(p, tp.Const(shift))))
	})
	checkGrad(t, "leakyrelu", 2, 3, 33, func(tp *Tape, p *Node) *Node {
		shift := tensor.NewMatrix(2, 3)
		for i := range shift.Data {
			shift.Data[i] = -2.5
		}
		return tp.SumAll(tp.LeakyReLU(0.2, tp.Add(p, tp.Const(shift))))
	})
}

func TestGradSqrtNormCosine(t *testing.T) {
	checkGrad(t, "sqrt", 1, 3, 34, func(tp *Tape, p *Node) *Node {
		// Keep arguments positive.
		sq := tp.Mul(p, p)
		one := tensor.NewMatrix(1, 3)
		for i := range one.Data {
			one.Data[i] = 1
		}
		return tp.SumAll(tp.Sqrt(tp.Add(sq, tp.Const(one))))
	})
	checkGrad(t, "norm", 1, 4, 35, func(tp *Tape, p *Node) *Node {
		return tp.Norm(p)
	})
	checkGrad(t, "cosine", 1, 4, 36, func(tp *Tape, p *Node) *Node {
		b := constMat(tp, rng.New(37), 1, 4)
		return tp.CosineSim(p, b)
	})
}

func TestGradReductions(t *testing.T) {
	checkGrad(t, "meanall", 3, 3, 38, func(tp *Tape, p *Node) *Node {
		return tp.MeanAll(p)
	})
	checkGrad(t, "meanrows", 3, 3, 39, func(tp *Tape, p *Node) *Node {
		m := tp.MeanRows(p)
		w := constMat(tp, rng.New(40), 1, 3)
		return tp.SumAll(tp.Mul(m, w))
	})
	checkGrad(t, "dot", 1, 5, 41, func(tp *Tape, p *Node) *Node {
		b := constMat(tp, rng.New(42), 1, 5)
		return tp.Dot(p, b)
	})
}

func TestGradBCE(t *testing.T) {
	targets := []float32{1, 0, 1, 0, 1, 1}
	checkGrad(t, "bce", 1, 6, 43, func(tp *Tape, p *Node) *Node {
		return tp.BCEWithLogits(p, targets)
	})
}

func TestGradFocalBCE(t *testing.T) {
	targets := []float32{1, 0, 1, 0, 1, 1}
	for _, gamma := range []float64{0, 1, 2} {
		checkGrad(t, "focal", 1, 6, 44, func(tp *Tape, p *Node) *Node {
			return tp.FocalBCEWithLogits(p, targets, gamma)
		})
	}
}

// Focal loss with gamma=0 must equal plain BCE.
func TestFocalGammaZeroMatchesBCE(t *testing.T) {
	r := rng.New(50)
	logits := tensor.NewMatrix(1, 8)
	targets := make([]float32, 8)
	for i := range logits.Data {
		logits.Data[i] = r.Float32()*6 - 3
		if r.Float64() < 0.5 {
			targets[i] = 1
		}
	}
	tp := NewTape()
	l := tp.Const(logits)
	bce := tp.BCEWithLogits(l, targets).Scalar()
	focal := tp.FocalBCEWithLogits(l, targets, 0).Scalar()
	if math.Abs(float64(bce-focal)) > 1e-5 {
		t.Fatalf("focal(γ=0)=%v, bce=%v", focal, bce)
	}
}

// Focal loss must down-weight easy examples relative to BCE.
func TestFocalDownWeightsEasyExamples(t *testing.T) {
	tp := NewTape()
	easy := tensor.NewMatrix(1, 1)
	easy.Data[0] = 5 // confident correct positive
	l := tp.Const(easy)
	bce := tp.BCEWithLogits(l, []float32{1}).Scalar()
	focal := tp.FocalBCEWithLogits(l, []float32{1}, 2).Scalar()
	if focal >= bce {
		t.Fatalf("focal %v should be < bce %v on an easy example", focal, bce)
	}
}

func TestSharedSubexpressionAccumulates(t *testing.T) {
	// loss = sum(p) + sum(p): gradient must be 2 everywhere.
	param := tensor.NewMatrix(2, 2)
	grad := tensor.NewMatrix(2, 2)
	tp := NewTape()
	p := tp.Watch(param, grad)
	loss := tp.Add(tp.SumAll(p), tp.SumAll(p))
	tp.Backward(loss)
	for i, g := range grad.Data {
		if g != 2 {
			t.Fatalf("grad[%d] = %v, want 2", i, g)
		}
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on non-scalar did not panic")
		}
	}()
	tp := NewTape()
	n := tp.Const(tensor.NewMatrix(2, 2))
	tp.Backward(n)
}

func TestConstHasNoGrad(t *testing.T) {
	tp := NewTape()
	c := tp.Const(tensor.NewMatrix(1, 1))
	out := tp.SumAll(c)
	tp.Backward(out)
	if c.Grad != nil {
		t.Fatal("constant grew a gradient")
	}
}

func TestCustomNode(t *testing.T) {
	// A custom square op: y = x², dy/dx = 2x.
	param := tensor.NewMatrix(1, 3)
	copy(param.Data, []float32{1, 2, 3})
	grad := tensor.NewMatrix(1, 3)
	tp := NewTape()
	p := tp.Watch(param, grad)
	val := tensor.NewMatrix(1, 3)
	for i, v := range param.Data {
		val.Data[i] = v * v
	}
	sq := tp.Custom(val, true, func(out *Node) {
		for i := range grad.Data {
			p.Grad.Data[i] += out.Grad.Data[i] * 2 * param.Data[i]
		}
	})
	tp.Backward(tp.SumAll(sq))
	want := []float32{2, 4, 6}
	for i := range want {
		if grad.Data[i] != want[i] {
			t.Fatalf("custom grad = %v, want %v", grad.Data, want)
		}
	}
}

func TestScalarAccessor(t *testing.T) {
	tp := NewTape()
	m := tensor.NewMatrix(1, 1)
	m.Data[0] = 7
	if tp.Const(m).Scalar() != 7 {
		t.Fatal("Scalar accessor broken")
	}
}

func BenchmarkForwardBackwardMLP(b *testing.B) {
	r := rng.New(1)
	w1 := tensor.NewMatrix(64, 32)
	w2 := tensor.NewMatrix(32, 1)
	for i := range w1.Data {
		w1.Data[i] = r.Float32() - 0.5
	}
	for i := range w2.Data {
		w2.Data[i] = r.Float32() - 0.5
	}
	g1 := tensor.NewMatrix(64, 32)
	g2 := tensor.NewMatrix(32, 1)
	x := tensor.NewMatrix(16, 64)
	for i := range x.Data {
		x.Data[i] = r.Float32()
	}
	targets := make([]float32, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		h := tp.ReLU(tp.MatMul(tp.Const(x), tp.Watch(w1, g1)))
		logits := tp.MatMul(h, tp.Watch(w2, g2))
		loss := tp.BCEWithLogits(logits, targets)
		tp.Backward(loss)
	}
}

func TestGradTranspose(t *testing.T) {
	checkGrad(t, "transpose", 2, 3, 60, func(tp *Tape, p *Node) *Node {
		w := constMat(tp, rng.New(61), 3, 2)
		return tp.SumAll(tp.Mul(tp.Transpose(p), w))
	})
}

func TestGradScaleBy(t *testing.T) {
	checkGrad(t, "scaleby-scalar", 1, 1, 62, func(tp *Tape, p *Node) *Node {
		m := constMat(tp, rng.New(63), 2, 3)
		return tp.SumAll(tp.ScaleBy(p, m))
	})
	checkGrad(t, "scaleby-matrix", 2, 3, 64, func(tp *Tape, p *Node) *Node {
		s := constMat(tp, rng.New(65), 1, 1)
		return tp.SumAll(tp.ScaleBy(s, p))
	})
}
