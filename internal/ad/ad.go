// Package ad implements a small reverse-mode automatic-differentiation
// engine over float32 matrices. It is the training substrate standing in
// for the paper's TensorFlow/XDL stack: every model in this reproduction
// (Zoomer and all baselines) builds its forward pass as a tape of ad
// operations and obtains exact gradients with Backward.
//
// The design is a dynamic tape ("define-by-run"): each operation appends a
// node holding its output value and a closure that propagates the output
// gradient to the operation's inputs. Backward walks the tape in reverse.
// Gradients accumulate, so shared subexpressions and parameter reuse work
// naturally.
//
// Parameters live outside the tape (see package nn); they join a forward
// pass via Tape.Watch, which wires a persistent gradient buffer into the
// tape so that optimizers can read accumulated gradients after Backward.
package ad

import (
	"fmt"
	"math"

	"zoomer/internal/tensor"
)

// Node is one value in a computation graph: an output matrix plus the
// machinery to propagate gradients to its inputs. Nodes are created only
// through Tape methods.
type Node struct {
	// Val is the forward value. It must not be mutated after creation.
	Val *tensor.Matrix
	// Grad is dL/dVal, allocated lazily during Backward (or supplied by
	// Watch for parameter nodes).
	Grad *tensor.Matrix

	tape      *Tape
	needsGrad bool
	back      func() // propagate n.Grad into input nodes; nil for leaves
}

// Rows returns the row count of the node's value.
func (n *Node) Rows() int { return n.Val.Rows }

// Cols returns the column count of the node's value.
func (n *Node) Cols() int { return n.Val.Cols }

// Scalar returns the single element of a 1x1 node. It panics otherwise.
func (n *Node) Scalar() float32 {
	if n.Val.Rows != 1 || n.Val.Cols != 1 {
		panic(fmt.Sprintf("ad: Scalar on %dx%d node", n.Val.Rows, n.Val.Cols))
	}
	return n.Val.Data[0]
}

func (n *Node) ensureGrad() *tensor.Matrix {
	if n.Grad == nil {
		n.Grad = tensor.NewMatrix(n.Val.Rows, n.Val.Cols)
	}
	return n.Grad
}

// Tape records operations for reverse-mode differentiation. A Tape is for
// a single forward/backward cycle; allocate a fresh one per training step.
// Tapes are not safe for concurrent use.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Len reports the number of recorded nodes, useful for memory accounting
// in the efficiency experiments.
func (t *Tape) Len() int { return len(t.nodes) }

func (t *Tape) record(val *tensor.Matrix, needsGrad bool, back func()) *Node {
	n := &Node{Val: val, tape: t, needsGrad: needsGrad, back: back}
	t.nodes = append(t.nodes, n)
	return n
}

// Const introduces a matrix that does not require gradients.
func (t *Tape) Const(m *tensor.Matrix) *Node {
	return t.record(m, false, nil)
}

// ConstVec introduces a 1xN constant row vector view of v.
func (t *Tape) ConstVec(v tensor.Vec) *Node {
	return t.Const(&tensor.Matrix{Rows: 1, Cols: len(v), Data: v})
}

// Watch introduces a parameter: val is the parameter storage and grad the
// persistent gradient buffer gradients accumulate into. Both must share a
// shape. Optimizers own zeroing grad between steps.
func (t *Tape) Watch(val, grad *tensor.Matrix) *Node {
	if val.Rows != grad.Rows || val.Cols != grad.Cols {
		panic("ad: Watch value/grad shape mismatch")
	}
	n := t.record(val, true, nil)
	n.Grad = grad
	return n
}

// Backward runs reverse-mode accumulation from root, which must be a 1x1
// scalar node (a loss). It seeds dL/droot = 1 and walks the tape in
// reverse creation order, which is a valid topological order for a
// define-by-run graph.
func (t *Tape) Backward(root *Node) {
	if root.tape != t {
		panic("ad: Backward on node from another tape")
	}
	if root.Val.Rows != 1 || root.Val.Cols != 1 {
		panic(fmt.Sprintf("ad: Backward root must be scalar, got %dx%d", root.Val.Rows, root.Val.Cols))
	}
	root.ensureGrad().Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.back != nil && n.Grad != nil && n.needsGrad {
			n.back()
		}
	}
}

func anyNeedsGrad(nodes ...*Node) bool {
	for _, n := range nodes {
		if n.needsGrad {
			return true
		}
	}
	return false
}

func sameShape(a, b *Node) {
	if a.Val.Rows != b.Val.Rows || a.Val.Cols != b.Val.Cols {
		panic(fmt.Sprintf("ad: shape mismatch %dx%d vs %dx%d", a.Val.Rows, a.Val.Cols, b.Val.Rows, b.Val.Cols))
	}
}

// Add returns a + b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	sameShape(a, b)
	val := tensor.NewMatrix(a.Rows(), a.Cols())
	for i := range val.Data {
		val.Data[i] = a.Val.Data[i] + b.Val.Data[i]
	}
	out := t.record(val, anyNeedsGrad(a, b), nil)
	out.back = func() {
		if a.needsGrad {
			g := a.ensureGrad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i]
			}
		}
		if b.needsGrad {
			g := b.ensureGrad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i]
			}
		}
	}
	return out
}

// Sub returns a - b (same shape).
func (t *Tape) Sub(a, b *Node) *Node {
	sameShape(a, b)
	val := tensor.NewMatrix(a.Rows(), a.Cols())
	for i := range val.Data {
		val.Data[i] = a.Val.Data[i] - b.Val.Data[i]
	}
	out := t.record(val, anyNeedsGrad(a, b), nil)
	out.back = func() {
		if a.needsGrad {
			g := a.ensureGrad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i]
			}
		}
		if b.needsGrad {
			g := b.ensureGrad()
			for i := range g.Data {
				g.Data[i] -= out.Grad.Data[i]
			}
		}
	}
	return out
}

// Mul returns the element-wise product a * b (same shape).
func (t *Tape) Mul(a, b *Node) *Node {
	sameShape(a, b)
	val := tensor.NewMatrix(a.Rows(), a.Cols())
	for i := range val.Data {
		val.Data[i] = a.Val.Data[i] * b.Val.Data[i]
	}
	out := t.record(val, anyNeedsGrad(a, b), nil)
	out.back = func() {
		if a.needsGrad {
			g := a.ensureGrad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i] * b.Val.Data[i]
			}
		}
		if b.needsGrad {
			g := b.ensureGrad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i] * a.Val.Data[i]
			}
		}
	}
	return out
}

// Div returns the element-wise quotient a / (b + eps·sign(b)) with a small
// epsilon guard against division by near-zero.
const divEps = 1e-8

func guardDenom(v float32) float32 {
	if v >= 0 && v < divEps {
		return divEps
	}
	if v < 0 && v > -divEps {
		return -divEps
	}
	return v
}

// Div returns element-wise a / b with epsilon-guarded denominators.
func (t *Tape) Div(a, b *Node) *Node {
	sameShape(a, b)
	val := tensor.NewMatrix(a.Rows(), a.Cols())
	den := make([]float32, len(val.Data))
	for i := range val.Data {
		den[i] = guardDenom(b.Val.Data[i])
		val.Data[i] = a.Val.Data[i] / den[i]
	}
	out := t.record(val, anyNeedsGrad(a, b), nil)
	out.back = func() {
		if a.needsGrad {
			g := a.ensureGrad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i] / den[i]
			}
		}
		if b.needsGrad {
			g := b.ensureGrad()
			for i := range g.Data {
				g.Data[i] -= out.Grad.Data[i] * val.Data[i] / den[i]
			}
		}
	}
	return out
}

// Scale returns alpha * a.
func (t *Tape) Scale(alpha float32, a *Node) *Node {
	val := tensor.NewMatrix(a.Rows(), a.Cols())
	for i := range val.Data {
		val.Data[i] = alpha * a.Val.Data[i]
	}
	out := t.record(val, a.needsGrad, nil)
	out.back = func() {
		if a.needsGrad {
			g := a.ensureGrad()
			for i := range g.Data {
				g.Data[i] += alpha * out.Grad.Data[i]
			}
		}
	}
	return out
}

// MatMul returns a · b.
func (t *Tape) MatMul(a, b *Node) *Node {
	val := tensor.MatMul(a.Val, b.Val)
	out := t.record(val, anyNeedsGrad(a, b), nil)
	out.back = func() {
		if a.needsGrad {
			tensor.GemmAcc(a.ensureGrad(), out.Grad, b.Val, false, true)
		}
		if b.needsGrad {
			tensor.GemmAcc(b.ensureGrad(), a.Val, out.Grad, true, false)
		}
	}
	return out
}

// AddBias returns m + bias broadcast over rows; bias must be 1 x m.Cols.
func (t *Tape) AddBias(m, bias *Node) *Node {
	if bias.Rows() != 1 || bias.Cols() != m.Cols() {
		panic(fmt.Sprintf("ad: AddBias bias shape %dx%d for matrix %dx%d", bias.Rows(), bias.Cols(), m.Rows(), m.Cols()))
	}
	val := tensor.NewMatrix(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		row := m.Val.Row(i)
		orow := val.Row(i)
		for j := range orow {
			orow[j] = row[j] + bias.Val.Data[j]
		}
	}
	out := t.record(val, anyNeedsGrad(m, bias), nil)
	out.back = func() {
		if m.needsGrad {
			g := m.ensureGrad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i]
			}
		}
		if bias.needsGrad {
			g := bias.ensureGrad()
			for i := 0; i < out.Rows(); i++ {
				row := out.Grad.Row(i)
				for j := range row {
					g.Data[j] += row[j]
				}
			}
		}
	}
	return out
}

// ConcatCols concatenates nodes horizontally; all must share a row count.
func (t *Tape) ConcatCols(nodes ...*Node) *Node {
	if len(nodes) == 0 {
		panic("ad: ConcatCols of nothing")
	}
	rows := nodes[0].Rows()
	total := 0
	for _, n := range nodes {
		if n.Rows() != rows {
			panic("ad: ConcatCols row mismatch")
		}
		total += n.Cols()
	}
	val := tensor.NewMatrix(rows, total)
	off := 0
	for _, n := range nodes {
		for i := 0; i < rows; i++ {
			copy(val.Row(i)[off:off+n.Cols()], n.Val.Row(i))
		}
		off += n.Cols()
	}
	out := t.record(val, anyNeedsGrad(nodes...), nil)
	out.back = func() {
		off := 0
		for _, n := range nodes {
			if n.needsGrad {
				g := n.ensureGrad()
				for i := 0; i < rows; i++ {
					grow := out.Grad.Row(i)[off : off+n.Cols()]
					dst := g.Row(i)
					for j := range dst {
						dst[j] += grow[j]
					}
				}
			}
			off += n.Cols()
		}
	}
	return out
}

// ConcatRows concatenates nodes vertically; all must share a column count.
func (t *Tape) ConcatRows(nodes ...*Node) *Node {
	if len(nodes) == 0 {
		panic("ad: ConcatRows of nothing")
	}
	cols := nodes[0].Cols()
	total := 0
	for _, n := range nodes {
		if n.Cols() != cols {
			panic("ad: ConcatRows column mismatch")
		}
		total += n.Rows()
	}
	val := tensor.NewMatrix(total, cols)
	off := 0
	for _, n := range nodes {
		copy(val.Data[off*cols:], n.Val.Data)
		off += n.Rows()
	}
	out := t.record(val, anyNeedsGrad(nodes...), nil)
	out.back = func() {
		off := 0
		for _, n := range nodes {
			if n.needsGrad {
				g := n.ensureGrad()
				src := out.Grad.Data[off*cols : (off+n.Rows())*cols]
				for i := range g.Data {
					g.Data[i] += src[i]
				}
			}
			off += n.Rows()
		}
	}
	return out
}

// SliceRows returns the view [lo, hi) of m's rows as a new node.
func (t *Tape) SliceRows(m *Node, lo, hi int) *Node {
	if lo < 0 || hi > m.Rows() || lo > hi {
		panic(fmt.Sprintf("ad: SliceRows [%d,%d) of %d rows", lo, hi, m.Rows()))
	}
	cols := m.Cols()
	val := tensor.NewMatrix(hi-lo, cols)
	copy(val.Data, m.Val.Data[lo*cols:hi*cols])
	out := t.record(val, m.needsGrad, nil)
	out.back = func() {
		if m.needsGrad {
			g := m.ensureGrad()
			dst := g.Data[lo*cols : hi*cols]
			for i := range out.Grad.Data {
				dst[i] += out.Grad.Data[i]
			}
		}
	}
	return out
}

// SoftmaxRows applies softmax independently to each row.
func (t *Tape) SoftmaxRows(m *Node) *Node {
	val := tensor.NewMatrix(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		tensor.Softmax(m.Val.Row(i), val.Row(i))
	}
	out := t.record(val, m.needsGrad, nil)
	out.back = func() {
		if !m.needsGrad {
			return
		}
		g := m.ensureGrad()
		for i := 0; i < m.Rows(); i++ {
			y := val.Row(i)
			dy := out.Grad.Row(i)
			var dot float64
			for j := range y {
				dot += float64(y[j]) * float64(dy[j])
			}
			dst := g.Row(i)
			for j := range y {
				dst[j] += y[j] * (dy[j] - float32(dot))
			}
		}
	}
	return out
}

func (t *Tape) unary(a *Node, f func(float32) float32, df func(x, y float32) float32) *Node {
	val := tensor.NewMatrix(a.Rows(), a.Cols())
	for i, x := range a.Val.Data {
		val.Data[i] = f(x)
	}
	out := t.record(val, a.needsGrad, nil)
	out.back = func() {
		if !a.needsGrad {
			return
		}
		g := a.ensureGrad()
		for i := range g.Data {
			g.Data[i] += out.Grad.Data[i] * df(a.Val.Data[i], val.Data[i])
		}
	}
	return out
}

// Sigmoid applies the logistic function element-wise.
func (t *Tape) Sigmoid(a *Node) *Node {
	return t.unary(a, tensor.Sigmoid, func(_, y float32) float32 { return y * (1 - y) })
}

// Tanh applies tanh element-wise.
func (t *Tape) Tanh(a *Node) *Node {
	return t.unary(a,
		func(x float32) float32 { return float32(math.Tanh(float64(x))) },
		func(_, y float32) float32 { return 1 - y*y })
}

// ReLU applies max(0, x) element-wise.
func (t *Tape) ReLU(a *Node) *Node {
	return t.unary(a,
		func(x float32) float32 {
			if x > 0 {
				return x
			}
			return 0
		},
		func(x, _ float32) float32 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// LeakyReLU applies x>0 ? x : alpha*x element-wise (the GAT/paper
// attention nonlinearity, conventionally alpha=0.2).
func (t *Tape) LeakyReLU(alpha float32, a *Node) *Node {
	return t.unary(a,
		func(x float32) float32 {
			if x > 0 {
				return x
			}
			return alpha * x
		},
		func(x, _ float32) float32 {
			if x > 0 {
				return 1
			}
			return alpha
		})
}

// Sqrt applies sqrt(max(x, 0) + eps) element-wise; the epsilon keeps the
// derivative finite at zero, which matters for norm computations.
func (t *Tape) Sqrt(a *Node) *Node {
	const eps = 1e-12
	return t.unary(a,
		func(x float32) float32 {
			if x < 0 {
				x = 0
			}
			return float32(math.Sqrt(float64(x) + eps))
		},
		func(_, y float32) float32 { return 1 / (2 * y) })
}

// SumAll reduces to a 1x1 scalar node holding the sum of all elements.
func (t *Tape) SumAll(a *Node) *Node {
	var s float64
	for _, v := range a.Val.Data {
		s += float64(v)
	}
	val := tensor.NewMatrix(1, 1)
	val.Data[0] = float32(s)
	out := t.record(val, a.needsGrad, nil)
	out.back = func() {
		if !a.needsGrad {
			return
		}
		g := a.ensureGrad()
		d := out.Grad.Data[0]
		for i := range g.Data {
			g.Data[i] += d
		}
	}
	return out
}

// MeanAll reduces to a 1x1 scalar node holding the mean of all elements.
func (t *Tape) MeanAll(a *Node) *Node {
	n := len(a.Val.Data)
	if n == 0 {
		panic("ad: MeanAll of empty node")
	}
	return t.Scale(1/float32(n), t.SumAll(a))
}

// MeanRows returns the 1 x Cols mean over rows (mean pooling).
func (t *Tape) MeanRows(a *Node) *Node {
	if a.Rows() == 0 {
		panic("ad: MeanRows of empty node")
	}
	val := tensor.NewMatrix(1, a.Cols())
	for i := 0; i < a.Rows(); i++ {
		row := a.Val.Row(i)
		for j, v := range row {
			val.Data[j] += v
		}
	}
	inv := 1 / float32(a.Rows())
	for j := range val.Data {
		val.Data[j] *= inv
	}
	out := t.record(val, a.needsGrad, nil)
	out.back = func() {
		if !a.needsGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < a.Rows(); i++ {
			dst := g.Row(i)
			for j := range dst {
				dst[j] += out.Grad.Data[j] * inv
			}
		}
	}
	return out
}

// Dot returns the scalar inner product of two 1xN (or Nx1) nodes.
func (t *Tape) Dot(a, b *Node) *Node {
	return t.SumAll(t.Mul(a, b))
}

// Norm returns the scalar Euclidean norm of a node's elements.
func (t *Tape) Norm(a *Node) *Node {
	return t.Sqrt(t.SumAll(t.Mul(a, a)))
}

// CosineSim returns the scalar cosine similarity of two same-shape nodes,
// the twin-tower scoring function (score = cos(uq, i)) and the
// semantic-combination weight of eq. (10).
func (t *Tape) CosineSim(a, b *Node) *Node {
	sameShape(a, b)
	return t.Div(t.Dot(a, b), t.Mul(t.Norm(a), t.Norm(b)))
}

// Custom introduces a node with a caller-provided value and backward
// closure, for operations with bespoke gradient handling (notably sparse
// embedding lookups in package nn). The closure receives the output node
// and must accumulate into the inputs it closed over.
func (t *Tape) Custom(val *tensor.Matrix, needsGrad bool, back func(out *Node)) *Node {
	out := t.record(val, needsGrad, nil)
	if back != nil {
		out.back = func() { back(out) }
	}
	return out
}

// BCEWithLogits returns the mean binary cross-entropy between logits (any
// shape) and targets (same element count, values in [0,1]), computed in
// the numerically stable log-sum-exp form. The gradient with respect to
// each logit is (sigmoid(x) - z) / n.
func (t *Tape) BCEWithLogits(logits *Node, targets []float32) *Node {
	n := len(logits.Val.Data)
	if n != len(targets) {
		panic(fmt.Sprintf("ad: BCEWithLogits %d logits vs %d targets", n, len(targets)))
	}
	if n == 0 {
		panic("ad: BCEWithLogits with no samples")
	}
	var loss float64
	for i, x64 := range logits.Val.Data {
		x := float64(x64)
		z := float64(targets[i])
		// max(x,0) - x*z + log(1+exp(-|x|))
		loss += math.Max(x, 0) - x*z + math.Log1p(math.Exp(-math.Abs(x)))
	}
	val := tensor.NewMatrix(1, 1)
	val.Data[0] = float32(loss / float64(n))
	out := t.record(val, logits.needsGrad, nil)
	out.back = func() {
		if !logits.needsGrad {
			return
		}
		g := logits.ensureGrad()
		scale := out.Grad.Data[0] / float32(n)
		for i, x := range logits.Val.Data {
			g.Data[i] += scale * (tensor.Sigmoid(x) - targets[i])
		}
	}
	return out
}

// FocalBCEWithLogits returns the mean focal binary cross-entropy
// (Lin et al.) with focusing parameter gamma, the loss the paper trains
// Zoomer with ("focal cross-entropy loss ... focal weight to 2"):
//
//	FL = -z·(1-p)^γ·log p - (1-z)·p^γ·log(1-p),  p = sigmoid(x)
//
// Gradients are computed analytically in float64 for stability.
func (t *Tape) FocalBCEWithLogits(logits *Node, targets []float32, gamma float64) *Node {
	n := len(logits.Val.Data)
	if n != len(targets) {
		panic(fmt.Sprintf("ad: FocalBCEWithLogits %d logits vs %d targets", n, len(targets)))
	}
	if n == 0 {
		panic("ad: FocalBCEWithLogits with no samples")
	}
	const eps = 1e-9
	var loss float64
	grads := make([]float64, n)
	for i, x64 := range logits.Val.Data {
		x := float64(x64)
		z := float64(targets[i])
		p := 1 / (1 + math.Exp(-x))
		p = math.Min(math.Max(p, eps), 1-eps)
		q := 1 - p
		logP, logQ := math.Log(p), math.Log(q)
		loss += -z*math.Pow(q, gamma)*logP - (1-z)*math.Pow(p, gamma)*logQ
		// d/dp of the positive term: -z [ -γ(1-p)^{γ-1} log p + (1-p)^γ / p ]
		dpos := -z * (-gamma*math.Pow(q, gamma-1)*logP + math.Pow(q, gamma)/p)
		// d/dp of the negative term: -(1-z) [ γ p^{γ-1} log(1-p) - p^γ/(1-p) ]
		dneg := -(1 - z) * (gamma*math.Pow(p, gamma-1)*logQ - math.Pow(p, gamma)/q)
		grads[i] = (dpos + dneg) * p * q // chain through dp/dx = p(1-p)
	}
	val := tensor.NewMatrix(1, 1)
	val.Data[0] = float32(loss / float64(n))
	out := t.record(val, logits.needsGrad, nil)
	out.back = func() {
		if !logits.needsGrad {
			return
		}
		g := logits.ensureGrad()
		scale := float64(out.Grad.Data[0]) / float64(n)
		for i := range grads {
			g.Data[i] += float32(scale * grads[i])
		}
	}
	return out
}

// Transpose returns aᵀ.
func (t *Tape) Transpose(a *Node) *Node {
	val := tensor.Transpose(a.Val)
	out := t.record(val, a.needsGrad, nil)
	out.back = func() {
		if !a.needsGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < out.Grad.Rows; i++ {
			for j := 0; j < out.Grad.Cols; j++ {
				g.Data[j*g.Cols+i] += out.Grad.Data[i*out.Grad.Cols+j]
			}
		}
	}
	return out
}

// ScaleBy multiplies every element of m by a 1x1 scalar node: the
// semantic-combination step (eq. 11) scales per-type aggregates by their
// learned/cosine weights.
func (t *Tape) ScaleBy(scalar, m *Node) *Node {
	if scalar.Val.Rows != 1 || scalar.Val.Cols != 1 {
		panic("ad: ScaleBy needs a 1x1 scalar node")
	}
	s := scalar.Val.Data[0]
	val := tensor.NewMatrix(m.Rows(), m.Cols())
	for i, v := range m.Val.Data {
		val.Data[i] = s * v
	}
	out := t.record(val, anyNeedsGrad(scalar, m), nil)
	out.back = func() {
		if m.needsGrad {
			g := m.ensureGrad()
			for i := range g.Data {
				g.Data[i] += s * out.Grad.Data[i]
			}
		}
		if scalar.needsGrad {
			var acc float64
			for i, v := range m.Val.Data {
				acc += float64(v) * float64(out.Grad.Data[i])
			}
			scalar.ensureGrad().Data[0] += float32(acc)
		}
	}
	return out
}
