package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"zoomer/internal/ann"
	"zoomer/internal/core"
	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/serve"
	"zoomer/internal/tensor"
)

// buildGateway stands up a tiny end-to-end stack (world, trimmed model,
// in-process engine, cache, index, worker pool) behind a Gateway and an
// httptest front.
func buildGateway(t testing.TB, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 1))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	ccfg := core.DefaultConfig()
	ccfg.EmbedDim = 16
	ccfg.OutDim = 16
	ccfg.Hops = 1
	ccfg.FanOut = 4
	model := core.NewZoomer(res.Graph, logs.Vocab(), ccfg, 2)
	emb := serve.NewEmbedder(model.ExportServing())

	eng := engine.New(res.Graph, engine.DefaultConfig())
	cache := serve.NewNeighborCache(eng, 8, 3)
	t.Cleanup(cache.Close)

	items := res.Graph.NodesOfType(graph.Item)
	ids := make([]int64, len(items))
	vecs := make([]tensor.Vec, len(items))
	for i, it := range items {
		ids[i] = int64(it)
		vecs[i] = emb.Item(it)
	}
	index := ann.Build(ids, vecs, ann.Config{NumLists: 8, Iters: 4, Seed: 4})

	scfg := serve.DefaultConfig()
	scfg.Workers = 2
	scfg.TopK = 8
	scfg.NProbe = 2
	srv := serve.NewServer(emb, cache, index, scfg)
	t.Cleanup(srv.Close)

	gw := New(srv, res.Graph.NodesOfType(graph.User), res.Graph.NodesOfType(graph.Query),
		res.Graph.NumNodes(), cfg)
	gw.EnableIngest(eng, cache)
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return gw, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, body
}

func TestRetrieveJSONAndBinary(t *testing.T) {
	gw, ts := buildGateway(t, Config{})
	_ = gw

	resp, body := get(t, ts.URL+"/v1/retrieve?rand=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rand retrieve: %d %s", resp.StatusCode, body)
	}
	var reply retrieveReply
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("bad JSON: %v (%s)", err, body)
	}
	if len(reply.Items) == 0 {
		t.Fatal("no items retrieved")
	}

	// The binary endpoint answers the same shape in the ZGR1 frame.
	resp, body = get(t, fmt.Sprintf("%s/v1/retrieve.bin?user=%d&query=%d", ts.URL, reply.User, reply.Query))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary retrieve: %d", resp.StatusCode)
	}
	items, _, err := DecodeBinary(body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(items) == 0 {
		t.Fatal("no items in binary answer")
	}

	// k truncates.
	resp, body = get(t, ts.URL+"/v1/retrieve?rand=1&k=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("k retrieve: %d", resp.StatusCode)
	}
	reply = retrieveReply{}
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(reply.Items) > 2 {
		t.Fatalf("k=2 returned %d items", len(reply.Items))
	}
}

func TestRetrieveValidatesIDs(t *testing.T) {
	gw, ts := buildGateway(t, Config{})
	for _, q := range []string{
		"user=abc&query=1",
		"user=1",
		fmt.Sprintf("user=%d&query=1", gw.numNodes), // one past the end
		"user=1&query=999999999",
	} {
		resp, _ := get(t, ts.URL+"/v1/retrieve?"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q: got %d, want 400", q, resp.StatusCode)
		}
	}
}

// An expired per-request deadline is answered 504 — the typed
// engine.ErrDeadlineExceeded surfacing at the door, not a hang and not
// a silent empty answer.
func TestDeadlineExceededIsTyped(t *testing.T) {
	_, ts := buildGateway(t, Config{})
	// 100ns budget: expired before the worker dequeues it.
	resp, body := get(t, ts.URL+"/v1/retrieve?rand=1&deadline_ms=0.0001")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: got %d (%s), want 504", resp.StatusCode, body)
	}
}

// Above the soft threshold admitted requests degrade to cache-only
// answers: still 200, marked degraded, generating no backend samples.
// MaxInFlight=1 puts every single request above the 0.75 threshold.
func TestShedDegradesToCacheOnly(t *testing.T) {
	gw, ts := buildGateway(t, Config{MaxInFlight: 1})

	// Warm the cache so the degraded answer has neighbors to use.
	resp, _ := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("unhealthy before start")
	}
	resp, body := get(t, ts.URL+"/v1/retrieve?user=1&query=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrieve: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Zoomer-Degraded") != "1" {
		t.Fatal("cache-only answer not marked degraded")
	}
	var reply retrieveReply
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if !reply.Degraded {
		t.Fatal("JSON reply not marked degraded")
	}
	if gw.met.degraded.Load() == 0 {
		t.Fatal("degraded counter not incremented")
	}
}

// Beyond the hard cap the gateway sheds with 503 + Retry-After instead
// of queueing.
func TestHardInFlightCapSheds(t *testing.T) {
	gw, ts := buildGateway(t, Config{MaxInFlight: 4})
	gw.inflight.Add(4) // pin admission at the cap
	defer gw.inflight.Add(-4)
	resp, _ := get(t, ts.URL+"/v1/retrieve?rand=1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over cap: got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if gw.met.shedHard.Load() == 0 {
		t.Fatal("shed counter not incremented")
	}
}

// Drain: concurrent in-flight requests all finish (zero failures), new
// requests are refused, healthz flips to 503.
func TestDrainFinishesInFlight(t *testing.T) {
	gw, ts := buildGateway(t, Config{MaxInFlight: 64})

	const burst = 24
	codes := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/retrieve?rand=1")
			if err != nil {
				codes[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := gw.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for i, c := range codes {
		// Every request must have been answered: served before/during the
		// drain, or refused 503 once draining started — never dropped on
		// the floor, never a transport error.
		if c != http.StatusOK && c != http.StatusServiceUnavailable {
			t.Fatalf("request %d finished with %d during drain", i, c)
		}
	}
	if gw.InFlight() != 0 {
		t.Fatalf("%d requests still in flight after drain", gw.InFlight())
	}

	resp, _ := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d, want 503", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/retrieve?rand=1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("retrieve after drain: %d, want 503", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := buildGateway(t, Config{})
	get(t, ts.URL+"/v1/retrieve?rand=1")
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	page := string(body)
	for _, want := range []string{
		`zoomer_gateway_requests_total{route="retrieve",code="200"}`,
		`zoomer_gateway_request_seconds_bucket{route="retrieve",le="+Inf"}`,
		"zoomer_gateway_inflight",
		`zoomer_gateway_shed_total{kind="inflight_cap"}`,
		"zoomer_gateway_qps",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, page)
		}
	}
}
