package gateway

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBounds are the histogram upper bounds in seconds, log-spaced
// from 250µs to 5s — sub-millisecond cache hits through multi-second
// overload tails all land in a resolvable bucket. The +Inf bucket is
// implicit.
var latencyBounds = [...]float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5,
}

// histogram is a fixed-bucket latency histogram with atomic counters —
// observation is lock-free and allocation-free.
type histogram struct {
	counts [len(latencyBounds) + 1]atomic.Int64 // last = +Inf
	sum    atomic.Int64                         // nanoseconds
	total  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBounds) && s > latencyBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.total.Add(1)
}

// write emits the histogram in Prometheus text exposition format as
// cumulative le-labelled buckets.
func (h *histogram) write(w io.Writer, name, route string) {
	var cum int64
	for i, le := range latencyBounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{route=%q,le=%q} %d\n", name, route, trimFloat(le), cum)
	}
	cum += h.counts[len(latencyBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{route=%q,le=\"+Inf\"} %d\n", name, route, cum)
	fmt.Fprintf(w, "%s_sum{route=%q} %g\n", name, route, time.Duration(h.sum.Load()).Seconds())
	fmt.Fprintf(w, "%s_count{route=%q} %d\n", name, route, h.total.Load())
}

func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}

// statusCodes are the response codes the gateway can emit per route.
// Index 0 must stay 200 — the QPS gauge reads it.
var statusCodes = [...]int{200, 400, 503, 504}

// routeMetrics is one route's request counters and latency histogram.
type routeMetrics struct {
	codes [len(statusCodes)]atomic.Int64
	lat   histogram
}

func (rm *routeMetrics) count(code int) {
	for i, c := range statusCodes {
		if c == code {
			rm.codes[i].Add(1)
			return
		}
	}
}

// metrics is the gateway's observability surface: per-route request
// counts by status code, per-route latency histograms, shed/degrade
// counters, the live in-flight gauge, and a QPS gauge computed over the
// interval between scrapes.
type metrics struct {
	routes   map[string]*routeMetrics
	order    []string // stable output order
	inflight *atomic.Int64

	shedHard         atomic.Int64 // hard cap exceeded → 503
	shedQueue        atomic.Int64 // serve queue full → 503
	degraded         atomic.Int64 // cache-only answers served
	deadlineExceeded atomic.Int64 // typed 504s
	drainRejects     atomic.Int64 // refused while draining
	start            time.Time
	scrapeMu         sync.Mutex
	lastScrape       time.Time
	lastServedAtScan int64
}

func newMetrics(inflight *atomic.Int64, routes ...string) *metrics {
	m := &metrics{
		routes:   make(map[string]*routeMetrics, len(routes)),
		order:    routes,
		inflight: inflight,
		start:    time.Now(),
	}
	for _, r := range routes {
		m.routes[r] = &routeMetrics{}
	}
	m.lastScrape = m.start
	return m
}

func (m *metrics) route(name string) *routeMetrics { return m.routes[name] }

// served sums 200-coded responses across routes — the numerator of the
// scrape-interval QPS gauge.
func (m *metrics) served() int64 {
	var n int64
	for _, rm := range m.routes {
		n += rm.codes[0].Load() // statusCodes[0] == 200
	}
	return n
}

// writeTo emits the whole exposition page.
func (m *metrics) writeTo(w io.Writer) {
	fmt.Fprintf(w, "# HELP zoomer_gateway_requests_total Requests by route and status code.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_requests_total counter\n")
	for _, name := range m.order {
		rm := m.routes[name]
		for i, code := range statusCodes {
			fmt.Fprintf(w, "zoomer_gateway_requests_total{route=%q,code=\"%d\"} %d\n", name, code, rm.codes[i].Load())
		}
	}
	fmt.Fprintf(w, "# HELP zoomer_gateway_request_seconds End-to-end request latency.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_request_seconds histogram\n")
	for _, name := range m.order {
		m.routes[name].lat.write(w, "zoomer_gateway_request_seconds", name)
	}
	fmt.Fprintf(w, "# HELP zoomer_gateway_inflight In-flight requests right now.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_inflight gauge\n")
	fmt.Fprintf(w, "zoomer_gateway_inflight %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# HELP zoomer_gateway_shed_total Requests shed by admission control.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_shed_total counter\n")
	fmt.Fprintf(w, "zoomer_gateway_shed_total{kind=\"inflight_cap\"} %d\n", m.shedHard.Load())
	fmt.Fprintf(w, "zoomer_gateway_shed_total{kind=\"queue_full\"} %d\n", m.shedQueue.Load())
	fmt.Fprintf(w, "zoomer_gateway_shed_total{kind=\"draining\"} %d\n", m.drainRejects.Load())
	fmt.Fprintf(w, "# HELP zoomer_gateway_degraded_total Cache-only (shed-mode) answers served.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_degraded_total counter\n")
	fmt.Fprintf(w, "zoomer_gateway_degraded_total %d\n", m.degraded.Load())
	fmt.Fprintf(w, "# HELP zoomer_gateway_deadline_exceeded_total Requests answered with the typed deadline error.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_deadline_exceeded_total counter\n")
	fmt.Fprintf(w, "zoomer_gateway_deadline_exceeded_total %d\n", m.deadlineExceeded.Load())

	// QPS over the scrape interval: successful answers since the last
	// /metrics read divided by the elapsed wall time. First scrape
	// averages over the gateway's whole lifetime.
	m.scrapeMu.Lock()
	now := time.Now()
	served := m.served()
	elapsed := now.Sub(m.lastScrape).Seconds()
	qps := 0.0
	if elapsed > 0 {
		qps = float64(served-m.lastServedAtScan) / elapsed
	}
	m.lastScrape = now
	m.lastServedAtScan = served
	m.scrapeMu.Unlock()
	fmt.Fprintf(w, "# HELP zoomer_gateway_qps Successful answers per second over the last scrape interval.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_qps gauge\n")
	fmt.Fprintf(w, "zoomer_gateway_qps %g\n", qps)
	fmt.Fprintf(w, "# HELP zoomer_gateway_uptime_seconds Seconds since gateway start.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_uptime_seconds gauge\n")
	fmt.Fprintf(w, "zoomer_gateway_uptime_seconds %g\n", time.Since(m.start).Seconds())
}
