package gateway

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"zoomer/internal/engine"
	"zoomer/internal/ingest"
)

// latencyBounds are the histogram upper bounds in seconds, log-spaced
// from 250µs to 5s — sub-millisecond cache hits through multi-second
// overload tails all land in a resolvable bucket. The +Inf bucket is
// implicit.
var latencyBounds = [...]float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5,
}

// histogram is a fixed-bucket latency histogram with atomic counters —
// observation is lock-free and allocation-free.
type histogram struct {
	counts [len(latencyBounds) + 1]atomic.Int64 // last = +Inf
	sum    atomic.Int64                         // nanoseconds
	total  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBounds) && s > latencyBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.total.Add(1)
}

// write emits the histogram in Prometheus text exposition format as
// cumulative le-labelled buckets.
func (h *histogram) write(w io.Writer, name, route string) {
	var cum int64
	for i, le := range latencyBounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{route=%q,le=%q} %d\n", name, route, trimFloat(le), cum)
	}
	cum += h.counts[len(latencyBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{route=%q,le=\"+Inf\"} %d\n", name, route, cum)
	fmt.Fprintf(w, "%s_sum{route=%q} %g\n", name, route, time.Duration(h.sum.Load()).Seconds())
	fmt.Fprintf(w, "%s_count{route=%q} %d\n", name, route, h.total.Load())
}

func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}

// writeIngest emits the per-shard write-path rows when an ingest source
// is wired: WAL sequence (= ingest epoch), delta overlay sizes,
// compaction counters, WAL segment counts, and the fsync latency
// histogram in cumulative le-labelled form.
func (m *metrics) writeIngest(w io.Writer) {
	if m.ingest == nil {
		return
	}
	rows := m.ingest()
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP zoomer_ingest_seq Last applied append sequence per shard (the ingest epoch).\n")
	fmt.Fprintf(w, "# TYPE zoomer_ingest_seq gauge\n")
	for _, st := range rows {
		fmt.Fprintf(w, "zoomer_ingest_seq{shard=\"%d\"} %d\n", st.Shard, st.Seq)
	}
	fmt.Fprintf(w, "# HELP zoomer_ingest_delta_nodes Nodes with a live delta overlay per shard.\n")
	fmt.Fprintf(w, "# TYPE zoomer_ingest_delta_nodes gauge\n")
	for _, st := range rows {
		fmt.Fprintf(w, "zoomer_ingest_delta_nodes{shard=\"%d\"} %d\n", st.Shard, st.DeltaNodes)
	}
	fmt.Fprintf(w, "# HELP zoomer_ingest_delta_edges Appended edges in the current delta view per shard.\n")
	fmt.Fprintf(w, "# TYPE zoomer_ingest_delta_edges gauge\n")
	for _, st := range rows {
		fmt.Fprintf(w, "zoomer_ingest_delta_edges{shard=\"%d\"} %d\n", st.Shard, st.DeltaEdges)
	}
	fmt.Fprintf(w, "# HELP zoomer_ingest_compactions_total Alias-table compactions per shard.\n")
	fmt.Fprintf(w, "# TYPE zoomer_ingest_compactions_total counter\n")
	for _, st := range rows {
		fmt.Fprintf(w, "zoomer_ingest_compactions_total{shard=\"%d\"} %d\n", st.Shard, st.Compactions)
	}
	fmt.Fprintf(w, "# HELP zoomer_ingest_wal_segments WAL segment files per shard (0 = no WAL).\n")
	fmt.Fprintf(w, "# TYPE zoomer_ingest_wal_segments gauge\n")
	for _, st := range rows {
		fmt.Fprintf(w, "zoomer_ingest_wal_segments{shard=\"%d\"} %d\n", st.Shard, st.WALSegments)
	}
	fmt.Fprintf(w, "# HELP zoomer_ingest_fsync_seconds WAL fsync latency per shard.\n")
	fmt.Fprintf(w, "# TYPE zoomer_ingest_fsync_seconds histogram\n")
	for _, st := range rows {
		if st.FsyncHist == nil {
			continue
		}
		var cum uint64
		for i, le := range ingest.FsyncBounds {
			if i < len(st.FsyncHist) {
				cum += st.FsyncHist[i]
			}
			fmt.Fprintf(w, "zoomer_ingest_fsync_seconds_bucket{shard=\"%d\",le=%q} %d\n", st.Shard, trimFloat(le), cum)
		}
		if len(st.FsyncHist) > len(ingest.FsyncBounds) {
			cum += st.FsyncHist[len(ingest.FsyncBounds)]
		}
		fmt.Fprintf(w, "zoomer_ingest_fsync_seconds_bucket{shard=\"%d\",le=\"+Inf\"} %d\n", st.Shard, cum)
		fmt.Fprintf(w, "zoomer_ingest_fsync_seconds_sum{shard=\"%d\"} %g\n", st.Shard, time.Duration(st.FsyncNanos).Seconds())
		fmt.Fprintf(w, "zoomer_ingest_fsync_seconds_count{shard=\"%d\"} %d\n", st.Shard, st.Fsyncs)
	}
}

// statusCodes are the response codes the gateway can emit per route.
// Index 0 must stay 200 — the QPS gauge reads it.
var statusCodes = [...]int{200, 400, 404, 405, 500, 503, 504}

// routeMetrics is one route's request counters and latency histogram.
type routeMetrics struct {
	codes [len(statusCodes)]atomic.Int64
	lat   histogram
}

func (rm *routeMetrics) count(code int) {
	for i, c := range statusCodes {
		if c == code {
			rm.codes[i].Add(1)
			return
		}
	}
}

// metrics is the gateway's observability surface: per-route request
// counts by status code, per-route latency histograms, shed/degrade
// counters, the live in-flight gauge, and a QPS gauge computed over the
// interval between scrapes.
type metrics struct {
	routes   map[string]*routeMetrics
	order    []string // stable output order
	inflight *atomic.Int64

	shedHard         atomic.Int64 // hard cap exceeded → 503
	shedQueue        atomic.Int64 // serve queue full → 503
	degraded         atomic.Int64 // cache-only answers served
	deadlineExceeded atomic.Int64 // typed 504s
	drainRejects     atomic.Int64 // refused while draining
	appendedEdges    atomic.Int64 // edges accepted through /v1/append
	// ingest, when set, supplies the per-shard write-path rows (WAL
	// sequence, delta sizes, compactions, fsync latency) scraped live
	// from the engine on each /metrics read.
	ingest func() []engine.IngestStats
	start  time.Time
	scrapeMu         sync.Mutex
	lastScrape       time.Time
	lastServedAtScan int64
}

func newMetrics(inflight *atomic.Int64, routes ...string) *metrics {
	m := &metrics{
		routes:   make(map[string]*routeMetrics, len(routes)),
		order:    routes,
		inflight: inflight,
		start:    time.Now(),
	}
	for _, r := range routes {
		m.routes[r] = &routeMetrics{}
	}
	m.lastScrape = m.start
	return m
}

func (m *metrics) route(name string) *routeMetrics { return m.routes[name] }

// served sums 200-coded responses across routes — the numerator of the
// scrape-interval QPS gauge.
func (m *metrics) served() int64 {
	var n int64
	for _, rm := range m.routes {
		n += rm.codes[0].Load() // statusCodes[0] == 200
	}
	return n
}

// writeTo emits the whole exposition page.
func (m *metrics) writeTo(w io.Writer) {
	fmt.Fprintf(w, "# HELP zoomer_gateway_requests_total Requests by route and status code.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_requests_total counter\n")
	for _, name := range m.order {
		rm := m.routes[name]
		for i, code := range statusCodes {
			fmt.Fprintf(w, "zoomer_gateway_requests_total{route=%q,code=\"%d\"} %d\n", name, code, rm.codes[i].Load())
		}
	}
	fmt.Fprintf(w, "# HELP zoomer_gateway_request_seconds End-to-end request latency.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_request_seconds histogram\n")
	for _, name := range m.order {
		m.routes[name].lat.write(w, "zoomer_gateway_request_seconds", name)
	}
	fmt.Fprintf(w, "# HELP zoomer_gateway_inflight In-flight requests right now.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_inflight gauge\n")
	fmt.Fprintf(w, "zoomer_gateway_inflight %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# HELP zoomer_gateway_shed_total Requests shed by admission control.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_shed_total counter\n")
	fmt.Fprintf(w, "zoomer_gateway_shed_total{kind=\"inflight_cap\"} %d\n", m.shedHard.Load())
	fmt.Fprintf(w, "zoomer_gateway_shed_total{kind=\"queue_full\"} %d\n", m.shedQueue.Load())
	fmt.Fprintf(w, "zoomer_gateway_shed_total{kind=\"draining\"} %d\n", m.drainRejects.Load())
	fmt.Fprintf(w, "# HELP zoomer_gateway_degraded_total Cache-only (shed-mode) answers served.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_degraded_total counter\n")
	fmt.Fprintf(w, "zoomer_gateway_degraded_total %d\n", m.degraded.Load())
	fmt.Fprintf(w, "# HELP zoomer_gateway_deadline_exceeded_total Requests answered with the typed deadline error.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_deadline_exceeded_total counter\n")
	fmt.Fprintf(w, "zoomer_gateway_deadline_exceeded_total %d\n", m.deadlineExceeded.Load())
	fmt.Fprintf(w, "# HELP zoomer_gateway_appended_edges_total Edges accepted through /v1/append.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_appended_edges_total counter\n")
	fmt.Fprintf(w, "zoomer_gateway_appended_edges_total %d\n", m.appendedEdges.Load())
	m.writeIngest(w)

	// QPS over the scrape interval: successful answers since the last
	// /metrics read divided by the elapsed wall time. First scrape
	// averages over the gateway's whole lifetime.
	m.scrapeMu.Lock()
	now := time.Now()
	served := m.served()
	elapsed := now.Sub(m.lastScrape).Seconds()
	qps := 0.0
	if elapsed > 0 {
		qps = float64(served-m.lastServedAtScan) / elapsed
	}
	m.lastScrape = now
	m.lastServedAtScan = served
	m.scrapeMu.Unlock()
	fmt.Fprintf(w, "# HELP zoomer_gateway_qps Successful answers per second over the last scrape interval.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_qps gauge\n")
	fmt.Fprintf(w, "zoomer_gateway_qps %g\n", qps)
	fmt.Fprintf(w, "# HELP zoomer_gateway_uptime_seconds Seconds since gateway start.\n")
	fmt.Fprintf(w, "# TYPE zoomer_gateway_uptime_seconds gauge\n")
	fmt.Fprintf(w, "zoomer_gateway_uptime_seconds %g\n", time.Since(m.start).Seconds())
}
