package gateway

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

// POST /v1/append lands edges in the engine's delta layer and answers
// with the accepted count; bad batches fail 400 with the engine's typed
// validation message, and non-POST methods are refused.
func TestAppendEndpoint(t *testing.T) {
	_, ts := buildGateway(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/append",
		`{"edges":[{"src":0,"dst":5,"type":0,"weight":2.5},{"src":1,"dst":6,"type":1,"weight":1.0}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d %s", resp.StatusCode, body)
	}
	var reply appendReply
	if err := json.Unmarshal([]byte(body), &reply); err != nil {
		t.Fatalf("bad reply %q: %v", body, err)
	}
	if reply.Appended != 2 {
		t.Fatalf("appended %d edges, want 2", reply.Appended)
	}

	// Validation failures surface typed as 400s.
	resp, body = postJSON(t, ts.URL+"/v1/append", `{"edges":[{"src":0,"dst":5,"weight":-1}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative weight: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/append", `{"edges":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/append", `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d %s", resp.StatusCode, body)
	}

	// GET is refused with Allow.
	getResp, _ := get(t, ts.URL+"/v1/append")
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET append: %d", getResp.StatusCode)
	}

	// The write path shows up on /metrics: accepted-edge counter, the
	// append route rows, and the per-shard ingest section scraped live
	// from the engine.
	mResp, mBody := get(t, ts.URL+"/metrics")
	if mResp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", mResp.StatusCode)
	}
	page := string(mBody)
	for _, want := range []string{
		"zoomer_gateway_appended_edges_total 2",
		`zoomer_gateway_requests_total{route="append",code="200"} 1`,
		`zoomer_gateway_requests_total{route="append",code="400"} 3`,
		`zoomer_ingest_seq{shard="0"}`,
		"zoomer_ingest_delta_edges",
		"zoomer_ingest_compactions_total",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, page)
		}
	}
}

// A gateway whose ingest path was never enabled answers 404, not a
// panic or a silent 200.
func TestAppendDisabledAnswers404(t *testing.T) {
	gw, ts := buildGateway(t, Config{})
	gw.app = nil // simulate a read-only deployment
	resp, body := postJSON(t, ts.URL+"/v1/append", `{"edges":[{"src":0,"dst":1,"weight":1}]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled append: %d %s", resp.StatusCode, body)
	}
}
