// Package gateway is the HTTP front door over the serve tier — the
// network-facing layer of the §VII-E deployment story. It turns the
// in-process worker-pool server into a service: JSON and binary
// retrieval endpoints, health and metrics, and admission control done
// at the door rather than discovered in the queue.
//
// Admission is three-tiered. A hard in-flight cap bounds concurrent
// requests — beyond it the gateway answers 503 with Retry-After instead
// of letting the queue convoy. Between the soft shed threshold and the
// hard cap, requests are admitted in cache-only mode: the serve tier
// answers from whatever the neighbor cache already holds, generating
// zero backend samples, and the response is marked degraded — stale
// neighbors beat a timeout, and the backends get headroom to recover.
// Below the threshold, requests run the full path under a per-request
// deadline that travels down through the serve queue, the neighbor
// cache's miss fill, the engine's shard visit, and the RPC client's
// per-call budget; a request that outlives its deadline is answered 504
// with the typed engine.ErrDeadlineExceeded at whatever layer noticed.
//
// Drain is graceful by construction: Drain flips the gateway to
// draining (healthz fails, new retrievals are refused 503), then waits
// for in-flight requests to finish. Every admitted request is always
// answered — the serve tier responds to each accepted submission
// exactly once, expired ones typed — so the drain wait is bounded by
// the slowest in-flight request, not by luck.
package gateway

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"zoomer/internal/ann"
	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/ingest"
	"zoomer/internal/rng"
	"zoomer/internal/serve"
)

// Config tunes the front door. Zero fields take the stated defaults.
type Config struct {
	// MaxInFlight is the hard admission cap (default 256): requests
	// beyond it are shed with 503 + Retry-After.
	MaxInFlight int
	// ShedFraction of MaxInFlight is the soft threshold (default 0.75):
	// above it admitted requests run cache-only and answers are marked
	// degraded.
	ShedFraction float64
	// DefaultDeadline applies when the client sends none (default
	// 200ms); MaxDeadline clamps client-requested deadlines (default
	// 2s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Logger receives structured request/lifecycle logs (default
	// slog.Default()).
	Logger *slog.Logger
}

func (c *Config) defaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.ShedFraction <= 0 || c.ShedFraction > 1 {
		c.ShedFraction = 0.75
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 200 * time.Millisecond
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
}

// Gateway is the HTTP front door. Construct with New, mount Handler,
// stop with Drain.
type Gateway struct {
	srv            *serve.Server
	users, queries []graph.NodeID
	numNodes       int
	cfg            Config
	log            *slog.Logger

	inflight atomic.Int64
	draining atomic.Bool
	met      *metrics

	// respPool recycles the cap-1 response channels request handlers
	// block on; the serve tier answers every accepted request exactly
	// once, so a pooled channel is always empty when reused.
	respPool sync.Pool

	pickMu sync.Mutex
	pick   *rng.RNG

	// write path (nil until EnableIngest): the engine facet appends go
	// through, and the cache invalidated after each accepted batch.
	app   Appender
	cache *serve.NeighborCache
}

// Appender is the write-path facet the gateway needs from the engine:
// route an edge batch to the owning shards (idempotently, over the
// durable append op when the shards are remote).
type Appender interface {
	Append(edges []ingest.Edge) (int, error)
}

// ingestReporter is the optional stats facet of an Appender; the engine
// implements it, and /metrics exposes the rows when available.
type ingestReporter interface {
	IngestStats() []engine.IngestStats
}

// New wires a gateway over a running serve.Server. users/queries are
// the id pools the rand=1 mode draws from (so load generators need no
// world knowledge); numNodes bounds id validation for explicit ids.
func New(srv *serve.Server, users, queries []graph.NodeID, numNodes int, cfg Config) *Gateway {
	cfg.defaults()
	g := &Gateway{
		srv:      srv,
		users:    users,
		queries:  queries,
		numNodes: numNodes,
		cfg:      cfg,
		log:      cfg.Logger,
		pick:     rng.New(0x9e3779b97f4a7c15),
	}
	g.met = newMetrics(&g.inflight, "retrieve", "retrieve_bin", "append")
	g.respPool.New = func() any { return make(chan serve.Response, 1) }
	return g
}

// EnableIngest turns on the write path: POST /v1/append routes batches
// through app, and — when cache is non-nil — each accepted batch's
// source nodes are invalidated so cached neighbor samples heal to the
// new adjacency. When app also reports ingest stats (the engine does),
// /metrics gains the per-shard write-path rows.
func (g *Gateway) EnableIngest(app Appender, cache *serve.NeighborCache) {
	g.app = app
	g.cache = cache
	if ir, ok := app.(ingestReporter); ok {
		g.met.ingest = ir.IngestStats
	}
}

// Handler returns the route table: /v1/retrieve (JSON), /v1/retrieve.bin
// (binary), /healthz, /metrics.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/retrieve", func(w http.ResponseWriter, r *http.Request) {
		g.handleRetrieve(w, r, false)
	})
	mux.HandleFunc("/v1/retrieve.bin", func(w http.ResponseWriter, r *http.Request) {
		g.handleRetrieve(w, r, true)
	})
	mux.HandleFunc("/v1/append", g.handleAppend)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/metrics", g.handleMetrics)
	return mux
}

// Draining reports whether drain has started.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// InFlight reports the requests currently inside admission.
func (g *Gateway) InFlight() int64 { return g.inflight.Load() }

// Drain stops admission (healthz turns 503 so balancers eject the
// instance, new retrievals are refused) and waits for every in-flight
// request to be answered. Returns nil when in-flight reached zero, or
// ctx.Err() on timeout — with the count still in flight wrapped in.
func (g *Gateway) Drain(ctx context.Context) error {
	g.draining.Store(true)
	g.log.Info("drain started", "inflight", g.inflight.Load())
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		n := g.inflight.Load()
		if n == 0 {
			g.log.Info("drain complete")
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("gateway: drain timed out with %d in flight: %w", n, ctx.Err())
		case <-tick.C:
		}
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if g.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g.met.writeTo(w)
}

// pickIDs resolves the (user, query) pair: rand=1 draws from the pools,
// otherwise explicit ids are parsed and bounds-checked — an out-of-range
// id would index past the serving weights.
func (g *Gateway) pickIDs(r *http.Request) (user, query graph.NodeID, err error) {
	q := r.URL.Query()
	if q.Get("rand") == "1" {
		if len(g.users) == 0 || len(g.queries) == 0 {
			return 0, 0, errors.New("rand mode unavailable: empty id pools")
		}
		g.pickMu.Lock()
		user = g.users[g.pick.Intn(len(g.users))]
		query = g.queries[g.pick.Intn(len(g.queries))]
		g.pickMu.Unlock()
		return user, query, nil
	}
	pu, err := strconv.ParseUint(q.Get("user"), 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad user id %q", q.Get("user"))
	}
	pq, err := strconv.ParseUint(q.Get("query"), 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad query id %q", q.Get("query"))
	}
	if pu >= uint64(g.numNodes) || pq >= uint64(g.numNodes) {
		return 0, 0, fmt.Errorf("id out of range (world has %d nodes)", g.numNodes)
	}
	return graph.NodeID(pu), graph.NodeID(pq), nil
}

// deadlineFor resolves the per-request budget: deadline_ms query param
// (or X-Zoomer-Deadline-Ms header), defaulted and clamped.
func (g *Gateway) deadlineFor(r *http.Request) time.Duration {
	s := r.URL.Query().Get("deadline_ms")
	if s == "" {
		s = r.Header.Get("X-Zoomer-Deadline-Ms")
	}
	d := g.cfg.DefaultDeadline
	if s != "" {
		if ms, err := strconv.ParseFloat(s, 64); err == nil && ms > 0 && !math.IsInf(ms, 0) {
			d = time.Duration(ms * float64(time.Millisecond))
		}
	}
	if d > g.cfg.MaxDeadline {
		d = g.cfg.MaxDeadline
	}
	return d
}

// Item is one scored item in the JSON answer.
type Item struct {
	ID    int64   `json:"id"`
	Score float32 `json:"score"`
}

// retrieveReply is the JSON answer envelope.
type retrieveReply struct {
	User      uint32 `json:"user"`
	Query     uint32 `json:"query"`
	Degraded  bool   `json:"degraded,omitempty"`
	LatencyUs int64  `json:"latency_us"`
	Items     []Item `json:"items"`
}

func (g *Gateway) handleRetrieve(w http.ResponseWriter, r *http.Request, bin bool) {
	route := "retrieve"
	if bin {
		route = "retrieve_bin"
	}
	rm := g.met.route(route)
	start := time.Now()

	if g.draining.Load() {
		g.met.drainRejects.Add(1)
		rm.count(http.StatusServiceUnavailable)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	n := g.inflight.Add(1)
	defer g.inflight.Add(-1)
	if n > int64(g.cfg.MaxInFlight) {
		g.met.shedHard.Add(1)
		rm.count(http.StatusServiceUnavailable)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded: in-flight cap reached", http.StatusServiceUnavailable)
		return
	}
	user, query, err := g.pickIDs(r)
	if err != nil {
		rm.count(http.StatusBadRequest)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cacheOnly := float64(n) > g.cfg.ShedFraction*float64(g.cfg.MaxInFlight)
	deadline := start.Add(g.deadlineFor(r))

	resp := g.respPool.Get().(chan serve.Response)
	if !g.srv.SubmitReq(serve.Request{User: user, Query: query, Deadline: deadline, CacheOnly: cacheOnly}, resp) {
		g.respPool.Put(resp)
		g.met.shedQueue.Add(1)
		rm.count(http.StatusServiceUnavailable)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded: queue full", http.StatusServiceUnavailable)
		return
	}
	// Every accepted request is answered exactly once — expired ones
	// with the typed error — so this receive cannot hang a drain.
	rsp := <-resp
	g.respPool.Put(resp)

	if rsp.Err != nil {
		g.met.deadlineExceeded.Add(1)
		rm.count(http.StatusGatewayTimeout)
		rm.lat.observe(time.Since(start))
		g.log.Debug("deadline exceeded", "route", route, "user", uint32(user), "query", uint32(query))
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
		return
	}
	items := rsp.Items
	if ks := r.URL.Query().Get("k"); ks != "" {
		if k, err := strconv.Atoi(ks); err == nil && k >= 0 && k < len(items) {
			items = items[:k]
		}
	}
	if rsp.Degraded {
		g.met.degraded.Add(1)
		w.Header().Set("X-Zoomer-Degraded", "1")
	}
	if bin {
		g.writeBinary(w, rsp.Degraded, items)
	} else {
		g.writeJSON(w, user, query, rsp, items, start)
	}
	rm.count(http.StatusOK)
	rm.lat.observe(time.Since(start))
}

// appendEdge is one edge of a POST /v1/append request body.
type appendEdge struct {
	Src    uint32  `json:"src"`
	Dst    uint32  `json:"dst"`
	Type   uint8   `json:"type"`
	Weight float32 `json:"weight"`
}

// appendRequest is the POST /v1/append body.
type appendRequest struct {
	Edges []appendEdge `json:"edges"`
}

// appendReply is the POST /v1/append answer.
type appendReply struct {
	Appended  int   `json:"appended"`
	LatencyUs int64 `json:"latency_us"`
}

// maxAppendBody bounds the request body: at ~45 bytes of JSON per edge
// this admits batches far past ingest.MaxRecordEdges, so the engine's
// own validation — not the transport — is what rejects oversized work.
const maxAppendBody = 4 << 20

// handleAppend is the durable write front door: decode the batch, route
// it through the engine's idempotent append path, invalidate the cached
// neighbor samples of the touched source nodes. Appends share the
// retrieval tier's admission control (draining refusal and the hard
// in-flight cap) but never degrade to cache-only — a write either lands
// durably or fails typed.
func (g *Gateway) handleAppend(w http.ResponseWriter, r *http.Request) {
	rm := g.met.route("append")
	start := time.Now()
	if g.app == nil {
		rm.count(http.StatusNotFound)
		http.Error(w, "ingest not enabled", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		rm.count(http.StatusMethodNotAllowed)
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "append requires POST", http.StatusMethodNotAllowed)
		return
	}
	if g.draining.Load() {
		g.met.drainRejects.Add(1)
		rm.count(http.StatusServiceUnavailable)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	n := g.inflight.Add(1)
	defer g.inflight.Add(-1)
	if n > int64(g.cfg.MaxInFlight) {
		g.met.shedHard.Add(1)
		rm.count(http.StatusServiceUnavailable)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded: in-flight cap reached", http.StatusServiceUnavailable)
		return
	}

	var req appendRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAppendBody)).Decode(&req); err != nil {
		rm.count(http.StatusBadRequest)
		http.Error(w, fmt.Sprintf("bad append body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Edges) == 0 {
		rm.count(http.StatusBadRequest)
		http.Error(w, "append body holds no edges", http.StatusBadRequest)
		return
	}
	edges := make([]ingest.Edge, len(req.Edges))
	for i, e := range req.Edges {
		edges[i] = ingest.Edge{
			Src:    graph.NodeID(e.Src),
			Dst:    graph.NodeID(e.Dst),
			Type:   graph.EdgeType(e.Type),
			Weight: e.Weight,
		}
	}

	appended, err := g.app.Append(edges)
	if err != nil {
		switch {
		case errors.Is(err, engine.ErrBadAppend):
			rm.count(http.StatusBadRequest)
			http.Error(w, err.Error(), http.StatusBadRequest)
		case errors.Is(err, engine.ErrShardUnavailable):
			rm.count(http.StatusServiceUnavailable)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shard unavailable", http.StatusServiceUnavailable)
		default:
			rm.count(http.StatusInternalServerError)
			g.log.Error("append failed", "err", err, "edges", len(edges))
			http.Error(w, "append failed", http.StatusInternalServerError)
		}
		rm.lat.observe(time.Since(start))
		return
	}
	g.met.appendedEdges.Add(int64(appended))
	if g.cache != nil {
		for _, e := range edges {
			g.cache.InvalidateNodes(e.Src)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&appendReply{Appended: appended, LatencyUs: time.Since(start).Microseconds()}); err != nil {
		g.log.Debug("response write failed", "err", err)
	}
	rm.count(http.StatusOK)
	rm.lat.observe(time.Since(start))
}

func (g *Gateway) writeJSON(w http.ResponseWriter, user, query graph.NodeID, rsp serve.Response, items []ann.Result, start time.Time) {
	reply := retrieveReply{
		User:      uint32(user),
		Query:     uint32(query),
		Degraded:  rsp.Degraded,
		LatencyUs: time.Since(start).Microseconds(),
		Items:     make([]Item, len(items)),
	}
	for i, it := range items {
		reply.Items[i] = Item{ID: it.ID, Score: it.Score}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&reply); err != nil {
		g.log.Debug("response write failed", "err", err)
	}
}

// Binary wire format (little-endian): magic "ZGR1", u8 flags (bit 0 =
// degraded), u32 item count, then count × (u64 item id, f32 score).
const binMagic = "ZGR1"

func (g *Gateway) writeBinary(w http.ResponseWriter, degraded bool, items []ann.Result) {
	buf := make([]byte, 0, len(binMagic)+1+4+len(items)*12)
	buf = append(buf, binMagic...)
	flags := byte(0)
	if degraded {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(items)))
	for _, it := range items {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(it.ID))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(it.Score))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(buf); err != nil {
		g.log.Debug("response write failed", "err", err)
	}
}

// DecodeBinary parses the binary wire format — the loadgen's (and any
// native client's) counterpart to /v1/retrieve.bin.
func DecodeBinary(b []byte) (items []Item, degraded bool, err error) {
	if len(b) < len(binMagic)+5 || string(b[:4]) != binMagic {
		return nil, false, errors.New("gateway: bad binary frame")
	}
	degraded = b[4]&1 != 0
	n := binary.LittleEndian.Uint32(b[5:9])
	if uint64(len(b)) != uint64(len(binMagic)+5)+uint64(n)*12 {
		return nil, false, fmt.Errorf("gateway: binary frame length %d does not match %d items", len(b), n)
	}
	items = make([]Item, n)
	off := 9
	for i := range items {
		items[i].ID = int64(binary.LittleEndian.Uint64(b[off:]))
		items[i].Score = math.Float32frombits(binary.LittleEndian.Uint32(b[off+8:]))
		off += 12
	}
	return items, degraded, nil
}

// IsDeadlineExceeded reports whether err is the typed per-request
// deadline failure, at whatever layer it was noticed.
func IsDeadlineExceeded(err error) bool { return errors.Is(err, engine.ErrDeadlineExceeded) }
