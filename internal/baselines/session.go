package baselines

import (
	"sort"

	"zoomer/internal/ad"
	"zoomer/internal/core"
	"zoomer/internal/graph"
	"zoomer/internal/loggen"
	"zoomer/internal/nn"
	"zoomer/internal/rng"
	"zoomer/internal/sampling"
	"zoomer/internal/tensor"
)

// NewHAN returns the Heterogeneous Graph Attention Network baseline
// (Wang et al. 2019): node-level attention (learnable, per-edge, NOT
// focal-conditioned) plus semantic-level attention (learnable softmax over
// per-type aggregates). The key difference from Zoomer — static attention
// independent of the request's focal interest — is exactly what the paper
// credits its gains to.
func NewHAN(g core.GraphView, v loggen.Vocab, cfg Config, seed uint64) core.Model {
	m := newChassis("han", g, v, cfg, seed)
	r := rng.New(seed + 1)
	d := cfg.EmbedDim
	attn := nn.NewParam("han.a", 2*d, 1).XavierInit(r.Split())
	semW := nn.NewLinear("han.semW", d, d, r.Split())
	semQ := nn.NewParam("han.q", d, 1).XavierInit(r.Split())
	m.extra = append([]*nn.Param{attn, semQ}, semW.Params()...)

	var embed func(t *ad.Tape, tree *sampling.Tree) *ad.Node
	embed = func(t *ad.Tape, tree *sampling.Tree) *ad.Node {
		self := m.nodeEmb(t, tree.Node)
		if len(tree.Children) == 0 {
			return self
		}
		a := attn.Node(t)
		var byType [graph.NumNodeTypes][]*ad.Node
		for i, c := range tree.Children {
			byType[m.g.Type(tree.Edges[i].To)] = append(byType[m.g.Type(tree.Edges[i].To)], embed(t, c))
		}
		var aggs []*ad.Node
		for nt := 0; nt < graph.NumNodeTypes; nt++ {
			ns := byType[nt]
			if len(ns) == 0 {
				continue
			}
			// Node-level attention: score_j = LeakyReLU(aᵀ[self ‖ n_j]).
			scores := make([]*ad.Node, len(ns))
			for j, n := range ns {
				scores[j] = t.LeakyReLU(0.2, t.MatMul(t.ConcatCols(self, n), a))
			}
			w := t.SoftmaxRows(t.ConcatCols(scores...))
			aggs = append(aggs, t.MatMul(w, t.ConcatRows(ns...)))
		}
		var combined *ad.Node
		if len(aggs) == 1 {
			combined = aggs[0]
		} else {
			// Semantic attention: β_T = softmax(qᵀ·tanh(W·E_T)).
			qv := semQ.Node(t)
			ss := make([]*ad.Node, len(aggs))
			for j, e := range aggs {
				ss[j] = t.MatMul(t.Tanh(semW.Forward(t, e)), qv)
			}
			beta := t.SoftmaxRows(t.ConcatCols(ss...))
			combined = t.MatMul(beta, t.ConcatRows(aggs...))
		}
		return t.Add(self, combined)
	}

	s := sampling.Uniform{}
	m.uqFn = func(t *ad.Tape, u, q graph.NodeID, r *rng.RNG) *ad.Node {
		treeU := sampling.BuildTree(m.g, u, nil, cfg.Hops, cfg.FanOut, s, r, nil)
		treeQ := sampling.BuildTree(m.g, q, nil, cfg.Hops, cfg.FanOut, s, r, nil)
		return m.towerUQ.Forward(t, t.ConcatCols(embed(t, treeU), embed(t, treeQ)))
	}
	return m
}

// NewGCEGNN returns the Global Context Enhanced GNN baseline (Wang et al.
// 2020): a session-local channel (interaction edges only) and a global
// channel (all edges including similarity) are aggregated separately and
// fused — the mechanism that lets session models exploit global item
// transitions.
func NewGCEGNN(g core.GraphView, v loggen.Vocab, cfg Config, seed uint64) core.Model {
	m := newChassis("gce-gnn", g, v, cfg, seed)
	r := rng.New(seed + 1)
	d := cfg.EmbedDim
	fuse := nn.NewLinear("gce.fuse", 2*d, d, r.Split())
	m.extra = fuse.Params()

	s := sampling.Uniform{}
	channel := func(t *ad.Tape, tree *sampling.Tree, keep func(graph.EdgeType) bool) *ad.Node {
		self := m.nodeEmb(t, tree.Node)
		var kept []*ad.Node
		for i, c := range tree.Children {
			if keep(tree.Edges[i].Type) {
				kept = append(kept, m.nodeEmb(t, c.Node))
			}
		}
		if len(kept) == 0 {
			return self
		}
		return t.Add(self, t.MeanRows(t.ConcatRows(kept...)))
	}
	embed := func(t *ad.Tape, id graph.NodeID, r *rng.RNG) *ad.Node {
		tree := sampling.BuildTree(m.g, id, nil, 1, 2*cfg.FanOut, s, r, nil)
		local := channel(t, tree, func(e graph.EdgeType) bool { return e != graph.Similarity })
		global := channel(t, tree, func(graph.EdgeType) bool { return true })
		return t.ReLU(fuse.Forward(t, t.ConcatCols(local, global)))
	}
	m.uqFn = func(t *ad.Tape, u, q graph.NodeID, r *rng.RNG) *ad.Node {
		return m.towerUQ.Forward(t, t.ConcatCols(embed(t, u, r), embed(t, q, r)))
	}
	return m
}

// NewFGNN returns the Factor Graph Neural Network baseline (Zhang et al.
// 2019) in its session-graph reading: neighbor messages are combined with
// a position/weight-decayed order (heavier interactions first, geometric
// decay capturing the "latent order") through a gated fusion with the
// self embedding.
func NewFGNN(g core.GraphView, v loggen.Vocab, cfg Config, seed uint64) core.Model {
	m := newChassis("fgnn", g, v, cfg, seed)
	r := rng.New(seed + 1)
	d := cfg.EmbedDim
	gate := nn.NewLinear("fgnn.gate", 2*d, d, r.Split())
	m.extra = gate.Params()

	s := sampling.Weighted{}
	const decay = 0.7
	embed := func(t *ad.Tape, id graph.NodeID, r *rng.RNG) *ad.Node {
		self := m.nodeEmb(t, id)
		tree := sampling.BuildTree(m.g, id, nil, 1, cfg.FanOut, s, r, nil)
		if len(tree.Children) == 0 {
			return self
		}
		// Order by interaction weight (recency proxy) and decay.
		type we struct {
			idx int
			w   float32
		}
		order := make([]we, len(tree.Edges))
		for i, e := range tree.Edges {
			order[i] = we{i, e.Weight}
		}
		sort.Slice(order, func(a, b int) bool { return order[a].w > order[b].w })
		var agg *ad.Node
		scale := float32(1)
		var total float32
		for _, o := range order {
			emb := t.Scale(scale, m.nodeEmb(t, tree.Children[o.idx].Node))
			if agg == nil {
				agg = emb
			} else {
				agg = t.Add(agg, emb)
			}
			total += scale
			scale *= decay
		}
		agg = t.Scale(1/total, agg)
		gv := t.Sigmoid(gate.Forward(t, t.ConcatCols(self, agg)))
		one := t.Const(onesLike(gv))
		// h = g⊙self + (1-g)⊙agg
		return t.Add(t.Mul(gv, self), t.Mul(t.Sub(one, gv), agg))
	}
	m.uqFn = func(t *ad.Tape, u, q graph.NodeID, r *rng.RNG) *ad.Node {
		return m.towerUQ.Forward(t, t.ConcatCols(embed(t, u, r), embed(t, q, r)))
	}
	return m
}

// NewSTAMP returns the Short-Term Attention/Memory Priority baseline (Liu
// et al. 2018): no graph convolution — the user's clicked-item history is
// attended with a score conditioned on both the current query (short-term
// interest) and the mean history (general interest).
func NewSTAMP(g core.GraphView, v loggen.Vocab, cfg Config, seed uint64) core.Model {
	m := newChassis("stamp", g, v, cfg, seed)
	r := rng.New(seed + 1)
	d := cfg.EmbedDim
	w1 := nn.NewLinear("stamp.w1", d, d, r.Split())
	w2 := nn.NewLinear("stamp.w2", d, d, r.Split())
	w3 := nn.NewLinear("stamp.w3", d, d, r.Split())
	va := nn.NewParam("stamp.v", d, 1).XavierInit(r.Split())
	m.extra = append(append(append([]*nn.Param{va}, w1.Params()...), w2.Params()...), w3.Params()...)

	m.uqFn = func(t *ad.Tape, u, q graph.NodeID, r *rng.RNG) *ad.Node {
		qEmb := m.nodeEmb(t, q)
		history := userItemHistory(m.g, u, 2*cfg.FanOut)
		if len(history) == 0 {
			return m.towerUQ.Forward(t, t.ConcatCols(m.nodeEmb(t, u), qEmb))
		}
		embs := make([]*ad.Node, len(history))
		for i, it := range history {
			embs[i] = m.nodeEmb(t, it)
		}
		general := t.MeanRows(t.ConcatRows(embs...))
		// Attention: α_i = vᵀ·sigmoid(W1·x_i + W2·q + W3·ms).
		ctx := t.Add(w2.Forward(t, qEmb), w3.Forward(t, general))
		scores := make([]*ad.Node, len(embs))
		for i, x := range embs {
			scores[i] = t.MatMul(t.Sigmoid(t.Add(w1.Forward(t, x), ctx)), va.Node(t))
		}
		alpha := t.SoftmaxRows(t.ConcatCols(scores...))
		ma := t.MatMul(alpha, t.ConcatRows(embs...))
		return m.towerUQ.Forward(t, t.ConcatCols(ma, qEmb))
	}
	return m
}

// NewMCCF returns the Multi-Component graph Convolutional Collaborative
// Filtering baseline (Wang et al. 2020): neighbor embeddings are
// decomposed through C component projections, each pooled separately,
// and recombined with a learned component-attention — capturing multiple
// latent purchase motivations.
func NewMCCF(g core.GraphView, v loggen.Vocab, cfg Config, seed uint64) core.Model {
	m := newChassis("mccf", g, v, cfg, seed)
	r := rng.New(seed + 1)
	d := cfg.EmbedDim
	const components = 2
	comps := make([]*nn.Linear, components)
	for c := range comps {
		comps[c] = nn.NewLinear("mccf.comp", d, d, r.Split())
		m.extra = append(m.extra, comps[c].Params()...)
	}
	compQ := nn.NewParam("mccf.q", d, 1).XavierInit(r.Split())
	m.extra = append(m.extra, compQ)

	s := sampling.Uniform{}
	embed := func(t *ad.Tape, id graph.NodeID, r *rng.RNG) *ad.Node {
		self := m.nodeEmb(t, id)
		tree := sampling.BuildTree(m.g, id, nil, 1, cfg.FanOut, s, r, nil)
		if len(tree.Children) == 0 {
			return self
		}
		nbrs := make([]*ad.Node, len(tree.Children))
		for i, c := range tree.Children {
			nbrs[i] = m.nodeEmb(t, c.Node)
		}
		stack := t.ConcatRows(nbrs...)
		pooled := make([]*ad.Node, components)
		scores := make([]*ad.Node, components)
		for c := 0; c < components; c++ {
			pooled[c] = t.Tanh(comps[c].Forward(t, t.MeanRows(stack)))
			scores[c] = t.MatMul(pooled[c], compQ.Node(t))
		}
		beta := t.SoftmaxRows(t.ConcatCols(scores...))
		return t.Add(self, t.MatMul(beta, t.ConcatRows(pooled...)))
	}
	m.uqFn = func(t *ad.Tape, u, q graph.NodeID, r *rng.RNG) *ad.Node {
		return m.towerUQ.Forward(t, t.ConcatCols(embed(t, u, r), embed(t, q, r)))
	}
	return m
}

// userItemHistory collects item nodes reachable from u through click
// paths (u -> query -> item and u's session items), deterministically,
// capped at max — STAMP's "history" view of the graph.
func userItemHistory(g core.GraphView, u graph.NodeID, max int) []graph.NodeID {
	var out []graph.NodeID
	seen := map[graph.NodeID]bool{}
	for _, e := range g.Neighbors(u) {
		if g.Type(e.To) == graph.Item && !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
			if len(out) == max {
				return out
			}
		}
	}
	for _, e := range g.Neighbors(u) {
		if g.Type(e.To) != graph.Query {
			continue
		}
		for _, e2 := range g.Neighbors(e.To) {
			if g.Type(e2.To) == graph.Item && !seen[e2.To] {
				seen[e2.To] = true
				out = append(out, e2.To)
				if len(out) == max {
					return out
				}
			}
		}
	}
	return out
}

// onesLike returns a matrix of ones with n's shape, for gated fusions.
func onesLike(n *ad.Node) *tensor.Matrix {
	m := tensor.NewMatrix(n.Rows(), n.Cols())
	for i := range m.Data {
		m.Data[i] = 1
	}
	return m
}
