// Package baselines implements the comparison models of §VII-A on the
// same substrate as Zoomer (shared feature embedder, twin towers, trainer)
// so that differences isolate each method's aggregation and sampling
// strategy: GraphSAGE, PinSage, PinnerSage, Pixie, HAN, GCE-GNN, FGNN,
// STAMP and MCCF. Each is a faithful simplification of the original
// method's key mechanism — see the constructor comments for what is kept.
package baselines

import (
	"zoomer/internal/ad"
	"zoomer/internal/core"
	"zoomer/internal/graph"
	"zoomer/internal/loggen"
	"zoomer/internal/nn"
	"zoomer/internal/rng"
	"zoomer/internal/sampling"
	"zoomer/internal/tensor"
)

// Config holds the knobs shared by every baseline.
type Config struct {
	EmbedDim int
	OutDim   int
	Hops     int
	FanOut   int
	// LogitScale matches Zoomer's cosine-to-logit scaling.
	LogitScale float32
}

// DefaultConfig mirrors core.DefaultConfig for fair comparison.
func DefaultConfig() Config {
	return Config{EmbedDim: 32, OutDim: 32, Hops: 2, FanOut: 10, LogitScale: 5}
}

// gnnModel is the shared chassis: feature embedder, twin towers, and a
// model-specific request-side embedding function.
type gnnModel struct {
	name string
	cfg  Config
	g    core.GraphView
	fe   *core.FeatureEmbedder

	towerUQ, towerItem *nn.MLP
	extra              []*nn.Param

	uqFn func(t *ad.Tape, u, q graph.NodeID, r *rng.RNG) *ad.Node
}

func newChassis(name string, g core.GraphView, v loggen.Vocab, cfg Config, seed uint64) *gnnModel {
	r := rng.New(seed)
	d := cfg.EmbedDim
	return &gnnModel{
		name:      name,
		cfg:       cfg,
		g:         g,
		fe:        core.NewFeatureEmbedder(v, d, r.Split()),
		towerUQ:   nn.NewMLP(name+".tower.uq", []int{2 * d, d, cfg.OutDim}, nn.ActReLU, nn.ActNone, r.Split()),
		towerItem: nn.NewMLP(name+".tower.item", []int{d, d, cfg.OutDim}, nn.ActReLU, nn.ActNone, r.Split()),
	}
}

// Name implements core.Model.
func (m *gnnModel) Name() string { return m.name }

// BindView implements core.ViewBinder: every closure reads the graph
// through m.g, so swapping the view redirects sampling and feature
// lookups without touching trained weights.
func (m *gnnModel) BindView(g core.GraphView) { m.g = g }

// nodeEmb returns the mean of a node's feature latent vectors (1 x d).
func (m *gnnModel) nodeEmb(t *ad.Tape, id graph.NodeID) *ad.Node {
	return t.MeanRows(m.fe.FeatureMatrix(t, m.g, id))
}

func (m *gnnModel) itemVec(t *ad.Tape, item graph.NodeID) *ad.Node {
	return m.towerItem.Forward(t, m.nodeEmb(t, item))
}

// Logits implements core.Model.
func (m *gnnModel) Logits(t *ad.Tape, batch []core.Instance, r *rng.RNG) *ad.Node {
	rows := make([]*ad.Node, len(batch))
	for i, ex := range batch {
		uq := m.uqFn(t, ex.User, ex.Query, r)
		it := m.itemVec(t, ex.Item)
		rows[i] = t.Scale(m.cfg.LogitScale, t.CosineSim(uq, it))
	}
	return t.ConcatRows(rows...)
}

// DenseParams implements core.Model.
func (m *gnnModel) DenseParams() []*nn.Param {
	out := append([]*nn.Param(nil), m.extra...)
	out = append(out, m.towerUQ.Params()...)
	out = append(out, m.towerItem.Params()...)
	return out
}

// Tables implements core.Model.
func (m *gnnModel) Tables() []*nn.EmbeddingTable { return m.fe.Tables() }

// UserQueryEmbedding implements core.Model.
func (m *gnnModel) UserQueryEmbedding(u, q graph.NodeID, r *rng.RNG) tensor.Vec {
	t := ad.NewTape()
	return tensor.Copy(m.uqFn(t, u, q, r).Val.Row(0))
}

// ItemEmbedding implements core.Model.
func (m *gnnModel) ItemEmbedding(item graph.NodeID, _ *rng.RNG) tensor.Vec {
	t := ad.NewTape()
	return tensor.Copy(m.itemVec(t, item).Val.Row(0))
}

// meanTree embeds a sampled tree by recursive mean aggregation:
// h = ReLU(W·[self ‖ mean(children)]), the GraphSAGE aggregation that
// PinSage/PinnerSage/Pixie variants reuse under different samplers.
func meanTree(t *ad.Tape, m *gnnModel, tree *sampling.Tree, aggW *nn.Linear) *ad.Node {
	self := m.nodeEmb(t, tree.Node)
	if len(tree.Children) == 0 {
		return self
	}
	childs := make([]*ad.Node, len(tree.Children))
	for i, c := range tree.Children {
		childs[i] = meanTree(t, m, c, aggW)
	}
	agg := t.MeanRows(t.ConcatRows(childs...))
	return t.ReLU(aggW.Forward(t, t.ConcatCols(self, agg)))
}

// samplerUQ wires a sampler + mean aggregation into a request-side
// embedding: the shape shared by the four sampler baselines.
func samplerUQ(m *gnnModel, s sampling.Sampler, aggW *nn.Linear, focalFromContent bool) func(*ad.Tape, graph.NodeID, graph.NodeID, *rng.RNG) *ad.Node {
	// One scratch per model: models run strictly sequentially (training
	// and eval are single-goroutine), and the walk samplers' slice-backed
	// visit counters are only cheap when the scratch is reused.
	sc := sampling.NewScratch()
	return func(t *ad.Tape, u, q graph.NodeID, r *rng.RNG) *ad.Node {
		sc.Reset()
		var focal tensor.Vec
		if focalFromContent {
			focal = tensor.NewVec(m.g.ContentDim())
			if c := m.g.Content(u); c != nil {
				tensor.Axpy(1, c, focal)
			}
			if c := m.g.Content(q); c != nil {
				tensor.Axpy(1, c, focal)
			}
		}
		treeU := sampling.BuildTree(m.g, u, focal, m.cfg.Hops, m.cfg.FanOut, s, r, sc)
		treeQ := sampling.BuildTree(m.g, q, focal, m.cfg.Hops, m.cfg.FanOut, s, r, sc)
		hu := meanTree(t, m, treeU, aggW)
		hq := meanTree(t, m, treeQ, aggW)
		return m.towerUQ.Forward(t, t.ConcatCols(hu, hq))
	}
}

// NewGraphSAGE returns the GraphSAGE baseline: uniform neighbor sampling
// with mean aggregation (Hamilton et al. 2017).
func NewGraphSAGE(g core.GraphView, v loggen.Vocab, cfg Config, seed uint64) core.Model {
	m := newChassis("graphsage", g, v, cfg, seed)
	aggW := nn.NewLinear("graphsage.agg", 2*cfg.EmbedDim, cfg.EmbedDim, rng.New(seed+1))
	m.extra = aggW.Params()
	m.uqFn = samplerUQ(m, sampling.Uniform{}, aggW, false)
	return m
}

// NewPinSage returns the PinSage baseline: random-walk importance
// sampling with mean aggregation (Ying et al. 2018).
func NewPinSage(g core.GraphView, v loggen.Vocab, cfg Config, seed uint64) core.Model {
	m := newChassis("pinsage", g, v, cfg, seed)
	aggW := nn.NewLinear("pinsage.agg", 2*cfg.EmbedDim, cfg.EmbedDim, rng.New(seed+1))
	m.extra = aggW.Params()
	m.uqFn = samplerUQ(m, sampling.NewImportanceWalk(), aggW, false)
	return m
}

// NewPinnerSage returns the PinnerSage baseline: cluster-importance
// sampling preserving multi-modal interests (Pal et al. 2020).
func NewPinnerSage(g core.GraphView, v loggen.Vocab, cfg Config, seed uint64) core.Model {
	m := newChassis("pinnersage", g, v, cfg, seed)
	aggW := nn.NewLinear("pinnersage.agg", 2*cfg.EmbedDim, cfg.EmbedDim, rng.New(seed+1))
	m.extra = aggW.Params()
	m.uqFn = samplerUQ(m, sampling.NewClusterImportance(), aggW, false)
	return m
}

// NewPixie returns the Pixie baseline: user-biased random-walk sampling
// (Eksombatchai et al. 2018); walks are biased by the request's content.
func NewPixie(g core.GraphView, v loggen.Vocab, cfg Config, seed uint64) core.Model {
	m := newChassis("pixie", g, v, cfg, seed)
	aggW := nn.NewLinear("pixie.agg", 2*cfg.EmbedDim, cfg.EmbedDim, rng.New(seed+1))
	m.extra = aggW.Params()
	m.uqFn = samplerUQ(m, sampling.NewBiasedWalk(), aggW, true)
	return m
}
