package baselines

import (
	"math"
	"testing"

	"zoomer/internal/ad"
	"zoomer/internal/core"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/rng"
)

type world struct {
	logs  *loggen.Logs
	res   *graphbuild.Result
	train []core.Instance
	test  []core.Instance
}

func buildWorld(t testing.TB, seed uint64) *world {
	t.Helper()
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, seed))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	ds := loggen.BuildExamples(logs, 1, 0.25, seed+1)
	return &world{
		logs:  logs,
		res:   res,
		train: core.InstancesFromExamples(ds.Train, res.Mapping),
		test:  core.InstancesFromExamples(ds.Test, res.Mapping),
	}
}

func tinyCfg() Config {
	cfg := DefaultConfig()
	cfg.EmbedDim = 16
	cfg.OutDim = 16
	cfg.Hops = 1
	cfg.FanOut = 4
	return cfg
}

// All returns one instance of every baseline, the set Table III compares.
func allBaselines(w *world) []core.Model {
	v := w.logs.Vocab()
	g := w.res.Graph
	cfg := tinyCfg()
	return []core.Model{
		NewGraphSAGE(g, v, cfg, 1),
		NewPinSage(g, v, cfg, 2),
		NewPinnerSage(g, v, cfg, 3),
		NewPixie(g, v, cfg, 4),
		NewHAN(g, v, cfg, 5),
		NewGCEGNN(g, v, cfg, 6),
		NewFGNN(g, v, cfg, 7),
		NewSTAMP(g, v, cfg, 8),
		NewMCCF(g, v, cfg, 9),
	}
}

func TestNamesAreDistinct(t *testing.T) {
	w := buildWorld(t, 1)
	seen := map[string]bool{}
	for _, m := range allBaselines(w) {
		if seen[m.Name()] {
			t.Fatalf("duplicate baseline name %q", m.Name())
		}
		seen[m.Name()] = true
	}
	if len(seen) != 9 {
		t.Fatalf("expected 9 baselines, got %d", len(seen))
	}
}

// Every baseline must produce finite logits of the right shape and
// backpropagate into both dense parameters and embedding tables.
func TestForwardBackwardAllBaselines(t *testing.T) {
	w := buildWorld(t, 2)
	r := rng.New(3)
	batch := w.train[:6]
	targets := make([]float32, len(batch))
	for i, ex := range batch {
		targets[i] = ex.Label
	}
	for _, m := range allBaselines(w) {
		tp := ad.NewTape()
		logits := m.Logits(tp, batch, r)
		if logits.Rows() != len(batch) || logits.Cols() != 1 {
			t.Fatalf("%s: logits shape %dx%d", m.Name(), logits.Rows(), logits.Cols())
		}
		for _, v := range logits.Val.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite logit", m.Name())
			}
		}
		tp.Backward(tp.BCEWithLogits(logits, targets))
		denseOK := false
		for _, p := range m.DenseParams() {
			for _, g := range p.Grad.Data {
				if g != 0 {
					denseOK = true
				}
			}
			p.ZeroGrad()
		}
		if !denseOK {
			t.Fatalf("%s: no dense gradient", m.Name())
		}
		sparseOK := false
		for _, tab := range m.Tables() {
			if tab.TouchedRows() > 0 {
				sparseOK = true
			}
			tab.ZeroGrad()
		}
		if !sparseOK {
			t.Fatalf("%s: no sparse gradient", m.Name())
		}
	}
}

// Embedding exports must be finite and well-shaped for every baseline
// (the retrieval/ANN path depends on them).
func TestEmbeddingExportsAllBaselines(t *testing.T) {
	w := buildWorld(t, 4)
	r := rng.New(5)
	ex := w.train[0]
	for _, m := range allBaselines(w) {
		uq := m.UserQueryEmbedding(ex.User, ex.Query, r)
		it := m.ItemEmbedding(ex.Item, r)
		if len(uq) != 16 || len(it) != 16 {
			t.Fatalf("%s: embedding dims %d/%d", m.Name(), len(uq), len(it))
		}
		for _, v := range append(append([]float32{}, uq...), it...) {
			if math.IsNaN(float64(v)) {
				t.Fatalf("%s: NaN in embedding", m.Name())
			}
		}
	}
}

// A representative baseline must learn (the full per-model comparison
// lives in the Table II/III experiment harnesses).
func TestGraphSAGELearns(t *testing.T) {
	w := buildWorld(t, 6)
	m := NewGraphSAGE(w.res.Graph, w.logs.Vocab(), tinyCfg(), 10)
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = 2
	cfg.BatchSize = 16
	cfg.LR = 0.02
	cfg.MaxSteps = 120
	res := core.Train(m, w.train, w.test, cfg)
	if res.TestAUC < 0.55 {
		t.Fatalf("graphsage AUC %.3f; failed to learn", res.TestAUC)
	}
}

func TestHANLearns(t *testing.T) {
	w := buildWorld(t, 7)
	m := NewHAN(w.res.Graph, w.logs.Vocab(), tinyCfg(), 11)
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = 2
	cfg.BatchSize = 16
	cfg.LR = 0.02
	cfg.MaxSteps = 120
	res := core.Train(m, w.train, w.test, cfg)
	if res.TestAUC < 0.55 {
		t.Fatalf("han AUC %.3f; failed to learn", res.TestAUC)
	}
}

func TestUserItemHistory(t *testing.T) {
	w := buildWorld(t, 8)
	g := w.res.Graph
	users := g.NodesOfType(graph.User)
	foundAny := false
	for _, u := range users[:20] {
		hist := userItemHistory(g, u, 8)
		if len(hist) > 8 {
			t.Fatal("history exceeds cap")
		}
		seen := map[graph.NodeID]bool{}
		for _, it := range hist {
			if g.Type(it) != graph.Item {
				t.Fatal("history contains non-item")
			}
			if seen[it] {
				t.Fatal("history contains duplicate")
			}
			seen[it] = true
		}
		if len(hist) > 0 {
			foundAny = true
		}
	}
	if !foundAny {
		t.Fatal("no user had any item history")
	}
}

func BenchmarkGraphSAGEStep(b *testing.B) {
	w := buildWorld(b, 9)
	m := NewGraphSAGE(w.res.Graph, w.logs.Vocab(), tinyCfg(), 12)
	r := rng.New(1)
	batch := w.train[:16]
	targets := make([]float32, len(batch))
	for i, ex := range batch {
		targets[i] = ex.Label
	}
	adam := core.DefaultTrainConfig()
	_ = adam
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := ad.NewTape()
		logits := m.Logits(tp, batch, r)
		tp.Backward(tp.BCEWithLogits(logits, targets))
		for _, p := range m.DenseParams() {
			p.ZeroGrad()
		}
		for _, tab := range m.Tables() {
			tab.ZeroGrad()
		}
	}
}
