// Package eval implements the evaluation metrics of §VII-A: AUC over
// scored query-item pairs, HitRate@K over retrieved lists, MAE/RMSE for
// the MovieLens benchmark, and the distribution utilities (CDFs, cosine
// similarity measurements) behind the motivation figures.
package eval

import (
	"math"
	"sort"
)

// AUC returns the area under the ROC curve for scores with binary labels,
// computed by the rank-statistic formulation (equivalent to the
// probability a random positive outranks a random negative). Ties share
// rank mass. It returns 0.5 when either class is empty, the uninformative
// default.
func AUC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic("eval: AUC length mismatch")
	}
	n := len(scores)
	if n == 0 {
		return 0.5
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Average ranks over tie groups.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1 // 1-based average rank
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	var posRankSum float64
	var nPos int
	for i, l := range labels {
		if l {
			posRankSum += ranks[i]
			nPos++
		}
	}
	nNeg := n - nPos
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (posRankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}

// HitRateAtK returns the fraction of test interactions whose clicked item
// appears in the model's top-k retrieved list. retrieved[i] is the ranked
// list for test case i; clicked[i] the ground-truth item.
func HitRateAtK(retrieved [][]int, clicked []int, k int) float64 {
	if len(retrieved) != len(clicked) {
		panic("eval: HitRateAtK length mismatch")
	}
	if len(retrieved) == 0 {
		return 0
	}
	hits := 0
	for i, list := range retrieved {
		lim := k
		if lim > len(list) {
			lim = len(list)
		}
		for _, it := range list[:lim] {
			if it == clicked[i] {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(retrieved))
}

// MAE returns the mean absolute error between predictions and targets.
func MAE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic("eval: MAE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - target[i])
	}
	return s / float64(len(pred))
}

// RMSE returns the root mean squared error between predictions and
// targets.
func RMSE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic("eval: RMSE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// CDF summarizes a sample as quantile points, for the Fig. 4c-style
// similarity distributions.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from values (copied and sorted).
func NewCDF(values []float64) *CDF {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (q in [0,1]).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := q * float64(len(c.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(c.sorted) {
		return c.sorted[lo]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// MeanStd returns the sample mean and (population) standard deviation.
func MeanStd(values []float64) (mean, std float64) {
	if len(values) == 0 {
		return 0, 0
	}
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	for _, v := range values {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(values)))
	return mean, std
}
