package eval

import (
	"math"
	"testing"

	"zoomer/internal/rng"
)

// The golden tests below pin the exact float64 output of every metric on
// seeded random inputs. Any change to the implementations — rank
// averaging in AUC, quantile interpolation in CDF — that shifts a single
// bit fails these, which is the point: the cross-topology equivalence
// suite compares metric values bit-for-bit, so the metrics themselves
// must be bit-stable across PRs.

func TestAUCGolden(t *testing.T) {
	r := rng.New(42)
	n := 64
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = r.Float64()
		labels[i] = r.Float64() < 0.4
	}
	if got := AUC(scores, labels); got != 0.4837662337662338 {
		t.Fatalf("AUC = %v", got)
	}
	// Quantizing the scores into 4 buckets forces heavy tie groups; the
	// tie-averaged rank formulation must land on this exact value.
	tied := make([]float64, n)
	for i, s := range scores {
		tied[i] = float64(int(s * 4))
	}
	if got := AUC(tied, labels); got != 0.49783549783549785 {
		t.Fatalf("tied AUC = %v", got)
	}
}

func TestAUCEdgeCases(t *testing.T) {
	if got := AUC([]float64{}, []bool{}); got != 0.5 {
		t.Fatalf("empty AUC = %v", got)
	}
	if got := AUC([]float64{0.1, 0.9, 0.5}, []bool{true, true, true}); got != 0.5 {
		t.Fatalf("all-positive AUC = %v", got)
	}
	if got := AUC([]float64{0.1, 0.9, 0.5}, []bool{false, false, false}); got != 0.5 {
		t.Fatalf("all-negative AUC = %v", got)
	}
	// A tie spanning both classes splits the rank mass evenly.
	if got := AUC([]float64{1, 1}, []bool{true, false}); got != 0.5 {
		t.Fatalf("two-way tie AUC = %v", got)
	}
	// One positive tied with one of two negatives: 0.75 exactly.
	if got := AUC([]float64{2, 2, 1}, []bool{true, false, false}); got != 0.75 {
		t.Fatalf("partial tie AUC = %v", got)
	}
}

func TestHitRateAtKGolden(t *testing.T) {
	r := rng.New(43)
	retrieved := make([][]int, 32)
	clicked := make([]int, 32)
	for i := range retrieved {
		for j := 0; j < 10; j++ {
			retrieved[i] = append(retrieved[i], r.Intn(50))
		}
		clicked[i] = r.Intn(50)
	}
	want := map[int]float64{1: 0.0625, 5: 0.125, 10: 0.15625}
	for k, w := range want {
		if got := HitRateAtK(retrieved, clicked, k); got != w {
			t.Fatalf("HR@%d = %v, want %v", k, got, w)
		}
	}
	if got := HitRateAtK([][]int{}, []int{}, 5); got != 0 {
		t.Fatalf("empty HR = %v", got)
	}
	if got := HitRateAtK([][]int{{}}, []int{3}, 5); got != 0 {
		t.Fatalf("empty-list HR = %v", got)
	}
}

func TestMAERMSEGolden(t *testing.T) {
	r := rng.New(44)
	pred := make([]float64, 48)
	target := make([]float64, 48)
	for i := range pred {
		pred[i] = r.Float64() * 5
		target[i] = r.Float64() * 5
	}
	if got := MAE(pred, target); got != 1.7827710522756053 {
		t.Fatalf("MAE = %v", got)
	}
	if got := RMSE(pred, target); got != 2.226234093777657 {
		t.Fatalf("RMSE = %v", got)
	}
	if MAE([]float64{}, []float64{}) != 0 {
		t.Fatal("empty MAE != 0")
	}
	if RMSE([]float64{}, []float64{}) != 0 {
		t.Fatal("empty RMSE != 0")
	}
	// Identical vectors: exactly zero, no accumulated rounding.
	same := []float64{1.5, -2.25, 1e9}
	if MAE(same, same) != 0 || RMSE(same, same) != 0 {
		t.Fatal("self MAE/RMSE != 0")
	}
}

func TestCDFQuantileGolden(t *testing.T) {
	r := rng.New(45)
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = r.NormFloat64()
	}
	c := NewCDF(vals)
	want := map[float64]float64{
		0.01: -2.0037106555486313,
		0.25: -0.9228326178732966,
		0.5:  -0.25596709366742776,
		0.75: 0.3747633775528523,
		0.99: 2.2895365069343843,
	}
	for q, w := range want {
		if got := c.Quantile(q); got != w {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, w)
		}
	}
	// Out-of-range q clamps to the extremes; empty CDF is NaN.
	if c.Quantile(-1) != c.Quantile(0) || c.Quantile(2) != c.Quantile(1) {
		t.Fatal("out-of-range quantile not clamped")
	}
	empty := NewCDF(nil)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty Quantile not NaN")
	}
	if empty.At(0) != 0 {
		t.Fatal("empty At != 0")
	}
	// Single-element CDF: every quantile is that element.
	one := NewCDF([]float64{7})
	for _, q := range []float64{0, 0.3, 0.5, 1} {
		if one.Quantile(q) != 7 {
			t.Fatalf("single-element Quantile(%v) = %v", q, one.Quantile(q))
		}
	}
}
