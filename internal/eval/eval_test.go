package eval

import (
	"math"
	"testing"
	"testing/quick"

	"zoomer/internal/rng"
)

func TestAUCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if auc := AUC(scores, labels); auc != 1 {
		t.Fatalf("perfect AUC = %v", auc)
	}
	// Inverted scores give 0.
	inv := []float64{0.1, 0.2, 0.8, 0.9}
	if auc := AUC(inv, labels); auc != 0 {
		t.Fatalf("inverted AUC = %v", auc)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	r := rng.New(1)
	n := 20000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = r.Float64()
		labels[i] = r.Float64() < 0.3
	}
	if auc := AUC(scores, labels); math.Abs(auc-0.5) > 0.02 {
		t.Fatalf("random AUC = %v, want ~0.5", auc)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5.
	scores := []float64{1, 1, 1, 1}
	labels := []bool{true, false, true, false}
	if auc := AUC(scores, labels); auc != 0.5 {
		t.Fatalf("all-ties AUC = %v", auc)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if auc := AUC(nil, nil); auc != 0.5 {
		t.Fatal("empty AUC should be 0.5")
	}
	if auc := AUC([]float64{1, 2}, []bool{true, true}); auc != 0.5 {
		t.Fatal("single-class AUC should be 0.5")
	}
}

// Property: AUC is invariant under any strictly monotone transform.
func TestAUCMonotoneInvariance(t *testing.T) {
	r := rng.New(2)
	if err := quick.Check(func(seed uint32) bool {
		n := 10 + int(seed%50)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = r.Float64() * 10
			labels[i] = r.Float64() < 0.5
		}
		a := AUC(scores, labels)
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(s/3) + 7
		}
		b := AUC(transformed, labels)
		return math.Abs(a-b) < 1e-9
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAUCPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	AUC([]float64{1}, []bool{true, false})
}

func TestHitRateAtK(t *testing.T) {
	retrieved := [][]int{
		{5, 3, 1},
		{2, 9, 4},
		{7, 8},
	}
	clicked := []int{3, 4, 6}
	if hr := HitRateAtK(retrieved, clicked, 1); hr != 0 {
		t.Fatalf("HR@1 = %v", hr)
	}
	if hr := HitRateAtK(retrieved, clicked, 2); math.Abs(hr-1.0/3) > 1e-12 {
		t.Fatalf("HR@2 = %v", hr)
	}
	if hr := HitRateAtK(retrieved, clicked, 3); math.Abs(hr-2.0/3) > 1e-12 {
		t.Fatalf("HR@3 = %v", hr)
	}
	// k beyond list length is safe.
	if hr := HitRateAtK(retrieved, clicked, 100); math.Abs(hr-2.0/3) > 1e-12 {
		t.Fatalf("HR@100 = %v", hr)
	}
	if hr := HitRateAtK(nil, nil, 5); hr != 0 {
		t.Fatal("empty hitrate should be 0")
	}
}

// HitRate must be monotone nondecreasing in k.
func TestHitRateMonotone(t *testing.T) {
	r := rng.New(3)
	retrieved := make([][]int, 50)
	clicked := make([]int, 50)
	for i := range retrieved {
		for j := 0; j < 20; j++ {
			retrieved[i] = append(retrieved[i], r.Intn(100))
		}
		clicked[i] = r.Intn(100)
	}
	prev := 0.0
	for k := 1; k <= 20; k++ {
		hr := HitRateAtK(retrieved, clicked, k)
		if hr < prev {
			t.Fatalf("hitrate decreased at k=%d: %v < %v", k, hr, prev)
		}
		prev = hr
	}
}

func TestMAERMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	target := []float64{1, 1, 5}
	if mae := MAE(pred, target); math.Abs(mae-1) > 1e-12 {
		t.Fatalf("MAE = %v", mae)
	}
	wantRMSE := math.Sqrt((0 + 1 + 4) / 3.0)
	if rmse := RMSE(pred, target); math.Abs(rmse-wantRMSE) > 1e-12 {
		t.Fatalf("RMSE = %v", rmse)
	}
	// RMSE >= MAE always.
	if RMSE(pred, target) < MAE(pred, target) {
		t.Fatal("RMSE < MAE")
	}
	if MAE(nil, nil) != 0 || RMSE(nil, nil) != 0 {
		t.Fatal("empty errors should be 0")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.N() != 4 {
		t.Fatal("N wrong")
	}
	if p := c.At(0); p != 0 {
		t.Fatalf("At(0) = %v", p)
	}
	if p := c.At(2); p != 0.5 {
		t.Fatalf("At(2) = %v", p)
	}
	if p := c.At(10); p != 1 {
		t.Fatalf("At(10) = %v", p)
	}
	if q := c.Quantile(0); q != 1 {
		t.Fatalf("Q(0) = %v", q)
	}
	if q := c.Quantile(1); q != 4 {
		t.Fatalf("Q(1) = %v", q)
	}
	if q := c.Quantile(0.5); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("median = %v", q)
	}
	if !math.IsNaN(NewCDF(nil).Quantile(0.5)) {
		t.Fatal("empty CDF quantile should be NaN")
	}
}

// Property: CDF At is monotone and Quantile is its pseudo-inverse.
func TestCDFMonotone(t *testing.T) {
	r := rng.New(4)
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = r.NormFloat64()
	}
	c := NewCDF(vals)
	prev := -1.0
	for x := -3.0; x <= 3; x += 0.1 {
		p := c.At(x)
		if p < prev {
			t.Fatal("CDF not monotone")
		}
		prev = p
	}
	for q := 0.05; q < 1; q += 0.05 {
		x := c.Quantile(q)
		if p := c.At(x); math.Abs(p-q) > 0.05 {
			t.Fatalf("At(Quantile(%v)) = %v", q, p)
		}
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std-2) > 1e-12 {
		t.Fatalf("std = %v", std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd should be zeros")
	}
}

func BenchmarkAUC10K(b *testing.B) {
	r := rng.New(1)
	scores := make([]float64, 10000)
	labels := make([]bool, 10000)
	for i := range scores {
		scores[i] = r.Float64()
		labels[i] = r.Float64() < 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AUC(scores, labels)
	}
}
