// Package loggen generates synthetic user-behavior logs with the
// statistical structure the paper measures on Taobao data: power-law
// item/query popularity, per-user long-term interest mixtures, session
// structure with drifting focal intent (Fig. 4b), and noisy implicit
// feedback whose relevance to any single focal interest is low (Fig. 4c).
//
// It is the stand-in for the proprietary Taobao logs and for MovieLens
// 25M; see DESIGN.md §2 for the substitution argument. Everything is
// driven by a latent topic model: nodes carry a topic-anchored content
// vector, users hold mixtures over topics, and sessions follow an intent
// topic that drifts between queries.
package loggen

import (
	"fmt"

	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// Config parameterizes a synthetic world.
type Config struct {
	Seed uint64

	Users, Queries, Items int
	Topics                int // latent interest clusters
	ContentDim            int // dimensionality of content vectors

	SessionsPerUser int     // mean sessions per user
	QueriesPerSess  int     // mean queries per session
	ClicksPerQuery  int     // mean clicks per posed query
	IntentDrift     float64 // prob. the intent topic changes between queries
	NoiseClick      float64 // prob. a click is off-topic noise
	TopicsPerUser   int     // size of each user's interest mixture

	PopularityExp float64 // Zipf exponent for item/query popularity
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Users <= 0 || c.Queries <= 0 || c.Items <= 0:
		return fmt.Errorf("loggen: node counts must be positive")
	case c.Topics <= 0:
		return fmt.Errorf("loggen: need at least one topic")
	case c.ContentDim <= 0:
		return fmt.Errorf("loggen: content dim must be positive")
	case c.SessionsPerUser <= 0 || c.QueriesPerSess <= 0 || c.ClicksPerQuery <= 0:
		return fmt.Errorf("loggen: session shape must be positive")
	case c.IntentDrift < 0 || c.IntentDrift > 1 || c.NoiseClick < 0 || c.NoiseClick > 1:
		return fmt.Errorf("loggen: probabilities must be in [0,1]")
	case c.TopicsPerUser <= 0 || c.TopicsPerUser > c.Topics:
		return fmt.Errorf("loggen: TopicsPerUser must be in [1, Topics]")
	case c.PopularityExp <= 0:
		return fmt.Errorf("loggen: PopularityExp must be positive")
	}
	return nil
}

// Scale names the three Taobao graph scales of §VII-A. The node counts are
// the paper's ratios scaled down ~1000-40000x so experiments run on one
// machine; the distributions, not the absolute sizes, carry the phenomena.
type Scale int

// The three evaluation scales plus a tiny scale for unit tests.
const (
	ScaleTiny Scale = iota
	ScaleSmall
	ScaleMedium
	ScaleLarge
)

// String names the scale as the paper does.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "million-scale"
	case ScaleMedium:
		return "hundred-million-scale"
	case ScaleLarge:
		return "billion-scale"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// TaobaoConfig returns the generator preset for one of the paper's graph
// scales. Ratios follow §VII-A: the million-scale graph is item-heavy
// (1M items / 0.5M queries / 0.5M users), the larger graphs user-heavy.
func TaobaoConfig(s Scale, seed uint64) Config {
	base := Config{
		Seed:            seed,
		Topics:          24,
		ContentDim:      16,
		SessionsPerUser: 6,
		QueriesPerSess:  3,
		ClicksPerQuery:  4,
		IntentDrift:     0.55,
		NoiseClick:      0.20,
		TopicsPerUser:   3,
		PopularityExp:   1.05,
	}
	switch s {
	case ScaleTiny:
		base.Users, base.Queries, base.Items = 60, 60, 120
		base.Topics = 6
		base.SessionsPerUser = 3
	case ScaleSmall:
		base.Users, base.Queries, base.Items = 1500, 1500, 3000
	case ScaleMedium:
		base.Users, base.Queries, base.Items = 6000, 2700, 1000
		base.SessionsPerUser = 8
	case ScaleLarge:
		base.Users, base.Queries, base.Items = 8500, 6250, 14250
		base.SessionsPerUser = 8
	default:
		panic("loggen: unknown scale")
	}
	return base
}

// Click is one clicked item within a query interaction.
type Click struct {
	Item int // item index
}

// QueryEvent is one posed query and the click sequence under it.
type QueryEvent struct {
	Query  int
	Clicks []Click
	Topic  int // ground-truth intent topic (not visible to models)
}

// Session is a sequence of query events by one user.
type Session struct {
	User   int
	Events []QueryEvent
}

// UserMeta holds generated user attributes. FeatureIDs maps to Table I:
// id, gender, membership level.
type UserMeta struct {
	TopicWeights []float32 // interest mixture over topics
	Content      tensor.Vec
	FeatureIDs   []int32
}

// QueryMeta holds generated query attributes: category (= topic) and
// title-term ids.
type QueryMeta struct {
	Topic      int
	Content    tensor.Vec
	FeatureIDs []int32
	TitleTerms []uint64
}

// ItemMeta holds generated item attributes: id, category, title terms,
// brand, shop.
type ItemMeta struct {
	Topic      int
	Content    tensor.Vec
	FeatureIDs []int32
	TitleTerms []uint64
}

// Logs is a complete synthetic world: node metadata plus sessions.
type Logs struct {
	Config   Config
	Topics   []tensor.Vec
	Users    []UserMeta
	Queries  []QueryMeta
	Items    []ItemMeta
	Sessions []Session

	queriesByTopic [][]int
	itemsByTopic   [][]int
}

// vocabulary sizes for the categorical feature spaces.
const (
	numGenders     = 3
	numMemberships = 5
	numBrands      = 200
	numShops       = 500
	termsPerTopic  = 40
	termsPerNode   = 6
)

// Generate builds a synthetic world from cfg. It is deterministic in
// cfg.Seed.
func Generate(cfg Config) (*Logs, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	l := &Logs{Config: cfg}

	// Latent topics: random unit vectors.
	l.Topics = make([]tensor.Vec, cfg.Topics)
	for t := range l.Topics {
		v := make(tensor.Vec, cfg.ContentDim)
		for i := range v {
			v[i] = float32(r.NormFloat64())
		}
		tensor.Normalize(v)
		l.Topics[t] = v
	}

	noisyTopicVec := func(topic int, noise float32) tensor.Vec {
		v := tensor.Copy(l.Topics[topic])
		for i := range v {
			v[i] += noise * float32(r.NormFloat64())
		}
		tensor.Normalize(v)
		return v
	}
	topicTerms := func(topic int, n int) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = uint64(topic*termsPerTopic + r.Intn(termsPerTopic))
		}
		return out
	}

	// Items: Zipf topic assignment so category sizes are skewed, then
	// Zipf popularity within the catalog.
	topicZipf := rng.NewZipf(r, cfg.Topics, 0.9)
	l.Items = make([]ItemMeta, cfg.Items)
	l.itemsByTopic = make([][]int, cfg.Topics)
	for i := range l.Items {
		topic := topicZipf.Sample()
		l.Items[i] = ItemMeta{
			Topic:      topic,
			Content:    noisyTopicVec(topic, 0.35),
			TitleTerms: topicTerms(topic, termsPerNode),
			FeatureIDs: []int32{
				int32(i),                 // item id
				int32(topic),             // category
				int32(r.Intn(numBrands)), // brand
				int32(r.Intn(numShops)),  // shop
			},
		}
		l.itemsByTopic[topic] = append(l.itemsByTopic[topic], i)
	}

	// Queries.
	l.Queries = make([]QueryMeta, cfg.Queries)
	l.queriesByTopic = make([][]int, cfg.Topics)
	for q := range l.Queries {
		topic := topicZipf.Sample()
		l.Queries[q] = QueryMeta{
			Topic:      topic,
			Content:    noisyTopicVec(topic, 0.25),
			TitleTerms: topicTerms(topic, termsPerNode),
			FeatureIDs: []int32{int32(topic)}, // category
		}
		l.queriesByTopic[topic] = append(l.queriesByTopic[topic], q)
	}
	// Guarantee every topic has at least one query and one item so
	// session generation cannot dead-end.
	for t := 0; t < cfg.Topics; t++ {
		if len(l.queriesByTopic[t]) == 0 {
			q := r.Intn(cfg.Queries)
			l.queriesByTopic[t] = append(l.queriesByTopic[t], q)
		}
		if len(l.itemsByTopic[t]) == 0 {
			i := r.Intn(cfg.Items)
			l.itemsByTopic[t] = append(l.itemsByTopic[t], i)
		}
	}

	// Users: interest mixture over TopicsPerUser topics.
	l.Users = make([]UserMeta, cfg.Users)
	for u := range l.Users {
		weights := make([]float32, cfg.Topics)
		content := make(tensor.Vec, cfg.ContentDim)
		var total float32
		for k := 0; k < cfg.TopicsPerUser; k++ {
			topic := topicZipf.Sample()
			w := 0.5 + r.Float32()
			weights[topic] += w
			total += w
		}
		for t, w := range weights {
			if w == 0 {
				continue
			}
			weights[t] = w / total
			tensor.Axpy(weights[t], l.Topics[t], content)
		}
		tensor.Normalize(content)
		l.Users[u] = UserMeta{
			TopicWeights: weights,
			Content:      content,
			FeatureIDs: []int32{
				int32(u),                      // user id
				int32(r.Intn(numGenders)),     // gender
				int32(r.Intn(numMemberships)), // membership level
			},
		}
	}

	// Popularity samplers within each topic (head queries/items dominate).
	queryPop := make([]*rng.Zipf, cfg.Topics)
	itemPop := make([]*rng.Zipf, cfg.Topics)
	for t := 0; t < cfg.Topics; t++ {
		queryPop[t] = rng.NewZipf(r, len(l.queriesByTopic[t]), cfg.PopularityExp)
		itemPop[t] = rng.NewZipf(r, len(l.itemsByTopic[t]), cfg.PopularityExp)
	}

	sampleUserTopic := func(u int) int {
		x := r.Float32()
		var acc float32
		for t, w := range l.Users[u].TopicWeights {
			acc += w
			if x <= acc {
				return t
			}
		}
		return cfg.Topics - 1
	}

	// Sessions.
	for u := range l.Users {
		nSess := 1 + r.Intn(2*cfg.SessionsPerUser-1) // mean ≈ SessionsPerUser
		for s := 0; s < nSess; s++ {
			intent := sampleUserTopic(u)
			sess := Session{User: u}
			nQ := 1 + r.Intn(2*cfg.QueriesPerSess-1)
			for qi := 0; qi < nQ; qi++ {
				if qi > 0 && r.Float64() < cfg.IntentDrift {
					// Focal interest changes mid-session (Fig. 4b): mostly a
					// different user interest, sometimes a fully random topic.
					if r.Float64() < 0.3 {
						intent = r.Intn(cfg.Topics)
					} else {
						intent = sampleUserTopic(u)
					}
				}
				qlist := l.queriesByTopic[intent]
				q := qlist[queryPop[intent].Sample()]
				ev := QueryEvent{Query: q, Topic: intent}
				nC := 1 + r.Intn(2*cfg.ClicksPerQuery-1)
				for c := 0; c < nC; c++ {
					topic := intent
					if r.Float64() < cfg.NoiseClick {
						topic = r.Intn(cfg.Topics) // off-intent noise click
					}
					ilist := l.itemsByTopic[topic]
					ev.Clicks = append(ev.Clicks, Click{Item: ilist[itemPop[topic].Sample()]})
				}
				sess.Events = append(sess.Events, ev)
			}
			l.Sessions = append(l.Sessions, sess)
		}
	}
	return l, nil
}

// MustGenerate is Generate but panics on config errors; for presets known
// to be valid.
func MustGenerate(cfg Config) *Logs {
	l, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// NumInteractions counts (user, query, clicked item) triples.
func (l *Logs) NumInteractions() int {
	n := 0
	for _, s := range l.Sessions {
		for _, ev := range s.Events {
			n += len(ev.Clicks)
		}
	}
	return n
}

// ItemsOfTopic returns the item indices whose ground-truth topic is t.
func (l *Logs) ItemsOfTopic(t int) []int { return l.itemsByTopic[t] }

// QueriesOfTopic returns the query indices whose ground-truth topic is t.
func (l *Logs) QueriesOfTopic(t int) []int { return l.queriesByTopic[t] }

// Exported vocabulary sizes for the categorical feature spaces, needed by
// models to size embedding tables.
const (
	NumGenders     = numGenders
	NumMemberships = numMemberships
	NumBrands      = numBrands
	NumShops       = numShops
	TermsPerNode   = termsPerNode
)

// Vocab reports the size of every categorical id space in this world.
type Vocab struct {
	Users, Queries, Items               int
	Categories                          int
	Genders, Memberships, Brands, Shops int
	Terms                               int
}

// Vocab returns the vocabulary sizes of the generated world.
func (l *Logs) Vocab() Vocab {
	return Vocab{
		Users:       len(l.Users),
		Queries:     len(l.Queries),
		Items:       len(l.Items),
		Categories:  l.Config.Topics,
		Genders:     numGenders,
		Memberships: numMemberships,
		Brands:      numBrands,
		Shops:       numShops,
		Terms:       l.Config.Topics * termsPerTopic,
	}
}
