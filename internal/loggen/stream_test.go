package loggen

import "testing"

// drain pulls every interaction out of a stream.
func drain(s *Stream) []Interaction {
	var out []Interaction
	for {
		iv, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, iv)
	}
}

// Two streams with the same seed must yield identical sequences — the
// property ingest's crash-recovery comparisons stand on.
func TestStreamDeterministic(t *testing.T) {
	l := tinyLogs(t)
	a := drain(l.Stream(11))
	b := drain(l.Stream(11))
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interaction %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// The stream is a reordering of the generated world, nothing more: every
// click appears exactly once, with the correct query, user and
// predecessor linkage, and Remaining counts down accurately.
func TestStreamCoversAllInteractions(t *testing.T) {
	l := tinyLogs(t)
	s := l.Stream(3)
	total := l.NumInteractions()
	if s.Remaining() != total {
		t.Fatalf("Remaining %d, want %d", s.Remaining(), total)
	}
	got := drain(s)
	if len(got) != total {
		t.Fatalf("stream yielded %d interactions, want %d", len(got), total)
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining %d after drain", s.Remaining())
	}

	// Count (user, query, item, prev) tuples in the source world and
	// check the multiset matches.
	type key struct{ u, q, it, prev int }
	want := make(map[key]int)
	for _, sess := range l.Sessions {
		for _, ev := range sess.Events {
			for ci, c := range ev.Clicks {
				prev := -1
				if ci > 0 {
					prev = ev.Clicks[ci-1].Item
				}
				want[key{sess.User, ev.Query, c.Item, prev}]++
			}
		}
	}
	for _, iv := range got {
		k := key{iv.User, iv.Query, iv.Item, iv.PrevItem}
		if want[k] == 0 {
			t.Fatalf("stream invented interaction %+v", iv)
		}
		want[k]--
	}
	for k, n := range want {
		if n != 0 {
			t.Fatalf("stream dropped %d copies of %+v", n, k)
		}
	}
}

// Different seeds interleave sessions differently — the stream is a live
// feed, not a fixed dump in generation order.
func TestStreamSeedsDiffer(t *testing.T) {
	l := tinyLogs(t)
	a, b := drain(l.Stream(1)), drain(l.Stream(2))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical interleavings")
	}
}
