package loggen

import (
	"math"
	"testing"

	"zoomer/internal/tensor"
)

func tinyLogs(t *testing.T) *Logs {
	t.Helper()
	return MustGenerate(TaobaoConfig(ScaleTiny, 42))
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{Users: 1, Queries: 1, Items: 1}, // no topics
		{Users: 1, Queries: 1, Items: 1, Topics: 1},                // no dim
		{Users: 1, Queries: 1, Items: 1, Topics: 1, ContentDim: 2}, // no sessions
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
	good := TaobaoConfig(ScaleTiny, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(TaobaoConfig(ScaleTiny, 7))
	b := MustGenerate(TaobaoConfig(ScaleTiny, 7))
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatal("session counts differ for same seed")
	}
	for i := range a.Sessions {
		if a.Sessions[i].User != b.Sessions[i].User ||
			len(a.Sessions[i].Events) != len(b.Sessions[i].Events) {
			t.Fatal("sessions differ for same seed")
		}
	}
	c := MustGenerate(TaobaoConfig(ScaleTiny, 8))
	if len(a.Sessions) == len(c.Sessions) && a.NumInteractions() == c.NumInteractions() {
		t.Log("warning: different seeds produced identical summary; checking details")
		same := true
		for i := range a.Sessions {
			if i >= len(c.Sessions) || a.Sessions[i].User != c.Sessions[i].User {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical worlds")
		}
	}
}

func TestWorldShape(t *testing.T) {
	l := tinyLogs(t)
	cfg := l.Config
	if len(l.Users) != cfg.Users || len(l.Queries) != cfg.Queries || len(l.Items) != cfg.Items {
		t.Fatal("node counts wrong")
	}
	if len(l.Topics) != cfg.Topics {
		t.Fatal("topic count wrong")
	}
	for _, v := range l.Topics {
		if math.Abs(float64(tensor.Norm2(v))-1) > 1e-4 {
			t.Fatal("topic vectors must be unit norm")
		}
	}
	if len(l.Sessions) == 0 || l.NumInteractions() == 0 {
		t.Fatal("no sessions generated")
	}
}

func TestUserMixturesNormalized(t *testing.T) {
	l := tinyLogs(t)
	for u, meta := range l.Users {
		var sum float32
		for _, w := range meta.TopicWeights {
			if w < 0 {
				t.Fatalf("user %d negative weight", u)
			}
			sum += w
		}
		if math.Abs(float64(sum)-1) > 1e-4 {
			t.Fatalf("user %d weights sum to %v", u, sum)
		}
		if len(meta.FeatureIDs) != 3 {
			t.Fatalf("user features = %v", meta.FeatureIDs)
		}
	}
}

func TestItemAndQueryFeatures(t *testing.T) {
	l := tinyLogs(t)
	for i, m := range l.Items {
		if len(m.FeatureIDs) != 4 {
			t.Fatalf("item %d features = %v", i, m.FeatureIDs)
		}
		if m.FeatureIDs[0] != int32(i) {
			t.Fatal("item id feature must equal index")
		}
		if m.Topic < 0 || m.Topic >= l.Config.Topics {
			t.Fatal("item topic out of range")
		}
		if len(m.TitleTerms) == 0 {
			t.Fatal("item has no title terms")
		}
	}
	for q, m := range l.Queries {
		if len(m.FeatureIDs) != 1 || m.FeatureIDs[0] != int32(m.Topic) {
			t.Fatalf("query %d category feature wrong", q)
		}
	}
}

// Clicked items must be on the intent topic far more often than the noise
// rate would suggest at random.
func TestClicksFollowIntent(t *testing.T) {
	l := MustGenerate(TaobaoConfig(ScaleSmall, 3))
	onTopic, total := 0, 0
	for _, s := range l.Sessions {
		for _, ev := range s.Events {
			for _, c := range ev.Clicks {
				if l.Items[c.Item].Topic == ev.Topic {
					onTopic++
				}
				total++
			}
		}
	}
	frac := float64(onTopic) / float64(total)
	// NoiseClick=0.2, so ≥ ~75% should be on topic (noise can land on
	// topic by chance too).
	if frac < 0.7 {
		t.Fatalf("only %.2f of clicks on intent topic", frac)
	}
}

// Successive queries within a session should frequently change topic —
// the Fig. 4b phenomenon the drift parameter creates.
func TestIntentDriftHappens(t *testing.T) {
	l := MustGenerate(TaobaoConfig(ScaleSmall, 4))
	changes, pairs := 0, 0
	for _, s := range l.Sessions {
		for i := 1; i < len(s.Events); i++ {
			if s.Events[i].Topic != s.Events[i-1].Topic {
				changes++
			}
			pairs++
		}
	}
	if pairs == 0 {
		t.Fatal("no multi-query sessions")
	}
	frac := float64(changes) / float64(pairs)
	if frac < 0.3 {
		t.Fatalf("topic change rate %.2f too low for drift=0.55", frac)
	}
}

// Item popularity must be heavy-tailed: the most clicked decile should
// hold a disproportionate share of clicks.
func TestPopularitySkew(t *testing.T) {
	l := MustGenerate(TaobaoConfig(ScaleSmall, 5))
	counts := make([]int, len(l.Items))
	total := 0
	for _, s := range l.Sessions {
		for _, ev := range s.Events {
			for _, c := range ev.Clicks {
				counts[c.Item]++
				total++
			}
		}
	}
	// Count clicks on the top-10% most clicked items.
	top := make([]int, len(counts))
	copy(top, counts)
	// simple selection of decile via sort
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j] > top[i] {
				top[i], top[j] = top[j], top[i]
			}
		}
		if i > len(top)/10 {
			break
		}
	}
	headClicks := 0
	for i := 0; i <= len(top)/10; i++ {
		headClicks += top[i]
	}
	if float64(headClicks)/float64(total) < 0.3 {
		t.Fatalf("top decile holds only %.2f of clicks; want heavy tail", float64(headClicks)/float64(total))
	}
}

func TestScalesOrdered(t *testing.T) {
	small := TaobaoConfig(ScaleSmall, 1)
	medium := TaobaoConfig(ScaleMedium, 1)
	large := TaobaoConfig(ScaleLarge, 1)
	totalNodes := func(c Config) int { return c.Users + c.Queries + c.Items }
	if !(totalNodes(small) < totalNodes(large)) {
		t.Fatal("scales not ordered")
	}
	// Medium and large are user-heavy per the paper; small is item-heavy.
	if small.Items <= small.Users {
		t.Fatal("million-scale should be item-heavy")
	}
	if medium.Users <= medium.Items {
		t.Fatal("hundred-million-scale should be user-heavy")
	}
	if large.Items <= large.Users {
		// billion-scale has 570M items vs 340M users: item-heavy again.
		t.Fatal("billion-scale should be item-heavy")
	}
}

func TestScaleStrings(t *testing.T) {
	if ScaleSmall.String() != "million-scale" || ScaleLarge.String() != "billion-scale" {
		t.Fatal("scale names wrong")
	}
}

func TestTopicLookups(t *testing.T) {
	l := tinyLogs(t)
	for topic := 0; topic < l.Config.Topics; topic++ {
		if len(l.ItemsOfTopic(topic)) == 0 {
			t.Fatalf("topic %d has no items", topic)
		}
		if len(l.QueriesOfTopic(topic)) == 0 {
			t.Fatalf("topic %d has no queries", topic)
		}
	}
}

func TestBuildExamples(t *testing.T) {
	l := tinyLogs(t)
	ds := BuildExamples(l, 2, 0.2, 9)
	if len(ds.Train) == 0 || len(ds.Test) == 0 {
		t.Fatalf("empty split: train=%d test=%d", len(ds.Train), len(ds.Test))
	}
	pos, neg := 0, 0
	for _, e := range append(append([]Example{}, ds.Train...), ds.Test...) {
		if e.User < 0 || e.User >= len(l.Users) || e.Item < 0 || e.Item >= len(l.Items) ||
			e.Query < 0 || e.Query >= len(l.Queries) {
			t.Fatal("example index out of range")
		}
		if e.Label == 1 {
			pos++
		} else {
			neg++
		}
	}
	// negPerPos = 2 means roughly 2 negatives per positive.
	ratio := float64(neg) / float64(pos)
	if math.Abs(ratio-2) > 0.2 {
		t.Fatalf("neg/pos ratio = %v, want ~2", ratio)
	}
}

func TestSplitIsGroupedByUserQuery(t *testing.T) {
	l := tinyLogs(t)
	ds := BuildExamples(l, 1, 0.3, 11)
	trainPairs := map[[2]int]bool{}
	for _, e := range ds.Train {
		trainPairs[[2]int{e.User, e.Query}] = true
	}
	for _, e := range ds.Test {
		if trainPairs[[2]int{e.User, e.Query}] {
			t.Fatal("user-query pair appears in both splits")
		}
	}
}

func TestMovieLensConfig(t *testing.T) {
	cfg := MovieLensConfig(1)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("MovieLens preset invalid: %v", err)
	}
	// Tags (queries) must be far fewer than users and movies, per the
	// MovieLens structure.
	if cfg.Queries >= cfg.Users || cfg.Queries >= cfg.Items {
		t.Fatal("MovieLens preset should be tag-sparse")
	}
	l := MustGenerate(cfg)
	if len(l.Sessions) == 0 {
		t.Fatal("MovieLens world has no interactions")
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := TaobaoConfig(ScaleSmall, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MustGenerate(cfg)
	}
}
