package loggen

import "zoomer/internal/rng"

// Interaction is one live arrival from the synthetic feed: a user posing
// a query and clicking an item — the same three-edge pattern graphbuild
// lays down at build time (user—query, query—item, and a session edge
// from the previous click when there is one).
type Interaction struct {
	User  int
	Query int
	Item  int
	// PrevItem is the item clicked immediately before this one under the
	// same query event, or -1 for the first click (no session edge).
	PrevItem int
	// Topic is the ground-truth intent (not visible to models).
	Topic int
}

// Stream replays this world's interactions as a live arrival sequence.
// Sessions interleave the way concurrent users would produce them — a
// bounded window of open sessions, each advanced one click at a time in
// seeded random rotation — yet the order is a pure function of (world,
// seed), so two replays feed byte-identical append streams. That
// determinism is what lets ingest tests compare a crash-recovered shard
// against an uninterrupted control run record for record.
type Stream struct {
	l      *Logs
	r      *rng.RNG
	order  []int // seeded permutation of session indices
	next   int   // next unopened session in order
	open   []sessionCursor
	remain int
}

// sessionCursor walks one session click by click.
type sessionCursor struct {
	sess  int
	event int
	click int
}

// streamWindow is the number of sessions in flight at once: large enough
// that arrivals from different users interleave (the shape a live feed
// has), small enough that a session's own clicks stay loosely clustered
// in time.
const streamWindow = 8

// Stream returns a deterministic interaction iterator over this world.
// Iterators with the same seed yield identical sequences; different
// seeds yield different interleavings of the same interaction multiset.
func (l *Logs) Stream(seed uint64) *Stream {
	order := make([]int, len(l.Sessions))
	for i := range order {
		order[i] = i
	}
	r := rng.New(seed)
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	s := &Stream{l: l, r: r, order: order, remain: l.NumInteractions()}
	for len(s.open) < streamWindow && s.next < len(s.order) {
		s.open = append(s.open, sessionCursor{sess: s.order[s.next]})
		s.next++
	}
	return s
}

// Remaining reports how many interactions the stream has yet to yield.
func (s *Stream) Remaining() int { return s.remain }

// Next yields the next interaction, or ok=false when the world's
// sessions are exhausted.
func (s *Stream) Next() (iv Interaction, ok bool) {
	for len(s.open) > 0 {
		i := s.r.Intn(len(s.open))
		cur := &s.open[i]
		sess := &s.l.Sessions[cur.sess]
		if cur.event >= len(sess.Events) {
			// Session drained: replace it with the next unopened one (or
			// shrink the window near the end of the feed).
			if s.next < len(s.order) {
				s.open[i] = sessionCursor{sess: s.order[s.next]}
				s.next++
			} else {
				s.open[i] = s.open[len(s.open)-1]
				s.open = s.open[:len(s.open)-1]
			}
			continue
		}
		ev := &sess.Events[cur.event]
		iv = Interaction{
			User:     sess.User,
			Query:    ev.Query,
			Item:     ev.Clicks[cur.click].Item,
			PrevItem: -1,
			Topic:    ev.Topic,
		}
		if cur.click > 0 {
			iv.PrevItem = ev.Clicks[cur.click-1].Item
		}
		cur.click++
		if cur.click >= len(ev.Clicks) {
			cur.click = 0
			cur.event++
		}
		s.remain--
		return iv, true
	}
	return Interaction{}, false
}
