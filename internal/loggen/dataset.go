package loggen

import (
	"zoomer/internal/rng"
)

// MovieLensConfig returns the MovieLens-mode preset: users/tags/movies in
// the 25M dataset's proportions scaled down ~100x, with tags playing the
// Query role and movies the Item role. The paper keeps the top-5 relevant
// tags per movie; the generator's topical structure reproduces that
// movie-tag relevance concentration.
func MovieLensConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		Users:           1600,
		Queries:         300,  // tags
		Items:           2100, // movies
		Topics:          18,
		ContentDim:      16,
		SessionsPerUser: 4,
		QueriesPerSess:  2,
		ClicksPerQuery:  5, // ratings under a tag
		IntentDrift:     0.35,
		NoiseClick:      0.15,
		TopicsPerUser:   3,
		PopularityExp:   1.0,
	}
}

// Example is one labeled CTR training instance: did user u click item i
// under query q? Indices are world-local (user/query/item index spaces),
// not graph node ids; graphbuild owns that mapping.
type Example struct {
	User, Query, Item int
	Label             float32
}

// Dataset is a train/test split of examples.
type Dataset struct {
	Train, Test []Example
}

// BuildExamples extracts labeled examples from the logs: every observed
// click is a positive; negPerPos negatives are drawn per positive by
// corrupting the item uniformly (rejecting items actually clicked under
// the same user-query pair). testFrac of user-query groups go to the test
// split, grouped so a pair never straddles the split.
func BuildExamples(l *Logs, negPerPos int, testFrac float64, seed uint64) Dataset {
	r := rng.New(seed)
	type uq struct{ u, q int }
	clicked := make(map[uq]map[int]bool)
	for _, s := range l.Sessions {
		for _, ev := range s.Events {
			k := uq{s.User, ev.Query}
			m, ok := clicked[k]
			if !ok {
				m = make(map[int]bool)
				clicked[k] = m
			}
			for _, c := range ev.Clicks {
				m[c.Item] = true
			}
		}
	}

	var ds Dataset
	nItems := len(l.Items)
	for _, s := range l.Sessions {
		for _, ev := range s.Events {
			k := uq{s.User, ev.Query}
			isTest := splitHash(uint64(k.u), uint64(k.q), l.Config.Seed) < testFrac
			emit := func(e Example) {
				if isTest {
					ds.Test = append(ds.Test, e)
				} else {
					ds.Train = append(ds.Train, e)
				}
			}
			for _, c := range ev.Clicks {
				emit(Example{User: s.User, Query: ev.Query, Item: c.Item, Label: 1})
				for n := 0; n < negPerPos; n++ {
					item := r.Intn(nItems)
					for tries := 0; clicked[k][item] && tries < 8; tries++ {
						item = r.Intn(nItems)
					}
					emit(Example{User: s.User, Query: ev.Query, Item: item, Label: 0})
				}
			}
		}
	}
	r.Shuffle(len(ds.Train), func(i, j int) { ds.Train[i], ds.Train[j] = ds.Train[j], ds.Train[i] })
	r.Shuffle(len(ds.Test), func(i, j int) { ds.Test[i], ds.Test[j] = ds.Test[j], ds.Test[i] })
	return ds
}

// splitHash deterministically maps a user-query pair to [0,1) so the
// train/test split is stable across runs and independent of session order.
func splitHash(u, q, seed uint64) float64 {
	x := u*0x9e3779b97f4a7c15 ^ q*0xc2b2ae3d27d4eb4f ^ seed
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x>>11) / (1 << 53)
}
