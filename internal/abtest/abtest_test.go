package abtest

import (
	"math"
	"testing"

	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

func TestMetricsArithmetic(t *testing.T) {
	m := Metrics{Impressions: 1000, Clicks: 30, Revenue: 15}
	if math.Abs(m.CTR()-0.03) > 1e-12 {
		t.Fatalf("CTR = %v", m.CTR())
	}
	if math.Abs(m.PPC()-0.5) > 1e-12 {
		t.Fatalf("PPC = %v", m.PPC())
	}
	if math.Abs(m.RPM()-15) > 1e-12 {
		t.Fatalf("RPM = %v", m.RPM())
	}
	var zero Metrics
	if zero.CTR() != 0 || zero.PPC() != 0 || zero.RPM() != 0 {
		t.Fatal("zero metrics must not divide by zero")
	}
}

func TestTrafficFromLogs(t *testing.T) {
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 1))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	traffic := TrafficFromLogs(logs, res.Mapping, 50)
	if len(traffic) != 50 {
		t.Fatalf("traffic size %d", len(traffic))
	}
	g := res.Graph
	for _, req := range traffic {
		if g.Type(req.User) != graph.User || g.Type(req.Query) != graph.Query {
			t.Fatal("traffic node types wrong")
		}
	}
	all := TrafficFromLogs(logs, res.Mapping, 0)
	if len(all) <= 50 {
		t.Fatal("uncapped traffic should exceed capped")
	}
}

// oracleChannel retrieves items by true content relevance; noiseChannel
// retrieves uniformly at random. The A/B harness must show the oracle
// lifting CTR and RPM over noise — the directional property the paper's
// Table IV rests on.
type oracleChannel struct {
	g     *graph.Graph
	items []graph.NodeID
}

func (o *oracleChannel) Name() string { return "oracle" }
func (o *oracleChannel) Retrieve(u, q graph.NodeID, k int) []graph.NodeID {
	intent := tensor.Copy(o.g.Content(q))
	tensor.Axpy(0.5, o.g.Content(u), intent)
	type sc struct {
		id graph.NodeID
		s  float32
	}
	best := make([]sc, 0, k+1)
	for _, it := range o.items {
		s := tensor.Cosine(intent, o.g.Content(it))
		best = append(best, sc{it, s})
		for i := len(best) - 1; i > 0 && best[i].s > best[i-1].s; i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
		if len(best) > k {
			best = best[:k]
		}
	}
	out := make([]graph.NodeID, len(best))
	for i, b := range best {
		out[i] = b.id
	}
	return out
}

type noiseChannel struct {
	items []graph.NodeID
	r     *rng.RNG
}

func (n *noiseChannel) Name() string { return "noise" }
func (n *noiseChannel) Retrieve(u, q graph.NodeID, k int) []graph.NodeID {
	out := make([]graph.NodeID, k)
	for i := range out {
		out[i] = n.items[n.r.Intn(len(n.items))]
	}
	return out
}

func TestRunShowsRelevanceLift(t *testing.T) {
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 2))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	g := res.Graph
	items := g.NodesOfType(graph.Item)
	traffic := TrafficFromLogs(logs, res.Mapping, 150)

	control := &noiseChannel{items: items, r: rng.New(3)}
	treatment := &oracleChannel{g: g, items: items}
	out := Run(g, traffic, control, treatment, DefaultConfig())

	if out.Control.Impressions == 0 || out.Treatment.Impressions == 0 {
		t.Fatal("no impressions")
	}
	if out.CTRLift <= 0 {
		t.Fatalf("oracle channel shows no CTR lift: %+v", out)
	}
	if out.RPMLift <= 0 {
		t.Fatalf("oracle channel shows no RPM lift: %+v", out)
	}
}

// Identical channels must show near-zero lift (the null experiment).
func TestRunNullExperiment(t *testing.T) {
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 4))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	g := res.Graph
	items := g.NodesOfType(graph.Item)
	traffic := TrafficFromLogs(logs, res.Mapping, 300)

	a := &oracleChannel{g: g, items: items}
	out := Run(g, traffic, a, a, DefaultConfig())
	if math.Abs(out.CTRLift) > 8 {
		t.Fatalf("null experiment shows %.1f%% CTR lift", out.CTRLift)
	}
}

func TestModelChannel(t *testing.T) {
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 5))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	g := res.Graph
	items := g.NodesOfType(graph.Item)

	// An untrained model still exercises the full channel path.
	// (Training-quality comparisons live in the Table IV harness.)
	m := newTestModel(t, g, logs)
	ch := NewModelChannel("zoomer", m, items, 6)
	if ch.Name() != "zoomer" {
		t.Fatal("name")
	}
	out := ch.Retrieve(g.NodesOfType(graph.User)[0], g.NodesOfType(graph.Query)[0], 10)
	if len(out) == 0 || len(out) > 10 {
		t.Fatalf("retrieved %d items", len(out))
	}
	for _, it := range out {
		if g.Type(it) != graph.Item {
			t.Fatal("retrieved non-item")
		}
	}
}
