// Package abtest simulates the production A/B test of §VII-D: live
// traffic is split between a control retrieval channel (the paper's
// PinSage channel) and a treatment channel (Zoomer); a position-biased
// click model driven by ground-truth relevance generates clicks, and an
// ad-pricing model turns clicks into revenue. The reported metrics are
// the paper's: CTR, PPC and RPM, with treatment-over-control lifts.
//
// Absolute lifts are not comparable to the paper's (their traffic is
// real); what reproduces is the direction and ordering — a channel that
// retrieves more relevant items earns higher CTR and RPM under any
// reasonable click model.
package abtest

import (
	"math"

	"zoomer/internal/ann"
	"zoomer/internal/core"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// Channel retrieves a ranked item list for a request.
type Channel interface {
	Name() string
	Retrieve(u, q graph.NodeID, k int) []graph.NodeID
}

// ModelChannel serves retrieval from a trained model through an ANN
// index over its item embeddings.
type ModelChannel struct {
	name   string
	model  core.Model
	index  *ann.Index
	r      *rng.RNG
	nprobe int
}

// NewModelChannel indexes the model's item embeddings and returns a
// retrieval channel.
func NewModelChannel(name string, m core.Model, items []graph.NodeID, seed uint64) *ModelChannel {
	r := rng.New(seed)
	ids := make([]int64, len(items))
	vecs := make([]tensor.Vec, len(items))
	for i, it := range items {
		ids[i] = int64(it)
		vecs[i] = m.ItemEmbedding(it, r)
	}
	nlist := len(items) / 64
	if nlist < 4 {
		nlist = 4
	}
	ix := ann.Build(ids, vecs, ann.Config{NumLists: nlist, Iters: 6, Seed: seed + 1})
	return &ModelChannel{name: name, model: m, index: ix, r: r, nprobe: 4}
}

// Name implements Channel.
func (c *ModelChannel) Name() string { return c.name }

// Retrieve implements Channel.
func (c *ModelChannel) Retrieve(u, q graph.NodeID, k int) []graph.NodeID {
	uq := c.model.UserQueryEmbedding(u, q, c.r)
	res := c.index.Search(uq, k, c.nprobe)
	out := make([]graph.NodeID, len(res))
	for i, r := range res {
		out[i] = graph.NodeID(r.ID)
	}
	return out
}

// Request is one traffic event.
type Request struct {
	User, Query graph.NodeID
}

// TrafficFromLogs extracts (user, query) requests from session logs.
func TrafficFromLogs(l *loggen.Logs, m graphbuild.Mapping, max int) []Request {
	var out []Request
	for _, s := range l.Sessions {
		for _, ev := range s.Events {
			out = append(out, Request{User: m.UserNode(s.User), Query: m.QueryNode(ev.Query)})
			if max > 0 && len(out) >= max {
				return out
			}
		}
	}
	return out
}

// Metrics accumulates one channel's outcomes.
type Metrics struct {
	Impressions int
	Clicks      int
	Revenue     float64
}

// CTR is clicks per impression.
func (m Metrics) CTR() float64 {
	if m.Impressions == 0 {
		return 0
	}
	return float64(m.Clicks) / float64(m.Impressions)
}

// PPC is revenue per click (price per click).
func (m Metrics) PPC() float64 {
	if m.Clicks == 0 {
		return 0
	}
	return m.Revenue / float64(m.Clicks)
}

// RPM is revenue per mille impressions.
func (m Metrics) RPM() float64 {
	if m.Impressions == 0 {
		return 0
	}
	return m.Revenue / float64(m.Impressions) * 1000
}

// Config tunes the simulation.
type Config struct {
	ListSize  int // items shown per request
	Seed      uint64
	ClickBase float64 // relevance-to-click steepness
}

// DefaultConfig returns the harness settings.
func DefaultConfig() Config { return Config{ListSize: 10, Seed: 1, ClickBase: 6} }

// Result reports both channels and the paper's lift metrics.
type Result struct {
	Control, Treatment        Metrics
	CTRLift, PPCLift, RPMLift float64 // percent
}

// Arm couples a retrieval channel with the live serving configuration
// its model reads during the replay: a distinct graph view per arm
// (shard count, partitioning strategy, locality, or a remote cluster).
// A nil View replays the channel against whatever view its model
// already holds.
type Arm struct {
	Channel Channel
	View    core.GraphView
}

// Run replays traffic through both channels under the same click and
// pricing models. Relevance ground truth comes from the generator's
// latent content vectors: rel = cos(user⊕query intent, item content).
// Click probability is position-biased (1/log2(pos+2)) and sigmoidal in
// relevance; ad prices are deterministic per item (hash-based), so the
// two channels face identical economics. g is the ground-truth view
// scoring relevance (monolithic graph or engine — identical reads).
func Run(g core.GraphView, traffic []Request, control, treatment Channel, cfg Config) Result {
	return RunArms(g, traffic, Arm{Channel: control}, Arm{Channel: treatment}, cfg)
}

// RunArms is Run with per-arm live serving configs: before an arm
// replays, its view (when set) is bound into the channel's model, so
// control and treatment can serve from different engine topologies.
// Because every view is a bit-identical read surface, arms that differ
// only in topology produce identical metrics — pinned by this
// package's equivalence test.
func RunArms(g core.GraphView, traffic []Request, control, treatment Arm, cfg Config) Result {
	r := rng.New(cfg.Seed)
	price := func(item graph.NodeID) float64 {
		// Stable per-item price in [0.2, 1.2).
		x := uint64(item)*0x9e3779b97f4a7c15 + 0x1234
		x ^= x >> 33
		return 0.2 + float64(x%1000)/1000.0
	}
	relevance := func(u, q, item graph.NodeID) float64 {
		intent := tensor.Copy(g.Content(q)) // query carries the focal intent
		tensor.Axpy(0.5, g.Content(u), intent)
		return float64(tensor.Cosine(intent, g.Content(item)))
	}
	play := func(arm Arm, m *Metrics) {
		ch := arm.Channel
		if arm.View != nil {
			if mc, ok := ch.(*ModelChannel); ok {
				mc.BindView(arm.View)
			}
		}
		for _, req := range traffic {
			items := ch.Retrieve(req.User, req.Query, cfg.ListSize)
			for pos, item := range items {
				m.Impressions++
				rel := relevance(req.User, req.Query, item)
				posBias := 1 / math.Log2(float64(pos)+2)
				p := posBias / (1 + math.Exp(-cfg.ClickBase*(rel-0.5)))
				if r.Float64() < p {
					m.Clicks++
					m.Revenue += price(item)
				}
			}
		}
	}
	var res Result
	play(control, &res.Control)
	play(treatment, &res.Treatment)
	lift := func(a, b float64) float64 {
		if a == 0 {
			return 0
		}
		return (b - a) / a * 100
	}
	res.CTRLift = lift(res.Control.CTR(), res.Treatment.CTR())
	res.PPCLift = lift(res.Control.PPC(), res.Treatment.PPC())
	res.RPMLift = lift(res.Control.RPM(), res.Treatment.RPM())
	return res
}

// BindView rebinds the channel's model onto a different graph view
// (when the model supports it), switching the arm's live serving
// config without touching trained weights or the ANN index.
func (c *ModelChannel) BindView(v core.GraphView) {
	if b, ok := c.model.(core.ViewBinder); ok {
		b.BindView(v)
	}
}
