package abtest

import (
	"testing"

	"zoomer/internal/core"
	"zoomer/internal/graph"
	"zoomer/internal/loggen"
)

// newTestModel builds a small untrained Zoomer for channel plumbing tests.
func newTestModel(t *testing.T, g *graph.Graph, logs *loggen.Logs) core.Model {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.EmbedDim = 16
	cfg.OutDim = 16
	cfg.Hops = 1
	cfg.FanOut = 4
	return core.NewZoomer(g, logs.Vocab(), cfg, 7)
}
