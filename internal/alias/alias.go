// Package alias implements Walker's alias method for O(1) sampling from a
// discrete distribution. The paper's graph engine (§VI, "Distributed graph
// engine") uses an alias table over each adjacency list so that weighted
// neighbor sampling costs constant time independent of degree; this package
// is that component.
package alias

import (
	"fmt"

	"zoomer/internal/rng"
)

// Table is an immutable alias table over n outcomes. Construction is O(n);
// each Sample is O(1). The zero value is an empty table that cannot be
// sampled from.
type Table struct {
	prob  []float64
	alias []int32
}

// New builds an alias table from the given non-negative weights. Weights
// need not be normalized. It returns an error if weights is empty, if any
// weight is negative, or if all weights are zero.
func New(weights []float64) (*Table, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("alias: empty weight vector")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("alias: negative weight %v at index %d", w, i)
		}
		sum += w
	}
	if sum == 0 {
		return nil, fmt.Errorf("alias: all weights are zero")
	}

	t := &Table{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities: p_i * n.
	scaled := make([]float64, n)
	scale := float64(n) / sum
	for i, w := range weights {
		scaled[i] = w * scale
	}

	// Partition into small (<1) and large (>=1) stacks.
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}

	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]

		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Residuals are 1 up to float error.
	for _, l := range large {
		t.prob[l] = 1
		t.alias[l] = l
	}
	for _, s := range small {
		t.prob[s] = 1
		t.alias[s] = s
	}
	return t, nil
}

// MustNew is New but panics on error; for static tables known to be valid.
func MustNew(weights []float64) *Table {
	t, err := New(weights)
	if err != nil {
		panic(err)
	}
	return t
}

// N returns the number of outcomes.
func (t *Table) N() int { return len(t.prob) }

// Sample draws an outcome index in [0, N()) with probability proportional
// to its construction weight. It panics on an empty table.
func (t *Table) Sample(r *rng.RNG) int {
	n := len(t.prob)
	if n == 0 {
		panic("alias: sampling from empty table")
	}
	i := r.Intn(n)
	if r.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// SampleMany draws k outcomes with replacement into a new slice.
func (t *Table) SampleMany(r *rng.RNG, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = t.Sample(r)
	}
	return out
}
