// Package alias implements Walker's alias method for O(1) sampling from a
// discrete distribution. The paper's graph engine (§VI, "Distributed graph
// engine") uses an alias table over each adjacency list so that weighted
// neighbor sampling costs constant time independent of degree; this package
// is that component.
package alias

import (
	"fmt"

	"zoomer/internal/rng"
)

// Table is an immutable alias table over n outcomes. Construction is O(n);
// each Sample is O(1). The zero value is an empty table that cannot be
// sampled from.
type Table struct {
	prob  []float64
	alias []int32
}

// New builds an alias table from the given non-negative weights. Weights
// need not be normalized. It returns an error if weights is empty, if any
// weight is negative, or if all weights are zero.
func New(weights []float64) (*Table, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("alias: empty weight vector")
	}
	t := &Table{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	if err := BuildInto(t.prob, t.alias, weights, make([]int32, n)); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildInto constructs an alias table over weights directly into prob and
// aliasIdx, both of length len(weights), using stack (also length
// len(weights)) as scratch — no heap allocation. This is the kernel the
// graph engine uses to precompute one flat, CSR-aligned table for every
// adjacency list at startup. A slot i is sampled by drawing a uniform
// index and accepting it with probability prob[i], else taking
// aliasIdx[i] — exactly Table.Sample over the same arrays.
//
// It returns an error (leaving the output unspecified) if weights is
// empty, any weight is negative, or all weights are zero.
func BuildInto(prob []float64, aliasIdx []int32, weights []float64, stack []int32) error {
	n := len(weights)
	if n == 0 {
		return fmt.Errorf("alias: empty weight vector")
	}
	if len(prob) != n || len(aliasIdx) != n || len(stack) < n {
		return fmt.Errorf("alias: BuildInto buffer sizes %d/%d/%d for %d weights",
			len(prob), len(aliasIdx), len(stack), n)
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("alias: negative weight %v at index %d", w, i)
		}
		sum += w
	}
	if sum == 0 {
		return fmt.Errorf("alias: all weights are zero")
	}

	// Scaled probabilities p_i*n go straight into prob: the Vose loop
	// finalizes each "small" slot exactly when it pops it, so prob doubles
	// as the scaled-weight working array.
	scale := float64(n) / sum
	for i, w := range weights {
		prob[i] = w * scale
	}

	// Partition indices into the two stacks sharing one scratch array:
	// small grows from the front, large from the back.
	si, li := 0, n
	for i := n - 1; i >= 0; i-- {
		if prob[i] < 1 {
			stack[si] = int32(i)
			si++
		} else {
			li--
			stack[li] = int32(i)
		}
	}

	for si > 0 && li < n {
		si--
		s := stack[si]
		l := stack[li]
		li++

		aliasIdx[s] = l
		prob[l] -= 1 - prob[s]
		if prob[l] < 1 {
			stack[si] = l
			si++
		} else {
			li--
			stack[li] = l
		}
	}
	// Residuals are 1 up to float error.
	for ; li < n; li++ {
		prob[stack[li]] = 1
		aliasIdx[stack[li]] = stack[li]
	}
	for si > 0 {
		si--
		prob[stack[si]] = 1
		aliasIdx[stack[si]] = stack[si]
	}
	return nil
}

// MustBuildInto is BuildInto but panics on error; for inputs known to be
// valid (e.g. uniform fallback weights).
func MustBuildInto(prob []float64, aliasIdx []int32, weights []float64, stack []int32) {
	if err := BuildInto(prob, aliasIdx, weights, stack); err != nil {
		panic(err)
	}
}

// SampleFrom draws an outcome index in [0, len(prob)) from arrays built
// by BuildInto: the one authoritative implementation of the alias draw,
// shared by Table.Sample and every flat-table consumer. It panics on
// empty arrays (via Intn).
func SampleFrom(prob []float64, aliasIdx []int32, r *rng.RNG) int {
	i := r.Intn(len(prob))
	if r.Float64() < prob[i] {
		return i
	}
	return int(aliasIdx[i])
}

// MustNew is New but panics on error; for static tables known to be valid.
func MustNew(weights []float64) *Table {
	t, err := New(weights)
	if err != nil {
		panic(err)
	}
	return t
}

// N returns the number of outcomes.
func (t *Table) N() int { return len(t.prob) }

// Sample draws an outcome index in [0, N()) with probability proportional
// to its construction weight. It panics on an empty table.
func (t *Table) Sample(r *rng.RNG) int {
	if len(t.prob) == 0 {
		panic("alias: sampling from empty table")
	}
	return SampleFrom(t.prob, t.alias, r)
}

// SampleMany draws k outcomes with replacement into a new slice.
func (t *Table) SampleMany(r *rng.RNG, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = t.Sample(r)
	}
	return out
}
