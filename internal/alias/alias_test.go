package alias

import (
	"math"
	"testing"
	"testing/quick"

	"zoomer/internal/rng"
)

func TestErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := New([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := New([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad input")
		}
	}()
	MustNew(nil)
}

func TestSingleOutcome(t *testing.T) {
	tab := MustNew([]float64{3.5})
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if tab.Sample(r) != 0 {
			t.Fatal("single-outcome table returned nonzero index")
		}
	}
}

func TestZeroWeightNeverSampled(t *testing.T) {
	tab := MustNew([]float64{1, 0, 1})
	r := rng.New(2)
	for i := 0; i < 20000; i++ {
		if tab.Sample(r) == 1 {
			t.Fatal("zero-weight outcome was sampled")
		}
	}
}

// TestDistributionMatches verifies that empirical frequencies converge to
// the target distribution (chi-square-style tolerance).
func TestDistributionMatches(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 10}
	tab := MustNew(weights)
	r := rng.New(3)
	const n = 400000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[tab.Sample(r)]++
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		want := w / sum
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("outcome %d frequency %v, want %v", i, got, want)
		}
	}
}

// TestPropertyDistribution is a quick-check over random weight vectors:
// every sampled index is in range and positive-weight outcomes dominate.
func TestPropertyDistribution(t *testing.T) {
	r := rng.New(11)
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		weights := make([]float64, len(raw))
		var sum float64
		for i, b := range raw {
			weights[i] = float64(b)
			sum += weights[i]
		}
		if sum == 0 {
			return true
		}
		tab, err := New(weights)
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			idx := tab.Sample(r)
			if idx < 0 || idx >= len(weights) || weights[idx] == 0 {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSampleMany(t *testing.T) {
	tab := MustNew([]float64{1, 1})
	r := rng.New(5)
	out := tab.SampleMany(r, 64)
	if len(out) != 64 {
		t.Fatalf("SampleMany returned %d items", len(out))
	}
	for _, v := range out {
		if v != 0 && v != 1 {
			t.Fatalf("out-of-range sample %d", v)
		}
	}
}

// TestConstantTime pins the O(1) property loosely: sampling cost must not
// scale with table size (allowing generous noise).
func TestLargeTable(t *testing.T) {
	r := rng.New(7)
	weights := make([]float64, 100000)
	for i := range weights {
		weights[i] = r.Float64() + 0.01
	}
	tab := MustNew(weights)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[tab.Sample(r)] = true
	}
	if len(seen) < 900 {
		t.Fatalf("large uniform-ish table shows too few distinct samples: %d", len(seen))
	}
}

func BenchmarkSample1K(b *testing.B) { benchSample(b, 1_000) }
func BenchmarkSample1M(b *testing.B) { benchSample(b, 1_000_000) }

func benchSample(b *testing.B, n int) {
	r := rng.New(1)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = r.Float64() + 0.01
	}
	tab := MustNew(weights)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = tab.Sample(r)
	}
	_ = sink
}

// An alias table is correct iff the marginal probability each outcome
// receives — prob[i]/n directly, plus (1-prob[j])/n from every slot j
// aliased to it — equals w_i/Σw. Checking that reconstruction against
// the raw weights validates BuildInto against the algebra rather than
// against New (which delegates to it and would make the test circular).
func TestBuildIntoReconstructsWeights(t *testing.T) {
	r := rng.New(21)
	for _, n := range []int{1, 2, 7, 64, 1000} {
		weights := make([]float64, n)
		var sum float64
		for i := range weights {
			weights[i] = r.Float64() * float64(1+i%5)
		}
		weights[r.Intn(n)] = 0 // exercise a zero slot among non-zeros
		if n == 1 {
			weights[0] = 1
		}
		for _, w := range weights {
			sum += w
		}
		prob := make([]float64, n)
		aliasIx := make([]int32, n)
		stack := make([]int32, n)
		if err := BuildInto(prob, aliasIx, weights, stack); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		marginal := make([]float64, n)
		for i := 0; i < n; i++ {
			if prob[i] < 0 || prob[i] > 1+1e-9 {
				t.Fatalf("n=%d slot %d: prob %v outside [0,1]", n, i, prob[i])
			}
			marginal[i] += prob[i] / float64(n)
			marginal[aliasIx[i]] += (1 - prob[i]) / float64(n)
		}
		for i := 0; i < n; i++ {
			want := weights[i] / sum
			if diff := marginal[i] - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("n=%d slot %d: marginal %v, want %v", n, i, marginal[i], want)
			}
		}
	}
}

func TestBuildIntoRejectsBadInput(t *testing.T) {
	buf := func(n int) ([]float64, []int32, []int32) {
		return make([]float64, n), make([]int32, n), make([]int32, n)
	}
	p, a, s := buf(0)
	if err := BuildInto(p, a, nil, s); err == nil {
		t.Fatal("empty weights accepted")
	}
	p, a, s = buf(2)
	if err := BuildInto(p, a, []float64{1, -1}, s); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := BuildInto(p, a, []float64{0, 0}, s); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if err := BuildInto(p[:1], a, []float64{1, 2}, s); err == nil {
		t.Fatal("short prob buffer accepted")
	}
}

// The empirical distribution of BuildInto-backed sampling must follow the
// weights (the engine samples straight off these arrays).
func TestBuildIntoDistribution(t *testing.T) {
	weights := []float64{1, 3, 6}
	n := len(weights)
	prob := make([]float64, n)
	aliasIx := make([]int32, n)
	if err := BuildInto(prob, aliasIx, weights, make([]int32, n)); err != nil {
		t.Fatal(err)
	}
	r := rng.New(22)
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[SampleFrom(prob, aliasIx, r)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / draws
		if got < want-0.02 || got > want+0.02 {
			t.Fatalf("slot %d: frequency %.3f, want %.3f", i, got, want)
		}
	}
}
