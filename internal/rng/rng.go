// Package rng provides a deterministic, splittable pseudo-random number
// generator and the skewed-distribution samplers used throughout the
// Zoomer reproduction (power-law popularity, Zipf ranks, Gaussian noise).
//
// The library deliberately avoids math/rand so that every experiment is
// reproducible bit-for-bit from a seed, independent of the Go release and
// of global generator state. The core generator is xoshiro256**, seeded
// through splitmix64 as its authors recommend.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// with New. RNG is not safe for concurrent use; use Split to derive
// independent streams for concurrent goroutines.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the seed and returns the next splitmix64 output.
// It is used both for seeding xoshiro and for Split.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Reseed re-initializes r in place from seed, exactly as New(seed) would,
// without allocating. The engine's scatter-gather batch sampler uses it to
// derive one deterministic sub-stream per batch entry from a reused
// generator, so batch results do not depend on per-shard visit order.
func (r *RNG) Reseed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// State snapshots the generator's internal state. Together with SetState
// it lets the RPC graph backend transport a caller's stream to a remote
// shard: the state travels in the request, the draws happen shard-side,
// and the final state travels back — so a remote sample consumes the
// caller's stream exactly as an in-process one would.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state captured by State.
func (r *RNG) SetState(s [4]uint64) { r.s = s }

// Split returns a new generator whose stream is statistically independent
// of r's. It perturbs a fresh splitmix64 chain with r's next output, so
// repeated Split calls yield distinct streams.
func (r *RNG) Split() *RNG {
	seed := r.Uint64()
	return New(seed ^ 0xd1b54a32d192ed03)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, as in sort.Slice conventions.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method. It is a little slower than a ziggurat but has no tables and is
// plenty fast for workload generation.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Zipf samples ranks from a Zipf distribution over [0, n) with exponent s
// (s > 0). It precomputes the CDF once, so construction is O(n) and each
// Sample is O(log n). Graph workloads use n up to a few million, for which
// the table is small relative to the graph itself.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over ranks [0, n) with exponent s.
// It panics if n <= 0 or s <= 0.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("rng: NewZipf requires n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1.0 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1.0
	return &Zipf{cdf: cdf, rng: r}
}

// N returns the support size of the sampler.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, N()) with Zipfian probabilities; rank 0 is the
// most popular.
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
