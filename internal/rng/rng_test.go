package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d/100 identical", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(13)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed elements: sum %d -> %d", sum, got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(21)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(23)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestZipfRankOrdering(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 100, 1.1)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Sample()]++
	}
	// Rank 0 must dominate rank 10, which must dominate rank 90.
	if !(counts[0] > counts[10] && counts[10] > counts[90]) {
		t.Fatalf("Zipf ordering violated: c0=%d c10=%d c90=%d", counts[0], counts[10], counts[90])
	}
	// Head mass check: with s=1.1 the top 10 ranks should hold a large share.
	head := 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	if head < 40000 {
		t.Fatalf("Zipf head mass too small: %d/100000", head)
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 17, 0.8)
	if z.N() != 17 {
		t.Fatalf("N = %d, want 17", z.N())
	}
	for i := 0; i < 10000; i++ {
		v := z.Sample()
		if v < 0 || v >= 17 {
			t.Fatalf("Zipf sample out of range: %d", v)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkZipfSample(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1_000_000, 1.05)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = z.Sample()
	}
	_ = sink
}

// State/SetState must round-trip the stream exactly: a generator restored
// from a snapshot replays the identical tail, and a second generator
// seeded with a transported state continues the original stream — the
// contract the RPC shard backend relies on to keep remote draws
// bit-identical to local ones.
func TestStateRoundTrip(t *testing.T) {
	r := New(42)
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	st := r.State()
	want := make([]uint64, 32)
	for i := range want {
		want[i] = r.Uint64()
	}

	// Replay on the same generator.
	r.SetState(st)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("replay diverges at %d: %d vs %d", i, got, w)
		}
	}

	// Continue on a different generator, as a remote shard would.
	other := New(7)
	other.SetState(st)
	for i, w := range want {
		if got := other.Uint64(); got != w {
			t.Fatalf("transported stream diverges at %d: %d vs %d", i, got, w)
		}
	}
	// The remote side hands the advanced state back; both generators are
	// now at the same point of the same stream.
	r.SetState(other.State())
	if a, b := r.Uint64(), other.Uint64(); a != b {
		t.Fatalf("returned state diverges: %d vs %d", a, b)
	}
}
