package core

import (
	"sort"
	"time"

	"zoomer/internal/ad"
	"zoomer/internal/eval"
	"zoomer/internal/graph"
	"zoomer/internal/nn"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// TrainConfig drives the training loop. The defaults mirror §VII-A:
// focal cross-entropy with weight 2, Adam, batch training over sampled
// subgraphs.
type TrainConfig struct {
	BatchSize  int
	Epochs     int
	LR         float32
	FocalGamma float64 // < 0 selects plain BCE
	Seed       uint64

	// MaxSteps bounds total steps across epochs (0 = unbounded).
	MaxSteps int
	// TargetAUC, when > 0, stops training once a periodic probe on the
	// test set reaches it — the protocol of the Fig. 10/12 efficiency
	// experiments ("achieving AUC equals 0.6 as a goal").
	TargetAUC  float64
	EvalEvery  int // steps between probes (default 50)
	EvalSample int // probe size (default 512)

	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)

	// OnStep, when set, receives every optimizer step's loss — the
	// training trace the cross-topology equivalence suite pins
	// bit-for-bit across graph/engine/remote views.
	OnStep func(step int, loss float64)
}

// DefaultTrainConfig returns the settings shared by the offline
// experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		BatchSize:  32,
		Epochs:     5,
		LR:         0.01,
		FocalGamma: 2,
		Seed:       1,
		EvalEvery:  50,
		EvalSample: 512,
	}
}

// TrainResult reports what the loop did.
type TrainResult struct {
	Steps         int
	FinalLoss     float64
	Duration      time.Duration
	TestAUC       float64
	ReachedTarget bool
	// EpochLosses holds the mean minibatch loss of each completed epoch.
	EpochLosses []float64
}

// Train runs minibatch training of m on train, evaluating on test at the
// end (and periodically when TargetAUC is set). It returns the final test
// AUC and wall-clock training duration.
func Train(m Model, train, test []Instance, cfg TrainConfig) TrainResult {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 50
	}
	if cfg.EvalSample <= 0 {
		cfg.EvalSample = 512
	}
	r := rng.New(cfg.Seed)
	sampleRNG := r.Split()
	probeRNG := r.Split()

	var res TrainResult
	start := time.Now()
	data := append([]Instance(nil), train...)

	opt := newModelOptimizer(m, cfg.LR)

loop:
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochLoss float64
		var epochSteps int
		r.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
		for lo := 0; lo+1 < len(data) || lo == 0 && len(data) > 0; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(data) {
				hi = len(data)
			}
			if lo >= hi {
				break
			}
			batch := data[lo:hi]
			t := ad.NewTape()
			logits := m.Logits(t, batch, sampleRNG)
			targets := make([]float32, len(batch))
			for i, ex := range batch {
				targets[i] = ex.Label
			}
			var loss *ad.Node
			if cfg.FocalGamma >= 0 {
				loss = t.FocalBCEWithLogits(logits, targets, cfg.FocalGamma)
			} else {
				loss = t.BCEWithLogits(logits, targets)
			}
			t.Backward(loss)
			opt.step()
			res.Steps++
			res.FinalLoss = float64(loss.Scalar())
			epochLoss += res.FinalLoss
			epochSteps++
			if cfg.OnStep != nil {
				cfg.OnStep(res.Steps, res.FinalLoss)
			}

			if cfg.Logf != nil && res.Steps%100 == 0 {
				cfg.Logf("step %d loss %.4f", res.Steps, res.FinalLoss)
			}
			if cfg.TargetAUC > 0 && res.Steps%cfg.EvalEvery == 0 {
				probe := test
				if len(probe) > cfg.EvalSample {
					probe = probe[:cfg.EvalSample]
				}
				auc := EvalAUC(m, probe, cfg.BatchSize, probeRNG)
				if cfg.Logf != nil {
					cfg.Logf("step %d probe AUC %.4f", res.Steps, auc)
				}
				if auc >= cfg.TargetAUC {
					res.ReachedTarget = true
					break loop
				}
			}
			if cfg.MaxSteps > 0 && res.Steps >= cfg.MaxSteps {
				if epochSteps > 0 {
					res.EpochLosses = append(res.EpochLosses, epochLoss/float64(epochSteps))
				}
				break loop
			}
		}
		if epochSteps > 0 {
			res.EpochLosses = append(res.EpochLosses, epochLoss/float64(epochSteps))
		}
	}
	res.Duration = time.Since(start)
	res.TestAUC = EvalAUC(m, test, cfg.BatchSize, probeRNG)
	return res
}

// modelOptimizer bundles the dense Adam with sparse table updates, the
// split the paper's PS architecture makes between dense parameters and
// embedding rows.
type modelOptimizer struct {
	m     Model
	dense *nn.Adam
	lr    float32
}

func newModelOptimizer(m Model, lr float32) *modelOptimizer {
	return &modelOptimizer{m: m, dense: nn.NewAdam(lr), lr: lr}
}

func (o *modelOptimizer) step() {
	o.dense.Step(o.m.DenseParams()...)
	for _, tab := range o.m.Tables() {
		tab.StepAdam(o.lr, 0.9, 0.999, 1e-8)
	}
}

// EvalAUC scores instances with the model (forward only) and returns the
// AUC against their labels.
func EvalAUC(m Model, instances []Instance, batchSize int, r *rng.RNG) float64 {
	if len(instances) == 0 {
		return 0.5
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	scores := make([]float64, 0, len(instances))
	labels := make([]bool, 0, len(instances))
	for lo := 0; lo < len(instances); lo += batchSize {
		hi := lo + batchSize
		if hi > len(instances) {
			hi = len(instances)
		}
		t := ad.NewTape()
		logits := m.Logits(t, instances[lo:hi], r)
		for i, ex := range instances[lo:hi] {
			scores = append(scores, float64(logits.Val.Data[i]))
			labels = append(labels, ex.Label > 0.5)
		}
	}
	return eval.AUC(scores, labels)
}

// HitRateAtKs evaluates retrieval hit-rate: for up to maxTests positive
// instances, the model's user-query embedding ranks all candidate items
// by cosine similarity; hit-rate@k is the fraction whose clicked item
// appears in the top k.
func HitRateAtKs(m Model, positives []Instance, items []graph.NodeID, ks []int, maxTests int, seed uint64) map[int]float64 {
	r := rng.New(seed)
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	// Item embeddings once.
	embs := make([]tensor.Vec, len(items))
	pos := make(map[graph.NodeID]int, len(items))
	for i, it := range items {
		embs[i] = m.ItemEmbedding(it, r)
		pos[it] = i
	}
	tests := positives
	if maxTests > 0 && len(tests) > maxTests {
		tests = tests[:maxTests]
	}
	retrieved := make([][]int, 0, len(tests))
	clicked := make([]int, 0, len(tests))
	for _, ex := range tests {
		if ex.Label <= 0.5 {
			continue
		}
		uq := m.UserQueryEmbedding(ex.User, ex.Query, r)
		type scored struct {
			idx int
			s   float32
		}
		ss := make([]scored, len(embs))
		for i, e := range embs {
			ss[i] = scored{i, tensor.Cosine(uq, e)}
		}
		sort.Slice(ss, func(a, b int) bool { return ss[a].s > ss[b].s })
		lim := maxK
		if lim > len(ss) {
			lim = len(ss)
		}
		top := make([]int, lim)
		for i := 0; i < lim; i++ {
			top[i] = ss[i].idx
		}
		retrieved = append(retrieved, top)
		clicked = append(clicked, pos[ex.Item])
	}
	out := make(map[int]float64, len(ks))
	for _, k := range ks {
		out[k] = eval.HitRateAtK(retrieved, clicked, k)
	}
	return out
}
