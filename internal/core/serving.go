package core

import (
	"zoomer/internal/graph"
	"zoomer/internal/tensor"
)

// ServingLayer is one dense layer exported for the tape-free online
// inference path (§VII-E): y = relu?(x·W + b).
type ServingLayer struct {
	W    *tensor.Matrix // in x out
	B    tensor.Vec
	ReLU bool
}

// Apply computes the layer output for a single row vector.
func (l ServingLayer) Apply(x tensor.Vec) tensor.Vec {
	out := tensor.NewVec(l.W.Cols)
	l.ApplyInto(x, out)
	return out
}

// ApplyInto computes the layer output into out (length l.W.Cols), which
// must not alias x. It performs no allocation — the serving hot path.
func (l ServingLayer) ApplyInto(x, out tensor.Vec) {
	tensor.MatVecT(l.W, x, out)
	tensor.Axpy(1, l.B, out)
	if l.ReLU {
		for i, v := range out {
			if v < 0 {
				out[i] = 0
			}
		}
	}
}

// ApplyMLP chains exported layers.
func ApplyMLP(layers []ServingLayer, x tensor.Vec) tensor.Vec {
	for _, l := range layers {
		x = l.Apply(x)
	}
	return x
}

// MaxLayerWidth returns the widest output dimension across the given
// layers; sizing a ping/pong buffer pair to it lets ApplyMLPInto run any
// of the exported towers without allocating.
func MaxLayerWidth(layerSets ...[]ServingLayer) int {
	w := 0
	for _, layers := range layerSets {
		for _, l := range layers {
			if l.W.Cols > w {
				w = l.W.Cols
			}
		}
	}
	return w
}

// ApplyMLPInto chains exported layers through the caller's ping/pong
// buffers (each with capacity >= MaxLayerWidth of the chain) and returns
// a slice of one of them — zero allocations. x must alias neither buffer.
func ApplyMLPInto(layers []ServingLayer, x, ping, pong tensor.Vec) tensor.Vec {
	cur := x
	for i, l := range layers {
		buf := ping
		if i%2 == 1 {
			buf = pong
		}
		out := buf[:l.W.Cols]
		l.ApplyInto(cur, out)
		cur = out
	}
	return cur
}

// ServingWeights is the frozen model state the online module needs. Per
// §VII-E the deployment trims the model to edge-level attention only, so
// node base embeddings become focal-independent and can be precomputed:
// Base[id] is the mean of node id's feature latent vectors.
type ServingWeights struct {
	Dim        int
	LogitScale float32

	Base []tensor.Vec // per graph node

	AttnUser, AttnQuery tensor.Vec // edge-attention vectors (3d)

	MapUser, MapQuery ServingLayer // focal space mappings
	TowerUQ           []ServingLayer
	TowerItem         []ServingLayer
}

func exportLinear(w *tensor.Matrix, b tensor.Vec, relu bool) ServingLayer {
	return ServingLayer{W: w.Clone(), B: tensor.Copy(b), ReLU: relu}
}

// ExportServing freezes the trained model for online serving.
func (z *Zoomer) ExportServing() *ServingWeights {
	d := z.cfg.EmbedDim
	sw := &ServingWeights{
		Dim:        d,
		LogitScale: z.cfg.LogitScale,
		AttnUser:   tensor.Copy(z.attnUser.Val.Data),
		AttnQuery:  tensor.Copy(z.attnQuery.Val.Data),
		MapUser:    exportLinear(z.mapUser.W.Val, z.mapUser.B.Val.Data, false),
		MapQuery:   exportLinear(z.mapQuery.W.Val, z.mapQuery.B.Val.Data, false),
	}
	for i, l := range z.towerUQ.Layers {
		sw.TowerUQ = append(sw.TowerUQ, exportLinear(l.W.Val, l.B.Val.Data, i+1 < len(z.towerUQ.Layers)))
	}
	for i, l := range z.towerItem.Layers {
		sw.TowerItem = append(sw.TowerItem, exportLinear(l.W.Val, l.B.Val.Data, i+1 < len(z.towerItem.Layers)))
	}

	sw.Base = make([]tensor.Vec, z.g.NumNodes())
	for id := 0; id < z.g.NumNodes(); id++ {
		sw.Base[id] = z.baseEmbedding(graph.NodeID(id))
	}
	return sw
}

// baseEmbedding computes the mean of a node's feature latent vectors
// directly from the tables (no tape) — the serving-time static node
// embedding.
func (z *Zoomer) baseEmbedding(id graph.NodeID) tensor.Vec {
	fe := z.fe
	feats := z.g.Features(id)
	out := tensor.NewVec(fe.Dim)
	switch z.g.Type(id) {
	case graph.User:
		tensor.Axpy(1, fe.UserID.Row(feats[0]), out)
		tensor.Axpy(1, fe.Gender.Row(feats[1]), out)
		tensor.Axpy(1, fe.Member.Row(feats[2]), out)
		tensor.Scale(1.0/UserSlots, out)
	case graph.Query:
		tensor.Axpy(1, fe.Category.Row(feats[0]), out)
		terms := feats[1:]
		tv := tensor.NewVec(fe.Dim)
		for _, tid := range terms {
			tensor.Axpy(1, fe.Term.Row(tid), tv)
		}
		tensor.Axpy(1.0/float32(len(terms)), tv, out)
		tensor.Scale(1.0/QuerySlots, out)
	case graph.Item:
		tensor.Axpy(1, fe.ItemID.Row(feats[0]), out)
		tensor.Axpy(1, fe.Category.Row(feats[1]), out)
		tensor.Axpy(1, fe.Brand.Row(feats[2]), out)
		tensor.Axpy(1, fe.Shop.Row(feats[3]), out)
		terms := feats[4:]
		tv := tensor.NewVec(fe.Dim)
		for _, tid := range terms {
			tensor.Axpy(1, fe.Term.Row(tid), tv)
		}
		tensor.Axpy(1.0/float32(len(terms)), tv, out)
		tensor.Scale(1.0/ItemSlots, out)
	}
	return out
}
