package core

import (
	"zoomer/internal/ad"
	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/nn"
	"zoomer/internal/rng"
	"zoomer/internal/sampling"
	"zoomer/internal/tensor"
)

// GraphView is the read surface every model trains and serves against:
// the sampling view (neighbors + content) plus the feature/type
// accessors the feature embedder needs. Both *graph.Graph and the
// engine-backed EngineView satisfy it, so the same model runs unchanged
// over the monolithic graph, a local sharded engine, or a remote
// cluster dialed over RPC.
type GraphView interface {
	sampling.GraphView
	// Features returns the node's categorical feature ids (Table I layout).
	Features(id graph.NodeID) []int32
	// Type returns the node's type.
	Type(id graph.NodeID) graph.NodeType
}

// ViewBinder is implemented by models whose graph view can be swapped
// after construction — the same trained weights then serve against a
// different topology (e.g. per-arm engine configs in an A/B test).
type ViewBinder interface {
	BindView(GraphView)
}

// EngineView adapts an engine (local sharded or remote cluster) into a
// GraphView. The engine serves neighbors, content and features; node
// types are derived arithmetically from the graphbuild id layout, since
// partition shards carry no type column.
type EngineView struct {
	*engine.Engine
	M graphbuild.Mapping
}

// Type implements GraphView via the mapping's id-range arithmetic.
func (v EngineView) Type(id graph.NodeID) graph.NodeType { return v.M.Type(id) }

// NodesOfType enumerates node ids of type t (id order), mirroring
// graph.Graph's accessor for experiment code that runs over engines.
func (v EngineView) NodesOfType(t graph.NodeType) []graph.NodeID { return v.M.NodesOfType(t) }

// Instance is one CTR example in graph-node space.
type Instance struct {
	User, Query, Item graph.NodeID
	Label             float32
}

// InstancesFromExamples converts world-local examples to graph instances.
func InstancesFromExamples(examples []loggen.Example, m graphbuild.Mapping) []Instance {
	out := make([]Instance, len(examples))
	for i, e := range examples {
		out[i] = Instance{
			User:  m.UserNode(e.User),
			Query: m.QueryNode(e.Query),
			Item:  m.ItemNode(e.Item),
			Label: e.Label,
		}
	}
	return out
}

// Model is the contract shared by Zoomer and every baseline: batched logit
// computation for training, parameter/table enumeration for optimizers,
// and embedding export for retrieval (hit-rate and ANN serving).
type Model interface {
	// Name identifies the model in experiment output.
	Name() string
	// Logits returns an n x 1 node of match logits for the batch. The RNG
	// drives any sampling inside the forward pass.
	Logits(t *ad.Tape, batch []Instance, r *rng.RNG) *ad.Node
	// DenseParams returns the dense trainable parameters.
	DenseParams() []*nn.Param
	// Tables returns the sparse embedding tables.
	Tables() []*nn.EmbeddingTable
	// UserQueryEmbedding returns the request-side tower output for (u, q).
	UserQueryEmbedding(u, q graph.NodeID, r *rng.RNG) tensor.Vec
	// ItemEmbedding returns the item-side tower output.
	ItemEmbedding(item graph.NodeID, r *rng.RNG) tensor.Vec
}
