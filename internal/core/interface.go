package core

import (
	"zoomer/internal/ad"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/nn"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// Instance is one CTR example in graph-node space.
type Instance struct {
	User, Query, Item graph.NodeID
	Label             float32
}

// InstancesFromExamples converts world-local examples to graph instances.
func InstancesFromExamples(examples []loggen.Example, m graphbuild.Mapping) []Instance {
	out := make([]Instance, len(examples))
	for i, e := range examples {
		out[i] = Instance{
			User:  m.UserNode(e.User),
			Query: m.QueryNode(e.Query),
			Item:  m.ItemNode(e.Item),
			Label: e.Label,
		}
	}
	return out
}

// Model is the contract shared by Zoomer and every baseline: batched logit
// computation for training, parameter/table enumeration for optimizers,
// and embedding export for retrieval (hit-rate and ANN serving).
type Model interface {
	// Name identifies the model in experiment output.
	Name() string
	// Logits returns an n x 1 node of match logits for the batch. The RNG
	// drives any sampling inside the forward pass.
	Logits(t *ad.Tape, batch []Instance, r *rng.RNG) *ad.Node
	// DenseParams returns the dense trainable parameters.
	DenseParams() []*nn.Param
	// Tables returns the sparse embedding tables.
	Tables() []*nn.EmbeddingTable
	// UserQueryEmbedding returns the request-side tower output for (u, q).
	UserQueryEmbedding(u, q graph.NodeID, r *rng.RNG) tensor.Vec
	// ItemEmbedding returns the item-side tower output.
	ItemEmbedding(item graph.NodeID, r *rng.RNG) tensor.Vec
}
