package core

import (
	"math"
	"testing"

	"zoomer/internal/ad"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/rng"
)

// tinyWorld builds a small world + graph + instances shared by the tests.
type tinyWorld struct {
	logs  *loggen.Logs
	res   *graphbuild.Result
	train []Instance
	test  []Instance
}

func buildTinyWorld(t testing.TB, seed uint64) *tinyWorld {
	t.Helper()
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, seed))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	ds := loggen.BuildExamples(logs, 1, 0.25, seed+1)
	return &tinyWorld{
		logs:  logs,
		res:   res,
		train: InstancesFromExamples(ds.Train, res.Mapping),
		test:  InstancesFromExamples(ds.Test, res.Mapping),
	}
}

func tinyModelConfig() Config {
	cfg := DefaultConfig()
	cfg.EmbedDim = 16
	cfg.OutDim = 16
	cfg.Hops = 1
	cfg.FanOut = 4
	return cfg
}

func TestZoomerLogitsShape(t *testing.T) {
	w := buildTinyWorld(t, 1)
	z := NewZoomer(w.res.Graph, w.logs.Vocab(), tinyModelConfig(), 7)
	r := rng.New(2)
	tp := ad.NewTape()
	batch := w.train[:5]
	logits := z.Logits(tp, batch, r)
	if logits.Rows() != 5 || logits.Cols() != 1 {
		t.Fatalf("logits shape %dx%d", logits.Rows(), logits.Cols())
	}
	for _, v := range logits.Val.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite logit %v", v)
		}
	}
}

func TestZoomerBackwardProducesGrads(t *testing.T) {
	w := buildTinyWorld(t, 2)
	z := NewZoomer(w.res.Graph, w.logs.Vocab(), tinyModelConfig(), 8)
	r := rng.New(3)
	tp := ad.NewTape()
	batch := w.train[:8]
	logits := z.Logits(tp, batch, r)
	targets := make([]float32, len(batch))
	for i, ex := range batch {
		targets[i] = ex.Label
	}
	loss := tp.FocalBCEWithLogits(logits, targets, 2)
	tp.Backward(loss)

	// Some dense parameter must receive nonzero gradient.
	anyDense := false
	for _, p := range z.DenseParams() {
		for _, g := range p.Grad.Data {
			if g != 0 {
				anyDense = true
			}
		}
	}
	if !anyDense {
		t.Fatal("no dense gradients after backward")
	}
	// Embedding tables must have touched rows.
	anySparse := false
	for _, tab := range z.Tables() {
		if tab.TouchedRows() > 0 {
			anySparse = true
		}
	}
	if !anySparse {
		t.Fatal("no sparse gradients after backward")
	}
}

func TestAblationNames(t *testing.T) {
	w := buildTinyWorld(t, 3)
	v := w.logs.Vocab()
	mk := func(fp, ea, sa bool) string {
		cfg := tinyModelConfig()
		cfg.UseFeatureProj, cfg.UseEdgeAttn, cfg.UseSemanticAttn = fp, ea, sa
		return NewZoomer(w.res.Graph, v, cfg, 1).Name()
	}
	if mk(true, true, true) != "zoomer" {
		t.Fatal("full model name")
	}
	if mk(true, true, false) != "zoomer-fe" {
		t.Fatal("-FE name")
	}
	if mk(true, false, true) != "zoomer-fs" {
		t.Fatal("-FS name")
	}
	if mk(false, true, true) != "zoomer-es" {
		t.Fatal("-ES name")
	}
	if mk(false, false, false) != "gcn" {
		t.Fatal("gcn name")
	}
}

func TestAblationVariantsRun(t *testing.T) {
	w := buildTinyWorld(t, 4)
	v := w.logs.Vocab()
	r := rng.New(5)
	for _, flags := range [][3]bool{
		{true, true, true}, {true, true, false}, {true, false, true},
		{false, true, true}, {false, false, false},
	} {
		cfg := tinyModelConfig()
		cfg.UseFeatureProj, cfg.UseEdgeAttn, cfg.UseSemanticAttn = flags[0], flags[1], flags[2]
		z := NewZoomer(w.res.Graph, v, cfg, 9)
		tp := ad.NewTape()
		logits := z.Logits(tp, w.train[:4], r)
		if logits.Rows() != 4 {
			t.Fatalf("variant %v wrong shape", flags)
		}
		targets := []float32{1, 0, 1, 0}
		tp.Backward(tp.BCEWithLogits(logits, targets))
	}
}

// End-to-end: training must beat random scoring on held-out data. This is
// the core learning sanity check for the whole stack (sampling →
// attention → towers → loss → sparse/dense updates).
func TestZoomerLearns(t *testing.T) {
	w := buildTinyWorld(t, 5)
	z := NewZoomer(w.res.Graph, w.logs.Vocab(), tinyModelConfig(), 10)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	cfg.BatchSize = 16
	cfg.LR = 0.02
	cfg.MaxSteps = 120
	res := Train(z, w.train, w.test, cfg)
	if res.Steps == 0 {
		t.Fatal("no steps taken")
	}
	if res.TestAUC < 0.58 {
		t.Fatalf("test AUC %.3f; model failed to learn", res.TestAUC)
	}
}

func TestTrainTargetAUCStopsEarly(t *testing.T) {
	w := buildTinyWorld(t, 6)
	z := NewZoomer(w.res.Graph, w.logs.Vocab(), tinyModelConfig(), 11)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 50
	cfg.BatchSize = 16
	cfg.LR = 0.02
	cfg.TargetAUC = 0.55
	cfg.EvalEvery = 20
	cfg.EvalSample = 200
	cfg.MaxSteps = 400
	res := Train(z, w.train, w.test, cfg)
	if !res.ReachedTarget && res.Steps >= 400 {
		t.Logf("target not reached within cap (AUC %.3f) — acceptable but unusual", res.TestAUC)
	}
	if res.ReachedTarget && res.Steps == 0 {
		t.Fatal("inconsistent early stop")
	}
}

func TestEmbeddingExports(t *testing.T) {
	w := buildTinyWorld(t, 7)
	z := NewZoomer(w.res.Graph, w.logs.Vocab(), tinyModelConfig(), 12)
	r := rng.New(6)
	ex := w.train[0]
	uq := z.UserQueryEmbedding(ex.User, ex.Query, r)
	it := z.ItemEmbedding(ex.Item, r)
	if len(uq) != 16 || len(it) != 16 {
		t.Fatalf("embedding dims %d/%d, want 16", len(uq), len(it))
	}
	// Embeddings must differ across different items.
	other := z.ItemEmbedding(w.train[1].Item, r)
	same := true
	for i := range it {
		if it[i] != other[i] {
			same = false
			break
		}
	}
	if same && w.train[0].Item != w.train[1].Item {
		t.Fatal("distinct items share an embedding")
	}
}

// The Fig. 2 property: a query node's effective representation must
// depend on the focal user. Edge attention weights over the same
// neighbors must shift when the focal user changes.
func TestMultiEmbeddingsPerEgoNode(t *testing.T) {
	w := buildTinyWorld(t, 8)
	z := NewZoomer(w.res.Graph, w.logs.Vocab(), tinyModelConfig(), 13)
	g := w.res.Graph
	// Find a query with >= 3 neighbors and two distinct users.
	var ego graph.NodeID = -1
	for _, q := range g.NodesOfType(graph.Query) {
		if g.Degree(q) >= 3 {
			ego = q
			break
		}
	}
	if ego < 0 {
		t.Skip("no suitable query node")
	}
	users := g.NodesOfType(graph.User)
	nbrs := make([]graph.NodeID, 0, 5)
	for _, e := range g.Neighbors(ego) {
		nbrs = append(nbrs, e.To)
		if len(nbrs) == 5 {
			break
		}
	}
	w1 := z.EdgeAttentionWeights(ego, users[0], ego, nbrs)
	w2 := z.EdgeAttentionWeights(ego, users[1], ego, nbrs)
	var sum1, sum2, diff float64
	for i := range w1 {
		sum1 += float64(w1[i])
		sum2 += float64(w2[i])
		diff += math.Abs(float64(w1[i] - w2[i]))
	}
	if math.Abs(sum1-1) > 1e-4 || math.Abs(sum2-1) > 1e-4 {
		t.Fatalf("weights not normalized: %v %v", sum1, sum2)
	}
	if diff == 0 {
		t.Fatal("coupling coefficients identical under different focal users")
	}
}

func TestHitRateAtKs(t *testing.T) {
	w := buildTinyWorld(t, 9)
	z := NewZoomer(w.res.Graph, w.logs.Vocab(), tinyModelConfig(), 14)
	items := w.res.Graph.NodesOfType(graph.Item)
	hr := HitRateAtKs(z, w.test, items, []int{5, 20, 60}, 20, 1)
	if hr[5] > hr[20] || hr[20] > hr[60] {
		t.Fatalf("hit-rate not monotone in k: %v", hr)
	}
	for k, v := range hr {
		if v < 0 || v > 1 {
			t.Fatalf("hr@%d = %v out of range", k, v)
		}
	}
}

func TestSlotCount(t *testing.T) {
	if SlotCount(graph.User) != 3 || SlotCount(graph.Query) != 2 || SlotCount(graph.Item) != 5 {
		t.Fatal("slot counts wrong")
	}
}

func TestFeatureMatrixShapes(t *testing.T) {
	w := buildTinyWorld(t, 10)
	g := w.res.Graph
	fe := NewFeatureEmbedder(w.logs.Vocab(), 8, rng.New(1))
	tp := ad.NewTape()
	for _, nt := range []graph.NodeType{graph.User, graph.Query, graph.Item} {
		id := g.NodesOfType(nt)[0]
		H := fe.FeatureMatrix(tp, g, id)
		if H.Rows() != SlotCount(nt) || H.Cols() != 8 {
			t.Fatalf("%v feature matrix %dx%d", nt, H.Rows(), H.Cols())
		}
	}
	if len(fe.Tables()) != 8 {
		t.Fatalf("table count %d", len(fe.Tables()))
	}
}

func TestInstancesFromExamples(t *testing.T) {
	w := buildTinyWorld(t, 11)
	g := w.res.Graph
	for _, in := range w.train[:20] {
		if g.Type(in.User) != graph.User || g.Type(in.Query) != graph.Query || g.Type(in.Item) != graph.Item {
			t.Fatal("instance node types wrong")
		}
	}
}

func BenchmarkZoomerStep(b *testing.B) {
	w := buildTinyWorld(b, 12)
	z := NewZoomer(w.res.Graph, w.logs.Vocab(), tinyModelConfig(), 15)
	r := rng.New(1)
	opt := newModelOptimizer(z, 0.01)
	batch := w.train[:16]
	targets := make([]float32, len(batch))
	for i, ex := range batch {
		targets[i] = ex.Label
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := ad.NewTape()
		logits := z.Logits(tp, batch, r)
		tp.Backward(tp.FocalBCEWithLogits(logits, targets, 2))
		opt.step()
	}
}
