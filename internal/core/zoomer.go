package core

import (
	"io"
	"math"

	"zoomer/internal/ad"
	"zoomer/internal/graph"
	"zoomer/internal/loggen"
	"zoomer/internal/nn"
	"zoomer/internal/rng"
	"zoomer/internal/sampling"
	"zoomer/internal/tensor"
)

// Config parameterizes the Zoomer model. The three Use* switches are the
// ablation knobs of Fig. 8: disabling UseSemanticAttn yields Zoomer-FE,
// UseEdgeAttn yields Zoomer-FS, UseFeatureProj yields Zoomer-ES, and
// disabling all three degrades to a mean-pooling GCN.
type Config struct {
	EmbedDim int // latent dimensionality d (paper: 128)
	OutDim   int // tower output dimensionality
	Hops     int // neighborhood depth (paper: 2 for Taobao, 1 for MovieLens)
	FanOut   int // sampled neighbors per hop (paper: 10 default)

	UseFeatureProj  bool
	UseEdgeAttn     bool
	UseSemanticAttn bool

	// Sampler constructs the ROI; nil means the paper's focal-biased
	// sampler.
	Sampler sampling.Sampler

	// LogitScale multiplies the cosine score into a logit; cosine lives in
	// [-1,1], so without scaling the model cannot express confident
	// probabilities.
	LogitScale float32
}

// DefaultConfig returns the configuration used by the offline experiments
// (scaled-down analog of the paper's settings).
func DefaultConfig() Config {
	return Config{
		EmbedDim:        32,
		OutDim:          32,
		Hops:            2,
		FanOut:          10,
		UseFeatureProj:  true,
		UseEdgeAttn:     true,
		UseSemanticAttn: true,
		LogitScale:      5,
	}
}

// Zoomer is the paper's model: focal selection, ROI sampling, and
// ROI-based multi-level attention feeding a twin-tower CTR head.
type Zoomer struct {
	cfg Config
	g   GraphView
	fe  *FeatureEmbedder

	// Space mappings projecting each focal-point type into the shared
	// latent space before summation into the focal vector (§V-A).
	mapUser, mapQuery *nn.Linear

	// Edge-level attention vectors a (eq. 8), one per tower.
	attnUser, attnQuery *nn.Param

	towerUQ   *nn.MLP // user+query tower over [h_u ‖ h_q]
	towerItem *nn.MLP // base item tower (§V-B: no graph attention on items)

	sampler sampling.Sampler
	name    string
}

// NewZoomer builds the model over view g (a monolithic graph, a local
// sharded engine, or a remote cluster) with vocabulary v.
func NewZoomer(g GraphView, v loggen.Vocab, cfg Config, seed uint64) *Zoomer {
	r := rng.New(seed)
	d := cfg.EmbedDim
	s := cfg.Sampler
	if s == nil {
		s = sampling.NewFocalBiased()
	}
	z := &Zoomer{
		cfg:       cfg,
		g:         g,
		fe:        NewFeatureEmbedder(v, d, r.Split()),
		mapUser:   nn.NewLinear("focal.user", d, d, r.Split()),
		mapQuery:  nn.NewLinear("focal.query", d, d, r.Split()),
		attnUser:  nn.NewParam("attn.user", 3*d, 1).XavierInit(r.Split()),
		attnQuery: nn.NewParam("attn.query", 3*d, 1).XavierInit(r.Split()),
		towerUQ:   nn.NewMLP("tower.uq", []int{2 * d, d, cfg.OutDim}, nn.ActReLU, nn.ActNone, r.Split()),
		towerItem: nn.NewMLP("tower.item", []int{d, d, cfg.OutDim}, nn.ActReLU, nn.ActNone, r.Split()),
		sampler:   s,
		name:      "zoomer",
	}
	if !cfg.UseFeatureProj && !cfg.UseEdgeAttn && !cfg.UseSemanticAttn {
		z.name = "gcn"
	} else if !cfg.UseSemanticAttn {
		z.name = "zoomer-fe"
	} else if !cfg.UseEdgeAttn {
		z.name = "zoomer-fs"
	} else if !cfg.UseFeatureProj {
		z.name = "zoomer-es"
	}
	return z
}

// Name implements Model.
func (z *Zoomer) Name() string { return z.name }

// View returns the graph view the model reads through.
func (z *Zoomer) View() GraphView { return z.g }

// BindView implements ViewBinder: rebinding swaps the read path (e.g.
// onto a different engine topology) without touching trained weights.
func (z *Zoomer) BindView(g GraphView) { z.g = g }

// Config returns the model configuration.
func (z *Zoomer) Config() Config { return z.cfg }

// DenseParams implements Model.
func (z *Zoomer) DenseParams() []*nn.Param {
	out := []*nn.Param{z.attnUser, z.attnQuery}
	out = append(out, z.mapUser.Params()...)
	out = append(out, z.mapQuery.Params()...)
	out = append(out, z.towerUQ.Params()...)
	out = append(out, z.towerItem.Params()...)
	return out
}

// Tables implements Model.
func (z *Zoomer) Tables() []*nn.EmbeddingTable { return z.fe.Tables() }

// samplingFocal is the static focal vector Fc of eq. (5): the sum of the
// focal points' content features, used to score neighbors during ROI
// construction (no learned parameters — sampling happens outside the
// training graph).
func (z *Zoomer) samplingFocal(u, q graph.NodeID) tensor.Vec {
	fc := tensor.NewVec(z.g.ContentDim())
	if c := z.g.Content(u); c != nil {
		tensor.Axpy(1, c, fc)
	}
	if c := z.g.Content(q); c != nil {
		tensor.Axpy(1, c, fc)
	}
	return fc
}

// focalVector computes the learned focal vector (§V-A): per-type space
// mapping of the focal points' embeddings, then summation.
func (z *Zoomer) focalVector(t *ad.Tape, u, q graph.NodeID) *ad.Node {
	eu := t.MeanRows(z.fe.FeatureMatrix(t, z.g, u))
	eq := t.MeanRows(z.fe.FeatureMatrix(t, z.g, q))
	return t.Add(z.mapUser.Forward(t, eu), z.mapQuery.Forward(t, eq))
}

// featureLevel applies eq. (6)–(7): focal-conditioned softmax weights over
// the node's feature slots, returning the reweighed 1 x d node embedding.
// With the ablation off it mean-pools the slots.
func (z *Zoomer) featureLevel(t *ad.Tape, H, C *ad.Node) *ad.Node {
	if !z.cfg.UseFeatureProj {
		return t.MeanRows(H)
	}
	// scores = H·Cᵀ/√d  (n x 1), softmaxed across slots.
	scores := t.Scale(1/float32(math.Sqrt(float64(z.cfg.EmbedDim))), t.MatMul(H, t.Transpose(C)))
	w := t.SoftmaxRows(t.Transpose(scores)) // 1 x n
	return t.MatMul(w, H)                   // 1 x d: Σ w_i · H_i
}

// edgeLevel applies eq. (8)–(9) to one neighbor type: focal-conditioned
// attention over the type's neighbor embeddings. zf is the ego's
// feature-level embedding, C the focal vector, a the attention vector.
// With the ablation off it mean-pools the neighbors.
func (z *Zoomer) edgeLevel(t *ad.Tape, zf, C *ad.Node, nbrs []*ad.Node, a *ad.Node) *ad.Node {
	stack := t.ConcatRows(nbrs...)
	if !z.cfg.UseEdgeAttn {
		return t.MeanRows(stack)
	}
	scores := make([]*ad.Node, len(nbrs))
	for i, zj := range nbrs {
		cat := t.ConcatCols(zf, zj, C) // [(Z_i ‖ Z_j) ‖ Z_c]
		scores[i] = t.LeakyReLU(0.2, t.MatMul(cat, a))
	}
	w := t.SoftmaxRows(t.ConcatCols(scores...)) // 1 x m
	return t.MatMul(w, stack)                   // Σ e_ij · Z_j
}

// semanticLevel applies eq. (10)–(11): per-type aggregates are combined
// with weights cos(ego, aggregate). With the ablation off it mean-pools
// the types.
func (z *Zoomer) semanticLevel(t *ad.Tape, zf *ad.Node, perType []*ad.Node) *ad.Node {
	if len(perType) == 1 {
		if !z.cfg.UseSemanticAttn {
			return perType[0]
		}
		return t.ScaleBy(t.CosineSim(zf, perType[0]), perType[0])
	}
	if !z.cfg.UseSemanticAttn {
		return t.MeanRows(t.ConcatRows(perType...))
	}
	var acc *ad.Node
	for _, e := range perType {
		weighted := t.ScaleBy(t.CosineSim(zf, e), e)
		if acc == nil {
			acc = weighted
		} else {
			acc = t.Add(acc, weighted)
		}
	}
	return acc
}

// embedTree computes the multi-level-attention embedding of a sampled ROI
// tree, recursively: leaves contribute their (feature-level) embeddings;
// interior nodes aggregate children per type with edge attention and
// combine types semantically, with a residual connection to the ego's own
// feature embedding.
func (z *Zoomer) embedTree(t *ad.Tape, tree *sampling.Tree, C, a *ad.Node) *ad.Node {
	H := z.fe.FeatureMatrix(t, z.g, tree.Node)
	zf := z.featureLevel(t, H, C)
	if len(tree.Children) == 0 {
		return zf
	}
	// Group children by neighbor type (eq. 8 normalizes within type).
	var byType [graph.NumNodeTypes][]*ad.Node
	for i, child := range tree.Children {
		emb := z.embedTree(t, child, C, a)
		nt := z.g.Type(tree.Edges[i].To)
		byType[nt] = append(byType[nt], emb)
	}
	var perType []*ad.Node
	for nt := 0; nt < graph.NumNodeTypes; nt++ {
		if len(byType[nt]) == 0 {
			continue
		}
		perType = append(perType, z.edgeLevel(t, zf, C, byType[nt], a))
	}
	return t.Add(zf, z.semanticLevel(t, zf, perType))
}

// itemBase is the base item model of §V-B: feature embedding through the
// item tower, no graph attention (matching the online deployment).
func (z *Zoomer) itemBase(t *ad.Tape, item graph.NodeID) *ad.Node {
	emb := t.MeanRows(z.fe.FeatureMatrix(t, z.g, item))
	return z.towerItem.Forward(t, emb)
}

// uqForward runs the user and query towers for one request and returns
// the combined user-query vector. sc backs the ROI construction; it is
// reset here, so trees from the previous request must no longer be in
// use.
func (z *Zoomer) uqForward(t *ad.Tape, u, q graph.NodeID, r *rng.RNG, sc *sampling.Scratch) *ad.Node {
	C := z.focalVector(t, u, q)
	fc := z.samplingFocal(u, q)
	sc.Reset()
	treeU := sampling.BuildTree(z.g, u, fc, z.cfg.Hops, z.cfg.FanOut, z.sampler, r, sc)
	treeQ := sampling.BuildTree(z.g, q, fc, z.cfg.Hops, z.cfg.FanOut, z.sampler, r, sc)
	hu := z.embedTree(t, treeU, C, z.attnUser.Node(t))
	hq := z.embedTree(t, treeQ, C, z.attnQuery.Node(t))
	return z.towerUQ.Forward(t, t.ConcatCols(hu, hq))
}

// Logits implements Model: per-example twin-tower cosine scores scaled
// into logits. One sampling scratch serves the whole batch, so ROI
// construction allocates only on the first examples.
func (z *Zoomer) Logits(t *ad.Tape, batch []Instance, r *rng.RNG) *ad.Node {
	sc := sampling.NewScratch()
	rows := make([]*ad.Node, len(batch))
	for i, ex := range batch {
		uq := z.uqForward(t, ex.User, ex.Query, r, sc)
		it := z.itemBase(t, ex.Item)
		rows[i] = t.Scale(z.cfg.LogitScale, t.CosineSim(uq, it))
	}
	return t.ConcatRows(rows...)
}

// UserQueryEmbedding implements Model (inference path: forward only).
func (z *Zoomer) UserQueryEmbedding(u, q graph.NodeID, r *rng.RNG) tensor.Vec {
	t := ad.NewTape()
	out := z.uqForward(t, u, q, r, sampling.NewScratch())
	return tensor.Copy(out.Val.Row(0))
}

// ItemEmbedding implements Model.
func (z *Zoomer) ItemEmbedding(item graph.NodeID, _ *rng.RNG) tensor.Vec {
	t := ad.NewTape()
	out := z.itemBase(t, item)
	return tensor.Copy(out.Val.Row(0))
}

// EdgeAttentionWeights exposes the trained edge-level coupling
// coefficients for interpretability (Fig. 13): for ego node with the given
// focal points, it returns the attention weight assigned to each listed
// neighbor. Weights are softmax-normalized over the provided set.
func (z *Zoomer) EdgeAttentionWeights(ego graph.NodeID, focalU, focalQ graph.NodeID, neighbors []graph.NodeID) []float32 {
	t := ad.NewTape()
	C := z.focalVector(t, focalU, focalQ)
	H := z.fe.FeatureMatrix(t, z.g, ego)
	zf := z.featureLevel(t, H, C)
	a := z.attnUser.Node(t)
	scores := make([]*ad.Node, len(neighbors))
	for i, nb := range neighbors {
		Hn := z.fe.FeatureMatrix(t, z.g, nb)
		zn := z.featureLevel(t, Hn, C)
		scores[i] = t.LeakyReLU(0.2, t.MatMul(t.ConcatCols(zf, zn, C), a))
	}
	w := t.SoftmaxRows(t.ConcatCols(scores...))
	return tensor.Copy(w.Val.Row(0))
}

// Save writes a checkpoint of all trainable state (dense parameters and
// embedding tables) to w.
func (z *Zoomer) Save(w io.Writer) error {
	return nn.SaveCheckpoint(w, z.DenseParams(), z.Tables())
}

// Load restores a checkpoint written by Save into this model; the
// architecture (and thus parameter names/shapes) must match.
func (z *Zoomer) Load(r io.Reader) error {
	return nn.LoadCheckpoint(r, z.DenseParams(), z.Tables())
}
