// Package core implements the paper's primary contribution: the Zoomer
// model — focal selection (§V-B), focal-biased ROI sampling (§V-C, via
// package sampling), and the ROI-based multi-level attention network
// (§V-D) with its feature-projection, edge-reweighing and
// semantic-combination levels — plus the twin-tower CTR head, the shared
// model interface every baseline implements, and the training/evaluation
// loop.
package core

import (
	"fmt"

	"zoomer/internal/ad"
	"zoomer/internal/graph"
	"zoomer/internal/loggen"
	"zoomer/internal/nn"
	"zoomer/internal/rng"
)

// FeatureEmbedder owns the per-feature-space embedding tables of Table I
// and assembles a node's feature latent matrix H (one row per feature
// slot). All models share this structure so comparisons isolate the
// aggregation strategy, not the feature treatment.
type FeatureEmbedder struct {
	Dim int

	UserID, Gender, Member        *nn.EmbeddingTable
	ItemID, Category, Brand, Shop *nn.EmbeddingTable
	Term                          *nn.EmbeddingTable
}

// Feature-slot counts per node type (title terms collapse to one slot).
const (
	UserSlots  = 3 // id, gender, membership
	QuerySlots = 2 // category, terms
	ItemSlots  = 5 // id, category, brand, shop, terms
)

// NewFeatureEmbedder allocates tables sized by the world's vocabulary.
func NewFeatureEmbedder(v loggen.Vocab, dim int, r *rng.RNG) *FeatureEmbedder {
	return &FeatureEmbedder{
		Dim:      dim,
		UserID:   nn.NewEmbeddingTable("user_id", v.Users, dim, r.Split()),
		Gender:   nn.NewEmbeddingTable("gender", v.Genders, dim, r.Split()),
		Member:   nn.NewEmbeddingTable("membership", v.Memberships, dim, r.Split()),
		ItemID:   nn.NewEmbeddingTable("item_id", v.Items, dim, r.Split()),
		Category: nn.NewEmbeddingTable("category", v.Categories, dim, r.Split()),
		Brand:    nn.NewEmbeddingTable("brand", v.Brands, dim, r.Split()),
		Shop:     nn.NewEmbeddingTable("shop", v.Shops, dim, r.Split()),
		Term:     nn.NewEmbeddingTable("term", v.Terms, dim, r.Split()),
	}
}

// Tables returns every embedding table for optimizer registration.
func (fe *FeatureEmbedder) Tables() []*nn.EmbeddingTable {
	return []*nn.EmbeddingTable{
		fe.UserID, fe.Gender, fe.Member,
		fe.ItemID, fe.Category, fe.Brand, fe.Shop, fe.Term,
	}
}

// SlotCount returns the feature-matrix row count for a node type.
func SlotCount(t graph.NodeType) int {
	switch t {
	case graph.User:
		return UserSlots
	case graph.Query:
		return QuerySlots
	case graph.Item:
		return ItemSlots
	default:
		panic(fmt.Sprintf("core: unknown node type %v", t))
	}
}

// FeatureMatrix gathers node id's feature latent vectors as a
// SlotCount x Dim node H — the input of the feature-projection level
// (eq. 6). Term slots average the node's title-term embeddings.
func (fe *FeatureEmbedder) FeatureMatrix(t *ad.Tape, g GraphView, id graph.NodeID) *ad.Node {
	feats := g.Features(id)
	switch g.Type(id) {
	case graph.User:
		return t.ConcatRows(
			fe.UserID.LookupOne(t, feats[0]),
			fe.Gender.LookupOne(t, feats[1]),
			fe.Member.LookupOne(t, feats[2]),
		)
	case graph.Query:
		// feats = [category, terms...]
		return t.ConcatRows(
			fe.Category.LookupOne(t, feats[0]),
			t.MeanRows(fe.Term.Lookup(t, feats[1:])),
		)
	case graph.Item:
		// feats = [id, category, brand, shop, terms...]
		return t.ConcatRows(
			fe.ItemID.LookupOne(t, feats[0]),
			fe.Category.LookupOne(t, feats[1]),
			fe.Brand.LookupOne(t, feats[2]),
			fe.Shop.LookupOne(t, feats[3]),
			t.MeanRows(fe.Term.Lookup(t, feats[4:])),
		)
	default:
		panic(fmt.Sprintf("core: unknown node type %v", g.Type(id)))
	}
}
