package engine

import (
	"errors"
	"testing"

	"zoomer/internal/graph"
	"zoomer/internal/ingest"
	"zoomer/internal/rng"
)

// deltaWorld builds a 4-node single-shard world: ego with two weighted
// base edges, plus one isolated node.
func deltaWorld(t testing.TB, shards int) (*Engine, graph.NodeID, graph.NodeID, graph.NodeID, graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder()
	ego := b.AddNode(graph.User, nil, nil)
	heavy := b.AddNode(graph.Item, nil, nil)
	light := b.AddNode(graph.Item, nil, nil)
	lone := b.AddNode(graph.Item, nil, nil)
	b.AddEdge(ego, heavy, graph.Click, 9)
	b.AddEdge(ego, light, graph.Click, 1)
	return New(b.Build(), Config{Shards: shards, Replicas: 1}), ego, heavy, light, lone
}

func TestAppendSamplingSeesNewEdges(t *testing.T) {
	e, ego, _, _, lone := deltaWorld(t, 1)
	// Appended mass equals the base mass: the new neighbor should take
	// about half the draws.
	n, err := e.Append([]ingest.Edge{{Src: ego, Dst: lone, Type: graph.Session, Weight: 10}})
	if err != nil || n != 1 {
		t.Fatalf("Append = (%d, %v), want (1, nil)", n, err)
	}
	r := rng.New(7)
	hits := 0
	const draws = 20000
	out := make([]graph.NodeID, 1)
	for i := 0; i < draws; i++ {
		if e.SampleNeighborsInto(ego, out, r) != 1 {
			t.Fatal("sample failed")
		}
		if out[0] == lone {
			hits++
		}
	}
	frac := float64(hits) / draws
	if frac < 0.46 || frac > 0.54 {
		t.Fatalf("appended edge sampled %.3f of draws, want ~0.5", frac)
	}
	if d := e.Shard(0).DeltaStats(); d.Seq != 1 || d.Edges != 1 || d.Nodes != 1 {
		t.Fatalf("DeltaStats = %+v", d)
	}
}

func TestAppendUntouchedNodesDrawBitIdentical(t *testing.T) {
	e1 := buildEngine(t)
	e2 := buildEngine(t)
	g := e1.Graph()
	// Append to node 0's shard only; every other node's stream must be
	// untouched relative to the pristine engine.
	if _, err := e1.Append([]ingest.Edge{{Src: 0, Dst: 1, Type: graph.Click, Weight: 2}}); err != nil {
		t.Fatal(err)
	}
	r1, r2 := rng.New(99), rng.New(99)
	a := make([]graph.NodeID, 4)
	b := make([]graph.NodeID, 4)
	for id := 1; id < g.NumNodes(); id += 3 {
		nid := graph.NodeID(id)
		n1 := e1.SampleNeighborsInto(nid, a, r1)
		n2 := e2.SampleNeighborsInto(nid, b, r2)
		if n1 != n2 {
			t.Fatalf("node %d: counts %d vs %d", id, n1, n2)
		}
		for i := 0; i < n1; i++ {
			if a[i] != b[i] {
				t.Fatalf("node %d draw %d: %d vs %d — append leaked into an untouched node's stream", id, i, a[i], b[i])
			}
		}
	}
}

func TestAppendIsolatedNodeGainsEdges(t *testing.T) {
	e, ego, _, _, lone := deltaWorld(t, 1)
	r := rng.New(5)
	if got := e.SampleNeighbors(lone, 3, r); got != nil {
		t.Fatalf("isolated node sampled %v before append", got)
	}
	if _, err := e.Append([]ingest.Edge{{Src: lone, Dst: ego, Type: graph.Session, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	got := e.SampleNeighbors(lone, 3, r)
	if len(got) != 3 || got[0] != ego || got[1] != ego || got[2] != ego {
		t.Fatalf("isolated node after append sampled %v, want [ego ego ego]", got)
	}
	if nbrs := e.Neighbors(lone); len(nbrs) != 1 || nbrs[0].To != ego {
		t.Fatalf("Neighbors(lone) = %v after append", nbrs)
	}
}

func TestApplyAppendIdempotentAndGapTyped(t *testing.T) {
	e, ego, _, _, lone := deltaWorld(t, 1)
	sh := e.Shard(0)
	edges := []ingest.Edge{{Src: ego, Dst: lone, Type: graph.Click, Weight: 1}}

	applied, last, err := sh.ApplyAppend(1, edges)
	if !applied || last != 1 || err != nil {
		t.Fatalf("first apply = (%v, %d, %v)", applied, last, err)
	}
	// Redelivery (client retry, replica fan-out) is a no-op success.
	applied, last, err = sh.ApplyAppend(1, edges)
	if applied || last != 1 || err != nil {
		t.Fatalf("duplicate apply = (%v, %d, %v), want (false, 1, nil)", applied, last, err)
	}
	// A sequence skipping ahead fails typed, carrying the expected next.
	_, last, err = sh.ApplyAppend(5, edges)
	if !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap apply err = %v, want ErrSeqGap", err)
	}
	var gap *SeqGapError
	if !errors.As(err, &gap) || gap.Want != 2 || gap.Got != 5 || last != 1 {
		t.Fatalf("gap detail = %+v (last %d), want Want=2 Got=5 last=1", gap, last)
	}
	if sh.LastAppliedSeq() != 1 {
		t.Fatalf("LastAppliedSeq = %d after rejected applies, want 1", sh.LastAppliedSeq())
	}
}

func TestAppendValidationTyped(t *testing.T) {
	e, ego, _, _, lone := deltaWorld(t, 2)
	si := e.ShardOf(ego)
	foreign := lone
	if e.ShardOf(foreign) == si {
		foreign = graph.NodeID(1)
	}
	if e.ShardOf(foreign) == si {
		t.Skip("could not find a foreign node in 2 shards")
	}
	sh := e.Shard(si)
	cases := []ingest.Edge{
		{Src: foreign, Dst: ego, Type: graph.Click, Weight: 1},        // wrong shard
		{Src: ego, Dst: 9999, Type: graph.Click, Weight: 1},           // out of range
		{Src: ego, Dst: lone, Type: graph.EdgeType(7), Weight: 1},     // unknown type
		{Src: ego, Dst: lone, Type: graph.Click, Weight: 0},           // zero weight
		{Src: ego, Dst: lone, Type: graph.Click, Weight: float32(-1)}, // negative
	}
	for i, bad := range cases {
		if _, _, err := sh.ApplyAppend(1, []ingest.Edge{bad}); !errors.Is(err, ErrBadAppend) {
			t.Fatalf("case %d: err = %v, want ErrBadAppend", i, err)
		}
	}
	if sh.LastAppliedSeq() != 0 {
		t.Fatal("rejected appends advanced the sequence")
	}
}

// genAppendStream builds the deterministic record stream used by the
// replay-equivalence tests: many edges funneled at ego (to cross the
// compaction threshold repeatedly) plus scattered edges elsewhere.
func genAppendStream(ego, lone graph.NodeID, n int) [][]ingest.Edge {
	recs := make([][]ingest.Edge, n)
	for i := range recs {
		x := uint64(i)*2654435761 + 12345
		rec := []ingest.Edge{
			{Src: ego, Dst: graph.NodeID(x % 4), Type: graph.EdgeType(x % 3), Weight: float32(x%17) + 0.25},
		}
		if i%3 == 0 {
			rec = append(rec, ingest.Edge{Src: lone, Dst: ego, Type: graph.Session, Weight: float32(x%5) + 1})
		}
		recs[i] = rec
	}
	return recs
}

func TestAppendReplayBitIdentical(t *testing.T) {
	// Two engines, one record stream: engine A applies it live, engine B
	// "recovers" by replaying the same prefix. Every draw must agree bit
	// for bit at every prefix length — the property WAL recovery rests on.
	eA, egoA, _, _, loneA := deltaWorld(t, 1)
	eB, _, _, _, _ := deltaWorld(t, 1)
	shA, shB := eA.Shard(0), eB.Shard(0)
	stream := genAppendStream(egoA, loneA, 100)

	for seq, rec := range stream {
		if _, _, err := shA.ApplyAppend(uint64(seq)+1, rec); err != nil {
			t.Fatalf("A apply %d: %v", seq+1, err)
		}
	}
	for seq, rec := range stream {
		if _, _, err := shB.ApplyAppend(uint64(seq)+1, rec); err != nil {
			t.Fatalf("B apply %d: %v", seq+1, err)
		}
	}

	dA, dB := shA.DeltaStats(), shB.DeltaStats()
	if dA != dB {
		t.Fatalf("DeltaStats diverged: %+v vs %+v", dA, dB)
	}
	if dA.Compactions == 0 {
		t.Fatalf("stream of %d records never compacted (threshold %d) — test lost its teeth", len(stream), compactThreshold)
	}

	out1 := make([]graph.NodeID, 8)
	out2 := make([]graph.NodeID, 8)
	for _, id := range []graph.NodeID{egoA, loneA} {
		r1, r2 := rng.New(42), rng.New(42)
		for rep := 0; rep < 50; rep++ {
			shA.SampleNeighborsInto(id, out1, r1)
			shB.SampleNeighborsInto(id, out2, r2)
			for i := range out1 {
				if out1[i] != out2[i] {
					t.Fatalf("node %d rep %d draw %d: diverged %v vs %v", id, rep, i, out1, out2)
				}
			}
		}
	}
}

func TestAppendSampleNoAlloc(t *testing.T) {
	e, ego, _, _, lone := deltaWorld(t, 1)
	sh := e.Shard(0)
	// Drive ego past the compaction threshold and leave a pending tail,
	// so the draw exercises the merged+pending mixture; lone stays
	// pre-compaction (base+pending mixture).
	stream := genAppendStream(ego, lone, compactThreshold+5)
	for seq, rec := range stream {
		if _, _, err := sh.ApplyAppend(uint64(seq)+1, rec); err != nil {
			t.Fatal(err)
		}
	}
	r := rng.New(11)
	out := make([]graph.NodeID, 16)
	for _, id := range []graph.NodeID{ego, lone} {
		id := id
		if allocs := testing.AllocsPerRun(200, func() {
			sh.SampleNeighborsInto(id, out, r)
		}); allocs != 0 {
			t.Fatalf("node %d: %v allocs/op on the delta sampling path, want 0", id, allocs)
		}
	}
}

func TestAppendBatchPathConsistent(t *testing.T) {
	// The scatter-gather batch path must produce the same draws as the
	// single-node path for overlaid nodes (same derived-stream contract).
	e, ego, _, _, lone := deltaWorld(t, 1)
	sh := e.Shard(0)
	stream := genAppendStream(ego, lone, 40)
	for seq, rec := range stream {
		if _, _, err := sh.ApplyAppend(uint64(seq)+1, rec); err != nil {
			t.Fatal(err)
		}
	}
	const k = 6
	gids := []graph.NodeID{ego, lone}
	idx := []int32{0, 1}
	out := make([]graph.NodeID, len(gids)*k)
	ns := make([]int32, len(gids))
	base := uint64(777)
	if _, err := sh.SampleBatchInto(gids, idx, base, k, out, ns); err != nil {
		t.Fatal(err)
	}
	var sub rng.RNG
	want := make([]graph.NodeID, k)
	for i, id := range gids {
		if ns[i] != k {
			t.Fatalf("node %d: ns = %d, want %d", id, ns[i], k)
		}
		sub.Reseed(entrySeed(base, i))
		sh.SampleNeighborsInto(id, want, &sub)
		for j := 0; j < k; j++ {
			if out[i*k+j] != want[j] {
				t.Fatalf("node %d draw %d: batch %d vs single %d", id, j, out[i*k+j], want[j])
			}
		}
	}
}

// BenchmarkDeltaApply measures the copy-on-write apply path (including
// periodic compactions).
func BenchmarkDeltaApply(b *testing.B) {
	e, ego, _, _, lone := deltaWorld(b, 1)
	sh := e.Shard(0)
	rec := []ingest.Edge{
		{Src: ego, Dst: lone, Type: graph.Click, Weight: 1.5},
		{Src: lone, Dst: ego, Type: graph.Click, Weight: 1.5},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sh.ApplyAppend(uint64(i)+1, rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaSample measures post-compaction mixture draws against a
// node with live deltas — the post-ingest read hot path.
func BenchmarkDeltaSample(b *testing.B) {
	e, ego, _, _, lone := deltaWorld(b, 1)
	sh := e.Shard(0)
	stream := genAppendStream(ego, lone, 64)
	for seq, rec := range stream {
		if _, _, err := sh.ApplyAppend(uint64(seq)+1, rec); err != nil {
			b.Fatal(err)
		}
	}
	r := rng.New(3)
	out := make([]graph.NodeID, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.SampleNeighborsInto(ego, out, r)
	}
}
