package engine

import (
	"errors"
	"fmt"
	"sync"

	"zoomer/internal/graph"
	"zoomer/internal/rng"
)

// BatchScratch holds the reusable buffers of the scatter-gather path: the
// counting-sort grouping arrays, the derived per-entry RNG, the parallel
// fan-out completion state, and the SampleTree frontier/output storage.
// Not safe for concurrent use — one per caller, like *rng.RNG. A nil
// *BatchScratch is accepted everywhere and falls back to per-call
// allocation.
type BatchScratch struct {
	counts []int32
	order  []int32
	gids   []graph.NodeID // entry node ids reordered by owning shard

	// Parallel fan-out state: one result slot, one in-flight handle slot
	// and one picked-replica slot per shard, plus the caller's completion
	// barrier for worker-dispatched visits — all reused across batches.
	visits  []visitRes
	handles []BatchHandle
	bes     []ShardBackend
	wg      sync.WaitGroup

	// SampleTree buffers: the flat tree, the current frontier and the
	// batch-draw output it expands into.
	tree     []TreeNode
	frontier []graph.NodeID
	children []graph.NodeID
	ns       []int32
}

// NewBatchScratch returns an empty scratch; buffers are grown on first
// use and reused afterwards.
func NewBatchScratch() *BatchScratch { return &BatchScratch{} }

func (bs *BatchScratch) orNew() *BatchScratch {
	if bs == nil {
		return &BatchScratch{}
	}
	return bs
}

// visitBufs returns the per-shard result, handle and picked-replica
// slots for one parallel batch.
func (bs *BatchScratch) visitBufs(shards int) ([]visitRes, []BatchHandle, []ShardBackend) {
	if cap(bs.visits) < shards {
		bs.visits = make([]visitRes, shards)
		bs.handles = make([]BatchHandle, shards)
		bs.bes = make([]ShardBackend, shards)
	}
	bs.visits = bs.visits[:shards]
	bs.handles = bs.handles[:shards]
	bs.bes = bs.bes[:shards]
	for i := range bs.visits {
		bs.visits[i] = visitRes{}
		bs.handles[i] = nil
		bs.bes[i] = nil
	}
	return bs.visits, bs.handles, bs.bes
}

func (bs *BatchScratch) groupBufs(entries, shards int) (counts, order []int32, gids []graph.NodeID) {
	if cap(bs.counts) < shards+1 {
		bs.counts = make([]int32, shards+1)
	}
	bs.counts = bs.counts[:shards+1]
	for i := range bs.counts {
		bs.counts[i] = 0
	}
	if cap(bs.order) < entries {
		bs.order = make([]int32, entries)
		bs.gids = make([]graph.NodeID, entries)
	}
	bs.order = bs.order[:entries]
	bs.gids = bs.gids[:entries]
	return bs.counts, bs.order, bs.gids
}

// entrySeed derives the deterministic RNG seed of batch entry i from the
// batch base. The mapping depends only on (base, i) — not on the entry's
// owning shard or the order shards are visited in — which is what makes
// batch results identical across shard counts and partition strategies.
func entrySeed(base uint64, i int) uint64 {
	return base + (uint64(i)+1)*0x9e3779b97f4a7c15
}

// SampleNeighborsBatchInto draws k weighted neighbors (with replacement)
// for each of ids, writing entry i's draws into out[i*k:(i+1)*k] and the
// per-entry count (k, or 0 for an isolated node) into ns[i]. It returns
// the total number of draws written.
//
// This is the scatter-gather layer: entries are grouped by owning shard
// with a counting sort and each shard is visited exactly once — one
// replica is picked and charged per shard per batch, and over a remote
// backend each visit is exactly one RPC round trip. When more than one
// of the visited shards is remote, the visits are dispatched to a
// bounded fan-out worker pool and overlap on the wire (local groups run
// inline on the caller meanwhile), so batch latency approaches the
// slowest shard's round trip instead of their sum; a local-only engine
// keeps the sequential inline path and its zero-allocation guarantee.
// Either way the results are identical: every visit writes into disjoint
// position-addressed regions of out/ns, and one value is consumed from r
// as the batch base with every entry drawing from its own derived
// sub-stream shard-side — deterministic given (r state, ids, k) and
// independent of partitioning, process boundaries, and dispatch order.
//
// out must hold at least len(ids)*k entries and ns at least len(ids);
// the call panics otherwise. With a non-nil bs the call performs no heap
// allocation at steady state over in-process shards.
//
// On a backend failure (a remote shard down mid-batch) every count in ns
// is zeroed and a typed error — satisfying
// errors.Is(err, rpc.ErrShardUnavailable) for transport failures — is
// returned: no partial results survive. A wrong-epoch redirect (a shard
// drained by a live handoff) is not surfaced: the engine refreshes its
// ownership view once and re-runs the batch with the same base, so the
// retried draws are bit-identical to what a static cluster would have
// produced.
func (e *Engine) SampleNeighborsBatchInto(ids []graph.NodeID, k int, out []graph.NodeID, ns []int32, r *rng.RNG, bs *BatchScratch) (int, error) {
	if k <= 0 {
		// Zero the counts so callers reading ns see "no draws" rather
		// than stale values from a previous batch on the same buffers.
		for i := range ids {
			ns[i] = 0
		}
		return 0, nil
	}
	if len(ids) == 0 {
		return 0, nil
	}
	if len(out) < len(ids)*k || len(ns) < len(ids) {
		panic(fmt.Sprintf("engine: batch buffers %d/%d for %d ids × k=%d", len(out), len(ns), len(ids), k))
	}
	bs = bs.orNew()
	base := r.Uint64()
	set := e.bset.Load()
	total, err := e.batchVisits(set, ids, base, k, out, ns, bs)
	for retry := 0; retry < maxEpochRetries && err != nil && retryable(err) && e.refresh(set); retry++ {
		// The shard moved mid-batch, or a whole replica group was
		// unreachable and the refresh rebound it. Every count was zeroed,
		// the base is in hand and sub-streams derive from (base, entry
		// index) alone, so re-running the whole batch against the
		// refreshed view yields exactly the draws an up-to-date caller
		// would have seen.
		set = e.bset.Load()
		total, err = e.batchVisits(set, ids, base, k, out, ns, bs)
	}
	return total, err
}

// batchVisits runs one scatter-gather pass over a fixed ownership view:
// group by owning shard, visit each owning backend exactly once
// (overlapping remote visits), merge. On any visit error every count in
// ns is zeroed before the error is returned.
func (e *Engine) batchVisits(set *backendSet, ids []graph.NodeID, base uint64, k int, out []graph.NodeID, ns []int32, bs *BatchScratch) (int, error) {
	// Counting sort entry indices (and their node ids) by owning shard.
	counts, order, gids := bs.groupBufs(len(ids), len(set.backends))
	for _, id := range ids {
		counts[e.routing.Owner(id)+1]++
	}
	for s := 1; s < len(counts); s++ {
		counts[s] += counts[s-1]
	}
	for i, id := range ids {
		sh := e.routing.Owner(id)
		order[counts[sh]] = int32(i)
		gids[counts[sh]] = id
		counts[sh]++
	}

	// One visit per shard: counts[s] is now the end of shard s's group.
	// Count the remote groups to decide between the inline path and the
	// parallel fan-out.
	remoteGroups := 0
	if set.hasRemote {
		start := int32(0)
		for si := range set.backends {
			end := counts[si]
			if end > start && set.locals[si] == nil {
				remoteGroups++
			}
			start = end
		}
	}

	if remoteGroups <= 1 {
		// Sequential inline visits: the local-only steady state (zero
		// allocation, no cross-goroutine handoff) and the degenerate
		// single-remote-group case, where fan-out buys nothing. Each visit
		// fails over across its partition's replicas inside visitShard.
		total := 0
		failover := false
		start := int32(0)
		for si := range set.backends {
			end := counts[si]
			if end == start {
				continue
			}
			n, fo, err := set.visitShard(si, gids[start:end], order[start:end], base, k, out, ns)
			if err != nil {
				for i := range ids {
					ns[i] = 0
				}
				return 0, fmt.Errorf("engine: batch visit to shard %d: %w", si, err)
			}
			total += n
			failover = failover || fo
			start = end
		}
		if failover {
			e.kickRefresh(set)
		}
		return total, nil
	}

	// Parallel fan-out: put every remote group in flight before waiting on
	// any of them, so the round trips overlap. An async-capable backend
	// (BatchStarter — the RPC stub) is started directly by this goroutine:
	// the request frame goes out and control returns immediately, no
	// handoff. Any other remote backend is dispatched to the bounded
	// worker pool. Local groups run inline meanwhile, then everything is
	// collected in shard order. Each visit writes only its own entries'
	// disjoint regions of out/ns, so no synchronization beyond the
	// barrier/awaits is needed and the merged result is bit-identical to
	// the sequential path.
	visits, handles, bes := bs.visitBufs(len(set.backends))
	pooled := 0
	start := int32(0)
	for si := range set.backends {
		end := counts[si]
		if end > start && set.locals[si] == nil {
			// One replica is picked (load-aware) and charged per group per
			// batch; a failed visit is retried on the siblings at collect
			// time, after every in-flight visit has settled.
			g := set.groups[si]
			be := g[0]
			if len(g) > 1 {
				be = g[set.pick(si, g)]
			}
			bes[si] = be
			if starter, ok := be.(BatchStarter); ok {
				handles[si] = starter.StartSampleBatch(gids[start:end], order[start:end], base, k, out, ns)
			} else {
				pooled++
			}
		}
		start = end
	}
	if pooled > 0 {
		e.startFanout()
		bs.wg.Add(pooled)
		start = 0
		for si := range set.backends {
			end := counts[si]
			if end > start && set.locals[si] == nil && handles[si] == nil {
				e.fanoutCh <- visitJob{
					be:   bes[si],
					gids: gids[start:end],
					idx:  order[start:end],
					base: base,
					k:    k,
					out:  out,
					ns:   ns,
					res:  &visits[si],
					wg:   &bs.wg,
				}
			}
			start = end
		}
	}
	start = 0
	for si := range set.backends {
		end := counts[si]
		if end > start && set.locals[si] != nil {
			visits[si].n, visits[si].err = set.locals[si].SampleBatchInto(gids[start:end], order[start:end], base, k, out, ns)
		}
		start = end
	}
	// Collect every visit before acting on any error: an in-flight
	// backend may still be writing into out/ns until its await returns.
	// On-the-wire handles drain first — releasing the window capacity
	// this caller holds — then any the backend had to defer for lack of
	// a free slot (their awaits issue fresh blocking calls).
	for si, h := range handles {
		if h != nil && handleStarted(h) {
			visits[si].n, visits[si].err = h.AwaitBatch()
			handles[si] = nil // awaited handles may be recycled; drop them
		}
	}
	for si, h := range handles {
		if h != nil {
			visits[si].n, visits[si].err = h.AwaitBatch()
		}
	}
	if pooled > 0 {
		bs.wg.Wait()
	}

	// Failover sweep: a visit that died with a transport failure is redone
	// on the partition's surviving replicas (visitShard walks the full
	// rotation; the advanced cursor and the health check steer it away
	// from the replica that just failed). It runs only after every
	// in-flight visit has settled, so the redo owns its disjoint out/ns
	// regions exclusively and the merged result stays bit-identical.
	failover := false
	start = 0
	for si := range set.backends {
		end := counts[si]
		if end > start && len(set.groups[si]) > 1 && visits[si].err != nil && errors.Is(visits[si].err, ErrShardUnavailable) {
			visits[si].n, _, visits[si].err = set.visitShard(si, gids[start:end], order[start:end], base, k, out, ns)
			failover = true
		}
		start = end
	}

	total := 0
	for si := range visits {
		if err := visits[si].err; err != nil {
			for i := range ids {
				ns[i] = 0
			}
			return 0, fmt.Errorf("engine: batch visit to shard %d: %w", si, err)
		}
		total += visits[si].n
	}
	if failover {
		e.kickRefresh(set)
	}
	return total, nil
}

// TreeNode is one entry of the flat breadth-first expansion SampleTree
// produces: Nodes[0] is the ego and Parent indexes into the same slice
// (-1 for the root).
type TreeNode struct {
	ID     graph.NodeID
	Parent int32
}

// SampleTree expands hops levels of weighted neighbor sampling from ego
// with per-node budget k — the engine-native multi-hop neighborhood used
// by serving-side ROI construction. Each level's frontier is issued as
// one scatter-gather batch, so every shard is visited at most once per
// level regardless of frontier size.
//
// The returned slice is backed by bs (valid until its next SampleTree
// call) and the expansion is deterministic given (r state, ego, hops, k),
// independent of shard count, partition strategy and process boundaries.
// With a non-nil bs steady-state construction performs no heap allocation
// over in-process shards. A backend failure aborts the expansion with a
// nil tree and the typed batch error — no partial tree survives.
func (e *Engine) SampleTree(ego graph.NodeID, hops, k int, r *rng.RNG, bs *BatchScratch) ([]TreeNode, error) {
	bs = bs.orNew()
	bs.tree = append(bs.tree[:0], TreeNode{ID: ego, Parent: -1})
	if k <= 0 {
		return bs.tree, nil
	}
	start, end := 0, 1
	for h := 0; h < hops && start < end; h++ {
		bs.frontier = bs.frontier[:0]
		for i := start; i < end; i++ {
			bs.frontier = append(bs.frontier, bs.tree[i].ID)
		}
		need := len(bs.frontier) * k
		if cap(bs.children) < need {
			bs.children = make([]graph.NodeID, need)
		}
		bs.children = bs.children[:need]
		if cap(bs.ns) < len(bs.frontier) {
			bs.ns = make([]int32, len(bs.frontier))
		}
		bs.ns = bs.ns[:len(bs.frontier)]
		if _, err := e.SampleNeighborsBatchInto(bs.frontier, k, bs.children, bs.ns, r, bs); err != nil {
			return nil, fmt.Errorf("engine: tree hop %d: %w", h, err)
		}
		for fi := range bs.frontier {
			parent := int32(start + fi)
			for j := int32(0); j < bs.ns[fi]; j++ {
				bs.tree = append(bs.tree, TreeNode{ID: bs.children[fi*k+int(j)], Parent: parent})
			}
		}
		start, end = end, len(bs.tree)
	}
	return bs.tree, nil
}
