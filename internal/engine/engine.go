// Package engine is the distributed graph engine of §VI (the Euler
// stand-in): an in-memory graph store partitioned into shards for
// capacity, with each shard replicated for aggregate read throughput, and
// per-adjacency alias tables giving constant-time weighted neighbor
// sampling independent of degree.
//
// In the paper the shards live on separate servers; here each replica is
// an independently locked region served in-process, so concurrency
// effects (contention, replica load spreading) are real while the network
// is not. Request counting per replica exposes the load-balance behavior
// the experiments check.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"zoomer/internal/alias"
	"zoomer/internal/graph"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// Config sizes the engine.
type Config struct {
	Shards   int // graph partitions (capacity axis)
	Replicas int // copies per shard (throughput axis)
}

// DefaultConfig mirrors a small production deployment.
func DefaultConfig() Config { return Config{Shards: 4, Replicas: 2} }

// Engine is a sharded, replicated view over an immutable graph.
type Engine struct {
	g        *graph.Graph
	shards   []*shard
	replicas int
}

type shard struct {
	replicas []*replica
	rr       atomic.Uint32 // round-robin replica cursor
}

// replica holds a lazily built alias-table cache for its shard's nodes.
// Each replica has independent locking, so adding replicas adds real
// concurrent sampling capacity.
type replica struct {
	mu       sync.Mutex
	tables   map[graph.NodeID]*alias.Table
	requests atomic.Int64
}

// New builds an engine over g. It panics on non-positive shard or replica
// counts.
func New(g *graph.Graph, cfg Config) *Engine {
	if cfg.Shards <= 0 || cfg.Replicas <= 0 {
		panic(fmt.Sprintf("engine: invalid config %+v", cfg))
	}
	e := &Engine{g: g, replicas: cfg.Replicas}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		s := &shard{replicas: make([]*replica, cfg.Replicas)}
		for j := range s.replicas {
			s.replicas[j] = &replica{tables: make(map[graph.NodeID]*alias.Table)}
		}
		e.shards[i] = s
	}
	return e
}

// Graph returns the underlying immutable graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

func (e *Engine) shardOf(id graph.NodeID) *shard {
	return e.shards[int(uint32(id))%len(e.shards)]
}

// pick selects a replica round-robin, spreading load evenly.
func (s *shard) pick() *replica {
	n := s.rr.Add(1)
	return s.replicas[int(n)%len(s.replicas)]
}

// Neighbors returns the adjacency list of id (immutable view; no lock
// needed — reads go straight to the shared CSR).
func (e *Engine) Neighbors(id graph.NodeID) []graph.Edge {
	return e.g.Neighbors(id)
}

// Content returns the node's content vector.
func (e *Engine) Content(id graph.NodeID) tensor.Vec { return e.g.Content(id) }

// Features returns the node's categorical features.
func (e *Engine) Features(id graph.NodeID) []int32 { return e.g.Features(id) }

// SampleNeighbors draws k neighbors of id with replacement, weighted by
// edge weight, in O(1) per draw via the replica's alias table (built on
// first touch). An isolated node yields nil.
func (e *Engine) SampleNeighbors(id graph.NodeID, k int, r *rng.RNG) []graph.NodeID {
	nbrs := e.g.Neighbors(id)
	if len(nbrs) == 0 {
		return nil
	}
	rep := e.shardOf(id).pick()
	rep.requests.Add(1)

	rep.mu.Lock()
	tab, ok := rep.tables[id]
	if !ok {
		weights := make([]float64, len(nbrs))
		for i, edge := range nbrs {
			weights[i] = float64(edge.Weight)
		}
		var err error
		tab, err = alias.New(weights)
		if err != nil {
			// All-zero weights: degrade to uniform.
			for i := range weights {
				weights[i] = 1
			}
			tab = alias.MustNew(weights)
		}
		rep.tables[id] = tab
	}
	rep.mu.Unlock()

	out := make([]graph.NodeID, k)
	for i := range out {
		out[i] = nbrs[tab.Sample(r)].To
	}
	return out
}

// Stats reports per-replica request counts, flattened shard-major.
type Stats struct {
	Shards, Replicas int
	RequestsPerRep   []int64
	CachedTables     int
}

// Stats snapshots load counters.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: len(e.shards), Replicas: e.replicas}
	for _, s := range e.shards {
		for _, rep := range s.replicas {
			st.RequestsPerRep = append(st.RequestsPerRep, rep.requests.Load())
			rep.mu.Lock()
			st.CachedTables += len(rep.tables)
			rep.mu.Unlock()
		}
	}
	return st
}
