// Package engine is the distributed graph engine of §VI (the Euler
// stand-in): a partitioned, replicated graph store. The graph is split by
// internal/partition into disjoint per-shard CSR slices; each shard owns
// its partition's offsets, edges, feature/content rows and per-adjacency
// alias tables (built in parallel at New), and serves reads only for the
// nodes it owns. Replicas multiply a shard's read throughput and carry
// only atomic load counters.
//
// The Engine itself is the routing layer: a single-node call is directed
// to the owning shard with one arithmetic or array-index lookup, and
// multi-node calls (cache refresh batches, SampleTree frontiers) are
// scatter-gathered so each shard is visited exactly once per batch. Both
// the Engine and the in-process Shard implement GraphService, and the
// Engine holds its per-shard stores behind the ShardBackend interface —
// the seam where an RPC-backed shard plugs in (internal/rpc.RemoteShard):
// NewWithBackends accepts any mix of local *Shards and remote stubs, and
// each per-shard batch visit maps onto exactly one RPC round trip.
//
// The hot path is lock- and allocation-free: routing is O(1) arithmetic,
// every shard's alias arrays are immutable after New and read without
// locks, and SampleNeighborsInto / SampleNeighborsBatchInto write into
// caller-owned buffers. Shards either live in-process (each replica an
// independently counted region, as in the single-box benchmarks) or on
// separate shard servers over TCP, exactly as in the paper's deployment.
//
// Error contract: batch calls (SampleNeighborsBatchInto, SampleTree) and
// TrySampleNeighborsInto return transport failures as typed errors with
// no partial-result corruption. The error-free GraphService surface
// (Neighbors, Features, Content, SampleNeighborsInto) panics on a remote
// transport failure — it exists for in-process use and for healthy
// clusters; fault-tolerant callers go through the error-returning calls.
package engine

import (
	"fmt"
	"runtime"
	"sync"

	"zoomer/internal/graph"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// GraphService is the read surface of one graph store: weighted neighbor
// sampling plus the node attribute reads the samplers and the serving
// embedder need. The in-process *Shard implements it over its partition;
// *Engine implements it as the routing layer over all shards. An
// RPC-backed shard implements the same four methods over the wire (plus,
// in practice, a batch sampling call mirroring SampleNeighborsBatchInto).
type GraphService interface {
	SampleNeighborsInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) int
	Neighbors(id graph.NodeID) []graph.Edge
	Features(id graph.NodeID) []int32
	Content(id graph.NodeID) tensor.Vec
}

// ShardBackend is one partition's store as the routing layer sees it:
// the GraphService read surface with explicit error returns (a remote
// store can fail; the in-process *Shard never does) plus the group call
// the scatter-gather batch path issues — one SampleBatchInto per owning
// shard per batch, which an RPC backend serves in one round trip.
//
// SampleBatchInto's contract: entry j is node gids[j] at global batch
// index idx[j]; its k draws go to out[idx[j]*k:(idx[j]+1)*k] and its
// count (k, or 0 for an isolated node) to ns[idx[j]], drawing from the
// sub-stream derived from (base, idx[j]) so results are bit-identical
// however entries are grouped. On error the backend's writes to out/ns
// are unspecified; the Engine re-zeroes ns before surfacing the error.
type ShardBackend interface {
	SampleInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) (int, error)
	SampleBatchInto(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) (int, error)
	NeighborsOf(id graph.NodeID) ([]graph.Edge, error)
	FeaturesOf(id graph.NodeID) ([]int32, error)
	ContentOf(id graph.NodeID) (tensor.Vec, error)
}

// BatchStarter is optionally implemented by backends that can issue a
// scatter-gather visit without blocking for its result — the seam the
// parallel batch path prefers: the caller starts every remote group
// back-to-back, so the visits overlap on the wire with no goroutine
// handoff at all, then collects them in shard order. Arguments are
// exactly SampleBatchInto's; the visit's writes land in the same
// disjoint out/ns regions. The returned handle must always be awaited —
// the backend may still be writing into out/ns until AwaitBatch returns.
type BatchStarter interface {
	StartSampleBatch(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) BatchHandle
}

// BatchHandle is one in-flight started visit. AwaitBatch blocks until
// the visit completes and reports it exactly as SampleBatchInto would
// (including the retry-once and typed-failure semantics of a remote
// backend). A handle may additionally report Started() false, meaning
// the backend could not put the visit on the wire without blocking (its
// connection window was full) and AwaitBatch will issue the whole call
// synchronously; the batch path awaits all started handles — releasing
// the window capacity this caller holds — before awaiting those.
type BatchHandle interface {
	AwaitBatch() (int, error)
}

// batchStarted is the optional Started() facet of a BatchHandle.
type batchStarted interface{ Started() bool }

// handleStarted reports whether a handle's visit is already on the wire
// (true for handles that do not expose the facet).
func handleStarted(h BatchHandle) bool {
	if s, ok := h.(batchStarted); ok {
		return s.Started()
	}
	return true
}

// BackendStats is optionally implemented by backends that can report
// their served-request count and partition size (remote stubs do, from
// their client-side counter and the server handshake); Stats folds these
// into its per-shard view.
type BackendStats interface {
	Requests() int64
	ShardSize() (nodes, edges int)
}

// Both the routing layer and the in-process shard serve the same surface,
// and the in-process shard is a (never-failing) backend.
var (
	_ GraphService = (*Engine)(nil)
	_ GraphService = (*Shard)(nil)
	_ ShardBackend = (*Shard)(nil)
)

// Config sizes the engine.
type Config struct {
	Shards   int                // graph partitions (capacity axis)
	Replicas int                // copies per shard (throughput axis)
	Strategy partition.Strategy // node-to-shard assignment
}

// DefaultConfig mirrors a small production deployment.
func DefaultConfig() Config { return Config{Shards: 4, Replicas: 2, Strategy: partition.Hash} }

// Engine is the routing layer over the per-shard stores.
type Engine struct {
	g        *graph.Graph // nil when every backend is remote
	routing  *partition.Routing
	backends []ShardBackend
	locals   []*Shard // locals[i] non-nil iff backends[i] is in-process
	replicas int

	numNodes   int
	contentDim int

	// Parallel scatter-gather state (engines with remote backends only):
	// a lazily started, bounded pool of fan-out workers that dispatch a
	// batch's per-shard visits concurrently, plus lifecycle guards.
	hasRemote  bool
	fanoutOnce sync.Once
	fanoutCh   chan visitJob
	closeOnce  sync.Once
}

// visitJob is one per-shard batch visit handed to a fan-out worker. The
// result lands in res (owned by the caller's BatchScratch) and wg is the
// caller's completion barrier — the job struct itself travels by value
// through the channel, so dispatch allocates nothing.
type visitJob struct {
	be   ShardBackend
	gids []graph.NodeID
	idx  []int32
	base uint64
	k    int
	out  []graph.NodeID
	ns   []int32
	res  *visitRes
	wg   *sync.WaitGroup
}

// visitRes is one visit's outcome slot.
type visitRes struct {
	n   int
	err error
}

// maxFanoutWorkers bounds the shared fan-out pool; visits are
// network-bound, so the pool is sized for overlap, not CPU.
const maxFanoutWorkers = 64

// startFanout lazily starts the bounded worker pool that overlaps remote
// shard visits. Sized so one batch spanning every shard fans out fully
// and a few callers overlap, capped to keep goroutine count bounded.
func (e *Engine) startFanout() {
	e.fanoutOnce.Do(func() {
		n := 4 * len(e.backends)
		if n < 4 {
			n = 4
		}
		if n > maxFanoutWorkers {
			n = maxFanoutWorkers
		}
		e.fanoutCh = make(chan visitJob, n)
		for i := 0; i < n; i++ {
			go func() {
				for j := range e.fanoutCh {
					j.res.n, j.res.err = j.be.SampleBatchInto(j.gids, j.idx, j.base, j.k, j.out, j.ns)
					j.wg.Done()
				}
			}()
		}
	})
}

// Close stops the fan-out workers of an engine with remote backends (a
// no-op for local-only engines, which never start any). Safe to call
// more than once, but must not race in-flight batch calls — quiesce
// callers first, as rpc.Cluster.Close (which calls it for engines it
// assembled) does at teardown.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		// Ensure fanoutOnce is spent so no worker pool can start after
		// the channel close decision.
		e.fanoutOnce.Do(func() {})
		if e.fanoutCh != nil {
			close(e.fanoutCh)
		}
	})
}

// New partitions g and builds one in-process store per shard,
// precomputing every owned adjacency's alias table into the shard's flat
// arrays with a worker pool (up to GOMAXPROCS across all shards). It
// panics on non-positive shard or replica counts.
func New(g *graph.Graph, cfg Config) *Engine {
	if cfg.Shards <= 0 || cfg.Replicas <= 0 {
		panic(fmt.Sprintf("engine: invalid config %+v", cfg))
	}
	part := partition.Split(g, cfg.Shards, cfg.Strategy)
	e := &Engine{
		g:          g,
		routing:    part.RoutingTable(),
		replicas:   cfg.Replicas,
		numNodes:   g.NumNodes(),
		contentDim: g.ContentDim(),
	}
	e.locals = make([]*Shard, cfg.Shards)
	e.backends = make([]ShardBackend, cfg.Shards)
	for i := range e.locals {
		e.locals[i] = newShard(i, part, cfg.Replicas)
		e.backends[i] = e.locals[i]
	}
	buildShardTables(e.locals)
	return e
}

// NewWithBackends assembles the routing layer over pre-built stores — any
// mix of in-process *Shards (BuildShard) and remote stubs
// (internal/rpc.RemoteShard). routing is the partition's table (fetched
// from a shard server or built locally); contentDim describes the graph
// behind the backends (reported by the server handshake). The engine has
// no local *graph.Graph: Graph() returns nil and whole-graph offline
// access is unavailable, exactly as for a serving client in the paper's
// deployment.
func NewWithBackends(routing *partition.Routing, backends []ShardBackend, contentDim int) *Engine {
	if routing.NumShards() != len(backends) {
		panic(fmt.Sprintf("engine: %d backends for %d shards", len(backends), routing.NumShards()))
	}
	e := &Engine{
		routing:    routing,
		backends:   backends,
		locals:     make([]*Shard, len(backends)),
		replicas:   1,
		numNodes:   routing.NumNodes(),
		contentDim: contentDim,
	}
	for i, be := range backends {
		if s, ok := be.(*Shard); ok {
			e.locals[i] = s
			if len(s.replicas) > e.replicas {
				e.replicas = len(s.replicas)
			}
		} else {
			e.hasRemote = true
		}
	}
	return e
}

// BuildShard constructs the in-process store for one partition of part
// and precomputes its alias tables (parallel across GOMAXPROCS chunks).
// Shard servers use it to build only the partitions they own.
func BuildShard(part *partition.Partition, id, replicas int) *Shard {
	if id < 0 || id >= part.NumShards() || replicas <= 0 {
		panic(fmt.Sprintf("engine: BuildShard(%d, %d) of %d shards", id, replicas, part.NumShards()))
	}
	s := newShard(id, part, replicas)
	buildShardTables([]*Shard{s})
	return s
}

// buildShardTables precomputes the given shards' alias arrays
// concurrently: shards build in parallel, and a shard's node range is
// further chunked so the pool keeps GOMAXPROCS workers busy even with few
// shards.
func buildShardTables(shards []*Shard) {
	chunksPer := 1
	if p := runtime.GOMAXPROCS(0); p > len(shards) {
		chunksPer = (p + len(shards) - 1) / len(shards)
	}
	var wg sync.WaitGroup
	for _, s := range shards {
		n := s.store.NumNodes()
		chunk := (n + chunksPer - 1) / chunksPer
		if chunk < 1 {
			chunk = 1
		}
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(s *Shard, lo, hi int) {
				defer wg.Done()
				s.buildTables(lo, hi)
			}(s, lo, hi)
		}
	}
	wg.Wait()
}

// Graph returns the underlying immutable graph (whole-graph metadata and
// offline access; serving reads go through the shards). It is nil for an
// engine assembled over remote backends.
func (e *Engine) Graph() *graph.Graph { return e.g }

// NumNodes returns the total node count across all shards.
func (e *Engine) NumNodes() int { return e.numNodes }

// ContentDim returns the dimensionality of content vectors.
func (e *Engine) ContentDim() int { return e.contentDim }

// NumShards returns the number of partitions.
func (e *Engine) NumShards() int { return len(e.backends) }

// Routing returns the node-to-shard routing table.
func (e *Engine) Routing() *partition.Routing { return e.routing }

// ShardOf returns the index of the shard owning id — the routing lookup,
// O(1) arithmetic (hash partitioning) or one array read (degree-balanced).
func (e *Engine) ShardOf(id graph.NodeID) int { return e.routing.Owner(id) }

// Shard returns the in-process store for one partition, nil when that
// partition is served by a remote backend.
func (e *Engine) Shard(i int) *Shard { return e.locals[i] }

// Backend returns partition i's store as the routing layer holds it.
func (e *Engine) Backend(i int) ShardBackend { return e.backends[i] }

// must surfaces a backend failure on the error-free GraphService surface;
// see the package comment's error contract.
func must[T any](v T, err error) T {
	if err != nil {
		panic(fmt.Sprintf("engine: remote backend failed on the error-free GraphService surface: %v", err))
	}
	return v
}

// Neighbors returns the adjacency list of id, read from its owning
// shard's CSR slice (an immutable view in-process; a decoded copy from a
// remote backend).
func (e *Engine) Neighbors(id graph.NodeID) []graph.Edge {
	return must(e.backends[e.routing.Owner(id)].NeighborsOf(id))
}

// Content returns the node's content vector from its owning shard.
func (e *Engine) Content(id graph.NodeID) tensor.Vec {
	return must(e.backends[e.routing.Owner(id)].ContentOf(id))
}

// Features returns the node's categorical features from its owning shard.
func (e *Engine) Features(id graph.NodeID) []int32 {
	return must(e.backends[e.routing.Owner(id)].FeaturesOf(id))
}

// SampleNeighbors draws k neighbors of id with replacement, weighted by
// edge weight, in O(1) per draw via the owning shard's precomputed alias
// table. An isolated node yields nil.
func (e *Engine) SampleNeighbors(id graph.NodeID, k int, r *rng.RNG) []graph.NodeID {
	if k <= 0 {
		return nil
	}
	if sh := e.locals[e.routing.Owner(id)]; sh != nil && sh.degree(id) == 0 {
		return nil // skip the allocation for a local isolated node
	}
	out := make([]graph.NodeID, k)
	if n := e.SampleNeighborsInto(id, out, r); n == 0 {
		return nil
	}
	return out
}

// SampleNeighborsInto routes to the owning shard and fills out with
// weighted neighbor draws of id (with replacement), returning the number
// written: len(out), or 0 for an isolated node. Over in-process shards it
// performs no heap allocation and takes no locks — the steady-state
// serving path; over a remote backend it is one RPC round trip.
func (e *Engine) SampleNeighborsInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) int {
	return must(e.backends[e.routing.Owner(id)].SampleInto(id, out, r))
}

// TrySampleNeighborsInto is SampleNeighborsInto surfacing transport
// failures instead of panicking: on error 0 draws are reported, out is
// unspecified and r is not consumed. The serving cache's synchronous miss
// path uses it to degrade to an empty neighbor set during a shard outage.
func (e *Engine) TrySampleNeighborsInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) (int, error) {
	return e.backends[e.routing.Owner(id)].SampleInto(id, out, r)
}

// Stats reports per-replica and per-shard request counts plus the static
// partition shape.
type Stats struct {
	Shards, Replicas int
	RequestsPerRep   []int64 // flattened shard-major
	RequestsPerShard []int64
	NodesPerShard    []int
	EdgesPerShard    []int
	// Imbalance is max/mean over RequestsPerShard (1 = perfectly even,
	// 0 when no requests have been served).
	Imbalance    float64
	CachedTables int
}

// Stats snapshots load counters. CachedTables counts the precomputed
// per-adjacency tables (every owned node with degree > 0) of in-process
// shards. A remote shard contributes its client-side request counter as a
// single replica and the partition size its server reported (zeros when
// the backend implements neither).
func (e *Engine) Stats() Stats {
	st := Stats{Shards: len(e.backends), Replicas: e.replicas}
	var total, maxShard int64
	for i, be := range e.backends {
		var perShard int64
		var nodes, edges int
		if s := e.locals[i]; s != nil {
			for _, rep := range s.replicas {
				c := rep.requests.Load()
				st.RequestsPerRep = append(st.RequestsPerRep, c)
				perShard += c
			}
			nodes, edges = s.store.NumNodes(), s.store.NumEdges()
			st.CachedTables += s.Tables()
		} else if bs, ok := be.(BackendStats); ok {
			perShard = bs.Requests()
			st.RequestsPerRep = append(st.RequestsPerRep, perShard)
			nodes, edges = bs.ShardSize()
		} else {
			st.RequestsPerRep = append(st.RequestsPerRep, 0)
		}
		st.RequestsPerShard = append(st.RequestsPerShard, perShard)
		st.NodesPerShard = append(st.NodesPerShard, nodes)
		st.EdgesPerShard = append(st.EdgesPerShard, edges)
		total += perShard
		if perShard > maxShard {
			maxShard = perShard
		}
	}
	if total > 0 {
		mean := float64(total) / float64(len(e.backends))
		st.Imbalance = float64(maxShard) / mean
	}
	return st
}
