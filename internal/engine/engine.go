// Package engine is the distributed graph engine of §VI (the Euler
// stand-in): a partitioned, replicated graph store. The graph is split by
// internal/partition into disjoint per-shard CSR slices; each shard owns
// its partition's offsets, edges, feature/content rows and per-adjacency
// alias tables (built in parallel at New), and serves reads only for the
// nodes it owns. Replicas multiply a shard's read throughput and carry
// only atomic load counters.
//
// The Engine itself is the routing layer: a single-node call is directed
// to the owning shard with one arithmetic or array-index lookup, and
// multi-node calls (cache refresh batches, SampleTree frontiers) are
// scatter-gathered so each shard is visited exactly once per batch. Both
// the Engine and the in-process Shard implement GraphService, and the
// Engine holds its per-shard stores behind the ShardBackend interface —
// the seam where an RPC-backed shard plugs in (internal/rpc.RemoteShard):
// NewWithBackends accepts any mix of local *Shards and remote stubs, and
// each per-shard batch visit maps onto exactly one RPC round trip.
//
// The hot path is lock- and allocation-free: routing is O(1) arithmetic,
// every shard's alias arrays are immutable after New and read without
// locks, and SampleNeighborsInto / SampleNeighborsBatchInto write into
// caller-owned buffers. Shards either live in-process (each replica an
// independently counted region, as in the single-box benchmarks) or on
// separate shard servers over TCP, exactly as in the paper's deployment.
//
// Shard ownership is dynamic: the Engine publishes its per-shard
// backends as an immutable set behind an atomic, epoch-checked pointer,
// so a live handoff (a partition migrating between shard servers) swaps
// the set with InstallBackends while the hot path keeps reading it with
// a single load. In-flight calls complete against the set they loaded;
// a call that lands on a drained shard gets the typed ErrWrongEpoch
// redirect, which triggers the installed RefreshFunc once and a bounded
// retry — handoffs never surface to callers (see docs/ARCHITECTURE.md).
//
// Error contract: batch calls (SampleNeighborsBatchInto, SampleTree) and
// TrySampleNeighborsInto return transport failures as typed errors with
// no partial-result corruption. The error-free GraphService surface
// (Neighbors, Features, Content, SampleNeighborsInto) panics on a remote
// transport failure — it exists for in-process use and for healthy
// clusters; fault-tolerant callers go through the error-returning calls.
package engine

import (
	"errors"
	"fmt"

	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"zoomer/internal/ingest"

	"zoomer/internal/graph"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// ErrWrongEpoch is the typed redirect a backend returns when a request
// lands on a server that has drained the partition (or never owned it):
// the caller's shard-ownership view is stale. The engine reacts by
// running its installed RefreshFunc once and retrying the call against
// the refreshed backends, so a planned shard handoff never surfaces to
// callers; backends wrap this error (check with errors.Is).
var ErrWrongEpoch = errors.New("engine: shard ownership moved (stale routing epoch)")

// ErrShardUnavailable is the typed transport failure a backend returns
// when its store could not be reached at all: the server is down, the
// connection died mid-call, or the client-side failure circuit refused
// the call. It lives here (rather than in the RPC package that produces
// it) because the routing layer's failover policy keys on it: a
// transport failure moves the call to the next replica of the partition,
// while every other error passes through untouched. internal/rpc aliases
// it as rpc.ErrShardUnavailable; check with errors.Is at any layer.
var ErrShardUnavailable = errors.New("shard unavailable (transport failure)")

// ErrDeadlineExceeded is the typed per-call deadline failure: the
// caller's budget for this request ran out before (or while) the owning
// shard answered. It is not a transport failure — the shard may be
// perfectly healthy — so it neither trips the client health circuit nor
// triggers replica failover or an ownership refresh: the deadline bounds
// the whole call, and the only correct reaction is to stop spending on
// it. The serving tier's admission control keys on this sentinel to
// degrade a request (cache-only answer, typed HTTP 504) instead of
// queueing into collapse; check with errors.Is at any layer.
var ErrDeadlineExceeded = errors.New("engine: per-call deadline exceeded")

// ErrNoReplicas is the zero-healthy-replicas condition: every replica of
// one partition failed at the transport level in a single call, so the
// partition is effectively down. Errors matching it also match
// ErrShardUnavailable (through the last transport failure they wrap), so
// existing availability checks keep firing; the extra identity lets
// operators distinguish "one replica died and failover absorbed it"
// (never surfaced) from "the whole partition is dark" (surfaced, typed).
var ErrNoReplicas = errors.New("engine: no healthy replica for shard")

// replicasExhaustedError reports that every replica of a partition
// failed under one call. It matches ErrNoReplicas via Is and unwraps to
// the last transport failure, so errors.Is sees both identities.
type replicasExhaustedError struct {
	shard    int
	replicas int
	last     error
}

func (e *replicasExhaustedError) Error() string {
	return fmt.Sprintf("engine: shard %d: all %d replicas unavailable: %v", e.shard, e.replicas, e.last)
}
func (e *replicasExhaustedError) Is(target error) bool { return target == ErrNoReplicas }
func (e *replicasExhaustedError) Unwrap() error        { return e.last }

// retryable reports whether a failed call should refresh the ownership
// view and retry: the shard moved under a live handoff (wrong epoch), or
// its replicas are all unreachable — in which case a refresh may rebind
// the partition to servers that joined the cluster since this view was
// installed (dynamic membership), absorbing a full replica-set loss the
// same way a handoff is absorbed.
func retryable(err error) bool {
	return errors.Is(err, ErrWrongEpoch) || errors.Is(err, ErrShardUnavailable)
}

// GraphService is the read surface of one graph store: weighted neighbor
// sampling plus the node attribute reads the samplers and the serving
// embedder need. The in-process *Shard implements it over its partition;
// *Engine implements it as the routing layer over all shards. An
// RPC-backed shard implements the same four methods over the wire (plus,
// in practice, a batch sampling call mirroring SampleNeighborsBatchInto).
type GraphService interface {
	SampleNeighborsInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) int
	Neighbors(id graph.NodeID) []graph.Edge
	Features(id graph.NodeID) []int32
	Content(id graph.NodeID) tensor.Vec
}

// ShardBackend is one partition's store as the routing layer sees it:
// the GraphService read surface with explicit error returns (a remote
// store can fail; the in-process *Shard never does) plus the group call
// the scatter-gather batch path issues — one SampleBatchInto per owning
// shard per batch, which an RPC backend serves in one round trip.
//
// SampleBatchInto's contract: entry j is node gids[j] at global batch
// index idx[j]; its k draws go to out[idx[j]*k:(idx[j]+1)*k] and its
// count (k, or 0 for an isolated node) to ns[idx[j]], drawing from the
// sub-stream derived from (base, idx[j]) so results are bit-identical
// however entries are grouped. On error the backend's writes to out/ns
// are unspecified; the Engine re-zeroes ns before surfacing the error.
type ShardBackend interface {
	SampleInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) (int, error)
	SampleBatchInto(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) (int, error)
	NeighborsOf(id graph.NodeID) ([]graph.Edge, error)
	FeaturesOf(id graph.NodeID) ([]int32, error)
	ContentOf(id graph.NodeID) (tensor.Vec, error)
}

// BatchStarter is optionally implemented by backends that can issue a
// scatter-gather visit without blocking for its result — the seam the
// parallel batch path prefers: the caller starts every remote group
// back-to-back, so the visits overlap on the wire with no goroutine
// handoff at all, then collects them in shard order. Arguments are
// exactly SampleBatchInto's; the visit's writes land in the same
// disjoint out/ns regions. The returned handle must always be awaited —
// the backend may still be writing into out/ns until AwaitBatch returns.
type BatchStarter interface {
	StartSampleBatch(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) BatchHandle
}

// BatchHandle is one in-flight started visit. AwaitBatch blocks until
// the visit completes and reports it exactly as SampleBatchInto would
// (including the retry-once and typed-failure semantics of a remote
// backend). A handle may additionally report Started() false, meaning
// the backend could not put the visit on the wire without blocking (its
// connection window was full) and AwaitBatch will issue the whole call
// synchronously; the batch path awaits all started handles — releasing
// the window capacity this caller holds — before awaiting those.
type BatchHandle interface {
	AwaitBatch() (int, error)
}

// batchStarted is the optional Started() facet of a BatchHandle.
type batchStarted interface{ Started() bool }

// handleStarted reports whether a handle's visit is already on the wire
// (true for handles that do not expose the facet).
func handleStarted(h BatchHandle) bool {
	if s, ok := h.(batchStarted); ok {
		return s.Started()
	}
	return true
}

// BackendStats is optionally implemented by backends that can report
// their served-request count and partition size (remote stubs do, from
// their client-side counter and the server handshake); Stats folds these
// into its per-shard view.
type BackendStats interface {
	Requests() int64
	ShardSize() (nodes, edges int)
}

// DeadlineSampler is optionally implemented by backends that can bound
// one single-sample read by an absolute per-call deadline — the seam the
// serving tier's request deadlines travel through. The RPC stub
// implements it by shrinking its per-call I/O timers to the remaining
// budget (rpc.ClientConfig.Timeout stays the ceiling); the in-process
// Shard does not need to (a local read cannot block), so the engine
// falls back to the plain SampleInto for backends without the facet
// after checking the deadline itself. The contract matches SampleInto's
// with one addition: a deadline failure reports 0 draws, wraps
// ErrDeadlineExceeded, and must not consume r.
type DeadlineSampler interface {
	SampleIntoBy(id graph.NodeID, out []graph.NodeID, r *rng.RNG, deadline time.Time) (int, error)
}

// HealthReporter is optionally implemented by backends that track their
// transport health (the RPC stub does, from its client's consecutive-
// failure circuit). The replica pick consults it so steady-state traffic
// flows around a replica whose circuit is open instead of paying a
// failed attempt per call; a backend without the facet is always
// considered healthy. When every replica of a group reports unhealthy
// the pick falls through to the rotation slot unchanged, so the circuit's
// single-probe recovery path still sees traffic.
type HealthReporter interface{ Healthy() bool }

// Both the routing layer and the in-process shard serve the same surface,
// and the in-process shard is a (never-failing) backend.
var (
	_ GraphService = (*Engine)(nil)
	_ GraphService = (*Shard)(nil)
	_ ShardBackend = (*Shard)(nil)
)

// Config sizes the engine.
type Config struct {
	Shards   int                // graph partitions (capacity axis)
	Replicas int                // copies per shard (throughput axis)
	Strategy partition.Strategy // node-to-shard assignment
	// Locality renumbers each shard's rows in BFS order over its induced
	// subgraph (partition.Options.Locality) so co-sampled adjacencies sit
	// in adjacent CSR and alias rows. Draw-for-draw identical to the
	// ascending-id layout — only memory order changes.
	Locality bool
}

// DefaultConfig mirrors a small production deployment.
func DefaultConfig() Config {
	return Config{Shards: 4, Replicas: 2, Strategy: partition.Hash, Locality: true}
}

// backendSet is one immutable view of shard ownership: which stores
// serve each partition right now. Every partition has a replica group —
// one or more interchangeable backends at the same epoch (N-way server
// replication; any of them serves a read bit-identically, because draws
// happen shard-side from request-carried state). The Engine publishes
// the set behind an atomic pointer so the hot path reads it with a
// single load — no lock — and a live handoff installs a whole new set in
// one store. A caller that loaded a set keeps using it for the duration
// of its call: in-flight batches complete against the backends they
// started on, and only the next call observes the swap.
//
// The per-partition cursors are the only mutable state: rotation
// counters for the load-aware replica pick, deliberately inside the set
// (not the Engine) so a pick never dereferences a group from one view
// with a cursor sized for another.
type backendSet struct {
	epoch     uint64           // local install counter; bumps on every swap
	groups    [][]ShardBackend // replica group per partition, never empty
	backends  []ShardBackend   // groups[i][0]; the single-owner accessors' view
	locals    []*Shard         // locals[i] non-nil iff partition i is one in-process shard
	hasRemote bool
	cursors   []atomic.Uint32 // per-partition replica rotation
}

// pick returns the index within partition si's replica group to try
// first: round-robin rotation over the group, skipping replicas whose
// failure circuit reports unhealthy. When every replica is unhealthy the
// rotation slot is returned unchanged — exactly one caller at a time
// probes an open circuit; the rest fail fast inside the backend and fail
// over here.
func (set *backendSet) pick(si int, g []ShardBackend) int {
	start := int(set.cursors[si].Add(1)) % len(g)
	for t := 0; t < len(g); t++ {
		i := start + t
		if i >= len(g) {
			i -= len(g)
		}
		if h, ok := g[i].(HealthReporter); !ok || h.Healthy() {
			return i
		}
	}
	return start
}

// deadlinePassed reports whether a non-zero per-call deadline has
// elapsed. The zero deadline (the plain, unbounded call) never reads the
// clock, so the deadline-free hot path pays one branch, not a syscall.
func deadlinePassed(deadline time.Time) bool {
	return !deadline.IsZero() && !time.Now().Before(deadline)
}

// sampleOne issues one single-sample attempt against one backend,
// threading the per-call deadline through the DeadlineSampler facet when
// the backend has it. A zero deadline always takes the plain call.
func sampleOne(be ShardBackend, id graph.NodeID, out []graph.NodeID, r *rng.RNG, deadline time.Time) (int, error) {
	if !deadline.IsZero() {
		if ds, ok := be.(DeadlineSampler); ok {
			return ds.SampleIntoBy(id, out, r, deadline)
		}
	}
	return be.SampleInto(id, out, r)
}

// sampleShard runs one replicated single-sample read against partition
// si of this view: the picked replica first, then — on a transport
// failure — each surviving replica in turn. Failover is invisible to the
// caller and bit-exact: a failed attempt never consumes r (the
// ShardBackend contract), so the retry on a sibling replica draws from
// identical state. failover reports whether any replica failed under
// this call, so the caller can kick an asynchronous ownership refresh
// that rebinds the dead replica out of the view. A non-zero deadline
// bounds the whole replicated read: it is checked before each failover
// attempt (walking the rotation must not multiply an exhausted budget)
// and threaded into deadline-capable backends.
func (set *backendSet) sampleShard(si int, id graph.NodeID, out []graph.NodeID, r *rng.RNG, deadline time.Time) (n int, failover bool, err error) {
	g := set.groups[si]
	if len(g) == 1 {
		n, err = sampleOne(g[0], id, out, r, deadline)
		return n, false, err
	}
	start := set.pick(si, g)
	for t := 0; t < len(g); t++ {
		i := start + t
		if i >= len(g) {
			i -= len(g)
		}
		if t > 0 && deadlinePassed(deadline) {
			return 0, true, fmt.Errorf("engine: shard %d failover: %w", si, ErrDeadlineExceeded)
		}
		n, err = sampleOne(g[i], id, out, r, deadline)
		if err == nil || !errors.Is(err, ErrShardUnavailable) {
			return n, t > 0, err
		}
	}
	return 0, true, &replicasExhaustedError{shard: si, replicas: len(g), last: err}
}

// visitShard is sampleShard for one scatter-gather batch visit: same
// replica rotation, same transport-failover loop. Safe for the same
// reason batches are deterministic at all — the visit's draws derive
// from (base, entry index) carried in the request, and a failed visit's
// writes to out/ns are fully overwritten by the retried one (same
// disjoint regions).
func (set *backendSet) visitShard(si int, gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) (n int, failover bool, err error) {
	g := set.groups[si]
	if len(g) == 1 {
		n, err = g[0].SampleBatchInto(gids, idx, base, k, out, ns)
		return n, false, err
	}
	start := set.pick(si, g)
	for t := 0; t < len(g); t++ {
		i := start + t
		if i >= len(g) {
			i -= len(g)
		}
		n, err = g[i].SampleBatchInto(gids, idx, base, k, out, ns)
		if err == nil || !errors.Is(err, ErrShardUnavailable) {
			return n, t > 0, err
		}
	}
	return 0, true, &replicasExhaustedError{shard: si, replicas: len(g), last: err}
}

// RefreshFunc re-resolves shard ownership after a wrong-epoch redirect,
// typically by querying every shard server's routing epoch and calling
// InstallBackends with the new binding (internal/rpc's Cluster installs
// exactly that). It must be safe to call from multiple engine paths; the
// engine itself single-flights it per stale snapshot.
type RefreshFunc func() error

// Engine is the routing layer over the per-shard stores.
type Engine struct {
	g        *graph.Graph // nil when every backend is remote
	routing  *partition.Routing
	bset     atomic.Pointer[backendSet] // current shard-ownership view
	replicas int

	numNodes   int
	contentDim int

	// Ownership refresh state: the installed refresher and the lock that
	// single-flights it (never taken on the hot path — only after a
	// wrong-epoch redirect or a replica failover). refreshFailedAt
	// (guarded by refreshMu) is the bounded-backoff half of failover: a
	// failed refresh is not re-attempted within refreshFailCooldown, so a
	// burst of calls against a dark partition degrades fast and typed
	// instead of hammering the ownership poll. refreshKick single-flights
	// the asynchronous refresh a successful failover schedules.
	refreshMu       sync.Mutex
	refreshFn       RefreshFunc
	refreshFailedAt time.Time
	refreshKick     atomic.Bool

	// Parallel scatter-gather state (engines with remote backends only):
	// a lazily started, bounded pool of fan-out workers that dispatch a
	// batch's per-shard visits concurrently, plus lifecycle guards.
	fanoutOnce sync.Once
	fanoutCh   chan visitJob
	closeOnce  sync.Once
}

// visitJob is one per-shard batch visit handed to a fan-out worker. The
// result lands in res (owned by the caller's BatchScratch) and wg is the
// caller's completion barrier — the job struct itself travels by value
// through the channel, so dispatch allocates nothing.
type visitJob struct {
	be   ShardBackend
	gids []graph.NodeID
	idx  []int32
	base uint64
	k    int
	out  []graph.NodeID
	ns   []int32
	res  *visitRes
	wg   *sync.WaitGroup
}

// visitRes is one visit's outcome slot.
type visitRes struct {
	n   int
	err error
}

// maxFanoutWorkers bounds the shared fan-out pool; visits are
// network-bound, so the pool is sized for overlap, not CPU.
const maxFanoutWorkers = 64

// startFanout lazily starts the bounded worker pool that overlaps remote
// shard visits. Sized so one batch spanning every shard fans out fully
// and a few callers overlap, capped to keep goroutine count bounded.
func (e *Engine) startFanout() {
	e.fanoutOnce.Do(func() {
		n := 4 * e.routing.NumShards()
		if n < 4 {
			n = 4
		}
		if n > maxFanoutWorkers {
			n = maxFanoutWorkers
		}
		e.fanoutCh = make(chan visitJob, n)
		for i := 0; i < n; i++ {
			go func() {
				for j := range e.fanoutCh {
					j.res.n, j.res.err = j.be.SampleBatchInto(j.gids, j.idx, j.base, j.k, j.out, j.ns)
					j.wg.Done()
				}
			}()
		}
	})
}

// Close stops the fan-out workers of an engine with remote backends (a
// no-op for local-only engines, which never start any). Safe to call
// more than once, but must not race in-flight batch calls — quiesce
// callers first, as rpc.Cluster.Close (which calls it for engines it
// assembled) does at teardown.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		// Ensure fanoutOnce is spent so no worker pool can start after
		// the channel close decision.
		e.fanoutOnce.Do(func() {})
		if e.fanoutCh != nil {
			close(e.fanoutCh)
		}
	})
}

// New partitions g and builds one in-process store per shard,
// precomputing every owned adjacency's alias table into the shard's flat
// arrays with a worker pool (up to GOMAXPROCS across all shards). It
// panics on non-positive shard or replica counts.
func New(g *graph.Graph, cfg Config) *Engine {
	if cfg.Shards <= 0 || cfg.Replicas <= 0 {
		panic(fmt.Sprintf("engine: invalid config %+v", cfg))
	}
	part := partition.SplitOpts(g, cfg.Shards, cfg.Strategy, partition.Options{Locality: cfg.Locality})
	e := &Engine{
		g:          g,
		routing:    part.RoutingTable(),
		replicas:   cfg.Replicas,
		numNodes:   g.NumNodes(),
		contentDim: g.ContentDim(),
	}
	locals := make([]*Shard, cfg.Shards)
	backends := make([]ShardBackend, cfg.Shards)
	for i := range locals {
		locals[i] = newShard(i, part, cfg.Replicas)
		backends[i] = locals[i]
	}
	buildShardTables(locals)
	e.bset.Store(newBackendSet(0, backends))
	return e
}

// NewWithBackends assembles the routing layer over pre-built stores — any
// mix of in-process *Shards (BuildShard) and remote stubs
// (internal/rpc.RemoteShard). routing is the partition's table (fetched
// from a shard server or built locally); contentDim describes the graph
// behind the backends (reported by the server handshake). The engine has
// no local *graph.Graph: Graph() returns nil and whole-graph offline
// access is unavailable, exactly as for a serving client in the paper's
// deployment.
func NewWithBackends(routing *partition.Routing, backends []ShardBackend, contentDim int) *Engine {
	groups := make([][]ShardBackend, len(backends))
	for i, be := range backends {
		groups[i] = []ShardBackend{be}
	}
	return NewWithReplicaSets(routing, groups, contentDim)
}

// NewWithReplicaSets is NewWithBackends for an N-way replicated cluster:
// groups[i] holds every interchangeable store of partition i (at least
// one; typically the stubs of every server claiming the partition at the
// current epoch). Reads rotate across a group's healthy members and fail
// over within the group on a transport failure — a single replica death
// is absorbed below the GraphService surface; only a whole group failing
// surfaces, typed (ErrNoReplicas, still matching ErrShardUnavailable).
func NewWithReplicaSets(routing *partition.Routing, groups [][]ShardBackend, contentDim int) *Engine {
	if routing.NumShards() != len(groups) {
		panic(fmt.Sprintf("engine: %d replica groups for %d shards", len(groups), routing.NumShards()))
	}
	e := &Engine{
		routing:    routing,
		replicas:   1,
		numNodes:   routing.NumNodes(),
		contentDim: contentDim,
	}
	set := newReplicaSet(0, groups)
	for i, s := range set.locals {
		if s != nil && len(s.replicas) > e.replicas {
			e.replicas = len(s.replicas)
		}
		if n := len(set.groups[i]); n > e.replicas {
			e.replicas = n
		}
	}
	e.bset.Store(set)
	return e
}

// newBackendSet wraps single-owner backends into one-member replica
// groups — the unreplicated ownership view.
func newBackendSet(epoch uint64, backends []ShardBackend) *backendSet {
	groups := make([][]ShardBackend, len(backends))
	for i := range backends {
		groups[i] = backends[i : i+1 : i+1]
	}
	return newReplicaSet(epoch, groups)
}

// newReplicaSet classifies replica groups into an immutable ownership
// view. Every partition must have at least one backend; the first member
// of each group is its primary (the view of the single-owner accessors).
func newReplicaSet(epoch uint64, groups [][]ShardBackend) *backendSet {
	set := &backendSet{
		epoch:    epoch,
		groups:   groups,
		backends: make([]ShardBackend, len(groups)),
		locals:   make([]*Shard, len(groups)),
		cursors:  make([]atomic.Uint32, len(groups)),
	}
	for i, g := range groups {
		if len(g) == 0 {
			panic(fmt.Sprintf("engine: empty replica group for shard %d", i))
		}
		set.backends[i] = g[0]
		if s, ok := g[0].(*Shard); ok && len(g) == 1 {
			set.locals[i] = s
		}
		for _, be := range g {
			if _, ok := be.(*Shard); !ok {
				set.hasRemote = true
			}
		}
	}
	return set
}

// InstallBackends atomically replaces the engine's per-shard backends —
// the client half of a live shard handoff. backends must have one entry
// per partition of the routing table (the node-to-shard assignment never
// changes; only which store serves a shard does). Calls already in
// flight complete against the set they loaded; every subsequent call
// routes through the new one. The slice is copied; the caller may reuse
// it. Safe for concurrent use: the epoch advances by exactly one per
// install (CAS loop), so concurrent installers never collapse onto one
// epoch.
func (e *Engine) InstallBackends(backends []ShardBackend) {
	if len(backends) != e.routing.NumShards() {
		panic(fmt.Sprintf("engine: InstallBackends with %d backends for %d shards",
			len(backends), e.routing.NumShards()))
	}
	copied := append([]ShardBackend(nil), backends...)
	groups := make([][]ShardBackend, len(copied))
	for i := range copied {
		groups[i] = copied[i : i+1 : i+1]
	}
	e.installSet(newReplicaSet(0, groups))
}

// InstallReplicaSets is InstallBackends for replica groups: it atomically
// replaces the whole N-way binding (rpc.Cluster.Refresh installs the
// claimant set of every partition through it after polling the cluster).
// The outer slice is copied; the inner group slices transfer to the
// engine and must not be mutated afterwards.
func (e *Engine) InstallReplicaSets(groups [][]ShardBackend) {
	if len(groups) != e.routing.NumShards() {
		panic(fmt.Sprintf("engine: InstallReplicaSets with %d groups for %d shards",
			len(groups), e.routing.NumShards()))
	}
	e.installSet(newReplicaSet(0, append([][]ShardBackend(nil), groups...)))
}

func (e *Engine) installSet(set *backendSet) {
	for {
		old := e.bset.Load()
		set.epoch = old.epoch + 1
		if e.bset.CompareAndSwap(old, set) {
			return
		}
	}
}

// SetRefresh installs the ownership refresher the engine runs (once per
// stale view, then retrying the failed call) when a backend answers with
// ErrWrongEpoch. Engines assembled by rpc.DialCluster get one installed
// automatically; without one a wrong-epoch redirect surfaces to the
// caller like any other backend error.
func (e *Engine) SetRefresh(fn RefreshFunc) {
	e.refreshMu.Lock()
	e.refreshFn = fn
	e.refreshMu.Unlock()
}

// Epoch returns the engine's local backend-install counter: 0 at
// construction, +1 per InstallBackends. Tests and monitoring use it to
// observe that a handoff-triggered refresh actually happened.
func (e *Engine) Epoch() uint64 { return e.bset.Load().epoch }

// refreshFailCooldown bounds how often a failing refresher is re-run:
// when a whole partition is dark, every call fails over, exhausts the
// replica group and lands here — one ownership poll per cooldown window
// services the lot, and the rest degrade immediately with the typed
// error. Short enough that a replacement server is adopted within a
// blink of announcing itself.
const refreshFailCooldown = 250 * time.Millisecond

// refresh single-flights the installed refresher after a call against
// stale observed a wrong-epoch redirect or exhausted a replica group. It
// reports whether the caller should retry: true when the ownership view
// changed (by the refresher, or concurrently by another caller's
// refresh), false when no refresher is installed, it failed, or a recent
// failure is still cooling down.
func (e *Engine) refresh(stale *backendSet) bool {
	e.refreshMu.Lock()
	defer e.refreshMu.Unlock()
	if e.bset.Load() != stale {
		return true // another caller already moved the view forward
	}
	if e.refreshFn == nil {
		return false
	}
	if !e.refreshFailedAt.IsZero() && time.Since(e.refreshFailedAt) < refreshFailCooldown {
		return false // bounded backoff: a refresh just failed, don't hammer the poll
	}
	if err := e.refreshFn(); err != nil {
		e.refreshFailedAt = time.Now()
		return false
	}
	e.refreshFailedAt = time.Time{}
	return true
}

// kickRefresh schedules one asynchronous ownership refresh of the given
// view, single-flighted by an atomic flag. The failover paths call it
// after a call succeeded on a sibling replica: the caller already has
// its result, but the view still routes a share of traffic at the dead
// replica — the refresh rebinds the partition to its surviving (and any
// newly joined) claimants without any caller paying the poll latency.
func (e *Engine) kickRefresh(stale *backendSet) {
	if !e.refreshKick.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer e.refreshKick.Store(false)
		e.refresh(stale)
	}()
}

// BuildShard constructs the in-process store for one partition of part
// and precomputes its alias tables (parallel across GOMAXPROCS chunks).
// Shard servers use it to build only the partitions they own.
func BuildShard(part *partition.Partition, id, replicas int) *Shard {
	if id < 0 || id >= part.NumShards() || replicas <= 0 {
		panic(fmt.Sprintf("engine: BuildShard(%d, %d) of %d shards", id, replicas, part.NumShards()))
	}
	s := newShard(id, part, replicas)
	buildShardTables([]*Shard{s})
	return s
}

// buildShardTables precomputes the given shards' alias arrays
// concurrently: shards build in parallel, and a shard's node range is
// further chunked so the pool keeps GOMAXPROCS workers busy even with few
// shards.
func buildShardTables(shards []*Shard) {
	chunksPer := 1
	if p := runtime.GOMAXPROCS(0); p > len(shards) {
		chunksPer = (p + len(shards) - 1) / len(shards)
	}
	var wg sync.WaitGroup
	for _, s := range shards {
		n := s.store.NumNodes()
		chunk := (n + chunksPer - 1) / chunksPer
		if chunk < 1 {
			chunk = 1
		}
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(s *Shard, lo, hi int) {
				defer wg.Done()
				s.buildTables(lo, hi)
			}(s, lo, hi)
		}
	}
	wg.Wait()
}

// Graph returns the underlying immutable graph (whole-graph metadata and
// offline access; serving reads go through the shards). It is nil for an
// engine assembled over remote backends.
func (e *Engine) Graph() *graph.Graph { return e.g }

// NumNodes returns the total node count across all shards.
func (e *Engine) NumNodes() int { return e.numNodes }

// ContentDim returns the dimensionality of content vectors.
func (e *Engine) ContentDim() int { return e.contentDim }

// NumShards returns the number of partitions.
func (e *Engine) NumShards() int { return e.routing.NumShards() }

// Routing returns the node-to-shard routing table.
func (e *Engine) Routing() *partition.Routing { return e.routing }

// ShardOf returns the index of the shard owning id — the routing lookup,
// O(1) arithmetic (hash partitioning) or one array read (degree-balanced).
func (e *Engine) ShardOf(id graph.NodeID) int { return e.routing.Owner(id) }

// Shard returns the in-process store currently serving one partition,
// nil when that partition is served by a remote backend.
func (e *Engine) Shard(i int) *Shard { return e.bset.Load().locals[i] }

// Backend returns partition i's primary store as the routing layer
// currently holds it (the live ownership view; a handoff swaps it).
func (e *Engine) Backend(i int) ShardBackend { return e.bset.Load().backends[i] }

// ReplicaSet returns partition i's current replica group (primary
// first). The slice is shared with the live ownership view — read-only.
func (e *Engine) ReplicaSet(i int) []ShardBackend { return e.bset.Load().groups[i] }

// must surfaces a backend failure on the error-free GraphService surface;
// see the package comment's error contract.
func must[T any](v T, err error) T {
	if err != nil {
		panic(fmt.Sprintf("engine: remote backend failed on the error-free GraphService surface: %v", err))
	}
	return v
}

// maxEpochRetries bounds how many ownership views one call will chase: a
// wrong-epoch redirect triggers one refresh of the stale view and a
// retry, and a retry that lands in the middle of yet another migration
// may refresh again — but a call never loops unboundedly on a cluster
// that keeps moving the same shard out from under it.
const maxEpochRetries = 3

// readShard runs one replicated single-node read against partition si of
// one ownership view — the attribute-read sibling of sampleShard, with
// the same rotation and transport-failover loop.
func readShard[T any](set *backendSet, si int, call func(ShardBackend) (T, error)) (v T, failover bool, err error) {
	g := set.groups[si]
	if len(g) == 1 {
		v, err = call(g[0])
		return v, false, err
	}
	start := set.pick(si, g)
	for t := 0; t < len(g); t++ {
		i := start + t
		if i >= len(g) {
			i -= len(g)
		}
		v, err = call(g[i])
		if err == nil || !errors.Is(err, ErrShardUnavailable) {
			return v, t > 0, err
		}
	}
	var zero T
	return zero, true, &replicasExhaustedError{shard: si, replicas: len(g), last: err}
}

// retryRead runs one single-node backend read against the current
// ownership view — failing over across the owning partition's replicas —
// and refreshes the view and retries (bounded) when the shard moved or
// every replica was unreachable. All other errors pass through
// untouched.
func retryRead[T any](e *Engine, id graph.NodeID, call func(ShardBackend) (T, error)) (T, error) {
	owner := e.routing.Owner(id)
	set := e.bset.Load()
	v, failover, err := readShard(set, owner, call)
	for retry := 0; retry < maxEpochRetries && err != nil && retryable(err) && e.refresh(set); retry++ {
		set = e.bset.Load()
		v, failover, err = readShard(set, owner, call)
	}
	if failover && err == nil {
		e.kickRefresh(set)
	}
	return v, err
}

// Neighbors returns the adjacency list of id, read from its owning
// shard's CSR slice (an immutable view in-process; a decoded copy from a
// remote backend).
func (e *Engine) Neighbors(id graph.NodeID) []graph.Edge {
	return must(retryRead(e, id, func(be ShardBackend) ([]graph.Edge, error) { return be.NeighborsOf(id) }))
}

// Content returns the node's content vector from its owning shard.
func (e *Engine) Content(id graph.NodeID) tensor.Vec {
	return must(retryRead(e, id, func(be ShardBackend) (tensor.Vec, error) { return be.ContentOf(id) }))
}

// Features returns the node's categorical features from its owning shard.
func (e *Engine) Features(id graph.NodeID) []int32 {
	return must(retryRead(e, id, func(be ShardBackend) ([]int32, error) { return be.FeaturesOf(id) }))
}

// SampleNeighbors draws k neighbors of id with replacement, weighted by
// edge weight, in O(1) per draw via the owning shard's precomputed alias
// table. An isolated node yields nil.
func (e *Engine) SampleNeighbors(id graph.NodeID, k int, r *rng.RNG) []graph.NodeID {
	if k <= 0 {
		return nil
	}
	if sh := e.bset.Load().locals[e.routing.Owner(id)]; sh != nil && sh.degree(id) == 0 {
		return nil // skip the allocation for a local isolated node
	}
	out := make([]graph.NodeID, k)
	if n := e.SampleNeighborsInto(id, out, r); n == 0 {
		return nil
	}
	return out
}

// SampleNeighborsInto routes to the owning shard and fills out with
// weighted neighbor draws of id (with replacement), returning the number
// written: len(out), or 0 for an isolated node. Over in-process shards it
// performs no heap allocation and takes no locks beyond one atomic load
// of the ownership view — the steady-state serving path; over a remote
// backend it is one RPC round trip.
func (e *Engine) SampleNeighborsInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) int {
	return must(e.TrySampleNeighborsInto(id, out, r))
}

// TrySampleNeighborsInto is SampleNeighborsInto surfacing transport
// failures instead of panicking: on error 0 draws are reported, out is
// unspecified and r is not consumed. A wrong-epoch redirect (the shard
// moved servers) is absorbed by a one-shot ownership refresh and retry —
// safe because a redirected call never consumes r. A replica's transport
// failure is absorbed the same way one level down: the call fails over
// to the partition's surviving replicas (none of which saw r consumed
// either), and only a whole group failing escalates to the refresh-and-
// retry loop, then surfaces typed. The serving cache's synchronous miss
// path uses this call to degrade to an empty neighbor set during a full
// shard outage.
//
// The retry loop is a hand-rolled copy of retryRead: this is the
// single-sample hot path with a 0 allocs/op pin, and the closure
// retryRead takes would risk a heap allocation per call. Keep the two
// loops in sync.
func (e *Engine) TrySampleNeighborsInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) (int, error) {
	return e.TrySampleNeighborsIntoBy(id, out, r, time.Time{})
}

// TrySampleNeighborsIntoBy is TrySampleNeighborsInto bounded by an
// absolute per-call deadline (zero: unbounded, the plain call). The
// deadline travels through the ShardBackend seam: deadline-capable
// backends (the RPC stub) shrink their per-call I/O timers to the
// remaining budget, and the engine itself refuses to start — or to keep
// failing over / chasing ownership refreshes — once the budget is gone.
// A deadline failure reports 0 draws, wraps ErrDeadlineExceeded, never
// consumes r, and deliberately skips the refresh-and-retry loop: the
// shard did not move and its replicas are not down; the caller is out of
// time. Passing a deadline adds no heap allocation — the serving
// request path stays 0 allocs/op.
func (e *Engine) TrySampleNeighborsIntoBy(id graph.NodeID, out []graph.NodeID, r *rng.RNG, deadline time.Time) (int, error) {
	if deadlinePassed(deadline) {
		return 0, ErrDeadlineExceeded
	}
	owner := e.routing.Owner(id)
	set := e.bset.Load()
	n, failover, err := set.sampleShard(owner, id, out, r, deadline)
	for retry := 0; retry < maxEpochRetries && err != nil && retryable(err) && !deadlinePassed(deadline) && e.refresh(set); retry++ {
		set = e.bset.Load()
		n, failover, err = set.sampleShard(owner, id, out, r, deadline)
	}
	if failover && err == nil {
		e.kickRefresh(set)
	}
	return n, err
}

// Stats reports per-replica and per-shard request counts plus the static
// partition shape.
type Stats struct {
	Shards, Replicas int
	RequestsPerRep   []int64 // flattened shard-major
	RequestsPerShard []int64
	NodesPerShard    []int
	EdgesPerShard    []int
	// Imbalance is max/mean over RequestsPerShard (1 = perfectly even,
	// 0 when no requests have been served).
	Imbalance    float64
	CachedTables int
}

// Stats snapshots load counters. CachedTables counts the precomputed
// per-adjacency tables (every owned node with degree > 0) of in-process
// shards. A remote shard contributes its client-side request counter as a
// single replica and the partition size its server reported (zeros when
// the backend implements neither).
func (e *Engine) Stats() Stats {
	set := e.bset.Load()
	st := Stats{Shards: len(set.backends), Replicas: e.replicas}
	var total, maxShard int64
	for i := range set.backends {
		var perShard int64
		var nodes, edges int
		if s := set.locals[i]; s != nil {
			for _, rep := range s.replicas {
				c := rep.requests.Load()
				st.RequestsPerRep = append(st.RequestsPerRep, c)
				perShard += c
			}
			nodes, edges = s.store.NumNodes(), s.store.NumEdges()
			st.CachedTables += s.Tables()
		} else {
			// A replicated partition reports one entry per server replica;
			// the per-shard count is the sum over the group.
			for _, be := range set.groups[i] {
				if bs, ok := be.(BackendStats); ok {
					c := bs.Requests()
					st.RequestsPerRep = append(st.RequestsPerRep, c)
					perShard += c
					if nodes == 0 && edges == 0 {
						nodes, edges = bs.ShardSize()
					}
				} else {
					st.RequestsPerRep = append(st.RequestsPerRep, 0)
				}
			}
		}
		st.RequestsPerShard = append(st.RequestsPerShard, perShard)
		st.NodesPerShard = append(st.NodesPerShard, nodes)
		st.EdgesPerShard = append(st.EdgesPerShard, edges)
		total += perShard
		if perShard > maxShard {
			maxShard = perShard
		}
	}
	if total > 0 {
		mean := float64(total) / float64(len(set.backends))
		st.Imbalance = float64(maxShard) / mean
	}
	return st
}

// Append routes an edge batch to the owning shards' write facets and
// returns the number of edges applied. Edges are grouped by owner
// (shard order, so multi-shard batches apply deterministically) and each
// group rides the same epoch-checked retry/failover loop as reads: a
// moved shard refreshes the ownership view, an unreachable primary
// fails over to a replica-group sibling (whose server re-replicates).
// On error the earlier groups may already be applied — appends are
// idempotent at the sequence layer, so the caller simply retries.
func (e *Engine) Append(edges []ingest.Edge) (int, error) {
	if len(edges) == 0 {
		return 0, nil
	}
	numShards := e.routing.NumShards()
	groups := make([][]ingest.Edge, numShards)
	for _, ed := range edges {
		if ed.Src < 0 || int(ed.Src) >= e.numNodes {
			return 0, fmt.Errorf("%w: src %d out of range [0, %d)", ErrBadAppend, ed.Src, e.numNodes)
		}
		si := e.routing.Owner(ed.Src)
		groups[si] = append(groups[si], ed)
	}
	appended := 0
	for si, batch := range groups {
		if len(batch) == 0 {
			continue
		}
		if _, err := appendShard(e, si, batch); err != nil {
			return appended, err
		}
		appended += len(batch)
	}
	return appended, nil
}

// appendShard writes one owner-grouped batch through the partition's
// EdgeAppender facet — retryRead's write sibling.
func appendShard(e *Engine, si int, batch []ingest.Edge) (uint64, error) {
	call := func(be ShardBackend) (uint64, error) {
		ap, ok := be.(EdgeAppender)
		if !ok {
			return 0, fmt.Errorf("engine: shard %d: %w", si, ErrAppendUnsupported)
		}
		return ap.AppendEdges(batch)
	}
	set := e.bset.Load()
	v, failover, err := readShard(set, si, call)
	for retry := 0; retry < maxEpochRetries && err != nil && retryable(err) && e.refresh(set); retry++ {
		set = e.bset.Load()
		v, failover, err = readShard(set, si, call)
	}
	if failover && err == nil {
		e.kickRefresh(set)
	}
	return v, err
}

// IngestStats reports the write-path state of every partition whose
// primary backend exposes the IngestReporter facet (in-process shards
// always do; remote stubs once their server spoke).
func (e *Engine) IngestStats() []IngestStats {
	set := e.bset.Load()
	out := make([]IngestStats, 0, len(set.backends))
	for si, be := range set.backends {
		ir, ok := be.(IngestReporter)
		if !ok {
			continue
		}
		st, ok := ir.IngestStats()
		if !ok {
			continue
		}
		st.Shard = si
		out = append(out, st)
	}
	return out
}
