// Package engine is the distributed graph engine of §VI (the Euler
// stand-in): a partitioned, replicated graph store. The graph is split by
// internal/partition into disjoint per-shard CSR slices; each shard owns
// its partition's offsets, edges, feature/content rows and per-adjacency
// alias tables (built in parallel at New), and serves reads only for the
// nodes it owns. Replicas multiply a shard's read throughput and carry
// only atomic load counters.
//
// The Engine itself is the routing layer: a single-node call is directed
// to the owning shard with one arithmetic or array-index lookup, and
// multi-node calls (cache refresh batches, SampleTree frontiers) are
// scatter-gathered so each shard is visited exactly once per batch. Both
// the Engine and the in-process Shard implement GraphService — the seam
// where an RPC-backed shard would plug in: the routing layer would hold
// client stubs instead of local shards, and each per-shard batch visit
// would become one RPC.
//
// The hot path is lock- and allocation-free: routing is O(1) arithmetic,
// every shard's alias arrays are immutable after New and read without
// locks, and SampleNeighborsInto / SampleNeighborsBatchInto write into
// caller-owned buffers. In the paper the shards live on separate servers;
// here each replica is an independently counted region served in-process,
// so load-spreading effects are real while the network is not.
package engine

import (
	"fmt"
	"runtime"
	"sync"

	"zoomer/internal/graph"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// GraphService is the read surface of one graph store: weighted neighbor
// sampling plus the node attribute reads the samplers and the serving
// embedder need. The in-process *Shard implements it over its partition;
// *Engine implements it as the routing layer over all shards. An
// RPC-backed shard implements the same four methods over the wire (plus,
// in practice, a batch sampling call mirroring SampleNeighborsBatchInto).
type GraphService interface {
	SampleNeighborsInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) int
	Neighbors(id graph.NodeID) []graph.Edge
	Features(id graph.NodeID) []int32
	Content(id graph.NodeID) tensor.Vec
}

// Both the routing layer and the in-process shard serve the same surface.
var (
	_ GraphService = (*Engine)(nil)
	_ GraphService = (*Shard)(nil)
)

// Config sizes the engine.
type Config struct {
	Shards   int                // graph partitions (capacity axis)
	Replicas int                // copies per shard (throughput axis)
	Strategy partition.Strategy // node-to-shard assignment
}

// DefaultConfig mirrors a small production deployment.
func DefaultConfig() Config { return Config{Shards: 4, Replicas: 2, Strategy: partition.Hash} }

// Engine is the routing layer over the per-shard stores.
type Engine struct {
	g        *graph.Graph
	part     *partition.Partition
	shards   []*Shard
	replicas int
}

// New partitions g and builds one store per shard, precomputing every
// owned adjacency's alias table into the shard's flat arrays with a
// worker pool (up to GOMAXPROCS across all shards). It panics on
// non-positive shard or replica counts.
func New(g *graph.Graph, cfg Config) *Engine {
	if cfg.Shards <= 0 || cfg.Replicas <= 0 {
		panic(fmt.Sprintf("engine: invalid config %+v", cfg))
	}
	part := partition.Split(g, cfg.Shards, cfg.Strategy)
	e := &Engine{g: g, part: part, replicas: cfg.Replicas}
	e.shards = make([]*Shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = newShard(i, part, cfg.Replicas)
	}
	e.buildTables()
	return e
}

// buildTables precomputes each shard's alias arrays concurrently: shards
// build in parallel, and a shard's node range is further chunked so the
// pool keeps GOMAXPROCS workers busy even with few shards.
func (e *Engine) buildTables() {
	chunksPer := 1
	if p := runtime.GOMAXPROCS(0); p > len(e.shards) {
		chunksPer = (p + len(e.shards) - 1) / len(e.shards)
	}
	var wg sync.WaitGroup
	for _, s := range e.shards {
		n := s.store.NumNodes()
		chunk := (n + chunksPer - 1) / chunksPer
		if chunk < 1 {
			chunk = 1
		}
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(s *Shard, lo, hi int) {
				defer wg.Done()
				s.buildTables(lo, hi)
			}(s, lo, hi)
		}
	}
	wg.Wait()
}

// Graph returns the underlying immutable graph (whole-graph metadata and
// offline access; serving reads go through the shards).
func (e *Engine) Graph() *graph.Graph { return e.g }

// NumNodes returns the total node count across all shards.
func (e *Engine) NumNodes() int { return e.g.NumNodes() }

// ContentDim returns the dimensionality of content vectors.
func (e *Engine) ContentDim() int { return e.g.ContentDim() }

// NumShards returns the number of partitions.
func (e *Engine) NumShards() int { return len(e.shards) }

// ShardOf returns the index of the shard owning id — the routing lookup,
// O(1) arithmetic (hash partitioning) or one array read (degree-balanced).
func (e *Engine) ShardOf(id graph.NodeID) int { return e.part.Owner(id) }

// Shard returns the in-process store for one partition.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// Neighbors returns the adjacency list of id, read from its owning
// shard's CSR slice (immutable view; no lock needed).
func (e *Engine) Neighbors(id graph.NodeID) []graph.Edge {
	return e.shards[e.part.Owner(id)].Neighbors(id)
}

// Content returns the node's content vector from its owning shard.
func (e *Engine) Content(id graph.NodeID) tensor.Vec {
	return e.shards[e.part.Owner(id)].Content(id)
}

// Features returns the node's categorical features from its owning shard.
func (e *Engine) Features(id graph.NodeID) []int32 {
	return e.shards[e.part.Owner(id)].Features(id)
}

// SampleNeighbors draws k neighbors of id with replacement, weighted by
// edge weight, in O(1) per draw via the owning shard's precomputed alias
// table. An isolated node yields nil.
func (e *Engine) SampleNeighbors(id graph.NodeID, k int, r *rng.RNG) []graph.NodeID {
	sh := e.shards[e.part.Owner(id)]
	if k <= 0 || sh.degree(id) == 0 {
		return nil
	}
	out := make([]graph.NodeID, k)
	sh.SampleNeighborsInto(id, out, r)
	return out
}

// SampleNeighborsInto routes to the owning shard and fills out with
// weighted neighbor draws of id (with replacement), returning the number
// written: len(out), or 0 for an isolated node. It performs no heap
// allocation and takes no locks — the steady-state serving path.
func (e *Engine) SampleNeighborsInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) int {
	return e.shards[e.part.Owner(id)].SampleNeighborsInto(id, out, r)
}

// Stats reports per-replica and per-shard request counts plus the static
// partition shape.
type Stats struct {
	Shards, Replicas int
	RequestsPerRep   []int64 // flattened shard-major
	RequestsPerShard []int64
	NodesPerShard    []int
	EdgesPerShard    []int
	// Imbalance is max/mean over RequestsPerShard (1 = perfectly even,
	// 0 when no requests have been served).
	Imbalance    float64
	CachedTables int
}

// Stats snapshots load counters. CachedTables counts the precomputed
// per-adjacency tables (every owned node with degree > 0).
func (e *Engine) Stats() Stats {
	st := Stats{Shards: len(e.shards), Replicas: e.replicas}
	var total, maxShard int64
	for _, s := range e.shards {
		var perShard int64
		for _, rep := range s.replicas {
			c := rep.requests.Load()
			st.RequestsPerRep = append(st.RequestsPerRep, c)
			perShard += c
		}
		st.RequestsPerShard = append(st.RequestsPerShard, perShard)
		st.NodesPerShard = append(st.NodesPerShard, s.store.NumNodes())
		st.EdgesPerShard = append(st.EdgesPerShard, s.store.NumEdges())
		st.CachedTables += s.Tables()
		total += perShard
		if perShard > maxShard {
			maxShard = perShard
		}
	}
	if total > 0 {
		mean := float64(total) / float64(len(e.shards))
		st.Imbalance = float64(maxShard) / mean
	}
	return st
}
