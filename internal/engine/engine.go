// Package engine is the distributed graph engine of §VI (the Euler
// stand-in): an in-memory graph store partitioned into shards for
// capacity, with each shard replicated for aggregate read throughput, and
// per-adjacency alias tables giving constant-time weighted neighbor
// sampling independent of degree.
//
// All alias tables are precomputed once at New into a single flat pair of
// arrays aligned with the graph's CSR edge array, so the sampling hot
// path is lock-free and allocation-free: replicas keep only atomic load
// counters, and SampleNeighborsInto writes into a caller-owned buffer.
// Construction is parallelized across shards by a worker pool.
//
// In the paper the shards live on separate servers; here each replica is
// an independently counted region served in-process, so load-spreading
// effects are real while the network is not. Request counting per replica
// exposes the load-balance behavior the experiments check.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"zoomer/internal/alias"
	"zoomer/internal/graph"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// Config sizes the engine.
type Config struct {
	Shards   int // graph partitions (capacity axis)
	Replicas int // copies per shard (throughput axis)
}

// DefaultConfig mirrors a small production deployment.
func DefaultConfig() Config { return Config{Shards: 4, Replicas: 2} }

// Engine is a sharded, replicated view over an immutable graph.
type Engine struct {
	g        *graph.Graph
	shards   []*shard
	replicas int

	// Flat alias tables, one slot per CSR edge: node id's table occupies
	// prob/alias[offsets[id]:offsets[id+1]], with alias indices local to
	// the adjacency. Immutable after New, shared by every replica, read
	// without locks.
	offsets []int32
	prob    []float64
	alias   []int32
	tables  int // adjacencies with a table (degree > 0)
}

type shard struct {
	replicas []*replica
	rr       atomic.Uint32 // round-robin replica cursor
}

// replica carries only its load counter: the tables it serves are the
// engine-wide immutable arrays, so adding replicas adds sampling capacity
// without duplicating state or taking locks.
type replica struct {
	requests atomic.Int64
}

// New builds an engine over g, precomputing every adjacency's alias table
// into the shared flat arrays with one construction worker per shard (up
// to GOMAXPROCS). It panics on non-positive shard or replica counts.
func New(g *graph.Graph, cfg Config) *Engine {
	if cfg.Shards <= 0 || cfg.Replicas <= 0 {
		panic(fmt.Sprintf("engine: invalid config %+v", cfg))
	}
	e := &Engine{g: g, replicas: cfg.Replicas}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		s := &shard{replicas: make([]*replica, cfg.Replicas)}
		for j := range s.replicas {
			s.replicas[j] = &replica{}
		}
		e.shards[i] = s
	}
	e.buildTables(cfg.Shards)
	return e
}

// buildTables precomputes the flat alias arrays. Nodes are split into
// contiguous blocks (one per shard, capped by GOMAXPROCS) and built
// concurrently; each worker reuses its own weight/stack scratch across
// its nodes.
func (e *Engine) buildTables(shards int) {
	g := e.g
	n := g.NumNodes()
	e.offsets = g.Offsets()
	e.prob = make([]float64, g.NumEdges())
	e.alias = make([]int32, g.NumEdges())

	workers := shards
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers < 1 {
		workers = 1
	}
	var tables atomic.Int64
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var weights []float64
			var stack []int32
			built := int64(0)
			for id := lo; id < hi; id++ {
				elo, ehi := e.offsets[id], e.offsets[id+1]
				deg := int(ehi - elo)
				if deg == 0 {
					continue
				}
				if cap(weights) < deg {
					weights = make([]float64, deg)
					stack = make([]int32, deg)
				}
				weights = weights[:deg]
				stack = stack[:deg]
				for i, edge := range g.Edges()[elo:ehi] {
					weights[i] = float64(edge.Weight)
				}
				if err := alias.BuildInto(e.prob[elo:ehi], e.alias[elo:ehi], weights, stack); err != nil {
					// Degenerate weights (all zero, or invalid values in a
					// graph that bypassed Builder validation): degrade this
					// adjacency to uniform rather than fail the engine.
					for i := range weights {
						weights[i] = 1
					}
					alias.MustBuildInto(e.prob[elo:ehi], e.alias[elo:ehi], weights, stack)
				}
				built++
			}
			tables.Add(built)
		}(lo, hi)
	}
	wg.Wait()
	e.tables = int(tables.Load())
}

// Graph returns the underlying immutable graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

func (e *Engine) shardOf(id graph.NodeID) *shard {
	return e.shards[int(uint32(id))%len(e.shards)]
}

// pick selects a replica round-robin, spreading load evenly.
func (s *shard) pick() *replica {
	n := s.rr.Add(1)
	return s.replicas[int(n)%len(s.replicas)]
}

// Neighbors returns the adjacency list of id (immutable view; no lock
// needed — reads go straight to the shared CSR).
func (e *Engine) Neighbors(id graph.NodeID) []graph.Edge {
	return e.g.Neighbors(id)
}

// Content returns the node's content vector.
func (e *Engine) Content(id graph.NodeID) tensor.Vec { return e.g.Content(id) }

// Features returns the node's categorical features.
func (e *Engine) Features(id graph.NodeID) []int32 { return e.g.Features(id) }

// SampleNeighbors draws k neighbors of id with replacement, weighted by
// edge weight, in O(1) per draw via the precomputed flat alias table. An
// isolated node yields nil. The path takes no locks; the only shared
// writes are the replica load counter and round-robin cursor.
func (e *Engine) SampleNeighbors(id graph.NodeID, k int, r *rng.RNG) []graph.NodeID {
	if k <= 0 || e.offsets[id] == e.offsets[id+1] {
		return nil
	}
	out := make([]graph.NodeID, k)
	e.SampleNeighborsInto(id, out, r)
	return out
}

// SampleNeighborsInto fills out with weighted neighbor draws of id (with
// replacement) and returns the number written: len(out), or 0 for an
// isolated node. It performs no heap allocation — the steady-state
// serving path.
func (e *Engine) SampleNeighborsInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) int {
	lo, hi := e.offsets[id], e.offsets[id+1]
	deg := int(hi - lo)
	if deg == 0 || len(out) == 0 {
		return 0
	}
	rep := e.shardOf(id).pick()
	rep.requests.Add(1)

	edges := e.g.Edges()
	prob := e.prob[lo:hi]
	aliasIdx := e.alias[lo:hi]
	for i := range out {
		out[i] = edges[int(lo)+alias.SampleFrom(prob, aliasIdx, r)].To
	}
	return len(out)
}

// Stats reports per-replica request counts, flattened shard-major.
type Stats struct {
	Shards, Replicas int
	RequestsPerRep   []int64
	CachedTables     int
}

// Stats snapshots load counters. CachedTables counts the precomputed
// per-adjacency tables (every node with degree > 0).
func (e *Engine) Stats() Stats {
	st := Stats{Shards: len(e.shards), Replicas: e.replicas, CachedTables: e.tables}
	for _, s := range e.shards {
		for _, rep := range s.replicas {
			st.RequestsPerRep = append(st.RequestsPerRep, rep.requests.Load())
		}
	}
	return st
}
