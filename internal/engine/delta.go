package engine

import (
	"errors"
	"fmt"
	"math"

	"zoomer/internal/alias"
	"zoomer/internal/graph"
	"zoomer/internal/ingest"
	"zoomer/internal/rng"
)

// The delta layer grows a shard's graph online without touching the
// immutable CSR base. Appended edges accumulate in per-node overlays
// published behind one atomic pointer — the same snapshot-swap pattern
// the routing layer uses for handoff — so the lock-free 0-alloc read
// path never sees a lock: a draw loads the current view once and
// samples a two-component mixture (base adjacency vs. pending deltas by
// weight mass). Once a node's pending list reaches compactThreshold the
// apply path folds base + deltas into one merged alias table, keeping
// per-draw cost flat as a node keeps growing.
//
// Applies are strictly sequenced (seq = last+1) and every structure the
// apply builds is a pure function of the applied record stream, so
// replaying the same WAL prefix — after a crash, on a replica, in a
// test — reproduces the exact view and bit-identical draws per ingest
// epoch (epoch = applied sequence number).

// compactThreshold is the pending-delta count at which a node's overlay
// is folded into one merged alias table. It must stay a deterministic
// function of the applied stream (never time- or load-based): replica
// and replay equivalence depend on it.
const compactThreshold = 16

// Typed append failures, matched with errors.Is.
var (
	// ErrSeqGap rejects an append whose sequence number skips ahead:
	// the intervening records must be applied first. The concrete error
	// is a *SeqGapError carrying the expected number for self-sync.
	ErrSeqGap = errors.New("engine: append sequence gap")
	// ErrBadAppend rejects malformed edges (foreign src, out-of-range
	// endpoint, non-positive or non-finite weight, unknown type).
	ErrBadAppend = errors.New("engine: invalid append edge")
	// ErrAppendUnsupported marks a backend with no append facet.
	ErrAppendUnsupported = errors.New("engine: backend does not support append")
)

// SeqGapError reports an out-of-order append and the sequence number
// that would have been accepted.
type SeqGapError struct {
	Shard int
	Got   uint64
	Want  uint64
}

func (e *SeqGapError) Error() string {
	return fmt.Sprintf("engine: append sequence gap on shard %d: got %d, want %d", e.Shard, e.Got, e.Want)
}

// Is reports errors.Is membership in the ErrSeqGap class.
func (e *SeqGapError) Is(target error) bool { return target == ErrSeqGap }

// EdgeAppender is the optional write facet of a ShardBackend: local
// shards apply directly, remote stubs forward over the graph-append op.
// AppendEdges atomically applies one batch (all edges must belong to
// this backend's partition) and returns the sequence number it was
// applied under.
type EdgeAppender interface {
	AppendEdges(edges []ingest.Edge) (seq uint64, err error)
}

// IngestStats describes one shard's write-path state for observability.
type IngestStats struct {
	Shard       int
	Seq         uint64 // last applied sequence number (= ingest epoch)
	DeltaNodes  int    // nodes with a live overlay
	DeltaEdges  uint64 // appended edges in the current view
	Compactions uint64
	WALSegments int // 0 when the backend has no WAL
	Fsyncs      uint64
	FsyncNanos  uint64
	FsyncHist   []uint64 // aligned with ingest.FsyncBounds (+Inf last); nil when unavailable
}

// IngestReporter is the optional observability facet of the write path.
// The second return is false when the backend cannot currently report
// (e.g. a remote stub that has not fetched stats yet).
type IngestReporter interface {
	IngestStats() (IngestStats, bool)
}

// deltaView is one immutable snapshot of a shard's overlay state.
type deltaView struct {
	seq         uint64
	compactions uint64
	edges       uint64
	overlays    map[graph.NodeID]*nodeOverlay
}

// nodeOverlay is one node's delta state. All fields are immutable after
// publication; `all` may share a backing array across views (an apply
// only ever writes past the published length).
type nodeOverlay struct {
	all []graph.Edge // every appended edge for this node, in apply order

	// merged: alias table over base adjacency + all[:compactedLen];
	// nil until the first compaction (draws then mix the base CSR table
	// with the pending table instead).
	merged       []graph.Edge
	mergedProb   []float64
	mergedAlias  []int32
	mergedW      float64
	compactedLen int

	// pending: alias table over all[compactedLen:].
	pendProb  []float64
	pendAlias []int32
	pendW     float64

	// baseW is the base adjacency's weight mass under the same
	// degenerate-weight fallback buildTables applied (uniform = degree).
	// Unused (draws go through merged) once merged is non-nil.
	baseW float64
}

func (ov *nodeOverlay) pending() []graph.Edge { return ov.all[ov.compactedLen:] }

// DeltaStats snapshots the shard's delta layer.
type DeltaStats struct {
	Seq         uint64
	Nodes       int
	Edges       uint64
	Compactions uint64
}

// LastAppliedSeq returns the sequence number of the newest applied
// append (0 before any).
func (s *Shard) LastAppliedSeq() uint64 {
	if dv := s.delta.Load(); dv != nil {
		return dv.seq
	}
	return 0
}

// DeltaStats snapshots the delta layer without blocking appliers.
func (s *Shard) DeltaStats() DeltaStats {
	dv := s.delta.Load()
	if dv == nil {
		return DeltaStats{}
	}
	return DeltaStats{Seq: dv.seq, Nodes: len(dv.overlays), Edges: dv.edges, Compactions: dv.compactions}
}

// ApplyAppend applies one sequenced edge batch to the shard's delta
// layer. It is idempotent: seq at or below the last applied number is a
// duplicate (applied=false, nil error); a sequence skipping ahead fails
// with *SeqGapError carrying the expected number. The returned lastSeq
// is the post-call ingest epoch either way.
func (s *Shard) ApplyAppend(seq uint64, edges []ingest.Edge) (applied bool, lastSeq uint64, err error) {
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	cur := s.LastAppliedSeq()
	if seq <= cur {
		return false, cur, nil
	}
	if seq != cur+1 {
		return false, cur, &SeqGapError{Shard: s.id, Got: seq, Want: cur + 1}
	}
	if err := s.applyLocked(seq, edges); err != nil {
		return false, cur, err
	}
	return true, seq, nil
}

// AppendEdges implements EdgeAppender for the in-process shard: it
// sequences the batch itself (local engines have no concurrent writer).
func (s *Shard) AppendEdges(edges []ingest.Edge) (uint64, error) {
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	seq := s.LastAppliedSeq() + 1
	if err := s.applyLocked(seq, edges); err != nil {
		return 0, err
	}
	return seq, nil
}

// IngestStats implements IngestReporter for the in-process shard (no
// WAL fields: durability lives with the rpc server when configured).
func (s *Shard) IngestStats() (IngestStats, bool) {
	d := s.DeltaStats()
	return IngestStats{
		Shard:       s.id,
		Seq:         d.Seq,
		DeltaNodes:  d.Nodes,
		DeltaEdges:  d.Edges,
		Compactions: d.Compactions,
	}, true
}

// ValidateAppend checks an edge batch against this shard without
// mutating anything — the same checks applyLocked enforces, shared with
// the rpc server so invalid batches are rejected before the WAL write.
func (s *Shard) ValidateAppend(edges []ingest.Edge) error {
	numNodes := graph.NodeID(s.part.Routing.NumNodes())
	for i, e := range edges {
		switch {
		case e.Src < 0 || e.Src >= numNodes || e.Dst < 0 || e.Dst >= numNodes:
			return fmt.Errorf("%w: edge %d endpoints (%d, %d) out of range [0, %d)", ErrBadAppend, i, e.Src, e.Dst, numNodes)
		case s.part.Routing.Owner(e.Src) != s.id:
			return fmt.Errorf("%w: edge %d src %d belongs to shard %d, not %d", ErrBadAppend, i, e.Src, s.part.Routing.Owner(e.Src), s.id)
		case int(e.Type) >= graph.NumEdgeTypes:
			return fmt.Errorf("%w: edge %d has unknown type %d", ErrBadAppend, i, e.Type)
		case !(e.Weight > 0) || math.IsInf(float64(e.Weight), 1):
			return fmt.Errorf("%w: edge %d weight %v is not positive and finite", ErrBadAppend, i, e.Weight)
		}
	}
	return nil
}

// applyLocked publishes a new view with edges applied under seq. Caller
// holds deltaMu and has sequenced seq.
func (s *Shard) applyLocked(seq uint64, edges []ingest.Edge) error {
	if len(edges) == 0 {
		return fmt.Errorf("%w: empty batch", ErrBadAppend)
	}
	if err := s.ValidateAppend(edges); err != nil {
		return err
	}

	old := s.delta.Load()
	next := &deltaView{seq: seq}
	if old != nil {
		next.compactions = old.compactions
		next.edges = old.edges
		next.overlays = make(map[graph.NodeID]*nodeOverlay, len(old.overlays)+len(edges))
		for id, ov := range old.overlays {
			next.overlays[id] = ov
		}
	} else {
		next.overlays = make(map[graph.NodeID]*nodeOverlay, len(edges))
	}

	// Copy-on-write per touched node: untouched overlays are shared with
	// the old view; touched ones are re-derived so in-flight readers of
	// the old view never observe a mutation.
	touched := make(map[graph.NodeID]*nodeOverlay, len(edges))
	for _, e := range edges {
		ov := touched[e.Src]
		if ov == nil {
			ov = s.cloneOverlay(e.Src, next.overlays[e.Src])
			touched[e.Src] = ov
			next.overlays[e.Src] = ov
		}
		ov.all = append(ov.all, graph.Edge{To: e.Dst, Type: e.Type, Weight: e.Weight})
		next.edges++
	}
	for id, ov := range touched {
		if len(ov.pending()) >= compactThreshold {
			s.compactOverlay(id, ov)
			next.compactions++
		}
		s.rebuildPending(ov)
	}
	s.delta.Store(next)
	return nil
}

// cloneOverlay copies the published fields of an overlay (or derives a
// fresh one for a node's first delta). The `all` slice is shared — the
// apply path only appends past the published length, which readers of
// older views never index.
func (s *Shard) cloneOverlay(id graph.NodeID, old *nodeOverlay) *nodeOverlay {
	if old == nil {
		li := s.part.Local(id)
		lo, hi := s.store.Offsets[li], s.store.Offsets[li+1]
		return &nodeOverlay{baseW: s.baseWeightSpan(lo, hi)}
	}
	cp := *old
	return &cp
}

// baseDegenerate reports whether buildTables fell back to uniform
// weights for the adjacency spanning [lo, hi) (alias.BuildInto rejects
// negative weights and all-zero mass).
func (s *Shard) baseDegenerate(lo, hi int32) bool {
	if lo == hi {
		return false
	}
	sum := 0.0
	for _, e := range s.store.Edges[lo:hi] {
		if e.Weight < 0 {
			return true
		}
		sum += float64(e.Weight)
	}
	return sum == 0
}

// baseWeightSpan returns the weight mass buildTables assigned to the
// base adjacency spanning [lo, hi): the raw sum, or the degree when the
// raw weights were degenerate (matching the uniform fallback).
func (s *Shard) baseWeightSpan(lo, hi int32) float64 {
	if lo == hi {
		return 0
	}
	if s.baseDegenerate(lo, hi) {
		return float64(hi - lo)
	}
	sum := 0.0
	for _, e := range s.store.Edges[lo:hi] {
		sum += float64(e.Weight)
	}
	return sum
}

// compactOverlay folds base + every applied delta into one merged alias
// table; subsequent draws stop consulting the base CSR table for this
// node. Deterministic: depends only on the base arrays and ov.all.
func (s *Shard) compactOverlay(id graph.NodeID, ov *nodeOverlay) {
	li := s.part.Local(id)
	lo, hi := s.store.Offsets[li], s.store.Offsets[li+1]
	base := s.store.Edges[lo:hi]

	merged := make([]graph.Edge, 0, len(base)+len(ov.all))
	merged = append(merged, base...)
	merged = append(merged, ov.all...)
	weights := make([]float64, len(merged))
	uniformBase := s.baseDegenerate(lo, hi)
	for i, e := range merged {
		if i < len(base) && uniformBase {
			weights[i] = 1 // preserve the degenerate-base uniform fallback
		} else {
			weights[i] = float64(e.Weight)
		}
	}
	ov.merged = merged
	ov.mergedProb = make([]float64, len(merged))
	ov.mergedAlias = make([]int32, len(merged))
	stack := make([]int32, len(merged))
	alias.MustBuildInto(ov.mergedProb, ov.mergedAlias, weights, stack)
	ov.mergedW = 0
	for _, w := range weights {
		ov.mergedW += w
	}
	ov.compactedLen = len(ov.all)
	ov.baseW = 0
}

// rebuildPending rebuilds the alias table over the uncompacted tail.
func (s *Shard) rebuildPending(ov *nodeOverlay) {
	pend := ov.pending()
	if len(pend) == 0 {
		ov.pendProb, ov.pendAlias, ov.pendW = nil, nil, 0
		return
	}
	weights := make([]float64, len(pend))
	w := 0.0
	for i, e := range pend {
		weights[i] = float64(e.Weight)
		w += float64(e.Weight)
	}
	ov.pendProb = make([]float64, len(pend))
	ov.pendAlias = make([]int32, len(pend))
	stack := make([]int32, len(pend))
	alias.MustBuildInto(ov.pendProb, ov.pendAlias, weights, stack)
	ov.pendW = w
}

// sampleOverlay draws len(out) neighbors for a node with live deltas:
// a weighted two-component mixture between the compacted table (or the
// base CSR table pre-compaction) and the pending-delta table. Runs on
// the read hot path — no allocation, no locks.
func (s *Shard) sampleOverlay(ov *nodeOverlay, lo, hi int32, out []graph.NodeID, r *rng.RNG) {
	for i := range out {
		out[i] = s.drawOverlay(ov, lo, hi, r)
	}
}

func (s *Shard) drawOverlay(ov *nodeOverlay, lo, hi int32, r *rng.RNG) graph.NodeID {
	if ov.merged != nil {
		if ov.pendW == 0 || r.Float64()*(ov.mergedW+ov.pendW) < ov.mergedW {
			return ov.merged[alias.SampleFrom(ov.mergedProb, ov.mergedAlias, r)].To
		}
		pend := ov.pending()
		return pend[alias.SampleFrom(ov.pendProb, ov.pendAlias, r)].To
	}
	if ov.baseW > 0 && (ov.pendW == 0 || r.Float64()*(ov.baseW+ov.pendW) < ov.baseW) {
		prob := s.prob[lo:hi]
		aliasIdx := s.alias[lo:hi]
		return s.store.Edges[int(lo)+alias.SampleFrom(prob, aliasIdx, r)].To
	}
	pend := ov.pending()
	return pend[alias.SampleFrom(ov.pendProb, ov.pendAlias, r)].To
}

// overlayFor returns the node's live overlay, or nil. One atomic load;
// free when the shard has never seen an append.
func (s *Shard) overlayFor(id graph.NodeID) *nodeOverlay {
	dv := s.delta.Load()
	if dv == nil {
		return nil
	}
	return dv.overlays[id]
}

// deltaDegree returns the number of appended edges for id.
func (s *Shard) deltaDegree(id graph.NodeID) int {
	if ov := s.overlayFor(id); ov != nil {
		return len(ov.all)
	}
	return 0
}

// ensure the facets stay implemented.
var (
	_ EdgeAppender   = (*Shard)(nil)
	_ IngestReporter = (*Shard)(nil)
)
