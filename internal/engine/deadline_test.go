package engine

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
)

// deadlineBackend wraps a shard store and records whether the
// deadline-aware facet or the plain path was used.
type deadlineBackend struct {
	flakyBackend
	byCalls atomic.Int64
	lastDL  atomic.Int64 // unix nanos of the last deadline seen
}

func (db *deadlineBackend) SampleIntoBy(id graph.NodeID, out []graph.NodeID, r *rng.RNG, deadline time.Time) (int, error) {
	db.byCalls.Add(1)
	db.lastDL.Store(deadline.UnixNano())
	return db.flakyBackend.SampleInto(id, out, r)
}

func deadlineFixture(t *testing.T, shards int) (*Engine, [][]*deadlineBackend) {
	t.Helper()
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 1))
	g := graphbuild.Build(logs, graphbuild.DefaultConfig()).Graph
	part := partition.Split(g, shards, partition.Hash)
	groups := make([][]ShardBackend, shards)
	backs := make([][]*deadlineBackend, shards)
	for id := 0; id < shards; id++ {
		sh := BuildShard(part, id, 1)
		a := &deadlineBackend{flakyBackend: flakyBackend{sh: sh}}
		backs[id] = []*deadlineBackend{a}
		groups[id] = []ShardBackend{a}
	}
	e := NewWithReplicaSets(part.RoutingTable(), groups, g.ContentDim())
	t.Cleanup(func() { e.Close() })
	return e, backs
}

// An already-expired deadline fails fast and typed: no backend call, no
// RNG consumption, no failover machinery.
func TestExpiredDeadlineFailsTypedWithoutWork(t *testing.T) {
	e, backs := deadlineFixture(t, 2)
	r := rng.New(9)
	before := r.State()
	out := make([]graph.NodeID, 4)
	_, err := e.TrySampleNeighborsIntoBy(1, out, r, time.Now().Add(-time.Millisecond))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: got %v, want ErrDeadlineExceeded", err)
	}
	if r.State() != before {
		t.Fatal("expired call consumed the caller's RNG")
	}
	for _, g := range backs {
		for _, b := range g {
			if n := b.calls.Load() + b.byCalls.Load(); n != 0 {
				t.Fatalf("expired call reached a backend (%d calls)", n)
			}
		}
	}
}

// A live deadline routes through the DeadlineSampler facet (so a remote
// stub can shrink its per-call wire budget), while the zero deadline
// keeps the plain path.
func TestDeadlineRoutesThroughFacet(t *testing.T) {
	e, backs := deadlineFixture(t, 2)
	r := rng.New(9)
	out := make([]graph.NodeID, 4)
	dl := time.Now().Add(time.Minute)
	if _, err := e.TrySampleNeighborsIntoBy(1, out, r, dl); err != nil {
		t.Fatalf("bounded sample: %v", err)
	}
	var by, plain int64
	for _, g := range backs {
		for _, b := range g {
			by += b.byCalls.Load()
			plain += b.calls.Load()
		}
	}
	if by != 1 || plain != 1 { // facet wraps the store's SampleInto
		t.Fatalf("bounded call used byCalls=%d calls=%d, want the facet path", by, plain)
	}

	if _, err := e.TrySampleNeighborsInto(1, out, r); err != nil {
		t.Fatalf("unbounded sample: %v", err)
	}
	var by2 int64
	for _, g := range backs {
		for _, b := range g {
			by2 += b.byCalls.Load()
		}
	}
	if by2 != by {
		t.Fatal("unbounded call took the deadline facet")
	}
}

// Deadline-bounded draws are bit-identical to unbounded ones — the
// deadline threading must not perturb the RNG stream.
func TestDeadlineDrawsBitIdentical(t *testing.T) {
	e, _ := deadlineFixture(t, 2)
	ra, rb := rng.New(11), rng.New(11)
	a := make([]graph.NodeID, 5)
	b := make([]graph.NodeID, 5)
	dl := time.Now().Add(time.Minute)
	for id := 0; id < e.NumNodes(); id += 13 {
		na, err := e.TrySampleNeighborsInto(graph.NodeID(id), a, ra)
		if err != nil {
			t.Fatalf("node %d unbounded: %v", id, err)
		}
		nb, err := e.TrySampleNeighborsIntoBy(graph.NodeID(id), b, rb, dl)
		if err != nil {
			t.Fatalf("node %d bounded: %v", id, err)
		}
		if na != nb {
			t.Fatalf("node %d: %d vs %d draws", id, na, nb)
		}
		for i := 0; i < na; i++ {
			if a[i] != b[i] {
				t.Fatalf("node %d draw %d: %d vs %d", id, i, a[i], b[i])
			}
		}
	}
}

// A deadline failure mid-failover must not continue the replica walk:
// the caller's budget is spent, and hammering siblings with doomed
// calls is exactly what the typed error exists to prevent.
func TestDeadlineStopsFailoverWalk(t *testing.T) {
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 1))
	g := graphbuild.Build(logs, graphbuild.DefaultConfig()).Graph
	part := partition.Split(g, 1, partition.Hash)
	sh := BuildShard(part, 0, 1)
	// First replica fails transport-style; the sibling would serve. With
	// an expired deadline the walk must stop before touching the sibling.
	bad := &flakyBackend{sh: sh}
	bad.failing.Store(true)
	good := &flakyBackend{sh: sh}
	// Steer the rotation pick to the failing replica: pick skips
	// unhealthy siblings, but the failover walk would still reach them —
	// unless the deadline stops it first, which is what we assert.
	good.unhealthy.Store(true)
	e := NewWithReplicaSets(part.RoutingTable(), [][]ShardBackend{{bad, good}}, g.ContentDim())
	t.Cleanup(func() { e.Close() })

	r := rng.New(3)
	out := make([]graph.NodeID, 4)
	// Enter the failover path directly with an already-expired deadline:
	// attempt 0 fails transport-style, and the pre-attempt check must
	// stop the walk before the sibling is touched.
	n, failover, err := e.bset.Load().sampleShard(0, 1, out, r, time.Now().Add(-time.Millisecond))
	if err == nil || !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("failover under expired deadline: n=%d failover=%v err=%v", n, failover, err)
	}
	if good.calls.Load() != 0 {
		t.Fatal("expired deadline still walked to the sibling replica")
	}
}
