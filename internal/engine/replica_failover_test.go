package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// flakyBackend wraps a real in-process shard store behind the
// ShardBackend seam with switchable transport failure and health — the
// engine-level stand-in for a remote stub whose server died.
type flakyBackend struct {
	sh        *Shard
	failing   atomic.Bool // calls return a transport failure
	unhealthy atomic.Bool // HealthReporter says avoid me
	calls     atomic.Int64
}

func (fb *flakyBackend) transportErr() error {
	return fmt.Errorf("flaky: %w", ErrShardUnavailable)
}

func (fb *flakyBackend) SampleInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) (int, error) {
	fb.calls.Add(1)
	if fb.failing.Load() {
		return 0, fb.transportErr()
	}
	return fb.sh.SampleInto(id, out, r)
}

func (fb *flakyBackend) SampleBatchInto(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) (int, error) {
	fb.calls.Add(1)
	if fb.failing.Load() {
		return 0, fb.transportErr()
	}
	return fb.sh.SampleBatchInto(gids, idx, base, k, out, ns)
}

func (fb *flakyBackend) NeighborsOf(id graph.NodeID) ([]graph.Edge, error) {
	fb.calls.Add(1)
	if fb.failing.Load() {
		return nil, fb.transportErr()
	}
	return fb.sh.NeighborsOf(id)
}

func (fb *flakyBackend) FeaturesOf(id graph.NodeID) ([]int32, error) {
	fb.calls.Add(1)
	if fb.failing.Load() {
		return nil, fb.transportErr()
	}
	return fb.sh.FeaturesOf(id)
}

func (fb *flakyBackend) ContentOf(id graph.NodeID) (tensor.Vec, error) {
	fb.calls.Add(1)
	if fb.failing.Load() {
		return nil, fb.transportErr()
	}
	return fb.sh.ContentOf(id)
}

func (fb *flakyBackend) Healthy() bool { return !fb.unhealthy.Load() }

// replicaFixture builds an engine whose every partition is served by a
// replica group of two flaky wrappers over the same store, plus a plain
// local engine for lockstep comparison.
func replicaFixture(t *testing.T, shards int) (*Engine, *Engine, [][]*flakyBackend) {
	t.Helper()
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 1))
	g := graphbuild.Build(logs, graphbuild.DefaultConfig()).Graph
	local := New(g, Config{Shards: 1, Replicas: 1})
	part := partition.Split(g, shards, partition.Hash)
	groups := make([][]ShardBackend, shards)
	flaky := make([][]*flakyBackend, shards)
	for id := 0; id < shards; id++ {
		sh := BuildShard(part, id, 1)
		a, b := &flakyBackend{sh: sh}, &flakyBackend{sh: sh}
		flaky[id] = []*flakyBackend{a, b}
		groups[id] = []ShardBackend{a, b}
	}
	e := NewWithReplicaSets(part.RoutingTable(), groups, g.ContentDim())
	t.Cleanup(func() { e.Close() })
	return e, local, flaky
}

// One replica of every group failing: single draws, batches and
// attribute reads all succeed via the sibling with no caller-visible
// error, and the draws stay bit-identical to an undisturbed engine (the
// failed attempt consumes no RNG).
func TestReplicaFailoverTransparent(t *testing.T) {
	e, local, flaky := replicaFixture(t, 4)
	for id := range flaky {
		flaky[id][0].failing.Store(true)
	}

	rl, rr := rng.New(7), rng.New(7)
	want := make([]graph.NodeID, 5)
	got := make([]graph.NodeID, 5)
	for id := 0; id < e.NumNodes(); id += 7 {
		nid := graph.NodeID(id)
		nw := local.SampleNeighborsInto(nid, want, rl)
		ng, err := e.TrySampleNeighborsInto(nid, got, rr)
		if err != nil {
			t.Fatalf("node %d: failover leaked error: %v", id, err)
		}
		if nw != ng {
			t.Fatalf("node %d: %d draws, want %d", id, ng, nw)
		}
		for i := 0; i < nw; i++ {
			if want[i] != got[i] {
				t.Fatalf("node %d draw %d: %d, want %d", id, i, got[i], want[i])
			}
		}
	}

	// Batches: every shard group visits through the surviving sibling.
	ids := make([]graph.NodeID, 0, 32)
	for id := 0; id < 32; id++ {
		ids = append(ids, graph.NodeID(id%e.NumNodes()))
	}
	const k = 4
	bw := make([]graph.NodeID, len(ids)*k)
	bg := make([]graph.NodeID, len(ids)*k)
	nsw := make([]int32, len(ids))
	nsg := make([]int32, len(ids))
	for round := 0; round < 3; round++ {
		nw, err := local.SampleNeighborsBatchInto(ids, k, bw, nsw, rl, nil)
		if err != nil {
			t.Fatalf("local batch: %v", err)
		}
		ng, err := e.SampleNeighborsBatchInto(ids, k, bg, nsg, rr, nil)
		if err != nil {
			t.Fatalf("round %d: batch failover leaked error: %v", round, err)
		}
		if nw != ng {
			t.Fatalf("round %d: %d draws, want %d", round, ng, nw)
		}
		for i := range nsw {
			if nsw[i] != nsg[i] {
				t.Fatalf("round %d entry %d: count %d, want %d", round, i, nsg[i], nsw[i])
			}
		}
		for i, v := range bw {
			if bg[i] != v {
				t.Fatalf("round %d draw %d: %d, want %d", round, i, bg[i], v)
			}
		}
	}

	// Attribute reads fail over too (Neighbors panics if they don't).
	if got, want := len(e.Neighbors(0)), len(local.Neighbors(0)); got != want {
		t.Fatalf("neighbors failover: %d edges, want %d", got, want)
	}
}

// Zero healthy replicas degrades typed-and-loud: the error matches both
// ErrNoReplicas (the group is exhausted) and ErrShardUnavailable (it is
// a transport-shaped failure callers already check for), and ns carries
// no partial results.
func TestReplicasExhaustedTyped(t *testing.T) {
	e, _, flaky := replicaFixture(t, 2)
	for id := range flaky {
		for _, fb := range flaky[id] {
			fb.failing.Store(true)
		}
	}
	r := rng.New(3)
	out := make([]graph.NodeID, 4)
	_, err := e.TrySampleNeighborsInto(0, out, r)
	if err == nil {
		t.Fatal("zero healthy replicas answered a sample")
	}
	if !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("error %v does not match ErrNoReplicas", err)
	}
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("error %v does not match ErrShardUnavailable", err)
	}

	ids := []graph.NodeID{0, 1, 2, 3}
	bout := make([]graph.NodeID, len(ids)*4)
	ns := []int32{9, 9, 9, 9}
	if _, err := e.SampleNeighborsBatchInto(ids, 4, bout, ns, r, nil); err == nil {
		t.Fatal("zero healthy replicas answered a batch")
	} else if !errors.Is(err, ErrNoReplicas) || !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("batch error %v lacks the typed chain", err)
	}
	for i, n := range ns {
		if n != 0 {
			t.Fatalf("ns[%d] = %d after failed batch (partial results leaked)", i, n)
		}
	}
}

// The health facet steers traffic: with one replica reporting unhealthy,
// steady-state reads stop paying a failed attempt on it — the sibling
// absorbs the load and the unhealthy replica sees (almost) no calls.
func TestReplicaPickSkipsUnhealthy(t *testing.T) {
	e, _, flaky := replicaFixture(t, 2)
	for id := range flaky {
		flaky[id][0].failing.Store(true)
		flaky[id][0].unhealthy.Store(true)
	}
	warm := flaky[0][0].calls.Load() + flaky[1][0].calls.Load()
	r := rng.New(5)
	out := make([]graph.NodeID, 4)
	for id := 0; id < 64; id++ {
		if _, err := e.TrySampleNeighborsInto(graph.NodeID(id%e.NumNodes()), out, r); err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
	}
	paid := flaky[0][0].calls.Load() + flaky[1][0].calls.Load() - warm
	if paid != 0 {
		t.Fatalf("unhealthy replicas were called %d times despite the health skip", paid)
	}
}

// Healthy replicas share the load: the rotation cursor spreads single
// draws across the group instead of pinning everything on one replica.
func TestReplicaRotationSpreadsLoad(t *testing.T) {
	e, _, flaky := replicaFixture(t, 2)
	r := rng.New(11)
	out := make([]graph.NodeID, 4)
	for id := 0; id < 100; id++ {
		if _, err := e.TrySampleNeighborsInto(graph.NodeID(id%e.NumNodes()), out, r); err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
	}
	for id := range flaky {
		a, b := flaky[id][0].calls.Load(), flaky[id][1].calls.Load()
		if a == 0 || b == 0 {
			t.Fatalf("shard %d: load not spread (replica calls %d / %d)", id, a, b)
		}
	}
}
