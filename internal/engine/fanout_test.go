package engine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"zoomer/internal/graph"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// slowBackend is a ShardBackend whose batch visit takes a fixed delay —
// a stand-in for a remote shard server across a real network. Draws are
// deterministic (entry i draws its own id) so results are checkable.
// It deliberately does NOT implement BatchStarter, exercising the
// bounded worker-pool fan-out path.
type slowBackend struct {
	delay time.Duration
	fail  error
}

var errInjected = errors.New("injected backend failure")

func (sb *slowBackend) SampleInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) (int, error) {
	if sb.fail != nil {
		return 0, sb.fail
	}
	for i := range out {
		out[i] = id
	}
	return len(out), nil
}

func (sb *slowBackend) SampleBatchInto(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) (int, error) {
	time.Sleep(sb.delay)
	if sb.fail != nil {
		return 0, sb.fail
	}
	total := 0
	for j, id := range gids {
		i := int(idx[j])
		for d := 0; d < k; d++ {
			out[i*k+d] = id
		}
		ns[i] = int32(k)
		total += k
	}
	return total, nil
}

func (sb *slowBackend) NeighborsOf(id graph.NodeID) ([]graph.Edge, error) { return nil, nil }
func (sb *slowBackend) FeaturesOf(id graph.NodeID) ([]int32, error)       { return nil, nil }
func (sb *slowBackend) ContentOf(id graph.NodeID) (tensor.Vec, error)     { return nil, nil }

// slowStarterBackend additionally implements BatchStarter, exercising
// the async overlap path: Start launches the visit, Await joins it.
type slowStarterBackend struct {
	slowBackend
}

type slowHandle struct {
	done chan struct{}
	n    int
	err  error
}

func (h *slowHandle) AwaitBatch() (int, error) {
	<-h.done
	return h.n, h.err
}

func (sb *slowStarterBackend) StartSampleBatch(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) BatchHandle {
	h := &slowHandle{done: make(chan struct{})}
	go func() {
		h.n, h.err = sb.SampleBatchInto(gids, idx, base, k, out, ns)
		close(h.done)
	}()
	return h
}

// fanoutWorld assembles an engine over four mock remote backends and a
// batch spanning all of them.
func fanoutWorld(t *testing.T, mk func(delay time.Duration) ShardBackend, delay time.Duration) (*Engine, []graph.NodeID) {
	t.Helper()
	const shards, numNodes = 4, 64
	b := graph.NewBuilder()
	for i := 0; i < numNodes; i++ {
		b.AddNode(graph.Item, nil, nil)
	}
	g := b.Build()
	routing := partition.Split(g, shards, partition.Hash).RoutingTable()
	backends := make([]ShardBackend, shards)
	for i := range backends {
		backends[i] = mk(delay)
	}
	e := NewWithBackends(routing, backends, 0)
	t.Cleanup(e.Close)
	ids := make([]graph.NodeID, 16)
	for i := range ids {
		ids[i] = graph.NodeID(i) // hash partitioning: i%4 spreads over all shards
	}
	return e, ids
}

// checkFanoutBatch runs one batch and asserts correctness plus that the
// four delayed visits overlapped: wall clock near one delay, not four.
func checkFanoutBatch(t *testing.T, e *Engine, ids []graph.NodeID, delay time.Duration) {
	t.Helper()
	const k = 3
	out := make([]graph.NodeID, len(ids)*k)
	ns := make([]int32, len(ids))
	bs := NewBatchScratch()
	start := time.Now()
	total, err := e.SampleNeighborsBatchInto(ids, k, out, ns, rng.New(1), bs)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if total != len(ids)*k {
		t.Fatalf("batch wrote %d draws, want %d", total, len(ids)*k)
	}
	for i, id := range ids {
		if ns[i] != k {
			t.Fatalf("entry %d count %d", i, ns[i])
		}
		for j := 0; j < k; j++ {
			if out[i*k+j] != id {
				t.Fatalf("entry %d draw %d is %d, want %d (visit wrote into the wrong region)", i, j, out[i*k+j], id)
			}
		}
	}
	// Four shards at `delay` each: sequential dispatch would take ≥ 4×.
	// Generous ceiling (2.5×) keeps the assertion robust on a loaded box
	// while still ruling the sequential path out.
	if limit := delay * 5 / 2; elapsed > limit {
		t.Fatalf("4-shard batch took %v — visits did not overlap (sequential would be ~%v)", elapsed, 4*delay)
	}
}

// The worker-pool fan-out must overlap visits to backends without async
// support: latency approaches max-of-shards, not sum-of-shards.
func TestFanoutOverlapsWorkerPoolVisits(t *testing.T) {
	const delay = 30 * time.Millisecond
	e, ids := fanoutWorld(t, func(d time.Duration) ShardBackend { return &slowBackend{delay: d} }, delay)
	checkFanoutBatch(t, e, ids, delay)
}

// The async BatchStarter path must overlap visits the same way.
func TestFanoutOverlapsStartedVisits(t *testing.T) {
	const delay = 30 * time.Millisecond
	e, ids := fanoutWorld(t, func(d time.Duration) ShardBackend { return &slowStarterBackend{slowBackend{delay: d}} }, delay)
	checkFanoutBatch(t, e, ids, delay)
}

// SampleTree's per-hop frontier batches ride the same fan-out: a 2-hop
// tree over four delayed shards costs ~2 delays, not ~8.
func TestFanoutOverlapsTreeHops(t *testing.T) {
	const delay = 20 * time.Millisecond
	e, _ := fanoutWorld(t, func(d time.Duration) ShardBackend { return &slowStarterBackend{slowBackend{delay: d}} }, delay)
	start := time.Now()
	tree, err := e.SampleTree(graph.NodeID(1), 2, 4, rng.New(2), NewBatchScratch())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	if len(tree) != 1+4+16 {
		t.Fatalf("tree has %d nodes, want 21", len(tree))
	}
	if limit := 2 * delay * 5 / 2; elapsed > limit {
		t.Fatalf("2-hop tree took %v — per-hop visits did not overlap", elapsed)
	}
}

// A failing visit in a parallel fan-out must zero every count and
// surface the failure, exactly like the sequential path — no partial
// results regardless of which shard failed or how late.
func TestFanoutFailureZeroesAllCounts(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			const delay = 5 * time.Millisecond
			mk := func(d time.Duration) ShardBackend { return &slowBackend{delay: d} }
			if async {
				mk = func(d time.Duration) ShardBackend { return &slowStarterBackend{slowBackend{delay: d}} }
			}
			e, ids := fanoutWorld(t, mk, delay)
			// Inject a failure into shard 2 only.
			switch be := e.Backend(2).(type) {
			case *slowBackend:
				be.fail = errInjected
			case *slowStarterBackend:
				be.fail = errInjected
			}
			const k = 3
			out := make([]graph.NodeID, len(ids)*k)
			ns := make([]int32, len(ids))
			for i := range ns {
				ns[i] = 9 // sentinel
			}
			_, err := e.SampleNeighborsBatchInto(ids, k, out, ns, rng.New(3), nil)
			if !errors.Is(err, errInjected) {
				t.Fatalf("parallel batch error %v does not wrap the backend failure", err)
			}
			for i, v := range ns {
				if v != 0 {
					t.Fatalf("entry %d count %d after failed parallel batch (partial results)", i, v)
				}
			}
		})
	}
}
