package engine

import (
	"sync"
	"testing"

	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
	"zoomer/internal/sampling"
)

// equivalenceEngines builds the same graph behind a single-store engine
// and two genuinely partitioned ones.
func equivalenceEngines(t testing.TB) (*graph.Graph, map[string]*Engine) {
	t.Helper()
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 1))
	g := graphbuild.Build(logs, graphbuild.DefaultConfig()).Graph
	return g, map[string]*Engine{
		"single":          New(g, Config{Shards: 1, Replicas: 1}),
		"hash-4":          New(g, Config{Shards: 4, Replicas: 2, Strategy: partition.Hash}),
		"degree-balanced": New(g, Config{Shards: 3, Replicas: 2, Strategy: partition.DegreeBalanced}),
		// Locality layouts must be draw-for-draw identical to the plain
		// ones: BFS renumbering moves rows in memory, never on the wire.
		"hash-4-locality": New(g, Config{Shards: 4, Replicas: 2, Strategy: partition.Hash, Locality: true}),
		"degree-locality": New(g, Config{Shards: 3, Replicas: 2, Strategy: partition.DegreeBalanced, Locality: true}),
	}
}

// Every read accessor must return exactly the source graph's rows no
// matter how the graph is partitioned.
func TestShardAccessorsMatchGraph(t *testing.T) {
	g, engines := equivalenceEngines(t)
	for name, e := range engines {
		for id := 0; id < g.NumNodes(); id++ {
			nid := graph.NodeID(id)
			want, got := g.Neighbors(nid), e.Neighbors(nid)
			if len(want) != len(got) {
				t.Fatalf("%s: node %d has %d edges, want %d", name, id, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s: node %d edge %d differs", name, id, i)
				}
			}
			if len(e.Features(nid)) != len(g.Features(nid)) {
				t.Fatalf("%s: node %d features differ", name, id)
			}
			if len(e.Content(nid)) != len(g.Content(nid)) {
				t.Fatalf("%s: node %d content differs", name, id)
			}
		}
	}
}

// Single-node sampling must be bit-identical across partitionings: a
// node's alias table depends only on its own adjacency, so the same RNG
// stream must yield the same draws on 1 shard and on 4.
func TestSamplingMatchesSingleStore(t *testing.T) {
	g, engines := equivalenceEngines(t)
	single := engines["single"]
	buf := make([]graph.NodeID, 7)
	want := make([]graph.NodeID, 7)
	for name, e := range engines {
		if name == "single" {
			continue
		}
		rs, re := rng.New(99), rng.New(99)
		for id := 0; id < g.NumNodes(); id += 3 {
			nid := graph.NodeID(id)
			nw := single.SampleNeighborsInto(nid, want, rs)
			ng := e.SampleNeighborsInto(nid, buf, re)
			if nw != ng {
				t.Fatalf("%s: node %d wrote %d, single store wrote %d", name, id, ng, nw)
			}
			for i := 0; i < nw; i++ {
				if want[i] != buf[i] {
					t.Fatalf("%s: node %d draw %d is %d, single store drew %d", name, id, i, buf[i], want[i])
				}
			}
		}
	}
}

// Scatter-gather batches must also be bit-identical across partitionings,
// despite visiting shards in different groupings: each entry draws from
// its own derived sub-stream.
func TestBatchSamplingMatchesSingleStore(t *testing.T) {
	g, engines := equivalenceEngines(t)
	r := rng.New(7)
	const k = 6
	ids := make([]graph.NodeID, 300)
	for i := range ids {
		ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	type result struct {
		out []graph.NodeID
		ns  []int32
	}
	results := map[string]result{}
	for name, e := range engines {
		out := make([]graph.NodeID, len(ids)*k)
		ns := make([]int32, len(ids))
		e.SampleNeighborsBatchInto(ids, k, out, ns, rng.New(123), NewBatchScratch())
		results[name] = result{out, ns}
	}
	want := results["single"]
	for name, got := range results {
		for i := range ids {
			if want.ns[i] != got.ns[i] {
				t.Fatalf("%s: entry %d count %d, single store %d", name, i, got.ns[i], want.ns[i])
			}
			for j := 0; j < int(want.ns[i]); j++ {
				if want.out[i*k+j] != got.out[i*k+j] {
					t.Fatalf("%s: entry %d draw %d is %d, single store drew %d",
						name, i, j, got.out[i*k+j], want.out[i*k+j])
				}
			}
		}
	}
}

// Multi-hop expansion (one batch per level) must be identical across
// partitionings under a fixed seed.
func TestSampleTreeMatchesSingleStore(t *testing.T) {
	g, engines := equivalenceEngines(t)
	var ego graph.NodeID
	for id := 0; id < g.NumNodes(); id++ {
		if g.Degree(graph.NodeID(id)) >= 5 {
			ego = graph.NodeID(id)
			break
		}
	}
	single := engines["single"]
	want, err := single.SampleTree(ego, 2, 5, rng.New(55), NewBatchScratch())
	if err != nil {
		t.Fatalf("single-store tree: %v", err)
	}
	if len(want) <= 1 {
		t.Fatalf("degenerate tree of %d nodes", len(want))
	}
	for name, e := range engines {
		got, err := e.SampleTree(ego, 2, 5, rng.New(55), NewBatchScratch())
		if err != nil {
			t.Fatalf("%s: tree: %v", name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: tree has %d nodes, single store %d", name, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: tree node %d is %+v, single store %+v", name, i, got[i], want[i])
			}
		}
	}
}

// SampleTree children must actually be neighbors of their parents.
func TestSampleTreeEdgesAreReal(t *testing.T) {
	g, engines := equivalenceEngines(t)
	e := engines["hash-4"]
	r := rng.New(8)
	bs := NewBatchScratch()
	for trial := 0; trial < 20; trial++ {
		ego := graph.NodeID(r.Intn(g.NumNodes()))
		tree, err := e.SampleTree(ego, 2, 4, r, bs)
		if err != nil {
			t.Fatalf("tree: %v", err)
		}
		if tree[0].ID != ego || tree[0].Parent != -1 {
			t.Fatalf("bad root %+v", tree[0])
		}
		for i := 1; i < len(tree); i++ {
			parent := tree[tree[i].Parent].ID
			found := false
			for _, edge := range g.Neighbors(parent) {
				if edge.To == tree[i].ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("tree node %d: %d is not a neighbor of %d", i, tree[i].ID, parent)
			}
		}
	}
}

// k <= 0 on a *reused* scratch must not read stale counts from the
// previous batch (regression: SampleTree(k=0) after a real expansion
// used to index a zero-length children buffer with last call's ns).
func TestSampleTreeNonPositiveKOnReusedScratch(t *testing.T) {
	g, engines := equivalenceEngines(t)
	e := engines["hash-4"]
	var ego graph.NodeID
	for id := 0; id < g.NumNodes(); id++ {
		if g.Degree(graph.NodeID(id)) >= 5 {
			ego = graph.NodeID(id)
			break
		}
	}
	bs := NewBatchScratch()
	if tree, err := e.SampleTree(ego, 2, 5, rng.New(1), bs); err != nil || len(tree) <= 1 {
		t.Fatalf("warm-up tree has %d nodes", len(tree))
	}
	for _, k := range []int{0, -3} {
		tree, err := e.SampleTree(ego, 2, k, rng.New(2), bs)
		if err != nil {
			t.Fatalf("k=%d: tree: %v", k, err)
		}
		if len(tree) != 1 || tree[0].ID != ego {
			t.Fatalf("k=%d: tree %+v, want root only", k, tree)
		}
	}
	// The batch call itself must also report zero draws, not stale ones.
	ids := []graph.NodeID{ego, ego}
	ns := []int32{7, 7}
	if n, err := e.SampleNeighborsBatchInto(ids, 0, nil, ns, rng.New(3), bs); err != nil || n != 0 {
		t.Fatalf("k=0 batch wrote %d", n)
	}
	if ns[0] != 0 || ns[1] != 0 {
		t.Fatalf("k=0 batch left stale counts %v", ns)
	}
}

// A batch charges exactly one replica per shard it touches, with the
// group size as the load — the per-shard accounting Stats reports.
func TestBatchChargesOneVisitPerShard(t *testing.T) {
	g, engines := equivalenceEngines(t)
	e := engines["hash-4"]
	perShard := make([]int64, e.NumShards())
	var ids []graph.NodeID
	for id := 0; id < g.NumNodes() && len(ids) < 64; id += 5 {
		nid := graph.NodeID(id)
		if g.Degree(nid) > 0 {
			ids = append(ids, nid)
			perShard[e.ShardOf(nid)]++
		}
	}
	const k = 3
	out := make([]graph.NodeID, len(ids)*k)
	ns := make([]int32, len(ids))
	e.SampleNeighborsBatchInto(ids, k, out, ns, rng.New(3), nil)
	st := e.Stats()
	for s, want := range perShard {
		if st.RequestsPerShard[s] != want {
			t.Fatalf("shard %d charged %d, want %d", s, st.RequestsPerShard[s], want)
		}
	}
	if st.Imbalance < 1 {
		t.Fatalf("imbalance %.3f < 1 with traffic served", st.Imbalance)
	}
}

// ROI construction routed through the engine boundary must reproduce the
// direct-graph result exactly, for every partitioning: the samplers see
// the same adjacencies and consume the same RNG stream either way.
func TestBuildTreeOverEngineMatchesGraph(t *testing.T) {
	g, engines := equivalenceEngines(t)
	s := sampling.NewFocalBiased()
	var egos []graph.NodeID
	for id := 0; id < g.NumNodes() && len(egos) < 10; id += 17 {
		egos = append(egos, graph.NodeID(id))
	}
	var compare func(name string, a, b *sampling.Tree)
	compare = func(name string, a, b *sampling.Tree) {
		if a.Node != b.Node || len(a.Edges) != len(b.Edges) {
			t.Fatalf("%s: tree node %d/%d edges %d/%d", name, a.Node, b.Node, len(a.Edges), len(b.Edges))
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				t.Fatalf("%s: edge %d differs at node %d", name, i, a.Node)
			}
			compare(name, a.Children[i], b.Children[i])
		}
	}
	for _, ego := range egos {
		focal := g.Content(ego)
		want := sampling.BuildTree(g, ego, focal, 2, 4, s, rng.New(31), nil)
		for name, e := range engines {
			got := sampling.BuildTree(e, ego, focal, 2, 4, s, rng.New(31), sampling.NewScratch())
			compare(name, want, got)
		}
	}
}

// Hammer concurrent scatter-gather across shards (meaningful under
// -race): the shard tables are read lock-free while counters advance.
func TestScatterGatherConcurrency(t *testing.T) {
	g, engines := equivalenceEngines(t)
	e := engines["degree-balanced"]
	const workers, iters, batch, k = 8, 100, 32, 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			bs := NewBatchScratch()
			ids := make([]graph.NodeID, batch)
			out := make([]graph.NodeID, batch*k)
			ns := make([]int32, batch)
			for it := 0; it < iters; it++ {
				for i := range ids {
					ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
				}
				e.SampleNeighborsBatchInto(ids, k, out, ns, r, bs)
				for i := range ids {
					for j := 0; j < int(ns[i]); j++ {
						if int(out[i*k+j]) >= g.NumNodes() {
							t.Errorf("out-of-range draw %d", out[i*k+j])
							return
						}
					}
				}
				tree, err := e.SampleTree(ids[0], 2, 3, r, bs)
				if err != nil || tree[0].ID != ids[0] {
					t.Error("tree root mismatch")
					return
				}
			}
		}(uint64(w + 70))
	}
	wg.Wait()
	var total int64
	for _, c := range e.Stats().RequestsPerShard {
		total += c
	}
	if total == 0 {
		t.Fatal("no shard requests recorded")
	}
}
