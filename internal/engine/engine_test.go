package engine

import (
	"sync"
	"testing"

	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/rng"
)

func buildEngine(t testing.TB) *Engine {
	t.Helper()
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 1))
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	return New(res.Graph, DefaultConfig())
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(nil, Config{Shards: 0, Replicas: 1})
}

func TestSampleNeighborsReturnsNeighbors(t *testing.T) {
	e := buildEngine(t)
	g := e.Graph()
	r := rng.New(2)
	for id := 0; id < g.NumNodes(); id += 7 {
		nid := graph.NodeID(id)
		nbrSet := map[graph.NodeID]bool{}
		for _, edge := range g.Neighbors(nid) {
			nbrSet[edge.To] = true
		}
		out := e.SampleNeighbors(nid, 5, r)
		if len(nbrSet) == 0 {
			if out != nil {
				t.Fatalf("isolated node %d sampled %v", id, out)
			}
			continue
		}
		if len(out) != 5 {
			t.Fatalf("node %d: got %d samples", id, len(out))
		}
		for _, to := range out {
			if !nbrSet[to] {
				t.Fatalf("node %d sampled non-neighbor %d", id, to)
			}
		}
	}
}

// Sampling must follow edge weights: build a node with one dominant edge.
func TestSampleFollowsWeights(t *testing.T) {
	b := graph.NewBuilder()
	ego := b.AddNode(graph.User, nil, nil)
	heavy := b.AddNode(graph.Item, nil, nil)
	light := b.AddNode(graph.Item, nil, nil)
	b.AddEdge(ego, heavy, graph.Click, 9)
	b.AddEdge(ego, light, graph.Click, 1)
	e := New(b.Build(), Config{Shards: 1, Replicas: 1})
	r := rng.New(3)
	heavyCount := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if e.SampleNeighbors(ego, 1, r)[0] == heavy {
			heavyCount++
		}
	}
	frac := float64(heavyCount) / n
	if frac < 0.87 || frac > 0.93 {
		t.Fatalf("heavy edge sampled %.3f, want ~0.9", frac)
	}
}

// Replicas must share load roughly evenly under round-robin.
func TestReplicaLoadBalance(t *testing.T) {
	e := buildEngine(t)
	g := e.Graph()
	r := rng.New(4)
	for i := 0; i < 4000; i++ {
		id := graph.NodeID(r.Intn(g.NumNodes()))
		e.SampleNeighbors(id, 2, r)
	}
	st := e.Stats()
	var total, maxRep int64
	for _, c := range st.RequestsPerRep {
		total += c
		if c > maxRep {
			maxRep = c
		}
	}
	if total == 0 {
		t.Fatal("no requests recorded")
	}
	mean := total / int64(len(st.RequestsPerRep))
	if maxRep > 2*mean+8 {
		t.Fatalf("replica load imbalanced: max %d vs mean %d", maxRep, mean)
	}
}

// Concurrent sampling must be race-free and correct (run under -race).
func TestConcurrentSampling(t *testing.T) {
	e := buildEngine(t)
	g := e.Graph()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < 500; i++ {
				id := graph.NodeID(r.Intn(g.NumNodes()))
				out := e.SampleNeighbors(id, 3, r)
				for _, to := range out {
					if int(to) >= g.NumNodes() {
						t.Errorf("out-of-range sample %d", to)
						return
					}
				}
			}
		}(uint64(w + 10))
	}
	wg.Wait()
	if st := e.Stats(); st.CachedTables == 0 {
		t.Fatal("no alias tables were cached")
	}
}

func TestPassthroughAccessors(t *testing.T) {
	e := buildEngine(t)
	g := e.Graph()
	var id graph.NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if g.Degree(graph.NodeID(i)) > 0 {
			id = graph.NodeID(i)
			break
		}
	}
	if len(e.Neighbors(id)) != g.Degree(id) {
		t.Fatal("Neighbors passthrough wrong")
	}
	if e.Content(id) == nil && g.Content(id) != nil {
		t.Fatal("Content passthrough wrong")
	}
	if len(e.Features(id)) != len(g.Features(id)) {
		t.Fatal("Features passthrough wrong")
	}
}

// benchIDs draws node ids with at least one neighbor. Isolated nodes
// take SampleNeighbors' no-allocation fast path, and a mix used to make
// the benchmark's accounting inconsistent — ~0.98 allocs/op truncates to
// "0 allocs/op" while B/op still reports the 47 amortized bytes. Every
// sampled id allocating makes B/op and allocs/op tell the same story
// (1 alloc, the returned draw slice; the Into variants are the
// allocation-free hot path and are benchmarked as BenchmarkHotPath*).
func benchIDs(g *graph.Graph, n int, r *rng.RNG) []graph.NodeID {
	ids := make([]graph.NodeID, 0, n)
	for len(ids) < n {
		id := graph.NodeID(r.Intn(g.NumNodes()))
		if g.Degree(id) > 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

func BenchmarkSampleNeighbors(b *testing.B) {
	e := buildEngine(b)
	g := e.Graph()
	r := rng.New(1)
	ids := benchIDs(g, 256, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SampleNeighbors(ids[i%len(ids)], 10, r)
	}
}

func BenchmarkSampleNeighborsParallel(b *testing.B) {
	e := buildEngine(b)
	g := e.Graph()
	r := rng.New(42)
	ids := benchIDs(g, 256, r)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(uint64(42))
		i := 0
		for pb.Next() {
			e.SampleNeighbors(ids[i%len(ids)], 10, r)
			i++
		}
	})
}

// BenchmarkSampleNeighborsBatch measures the scatter-gather layer: 64
// ids routed to their shards in one call, one replica charge per shard.
func BenchmarkSampleNeighborsBatch(b *testing.B) {
	e := buildEngine(b)
	g := e.Graph()
	r := rng.New(1)
	const batch, k = 64, 10
	ids := make([]graph.NodeID, batch)
	for i := range ids {
		ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	out := make([]graph.NodeID, batch*k)
	ns := make([]int32, batch)
	bs := NewBatchScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SampleNeighborsBatchInto(ids, k, out, ns, r, bs)
	}
}

// BenchmarkSampleTree measures frontier-batched multi-hop expansion.
func BenchmarkSampleTree(b *testing.B) {
	e := buildEngine(b)
	g := e.Graph()
	var ego graph.NodeID
	for id := 0; id < g.NumNodes(); id++ {
		if g.Degree(graph.NodeID(id)) >= 10 {
			ego = graph.NodeID(id)
			break
		}
	}
	r := rng.New(2)
	bs := NewBatchScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = e.SampleTree(ego, 2, 10, r, bs)
	}
}

// SampleNeighborsInto must fill the caller's buffer without allocating
// and agree with the adjacency.
func TestSampleNeighborsInto(t *testing.T) {
	e := buildEngine(t)
	g := e.Graph()
	r := rng.New(20)
	buf := make([]graph.NodeID, 6)
	for id := 0; id < g.NumNodes(); id += 11 {
		nid := graph.NodeID(id)
		nbrSet := map[graph.NodeID]bool{}
		for _, edge := range g.Neighbors(nid) {
			nbrSet[edge.To] = true
		}
		n := e.SampleNeighborsInto(nid, buf, r)
		if len(nbrSet) == 0 {
			if n != 0 {
				t.Fatalf("isolated node %d wrote %d samples", id, n)
			}
			continue
		}
		if n != len(buf) {
			t.Fatalf("node %d: wrote %d, want %d", id, n, len(buf))
		}
		for _, to := range buf[:n] {
			if !nbrSet[to] {
				t.Fatalf("node %d sampled non-neighbor %d", id, to)
			}
		}
	}
}

// An adjacency whose weights are all zero must degrade to uniform
// sampling rather than fail table construction.
func TestZeroWeightAdjacencyDegradesToUniform(t *testing.T) {
	b := graph.NewBuilder()
	ego := b.AddNode(graph.User, nil, nil)
	a := b.AddNode(graph.Item, nil, nil)
	c := b.AddNode(graph.Item, nil, nil)
	b.AddEdge(ego, a, graph.Click, 0)
	b.AddEdge(ego, c, graph.Click, 0)
	e := New(b.Build(), Config{Shards: 1, Replicas: 1})
	r := rng.New(21)
	counts := map[graph.NodeID]int{}
	for i := 0; i < 4000; i++ {
		counts[e.SampleNeighbors(ego, 1, r)[0]]++
	}
	for _, id := range []graph.NodeID{a, c} {
		frac := float64(counts[id]) / 4000
		if frac < 0.4 || frac > 0.6 {
			t.Fatalf("zero-weight neighbor %d sampled at %.3f, want ~0.5", id, frac)
		}
	}
}

// The precomputed tables are shared and read lock-free; hammer them from
// many goroutines (meaningful under -race) while checking counter
// consistency.
func TestLockFreeTablesUnderConcurrency(t *testing.T) {
	e := buildEngine(t)
	g := e.Graph()
	const workers, iters = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			buf := make([]graph.NodeID, 4)
			for i := 0; i < iters; i++ {
				id := graph.NodeID(r.Intn(g.NumNodes()))
				n := e.SampleNeighborsInto(id, buf, r)
				for _, to := range buf[:n] {
					if int(to) >= g.NumNodes() {
						t.Errorf("out-of-range sample %d", to)
						return
					}
				}
			}
		}(uint64(w + 30))
	}
	wg.Wait()
	st := e.Stats()
	var total int64
	for _, c := range st.RequestsPerRep {
		total += c
	}
	// Every non-isolated draw bumps exactly one replica counter.
	if total > workers*iters {
		t.Fatalf("request counters overcounted: %d > %d", total, workers*iters)
	}
	if st.CachedTables == 0 {
		t.Fatal("no precomputed tables")
	}
}

// k <= 0 must yield nil, not a panic (regression: make with negative k).
func TestSampleNeighborsNonPositiveK(t *testing.T) {
	e := buildEngine(t)
	r := rng.New(22)
	var id graph.NodeID
	for i := 0; i < e.Graph().NumNodes(); i++ {
		if e.Graph().Degree(graph.NodeID(i)) > 0 {
			id = graph.NodeID(i)
			break
		}
	}
	for _, k := range []int{0, -1, -42} {
		if out := e.SampleNeighbors(id, k, r); out != nil {
			t.Fatalf("k=%d returned %v, want nil", k, out)
		}
	}
	if n := e.SampleNeighborsInto(id, nil, r); n != 0 {
		t.Fatalf("empty buffer wrote %d", n)
	}
}
