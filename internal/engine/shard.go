package engine

import (
	"sync"
	"sync/atomic"

	"zoomer/internal/alias"
	"zoomer/internal/graph"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// Shard is one partition's in-process store: the per-shard CSR slice from
// internal/partition plus flat alias arrays aligned with the shard's own
// edge array (node with local index li has its table in
// prob/alias[Offsets[li]:Offsets[li+1]], alias indices local to the
// adjacency). The base arrays are immutable after New and read without
// locks; replicas carry only atomic load counters. Online appends layer
// per-node overlays on top via the atomically swapped delta view (see
// delta.go) — the read path loads it once per call and never locks.
// Shard implements GraphService for global node ids it owns — calls for
// foreign ids are a routing bug and will read another node's rows or
// index out of range.
type Shard struct {
	id    int
	part  *partition.Partition
	store *partition.Shard

	prob  []float64
	alias []int32
	// tableCount counts adjacencies with a table (degree > 0); atomic only
	// because chunks of one shard build concurrently during New.
	tableCount atomic.Int64

	// delta is the current overlay snapshot (nil before any append);
	// deltaMu serializes writers only.
	delta   atomic.Pointer[deltaView]
	deltaMu sync.Mutex

	replicas []*replica
	rr       atomic.Uint32 // round-robin replica cursor
}

// replica carries only its load counter: the tables it serves are the
// shard's immutable arrays, so adding replicas adds sampling capacity
// without duplicating state or taking locks.
type replica struct {
	requests atomic.Int64
}

func newShard(id int, part *partition.Partition, replicas int) *Shard {
	s := &Shard{
		id:       id,
		part:     part,
		store:    &part.Shards[id],
		replicas: make([]*replica, replicas),
	}
	for i := range s.replicas {
		s.replicas[i] = &replica{}
	}
	s.prob = make([]float64, s.store.NumEdges())
	s.alias = make([]int32, s.store.NumEdges())
	return s
}

// buildTables fills the alias arrays for local node indices [lo, hi),
// reusing one weight/stack scratch across the range. Chunks of one shard
// never overlap, so concurrent builders need no synchronization beyond
// the atomic table counter folded in by the caller.
func (s *Shard) buildTables(lo, hi int) {
	var weights []float64
	var stack []int32
	built := 0
	for li := lo; li < hi; li++ {
		elo, ehi := s.store.Offsets[li], s.store.Offsets[li+1]
		deg := int(ehi - elo)
		if deg == 0 {
			continue
		}
		if cap(weights) < deg {
			weights = make([]float64, deg)
			stack = make([]int32, deg)
		}
		weights = weights[:deg]
		stack = stack[:deg]
		for i, edge := range s.store.Edges[elo:ehi] {
			weights[i] = float64(edge.Weight)
		}
		if err := alias.BuildInto(s.prob[elo:ehi], s.alias[elo:ehi], weights, stack); err != nil {
			// Degenerate weights (all zero, or invalid values in a graph
			// that bypassed Builder validation): degrade this adjacency to
			// uniform rather than fail the shard.
			for i := range weights {
				weights[i] = 1
			}
			alias.MustBuildInto(s.prob[elo:ehi], s.alias[elo:ehi], weights, stack)
		}
		built++
	}
	s.tableCount.Add(int64(built))
}

// Tables returns the number of precomputed per-adjacency alias tables.
func (s *Shard) Tables() int { return int(s.tableCount.Load()) }

// pick selects a replica round-robin, spreading load evenly.
func (s *Shard) pick() *replica {
	n := s.rr.Add(1)
	return s.replicas[int(n)%len(s.replicas)]
}

// degree returns the out-degree of an owned node, appended edges
// included.
func (s *Shard) degree(id graph.NodeID) int {
	li := s.part.Local(id)
	return int(s.store.Offsets[li+1]-s.store.Offsets[li]) + s.deltaDegree(id)
}

// Neighbors returns the adjacency list of an owned node. Without live
// deltas this is an immutable zero-copy view into the shard's CSR
// slice; a node with appended edges gets a freshly built combined copy.
func (s *Shard) Neighbors(id graph.NodeID) []graph.Edge {
	li := s.part.Local(id)
	base := s.store.Edges[s.store.Offsets[li]:s.store.Offsets[li+1]]
	ov := s.overlayFor(id)
	if ov == nil {
		return base
	}
	out := make([]graph.Edge, 0, len(base)+len(ov.all))
	out = append(out, base...)
	return append(out, ov.all...)
}

// Content returns the node's content vector.
func (s *Shard) Content(id graph.NodeID) tensor.Vec {
	return s.store.Content[s.part.Local(id)]
}

// Features returns the node's categorical features.
func (s *Shard) Features(id graph.NodeID) []int32 {
	return s.store.Features[s.part.Local(id)]
}

// SampleNeighborsInto fills out with weighted neighbor draws of an owned
// node (with replacement) and returns the number written: len(out), or 0
// for an isolated node. One replica is charged per call. It performs no
// heap allocation; the only shared writes are the replica load counter
// and round-robin cursor.
func (s *Shard) SampleNeighborsInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) int {
	li := s.part.Local(id)
	lo, hi := s.store.Offsets[li], s.store.Offsets[li+1]
	// The overlay check precedes the isolated-node early return: a node
	// born isolated can gain edges online.
	if dv := s.delta.Load(); dv != nil {
		if ov := dv.overlays[id]; ov != nil {
			if len(out) == 0 {
				return 0
			}
			s.pick().requests.Add(1)
			s.sampleOverlay(ov, lo, hi, out, r)
			return len(out)
		}
	}
	if lo == hi || len(out) == 0 {
		return 0
	}
	s.pick().requests.Add(1)
	s.sampleLocal(lo, hi, out, r)
	return len(out)
}

// The in-process shard is a ShardBackend that never fails: the error
// returns exist so the routing layer can hold local shards and remote
// stubs behind one interface.

// SampleInto is SampleNeighborsInto with the ShardBackend signature.
func (s *Shard) SampleInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) (int, error) {
	return s.SampleNeighborsInto(id, out, r), nil
}

// SampleBatchInto serves one scatter-gather group: entry j is node
// gids[j] at global batch index idx[j], drawing k weighted neighbors from
// the sub-stream derived from (base, idx[j]) into out[idx[j]*k:...] with
// the count in ns[idx[j]]. One replica is charged for the whole visit
// with the group size as its load. The derived-RNG contract makes the
// result independent of grouping, so a remote backend serving the same
// partition returns bit-identical draws. No heap allocation.
func (s *Shard) SampleBatchInto(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) (int, error) {
	s.pick().requests.Add(int64(len(gids)))
	dv := s.delta.Load()
	var sub rng.RNG
	total := 0
	for j, id := range gids {
		i := int(idx[j])
		li := s.part.Local(id)
		lo, hi := s.store.Offsets[li], s.store.Offsets[li+1]
		if dv != nil {
			if ov := dv.overlays[id]; ov != nil {
				sub.Reseed(entrySeed(base, i))
				s.sampleOverlay(ov, lo, hi, out[i*k:(i+1)*k], &sub)
				ns[i] = int32(k)
				total += k
				continue
			}
		}
		if lo == hi {
			ns[i] = 0
			continue
		}
		sub.Reseed(entrySeed(base, i))
		s.sampleLocal(lo, hi, out[i*k:(i+1)*k], &sub)
		ns[i] = int32(k)
		total += k
	}
	return total, nil
}

// NeighborsOf is Neighbors with the ShardBackend signature.
func (s *Shard) NeighborsOf(id graph.NodeID) ([]graph.Edge, error) { return s.Neighbors(id), nil }

// FeaturesOf is Features with the ShardBackend signature.
func (s *Shard) FeaturesOf(id graph.NodeID) ([]int32, error) { return s.Features(id), nil }

// ContentOf is Content with the ShardBackend signature.
func (s *Shard) ContentOf(id graph.NodeID) (tensor.Vec, error) { return s.Content(id), nil }

// sampleLocal draws len(out) alias samples from the adjacency spanning
// [lo, hi) in the shard's edge array. Callers have already charged a
// replica for the visit.
func (s *Shard) sampleLocal(lo, hi int32, out []graph.NodeID, r *rng.RNG) {
	prob := s.prob[lo:hi]
	aliasIdx := s.alias[lo:hi]
	edges := s.store.Edges
	for i := range out {
		out[i] = edges[int(lo)+alias.SampleFrom(prob, aliasIdx, r)].To
	}
}
