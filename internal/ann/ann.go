// Package ann implements the approximate-nearest-neighbor retrieval
// module of §VI: after training, item embeddings are organized into a
// two-layer inverted index (the iGraph stand-in) — a coarse layer of
// k-means centroids over cosine space, and posting lists of items per
// centroid. A query probes the nprobe closest centroids and scores only
// their lists, trading a controllable amount of recall for sub-linear
// search.
package ann

import (
	"fmt"
	"sort"

	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// Result is one retrieved id with its cosine score.
type Result struct {
	ID    int64
	Score float32
}

// Index is an immutable IVF index over unit-normalized vectors.
type Index struct {
	dim       int
	centroids []tensor.Vec
	listIDs   [][]int64
	listVecs  [][]tensor.Vec
}

// Config tunes index construction.
type Config struct {
	NumLists int // coarse centroids (first layer)
	Iters    int // k-means refinement iterations
	Seed     uint64
}

// DefaultConfig sizes the index for ~10k-100k items.
func DefaultConfig() Config { return Config{NumLists: 32, Iters: 8, Seed: 1} }

// Build constructs the index from ids and their vectors (copied and
// normalized; zero vectors are assigned to a random list). It panics on
// length mismatch or empty input.
func Build(ids []int64, vecs []tensor.Vec, cfg Config) *Index {
	if len(ids) != len(vecs) {
		panic(fmt.Sprintf("ann: %d ids vs %d vectors", len(ids), len(vecs)))
	}
	if len(ids) == 0 {
		panic("ann: empty input")
	}
	if cfg.NumLists <= 0 {
		cfg.NumLists = 1
	}
	if cfg.NumLists > len(ids) {
		cfg.NumLists = len(ids)
	}
	dim := len(vecs[0])
	r := rng.New(cfg.Seed)

	normed := make([]tensor.Vec, len(vecs))
	for i, v := range vecs {
		if len(v) != dim {
			panic("ann: inconsistent vector dimensions")
		}
		nv := tensor.Copy(v)
		tensor.Normalize(nv)
		normed[i] = nv
	}

	// k-means++ seeding over cosine distance (= squared Euclidean on the
	// unit sphere up to scaling).
	centroids := make([]tensor.Vec, 0, cfg.NumLists)
	centroids = append(centroids, tensor.Copy(normed[r.Intn(len(normed))]))
	dist := make([]float64, len(normed))
	for len(centroids) < cfg.NumLists {
		var total float64
		last := centroids[len(centroids)-1]
		for i, v := range normed {
			d := float64(1 - tensor.Cosine(v, last))
			if len(centroids) == 1 || d < dist[i] {
				dist[i] = d
			}
			total += dist[i]
		}
		if total == 0 {
			centroids = append(centroids, tensor.Copy(normed[r.Intn(len(normed))]))
			continue
		}
		x := r.Float64() * total
		pick := len(normed) - 1
		for i, d := range dist {
			x -= d
			if x <= 0 {
				pick = i
				break
			}
		}
		centroids = append(centroids, tensor.Copy(normed[pick]))
	}

	assign := make([]int, len(normed))
	reassign := func() {
		for i, v := range normed {
			best, bestSim := 0, float32(-2)
			for c, cent := range centroids {
				if s := tensor.Cosine(v, cent); s > bestSim {
					best, bestSim = c, s
				}
			}
			assign[i] = best
		}
	}
	for iter := 0; iter < cfg.Iters; iter++ {
		reassign()
		sums := make([]tensor.Vec, len(centroids))
		counts := make([]int, len(centroids))
		for c := range sums {
			sums[c] = tensor.NewVec(dim)
		}
		for i, v := range normed {
			tensor.Axpy(1, v, sums[assign[i]])
			counts[assign[i]]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty centroid on a random point.
				centroids[c] = tensor.Copy(normed[r.Intn(len(normed))])
				continue
			}
			tensor.Normalize(sums[c])
			centroids[c] = sums[c]
		}
	}
	reassign()

	ix := &Index{
		dim:       dim,
		centroids: centroids,
		listIDs:   make([][]int64, len(centroids)),
		listVecs:  make([][]tensor.Vec, len(centroids)),
	}
	for i, c := range assign {
		ix.listIDs[c] = append(ix.listIDs[c], ids[i])
		ix.listVecs[c] = append(ix.listVecs[c], normed[i])
	}
	return ix
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// NumLists returns the coarse layer size.
func (ix *Index) NumLists() int { return len(ix.centroids) }

// Len returns the number of indexed vectors.
func (ix *Index) Len() int {
	n := 0
	for _, l := range ix.listIDs {
		n += len(l)
	}
	return n
}

// Search probes the nprobe closest coarse centroids and returns the topK
// highest-cosine results among their posting lists, best first.
func (ix *Index) Search(query tensor.Vec, topK, nprobe int) []Result {
	if len(query) != ix.dim {
		panic(fmt.Sprintf("ann: query dim %d, index dim %d", len(query), ix.dim))
	}
	if topK <= 0 {
		return nil
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > len(ix.centroids) {
		nprobe = len(ix.centroids)
	}
	q := tensor.Copy(query)
	tensor.Normalize(q)

	// Rank centroids.
	type cs struct {
		c int
		s float32
	}
	order := make([]cs, len(ix.centroids))
	for c, cent := range ix.centroids {
		order[c] = cs{c, tensor.Dot(q, cent)}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].s > order[j].s })

	results := make([]Result, 0, topK*2)
	for p := 0; p < nprobe; p++ {
		c := order[p].c
		for i, v := range ix.listVecs[c] {
			results = append(results, Result{ID: ix.listIDs[c][i], Score: tensor.Dot(q, v)})
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	if len(results) > topK {
		results = results[:topK]
	}
	return results
}

// SearchExact scans every vector — the brute-force reference used to
// measure recall in tests and benchmarks.
func (ix *Index) SearchExact(query tensor.Vec, topK int) []Result {
	return ix.Search(query, topK, len(ix.centroids))
}
