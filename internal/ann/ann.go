// Package ann implements the approximate-nearest-neighbor retrieval
// module of §VI: after training, item embeddings are organized into a
// two-layer inverted index (the iGraph stand-in) — a coarse layer of
// k-means centroids over cosine space, and posting lists of items per
// centroid. A query probes the nprobe closest centroids and scores only
// their lists, trading a controllable amount of recall for sub-linear
// search. The coarse layer is scored on int8-quantized centroids
// (symmetric per-centroid scales, exact int32 dots — see Index); the
// surviving posting lists are scored at full precision, so quantization
// costs probe choice, not ranking precision, and the recall tests pin
// that cost below 1%.
package ann

import (
	"fmt"
	"math"

	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// Result is one retrieved id with its cosine score.
type Result struct {
	ID    int64
	Score float32
}

// Index is an immutable IVF index over unit-normalized vectors.
//
// The coarse layer is stored twice: full-precision centroids (k-means
// construction, SearchExact) and an int8-quantized copy the hot search
// path scores instead. Quantization is symmetric per centroid — row c
// is qcent[c*dim:(c+1)*dim] with reconstruction c[i] ≈ qcent[i]·qscale[c]
// — so a centroid score is one int8 dot (int32-accumulated, exact)
// scaled by two floats. Posting lists are always scored at full
// precision; quantization only picks which lists to probe.
type Index struct {
	dim       int
	centroids []tensor.Vec
	qcent     []int8    // flat quantized centroid rows, cache-contiguous
	qscale    []float32 // per-centroid dequantization scale
	listIDs   [][]int64
	listVecs  [][]tensor.Vec
}

// Config tunes index construction.
type Config struct {
	NumLists int // coarse centroids (first layer)
	Iters    int // k-means refinement iterations
	Seed     uint64
}

// DefaultConfig sizes the index for ~10k-100k items.
func DefaultConfig() Config { return Config{NumLists: 32, Iters: 8, Seed: 1} }

// Build constructs the index from ids and their vectors (copied and
// normalized; zero vectors are assigned to a random list). It panics on
// length mismatch or empty input.
func Build(ids []int64, vecs []tensor.Vec, cfg Config) *Index {
	if len(ids) != len(vecs) {
		panic(fmt.Sprintf("ann: %d ids vs %d vectors", len(ids), len(vecs)))
	}
	if len(ids) == 0 {
		panic("ann: empty input")
	}
	if cfg.NumLists <= 0 {
		cfg.NumLists = 1
	}
	if cfg.NumLists > len(ids) {
		cfg.NumLists = len(ids)
	}
	dim := len(vecs[0])
	r := rng.New(cfg.Seed)

	normed := make([]tensor.Vec, len(vecs))
	for i, v := range vecs {
		if len(v) != dim {
			panic("ann: inconsistent vector dimensions")
		}
		nv := tensor.Copy(v)
		tensor.Normalize(nv)
		normed[i] = nv
	}

	// k-means++ seeding over cosine distance (= squared Euclidean on the
	// unit sphere up to scaling).
	centroids := make([]tensor.Vec, 0, cfg.NumLists)
	centroids = append(centroids, tensor.Copy(normed[r.Intn(len(normed))]))
	dist := make([]float64, len(normed))
	for len(centroids) < cfg.NumLists {
		var total float64
		last := centroids[len(centroids)-1]
		for i, v := range normed {
			d := float64(1 - tensor.Cosine(v, last))
			if len(centroids) == 1 || d < dist[i] {
				dist[i] = d
			}
			total += dist[i]
		}
		if total == 0 {
			centroids = append(centroids, tensor.Copy(normed[r.Intn(len(normed))]))
			continue
		}
		x := r.Float64() * total
		pick := len(normed) - 1
		for i, d := range dist {
			x -= d
			if x <= 0 {
				pick = i
				break
			}
		}
		centroids = append(centroids, tensor.Copy(normed[pick]))
	}

	assign := make([]int, len(normed))
	reassign := func() {
		for i, v := range normed {
			best, bestSim := 0, float32(-2)
			for c, cent := range centroids {
				if s := tensor.Cosine(v, cent); s > bestSim {
					best, bestSim = c, s
				}
			}
			assign[i] = best
		}
	}
	for iter := 0; iter < cfg.Iters; iter++ {
		reassign()
		sums := make([]tensor.Vec, len(centroids))
		counts := make([]int, len(centroids))
		for c := range sums {
			sums[c] = tensor.NewVec(dim)
		}
		for i, v := range normed {
			tensor.Axpy(1, v, sums[assign[i]])
			counts[assign[i]]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty centroid on a random point.
				centroids[c] = tensor.Copy(normed[r.Intn(len(normed))])
				continue
			}
			tensor.Normalize(sums[c])
			centroids[c] = sums[c]
		}
	}
	reassign()

	ix := &Index{
		dim:       dim,
		centroids: centroids,
		listIDs:   make([][]int64, len(centroids)),
		listVecs:  make([][]tensor.Vec, len(centroids)),
	}
	for i, c := range assign {
		ix.listIDs[c] = append(ix.listIDs[c], ids[i])
		ix.listVecs[c] = append(ix.listVecs[c], normed[i])
	}
	ix.quantizeCentroids()
	return ix
}

// quantizeCentroids fills the int8 coarse layer: symmetric per-centroid
// quantization q[i] = round(c[i]/scale) with scale = max|c[i]|/127, so
// the full int8 range is spent on each centroid's own dynamic range and
// reconstruction error is ≤ scale/2 per component. A zero centroid
// (possible only degenerately) quantizes to zeros with scale 0.
// Quantization runs once at build time in pure Go, so both build tags
// index identical bytes.
func (ix *Index) quantizeCentroids() {
	ix.qcent = make([]int8, len(ix.centroids)*ix.dim)
	ix.qscale = make([]float32, len(ix.centroids))
	for c, cent := range ix.centroids {
		var m float32
		for _, v := range cent {
			if a := float32(math.Abs(float64(v))); a > m {
				m = a
			}
		}
		if m == 0 {
			continue
		}
		scale := m / 127
		row := ix.qcent[c*ix.dim : (c+1)*ix.dim]
		for i, v := range cent {
			q := math.Round(float64(v / scale))
			switch {
			case q > 127:
				q = 127
			case q < -127:
				q = -127
			}
			row[i] = int8(q)
		}
		ix.qscale[c] = scale
	}
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// NumLists returns the coarse layer size.
func (ix *Index) NumLists() int { return len(ix.centroids) }

// Len returns the number of indexed vectors.
func (ix *Index) Len() int {
	n := 0
	for _, l := range ix.listIDs {
		n += len(l)
	}
	return n
}

// SearchScratch holds the per-worker buffers of the search hot path: the
// normalized query copy, its int8 quantization for the coarse scan,
// centroid scores, probe order and the bounded result heap. Not safe for
// concurrent use — one per worker, like *rng.RNG. Result slices returned
// by SearchInto are backed by the scratch and valid only until its next
// use.
type SearchScratch struct {
	q       tensor.Vec
	qq      []int8
	cscore  []float32
	corder  []int32
	results []Result
}

// NewSearchScratch sizes a scratch for this index.
func (ix *Index) NewSearchScratch() *SearchScratch {
	return &SearchScratch{q: make(tensor.Vec, ix.dim)}
}

func (sc *SearchScratch) centroidBufs(n int) ([]float32, []int32) {
	if cap(sc.cscore) < n {
		sc.cscore = make([]float32, n)
		sc.corder = make([]int32, n)
	}
	return sc.cscore[:n], sc.corder[:n]
}

func (sc *SearchScratch) queryQuant(n int) []int8 {
	if cap(sc.qq) < n {
		sc.qq = make([]int8, n)
	}
	return sc.qq[:n]
}

// quantizeQuery writes the symmetric int8 quantization of q into qq and
// returns its dequantization scale (0 for a zero query, whose quantized
// form is all zeros — every centroid then scores 0, exactly as the
// full-precision scan of a zero query would).
func quantizeQuery(q tensor.Vec, qq []int8) float32 {
	var m float32
	for _, v := range q {
		if a := float32(math.Abs(float64(v))); a > m {
			m = a
		}
	}
	if m == 0 {
		for i := range qq {
			qq[i] = 0
		}
		return 0
	}
	scale := m / 127
	for i, v := range q {
		x := math.Round(float64(v / scale))
		switch {
		case x > 127:
			x = 127
		case x < -127:
			x = -127
		}
		qq[i] = int8(x)
	}
	return scale
}

// Search probes the nprobe closest coarse centroids and returns the topK
// highest-cosine results among their posting lists, best first. The
// returned slice is independently owned. Serving workers should prefer
// SearchInto with a per-worker scratch, which allocates nothing.
func (ix *Index) Search(query tensor.Vec, topK, nprobe int) []Result {
	return ix.SearchInto(query, topK, nprobe, nil)
}

// SearchInto is Search with caller-supplied scratch: with a non-nil sc
// the whole probe — query normalization, the int8-quantized coarse scan
// that ranks centroids, full-precision candidate scoring and top-K
// selection (a bounded min-heap, O(C log K) over C candidates) —
// performs zero heap allocations, and the returned slice is backed by
// sc. A nil sc falls back to per-call allocation.
func (ix *Index) SearchInto(query tensor.Vec, topK, nprobe int, sc *SearchScratch) []Result {
	if len(query) != ix.dim {
		panic(fmt.Sprintf("ann: query dim %d, index dim %d", len(query), ix.dim))
	}
	if topK <= 0 {
		return nil
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > len(ix.centroids) {
		nprobe = len(ix.centroids)
	}
	if sc == nil {
		sc = ix.NewSearchScratch()
	}
	copy(sc.q, query)
	q := sc.q
	tensor.Normalize(q)

	// Rank centroids on the quantized coarse layer: one exact int8 dot
	// per centroid over the cache-contiguous qcent rows, scaled back by
	// the two dequantization factors. The int32 accumulation is
	// bit-identical across kernel dispatch, so the probe order — and
	// with it every result this function returns — is too. Then
	// partially select the nprobe best (nprobe passes of max-selection;
	// nprobe is small). The surviving lists are re-ranked at full
	// precision below.
	cscore, corder := sc.centroidBufs(len(ix.centroids))
	qq := sc.queryQuant(ix.dim)
	if qs := quantizeQuery(q, qq); qs == 0 {
		for c := range cscore {
			cscore[c] = 0
		}
	} else {
		for c := range ix.centroids {
			cscore[c] = float32(tensor.DotI8(qq, ix.qcent[c*ix.dim:(c+1)*ix.dim])) * ix.qscale[c] * qs
		}
	}
	for p := 0; p < nprobe; p++ {
		best := -1
		bestScore := float32(0)
		for c, s := range cscore {
			if best < 0 || s > bestScore {
				best, bestScore = c, s
			}
		}
		corder[p] = int32(best)
		cscore[best] = float32(math.Inf(-1))
	}

	// Scan the probed posting lists through a bounded min-heap of the
	// best topK candidates.
	if cap(sc.results) < topK {
		sc.results = make([]Result, 0, topK)
	}
	h := sc.results[:0]
	for p := 0; p < nprobe; p++ {
		c := corder[p]
		idsList := ix.listIDs[c]
		for i, v := range ix.listVecs[c] {
			s := tensor.Dot(q, v)
			if len(h) < topK {
				h = append(h, Result{ID: idsList[i], Score: s})
				siftUpResult(h, len(h)-1)
			} else if s > h[0].Score {
				h[0] = Result{ID: idsList[i], Score: s}
				siftDownResult(h, 0)
			}
		}
	}
	// Heap-sort the winners best first: popping the min to the back
	// leaves the slice in descending score order.
	for n := len(h) - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		siftDownResult(h[:n], 0)
	}
	sc.results = h
	return h
}

func siftUpResult(h []Result, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].Score <= h[i].Score {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDownResult(h []Result, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h[r].Score < h[l].Score {
			m = r
		}
		if h[i].Score <= h[m].Score {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// SearchExact scans every vector — the brute-force reference used to
// measure recall in tests and benchmarks.
func (ix *Index) SearchExact(query tensor.Vec, topK int) []Result {
	return ix.Search(query, topK, len(ix.centroids))
}
