package ann

import (
	"math"
	"testing"

	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// searchFullCoarse replicates SearchInto with the pre-quantization
// full-precision coarse scan — the reference the quantized probe's
// recall is pinned against.
func searchFullCoarse(ix *Index, query tensor.Vec, topK, nprobe int) []Result {
	q := tensor.Copy(query)
	tensor.Normalize(q)
	cscore := make([]float32, len(ix.centroids))
	for c, cent := range ix.centroids {
		cscore[c] = tensor.Dot(q, cent)
	}
	if nprobe > len(ix.centroids) {
		nprobe = len(ix.centroids)
	}
	var h []Result
	for p := 0; p < nprobe; p++ {
		best := -1
		bestScore := float32(0)
		for c, s := range cscore {
			if best < 0 || s > bestScore {
				best, bestScore = c, s
			}
		}
		cscore[best] = float32(math.Inf(-1))
		idsList := ix.listIDs[best]
		for i, v := range ix.listVecs[best] {
			s := tensor.Dot(q, v)
			if len(h) < topK {
				h = append(h, Result{ID: idsList[i], Score: s})
				siftUpResult(h, len(h)-1)
			} else if s > h[0].Score {
				h[0] = Result{ID: idsList[i], Score: s}
				siftDownResult(h, 0)
			}
		}
	}
	for n := len(h) - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		siftDownResult(h[:n], 0)
	}
	return h
}

// TestQuantizedCoarseRecall pins the acceptance bar: over the synthetic
// clustered corpus, recall@10 of the quantized-coarse probe against the
// full-precision-coarse probe at the same nprobe is ≥ 0.99. Quantization
// may only reshuffle which borderline centroid makes the probe cut; it
// must not cost measurable recall.
func TestQuantizedCoarseRecall(t *testing.T) {
	r := rng.New(21)
	ids, vecs, _ := clusteredData(r, 2000, 64, 32)
	ix := Build(ids, vecs, Config{NumLists: 32, Iters: 6, Seed: 7})

	const topK, nprobe, queries = 10, 4, 200
	var hit, total int
	for qi := 0; qi < queries; qi++ {
		q := vecs[r.Intn(len(vecs))]
		want := searchFullCoarse(ix, q, topK, nprobe)
		got := ix.Search(q, topK, nprobe)
		inWant := make(map[int64]bool, len(want))
		for _, res := range want {
			inWant[res.ID] = true
		}
		for _, res := range got {
			if inWant[res.ID] {
				hit++
			}
		}
		total += len(want)
	}
	recall := float64(hit) / float64(total)
	t.Logf("quantized-coarse recall@%d = %.4f (%d/%d)", topK, recall, hit, total)
	if recall < 0.99 {
		t.Fatalf("recall@%d = %.4f, want >= 0.99", topK, recall)
	}
}

// TestQuantizedSelectionDeterministic pins ranking stability: repeated
// probes of the same query — across scratches, including the nil-scratch
// allocation path — return identical ids, scores and order. Combined
// with the tensor-level bit-identity of DotI8 across dispatch, this
// makes SearchInto's output independent of which kernel build serves it.
func TestQuantizedSelectionDeterministic(t *testing.T) {
	r := rng.New(22)
	ids, vecs, _ := clusteredData(r, 800, 32, 16)
	ix := Build(ids, vecs, Config{NumLists: 16, Iters: 5, Seed: 9})
	sc := ix.NewSearchScratch()
	for qi := 0; qi < 50; qi++ {
		q := vecs[r.Intn(len(vecs))]
		a := append([]Result(nil), ix.SearchInto(q, 10, 3, sc)...)
		b := append([]Result(nil), ix.SearchInto(q, 10, 3, ix.NewSearchScratch())...)
		c := ix.Search(q, 10, 3)
		if len(a) != len(b) || len(a) != len(c) {
			t.Fatalf("query %d: result lengths diverge %d/%d/%d", qi, len(a), len(b), len(c))
		}
		for i := range a {
			if a[i] != b[i] || a[i] != c[i] {
				t.Fatalf("query %d pos %d: %v / %v / %v", qi, i, a[i], b[i], c[i])
			}
		}
	}
}

// TestQuantizationRoundTrip checks the symmetric-quantization format
// itself: every centroid component reconstructs within scale/2, the
// extreme component hits ±127 exactly, and a zero centroid quantizes to
// zeros with scale 0.
func TestQuantizationRoundTrip(t *testing.T) {
	r := rng.New(23)
	ids, vecs, _ := clusteredData(r, 400, 16, 8)
	ix := Build(ids, vecs, Config{NumLists: 8, Iters: 4, Seed: 3})
	for c, cent := range ix.centroids {
		row := ix.qcent[c*ix.dim : (c+1)*ix.dim]
		scale := ix.qscale[c]
		var m float32
		for _, v := range cent {
			if a := float32(math.Abs(float64(v))); a > m {
				m = a
			}
		}
		if m == 0 {
			if scale != 0 {
				t.Fatalf("centroid %d: zero vector with scale %v", c, scale)
			}
			continue
		}
		if scale <= 0 {
			t.Fatalf("centroid %d: non-positive scale %v", c, scale)
		}
		sawExtreme := false
		for i, v := range cent {
			rec := float32(row[i]) * scale
			if err := math.Abs(float64(rec - v)); err > float64(scale)/2+1e-7 {
				t.Fatalf("centroid %d[%d]: |%v - %v| = %v > scale/2 = %v", c, i, rec, v, err, scale/2)
			}
			if row[i] == 127 || row[i] == -127 {
				sawExtreme = true
			}
		}
		if !sawExtreme {
			t.Fatalf("centroid %d: no component at ±127 — scale not symmetric-max", c)
		}
	}
}

// TestZeroQueryQuantized: a zero query scores every centroid 0 and still
// probes deterministically (first nprobe centroids), matching the
// full-precision behavior for a zero vector.
func TestZeroQueryQuantized(t *testing.T) {
	r := rng.New(24)
	ids, vecs, _ := clusteredData(r, 200, 16, 4)
	ix := Build(ids, vecs, Config{NumLists: 4, Iters: 3, Seed: 5})
	zero := make(tensor.Vec, 16)
	a := ix.Search(zero, 5, 2)
	b := ix.Search(zero, 5, 2)
	if len(a) != len(b) {
		t.Fatalf("zero query nondeterministic: %d vs %d results", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zero query nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// BenchmarkQuantizedScan measures the coarse layer alone at serving
// shape (256 centroids × dim 64): quantize the query once, then one
// int8 dot per centroid. Must report 0 allocs/op.
func BenchmarkQuantizedScan(b *testing.B) {
	r := rng.New(31)
	ids, vecs, _ := clusteredData(r, 4096, 64, 256)
	ix := Build(ids, vecs, Config{NumLists: 256, Iters: 2, Seed: 11})
	sc := ix.NewSearchScratch()
	copy(sc.q, vecs[0])
	q := sc.q
	cscore, _ := sc.centroidBufs(len(ix.centroids))
	qq := sc.queryQuant(ix.dim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if qs := quantizeQuery(q, qq); qs != 0 {
			for c := range ix.centroids {
				cscore[c] = float32(tensor.DotI8(qq, ix.qcent[c*ix.dim:(c+1)*ix.dim])) * ix.qscale[c] * qs
			}
		}
	}
	sinkScore = cscore[0]
}

// BenchmarkFullPrecisionScan is the same coarse layer on full-precision
// dots — the before side of the quantization win, kept in the suite so
// the trajectory shows both.
func BenchmarkFullPrecisionScan(b *testing.B) {
	r := rng.New(31)
	ids, vecs, _ := clusteredData(r, 4096, 64, 256)
	ix := Build(ids, vecs, Config{NumLists: 256, Iters: 2, Seed: 11})
	sc := ix.NewSearchScratch()
	copy(sc.q, vecs[0])
	q := sc.q
	cscore, _ := sc.centroidBufs(len(ix.centroids))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c, cent := range ix.centroids {
			cscore[c] = tensor.Dot(q, cent)
		}
	}
	sinkScore = cscore[0]
}

var sinkScore float32
