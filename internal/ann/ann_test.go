package ann

import (
	"testing"

	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// clusteredData makes nClusters groups of points around random unit
// centers.
func clusteredData(r *rng.RNG, n, dim, nClusters int) ([]int64, []tensor.Vec, []int) {
	centers := make([]tensor.Vec, nClusters)
	for c := range centers {
		v := make(tensor.Vec, dim)
		for i := range v {
			v[i] = float32(r.NormFloat64())
		}
		tensor.Normalize(v)
		centers[c] = v
	}
	ids := make([]int64, n)
	vecs := make([]tensor.Vec, n)
	cluster := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(nClusters)
		cluster[i] = c
		v := tensor.Copy(centers[c])
		for j := range v {
			v[j] += 0.15 * float32(r.NormFloat64())
		}
		tensor.Normalize(v)
		ids[i] = int64(i)
		vecs[i] = v
	}
	return ids, vecs, cluster
}

func TestBuildValidation(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { Build(nil, nil, DefaultConfig()) })
	mustPanic(func() { Build([]int64{1}, nil, DefaultConfig()) })
}

func TestIndexCoversAllVectors(t *testing.T) {
	r := rng.New(1)
	ids, vecs, _ := clusteredData(r, 500, 16, 8)
	ix := Build(ids, vecs, Config{NumLists: 10, Iters: 5, Seed: 2})
	if ix.Len() != 500 {
		t.Fatalf("index holds %d vectors", ix.Len())
	}
	if ix.NumLists() != 10 {
		t.Fatalf("lists = %d", ix.NumLists())
	}
	if ix.Dim() != 16 {
		t.Fatalf("dim = %d", ix.Dim())
	}
}

func TestExactSearchFindsSelf(t *testing.T) {
	r := rng.New(3)
	ids, vecs, _ := clusteredData(r, 300, 16, 6)
	ix := Build(ids, vecs, Config{NumLists: 8, Iters: 5, Seed: 4})
	for i := 0; i < 20; i++ {
		res := ix.SearchExact(vecs[i], 1)
		if len(res) != 1 || res[0].ID != ids[i] {
			t.Fatalf("query %d: self not top-1 (got %v)", i, res)
		}
	}
}

// ANN with small nprobe must still achieve high recall vs exact search on
// clustered data — the design property of the two-layer index.
func TestRecallAtNprobe(t *testing.T) {
	r := rng.New(5)
	ids, vecs, _ := clusteredData(r, 2000, 16, 16)
	ix := Build(ids, vecs, Config{NumLists: 16, Iters: 8, Seed: 6})
	const topK = 10
	hits, total := 0, 0
	for q := 0; q < 50; q++ {
		query := vecs[r.Intn(len(vecs))]
		exact := ix.SearchExact(query, topK)
		approx := ix.Search(query, topK, 4)
		want := map[int64]bool{}
		for _, e := range exact {
			want[e.ID] = true
		}
		for _, a := range approx {
			if want[a.ID] {
				hits++
			}
		}
		total += len(exact)
	}
	recall := float64(hits) / float64(total)
	if recall < 0.8 {
		t.Fatalf("recall@nprobe=4 is %.2f, want >= 0.8", recall)
	}
}

func TestSearchOrderingAndBounds(t *testing.T) {
	r := rng.New(7)
	ids, vecs, _ := clusteredData(r, 200, 8, 4)
	ix := Build(ids, vecs, Config{NumLists: 4, Iters: 4, Seed: 8})
	res := ix.Search(vecs[0], 15, 2)
	if len(res) == 0 || len(res) > 15 {
		t.Fatalf("result size %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
	if out := ix.Search(vecs[0], 0, 2); out != nil {
		t.Fatal("topK=0 should return nil")
	}
}

func TestSearchDimPanic(t *testing.T) {
	r := rng.New(9)
	ids, vecs, _ := clusteredData(r, 50, 8, 2)
	ix := Build(ids, vecs, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dim mismatch")
		}
	}()
	ix.Search(make(tensor.Vec, 4), 5, 1)
}

func TestMoreListsThanPoints(t *testing.T) {
	r := rng.New(10)
	ids, vecs, _ := clusteredData(r, 5, 8, 2)
	ix := Build(ids, vecs, Config{NumLists: 64, Iters: 3, Seed: 11})
	if ix.Len() != 5 {
		t.Fatal("vectors lost")
	}
	res := ix.SearchExact(vecs[0], 5)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
}

// A reused per-worker scratch must reproduce the allocating Search
// result exactly, across repeated queries.
func TestSearchIntoScratchParity(t *testing.T) {
	r := rng.New(12)
	ids, vecs, _ := clusteredData(r, 800, 16, 8)
	ix := Build(ids, vecs, Config{NumLists: 12, Iters: 5, Seed: 13})
	sc := ix.NewSearchScratch()
	for q := 0; q < 20; q++ {
		query := vecs[r.Intn(len(vecs))]
		want := ix.Search(query, 10, 3)
		got := ix.SearchInto(query, 10, 3, sc)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results vs %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d: %+v vs %+v", q, i, got[i], want[i])
			}
		}
	}
}

// SearchInto with fewer candidates than topK must return them all,
// sorted.
func TestSearchIntoSmallIndex(t *testing.T) {
	r := rng.New(14)
	ids, vecs, _ := clusteredData(r, 6, 8, 2)
	ix := Build(ids, vecs, Config{NumLists: 2, Iters: 3, Seed: 15})
	sc := ix.NewSearchScratch()
	res := ix.SearchInto(vecs[0], 20, 2, sc)
	if len(res) != 6 {
		t.Fatalf("got %d results, want all 6", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
	if out := ix.SearchInto(vecs[0], 0, 2, sc); out != nil {
		t.Fatal("topK=0 should return nil")
	}
}

// The serving path requirement: SearchInto with a reused scratch must
// perform zero heap allocations per request.
func TestSearchIntoAllocs(t *testing.T) {
	r := rng.New(16)
	ids, vecs, _ := clusteredData(r, 2000, 32, 16)
	ix := Build(ids, vecs, Config{NumLists: 16, Iters: 5, Seed: 17})
	sc := ix.NewSearchScratch()
	q := vecs[0]
	ix.SearchInto(q, 100, 4, sc) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		ix.SearchInto(q, 100, 4, sc)
	})
	if allocs != 0 {
		t.Fatalf("SearchInto allocates %.1f per run, want 0", allocs)
	}
}

func BenchmarkSearchNprobe4(b *testing.B) {
	r := rng.New(1)
	ids, vecs, _ := clusteredData(r, 10000, 32, 32)
	ix := Build(ids, vecs, Config{NumLists: 32, Iters: 6, Seed: 2})
	q := vecs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, 100, 4)
	}
}

func BenchmarkSearchExact(b *testing.B) {
	r := rng.New(1)
	ids, vecs, _ := clusteredData(r, 10000, 32, 32)
	ix := Build(ids, vecs, Config{NumLists: 32, Iters: 6, Seed: 2})
	q := vecs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchExact(q, 100)
	}
}

// BenchmarkSearchInto measures the zero-allocation serving search with a
// reused per-worker scratch. Must report 0 allocs/op.
func BenchmarkSearchInto(b *testing.B) {
	r := rng.New(1)
	ids, vecs, _ := clusteredData(r, 10000, 32, 32)
	ix := Build(ids, vecs, Config{NumLists: 32, Iters: 6, Seed: 2})
	q := vecs[0]
	sc := ix.NewSearchScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchInto(q, 100, 4, sc)
	}
}
