package experiments

import (
	"net"
	"testing"

	"zoomer/internal/ad"
	"zoomer/internal/baselines"
	"zoomer/internal/core"
	"zoomer/internal/engine"
	"zoomer/internal/eval"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
	"zoomer/internal/rpc"
	"zoomer/internal/tensor"
)

// trainTrace is everything a training run produces that the suite pins
// bit-for-bit: the per-step loss trace, per-epoch losses, final
// AUC/MAE/RMSE, retrieval hit-rates, and raw embedding draws.
type trainTrace struct {
	stepLosses  []float64
	epochLosses []float64
	auc         float64
	mae, rmse   float64
	hitRates    map[int]float64
	uqEmb       tensor.Vec
	itemEmb     tensor.Vec
}

// topology is one named GraphView over the shared world.
type topology struct {
	name string
	view core.GraphView
}

// equivalenceTopologies builds the full cross-topology matrix over one
// tiny world: the monolithic graph, local sharded engines across
// shard counts / strategies / locality, and a 2-server loopback-RPC
// remote engine. The returned cleanup closes every engine and server.
func equivalenceTopologies(t testing.TB) (*world, []topology, func()) {
	t.Helper()
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 1))
	res := buildWorldFromLogs(logs, 1)
	var closers []func()

	topos := []topology{{name: "graph", view: res.res.Graph}}
	add := func(name string, cfg engine.Config) {
		eng := engine.New(res.res.Graph, cfg)
		closers = append(closers, eng.Close)
		topos = append(topos, topology{name: name, view: core.EngineView{Engine: eng, M: res.res.Mapping}})
	}
	add("hash-1", engine.Config{Shards: 1, Replicas: 1, Strategy: partition.Hash, Locality: false})
	add("hash-2", engine.Config{Shards: 2, Replicas: 1, Strategy: partition.Hash, Locality: false})
	add("hash-4-locality", engine.Config{Shards: 4, Replicas: 2, Strategy: partition.Hash, Locality: true})
	add("degree-2", engine.Config{Shards: 2, Replicas: 1, Strategy: partition.DegreeBalanced, Locality: false})
	add("degree-4-locality", engine.Config{Shards: 4, Replicas: 1, Strategy: partition.DegreeBalanced, Locality: true})

	// Loopback remote: four hash shards behind two TCP servers.
	layout := [][]int{{0, 2}, {1, 3}}
	addrs := make([]string, len(layout))
	for i, owned := range layout {
		srv := rpc.NewServer(res.res.Graph, rpc.ServerConfig{
			Shards: 4, Strategy: partition.Hash, Owned: owned, Replicas: 1, Locality: true,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv.Start(ln)
		addrs[i] = ln.Addr().String()
		closers = append(closers, func() { srv.Close() })
	}
	cluster, err := rpc.DialCluster(addrs...)
	if err != nil {
		t.Fatalf("dial cluster: %v", err)
	}
	closers = append(closers, func() { cluster.Close() })
	topos = append(topos, topology{name: "remote-2servers", view: core.EngineView{Engine: cluster.Engine, M: res.res.Mapping}})

	cleanup := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	return res, topos, cleanup
}

// buildWorldFromLogs mirrors buildWorld without constructing an engine
// (the suite builds its own topologies).
func buildWorldFromLogs(logs *loggen.Logs, negPerPos int) *world {
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	ds := loggen.BuildExamples(logs, negPerPos, 0.25, 101)
	return &world{
		logs:  logs,
		res:   res,
		train: core.InstancesFromExamples(ds.Train, res.Mapping),
		test:  core.InstancesFromExamples(ds.Test, res.Mapping),
	}
}

// equivModelCtor builds a named model over a view with a fixed seed, so
// every topology starts from bit-identical weights.
func equivModelCtor(name string, g core.GraphView, v loggen.Vocab) core.Model {
	bcfg := baselines.Config{EmbedDim: 16, OutDim: 16, Hops: 1, FanOut: 4, LogitScale: 5}
	switch name {
	case "zoomer":
		cfg := core.DefaultConfig()
		cfg.EmbedDim, cfg.OutDim = 16, 16
		cfg.Hops, cfg.FanOut = 1, 4
		return core.NewZoomer(g, v, cfg, 31)
	case "graphsage":
		return baselines.NewGraphSAGE(g, v, bcfg, 32)
	case "pinsage":
		return baselines.NewPinSage(g, v, bcfg, 33)
	case "pinnersage":
		return baselines.NewPinnerSage(g, v, bcfg, 34)
	case "pixie":
		return baselines.NewPixie(g, v, bcfg, 35)
	case "han":
		return baselines.NewHAN(g, v, bcfg, 36)
	case "gce-gnn":
		return baselines.NewGCEGNN(g, v, bcfg, 37)
	case "fgnn":
		return baselines.NewFGNN(g, v, bcfg, 38)
	case "stamp":
		return baselines.NewSTAMP(g, v, bcfg, 39)
	case "mccf":
		return baselines.NewMCCF(g, v, bcfg, 40)
	}
	panic("unknown model " + name)
}

// runTrainingTrace trains a fresh model of the given kind over view g
// and captures the full pinned trace.
func runTrainingTrace(w *world, name string, g core.GraphView, v loggen.Vocab, mp graphbuild.Mapping) trainTrace {
	m := equivModelCtor(name, g, v)
	tc := core.DefaultTrainConfig()
	tc.Seed = 71
	tc.Epochs, tc.MaxSteps, tc.BatchSize = 2, 30, 8
	var tr trainTrace
	tc.OnStep = func(step int, loss float64) { tr.stepLosses = append(tr.stepLosses, loss) }
	res := core.Train(m, w.train, w.test, tc)
	tr.epochLosses = res.EpochLosses
	tr.auc = res.TestAUC

	// Post-training predictions on the test split -> MAE/RMSE.
	r := rng.New(72)
	var pred, target []float64
	for lo := 0; lo < len(w.test); lo += 16 {
		hi := min(lo+16, len(w.test))
		t := ad.NewTape()
		logits := m.Logits(t, w.test[lo:hi], r)
		for i, ex := range w.test[lo:hi] {
			pred = append(pred, float64(tensor.Sigmoid(logits.Val.Data[i])))
			target = append(target, float64(ex.Label))
		}
	}
	tr.mae = eval.MAE(pred, target)
	tr.rmse = eval.RMSE(pred, target)

	// Retrieval draws: hit-rate over all items plus raw embedding bits.
	items := mp.NodesOfType(graph.Item)
	tr.hitRates = core.HitRateAtKs(m, w.test, items, []int{5, 20}, 10, 73)
	er := rng.New(74)
	ex := w.test[0]
	tr.uqEmb = m.UserQueryEmbedding(ex.User, ex.Query, er)
	tr.itemEmb = m.ItemEmbedding(ex.Item, er)
	return tr
}

// requireTraceEqual asserts two traces match bit-for-bit.
func requireTraceEqual(t *testing.T, model, topo string, want, got trainTrace) {
	t.Helper()
	if len(want.stepLosses) != len(got.stepLosses) {
		t.Fatalf("%s/%s: %d steps != %d", model, topo, len(got.stepLosses), len(want.stepLosses))
	}
	for i := range want.stepLosses {
		if want.stepLosses[i] != got.stepLosses[i] {
			t.Fatalf("%s/%s: step %d loss %v != %v", model, topo, i, got.stepLosses[i], want.stepLosses[i])
		}
	}
	if len(want.epochLosses) != len(got.epochLosses) {
		t.Fatalf("%s/%s: epoch count mismatch", model, topo)
	}
	for i := range want.epochLosses {
		if want.epochLosses[i] != got.epochLosses[i] {
			t.Fatalf("%s/%s: epoch %d loss %v != %v", model, topo, i, got.epochLosses[i], want.epochLosses[i])
		}
	}
	if want.auc != got.auc {
		t.Fatalf("%s/%s: AUC %v != %v", model, topo, got.auc, want.auc)
	}
	if want.mae != got.mae || want.rmse != got.rmse {
		t.Fatalf("%s/%s: MAE/RMSE (%v,%v) != (%v,%v)", model, topo, got.mae, got.rmse, want.mae, want.rmse)
	}
	for k, v := range want.hitRates {
		if got.hitRates[k] != v {
			t.Fatalf("%s/%s: HR@%d %v != %v", model, topo, k, got.hitRates[k], v)
		}
	}
	for i := range want.uqEmb {
		if want.uqEmb[i] != got.uqEmb[i] {
			t.Fatalf("%s/%s: uq embedding dim %d differs", model, topo, i)
		}
	}
	for i := range want.itemEmb {
		if want.itemEmb[i] != got.itemEmb[i] {
			t.Fatalf("%s/%s: item embedding dim %d differs", model, topo, i)
		}
	}
}

// TestTrainingEquivalenceAcrossTopologies is the PR's headline harness:
// full training runs — ad.Tape gradients, per-step and per-epoch loss
// traces, final AUC/MAE/RMSE, retrieval hit-rates and raw embedding
// draws — are bit-identical whether the model samples from the
// monolithic graph, local sharded engines (hash and degree-balanced,
// 1/2/4 shards, locality on and off), or a 2-server loopback-RPC
// remote engine. Zoomer plus one representative of each baseline
// family trains end to end; TestForwardEquivalenceAllModels covers the
// remaining constructors' forward passes.
func TestTrainingEquivalenceAcrossTopologies(t *testing.T) {
	w, topos, cleanup := equivalenceTopologies(t)
	defer cleanup()
	v := w.logs.Vocab()
	mp := w.res.Mapping

	models := []string{"zoomer", "graphsage", "han", "stamp"}
	for _, model := range models {
		want := runTrainingTrace(w, model, topos[0].view, v, mp)
		if len(want.stepLosses) == 0 {
			t.Fatalf("%s: empty training trace", model)
		}
		for _, topo := range topos[1:] {
			got := runTrainingTrace(w, model, topo.view, v, mp)
			requireTraceEqual(t, model, topo.name, want, got)
		}
	}
}

// TestForwardEquivalenceAllModels pins the forward pass of every model
// constructor across the topology matrix: training-batch logits and
// request/item embeddings must be bit-identical to the monolithic
// graph's. This is the cheap full-coverage companion of the training
// suite above.
func TestForwardEquivalenceAllModels(t *testing.T) {
	w, topos, cleanup := equivalenceTopologies(t)
	defer cleanup()
	v := w.logs.Vocab()

	models := []string{"zoomer", "graphsage", "pinsage", "pinnersage", "pixie", "han", "gce-gnn", "fgnn", "stamp", "mccf"}
	batch := w.train[:min(8, len(w.train))]
	for _, model := range models {
		var want []float32
		var wantEmb tensor.Vec
		for i, topo := range topos {
			m := equivModelCtor(model, topo.view, v)
			tp := ad.NewTape()
			logits := m.Logits(tp, batch, rng.New(55))
			emb := m.UserQueryEmbedding(batch[0].User, batch[0].Query, rng.New(56))
			if i == 0 {
				want = append([]float32(nil), logits.Val.Data...)
				wantEmb = emb
				continue
			}
			for j := range want {
				if logits.Val.Data[j] != want[j] {
					t.Fatalf("%s/%s: logit %d %v != %v", model, topo.name, j, logits.Val.Data[j], want[j])
				}
			}
			for j := range wantEmb {
				if emb[j] != wantEmb[j] {
					t.Fatalf("%s/%s: embedding dim %d differs", model, topo.name, j)
				}
			}
		}
	}
}
