package experiments

import (
	"fmt"
	"runtime"
	"time"

	"zoomer/internal/ad"
	"zoomer/internal/core"
	"zoomer/internal/eval"
	"zoomer/internal/loggen"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// Fig4aRow is one point of Fig. 4(a): the cost of training a 2-layer GCN
// as the number of sampled neighbors grows.
type Fig4aRow struct {
	Neighbors  int
	IterPerSec float64
	AllocMB    float64 // bytes allocated per iteration (memory-pressure proxy)
}

// Fig4aResult is the Fig. 4(a) series.
type Fig4aResult struct{ Rows []Fig4aRow }

// String prints the series.
func (r Fig4aResult) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			fmt.Sprint(row.Neighbors),
			fmt.Sprintf("%.2f", row.IterPerSec),
			fmt.Sprintf("%.1f", row.AllocMB),
		}
	}
	return "Fig 4(a): GCN training cost vs sampled neighbors\n" +
		table([]string{"neighbors", "iters/s", "alloc MB/iter"}, rows)
}

// Fig4a measures training speed and allocation for a 2-layer GCN while
// the per-hop neighbor budget grows — the paper's motivation that cost
// explodes with neighborhood size.
func Fig4a(o Options) Fig4aResult {
	w := o.taobaoWorld(loggen.ScaleSmall)
	defer w.Close()
	ks := []int{5, 10, 20, 30, 40, 50}
	iters := 6
	if o.Quick {
		ks = []int{2, 4, 8}
		iters = 3
	}
	var out Fig4aResult
	for _, k := range ks {
		cfg := o.modelConfig()
		cfg.Hops = 2
		cfg.FanOut = k
		// Plain GCN: all attention levels off (mean pooling).
		cfg.UseFeatureProj, cfg.UseEdgeAttn, cfg.UseSemanticAttn = false, false, false
		m := core.NewZoomer(w.view, w.logs.Vocab(), cfg, o.Seed)
		r := rng.New(o.Seed + uint64(k))
		batch := w.train[:min(16, len(w.train))]
		targets := make([]float32, len(batch))
		for i, ex := range batch {
			targets[i] = ex.Label
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < iters; i++ {
			t := ad.NewTape()
			logits := m.Logits(t, batch, r)
			t.Backward(t.BCEWithLogits(logits, targets))
			for _, p := range m.DenseParams() {
				p.ZeroGrad()
			}
			for _, tab := range m.Tables() {
				tab.ZeroGrad()
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		out.Rows = append(out.Rows, Fig4aRow{
			Neighbors:  k,
			IterPerSec: float64(iters) / elapsed.Seconds(),
			AllocMB:    float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters) / (1 << 20),
		})
		o.logf("fig4a k=%d done", k)
	}
	return out
}

// Fig4bResult summarizes Fig. 4(b): similarities between successive
// queries posed by the same user within a session.
type Fig4bResult struct {
	Pairs     int
	Mean, Std float64
	// SamplePairs holds the first few successive-query similarities, the
	// per-pair bars of the paper's figure.
	SamplePairs []float64
	// FracBelowHalf is the fraction of pairs with similarity < 0.5 —
	// evidence that focal interests drift quickly.
	FracBelowHalf float64
}

// String prints the summary.
func (r Fig4bResult) String() string {
	s := fmt.Sprintf("Fig 4(b): successive-query similarity (n=%d)\nmean %.3f  std %.3f  frac(sim<0.5) %.2f\n",
		r.Pairs, r.Mean, r.Std, r.FracBelowHalf)
	s += "sample u-q pairs:"
	for _, v := range r.SamplePairs {
		s += fmt.Sprintf(" %.2f", v)
	}
	return s + "\n"
}

// Fig4b measures the similarity between successive queries in each
// session, reproducing the observation that focal interests change
// quickly even within a session.
func Fig4b(o Options) Fig4bResult {
	w := o.taobaoWorld(loggen.ScaleSmall)
	defer w.Close()
	var sims []float64
	for _, s := range w.logs.Sessions {
		for i := 1; i < len(s.Events); i++ {
			a := w.logs.Queries[s.Events[i-1].Query].Content
			b := w.logs.Queries[s.Events[i].Query].Content
			sims = append(sims, float64(tensor.Cosine(a, b)))
		}
	}
	mean, std := eval.MeanStd(sims)
	below := 0
	for _, v := range sims {
		if v < 0.5 {
			below++
		}
	}
	n := 12
	if n > len(sims) {
		n = len(sims)
	}
	return Fig4bResult{
		Pairs:         len(sims),
		Mean:          mean,
		Std:           std,
		SamplePairs:   sims[:n],
		FracBelowHalf: float64(below) / float64(len(sims)),
	}
}

// Fig4cResult summarizes Fig. 4(c): the CDF of similarities between focal
// points and the user's interaction-based local graph, for a short-window
// ("1-hour") and long-window ("1-day") graph.
type Fig4cResult struct {
	// CDFAtZero is P(similarity <= 0) per window — the paper reports
	// ~80% (1-hour) and ~40% (1-day).
	ShortCDFAtZero, LongCDFAtZero float64
	ShortMean, LongMean           float64
	// Quantiles of both distributions at fixed probe points.
	Probes   []float64
	ShortCDF []float64
	LongCDF  []float64
}

// String prints both CDFs.
func (r Fig4cResult) String() string {
	rows := make([][]string, len(r.Probes))
	for i := range r.Probes {
		rows[i] = []string{
			fmt.Sprintf("%.2f", r.Probes[i]),
			fmt.Sprintf("%.2f", r.ShortCDF[i]),
			fmt.Sprintf("%.2f", r.LongCDF[i]),
		}
	}
	return fmt.Sprintf("Fig 4(c): focal-to-local-graph similarity CDF\nP(sim<=0): 1-hour %.2f, 1-day %.2f; means %.3f / %.3f\n",
		r.ShortCDFAtZero, r.LongCDFAtZero, r.ShortMean, r.LongMean) +
		table([]string{"sim", "CDF 1-hour", "CDF 1-day"}, rows)
}

// Fig4c builds a short-window and a long-window behavior graph and, for
// sampled users, measures cosine similarity between the user's focal
// points (user + one posed query) and every item the user clicked.
func Fig4c(o Options) Fig4cResult {
	seedBase := o.Seed + 40
	shortCfg := loggen.TaobaoConfig(loggen.ScaleSmall, seedBase)
	if o.Quick {
		shortCfg = loggen.TaobaoConfig(loggen.ScaleTiny, seedBase)
	}
	// Short window: few sessions per user, narrow drift (timely intent
	// dominates). Long window: many sessions accumulating long-term
	// interests, so any single focal matches less of the history.
	shortCfg.SessionsPerUser = 2
	longCfg := shortCfg
	longCfg.Seed = seedBase + 1
	longCfg.SessionsPerUser = 12

	measure := func(cfg loggen.Config) []float64 {
		logs := loggen.MustGenerate(cfg)
		r := rng.New(cfg.Seed + 9)
		var sims []float64
		// Sample 10 users with behavior, as the paper does.
		users := r.Perm(len(logs.Users))
		picked := 0
		for _, u := range users {
			var clicks []int
			var firstQuery = -1
			for _, s := range logs.Sessions {
				if s.User != u {
					continue
				}
				for _, ev := range s.Events {
					if firstQuery < 0 {
						firstQuery = ev.Query
					}
					for _, c := range ev.Clicks {
						clicks = append(clicks, c.Item)
					}
				}
			}
			if firstQuery < 0 || len(clicks) == 0 {
				continue
			}
			focal := tensor.Copy(logs.Users[u].Content)
			tensor.Axpy(1, logs.Queries[firstQuery].Content, focal)
			for _, item := range clicks {
				sims = append(sims, float64(tensor.Cosine(focal, logs.Items[item].Content)))
			}
			picked++
			if picked == 10 {
				break
			}
		}
		return sims
	}
	shortSims := measure(shortCfg)
	longSims := measure(longCfg)
	shortCDF := eval.NewCDF(shortSims)
	longCDF := eval.NewCDF(longSims)
	probes := []float64{-0.2, -0.1, 0, 0.1, 0.2, 0.4, 0.6}
	res := Fig4cResult{
		ShortCDFAtZero: shortCDF.At(0),
		LongCDFAtZero:  longCDF.At(0),
		Probes:         probes,
	}
	res.ShortMean, _ = eval.MeanStd(shortSims)
	res.LongMean, _ = eval.MeanStd(longSims)
	for _, p := range probes {
		res.ShortCDF = append(res.ShortCDF, shortCDF.At(p))
		res.LongCDF = append(res.LongCDF, longCDF.At(p))
	}
	return res
}
