package experiments

import (
	"fmt"
	"time"

	"zoomer/internal/baselines"
	"zoomer/internal/core"
	"zoomer/internal/loggen"
)

// Fig10Row is one (model, scale) training-time measurement.
type Fig10Row struct {
	Model   string
	Scale   string
	Seconds float64
	AUC     float64
}

// Fig10Result is training time to a target AUC versus graph scale.
type Fig10Result struct {
	TargetAUC float64
	Rows      []Fig10Row
}

// Time returns the duration for (model, scale), or 0.
func (r Fig10Result) Time(model, scale string) float64 {
	for _, row := range r.Rows {
		if row.Model == model && row.Scale == scale {
			return row.Seconds
		}
	}
	return 0
}

// String prints the matrix.
func (r Fig10Result) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Model, row.Scale,
			fmt.Sprintf("%.2fs", row.Seconds), fmt.Sprintf("%.3f", row.AUC)}
	}
	return fmt.Sprintf("Fig 10: training time to AUC %.2f vs graph scale\n", r.TargetAUC) +
		table([]string{"model", "scale", "time", "final AUC"}, rows)
}

// Fig10 reproduces the scalability experiment: train Zoomer and GCE-GNN
// to a target AUC (0.6 in the paper) on the three graph scales with
// sampling number 5 and 2-layer aggregation, recording wall-clock time.
func Fig10(o Options) Fig10Result {
	target := 0.6
	scales := []loggen.Scale{loggen.ScaleSmall, loggen.ScaleMedium, loggen.ScaleLarge}
	if o.Quick {
		target = 0.52
		scales = []loggen.Scale{loggen.ScaleTiny}
	}
	out := Fig10Result{TargetAUC: target}
	for si, sc := range scales {
		w := buildWorld(loggen.TaobaoConfig(sc, o.Seed+uint64(si)), 1, o.Seed+uint64(si))
		v := w.logs.Vocab()
		zcfg := o.modelConfig()
		zcfg.FanOut = 5
		zcfg.Hops = 2
		bcfg := o.baselineConfig()
		bcfg.FanOut = 5
		bcfg.Hops = 2
		if o.Quick {
			zcfg.Hops, bcfg.Hops = 1, 1
		}
		models := []core.Model{
			core.NewZoomer(w.view, v, zcfg, o.Seed+1),
			baselines.NewGCEGNN(w.view, v, bcfg, o.Seed+2),
		}
		for _, m := range models {
			tc := o.trainConfig()
			tc.TargetAUC = target
			tc.EvalEvery = 25
			tc.Epochs = 20 // bounded by MaxSteps / target
			res := core.Train(m, w.train, w.test, tc)
			out.Rows = append(out.Rows, Fig10Row{
				Model: m.Name(), Scale: sc.String(),
				Seconds: res.Duration.Seconds(), AUC: res.TestAUC,
			})
			o.logf("fig10 %s/%s %.2fs (AUC %.3f)", m.Name(), sc, res.Duration.Seconds(), res.TestAUC)
		}
		w.Close()
	}
	return out
}

// Fig11Row is one (model, K) AUC point.
type Fig11Row struct {
	Model string
	K     int
	AUC   float64
}

// Fig11Result sweeps the sampling number.
type Fig11Result struct {
	Ks   []int
	Rows []Fig11Row
}

// AUC returns the value for (model, k).
func (r Fig11Result) AUC(model string, k int) float64 {
	for _, row := range r.Rows {
		if row.Model == model && row.K == k {
			return row.AUC
		}
	}
	return 0
}

// Models lists the distinct model names in insertion order.
func (r Fig11Result) Models() []string {
	var out []string
	seen := map[string]bool{}
	for _, row := range r.Rows {
		if !seen[row.Model] {
			seen[row.Model] = true
			out = append(out, row.Model)
		}
	}
	return out
}

// String prints the sweep.
func (r Fig11Result) String() string {
	header := []string{"model"}
	for _, k := range r.Ks {
		header = append(header, fmt.Sprintf("K=%d", k))
	}
	var rows [][]string
	for _, m := range r.Models() {
		cells := []string{m}
		for _, k := range r.Ks {
			cells = append(cells, fmt.Sprintf("%.3f", r.AUC(m, k)))
		}
		rows = append(rows, cells)
	}
	return "Fig 11: AUC vs sampling number K\n" + table(header, rows)
}

// Fig11 reproduces the sampling-number sweep: Zoomer and the four
// sampler baselines trained at each per-hop budget K.
func Fig11(o Options) Fig11Result {
	w := o.taobaoWorld(loggen.ScaleSmall)
	defer w.Close()
	v := w.logs.Vocab()
	g := w.view
	ks := []int{5, 10, 15, 20, 25, 30}
	if o.Quick {
		ks = []int{2, 4}
	}
	out := Fig11Result{Ks: ks}
	for _, k := range ks {
		zcfg := o.modelConfig()
		zcfg.FanOut = k
		bcfg := o.baselineConfig()
		bcfg.FanOut = k
		models := []core.Model{
			core.NewZoomer(g, v, zcfg, o.Seed+1),
			baselines.NewGraphSAGE(g, v, bcfg, o.Seed+2),
			baselines.NewPixie(g, v, bcfg, o.Seed+3),
			baselines.NewPinnerSage(g, v, bcfg, o.Seed+4),
			baselines.NewPinSage(g, v, bcfg, o.Seed+5),
		}
		for _, m := range models {
			tc := o.trainConfig()
			if !o.Quick {
				// Large-K subgraphs are quadratically more expensive; a
				// reduced step budget keeps the sweep single-machine while
				// every (model, K) cell gets the same budget.
				tc.MaxSteps, tc.BatchSize = 80, 8
			}
			res := core.Train(m, w.train, w.test, tc)
			out.Rows = append(out.Rows, Fig11Row{Model: m.Name(), K: k, AUC: res.TestAUC})
			o.logf("fig11 %s K=%d AUC %.3f", m.Name(), k, res.TestAUC)
		}
	}
	return out
}

// Fig12Row is one model's efficiency-vs-effectiveness point.
type Fig12Row struct {
	Model        string
	RelativeTime float64 // vs Zoomer = 1.0
	AUC          float64
	Seconds      float64
}

// Fig12Result is the efficiency/effectiveness comparison.
type Fig12Result struct{ Rows []Fig12Row }

// String prints the comparison.
func (r Fig12Result) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Model,
			fmt.Sprintf("%.1fx", row.RelativeTime),
			fmt.Sprintf("%.3f", row.AUC),
			fmt.Sprintf("%.2fs", row.Seconds)}
	}
	return "Fig 12: efficiency vs effectiveness (relative training time)\n" +
		table([]string{"model", "rel time", "AUC", "wall time"}, rows)
}

// Fig12 reproduces the efficiency-effectiveness comparison: the sampler
// baselines run with sampling number 30, while Zoomer further downsizes
// its ROI to one tenth (sampling 3), as §VII-E describes. Everyone gets
// the same number of optimization steps; Zoomer's smaller subgraphs make
// each step cheaper, and the focal-biased ROI keeps (or improves) AUC.
func Fig12(o Options) Fig12Result {
	w := o.taobaoWorld(loggen.ScaleSmall)
	defer w.Close()
	v := w.logs.Vocab()
	g := w.view

	full, tenth := 30, 3
	if o.Quick {
		full, tenth = 8, 2
	}
	zcfg := o.modelConfig()
	zcfg.FanOut = tenth // ROI downscaled to ~1/10 of the baselines
	bcfg := o.baselineConfig()
	bcfg.FanOut = full

	models := []core.Model{
		core.NewZoomer(g, v, zcfg, o.Seed+1),
		baselines.NewPixie(g, v, bcfg, o.Seed+2),
		baselines.NewPinnerSage(g, v, bcfg, o.Seed+3),
		baselines.NewGraphSAGE(g, v, bcfg, o.Seed+4),
		baselines.NewPinSage(g, v, bcfg, o.Seed+5),
	}
	var out Fig12Result
	var zoomerTime time.Duration
	for _, m := range models {
		tc := o.trainConfig()
		if !o.Quick {
			// Same step budget for everyone; the 30-sample baselines pay
			// ~100x more per step than Zoomer's tenth-scale ROI.
			tc.MaxSteps, tc.BatchSize = 60, 8
		}
		res := core.Train(m, w.train, w.test, tc)
		if m.Name() == "zoomer" {
			zoomerTime = res.Duration
		}
		out.Rows = append(out.Rows, Fig12Row{
			Model: m.Name(), AUC: res.TestAUC, Seconds: res.Duration.Seconds(),
		})
		o.logf("fig12 %s %.2fs AUC %.3f", m.Name(), res.Duration.Seconds(), res.TestAUC)
	}
	for i := range out.Rows {
		out.Rows[i].RelativeTime = out.Rows[i].Seconds / zoomerTime.Seconds()
	}
	return out
}
