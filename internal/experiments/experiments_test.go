package experiments

import (
	"strings"
	"testing"
)

// quick returns CI-sized options.
func quick() Options { return Options{Seed: 1, Quick: true} }

func TestFig4a(t *testing.T) {
	res := Fig4a(quick())
	if len(res.Rows) < 2 {
		t.Fatal("too few rows")
	}
	for _, row := range res.Rows {
		if row.IterPerSec <= 0 {
			t.Fatalf("non-positive iter/s at k=%d", row.Neighbors)
		}
	}
	// Cost must grow with neighbors: the last point allocates more than
	// the first (the paper's exploding-cost motivation).
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.AllocMB <= first.AllocMB {
		t.Fatalf("allocation did not grow with neighbors: %.2f -> %.2f", first.AllocMB, last.AllocMB)
	}
	if last.IterPerSec >= first.IterPerSec {
		t.Fatalf("throughput did not fall with neighbors: %.2f -> %.2f", first.IterPerSec, last.IterPerSec)
	}
	if !strings.Contains(res.String(), "Fig 4(a)") {
		t.Fatal("missing header")
	}
}

func TestFig4b(t *testing.T) {
	res := Fig4b(quick())
	if res.Pairs == 0 {
		t.Fatal("no successive-query pairs measured")
	}
	// Drifting intents: successive queries should frequently be
	// dissimilar.
	if res.FracBelowHalf < 0.3 {
		t.Fatalf("successive queries too similar (frac<0.5 = %.2f); drift not reproduced", res.FracBelowHalf)
	}
	if len(res.SamplePairs) == 0 {
		t.Fatal("no sample pairs")
	}
	_ = res.String()
}

func TestFig4c(t *testing.T) {
	res := Fig4c(quick())
	// The long-window graph must have weaker focal-to-history similarity
	// than... note: in the paper the 1-hour graph has MORE mass below
	// zero (80% vs 40%); our short window is intent-concentrated, so the
	// long window accumulates more off-focal history. Either direction,
	// a meaningful fraction of history must be dissimilar to the focal.
	if res.LongCDFAtZero <= 0.05 && res.ShortCDFAtZero <= 0.05 {
		t.Fatalf("no dissimilar history found: short %.2f long %.2f", res.ShortCDFAtZero, res.LongCDFAtZero)
	}
	if len(res.ShortCDF) != len(res.Probes) || len(res.LongCDF) != len(res.Probes) {
		t.Fatal("CDF probe mismatch")
	}
	// CDFs must be monotone.
	for i := 1; i < len(res.Probes); i++ {
		if res.ShortCDF[i] < res.ShortCDF[i-1] || res.LongCDF[i] < res.LongCDF[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	_ = res.String()
}

func TestTable2(t *testing.T) {
	res := Table2(quick())
	if len(res.Rows) != 6 {
		t.Fatalf("expected 6 models, got %d", len(res.Rows))
	}
	names := map[string]bool{}
	for _, row := range res.Rows {
		names[row.Model] = true
		if row.AUC < 0 || row.AUC > 100 {
			t.Fatalf("%s AUC %.2f out of range", row.Model, row.AUC)
		}
		if row.RMSE < 0 || row.MAE < 0 {
			t.Fatalf("%s negative error metric", row.Model)
		}
	}
	for _, want := range []string{"zoomer", "han", "stamp", "mccf", "fgnn", "gce-gnn"} {
		if !names[want] {
			t.Fatalf("missing model %s", want)
		}
	}
	_ = res.String()
	_ = res.Best()
}

func TestTable3(t *testing.T) {
	res := Table3(quick())
	if len(res.Rows) != 10 {
		t.Fatalf("expected 10 models, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, k := range res.Ks {
			hr := row.HitRates[k]
			if hr < 0 || hr > 1 {
				t.Fatalf("%s HR@%d = %v", row.Model, k, hr)
			}
		}
	}
	_ = res.String()
}

func TestFig8(t *testing.T) {
	res := Fig8(quick())
	if len(res.Variants) != 5 {
		t.Fatalf("variants = %v", res.Variants)
	}
	for _, c := range res.Cells {
		if c.AUC < 0 || c.AUC > 1 {
			t.Fatalf("AUC %v out of range", c.AUC)
		}
	}
	_ = res.String()
}

func TestFig10(t *testing.T) {
	res := Fig10(quick())
	if len(res.Rows) < 2 {
		t.Fatal("too few rows")
	}
	for _, row := range res.Rows {
		if row.Seconds <= 0 {
			t.Fatalf("%s/%s non-positive time", row.Model, row.Scale)
		}
	}
	_ = res.String()
}

func TestFig11(t *testing.T) {
	res := Fig11(quick())
	if len(res.Models()) != 5 {
		t.Fatalf("models = %v", res.Models())
	}
	if len(res.Ks) < 2 {
		t.Fatal("too few K points")
	}
	_ = res.String()
}

func TestFig12(t *testing.T) {
	res := Fig12(quick())
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var zoomerRel float64
	for _, row := range res.Rows {
		if row.Model == "zoomer" {
			zoomerRel = row.RelativeTime
		}
	}
	if zoomerRel != 1 {
		t.Fatalf("zoomer relative time = %v, want 1.0", zoomerRel)
	}
	// Zoomer's 1/10-scale ROI must make it faster than the 30-sample
	// baselines (the headline 10x claim; exact factor varies).
	faster := 0
	for _, row := range res.Rows {
		if row.Model != "zoomer" && row.RelativeTime > 1 {
			faster++
		}
	}
	if faster < 3 {
		t.Fatalf("zoomer faster than only %d/4 baselines", faster)
	}
	_ = res.String()
}

func TestTable4(t *testing.T) {
	res := Table4(quick())
	if res.Control.Impressions == 0 || res.Treatment.Impressions == 0 {
		t.Fatal("no impressions")
	}
	_ = res.String()
}

func TestFig9(t *testing.T) {
	res := Fig9(quick())
	if len(res.Rows) < 2 {
		t.Fatal("too few QPS points")
	}
	for _, row := range res.Rows {
		if row.Served == 0 {
			t.Fatalf("no requests served at qps=%.0f", row.QPS)
		}
		if row.MeanRTMillis <= 0 {
			t.Fatalf("non-positive RT at qps=%.0f", row.QPS)
		}
	}
	_ = res.String()
}

func TestFig13(t *testing.T) {
	res := Fig13(quick())
	if len(res.FixedUser) == 0 && len(res.FixedQuery) == 0 {
		t.Fatal("no heatmaps produced")
	}
	// Rows are softmax-normalized.
	for _, ws := range append(append([][]float32{}, res.FixedUser...), res.FixedQuery...) {
		var sum float64
		for _, w := range ws {
			sum += float64(w)
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("heatmap row sums to %v", sum)
		}
	}
	// Focal sensitivity: at least two rows of a heatmap must differ.
	differs := func(m [][]float32) bool {
		for i := 1; i < len(m); i++ {
			for j := range m[i] {
				if m[i][j] != m[0][j] {
					return true
				}
			}
		}
		return false
	}
	if len(res.FixedUser) > 1 && !differs(res.FixedUser) {
		t.Fatal("fixed-user heatmap insensitive to focal query")
	}
	if len(res.FixedQuery) > 1 && !differs(res.FixedQuery) {
		t.Fatal("fixed-query heatmap insensitive to focal user")
	}
	_ = res.String()
}
