// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) on the synthetic substrate: one entry point per
// experiment id (fig4a … fig13, table2 … table4), each returning a result
// struct whose String method prints rows in the paper's format.
//
// Options.Quick shrinks datasets and training budgets so the whole suite
// runs in CI; the full-size settings are what cmd/zoomer-experiments and
// the root bench harness use. Absolute numbers differ from the paper (its
// substrate was a 1000-worker cluster on real traffic); the shapes —
// who wins, roughly by how much, where curves bend — are the
// reproduction target. See EXPERIMENTS.md for paper-vs-measured notes.
package experiments

import (
	"fmt"
	"strings"

	"zoomer/internal/baselines"
	"zoomer/internal/core"
	"zoomer/internal/engine"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/partition"
)

// Options configures an experiment run.
type Options struct {
	Seed  uint64
	Quick bool // CI-sized budgets
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// world bundles a generated dataset with its graph, the sharded engine
// serving it, and the instance splits. Models read through view, so
// every experiment exercises the partitioned read path the serving tier
// uses — bit-identical to the monolithic graph by the engine's
// equivalence suite (and this package's cross-topology training suite).
type world struct {
	logs  *loggen.Logs
	res   *graphbuild.Result
	eng   *engine.Engine
	view  core.GraphView
	train []core.Instance
	test  []core.Instance
}

// Close releases the world's engine.
func (w *world) Close() {
	if w.eng != nil {
		w.eng.Close()
	}
}

func buildWorld(cfg loggen.Config, negPerPos int, seed uint64) *world {
	logs := loggen.MustGenerate(cfg)
	res := graphbuild.Build(logs, graphbuild.DefaultConfig())
	ds := loggen.BuildExamples(logs, negPerPos, 0.2, seed+100)
	eng := engine.New(res.Graph, engine.Config{
		Shards: 4, Replicas: 1, Strategy: partition.Hash, Locality: true,
	})
	return &world{
		logs:  logs,
		res:   res,
		eng:   eng,
		view:  core.EngineView{Engine: eng, M: res.Mapping},
		train: core.InstancesFromExamples(ds.Train, res.Mapping),
		test:  core.InstancesFromExamples(ds.Test, res.Mapping),
	}
}

// taobaoWorld returns the analog of one of the paper's Taobao graphs.
func (o Options) taobaoWorld(scale loggen.Scale) *world {
	if o.Quick {
		scale = loggen.ScaleTiny
	}
	return buildWorld(loggen.TaobaoConfig(scale, o.Seed), 1, o.Seed)
}

// budgets returns (epochs, maxSteps, batch) for training runs. Full-size
// budgets are sized for a single machine: enough steps that model
// rankings stabilize (the reproduction target), not full convergence.
func (o Options) budgets() (epochs, maxSteps, batch int) {
	if o.Quick {
		return 1, 60, 16
	}
	return 2, 150, 16
}

// modelConfig returns the shared Zoomer configuration.
func (o Options) modelConfig() core.Config {
	cfg := core.DefaultConfig()
	if o.Quick {
		cfg.EmbedDim, cfg.OutDim = 16, 16
		cfg.Hops, cfg.FanOut = 1, 4
	}
	return cfg
}

func (o Options) baselineConfig() baselines.Config {
	cfg := baselines.DefaultConfig()
	if o.Quick {
		cfg.EmbedDim, cfg.OutDim = 16, 16
		cfg.Hops, cfg.FanOut = 1, 4
	}
	return cfg
}

func (o Options) trainConfig() core.TrainConfig {
	tc := core.DefaultTrainConfig()
	tc.Seed = o.Seed + 7
	tc.Epochs, tc.MaxSteps, tc.BatchSize = o.budgets()
	return tc
}

// table renders rows with a header in aligned plain text.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
