package experiments

import (
	"fmt"
	"time"

	"zoomer/internal/abtest"
	"zoomer/internal/ann"
	"zoomer/internal/baselines"
	"zoomer/internal/core"
	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/loggen"
	"zoomer/internal/partition"
	"zoomer/internal/serve"
	"zoomer/internal/tensor"
)

// Table4Result is the production A/B comparison: Zoomer channel vs
// PinSage channel.
type Table4Result struct {
	CTRLift, PPCLift, RPMLift float64 // percent
	Control, Treatment        abtest.Metrics
}

// String prints the lifts.
func (r Table4Result) String() string {
	return "Table IV: A/B test, Zoomer channel vs PinSage channel\n" +
		table([]string{"metric", "lift"},
			[][]string{
				{"CTR", fmt.Sprintf("%+.3f%%", r.CTRLift)},
				{"PPC", fmt.Sprintf("%+.3f%%", r.PPCLift)},
				{"RPM", fmt.Sprintf("%+.3f%%", r.RPMLift)},
			}) +
		fmt.Sprintf("control:   CTR %.4f PPC %.3f RPM %.2f\ntreatment: CTR %.4f PPC %.3f RPM %.2f\n",
			r.Control.CTR(), r.Control.PPC(), r.Control.RPM(),
			r.Treatment.CTR(), r.Treatment.PPC(), r.Treatment.RPM())
}

// Table4 trains Zoomer and PinSage, substitutes the PinSage retrieval
// channel with Zoomer as the paper's deployment does, and replays
// held-out traffic through both under the same click and pricing model.
func Table4(o Options) Table4Result {
	w := o.taobaoWorld(loggen.ScaleSmall)
	defer w.Close()
	v := w.logs.Vocab()
	g := w.view

	zoomer := core.NewZoomer(g, v, o.modelConfig(), o.Seed+1)
	pinsage := baselines.NewPinSage(g, v, o.baselineConfig(), o.Seed+2)
	tc := o.trainConfig()
	core.Train(zoomer, w.train, w.test, tc)
	core.Train(pinsage, w.train, w.test, tc)

	items := w.res.Mapping.NodesOfType(graph.Item)
	control := abtest.NewModelChannel("pinsage", pinsage, items, o.Seed+3)
	treatment := abtest.NewModelChannel("zoomer", zoomer, items, o.Seed+4)

	maxTraffic := 400
	if o.Quick {
		maxTraffic = 60
	}
	traffic := abtest.TrafficFromLogs(w.logs, w.res.Mapping, maxTraffic)
	// Each arm serves from its own live engine config (the paper's
	// deployment runs channels on separate serving stacks); the views are
	// bit-identical read surfaces, so the comparison isolates the models.
	controlEng := engine.New(w.res.Graph, engine.Config{Shards: 2, Replicas: 1, Strategy: partition.DegreeBalanced, Locality: false})
	defer controlEng.Close()
	res := abtest.RunArms(g, traffic,
		abtest.Arm{Channel: control, View: core.EngineView{Engine: controlEng, M: w.res.Mapping}},
		abtest.Arm{Channel: treatment, View: w.view},
		abtest.DefaultConfig())
	return Table4Result{
		CTRLift: res.CTRLift, PPCLift: res.PPCLift, RPMLift: res.RPMLift,
		Control: res.Control, Treatment: res.Treatment,
	}
}

// Fig9Row is one offered-load measurement.
type Fig9Row struct {
	QPS             float64
	MeanRTMillis    float64
	P99RTMillis     float64
	Served, Dropped int64
}

// Fig9Result is the RT-vs-QPS sweep.
type Fig9Result struct{ Rows []Fig9Row }

// String prints the sweep.
func (r Fig9Result) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			fmt.Sprintf("%.0f", row.QPS),
			fmt.Sprintf("%.3f", row.MeanRTMillis),
			fmt.Sprintf("%.3f", row.P99RTMillis),
			fmt.Sprint(row.Served),
			fmt.Sprint(row.Dropped),
		}
	}
	return "Fig 9: online response time vs offered QPS\n" +
		table([]string{"QPS", "mean RT (ms)", "p99 RT (ms)", "served", "dropped"}, rows)
}

// Fig9 reproduces the online serving measurement: the trimmed
// (edge-attention-only) model with k=30 neighbor caches and the two-layer
// inverted index, under an open-loop load sweep.
func Fig9(o Options) Fig9Result {
	w := o.taobaoWorld(loggen.ScaleSmall)
	defer w.Close()
	v := w.logs.Vocab()

	model := core.NewZoomer(w.view, v, o.modelConfig(), o.Seed+1)
	// A short warm-up train so the exported weights are not random noise;
	// serving latency does not depend on weight values.
	tc := o.trainConfig()
	tc.MaxSteps = min(tc.MaxSteps, 100)
	core.Train(model, w.train, w.test, tc)

	emb := serve.NewEmbedder(model.ExportServing())
	eng := engine.New(w.res.Graph, engine.DefaultConfig())
	cache := serve.NewNeighborCache(eng, 30, o.Seed+2)
	defer cache.Close()

	items := w.res.Mapping.NodesOfType(graph.Item)
	ids := make([]int64, len(items))
	vecs := make([]tensor.Vec, len(items))
	for i, it := range items {
		ids[i] = int64(it)
		vecs[i] = emb.Item(it)
	}
	nlist := max(4, len(items)/64)
	index := ann.Build(ids, vecs, ann.Config{NumLists: nlist, Iters: 6, Seed: o.Seed + 3})

	scfg := serve.DefaultConfig()
	srv := serve.NewServer(emb, cache, index, scfg)
	defer srv.Close()

	users := w.res.Mapping.NodesOfType(graph.User)
	queries := w.res.Mapping.NodesOfType(graph.Query)

	qpsPoints := []float64{1000, 2000, 5000, 10000, 20000, 50000}
	dur := 400 * time.Millisecond
	if o.Quick {
		qpsPoints = []float64{500, 2000}
		dur = 150 * time.Millisecond
	}
	// Warm the caches so steady-state latency is measured.
	if _, err := serve.LoadTest(srv, users, queries, 500, 100*time.Millisecond, o.Seed+4); err != nil {
		panic(err) // fixed positive warm-up rate; cannot fail
	}

	var out Fig9Result
	for i, qps := range qpsPoints {
		st, err := serve.LoadTest(srv, users, queries, qps, dur, o.Seed+5+uint64(i))
		if err != nil {
			panic(err) // sweep points are fixed positive rates
		}
		out.Rows = append(out.Rows, Fig9Row{
			QPS:          qps,
			MeanRTMillis: float64(st.MeanRT.Microseconds()) / 1000,
			P99RTMillis:  float64(st.P99.Microseconds()) / 1000,
			Served:       st.Served,
			Dropped:      st.Dropped,
		})
		o.logf("fig9 qps=%.0f meanRT=%.3fms", qps, float64(st.MeanRT.Microseconds())/1000)
	}
	return out
}

// Fig13Result holds the interpretability heatmaps: edge-attention
// coupling coefficients for a fixed user across queries, and a fixed
// query across users.
type Fig13Result struct {
	// FixedUser[i][j]: weight of item j when the focal query is i.
	QueryLabels []string
	FixedUser   [][]float32
	// FixedQuery[i][j]: weight of item j when the focal user is i.
	UserLabels []string
	FixedQuery [][]float32
}

// String prints both heatmaps.
func (r Fig13Result) String() string {
	fmtRow := func(label string, ws []float32) []string {
		cells := []string{label}
		for _, w := range ws {
			cells = append(cells, fmt.Sprintf("%.3f", w))
		}
		return cells
	}
	nItems := 0
	if len(r.FixedUser) > 0 {
		nItems = len(r.FixedUser[0])
	}
	header := []string{"focal"}
	for j := 0; j < nItems; j++ {
		header = append(header, fmt.Sprintf("item%d", j))
	}
	var rows [][]string
	for i, ws := range r.FixedUser {
		rows = append(rows, fmtRow(r.QueryLabels[i], ws))
	}
	s := "Fig 13(a): coupling coefficients, fixed user x varying focal query\n" + table(header, rows)
	rows = rows[:0]
	for i, ws := range r.FixedQuery {
		rows = append(rows, fmtRow(r.UserLabels[i], ws))
	}
	return s + "\nFig 13(b): coupling coefficients, fixed query x varying focal user\n" + table(header, rows)
}

// Fig13 trains Zoomer briefly and dumps edge-attention weights for (a) a
// fixed user with rotating focal queries over that user's historical
// items, and (b) a fixed query with rotating focal users over the query's
// item neighbors — the paper's interpretability visualization.
func Fig13(o Options) Fig13Result {
	w := o.taobaoWorld(loggen.ScaleSmall)
	defer w.Close()
	v := w.logs.Vocab()
	g := w.view
	model := core.NewZoomer(g, v, o.modelConfig(), o.Seed+1)
	tc := o.trainConfig()
	tc.MaxSteps = min(tc.MaxSteps, 200)
	core.Train(model, w.train, w.test, tc)

	nQueries, nUsers, nItems := 9, 8, 10
	if o.Quick {
		nQueries, nUsers, nItems = 3, 3, 4
	}

	// (a) Fixed user: the user's item history as columns, focal queries as
	// rows.
	users := w.res.Mapping.NodesOfType(graph.User)
	queries := w.res.Mapping.NodesOfType(graph.Query)
	itemsOf := func(id graph.NodeID, max int) []graph.NodeID {
		var out []graph.NodeID
		seen := map[graph.NodeID]bool{}
		var walk func(n graph.NodeID, depth int)
		walk = func(n graph.NodeID, depth int) {
			for _, e := range g.Neighbors(n) {
				if len(out) >= max {
					return
				}
				if g.Type(e.To) == graph.Item && !seen[e.To] {
					seen[e.To] = true
					out = append(out, e.To)
				} else if depth > 0 && g.Type(e.To) == graph.Query {
					walk(e.To, depth-1)
				}
			}
		}
		walk(id, 1)
		return out
	}
	var fixedUser graph.NodeID = -1
	var userItems []graph.NodeID
	for _, u := range users {
		if its := itemsOf(u, nItems); len(its) == nItems {
			fixedUser, userItems = u, its
			break
		}
	}
	var out Fig13Result
	if fixedUser >= 0 {
		for i := 0; i < nQueries && i < len(queries); i++ {
			q := queries[i]
			ws := model.EdgeAttentionWeights(fixedUser, fixedUser, q, userItems)
			out.FixedUser = append(out.FixedUser, ws)
			out.QueryLabels = append(out.QueryLabels, fmt.Sprintf("q%d", i))
		}
	}

	// (b) Fixed query ("handbag"): its item neighbors as columns, focal
	// users as rows.
	var fixedQuery graph.NodeID = -1
	var queryItems []graph.NodeID
	for _, q := range queries {
		if its := itemsOf(q, nItems); len(its) == nItems {
			fixedQuery, queryItems = q, its
			break
		}
	}
	if fixedQuery >= 0 {
		for i := 0; i < nUsers && i < len(users); i++ {
			u := users[i]
			ws := model.EdgeAttentionWeights(fixedQuery, u, fixedQuery, queryItems)
			out.FixedQuery = append(out.FixedQuery, ws)
			out.UserLabels = append(out.UserLabels, fmt.Sprintf("u%d", i))
		}
	}
	return out
}
