package experiments

import (
	"fmt"

	"zoomer/internal/ad"
	"zoomer/internal/baselines"
	"zoomer/internal/core"
	"zoomer/internal/eval"
	"zoomer/internal/graph"
	"zoomer/internal/loggen"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// trainAndEval trains a model and returns its test AUC together with
// probability predictions for error metrics.
func trainAndEval(o Options, m core.Model, w *world) (auc float64, pred, target []float64, res core.TrainResult) {
	tc := o.trainConfig()
	res = core.Train(m, w.train, w.test, tc)
	auc = res.TestAUC
	r := rng.New(o.Seed + 55)
	batch := 64
	for lo := 0; lo < len(w.test); lo += batch {
		hi := min(lo+batch, len(w.test))
		t := ad.NewTape()
		logits := m.Logits(t, w.test[lo:hi], r)
		for i, ex := range w.test[lo:hi] {
			pred = append(pred, float64(tensor.Sigmoid(logits.Val.Data[i])))
			target = append(target, float64(ex.Label))
		}
	}
	return auc, pred, target, res
}

// Table2Row is one model's MovieLens result.
type Table2Row struct {
	Model     string
	AUC       float64 // percent
	MAE, RMSE float64
}

// Table2Result is the paper's Table II.
type Table2Result struct{ Rows []Table2Row }

// String prints the table.
func (r Table2Result) String() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Model,
			fmt.Sprintf("%.2f", row.AUC),
			fmt.Sprintf("%.4f", row.MAE),
			fmt.Sprintf("%.4f", row.RMSE)}
	}
	return "Table II: MovieLens benchmark\n" + table([]string{"model", "AUC", "MAE", "RMSE"}, rows)
}

// Best returns the row with the highest AUC.
func (r Table2Result) Best() Table2Row {
	best := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.AUC > best.AUC {
			best = row
		}
	}
	return best
}

// Table2 reproduces Table II: Zoomer vs the five GNN baselines without
// heuristic samplers, on the MovieLens-mode dataset with one-hop
// aggregation (the paper's MovieLens setting).
func Table2(o Options) Table2Result {
	cfg := loggen.MovieLensConfig(o.Seed)
	if o.Quick {
		cfg.Users, cfg.Queries, cfg.Items = 150, 40, 200
		cfg.Topics = 6
	}
	w := buildWorld(cfg, 1, o.Seed)
	defer w.Close()
	v := w.logs.Vocab()
	g := w.view

	bcfg := o.baselineConfig()
	bcfg.Hops = 1 // MovieLens uses one-hop aggregation (§VII-A)
	zcfg := o.modelConfig()
	zcfg.Hops = 1

	models := []core.Model{
		baselines.NewGCEGNN(g, v, bcfg, o.Seed+1),
		baselines.NewFGNN(g, v, bcfg, o.Seed+2),
		baselines.NewSTAMP(g, v, bcfg, o.Seed+3),
		baselines.NewMCCF(g, v, bcfg, o.Seed+4),
		baselines.NewHAN(g, v, bcfg, o.Seed+5),
		core.NewZoomer(g, v, zcfg, o.Seed+6),
	}
	var out Table2Result
	for _, m := range models {
		auc, pred, target, _ := trainAndEval(o, m, w)
		out.Rows = append(out.Rows, Table2Row{
			Model: m.Name(),
			AUC:   auc * 100,
			MAE:   eval.MAE(pred, target),
			RMSE:  eval.RMSE(pred, target),
		})
		o.logf("table2 %s AUC %.2f", m.Name(), auc*100)
	}
	return out
}

// Table3Row is one model's Taobao-graph result.
type Table3Row struct {
	Model    string
	AUC      float64 // percent
	HitRates map[int]float64
}

// Table3Result is the paper's Table III.
type Table3Result struct {
	Ks   []int
	Rows []Table3Row
}

// String prints the table.
func (r Table3Result) String() string {
	header := []string{"model", "AUC"}
	for _, k := range r.Ks {
		header = append(header, fmt.Sprintf("HR@%d", k))
	}
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells := []string{row.Model, fmt.Sprintf("%.1f", row.AUC)}
		for _, k := range r.Ks {
			cells = append(cells, fmt.Sprintf("%.2f", row.HitRates[k]))
		}
		rows[i] = cells
	}
	return "Table III: Taobao industry graph\n" + table(header, rows)
}

// Best returns the row with the highest AUC.
func (r Table3Result) Best() Table3Row {
	best := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.AUC > best.AUC {
			best = row
		}
	}
	return best
}

// Table3 reproduces Table III: all nine baselines and Zoomer on the
// million-scale-analog Taobao graph, scored by AUC and HitRate@K.
func Table3(o Options) Table3Result {
	w := o.taobaoWorld(loggen.ScaleSmall)
	defer w.Close()
	v := w.logs.Vocab()
	g := w.view
	bcfg := o.baselineConfig()
	zcfg := o.modelConfig()

	ks := []int{100, 200, 300}
	maxTests := 150
	if o.Quick {
		ks = []int{10, 20, 30}
		maxTests = 25
	}

	models := []core.Model{
		baselines.NewGCEGNN(g, v, bcfg, o.Seed+1),
		baselines.NewFGNN(g, v, bcfg, o.Seed+2),
		baselines.NewSTAMP(g, v, bcfg, o.Seed+3),
		baselines.NewMCCF(g, v, bcfg, o.Seed+4),
		baselines.NewHAN(g, v, bcfg, o.Seed+5),
		baselines.NewPinSage(g, v, bcfg, o.Seed+6),
		baselines.NewGraphSAGE(g, v, bcfg, o.Seed+7),
		baselines.NewPinnerSage(g, v, bcfg, o.Seed+8),
		baselines.NewPixie(g, v, bcfg, o.Seed+9),
		core.NewZoomer(g, v, zcfg, o.Seed+10),
	}
	items := w.res.Mapping.NodesOfType(graph.Item)
	var out Table3Result
	out.Ks = ks
	for _, m := range models {
		auc, _, _, _ := trainAndEval(o, m, w)
		hr := core.HitRateAtKs(m, w.test, items, ks, maxTests, o.Seed+77)
		out.Rows = append(out.Rows, Table3Row{Model: m.Name(), AUC: auc * 100, HitRates: hr})
		o.logf("table3 %s AUC %.1f", m.Name(), auc*100)
	}
	return out
}

// Fig8Cell is one (variant, scale) ablation AUC.
type Fig8Cell struct {
	Variant string
	Scale   string
	AUC     float64
}

// Fig8Result is the ablation study.
type Fig8Result struct {
	Scales   []string
	Variants []string
	Cells    []Fig8Cell
}

// AUC returns the cell value for (variant, scale).
func (r Fig8Result) AUC(variant, scale string) float64 {
	for _, c := range r.Cells {
		if c.Variant == variant && c.Scale == scale {
			return c.AUC
		}
	}
	return 0
}

// String prints the matrix.
func (r Fig8Result) String() string {
	header := append([]string{"variant"}, r.Scales...)
	rows := make([][]string, len(r.Variants))
	for i, v := range r.Variants {
		cells := []string{v}
		for _, s := range r.Scales {
			cells = append(cells, fmt.Sprintf("%.3f", r.AUC(v, s)))
		}
		rows[i] = cells
	}
	return "Fig 8: ablation study (test AUC)\n" + table(header, rows)
}

// Fig8 reproduces the ablation: GCN (no attention), Zoomer-FE (no
// semantic), Zoomer-FS (no edge), Zoomer-ES (no feature projection), and
// full Zoomer, across the three Taobao graph scales.
func Fig8(o Options) Fig8Result {
	type variant struct {
		name       string
		fp, ea, sa bool
	}
	variants := []variant{
		{"gcn", false, false, false},
		{"zoomer-fe", true, true, false},
		{"zoomer-fs", true, false, true},
		{"zoomer-es", false, true, true},
		{"zoomer", true, true, true},
	}
	scales := []loggen.Scale{loggen.ScaleSmall, loggen.ScaleMedium, loggen.ScaleLarge}
	if o.Quick {
		scales = []loggen.Scale{loggen.ScaleTiny}
	}
	var out Fig8Result
	for _, v := range variants {
		out.Variants = append(out.Variants, v.name)
	}
	for si, sc := range scales {
		w := buildWorld(loggen.TaobaoConfig(sc, o.Seed+uint64(si)), 1, o.Seed+uint64(si))
		out.Scales = append(out.Scales, sc.String())
		for _, v := range variants {
			cfg := o.modelConfig()
			cfg.UseFeatureProj, cfg.UseEdgeAttn, cfg.UseSemanticAttn = v.fp, v.ea, v.sa
			m := core.NewZoomer(w.view, w.logs.Vocab(), cfg, o.Seed+3)
			auc, _, _, _ := trainAndEval(o, m, w)
			out.Cells = append(out.Cells, Fig8Cell{Variant: v.name, Scale: sc.String(), AUC: auc})
			o.logf("fig8 %s/%s AUC %.3f", v.name, sc, auc)
		}
		w.Close()
	}
	return out
}
