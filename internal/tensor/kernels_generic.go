// The portable reference kernels. These are the exact loops the package
// shipped before the SIMD seam: every vectorized implementation in
// kernels_amd64.s replicates their accumulation order (see the bit-
// identity contract in dispatch_amd64.go), and the cross-check tests in
// kernels_equiv_test.go hold the two sides together. They compile on
// every architecture and are selected at build time by the `purego` tag
// or at init time when the CPU lacks AVX2+FMA.
package tensor

// dotGeneric is the 4-lane float64-accumulated inner product. The four
// accumulator lanes are independent (lane k sums elements ≡ k mod 4 in
// index order), the tail folds into lane 0, and the final reduction is
// (s0+s1)+(s2+s3). The vector kernel keeps this exact order, and float64
// products of float32 inputs are exact (24+24 significand bits fit in
// 53), so the two implementations agree bit for bit.
func dotGeneric(a, b Vec) float32 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += float64(a[i]) * float64(b[i])
	}
	return float32((s0 + s1) + (s2 + s3))
}

// dotSqGeneric fuses a·b with b·b: 2-lane float64 accumulation for both
// sums (lane k sums elements ≡ k mod 2), tail into lane 0, reduction
// d0+d1 / q0+q1.
func dotSqGeneric(a, b Vec) (dot, bsq float32) {
	var d0, d1, q0, q1 float64
	i := 0
	for ; i+2 <= len(a); i += 2 {
		x0, x1 := float64(b[i]), float64(b[i+1])
		d0 += float64(a[i]) * x0
		d1 += float64(a[i+1]) * x1
		q0 += x0 * x0
		q1 += x1 * x1
	}
	for ; i < len(a); i++ {
		x := float64(b[i])
		d0 += float64(a[i]) * x
		q0 += x * x
	}
	return float32(d0 + d1), float32(q0 + q1)
}

// axpyGeneric computes y += alpha*x elementwise in float32: a separately
// rounded multiply then add per element, never fused, so the vector
// kernel (VMULPS+VADDPS, not FMA) lands on identical bits. Also the
// per-row kernel of MatVecT.
func axpyGeneric(alpha float32, x, y Vec) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// dotAxpyGeneric fuses x·w (2-lane float64 accumulation, as dotSqGeneric)
// with y += alpha*x (elementwise float32, as axpyGeneric).
func dotAxpyGeneric(alpha float32, x, w, y Vec) float32 {
	var s0, s1 float64
	i := 0
	for ; i+2 <= len(x); i += 2 {
		x0, x1 := x[i], x[i+1]
		s0 += float64(x0) * float64(w[i])
		s1 += float64(x1) * float64(w[i+1])
		y[i] += alpha * x0
		y[i+1] += alpha * x1
	}
	for ; i < len(x); i++ {
		s0 += float64(x[i]) * float64(w[i])
		y[i] += alpha * x[i]
	}
	return float32(s0 + s1)
}

// dotI8Generic is the int8 inner product with int32 accumulation. Every
// intermediate is exact (products ≤ 127·127, int32 accumulation never
// overflows below 2^16 elements) and integer addition is associative, so
// any vectorization is bit-identical by construction — the quantized ANN
// coarse scan relies on that for identical centroid rankings across
// dispatch.
func dotI8Generic(a, b []int8) int32 {
	var s int32
	for i := range a {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}
