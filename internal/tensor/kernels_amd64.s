//go:build !purego

// AVX2/FMA implementations of the five hot kernels. Each replicates the
// accumulation order of its generic counterpart in kernels_generic.go —
// see the bit-identity contract in dispatch_amd64.go. Two invariants the
// code below leans on:
//
//   - float64 products of float32 inputs are exact (24+24 significand
//     bits fit in 53), so VFMADD231PD over converted inputs rounds at
//     exactly the points the generic mul-then-add does;
//   - the float32 elementwise kernels must NOT use FMA: a float32
//     product of float32 inputs is not exactly representable, and the
//     generic code rounds the multiply before the add.
//
// All loops tolerate len 0 and short tails; no stack is used (NOSPLIT,
// frame size 0).

#include "textflag.h"

// func dotAVX2(a, b []float32) float32
//
// One YMM register holds the 4 independent float64 accumulator lanes
// [s0 s1 s2 s3]; each iteration converts 4 floats from both operands
// and fuse-accumulates, so lane k sums elements ≡ k mod 4 in index
// order, exactly like dotGeneric. The scalar tail folds into lane 0,
// and the reduction is (s0+s1)+(s2+s3).
TEXT ·dotAVX2(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	MOVQ CX, BX
	SHRQ $2, BX
	JZ   dot_tail_setup
dot_loop4:
	VCVTPS2PD (SI), Y1
	VCVTPS2PD (DI), Y2
	VFMADD231PD Y2, Y1, Y0
	ADDQ $16, SI
	ADDQ $16, DI
	DECQ BX
	JNZ  dot_loop4
dot_tail_setup:
	VEXTRACTF128 $1, Y0, X1 // X1 = [s2 s3]; X0 = [s0 s1]
	ANDQ $3, CX
	JZ   dot_reduce
dot_tail:
	VCVTSS2SD (SI), X3, X3
	VCVTSS2SD (DI), X4, X4
	VMULSD X4, X3, X3
	VADDSD X3, X0, X0 // s0 += a[i]*b[i], sequentially, upper lane (s1) preserved
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  dot_tail
dot_reduce:
	VPERMILPD $1, X0, X5
	VADDSD X5, X0, X0 // s0+s1
	VPERMILPD $1, X1, X6
	VADDSD X6, X1, X1 // s2+s3
	VADDSD X1, X0, X0 // (s0+s1)+(s2+s3)
	VCVTSD2SS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+48(FP)
	RET

// func dotSqAVX2(a, b []float32) (dot, bsq float32)
//
// Two XMM accumulators carry the 2-lane float64 sums [d0 d1] and
// [q0 q1] of dotSqGeneric; each iteration converts one float pair from
// both operands and feeds two independent FMA chains (a·b and b·b).
TEXT ·dotSqAVX2(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	VXORPD X0, X0, X0 // [d0 d1]
	VXORPD X5, X5, X5 // [q0 q1]
	MOVQ CX, BX
	SHRQ $1, BX
	JZ   dotsq_tail
dotsq_loop2:
	VCVTPS2PD (SI), X1
	VCVTPS2PD (DI), X2
	VFMADD231PD X2, X1, X0 // d += a*b
	VFMADD231PD X2, X2, X5 // q += b*b
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ BX
	JNZ  dotsq_loop2
dotsq_tail:
	ANDQ $1, CX
	JZ   dotsq_reduce
	VCVTSS2SD (SI), X1, X1
	VCVTSS2SD (DI), X2, X2
	VMULSD X2, X1, X3
	VADDSD X3, X0, X0 // d0 += a*b
	VMULSD X2, X2, X4
	VADDSD X4, X5, X5 // q0 += b*b
dotsq_reduce:
	VPERMILPD $1, X0, X1
	VADDSD X1, X0, X0 // d0+d1
	VPERMILPD $1, X5, X6
	VADDSD X6, X5, X5 // q0+q1
	VCVTSD2SS X0, X0, X0
	VCVTSD2SS X5, X5, X5
	MOVSS X0, dot+48(FP)
	MOVSS X5, bsq+52(FP)
	RET

// func axpyAVX2(alpha float32, x, y []float32)
//
// Elementwise y += alpha*x, 8 floats per iteration. Multiply and add
// stay separate instructions so every element is rounded exactly where
// axpyGeneric rounds it; elementwise float32 has no accumulation order,
// so any width is bit-identical. Also the per-row kernel of MatVecT.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ x_len+16(FP), CX
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   axpy_tail_setup
axpy_loop8:
	VMOVUPS (SI), Y1
	VMULPS Y0, Y1, Y1
	VADDPS (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ BX
	JNZ  axpy_loop8
axpy_tail_setup:
	ANDQ $7, CX
	JZ   axpy_done
axpy_tail:
	VMOVSS (SI), X1
	VMULSS X0, X1, X1
	VADDSS (DI), X1, X1
	VMOVSS X1, (DI)
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  axpy_tail
axpy_done:
	VZEROUPPER
	RET

// func dotAxpyAVX2(alpha float32, x, w, y []float32) float32
//
// Fuses the 2-lane float64 dot chain of x·w with the elementwise
// float32 y += alpha*x, one pair per iteration — the float64 FMA chain
// and the float32 mul/add stream issue on separate ports, keeping x
// cache-resident across its two uses exactly like dotAxpyGeneric.
TEXT ·dotAxpyAVX2(SB), NOSPLIT, $0-84
	MOVQ x_base+8(FP), SI
	MOVQ w_base+32(FP), DX
	MOVQ y_base+56(FP), DI
	MOVQ x_len+16(FP), CX
	VBROADCASTSS alpha+0(FP), X7
	VXORPD X0, X0, X0 // [s0 s1]
	MOVQ CX, BX
	SHRQ $1, BX
	JZ   da_tail
da_loop2:
	VCVTPS2PD (SI), X1
	VCVTPS2PD (DX), X2
	VFMADD231PD X2, X1, X0 // s += x*w in float64
	VMOVSD (SI), X3        // the same x pair, as float32
	VMULPS X7, X3, X3
	VMOVSD (DI), X4
	VADDPS X4, X3, X3
	VMOVSD X3, (DI)
	ADDQ $8, SI
	ADDQ $8, DX
	ADDQ $8, DI
	DECQ BX
	JNZ  da_loop2
da_tail:
	ANDQ $1, CX
	JZ   da_reduce
	VCVTSS2SD (SI), X1, X1
	VCVTSS2SD (DX), X2, X2
	VMULSD X2, X1, X3
	VADDSD X3, X0, X0
	VMOVSS (SI), X3
	VMULSS X7, X3, X3
	VADDSS (DI), X3, X3
	VMOVSS X3, (DI)
da_reduce:
	VPERMILPD $1, X0, X1
	VADDSD X1, X0, X0 // s0+s1
	VCVTSD2SS X0, X0, X0
	MOVSS X0, ret+80(FP)
	RET

// func dotI8AVX2(a, b []int8) int32
//
// Quantized-ANN coarse-scan kernel: 16 bytes per iteration are
// sign-extended to int16 (VPMOVSXBW) and pair-multiplied-accumulated
// into int32 lanes (VPMADDWD — products ≤ 127·127, a pair sum ≤ 32258,
// no saturation, unlike the VPMADDUBSW path which can saturate int16).
// Integer accumulation is exact and associative, so the result is
// bit-identical to dotI8Generic regardless of lane order.
TEXT ·dotI8AVX2(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	VPXOR Y0, Y0, Y0
	XORL R8, R8
	MOVQ CX, BX
	SHRQ $4, BX
	JZ   i8_tail_setup
i8_loop16:
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DI), Y2
	VPMADDWD Y2, Y1, Y1
	VPADDD Y1, Y0, Y0
	ADDQ $16, SI
	ADDQ $16, DI
	DECQ BX
	JNZ  i8_loop16
i8_tail_setup:
	ANDQ $15, CX
	JZ   i8_reduce
i8_tail:
	MOVBLSX (SI), AX
	MOVBLSX (DI), DX
	IMULL DX, AX
	ADDL AX, R8
	INCQ SI
	INCQ DI
	DECQ CX
	JNZ  i8_tail
i8_reduce:
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0x4E, X0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0xB1, X0, X1
	VPADDD X1, X0, X0
	VMOVD X0, AX
	ADDL R8, AX
	VZEROUPPER
	MOVL AX, ret+48(FP)
	RET
