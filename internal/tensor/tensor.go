// Package tensor implements the dense float32 linear-algebra kernels the
// reproduction is built on: vectors, row-major matrices, GEMM, softmax and
// similarity functions. Storage is float32 (matching embedding-table
// practice in large-scale recommendation systems); reductions accumulate
// in float64 for stability.
package tensor

import (
	"fmt"
	"math"
)

// Vec is a dense float32 vector.
type Vec = []float32

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Dot returns the inner product of a and b. It panics if lengths differ.
// Four independent float64 accumulator lanes break the add dependency
// chain without giving up the float64 accumulation the rest of the
// package guarantees; the AVX2 kernel keeps the identical lane layout,
// so the result is bit-for-bit the same under either dispatch (see
// dispatch_amd64.go for the contract).
func Dot(a, b Vec) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	return dot(a, b)
}

// DotSq returns (a·b, b·b) in a single pass over b. The focal-biased
// sampler's Tanimoto scoring needs both the cross product and the
// neighbor's squared norm per neighbor; fusing them halves memory traffic
// on the scoring hot path. Bit-identical across dispatch.
func DotSq(a, b Vec) (dot, bsq float32) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: DotSq length mismatch %d vs %d", len(a), len(b)))
	}
	return dotSq(a, b)
}

// Axpy computes y += alpha*x in place. It panics if lengths differ.
// Bit-identical across dispatch (elementwise float32, multiply and add
// rounded separately on both sides of the seam).
func Axpy(alpha float32, x, y Vec) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	axpy(alpha, x, y)
}

// DotAxpy fuses y += alpha*x with the inner product x·w in one traversal
// of x: the serving aggregate both scores a neighbor embedding against an
// attention vector and accumulates it into the output, and fusing keeps x
// cache-resident across the two uses. It panics if lengths differ.
// Bit-identical across dispatch.
func DotAxpy(alpha float32, x, w, y Vec) float32 {
	if len(x) != len(w) || len(x) != len(y) {
		panic(fmt.Sprintf("tensor: DotAxpy length mismatch %d/%d/%d", len(x), len(w), len(y)))
	}
	return dotAxpy(alpha, x, w, y)
}

// DotI8 returns the int32-accumulated inner product of two int8 vectors
// — the scoring kernel of the quantized ANN coarse scan. Every
// intermediate is exact, so the vectorized and generic implementations
// agree bit for bit by construction. It panics if lengths differ.
func DotI8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: DotI8 length mismatch %d vs %d", len(a), len(b)))
	}
	return dotI8(a, b)
}

// Scale multiplies x by alpha in place.
func Scale(alpha float32, x Vec) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add returns a+b as a new vector.
func Add(a, b Vec) Vec {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Add length mismatch %d vs %d", len(a), len(b)))
	}
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a-b as a new vector.
func Sub(a, b Vec) Vec {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Mul returns the element-wise product a*b as a new vector.
func Mul(a, b Vec) Vec {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Mul length mismatch %d vs %d", len(a), len(b)))
	}
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

// Copy returns a copy of x.
func Copy(x Vec) Vec {
	out := make(Vec, len(x))
	copy(out, x)
	return out
}

// sqNorm64 is the one squared-norm kernel Norm2, SqNorm and Normalize
// all sit on, kept in float64 until each caller's final rounding so the
// three stay mutually consistent (Normalize used to run its own Norm2
// pass; now norm and squared norm come from the same accumulation).
func sqNorm64(x Vec) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x Vec) float32 {
	return float32(math.Sqrt(sqNorm64(x)))
}

// SqNorm returns the squared Euclidean norm of x.
func SqNorm(x Vec) float32 {
	return float32(sqNorm64(x))
}

// Normalize scales x to unit norm in place. A zero vector is left
// unchanged.
func Normalize(x Vec) {
	n := float32(math.Sqrt(sqNorm64(x)))
	if n == 0 {
		return
	}
	Scale(1/n, x)
}

// Cosine returns the cosine similarity of a and b, or 0 when either has
// zero norm (the conventional choice for sparse recommendation features).
func Cosine(a, b Vec) float32 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Tanimoto returns the focal-relevance score of the paper's eq. (5):
//
//	e = (a·b) / (|a|² + |b|² − a·b)
//
// For non-negative vectors it is the continuous Tanimoto coefficient; the
// paper uses it to score neighbor relevance to the focal vector. When the
// denominator is not positive (both vectors zero, or pathological float
// cancellation) it returns 0.
func Tanimoto(a, b Vec) float32 {
	d, bsq := DotSq(a, b)
	den := SqNorm(a) + bsq - d
	if den <= 0 {
		return 0
	}
	return d / den
}

// TanimotoWithSqNorm is Tanimoto with the first argument's squared norm
// precomputed. The focal-biased sampler scores one fixed focal vector
// against every neighbor, so |a|² is loop-invariant and the per-neighbor
// cost drops to a single fused pass over the neighbor's content vector.
func TanimotoWithSqNorm(a Vec, asq float32, b Vec) float32 {
	d, bsq := DotSq(a, b)
	den := asq + bsq - d
	if den <= 0 {
		return 0
	}
	return d / den
}

// Softmax writes the softmax of x into out (which may alias x) and
// returns out. It is numerically stabilized by max subtraction.
func Softmax(x, out Vec) Vec {
	if len(out) != len(x) {
		panic("tensor: Softmax output length mismatch")
	}
	if len(x) == 0 {
		return out
	}
	maxv := x[0]
	for _, v := range x[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - maxv))
		out[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Sigmoid returns 1/(1+exp(-x)) computed stably.
func Sigmoid(x float32) float32 {
	if x >= 0 {
		z := float32(math.Exp(-float64(x)))
		return 1 / (1 + z)
	}
	z := float32(math.Exp(float64(x)))
	return z / (1 + z)
}

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) Vec {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MatVec computes out = m · x. It panics on shape mismatch. Each row is
// one Dot-kernel call, so the nn/training forward path rides the same
// 4-lane (and, under dispatch, vectorized) kernel as the serving path
// instead of the old single-accumulator row loop.
func MatVec(m *Matrix, x, out Vec) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch (%dx%d)·%d -> %d", m.Rows, m.Cols, len(x), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		out[i] = dot(m.Data[i*m.Cols:(i+1)*m.Cols], x)
	}
}

// MatVecT computes out = mᵀ · x (x has length Rows, out has length Cols).
// Row i contributes out += x[i]·row — the Axpy kernel — with zero rows
// of x skipped (identical bits either way except for signed-zero inputs,
// and a skip is cheaper than 2·Cols flops). Bit-identical across
// dispatch: elementwise float32 with multiply and add rounded
// separately.
func MatVecT(m *Matrix, x, out Vec) {
	if len(x) != m.Rows || len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVecT shape mismatch (%dx%d)ᵀ·%d -> %d", m.Rows, m.Cols, len(x), len(out)))
	}
	for j := range out {
		out[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		axpy(xi, m.Data[i*m.Cols:(i+1)*m.Cols], out)
	}
}

// MatMul returns a·b. It panics on shape mismatch. The kernel is the
// cache-friendly i-k-j ordering over row-major storage.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%dx%d)·(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func Transpose(m *Matrix) *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mean returns the arithmetic mean of the rows of vs. All rows must share
// a length; the mean of no rows is a zero vector of length dim.
func Mean(vs []Vec, dim int) Vec {
	out := make(Vec, dim)
	if len(vs) == 0 {
		return out
	}
	for _, v := range vs {
		Axpy(1, v, out)
	}
	Scale(1/float32(len(vs)), out)
	return out
}

// Sum accumulates the rows of vs into a fresh vector of length dim.
func Sum(vs []Vec, dim int) Vec {
	out := make(Vec, dim)
	for _, v := range vs {
		Axpy(1, v, out)
	}
	return out
}

// GemmAcc accumulates dst += op(a)·op(b), where op is the optional
// transpose selected by transA/transB. It is the workhorse of autodiff
// backward passes, which need transposed products accumulated into
// existing gradient buffers. It panics on shape mismatch.
func GemmAcc(dst, a, b *Matrix, transA, transB bool) {
	ar, ac := a.Rows, a.Cols
	if transA {
		ar, ac = ac, ar
	}
	br, bc := b.Rows, b.Cols
	if transB {
		br, bc = bc, br
	}
	if ac != br || dst.Rows != ar || dst.Cols != bc {
		panic(fmt.Sprintf("tensor: GemmAcc shape mismatch (%dx%d)·(%dx%d) -> (%dx%d)", ar, ac, br, bc, dst.Rows, dst.Cols))
	}
	at := func(i, k int) float32 {
		if transA {
			return a.Data[k*a.Cols+i]
		}
		return a.Data[i*a.Cols+k]
	}
	for i := 0; i < ar; i++ {
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k := 0; k < ac; k++ {
			av := at(i, k)
			if av == 0 {
				continue
			}
			if transB {
				for j := 0; j < bc; j++ {
					drow[j] += av * b.Data[j*b.Cols+k]
				}
			} else {
				brow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
}
