package tensor

import (
	"fmt"
	"testing"

	"zoomer/internal/rng"
)

// Kernel-era benchmarks: the dispatched public kernels at the dims the
// serving stack actually runs (32/64 embeddings, 256 for headroom), and
// the generic references beside them so one run shows the seam's win.
// bench.sh records BenchmarkDot*/BenchmarkMatVecT*/BenchmarkAxpy* in
// BENCH_hotpath.json next to the active `simd` dispatch.

func benchVecs(n int) (Vec, Vec) {
	r := rng.New(uint64(n) + 1)
	a, b := make(Vec, n), make(Vec, n)
	for i := range a {
		a[i] = float32(r.NormFloat64())
		b[i] = float32(r.NormFloat64())
	}
	return a, b
}

var sinkF32 float32
var sinkI32 int32

func BenchmarkDot(b *testing.B) {
	for _, n := range []int{32, 64, 256} {
		a, x := benchVecs(n)
		b.Run(fmt.Sprintf("dim%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkF32 = Dot(a, x)
			}
		})
		b.Run(fmt.Sprintf("dim%d-generic", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkF32 = DotGeneric(a, x)
			}
		})
	}
}

func BenchmarkDotSq(b *testing.B) {
	for _, n := range []int{32, 64} {
		a, x := benchVecs(n)
		b.Run(fmt.Sprintf("dim%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkF32, _ = DotSq(a, x)
			}
		})
	}
}

func BenchmarkAxpy(b *testing.B) {
	for _, n := range []int{32, 64, 256} {
		x, y := benchVecs(n)
		b.Run(fmt.Sprintf("dim%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Axpy(0.5, x, y)
			}
		})
	}
}

func BenchmarkDotAxpy(b *testing.B) {
	for _, n := range []int{32, 64} {
		x, w := benchVecs(n)
		y := make(Vec, n)
		b.Run(fmt.Sprintf("dim%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkF32 = DotAxpy(0.5, x, w, y)
			}
		})
	}
}

func BenchmarkMatVecT(b *testing.B) {
	for _, dim := range []int{64, 128} {
		m := NewMatrix(dim, dim)
		x, out := benchVecs(dim)
		r := rng.New(9)
		for i := range m.Data {
			m.Data[i] = float32(r.NormFloat64())
		}
		b.Run(fmt.Sprintf("%dx%d", dim, dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatVecT(m, x, out)
			}
		})
		b.Run(fmt.Sprintf("%dx%d-generic", dim, dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := range out {
					out[j] = 0
				}
				for row := 0; row < dim; row++ {
					xi := x[row]
					if xi == 0 {
						continue
					}
					AxpyGeneric(xi, m.Data[row*dim:(row+1)*dim], out)
				}
			}
		})
	}
}

func BenchmarkMatVec(b *testing.B) {
	dim := 64
	m := NewMatrix(dim, dim)
	r := rng.New(9)
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64())
	}
	x, out := benchVecs(dim)
	b.Run(fmt.Sprintf("%dx%d", dim, dim), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MatVec(m, x, out)
		}
	})
}

func BenchmarkDotI8(b *testing.B) {
	for _, n := range []int{32, 64, 256} {
		r := rng.New(uint64(n))
		a, x := make([]int8, n), make([]int8, n)
		for i := range a {
			a[i] = int8(r.Intn(255) - 127)
			x[i] = int8(r.Intn(255) - 127)
		}
		b.Run(fmt.Sprintf("dim%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkI32 = DotI8(a, x)
			}
		})
	}
}
