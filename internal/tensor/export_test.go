package tensor

// DotGeneric and friends expose the reference kernels to the package
// benchmarks so one binary can measure both sides of the dispatch seam.
var (
	DotGeneric     = dotGeneric
	DotSqGeneric   = dotSqGeneric
	AxpyGeneric    = axpyGeneric
	DotAxpyGeneric = dotAxpyGeneric
	DotI8Generic   = dotI8Generic
)
