//go:build !purego

package tensor

import (
	"math"
	"testing"

	"zoomer/internal/rng"
)

// The cross-check suite: every vectorized kernel against its generic
// reference, asserting BIT-identity (not tolerance) on fuzzed lengths —
// including the <4 and non-multiple-of-8 tails and the 0/1 edges — and
// on adversarial values (denormals, huge/tiny magnitude mixes). This is
// the contract that makes dispatch invisible to sampler draws and ANN
// rankings; see dispatch_amd64.go. The same package tests also run
// under -tags purego, where the public kernels ARE the references and
// the contract holds trivially.

// fuzzLens covers every alignment class of the vector loops: the 4-wide
// f64 lanes, the 2-wide pairs, the 8-wide f32 blocks and the 16-wide
// int8 blocks, each with 0..full tails.
var fuzzLens = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13, 15, 16, 17, 23, 24, 31, 32, 33, 47, 63, 64, 65, 100, 127, 128, 129, 255, 256, 1000}

func fuzzVec(r *rng.RNG, n int) Vec {
	v := make(Vec, n)
	for i := range v {
		switch r.Intn(8) {
		case 0:
			v[i] = 0
		case 1:
			v[i] = float32(r.NormFloat64()) * 1e-40 // denormal range
		case 2:
			v[i] = float32(r.NormFloat64()) * 1e20
		case 3:
			v[i] = float32(r.NormFloat64()) * 1e-20
		default:
			v[i] = float32(r.NormFloat64())
		}
	}
	return v
}

func requireSameBits(t *testing.T, what string, n int, got, want float32) {
	t.Helper()
	if math.Float32bits(got) != math.Float32bits(want) {
		t.Fatalf("%s len=%d: asm %v (bits %#x) != generic %v (bits %#x)",
			what, n, got, math.Float32bits(got), want, math.Float32bits(want))
	}
}

func TestDotAVX2BitIdentical(t *testing.T) {
	if !useAVX2 {
		t.Skip("no AVX2 on this host")
	}
	r := rng.New(11)
	for _, n := range fuzzLens {
		for rep := 0; rep < 8; rep++ {
			a, b := fuzzVec(r, n), fuzzVec(r, n)
			requireSameBits(t, "Dot", n, dotAVX2(a, b), dotGeneric(a, b))
		}
	}
}

func TestDotSqAVX2BitIdentical(t *testing.T) {
	if !useAVX2 {
		t.Skip("no AVX2 on this host")
	}
	r := rng.New(12)
	for _, n := range fuzzLens {
		for rep := 0; rep < 8; rep++ {
			a, b := fuzzVec(r, n), fuzzVec(r, n)
			d, q := dotSqAVX2(a, b)
			wd, wq := dotSqGeneric(a, b)
			requireSameBits(t, "DotSq.dot", n, d, wd)
			requireSameBits(t, "DotSq.bsq", n, q, wq)
		}
	}
}

func TestAxpyAVX2BitIdentical(t *testing.T) {
	if !useAVX2 {
		t.Skip("no AVX2 on this host")
	}
	r := rng.New(13)
	for _, n := range fuzzLens {
		for rep := 0; rep < 8; rep++ {
			alpha := float32(r.NormFloat64())
			x := fuzzVec(r, n)
			y := fuzzVec(r, n)
			yAsm := Copy(y)
			axpyAVX2(alpha, x, yAsm)
			axpyGeneric(alpha, x, y)
			for i := range y {
				requireSameBits(t, "Axpy", n, yAsm[i], y[i])
			}
		}
	}
}

func TestDotAxpyAVX2BitIdentical(t *testing.T) {
	if !useAVX2 {
		t.Skip("no AVX2 on this host")
	}
	r := rng.New(14)
	for _, n := range fuzzLens {
		for rep := 0; rep < 8; rep++ {
			alpha := float32(r.NormFloat64())
			x, w := fuzzVec(r, n), fuzzVec(r, n)
			y := fuzzVec(r, n)
			yAsm := Copy(y)
			requireSameBits(t, "DotAxpy.dot", n,
				dotAxpyAVX2(alpha, x, w, yAsm), dotAxpyGeneric(alpha, x, w, y))
			for i := range y {
				requireSameBits(t, "DotAxpy.y", n, yAsm[i], y[i])
			}
		}
	}
}

func TestDotI8AVX2Identical(t *testing.T) {
	if !useAVX2 {
		t.Skip("no AVX2 on this host")
	}
	r := rng.New(15)
	for _, n := range fuzzLens {
		for rep := 0; rep < 8; rep++ {
			a, b := make([]int8, n), make([]int8, n)
			for i := range a {
				a[i] = int8(r.Intn(255) - 127)
				b[i] = int8(r.Intn(255) - 127)
			}
			if got, want := dotI8AVX2(a, b), dotI8Generic(a, b); got != want {
				t.Fatalf("DotI8 len=%d: asm %d != generic %d", n, got, want)
			}
		}
	}
}

// TestDotI8AVX2SaturationCase pins the reason the kernel sign-extends to
// int16 and uses VPMADDWD rather than the VPMADDUBSW idiom: extreme
// same-sign pairs whose int16 pair-sums would saturate under the latter.
func TestDotI8AVX2SaturationCase(t *testing.T) {
	if !useAVX2 {
		t.Skip("no AVX2 on this host")
	}
	a := make([]int8, 64)
	b := make([]int8, 64)
	for i := range a {
		a[i] = -128
		b[i] = -128
	}
	want := int32(64 * 128 * 128)
	if got := dotI8AVX2(a, b); got != want {
		t.Fatalf("DotI8 all -128: asm %d != %d", got, want)
	}
}

// TestMatVecTBitIdenticalAcrossDispatch drives the public MatVecT (which
// routes rows through the dispatched Axpy kernel) against an inline
// replica of the pre-seam generic loop.
func TestMatVecTBitIdenticalAcrossDispatch(t *testing.T) {
	r := rng.New(16)
	for _, rows := range []int{1, 3, 7, 16} {
		for _, cols := range []int{1, 2, 5, 31, 64, 65} {
			m := NewMatrix(rows, cols)
			copy(m.Data, fuzzVec(r, rows*cols))
			x := fuzzVec(r, rows)
			if rows > 2 {
				x[1] = 0 // exercise the zero-row skip
			}
			got := make(Vec, cols)
			MatVecT(m, x, got)

			want := make(Vec, cols)
			for i := 0; i < rows; i++ {
				xi := x[i]
				if xi == 0 {
					continue
				}
				row := m.Data[i*cols : (i+1)*cols]
				for j, v := range row {
					want[j] += xi * v
				}
			}
			for j := range want {
				requireSameBits(t, "MatVecT", cols, got[j], want[j])
			}
		}
	}
}

// TestMatVecMatchesPerRowDot pins the satellite rework: each output of
// MatVec is exactly one Dot-kernel evaluation of (row, x).
func TestMatVecMatchesPerRowDot(t *testing.T) {
	r := rng.New(17)
	m := NewMatrix(9, 37)
	copy(m.Data, fuzzVec(r, 9*37))
	x := fuzzVec(r, 37)
	out := make(Vec, 9)
	MatVec(m, x, out)
	for i := range out {
		requireSameBits(t, "MatVec", 37, out[i], Dot(m.Data[i*37:(i+1)*37], x))
	}
}
