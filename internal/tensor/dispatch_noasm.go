//go:build !amd64 || purego

// The no-assembly side of the kernel seam: non-amd64 architectures, and
// any build with -tags purego (the cross-checking leg `make ci` runs).
// Every dispatch point is the generic kernel, so a purego binary is the
// reference the vectorized build is held bit-identical against.
package tensor

// SIMD reports the active kernel dispatch, recorded by bench.sh in the
// BENCH_hotpath.json header so perf trajectories name their kernel era.
func SIMD() string { return "purego" }

func dot(a, b Vec) float32                      { return dotGeneric(a, b) }
func dotSq(a, b Vec) (float32, float32)         { return dotSqGeneric(a, b) }
func axpy(alpha float32, x, y Vec)              { axpyGeneric(alpha, x, y) }
func dotAxpy(alpha float32, x, w, y Vec) float32 { return dotAxpyGeneric(alpha, x, w, y) }
func dotI8(a, b []int8) int32                   { return dotI8Generic(a, b) }
