package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"zoomer/internal/rng"
)

func almostEq(a, b, tol float32) bool {
	return float32(math.Abs(float64(a-b))) <= tol
}

func randVec(r *rng.RNG, n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = r.Float32()*2 - 1
	}
	return v
}

func TestDot(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Dot(Vec{1}, Vec{1, 2})
}

func TestAxpyScaleAddSubMul(t *testing.T) {
	y := Vec{1, 1, 1}
	Axpy(2, Vec{1, 2, 3}, y)
	want := Vec{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
	Scale(0.5, y)
	if y[2] != 3.5 {
		t.Fatalf("Scale: got %v", y)
	}
	if s := Add(Vec{1, 2}, Vec{3, 4}); s[0] != 4 || s[1] != 6 {
		t.Fatalf("Add = %v", s)
	}
	if s := Sub(Vec{1, 2}, Vec{3, 4}); s[0] != -2 || s[1] != -2 {
		t.Fatalf("Sub = %v", s)
	}
	if s := Mul(Vec{2, 3}, Vec{3, 4}); s[0] != 6 || s[1] != 12 {
		t.Fatalf("Mul = %v", s)
	}
}

func TestNormAndNormalize(t *testing.T) {
	v := Vec{3, 4}
	if n := Norm2(v); !almostEq(n, 5, 1e-6) {
		t.Fatalf("Norm2 = %v", n)
	}
	if n := SqNorm(v); !almostEq(n, 25, 1e-5) {
		t.Fatalf("SqNorm = %v", n)
	}
	Normalize(v)
	if !almostEq(Norm2(v), 1, 1e-6) {
		t.Fatalf("Normalize: norm = %v", Norm2(v))
	}
	z := Vec{0, 0}
	Normalize(z) // must not NaN
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize(0) changed vector: %v", z)
	}
}

func TestCosine(t *testing.T) {
	if c := Cosine(Vec{1, 0}, Vec{0, 1}); !almostEq(c, 0, 1e-6) {
		t.Fatalf("orthogonal cosine = %v", c)
	}
	if c := Cosine(Vec{1, 2}, Vec{2, 4}); !almostEq(c, 1, 1e-6) {
		t.Fatalf("parallel cosine = %v", c)
	}
	if c := Cosine(Vec{1, 1}, Vec{-1, -1}); !almostEq(c, -1, 1e-6) {
		t.Fatalf("antiparallel cosine = %v", c)
	}
	if c := Cosine(Vec{0, 0}, Vec{1, 1}); c != 0 {
		t.Fatalf("zero-vector cosine = %v", c)
	}
}

func TestTanimotoProperties(t *testing.T) {
	// Identity: Tanimoto(x, x) = 1 for any non-zero x.
	r := rng.New(5)
	for i := 0; i < 100; i++ {
		v := randVec(r, 8)
		if SqNorm(v) == 0 {
			continue
		}
		if got := Tanimoto(v, v); !almostEq(got, 1, 1e-4) {
			t.Fatalf("Tanimoto(x,x) = %v, want 1", got)
		}
	}
	// Zero vectors.
	if got := Tanimoto(Vec{0, 0}, Vec{0, 0}); got != 0 {
		t.Fatalf("Tanimoto(0,0) = %v", got)
	}
	// Known value: a=(1,0), b=(0,1): dot 0 -> score 0.
	if got := Tanimoto(Vec{1, 0}, Vec{0, 1}); got != 0 {
		t.Fatalf("Tanimoto orth = %v", got)
	}
	// Monotone in overlap for binary-ish vectors: more shared mass wins.
	a := Vec{1, 1, 1, 0}
	closer := Vec{1, 1, 0, 0}
	farther := Vec{1, 0, 0, 0}
	if !(Tanimoto(a, closer) > Tanimoto(a, farther)) {
		t.Fatal("Tanimoto not monotone in overlap")
	}
}

func TestSoftmaxNormalizes(t *testing.T) {
	r := rng.New(17)
	if err := quick.Check(func(seed uint32) bool {
		n := int(seed%16) + 1
		x := randVec(r, n)
		// Include large magnitudes to check stability.
		x[0] += 100
		out := make(Vec, n)
		Softmax(x, out)
		var sum float64
		for _, v := range out {
			if v < 0 || math.IsNaN(float64(v)) {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxOrderPreserving(t *testing.T) {
	x := Vec{1, 3, 2}
	out := make(Vec, 3)
	Softmax(x, out)
	if !(out[1] > out[2] && out[2] > out[0]) {
		t.Fatalf("softmax order violated: %v", out)
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	out := Softmax(Vec{}, Vec{})
	if len(out) != 0 {
		t.Fatal("empty softmax should be empty")
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); !almostEq(s, 0.5, 1e-6) {
		t.Fatalf("Sigmoid(0) = %v", s)
	}
	if s := Sigmoid(100); !almostEq(s, 1, 1e-6) {
		t.Fatalf("Sigmoid(100) = %v", s)
	}
	if s := Sigmoid(-100); !almostEq(s, 0, 1e-6) {
		t.Fatalf("Sigmoid(-100) = %v", s)
	}
	// Symmetry: sigmoid(-x) = 1 - sigmoid(x).
	for _, x := range []float32{-3, -0.5, 0.7, 2} {
		if !almostEq(Sigmoid(-x), 1-Sigmoid(x), 1e-5) {
			t.Fatalf("sigmoid symmetry failed at %v", x)
		}
	}
}

func TestMatVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	out := make(Vec, 2)
	MatVec(m, Vec{1, 1, 1}, out)
	if out[0] != 6 || out[1] != 15 {
		t.Fatalf("MatVec = %v", out)
	}
	tout := make(Vec, 3)
	MatVecT(m, Vec{1, 1}, tout)
	if tout[0] != 5 || tout[1] != 7 || tout[2] != 9 {
		t.Fatalf("MatVecT = %v", tout)
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := rng.New(99)
	a := NewMatrix(4, 5)
	b := NewMatrix(5, 3)
	for i := range a.Data {
		a.Data[i] = r.Float32() - 0.5
	}
	for i := range b.Data {
		b.Data[i] = r.Float32() - 0.5
	}
	got := MatMul(a, b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			var want float64
			for k := 0; k < 5; k++ {
				want += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			if !almostEq(got.At(i, j), float32(want), 1e-4) {
				t.Fatalf("MatMul(%d,%d) = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(7)
	m := NewMatrix(3, 4)
	for i := range m.Data {
		m.Data[i] = r.Float32()
	}
	tt := Transpose(Transpose(m))
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("transpose twice is not identity")
		}
	}
}

func TestMeanSum(t *testing.T) {
	vs := []Vec{{1, 2}, {3, 4}}
	mean := Mean(vs, 2)
	if mean[0] != 2 || mean[1] != 3 {
		t.Fatalf("Mean = %v", mean)
	}
	sum := Sum(vs, 2)
	if sum[0] != 4 || sum[1] != 6 {
		t.Fatalf("Sum = %v", sum)
	}
	empty := Mean(nil, 3)
	if len(empty) != 3 || empty[0] != 0 {
		t.Fatalf("Mean(nil) = %v", empty)
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Fatal("Set/At mismatch")
	}
	row := m.Row(1)
	row[1] = 9
	if m.At(1, 1) != 9 {
		t.Fatal("Row is not a live view")
	}
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) == 5 {
		t.Fatal("Clone aliases original")
	}
}

func BenchmarkDot128(b *testing.B) {
	r := rng.New(1)
	x, y := randVec(r, 128), randVec(r, 128)
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := rng.New(1)
	m := NewMatrix(64, 64)
	for i := range m.Data {
		m.Data[i] = r.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(m, m)
	}
}

func TestGemmAccAgainstMatMul(t *testing.T) {
	r := rng.New(123)
	a := NewMatrix(3, 4)
	b := NewMatrix(4, 2)
	for i := range a.Data {
		a.Data[i] = r.Float32() - 0.5
	}
	for i := range b.Data {
		b.Data[i] = r.Float32() - 0.5
	}
	want := MatMul(a, b)

	// No transpose.
	dst := NewMatrix(3, 2)
	GemmAcc(dst, a, b, false, false)
	for i := range dst.Data {
		if !almostEq(dst.Data[i], want.Data[i], 1e-5) {
			t.Fatal("GemmAcc(false,false) mismatch")
		}
	}
	// Accumulation: running twice doubles.
	GemmAcc(dst, a, b, false, false)
	for i := range dst.Data {
		if !almostEq(dst.Data[i], 2*want.Data[i], 1e-5) {
			t.Fatal("GemmAcc does not accumulate")
		}
	}
	// transA: aᵀ has shape 4x3; (aᵀ)ᵀ·b would mismatch, so check aᵀ·want2
	at := Transpose(a)
	dst2 := NewMatrix(3, 2)
	GemmAcc(dst2, at, b, true, false)
	for i := range dst2.Data {
		if !almostEq(dst2.Data[i], want.Data[i], 1e-5) {
			t.Fatal("GemmAcc(true,false) mismatch")
		}
	}
	// transB.
	bt := Transpose(b)
	dst3 := NewMatrix(3, 2)
	GemmAcc(dst3, a, bt, false, true)
	for i := range dst3.Data {
		if !almostEq(dst3.Data[i], want.Data[i], 1e-5) {
			t.Fatal("GemmAcc(false,true) mismatch")
		}
	}
	// Both.
	dst4 := NewMatrix(3, 2)
	GemmAcc(dst4, at, bt, true, true)
	for i := range dst4.Data {
		if !almostEq(dst4.Data[i], want.Data[i], 1e-5) {
			t.Fatal("GemmAcc(true,true) mismatch")
		}
	}
}

func TestDotSqMatchesSeparate(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 33} {
		a, b := make(Vec, n), make(Vec, n)
		for i := 0; i < n; i++ {
			a[i] = float32(i%5) - 2
			b[i] = float32(i%3) + 0.5
		}
		d, bsq := DotSq(a, b)
		if wd := Dot(a, b); absf(d-wd) > 1e-5 {
			t.Fatalf("n=%d: DotSq dot %v vs Dot %v", n, d, wd)
		}
		if wq := SqNorm(b); absf(bsq-wq) > 1e-5 {
			t.Fatalf("n=%d: DotSq sqnorm %v vs SqNorm %v", n, bsq, wq)
		}
	}
}

func TestDotAxpyFusesBothResults(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 16, 31} {
		x, w, y := make(Vec, n), make(Vec, n), make(Vec, n)
		for i := 0; i < n; i++ {
			x[i] = float32(i) - 1.5
			w[i] = float32(i%4) * 0.25
			y[i] = float32(i % 7)
		}
		wantDot := Dot(x, w)
		wantY := Copy(y)
		Axpy(0.75, x, wantY)
		got := DotAxpy(0.75, x, w, y)
		if absf(got-wantDot) > 1e-5 {
			t.Fatalf("n=%d: dot %v, want %v", n, got, wantDot)
		}
		for i := range y {
			if absf(y[i]-wantY[i]) > 1e-5 {
				t.Fatalf("n=%d: y[%d]=%v, want %v", n, i, y[i], wantY[i])
			}
		}
	}
}

func TestTanimotoWithSqNormMatches(t *testing.T) {
	a := Vec{1, 0.5, -0.25, 2}
	b := Vec{0.5, 1, 0.75, -1}
	if got, want := TanimotoWithSqNorm(a, SqNorm(a), b), Tanimoto(a, b); absf(got-want) > 1e-6 {
		t.Fatalf("TanimotoWithSqNorm %v vs Tanimoto %v", got, want)
	}
}

func absf(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
