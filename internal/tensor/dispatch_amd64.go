//go:build !purego

// The amd64 side of the kernel seam. At init the package probes CPUID
// for AVX2+FMA (plus OS-enabled YMM state via XGETBV) and routes the
// five hot kernels — Dot, DotSq, Axpy, DotAxpy and the int8 dot of the
// quantized ANN scan — to the hand-written vector implementations in
// kernels_amd64.s. MatVec/MatVecT ride the same seam per row.
//
// Bit-identity contract: the vector kernels replicate the generic
// kernels' accumulation order exactly — Dot keeps the 4 independent
// float64 accumulator lanes (one YMM register, lane k summing elements
// ≡ k mod 4 in index order, scalar tail into lane 0) and the
// (s0+s1)+(s2+s3) reduction; DotSq/DotAxpy keep the 2-lane layout; the
// float32 elementwise kernels use separate multiply and add (no FMA —
// fusing would skip the intermediate rounding the generic code
// performs). Float64 products of float32 inputs are exact, so FMA in
// the float64 reductions is safe. The upshot: a draw, a ranking or an
// embedding computed under AVX2 dispatch is bit-for-bit the one the
// purego build computes, pinned by kernels_equiv_amd64_test.go.
package tensor

// useAVX2 routes the dispatch points below, decided once at init and
// never mutated — dispatch is deterministic for the process lifetime.
// Benchmarks reach the reference path through the exported *Generic
// aliases in export_test.go rather than by flipping this.
var useAVX2 = detectAVX2()

// cpuid and xgetbv are implemented in cpu_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// detectAVX2 reports whether the CPU and OS support the kernels in
// kernels_amd64.s: AVX2 and FMA instruction sets, with XMM+YMM state
// enabled by the OS (OSXSAVE + XCR0 bits 1-2 — a hypervisor or minimal
// kernel can expose AVX2 via CPUID while not context-switching YMM).
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	if xcr0, _ := xgetbv(); xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// SIMD reports the active kernel dispatch, recorded by bench.sh in the
// BENCH_hotpath.json header so perf trajectories name their kernel era.
func SIMD() string {
	if useAVX2 {
		return "avx2"
	}
	return "purego"
}

// Assembly kernels (kernels_amd64.s).
func dotAVX2(a, b Vec) float32
func dotSqAVX2(a, b Vec) (dot, bsq float32)
func axpyAVX2(alpha float32, x, y Vec)
func dotAxpyAVX2(alpha float32, x, w, y Vec) float32
func dotI8AVX2(a, b []int8) int32

func dot(a, b Vec) float32 {
	if useAVX2 {
		return dotAVX2(a, b)
	}
	return dotGeneric(a, b)
}

func dotSq(a, b Vec) (float32, float32) {
	if useAVX2 {
		return dotSqAVX2(a, b)
	}
	return dotSqGeneric(a, b)
}

func axpy(alpha float32, x, y Vec) {
	if useAVX2 {
		axpyAVX2(alpha, x, y)
		return
	}
	axpyGeneric(alpha, x, y)
}

func dotAxpy(alpha float32, x, w, y Vec) float32 {
	if useAVX2 {
		return dotAxpyAVX2(alpha, x, w, y)
	}
	return dotAxpyGeneric(alpha, x, w, y)
}

func dotI8(a, b []int8) int32 {
	if useAVX2 {
		return dotI8AVX2(a, b)
	}
	return dotI8Generic(a, b)
}
