package ingest

import "testing"

// BenchmarkWALAppend measures the framing + buffered-write append path
// (fsync off: the group-commit sync cost is device-bound and measured by
// the fsync histogram in production instead).
func BenchmarkWALAppend(b *testing.B) {
	w, _, err := Open(b.TempDir(), Options{SegmentBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	edges := genRecord(3) // 4 edges
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(uint64(i)+1, edges); err != nil {
			b.Fatal(err)
		}
	}
}
