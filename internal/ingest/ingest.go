// Package ingest is the durable write path for online graph growth: a
// checksummed, fsync-batched write-ahead log of edge-append records.
//
// Each shard server owns one WAL directory per owned shard
// (<dir>/shard-<id>). A WAL is a chain of segment files named by the
// sequence number of their first record (00000000000000000001.wal, ...);
// records carry strictly increasing sequence numbers with no gaps, so a
// WAL prefix fully determines the delta state layered over the immutable
// CSR base — replaying the same prefix yields bit-identical draws.
//
// On-disk frame format (all little-endian):
//
//	u32 payload length | u32 CRC32 (IEEE, over payload) | payload
//
// record payload:
//
//	u64 seq | u32 edge count | count x (u32 src | u32 dst | u8 type | f32 weight)
//
// Recovery walks segments in order, validating length, checksum and
// sequence continuity. A torn tail (partial frame at the end of the last
// segment, the normal crash shape) is truncated silently modulo a log
// line; a corrupt record mid-file truncates recovery at the last valid
// frame, logs how much was dropped, and removes any later segments —
// durability never extends past the first unverifiable byte.
//
// Writes are group-committed: concurrent Append calls coalesce into one
// fsync (the first writer into the window syncs for everyone behind it).
// A failed write (disk full, I/O error) latches the WAL: the failing and
// all subsequent appends return a typed error wrapping ErrWALFailed, but
// reads — Stats, LastSeq, recovery from the directory — keep working.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zoomer/internal/graph"
)

// Edge is one appended adjacency fact: a directed src->dst edge with the
// same type/weight vocabulary as the build-time graph. Undirected
// relations are appended as two records or two edges.
type Edge struct {
	Src    graph.NodeID
	Dst    graph.NodeID
	Type   graph.EdgeType
	Weight float32
}

// Record is one WAL entry: a batch of edges applied atomically under one
// sequence number.
type Record struct {
	Seq   uint64
	Edges []Edge
}

// Typed failures, matched with errors.Is.
var (
	// ErrWALFailed marks a WAL whose backing file hit a write or sync
	// error (disk full, I/O error). The WAL stays readable but refuses
	// further appends until reopened.
	ErrWALFailed = errors.New("ingest: WAL write failed; log is read-only until reopened")
	// ErrSeqOrder rejects an append whose sequence number is not exactly
	// lastSeq+1 — the caller (rpc.Server) owns dup/gap semantics and must
	// resolve them before writing.
	ErrSeqOrder = errors.New("ingest: append sequence not contiguous")
	// ErrCorrupt marks unverifiable bytes found during recovery.
	ErrCorrupt = errors.New("ingest: corrupt WAL record")
	// ErrClosed rejects operations on a closed WAL.
	ErrClosed = errors.New("ingest: WAL closed")
)

const (
	frameHeaderSize = 8       // u32 len + u32 crc
	edgeWireSize    = 13      // u32 src + u32 dst + u8 type + f32 weight
	maxRecordBytes  = 1 << 24 // sanity bound on one payload; larger lengths are corruption
	// MaxRecordEdges bounds one record's batch size (derived from the
	// payload bound; also the wire-protocol append limit).
	MaxRecordEdges = (maxRecordBytes - 12) / edgeWireSize
)

// FsyncBounds are the upper bounds (seconds) of the fsync latency
// histogram buckets in Stats.FsyncHist; the final bucket is +Inf.
var FsyncBounds = [...]float64{
	0.000050, 0.000100, 0.000250, 0.000500,
	0.001, 0.0025, 0.005, 0.010, 0.025, 0.050, 0.100, 0.250,
}

// Options configures Open.
type Options struct {
	// Fsync syncs every append (group-committed) before reporting
	// success. Off, durability is bounded by the OS page cache — a
	// process crash loses nothing, a machine crash loses the tail.
	Fsync bool
	// SegmentBytes rotates to a new segment file once the current one
	// reaches this size. Defaults to 4 MiB.
	SegmentBytes int64
	// Logf receives recovery and corruption diagnostics. Defaults to
	// log.Printf.
	Logf func(format string, args ...any)
}

// WAL is a single shard's write-ahead log. Appends are safe for
// concurrent use; Stats and LastSeq never block behind an fsync.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	syncCond *sync.Cond
	f        *os.File
	segBytes int64
	segments int
	closed   bool
	failed   error // sticky first write/sync error

	// group-commit watermarks: logical byte offsets within the WAL
	// lifetime (monotonic across rotations).
	written int64
	synced  int64
	syncing bool

	lastSeq atomic.Uint64
	records atomic.Uint64

	fsyncs     atomic.Uint64
	fsyncNanos atomic.Uint64
	fsyncHist  [len(FsyncBounds) + 1]atomic.Uint64

	// test hook: simulated write failure (e.g. disk full) injected by
	// wal tests; nil in production.
	injectWriteErr func() error
}

// Stats is a point-in-time snapshot of a WAL's write-path counters.
type Stats struct {
	LastSeq    uint64
	Records    uint64
	Segments   int
	Fsyncs     uint64
	FsyncNanos uint64
	// FsyncHist holds non-cumulative bucket counts aligned with
	// FsyncBounds plus a trailing +Inf bucket.
	FsyncHist []uint64
	Failed    bool
}

// Open opens (creating if needed) the WAL in dir, replays every intact
// record and returns them for the caller to re-apply. The returned WAL
// is positioned to append the next contiguous sequence number.
func Open(dir string, opts Options) (*WAL, []Record, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("ingest: open WAL dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}

	w := &WAL{dir: dir, opts: opts}
	w.syncCond = sync.NewCond(&w.mu)

	var recovered []Record
	for i, name := range segs {
		path := filepath.Join(dir, name)
		recs, validOff, size, rerr := readSegment(path, w.lastSeqLocal(recovered))
		recovered = append(recovered, recs...)
		if rerr == nil {
			continue
		}
		// Unverifiable bytes: truncate this segment at the last valid
		// frame and drop every later segment — recovery must be a clean
		// contiguous prefix of the append history.
		dropped := size - validOff
		kind := "torn tail"
		if !errors.Is(rerr, io.ErrUnexpectedEOF) || i != len(segs)-1 {
			kind = "corrupt record"
		}
		opts.Logf("ingest: %s: %s in %s at offset %d: %v; dropping %d byte(s) after seq %d",
			dir, kind, name, validOff, rerr, dropped, w.lastSeqLocal(recovered))
		if err := os.Truncate(path, validOff); err != nil {
			return nil, nil, fmt.Errorf("ingest: truncate %s: %w", name, err)
		}
		for _, later := range segs[i+1:] {
			opts.Logf("ingest: %s: dropping unreachable segment %s (follows truncated %s)", dir, later, name)
			if err := os.Remove(filepath.Join(dir, later)); err != nil {
				return nil, nil, fmt.Errorf("ingest: remove %s: %w", later, err)
			}
		}
		segs = segs[:i+1]
		break
	}

	last := w.lastSeqLocal(recovered)
	w.lastSeq.Store(last)
	w.records.Store(uint64(len(recovered)))

	// Position the current segment: reuse the newest survivor, or start
	// a fresh one at the next sequence number.
	if len(segs) == 0 {
		if err := w.openSegment(last + 1); err != nil {
			return nil, nil, err
		}
	} else {
		name := segs[len(segs)-1]
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("ingest: reopen segment %s: %w", name, err)
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: seek segment %s: %w", name, err)
		}
		w.f = f
		w.segBytes = size
		w.segments = len(segs)
	}
	return w, recovered, nil
}

func (w *WAL) lastSeqLocal(recs []Record) uint64 {
	if len(recs) == 0 {
		return 0
	}
	return recs[len(recs)-1].Seq
}

func listSegments(dir string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		return nil, fmt.Errorf("ingest: list segments: %w", err)
	}
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, filepath.Base(n))
	}
	// Zero-padded fixed-width names: lexical order is numeric order.
	sort.Strings(out)
	return out, nil
}

// readSegment decodes frames until EOF or the first unverifiable byte.
// It returns the intact records, the offset just past the last valid
// frame, the file size, and nil only when the whole file verified.
func readSegment(path string, lastSeq uint64) (recs []Record, validOff, size int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("ingest: read segment: %w", err)
	}
	size = int64(len(b))
	off := int64(0)
	for int64(len(b))-off > 0 {
		rest := b[off:]
		if len(rest) < frameHeaderSize {
			return recs, off, size, fmt.Errorf("%w: partial frame header", io.ErrUnexpectedEOF)
		}
		plen := binary.LittleEndian.Uint32(rest)
		crc := binary.LittleEndian.Uint32(rest[4:])
		if plen > maxRecordBytes {
			return recs, off, size, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, plen)
		}
		if uint32(len(rest)-frameHeaderSize) < plen {
			return recs, off, size, fmt.Errorf("%w: partial frame payload", io.ErrUnexpectedEOF)
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(plen)]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, off, size, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			return recs, off, size, derr
		}
		if rec.Seq != lastSeq+1 {
			return recs, off, size, fmt.Errorf("%w: sequence %d after %d", ErrCorrupt, rec.Seq, lastSeq)
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		off += frameHeaderSize + int64(plen)
	}
	return recs, off, size, nil
}

func decodePayload(p []byte) (Record, error) {
	if len(p) < 12 {
		return Record{}, fmt.Errorf("%w: short payload", ErrCorrupt)
	}
	seq := binary.LittleEndian.Uint64(p)
	n := binary.LittleEndian.Uint32(p[8:])
	if n > MaxRecordEdges || int(n)*edgeWireSize != len(p)-12 {
		return Record{}, fmt.Errorf("%w: edge count %d does not match payload", ErrCorrupt, n)
	}
	edges := make([]Edge, n)
	b := p[12:]
	for i := range edges {
		edges[i] = Edge{
			Src:    graph.NodeID(binary.LittleEndian.Uint32(b)),
			Dst:    graph.NodeID(binary.LittleEndian.Uint32(b[4:])),
			Type:   graph.EdgeType(b[8]),
			Weight: math.Float32frombits(binary.LittleEndian.Uint32(b[9:])),
		}
		b = b[edgeWireSize:]
	}
	return Record{Seq: seq, Edges: edges}, nil
}

// AppendPayload encodes a record into wire/frame payload form. Shared
// with the RPC layer so the on-disk and on-wire edge encodings agree.
func AppendPayload(b []byte, seq uint64, edges []Edge) []byte {
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(edges)))
	for _, e := range edges {
		b = binary.LittleEndian.AppendUint32(b, uint32(e.Src))
		b = binary.LittleEndian.AppendUint32(b, uint32(e.Dst))
		b = append(b, byte(e.Type))
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(e.Weight))
	}
	return b
}

func (w *WAL) openSegment(startSeq uint64) error {
	name := fmt.Sprintf("%020d.wal", startSeq)
	f, err := os.OpenFile(filepath.Join(w.dir, name), os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: create segment %s: %w", name, err)
	}
	w.f = f
	w.segBytes = 0
	w.segments++
	return nil
}

// Append durably writes one record with the next contiguous sequence
// number (seq must equal LastSeq()+1). With Options.Fsync, it returns
// only after the record — batched with any concurrent appends — is
// synced to disk. Equivalent to Write followed by Sync; callers holding
// a lock across Write (rpc.Server's per-shard ingest mutex) should call
// Sync after releasing it so fsync waits don't serialize the write path.
func (w *WAL) Append(seq uint64, edges []Edge) error {
	end, err := w.Write(seq, edges)
	if err != nil {
		return err
	}
	return w.Sync(end)
}

// Write frames and buffers one record, returning the commit offset to
// pass to Sync. It is quick (no fsync) and serialized internally; the
// sequence number must be exactly LastSeq()+1.
func (w *WAL) Write(seq uint64, edges []Edge) (int64, error) {
	if len(edges) == 0 {
		return 0, errors.New("ingest: empty append record")
	}
	if len(edges) > MaxRecordEdges {
		return 0, fmt.Errorf("ingest: record of %d edges exceeds limit %d", len(edges), MaxRecordEdges)
	}

	payload := AppendPayload(make([]byte, 0, 12+len(edges)*edgeWireSize), seq, edges)
	frame := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.failed != nil {
		return 0, fmt.Errorf("%w (first failure: %v)", ErrWALFailed, w.failed)
	}
	if last := w.lastSeq.Load(); seq != last+1 {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrSeqOrder, seq, last+1)
	}
	if w.segBytes >= w.opts.SegmentBytes {
		if err := w.rotateLocked(seq); err != nil {
			w.failLocked(err)
			return 0, fmt.Errorf("%w (first failure: %v)", ErrWALFailed, err)
		}
	}
	if err := w.writeLocked(frame); err != nil {
		w.failLocked(err)
		return 0, fmt.Errorf("%w (first failure: %v)", ErrWALFailed, err)
	}
	w.segBytes += int64(len(frame))
	w.written += int64(len(frame))
	w.lastSeq.Store(seq)
	w.records.Add(1)
	return w.written, nil
}

// Sync group-commits: it returns once every byte up to end (a Write
// return value) is fsynced. One fsync covers every record written
// before it started — the first waiter into an unsynced window syncs
// for everyone parked behind it. A no-op without Options.Fsync.
func (w *WAL) Sync(end int64) error {
	if !w.opts.Fsync {
		return nil
	}
	w.mu.Lock()
	for w.synced < end {
		if w.failed != nil {
			err := w.failed
			w.mu.Unlock()
			return fmt.Errorf("%w (first failure: %v)", ErrWALFailed, err)
		}
		if w.closed {
			w.mu.Unlock()
			return ErrClosed
		}
		if w.syncing {
			w.syncCond.Wait()
			continue
		}
		w.syncing = true
		target := w.written
		f := w.f
		w.mu.Unlock()

		start := time.Now()
		serr := f.Sync()
		w.observeFsync(time.Since(start))

		w.mu.Lock()
		w.syncing = false
		if serr != nil {
			w.failLocked(serr)
			w.mu.Unlock()
			return fmt.Errorf("%w (first failure: %v)", ErrWALFailed, serr)
		}
		if target > w.synced {
			w.synced = target
		}
		w.syncCond.Broadcast()
	}
	w.mu.Unlock()
	return nil
}

// rotateLocked syncs and closes the current segment, then opens a fresh
// one whose name records startSeq. The old written bytes count as synced
// (Close syncs) so group-commit waiters don't stall across a rotation.
func (w *WAL) rotateLocked(startSeq uint64) error {
	if w.f != nil {
		if w.opts.Fsync {
			if err := w.f.Sync(); err != nil {
				w.f.Close()
				return err
			}
			if w.written > w.synced {
				w.synced = w.written
				w.syncCond.Broadcast()
			}
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	return w.openSegment(startSeq)
}

func (w *WAL) writeLocked(frame []byte) error {
	if w.injectWriteErr != nil {
		if err := w.injectWriteErr(); err != nil {
			return err
		}
	}
	_, err := w.f.Write(frame)
	return err
}

// failLocked latches the first write-path error and frees any group-
// commit waiters so a dead disk never wedges callers.
func (w *WAL) failLocked(err error) {
	if w.failed == nil {
		w.failed = err
		w.opts.Logf("ingest: %s: WAL write failed, log is now read-only: %v", w.dir, err)
	}
	w.syncCond.Broadcast()
}

func (w *WAL) observeFsync(d time.Duration) {
	w.fsyncs.Add(1)
	w.fsyncNanos.Add(uint64(d.Nanoseconds()))
	sec := d.Seconds()
	i := 0
	for i < len(FsyncBounds) && sec > FsyncBounds[i] {
		i++
	}
	w.fsyncHist[i].Add(1)
}

// LastSeq returns the sequence number of the newest appended record
// (0 when empty). Never blocks behind an in-flight fsync.
func (w *WAL) LastSeq() uint64 { return w.lastSeq.Load() }

// Dir returns the WAL directory.
func (w *WAL) Dir() string { return w.dir }

// Stats snapshots the write-path counters. Segment count and failure
// state take the lock briefly; counters are lock-free.
func (w *WAL) Stats() Stats {
	st := Stats{
		LastSeq:    w.lastSeq.Load(),
		Records:    w.records.Load(),
		Fsyncs:     w.fsyncs.Load(),
		FsyncNanos: w.fsyncNanos.Load(),
		FsyncHist:  make([]uint64, len(w.fsyncHist)),
	}
	for i := range w.fsyncHist {
		st.FsyncHist[i] = w.fsyncHist[i].Load()
	}
	w.mu.Lock()
	st.Segments = w.segments
	st.Failed = w.failed != nil
	w.mu.Unlock()
	return st
}

// Close syncs (when configured) and closes the current segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	w.syncCond.Broadcast()
	if w.f == nil {
		return nil
	}
	var err error
	if w.opts.Fsync && w.failed == nil {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
