package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"zoomer/internal/graph"
)

// genRecord returns the deterministic record for seq — the same function
// the crash chaos child uses, so any recovered prefix can be verified
// against it byte for byte.
func genRecord(seq uint64) []Edge {
	n := int(seq%5) + 1
	edges := make([]Edge, n)
	for i := range edges {
		x := seq*1000003 + uint64(i)*97
		edges[i] = Edge{
			Src:    graph.NodeID(x % 10000),
			Dst:    graph.NodeID((x / 7) % 10000),
			Type:   graph.EdgeType(x % 3),
			Weight: float32(x%100) + 0.5,
		}
	}
	return edges
}

func mustOpen(t *testing.T, dir string, opts Options) (*WAL, []Record) {
	t.Helper()
	w, recs, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return w, recs
}

func appendN(t *testing.T, w *WAL, from, to uint64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		if err := w.Append(seq, genRecord(seq)); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
	}
}

func verifyPrefix(t *testing.T, recs []Record) {
	t.Helper()
	for i, r := range recs {
		if r.Seq != uint64(i)+1 {
			t.Fatalf("record %d has seq %d; recovered prefix not contiguous", i, r.Seq)
		}
		want := genRecord(r.Seq)
		if len(r.Edges) != len(want) {
			t.Fatalf("seq %d: %d edges, want %d", r.Seq, len(r.Edges), len(want))
		}
		for j := range want {
			if r.Edges[j] != want[j] {
				t.Fatalf("seq %d edge %d: %+v, want %+v", r.Seq, j, r.Edges[j], want[j])
			}
		}
	}
}

func TestWALAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, recs := mustOpen(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh WAL recovered %d records", len(recs))
	}
	appendN(t, w, 1, 57)
	if w.LastSeq() != 57 {
		t.Fatalf("LastSeq = %d, want 57", w.LastSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, recs := mustOpen(t, dir, Options{})
	defer w2.Close()
	if len(recs) != 57 {
		t.Fatalf("recovered %d records, want 57", len(recs))
	}
	verifyPrefix(t, recs)
	if w2.LastSeq() != 57 {
		t.Fatalf("recovered LastSeq = %d, want 57", w2.LastSeq())
	}
	// The log keeps accepting contiguous appends after recovery.
	appendN(t, w2, 58, 60)
}

func TestWALSeqContiguityEnforced(t *testing.T) {
	w, _ := mustOpen(t, t.TempDir(), Options{})
	defer w.Close()
	appendN(t, w, 1, 3)
	if err := w.Append(3, genRecord(3)); !errors.Is(err, ErrSeqOrder) {
		t.Fatalf("duplicate seq: err = %v, want ErrSeqOrder", err)
	}
	if err := w.Append(5, genRecord(5)); !errors.Is(err, ErrSeqOrder) {
		t.Fatalf("gapped seq: err = %v, want ErrSeqOrder", err)
	}
	appendN(t, w, 4, 4) // the rejected appends must not advance state
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	appendN(t, w, 1, 100)
	st := w.Stats()
	if st.Segments < 4 {
		t.Fatalf("Segments = %d after 100 records at 256-byte rotation, want >= 4", st.Segments)
	}
	w.Close()

	names, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(names) != st.Segments {
		t.Fatalf("%d segment files on disk, stats say %d", len(names), st.Segments)
	}
	w2, recs := mustOpen(t, dir, Options{SegmentBytes: 256})
	defer w2.Close()
	if len(recs) != 100 {
		t.Fatalf("recovered %d records across segments, want 100", len(recs))
	}
	verifyPrefix(t, recs)
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	appendN(t, w, 1, 20)
	w.Close()

	// Simulate a crash mid-write: chop the final frame in half.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	last := segs[len(segs)-1]
	fi, _ := os.Stat(last)
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	var logged strings.Builder
	w2, recs := mustOpen(t, dir, Options{Logf: func(f string, a ...any) { fmt.Fprintf(&logged, f+"\n", a...) }})
	if len(recs) != 19 {
		t.Fatalf("recovered %d records after torn tail, want 19", len(recs))
	}
	verifyPrefix(t, recs)
	if !strings.Contains(logged.String(), "torn tail") {
		t.Fatalf("torn tail not logged; log output:\n%s", logged.String())
	}
	// The torn bytes are gone from disk and the log continues cleanly.
	appendN(t, w2, 20, 25)
	w2.Close()
	w3, recs := mustOpen(t, dir, Options{})
	defer w3.Close()
	if len(recs) != 25 {
		t.Fatalf("recovered %d records after continue, want 25", len(recs))
	}
	verifyPrefix(t, recs)
}

func TestWALCorruptMidFileTruncatesAndLogs(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentBytes: 1 << 20})
	appendN(t, w, 1, 30)
	w.Close()

	// Flip one payload byte in the middle of the single segment: the
	// 10th record's checksum stops verifying.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	b, _ := os.ReadFile(segs[0])
	off := int64(0)
	for i := 0; i < 9; i++ {
		off += frameHeaderSize + int64(binary.LittleEndian.Uint32(b[off:]))
	}
	b[off+frameHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	var logged strings.Builder
	w2, recs := mustOpen(t, dir, Options{Logf: func(f string, a ...any) { fmt.Fprintf(&logged, f+"\n", a...) }})
	defer w2.Close()
	if len(recs) != 9 {
		t.Fatalf("recovered %d records, want 9 (prefix before corruption)", len(recs))
	}
	verifyPrefix(t, recs)
	out := logged.String()
	if !strings.Contains(out, "corrupt record") || !strings.Contains(out, "dropping") {
		t.Fatalf("corruption drop not logged; log output:\n%s", out)
	}
	if w2.LastSeq() != 9 {
		t.Fatalf("LastSeq = %d after truncation, want 9", w2.LastSeq())
	}
	appendN(t, w2, 10, 12)
}

func TestWALCorruptionDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	appendN(t, w, 1, 60)
	st := w.Stats()
	if st.Segments < 3 {
		t.Fatalf("want >= 3 segments, got %d", st.Segments)
	}
	w.Close()

	// Corrupt the first byte of the SECOND segment: everything from its
	// first record on is unverifiable, including the later segments.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	b, _ := os.ReadFile(segs[1])
	b[10] ^= 0xFF
	os.WriteFile(segs[1], b, 0o644)

	var logged strings.Builder
	w2, recs := mustOpen(t, dir, Options{SegmentBytes: 256, Logf: func(f string, a ...any) { fmt.Fprintf(&logged, f+"\n", a...) }})
	verifyPrefix(t, recs)
	if w2.LastSeq() != recs[len(recs)-1].Seq {
		t.Fatalf("LastSeq mismatch")
	}
	if !strings.Contains(logged.String(), "unreachable segment") {
		t.Fatalf("later-segment drop not logged:\n%s", logged.String())
	}
	left, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(left) >= len(segs) {
		t.Fatalf("later segments not removed: %d files before, %d after", len(segs), len(left))
	}
	// Appends continue from the truncated prefix.
	appendN(t, w2, w2.LastSeq()+1, w2.LastSeq()+5)
	w2.Close()
}

func TestWALDiskFullFailsTypedWithoutWedging(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{Fsync: true})
	appendN(t, w, 1, 10)

	w.injectWriteErr = func() error { return errors.New("write: no space left on device") }
	err := w.Append(11, genRecord(11))
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append on full disk: err = %v, want ErrWALFailed", err)
	}
	// Subsequent appends fail fast and typed — the log is latched, not
	// wedged: readers still answer.
	w.injectWriteErr = nil
	if err := w.Append(11, genRecord(11)); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append after failure: err = %v, want ErrWALFailed", err)
	}
	if got := w.LastSeq(); got != 10 {
		t.Fatalf("LastSeq after failed append = %d, want 10", got)
	}
	st := w.Stats()
	if !st.Failed || st.Records != 10 {
		t.Fatalf("Stats after failure = %+v, want Failed with 10 records", st)
	}
	w.Close()

	// The durable prefix survives a reopen, and the reopened WAL writes.
	w2, recs := mustOpen(t, dir, Options{})
	defer w2.Close()
	if len(recs) != 10 {
		t.Fatalf("recovered %d records, want the 10 durable ones", len(recs))
	}
	verifyPrefix(t, recs)
	appendN(t, w2, 11, 12)
}

func TestWALFsyncStats(t *testing.T) {
	w, _ := mustOpen(t, t.TempDir(), Options{Fsync: true})
	defer w.Close()
	appendN(t, w, 1, 8)
	st := w.Stats()
	if st.Fsyncs == 0 || st.Fsyncs > 8 {
		t.Fatalf("Fsyncs = %d, want 1..8", st.Fsyncs)
	}
	var hist uint64
	for _, c := range st.FsyncHist {
		hist += c
	}
	if hist != st.Fsyncs {
		t.Fatalf("histogram total %d != fsync count %d", hist, st.Fsyncs)
	}
	if len(st.FsyncHist) != len(FsyncBounds)+1 {
		t.Fatalf("histogram has %d buckets, want %d", len(st.FsyncHist), len(FsyncBounds)+1)
	}
}

func TestWALConcurrentAppendGroupCommit(t *testing.T) {
	// Sequence numbers are handed out under a sequencer mutex (the shape
	// rpc.Server's per-shard ingest lock produces) but the fsync waits
	// run concurrently, so many writers coalesce into few syncs.
	w, _ := mustOpen(t, t.TempDir(), Options{Fsync: true, SegmentBytes: 4096})
	const total = 200
	var (
		seqMu sync.Mutex
		next  = uint64(1)
		wg    sync.WaitGroup
	)
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seqMu.Lock()
				if next > total {
					seqMu.Unlock()
					return
				}
				seq := next
				next++
				end, err := w.Write(seq, genRecord(seq))
				seqMu.Unlock()
				if err == nil {
					err = w.Sync(end)
				}
				if err != nil {
					errCh <- fmt.Errorf("append %d: %w", seq, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if w.LastSeq() != total {
		t.Fatalf("LastSeq = %d, want %d", w.LastSeq(), total)
	}
	st := w.Stats()
	if st.Fsyncs == 0 || st.Fsyncs > total {
		t.Fatalf("Fsyncs = %d, want 1..%d (group commit)", st.Fsyncs, total)
	}
	w.Close()
	w2, recs := mustOpen(t, w.Dir(), Options{})
	defer w2.Close()
	if len(recs) != total {
		t.Fatalf("recovered %d, want %d", len(recs), total)
	}
	verifyPrefix(t, recs)
}
