package ingest

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

const chaosDirEnv = "ZOOMER_WAL_CHAOS_DIR"

// TestWALChaosChild is not a test of its own: it is the victim process
// for TestWALCrashRecoveryEquivalence, re-executed from the test binary
// with ZOOMER_WAL_CHAOS_DIR set. It appends the deterministic record
// stream as fast as it can until the parent delivers SIGKILL mid-append.
func TestWALChaosChild(t *testing.T) {
	dir := os.Getenv(chaosDirEnv)
	if dir == "" {
		t.Skip("victim mode only (set by TestWALCrashRecoveryEquivalence)")
	}
	w, recovered, err := Open(dir, Options{Fsync: true, SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatalf("victim open: %v", err)
	}
	seq := uint64(len(recovered))
	for {
		seq++
		if err := w.Append(seq, genRecord(seq)); err != nil {
			t.Fatalf("victim append %d: %v", seq, err)
		}
	}
}

// TestWALCrashRecoveryEquivalence is the kill -9 half of the crash
// suite: a child process appends the deterministic stream with fsync on,
// the parent SIGKILLs it mid-append, then recovery must yield a clean
// contiguous prefix of that stream — every surviving record byte-
// identical to an uninterrupted writer's, nothing after the first
// unverifiable byte. Run twice back to back the second child also
// proves recovery repositions the log for further durable appends.
func TestWALCrashRecoveryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()

	prevSeq := uint64(0)
	for round := 0; round < 2; round++ {
		kill9Victim(t, dir)

		var logged strings.Builder
		w, recs, err := Open(dir, Options{Logf: func(f string, a ...any) { fmt.Fprintf(&logged, f+"\n", a...) }})
		if err != nil {
			t.Fatalf("round %d: recovery failed: %v", round, err)
		}
		verifyPrefix(t, recs)
		last := w.LastSeq()
		if last <= prevSeq {
			t.Fatalf("round %d: victim made no durable progress (seq %d -> %d)", round, prevSeq, last)
		}
		t.Logf("round %d: recovered %d records (%d segments)%s", round, len(recs), w.Stats().Segments,
			map[bool]string{true: ", torn tail truncated", false: ""}[strings.Contains(logged.String(), "torn tail")])
		prevSeq = last
		if err := w.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
	}
}

// kill9Victim re-execs the test binary as a WAL appender and SIGKILLs it
// once it has made observable durable progress.
func kill9Victim(t *testing.T, dir string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestWALChaosChild$", "-test.v")
	cmd.Env = append(os.Environ(), chaosDirEnv+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start victim: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	// Kill only after the WAL visibly grew, so every round is a genuine
	// mid-stream crash rather than a startup kill.
	grewBy := func() int64 {
		var size int64
		names, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
		for _, n := range names {
			if fi, err := os.Stat(n); err == nil {
				size += fi.Size()
			}
		}
		return size
	}
	start := grewBy()
	deadline := time.Now().Add(20 * time.Second)
	for grewBy() < start+4096 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if grewBy() < start+4096 {
		cmd.Process.Kill()
		<-done
		t.Fatal("victim made no progress within deadline")
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL victim: %v", err)
	}
	err = <-done
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("victim exited cleanly (%v); expected SIGKILL death", err)
	}
}
