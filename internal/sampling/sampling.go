// Package sampling implements Stage 1 of the Zoomer pipeline — the
// focal-biased graph sampler that constructs the Region of Interest
// (§V-C) — together with the downscaling samplers of every baseline the
// paper compares against (GraphSAGE uniform sampling, PinSage importance
// walks, Pixie biased walks, PinnerSage cluster importance) and the plain
// weighted sampling a production graph engine provides.
//
// All samplers answer the same question: given an ego node, an optional
// focal vector, and a budget k, which neighbors enter the sampled
// subgraph? Multi-hop ROI construction is layered on top by BuildTree.
//
// Every sampler threads a *Scratch (see scratch.go) through its hot path;
// with a non-nil scratch the steady state allocates nothing, and with nil
// it falls back to per-call allocation. Top-k selection is a bounded
// min-heap (O(d log k)) rather than a full sort, and the walk samplers
// count visits in a slice indexed by node id rather than a map.
package sampling

import (
	"sort"

	"zoomer/internal/alias"
	"zoomer/internal/graph"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// GraphView is the read surface the samplers traverse. Both the
// in-memory *graph.Graph and the partitioned engine's routing layer
// (engine.Engine, whose shard stores sit behind its GraphService seam)
// satisfy it, so ROI construction runs identically over a local graph
// and over a sharded store — the property the cross-shard equivalence
// tests pin down.
type GraphView interface {
	NumNodes() int
	ContentDim() int
	Neighbors(id graph.NodeID) []graph.Edge
	Content(id graph.NodeID) tensor.Vec
}

// Sampler selects up to k neighbors of ego. focal is the summed focal
// vector of the request (nil for focal-agnostic samplers). sc supplies
// reusable buffers (nil allowed); when non-nil, the returned slice is
// backed by it and is valid only until the sampler's next call with the
// same scratch — callers that retain edges must copy them.
type Sampler interface {
	Name() string
	Sample(g GraphView, ego graph.NodeID, focal tensor.Vec, k int, r *rng.RNG, sc *Scratch) []graph.Edge
}

// RelevanceFunc scores a neighbor's content against the focal vector.
type RelevanceFunc func(focal, neighbor tensor.Vec) float32

// TanimotoRelevance is the paper's eq. (5) score.
func TanimotoRelevance(focal, nbr tensor.Vec) float32 { return tensor.Tanimoto(focal, nbr) }

// CosineRelevance is the drop-in replacement the paper notes eq. (5)
// admits; used by the relevance-score ablation.
func CosineRelevance(focal, nbr tensor.Vec) float32 { return tensor.Cosine(focal, nbr) }

// FocalBiased is Zoomer's sampler: it scores every neighbor's content
// vector against the focal vector and keeps the top-k, deterministically
// preserving the neighbors most relevant to the request's focal interest.
// A nil Relevance selects the paper's eq. (5) score through a fused
// kernel that hoists the focal norm out of the neighbor loop.
type FocalBiased struct {
	Relevance RelevanceFunc
}

// NewFocalBiased returns the sampler with the paper's eq. (5) relevance.
func NewFocalBiased() *FocalBiased { return &FocalBiased{} }

// Name implements Sampler.
func (s *FocalBiased) Name() string { return "focal-biased" }

// Sample implements Sampler. With a nil focal it degrades to weight-ranked
// selection (relevance indistinguishable), keeping behavior total.
func (s *FocalBiased) Sample(g GraphView, ego graph.NodeID, focal tensor.Vec, k int, r *rng.RNG, sc *Scratch) []graph.Edge {
	if k <= 0 {
		return nil
	}
	nbrs := g.Neighbors(ego)
	if len(nbrs) == 0 {
		return nil
	}
	sc = sc.orNew()
	if len(nbrs) <= k {
		return append(sc.outBuf(len(nbrs)), nbrs...)
	}
	ss := sc.scoredBuf(len(nbrs))
	switch {
	case focal == nil:
		for i, e := range nbrs {
			ss[i] = scoredEdge{e, e.Weight}
		}
	case s.Relevance == nil:
		fsq := tensor.SqNorm(focal)
		for i, e := range nbrs {
			ss[i] = scoredEdge{e, tensor.TanimotoWithSqNorm(focal, fsq, g.Content(e.To))}
		}
	default:
		for i, e := range nbrs {
			ss[i] = scoredEdge{e, s.Relevance(focal, g.Content(e.To))}
		}
	}
	topKScored(ss, k)
	out := sc.outBuf(k)
	for i := 0; i < k; i++ {
		out = append(out, ss[i].e)
	}
	return out
}

// Uniform is GraphSAGE's sampler: k neighbors uniformly without
// replacement (all neighbors when degree <= k).
type Uniform struct{}

// Name implements Sampler.
func (Uniform) Name() string { return "uniform" }

// Sample implements Sampler.
func (Uniform) Sample(g GraphView, ego graph.NodeID, _ tensor.Vec, k int, r *rng.RNG, sc *Scratch) []graph.Edge {
	if k <= 0 {
		return nil
	}
	nbrs := g.Neighbors(ego)
	if len(nbrs) == 0 {
		return nil
	}
	sc = sc.orNew()
	if len(nbrs) <= k {
		return append(sc.outBuf(len(nbrs)), nbrs...)
	}
	// Partial Fisher-Yates over an index view.
	idx := sc.idxBuf(len(nbrs))
	for i := range idx {
		idx[i] = int32(i)
	}
	out := sc.outBuf(k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out = append(out, nbrs[idx[i]])
	}
	return out
}

// Weighted samples k neighbors with replacement proportionally to edge
// weight using an alias table, the O(1)-per-draw scheme of the paper's
// graph engine. Duplicates are collapsed, so fewer than k distinct
// neighbors may return.
type Weighted struct{}

// Name implements Sampler.
func (Weighted) Name() string { return "weighted" }

// Sample implements Sampler.
func (Weighted) Sample(g GraphView, ego graph.NodeID, _ tensor.Vec, k int, r *rng.RNG, sc *Scratch) []graph.Edge {
	if k <= 0 {
		return nil
	}
	nbrs := g.Neighbors(ego)
	if len(nbrs) == 0 {
		return nil
	}
	sc = sc.orNew()
	if len(nbrs) <= k {
		return append(sc.outBuf(len(nbrs)), nbrs...)
	}
	weights, prob, aliasIx, stack := sc.aliasBufs(len(nbrs))
	for i, e := range nbrs {
		weights[i] = float64(e.Weight)
	}
	if err := alias.BuildInto(prob, aliasIx, weights, stack); err != nil {
		return Uniform{}.Sample(g, ego, nil, k, r, sc)
	}
	seen := sc.seenBuf(len(nbrs))
	out := sc.outBuf(k)
	for tries := 0; len(out) < k && tries < 4*k; tries++ {
		i := alias.SampleFrom(prob, aliasIx, r)
		if !seen[i] {
			seen[i] = true
			out = append(out, nbrs[i])
		}
	}
	return out
}

// ImportanceWalk is PinSage's sampler: short random walks from the ego
// estimate visit importance; the k most-visited neighbors are kept with
// their visit counts as weights.
type ImportanceWalk struct {
	Walks, Length int
}

// NewImportanceWalk returns the sampler with PinSage-like defaults.
func NewImportanceWalk() *ImportanceWalk { return &ImportanceWalk{Walks: 30, Length: 3} }

// Name implements Sampler.
func (s *ImportanceWalk) Name() string { return "importance-walk" }

// visitCounter counts walk visits: slice-backed (O(1), zero-alloc at
// steady state) when a reused scratch is available, and a small sparse
// map for the nil-scratch path — a throwaway scratch must not pay an
// O(NumNodes) zeroed allocation for a walk touching ~Walks×Length nodes.
type visitCounter struct {
	sc     *Scratch
	sparse map[graph.NodeID]int32
}

func newVisitCounter(sc *Scratch, g GraphView, walkBudget int) visitCounter {
	if sc != nil {
		sc.visitsFor(g.NumNodes())
		return visitCounter{sc: sc}
	}
	return visitCounter{sparse: make(map[graph.NodeID]int32, walkBudget)}
}

func (v visitCounter) bump(id graph.NodeID) {
	if v.sc != nil {
		v.sc.visit(id)
		return
	}
	v.sparse[id]++
}

func (v visitCounter) count(id graph.NodeID) int32 {
	if v.sc != nil {
		return v.sc.visits[id]
	}
	return v.sparse[id]
}

func (v visitCounter) done() {
	if v.sc != nil {
		v.sc.resetVisits()
	}
}

// Sample implements Sampler.
func (s *ImportanceWalk) Sample(g GraphView, ego graph.NodeID, _ tensor.Vec, k int, r *rng.RNG, sc *Scratch) []graph.Edge {
	if k <= 0 {
		return nil
	}
	nbrs := g.Neighbors(ego)
	if len(nbrs) == 0 {
		return nil
	}
	out := sc.orNew()
	if len(nbrs) <= k {
		return append(out.outBuf(len(nbrs)), nbrs...)
	}
	visits := newVisitCounter(sc, g, s.Walks*s.Length)
	for w := 0; w < s.Walks; w++ {
		cur := ego
		for step := 0; step < s.Length; step++ {
			cn := g.Neighbors(cur)
			if len(cn) == 0 {
				break
			}
			cur = cn[r.Intn(len(cn))].To
			visits.bump(cur)
		}
	}
	ss := out.scoredBuf(len(nbrs))
	for i, e := range nbrs {
		ss[i] = scoredEdge{e, float32(visits.count(e.To))}
	}
	visits.done()
	topKScored(ss, k)
	res := out.outBuf(k)
	for i := 0; i < k; i++ {
		res = append(res, ss[i].e)
	}
	return res
}

// BiasedWalk is Pixie's sampler: random walks whose edge choices are
// biased toward endpoints similar to the user's content vector, with
// per-walk early stopping.
type BiasedWalk struct {
	Walks, Length int
	Bias          float32 // mixing weight of the content bias in [0,1]
}

// NewBiasedWalk returns the sampler with Pixie-like defaults.
func NewBiasedWalk() *BiasedWalk { return &BiasedWalk{Walks: 30, Length: 4, Bias: 0.7} }

// Name implements Sampler.
func (s *BiasedWalk) Name() string { return "biased-walk" }

// Sample implements Sampler.
func (s *BiasedWalk) Sample(g GraphView, ego graph.NodeID, focal tensor.Vec, k int, r *rng.RNG, sc *Scratch) []graph.Edge {
	if k <= 0 {
		return nil
	}
	nbrs := g.Neighbors(ego)
	if len(nbrs) == 0 {
		return nil
	}
	out := sc.orNew()
	if len(nbrs) <= k {
		return append(out.outBuf(len(nbrs)), nbrs...)
	}
	visits := newVisitCounter(sc, g, s.Walks*s.Length)
	for w := 0; w < s.Walks; w++ {
		cur := ego
		steps := 1 + r.Intn(s.Length) // early stopping
		for step := 0; step < steps; step++ {
			cn := g.Neighbors(cur)
			if len(cn) == 0 {
				break
			}
			// Pick two candidates; keep the one more similar to the focal
			// with probability Bias (cheap biased selection).
			a := cn[r.Intn(len(cn))]
			pick := a
			if focal != nil && r.Float32() < s.Bias {
				b := cn[r.Intn(len(cn))]
				if tensor.Cosine(focal, g.Content(b.To)) > tensor.Cosine(focal, g.Content(a.To)) {
					pick = b
				}
			}
			cur = pick.To
			visits.bump(cur)
		}
	}
	ss := out.scoredBuf(len(nbrs))
	for i, e := range nbrs {
		ss[i] = scoredEdge{e, float32(visits.count(e.To))}
	}
	visits.done()
	topKScored(ss, k)
	res := out.outBuf(k)
	for i := 0; i < k; i++ {
		res = append(res, ss[i].e)
	}
	return res
}

// ClusterImportance is PinnerSage's sampler: neighbors are greedily
// clustered by content similarity; clusters are ranked by total edge
// weight (importance) and representatives are taken round-robin from the
// most important clusters, preserving multi-modal interests.
type ClusterImportance struct {
	// SimThreshold controls when a neighbor joins an existing cluster.
	SimThreshold float32
}

// NewClusterImportance returns the sampler with PinnerSage-like defaults.
func NewClusterImportance() *ClusterImportance { return &ClusterImportance{SimThreshold: 0.6} }

// Name implements Sampler.
func (s *ClusterImportance) Name() string { return "cluster-importance" }

// Sample implements Sampler. Clustering is inherently allocation-heavy
// (centroids are materialized per call); this sampler is an offline
// baseline, not a serving-path component, so it only borrows the
// scratch's output buffer.
func (s *ClusterImportance) Sample(g GraphView, ego graph.NodeID, _ tensor.Vec, k int, r *rng.RNG, sc *Scratch) []graph.Edge {
	if k <= 0 {
		return nil
	}
	nbrs := g.Neighbors(ego)
	if len(nbrs) == 0 {
		return nil
	}
	sc = sc.orNew()
	if len(nbrs) <= k {
		return append(sc.outBuf(len(nbrs)), nbrs...)
	}
	type cluster struct {
		centroid tensor.Vec
		members  []graph.Edge
		weight   float64
	}
	var clusters []*cluster
	for _, e := range nbrs {
		c := g.Content(e.To)
		if c == nil {
			c = tensor.NewVec(g.ContentDim())
		}
		var best *cluster
		var bestSim float32 = -2
		for _, cl := range clusters {
			if sim := tensor.Cosine(cl.centroid, c); sim > bestSim {
				bestSim, best = sim, cl
			}
		}
		if best == nil || bestSim < s.SimThreshold {
			clusters = append(clusters, &cluster{
				centroid: tensor.Copy(c),
				members:  []graph.Edge{e},
				weight:   float64(e.Weight),
			})
			continue
		}
		// Online centroid update.
		n := float32(len(best.members))
		for i := range best.centroid {
			best.centroid[i] = (best.centroid[i]*n + c[i]) / (n + 1)
		}
		best.members = append(best.members, e)
		best.weight += float64(e.Weight)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].weight > clusters[j].weight })
	// Heaviest members first within each cluster.
	for _, cl := range clusters {
		sort.Slice(cl.members, func(i, j int) bool { return cl.members[i].Weight > cl.members[j].Weight })
	}
	out := sc.outBuf(k)
	for round := 0; len(out) < k; round++ {
		advanced := false
		for _, cl := range clusters {
			if round < len(cl.members) {
				out = append(out, cl.members[round])
				advanced = true
				if len(out) == k {
					break
				}
			}
		}
		if !advanced {
			break
		}
	}
	return out
}

// Tree is a sampled multi-hop neighborhood rooted at an ego node: the ROI
// subgraph (for the focal-biased sampler) or a baseline's sampled
// neighborhood. Children[i] is the subtree hanging off Edges[i].
type Tree struct {
	Node     graph.NodeID
	Edges    []graph.Edge
	Children []*Tree
}

// Size returns the number of nodes in the tree (with multiplicity).
func (t *Tree) Size() int {
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// BuildTree expands hops levels from ego with the given sampler and
// per-hop budget k. Focal biasing (when the sampler uses it) applies at
// every hop, matching the paper's ROI construction where relevance to the
// focal governs the whole sampled region.
//
// With a non-nil scratch the tree is carved out of the scratch's arena:
// steady-state construction allocates nothing, and the tree stays valid
// until sc.Reset(). With nil sc the tree is independently heap-allocated.
func BuildTree(g GraphView, ego graph.NodeID, focal tensor.Vec, hops, k int, s Sampler, r *rng.RNG, sc *Scratch) *Tree {
	sc = sc.orNew()
	return buildTree(g, ego, focal, hops, k, s, r, sc)
}

func buildTree(g GraphView, ego graph.NodeID, focal tensor.Vec, hops, k int, s Sampler, r *rng.RNG, sc *Scratch) *Tree {
	t := sc.newTree(ego)
	if hops == 0 {
		return t
	}
	// The sampler's result lives in scratch buffers that the recursive
	// calls below will clobber; move it into the arena first.
	t.Edges = sc.cloneEdges(s.Sample(g, ego, focal, k, r, sc))
	t.Children = sc.kidSlice(len(t.Edges))
	for i, e := range t.Edges {
		t.Children[i] = buildTree(g, e.To, focal, hops-1, k, s, r, sc)
	}
	return t
}
