// Package sampling implements Stage 1 of the Zoomer pipeline — the
// focal-biased graph sampler that constructs the Region of Interest
// (§V-C) — together with the downscaling samplers of every baseline the
// paper compares against (GraphSAGE uniform sampling, PinSage importance
// walks, Pixie biased walks, PinnerSage cluster importance) and the plain
// weighted sampling a production graph engine provides.
//
// All samplers answer the same question: given an ego node, an optional
// focal vector, and a budget k, which neighbors enter the sampled
// subgraph? Multi-hop ROI construction is layered on top by BuildTree.
package sampling

import (
	"sort"

	"zoomer/internal/alias"
	"zoomer/internal/graph"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// Sampler selects up to k neighbors of ego. focal is the summed focal
// vector of the request (nil for focal-agnostic samplers). Implementations
// must not retain the returned slice.
type Sampler interface {
	Name() string
	Sample(g *graph.Graph, ego graph.NodeID, focal tensor.Vec, k int, r *rng.RNG) []graph.Edge
}

// RelevanceFunc scores a neighbor's content against the focal vector.
type RelevanceFunc func(focal, neighbor tensor.Vec) float32

// TanimotoRelevance is the paper's eq. (5) score.
func TanimotoRelevance(focal, nbr tensor.Vec) float32 { return tensor.Tanimoto(focal, nbr) }

// CosineRelevance is the drop-in replacement the paper notes eq. (5)
// admits; used by the relevance-score ablation.
func CosineRelevance(focal, nbr tensor.Vec) float32 { return tensor.Cosine(focal, nbr) }

// FocalBiased is Zoomer's sampler: it scores every neighbor's content
// vector against the focal vector with Relevance (eq. 5 by default) and
// keeps the top-k, deterministically preserving the neighbors most
// relevant to the request's focal interest.
type FocalBiased struct {
	Relevance RelevanceFunc
}

// NewFocalBiased returns the sampler with the paper's eq. (5) relevance.
func NewFocalBiased() *FocalBiased { return &FocalBiased{Relevance: TanimotoRelevance} }

// Name implements Sampler.
func (s *FocalBiased) Name() string { return "focal-biased" }

// Sample implements Sampler. With a nil focal it degrades to weight-ranked
// selection (relevance indistinguishable), keeping behavior total.
func (s *FocalBiased) Sample(g *graph.Graph, ego graph.NodeID, focal tensor.Vec, k int, r *rng.RNG) []graph.Edge {
	nbrs := g.Neighbors(ego)
	if len(nbrs) <= k {
		return append([]graph.Edge(nil), nbrs...)
	}
	type scored struct {
		e     graph.Edge
		score float32
	}
	ss := make([]scored, len(nbrs))
	for i, e := range nbrs {
		var sc float32
		if focal != nil {
			sc = s.Relevance(focal, g.Content(e.To))
		} else {
			sc = e.Weight
		}
		ss[i] = scored{e, sc}
	}
	// Partial selection of the k best by score (ties by weight).
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].e.Weight > ss[j].e.Weight
	})
	out := make([]graph.Edge, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].e
	}
	return out
}

// Uniform is GraphSAGE's sampler: k neighbors uniformly without
// replacement (all neighbors when degree <= k).
type Uniform struct{}

// Name implements Sampler.
func (Uniform) Name() string { return "uniform" }

// Sample implements Sampler.
func (Uniform) Sample(g *graph.Graph, ego graph.NodeID, _ tensor.Vec, k int, r *rng.RNG) []graph.Edge {
	nbrs := g.Neighbors(ego)
	if len(nbrs) <= k {
		return append([]graph.Edge(nil), nbrs...)
	}
	// Partial Fisher-Yates over an index view.
	idx := make([]int, len(nbrs))
	for i := range idx {
		idx[i] = i
	}
	out := make([]graph.Edge, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = nbrs[idx[i]]
	}
	return out
}

// Weighted samples k neighbors with replacement proportionally to edge
// weight using an alias table, the O(1)-per-draw scheme of the paper's
// graph engine. Duplicates are collapsed, so fewer than k distinct
// neighbors may return.
type Weighted struct{}

// Name implements Sampler.
func (Weighted) Name() string { return "weighted" }

// Sample implements Sampler.
func (Weighted) Sample(g *graph.Graph, ego graph.NodeID, _ tensor.Vec, k int, r *rng.RNG) []graph.Edge {
	nbrs := g.Neighbors(ego)
	if len(nbrs) <= k {
		return append([]graph.Edge(nil), nbrs...)
	}
	weights := make([]float64, len(nbrs))
	for i, e := range nbrs {
		weights[i] = float64(e.Weight)
	}
	tab, err := alias.New(weights)
	if err != nil {
		return Uniform{}.Sample(g, ego, nil, k, r)
	}
	seen := make(map[int]bool, k)
	out := make([]graph.Edge, 0, k)
	for tries := 0; len(out) < k && tries < 4*k; tries++ {
		i := tab.Sample(r)
		if !seen[i] {
			seen[i] = true
			out = append(out, nbrs[i])
		}
	}
	return out
}

// ImportanceWalk is PinSage's sampler: short random walks from the ego
// estimate visit importance; the k most-visited neighbors are kept with
// their visit counts as weights.
type ImportanceWalk struct {
	Walks, Length int
}

// NewImportanceWalk returns the sampler with PinSage-like defaults.
func NewImportanceWalk() *ImportanceWalk { return &ImportanceWalk{Walks: 30, Length: 3} }

// Name implements Sampler.
func (s *ImportanceWalk) Name() string { return "importance-walk" }

// Sample implements Sampler.
func (s *ImportanceWalk) Sample(g *graph.Graph, ego graph.NodeID, _ tensor.Vec, k int, r *rng.RNG) []graph.Edge {
	nbrs := g.Neighbors(ego)
	if len(nbrs) <= k {
		return append([]graph.Edge(nil), nbrs...)
	}
	visits := make(map[graph.NodeID]int)
	for w := 0; w < s.Walks; w++ {
		cur := ego
		for step := 0; step < s.Length; step++ {
			cn := g.Neighbors(cur)
			if len(cn) == 0 {
				break
			}
			cur = cn[r.Intn(len(cn))].To
			visits[cur]++
		}
	}
	type scored struct {
		e graph.Edge
		v int
	}
	ss := make([]scored, len(nbrs))
	for i, e := range nbrs {
		ss[i] = scored{e, visits[e.To]}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].v != ss[j].v {
			return ss[i].v > ss[j].v
		}
		return ss[i].e.Weight > ss[j].e.Weight
	})
	out := make([]graph.Edge, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].e
	}
	return out
}

// BiasedWalk is Pixie's sampler: random walks whose edge choices are
// biased toward endpoints similar to the user's content vector, with
// per-walk early stopping.
type BiasedWalk struct {
	Walks, Length int
	Bias          float32 // mixing weight of the content bias in [0,1]
}

// NewBiasedWalk returns the sampler with Pixie-like defaults.
func NewBiasedWalk() *BiasedWalk { return &BiasedWalk{Walks: 30, Length: 4, Bias: 0.7} }

// Name implements Sampler.
func (s *BiasedWalk) Name() string { return "biased-walk" }

// Sample implements Sampler.
func (s *BiasedWalk) Sample(g *graph.Graph, ego graph.NodeID, focal tensor.Vec, k int, r *rng.RNG) []graph.Edge {
	nbrs := g.Neighbors(ego)
	if len(nbrs) <= k {
		return append([]graph.Edge(nil), nbrs...)
	}
	visits := make(map[graph.NodeID]int)
	for w := 0; w < s.Walks; w++ {
		cur := ego
		steps := 1 + r.Intn(s.Length) // early stopping
		for step := 0; step < steps; step++ {
			cn := g.Neighbors(cur)
			if len(cn) == 0 {
				break
			}
			// Pick two candidates; keep the one more similar to the focal
			// with probability Bias (cheap biased selection).
			a := cn[r.Intn(len(cn))]
			pick := a
			if focal != nil && r.Float32() < s.Bias {
				b := cn[r.Intn(len(cn))]
				if tensor.Cosine(focal, g.Content(b.To)) > tensor.Cosine(focal, g.Content(a.To)) {
					pick = b
				}
			}
			cur = pick.To
			visits[cur]++
		}
	}
	type scored struct {
		e graph.Edge
		v int
	}
	ss := make([]scored, len(nbrs))
	for i, e := range nbrs {
		ss[i] = scored{e, visits[e.To]}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].v != ss[j].v {
			return ss[i].v > ss[j].v
		}
		return ss[i].e.Weight > ss[j].e.Weight
	})
	out := make([]graph.Edge, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].e
	}
	return out
}

// ClusterImportance is PinnerSage's sampler: neighbors are greedily
// clustered by content similarity; clusters are ranked by total edge
// weight (importance) and representatives are taken round-robin from the
// most important clusters, preserving multi-modal interests.
type ClusterImportance struct {
	// SimThreshold controls when a neighbor joins an existing cluster.
	SimThreshold float32
}

// NewClusterImportance returns the sampler with PinnerSage-like defaults.
func NewClusterImportance() *ClusterImportance { return &ClusterImportance{SimThreshold: 0.6} }

// Name implements Sampler.
func (s *ClusterImportance) Name() string { return "cluster-importance" }

// Sample implements Sampler.
func (s *ClusterImportance) Sample(g *graph.Graph, ego graph.NodeID, _ tensor.Vec, k int, r *rng.RNG) []graph.Edge {
	nbrs := g.Neighbors(ego)
	if len(nbrs) <= k {
		return append([]graph.Edge(nil), nbrs...)
	}
	type cluster struct {
		centroid tensor.Vec
		members  []graph.Edge
		weight   float64
	}
	var clusters []*cluster
	for _, e := range nbrs {
		c := g.Content(e.To)
		if c == nil {
			c = tensor.NewVec(g.ContentDim())
		}
		var best *cluster
		var bestSim float32 = -2
		for _, cl := range clusters {
			if sim := tensor.Cosine(cl.centroid, c); sim > bestSim {
				bestSim, best = sim, cl
			}
		}
		if best == nil || bestSim < s.SimThreshold {
			clusters = append(clusters, &cluster{
				centroid: tensor.Copy(c),
				members:  []graph.Edge{e},
				weight:   float64(e.Weight),
			})
			continue
		}
		// Online centroid update.
		n := float32(len(best.members))
		for i := range best.centroid {
			best.centroid[i] = (best.centroid[i]*n + c[i]) / (n + 1)
		}
		best.members = append(best.members, e)
		best.weight += float64(e.Weight)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].weight > clusters[j].weight })
	// Heaviest members first within each cluster.
	for _, cl := range clusters {
		sort.Slice(cl.members, func(i, j int) bool { return cl.members[i].Weight > cl.members[j].Weight })
	}
	out := make([]graph.Edge, 0, k)
	for round := 0; len(out) < k; round++ {
		advanced := false
		for _, cl := range clusters {
			if round < len(cl.members) {
				out = append(out, cl.members[round])
				advanced = true
				if len(out) == k {
					break
				}
			}
		}
		if !advanced {
			break
		}
	}
	return out
}

// Tree is a sampled multi-hop neighborhood rooted at an ego node: the ROI
// subgraph (for the focal-biased sampler) or a baseline's sampled
// neighborhood. Children[i] is the subtree hanging off Edges[i].
type Tree struct {
	Node     graph.NodeID
	Edges    []graph.Edge
	Children []*Tree
}

// Size returns the number of nodes in the tree (with multiplicity).
func (t *Tree) Size() int {
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// BuildTree expands hops levels from ego with the given sampler and
// per-hop budget k. Focal biasing (when the sampler uses it) applies at
// every hop, matching the paper's ROI construction where relevance to the
// focal governs the whole sampled region.
func BuildTree(g *graph.Graph, ego graph.NodeID, focal tensor.Vec, hops, k int, s Sampler, r *rng.RNG) *Tree {
	t := &Tree{Node: ego}
	if hops == 0 {
		return t
	}
	t.Edges = s.Sample(g, ego, focal, k, r)
	t.Children = make([]*Tree, len(t.Edges))
	for i, e := range t.Edges {
		t.Children[i] = BuildTree(g, e.To, focal, hops-1, k, s, r)
	}
	return t
}
