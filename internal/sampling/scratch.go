package sampling

import (
	"zoomer/internal/graph"
)

// scoredEdge pairs an adjacency edge with its selection score. Walk
// samplers store visit counts in the score (float32 is exact for counts
// below 2^24, far beyond any walk budget).
type scoredEdge struct {
	e     graph.Edge
	score float32
}

// Scratch holds every reusable buffer the samplers and BuildTree need, so
// steady-state ROI construction performs no heap allocation: scoring and
// selection buffers, slice-backed visit counters for the walk samplers,
// alias-construction workspace, and an arena for the sampled trees.
//
// A Scratch is not safe for concurrent use; give each worker its own,
// exactly like *rng.RNG. Slices returned by Sample are backed by the
// Scratch and remain valid only until its next Sample call; trees
// returned by BuildTree are backed by the arena and remain valid until
// Reset. A nil *Scratch is accepted everywhere and falls back to
// per-call allocation.
type Scratch struct {
	scored []scoredEdge
	out    []graph.Edge
	idx    []int32
	seen   []bool

	// Slice-backed visit counters (len = graph.NumNodes()). Entries are
	// zero between calls; touched lists the ids to reset.
	visits  []int32
	touched []graph.NodeID

	// Weighted-sampler alias workspace.
	weights []float64
	prob    []float64
	aliasIx []int32
	stack   []int32

	// Tree arena: node pool plus edge and child backing storage, recycled
	// by Reset.
	trees     []*Tree
	treesUsed int
	edgeArena []graph.Edge
	kidArena  []*Tree
}

// NewScratch returns an empty scratch; buffers are grown on first use and
// reused afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// orNew substitutes a throwaway scratch for a nil receiver, giving the
// no-scratch call path the exact allocation behavior it always had.
func (sc *Scratch) orNew() *Scratch {
	if sc == nil {
		return &Scratch{}
	}
	return sc
}

// Reset recycles the tree arena. All trees previously returned from
// BuildTree with this scratch are invalidated; per-sampler buffers need
// no reset and are excluded.
func (sc *Scratch) Reset() {
	if sc == nil {
		return
	}
	sc.treesUsed = 0
	sc.edgeArena = sc.edgeArena[:0]
	sc.kidArena = sc.kidArena[:0]
}

func (sc *Scratch) scoredBuf(n int) []scoredEdge {
	if cap(sc.scored) < n {
		sc.scored = make([]scoredEdge, n)
	}
	sc.scored = sc.scored[:n]
	return sc.scored
}

func (sc *Scratch) outBuf(n int) []graph.Edge {
	if cap(sc.out) < n {
		sc.out = make([]graph.Edge, 0, n)
	}
	return sc.out[:0]
}

func (sc *Scratch) idxBuf(n int) []int32 {
	if cap(sc.idx) < n {
		sc.idx = make([]int32, n)
	}
	sc.idx = sc.idx[:n]
	return sc.idx
}

func (sc *Scratch) seenBuf(n int) []bool {
	if cap(sc.seen) < n {
		sc.seen = make([]bool, n)
	}
	s := sc.seen[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// visitsFor returns the zeroed visit-counter slice for an n-node graph.
// Callers must bump counters via visit and reset them with resetVisits
// before returning.
func (sc *Scratch) visitsFor(n int) []int32 {
	if cap(sc.visits) < n {
		sc.visits = make([]int32, n)
	}
	sc.visits = sc.visits[:n]
	sc.touched = sc.touched[:0]
	return sc.visits
}

func (sc *Scratch) visit(id graph.NodeID) {
	if sc.visits[id] == 0 {
		sc.touched = append(sc.touched, id)
	}
	sc.visits[id]++
}

func (sc *Scratch) resetVisits() {
	for _, id := range sc.touched {
		sc.visits[id] = 0
	}
	sc.touched = sc.touched[:0]
}

func (sc *Scratch) aliasBufs(n int) (weights, prob []float64, aliasIx, stack []int32) {
	if cap(sc.weights) < n {
		sc.weights = make([]float64, n)
		sc.prob = make([]float64, n)
		sc.aliasIx = make([]int32, n)
		sc.stack = make([]int32, n)
	}
	return sc.weights[:n], sc.prob[:n], sc.aliasIx[:n], sc.stack[:n]
}

// newTree hands out a pooled tree node. Pointers stay valid across pool
// growth; Reset recycles them.
func (sc *Scratch) newTree(id graph.NodeID) *Tree {
	if sc.treesUsed < len(sc.trees) {
		t := sc.trees[sc.treesUsed]
		sc.treesUsed++
		*t = Tree{Node: id}
		return t
	}
	t := &Tree{Node: id}
	sc.trees = append(sc.trees, t)
	sc.treesUsed++
	return t
}

// cloneEdges copies a sampler's scratch-backed result into the arena so
// the next Sample call cannot clobber it. The returned slice is capped,
// so appends by callers cannot bleed into later arena regions.
func (sc *Scratch) cloneEdges(es []graph.Edge) []graph.Edge {
	if len(es) == 0 {
		return nil
	}
	n := len(sc.edgeArena)
	sc.edgeArena = append(sc.edgeArena, es...)
	return sc.edgeArena[n : n+len(es) : n+len(es)]
}

// kidSlice carves a child-pointer slice out of the arena.
func (sc *Scratch) kidSlice(n int) []*Tree {
	if n == 0 {
		return nil
	}
	m := len(sc.kidArena)
	for i := 0; i < n; i++ {
		sc.kidArena = append(sc.kidArena, nil)
	}
	return sc.kidArena[m : m+n : m+n]
}

// topKScored partially selects the k highest-scoring entries of ss into
// ss[:k], best first (ties broken by edge weight), in O(len(ss)·log k): a
// bounded min-heap over the current best k replaces the full sort.Slice
// the samplers used to pay for.
func topKScored(ss []scoredEdge, k int) {
	if k >= len(ss) {
		k = len(ss)
	}
	if k <= 0 {
		return
	}
	h := ss[:k]
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	for i := k; i < len(ss); i++ {
		if scoredLess(h[0], ss[i]) {
			h[0] = ss[i]
			siftDown(h, 0)
		}
	}
	// Heap-sort the winners: popping the min to the back leaves ss[:k]
	// ordered best first.
	for n := k - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		siftDown(h[:n], 0)
	}
}

// scoredLess reports whether a ranks strictly below b.
func scoredLess(a, b scoredEdge) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.e.Weight < b.e.Weight
}

func siftDown(h []scoredEdge, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && scoredLess(h[r], h[l]) {
			m = r
		}
		if !scoredLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
