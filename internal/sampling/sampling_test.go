package sampling

import (
	"testing"

	"zoomer/internal/graph"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// starGraph builds an ego with n item neighbors whose content vectors
// rotate from aligned-with-focal to orthogonal.
func starGraph(n int) (*graph.Graph, graph.NodeID, tensor.Vec) {
	b := graph.NewBuilder()
	focal := tensor.Vec{1, 0}
	ego := b.AddNode(graph.User, nil, tensor.Vec{1, 0})
	for i := 0; i < n; i++ {
		// Content interpolates between (1,0) and (0,1) as i grows.
		frac := float32(i) / float32(n)
		c := tensor.Vec{1 - frac, frac}
		tensor.Normalize(c)
		id := b.AddNode(graph.Item, nil, c)
		b.AddUndirected(ego, id, graph.Click, 1+float32(i%3))
	}
	return b.Build(), ego, focal
}

func allSamplers() []Sampler {
	return []Sampler{
		NewFocalBiased(),
		Uniform{},
		Weighted{},
		NewImportanceWalk(),
		NewBiasedWalk(),
		NewClusterImportance(),
	}
}

// Every sampler must return at most k edges, all of which are true
// neighbors, with no duplicates.
func TestSamplerContracts(t *testing.T) {
	g, ego, focal := starGraph(20)
	nbrSet := map[graph.NodeID]bool{}
	for _, e := range g.Neighbors(ego) {
		nbrSet[e.To] = true
	}
	for _, s := range allSamplers() {
		r := rng.New(1)
		for _, k := range []int{1, 5, 19, 20, 50} {
			out := s.Sample(g, ego, focal, k, r, nil)
			if len(out) > k && k < 20 {
				t.Fatalf("%s returned %d > k=%d", s.Name(), len(out), k)
			}
			if k >= 20 && len(out) != 20 {
				t.Fatalf("%s with k>=degree returned %d, want all 20", s.Name(), len(out))
			}
			seen := map[graph.NodeID]bool{}
			for _, e := range out {
				if !nbrSet[e.To] {
					t.Fatalf("%s returned non-neighbor %d", s.Name(), e.To)
				}
				if seen[e.To] {
					t.Fatalf("%s returned duplicate %d", s.Name(), e.To)
				}
				seen[e.To] = true
			}
		}
	}
}

// The focal-biased sampler must keep the most focal-relevant neighbors:
// with focal (1,0) and rotating content, the earliest nodes are best.
func TestFocalBiasedPicksRelevant(t *testing.T) {
	g, ego, focal := starGraph(20)
	s := NewFocalBiased()
	r := rng.New(2)
	out := s.Sample(g, ego, focal, 5, r, nil)
	for _, e := range out {
		c := g.Content(e.To)
		if c[0] < c[1] {
			t.Fatalf("focal-biased kept low-relevance neighbor with content %v", c)
		}
	}
}

// Relevance ordering must agree between eq. (5) and cosine on this
// geometry (both are monotone in the angle for unit vectors).
func TestRelevanceFuncsAgreeOnOrdering(t *testing.T) {
	focal := tensor.Vec{1, 0}
	near := tensor.Vec{0.9, 0.1}
	far := tensor.Vec{0.1, 0.9}
	tensor.Normalize(near)
	tensor.Normalize(far)
	if !(TanimotoRelevance(focal, near) > TanimotoRelevance(focal, far)) {
		t.Fatal("eq.5 ordering wrong")
	}
	if !(CosineRelevance(focal, near) > CosineRelevance(focal, far)) {
		t.Fatal("cosine ordering wrong")
	}
}

// The focal-biased sampler output must change when the focal changes:
// the dynamic, per-request ROI at the heart of the paper.
func TestFocalBiasedIsFocalSensitive(t *testing.T) {
	g, ego, _ := starGraph(20)
	s := NewFocalBiased()
	r := rng.New(3)
	a := s.Sample(g, ego, tensor.Vec{1, 0}, 5, r, nil)
	b := s.Sample(g, ego, tensor.Vec{0, 1}, 5, r, nil)
	aSet := map[graph.NodeID]bool{}
	for _, e := range a {
		aSet[e.To] = true
	}
	overlap := 0
	for _, e := range b {
		if aSet[e.To] {
			overlap++
		}
	}
	if overlap == 5 {
		t.Fatal("ROI identical under opposite focal interests")
	}
}

// Uniform sampling must cover the neighborhood across repetitions.
func TestUniformCoverage(t *testing.T) {
	g, ego, _ := starGraph(20)
	r := rng.New(4)
	seen := map[graph.NodeID]bool{}
	for i := 0; i < 200; i++ {
		for _, e := range (Uniform{}).Sample(g, ego, nil, 3, r, nil) {
			seen[e.To] = true
		}
	}
	if len(seen) < 18 {
		t.Fatalf("uniform sampler covered only %d/20 neighbors", len(seen))
	}
}

// Weighted sampling must prefer heavy edges.
func TestWeightedPrefersHeavyEdges(t *testing.T) {
	b := graph.NewBuilder()
	ego := b.AddNode(graph.User, nil, nil)
	heavy := b.AddNode(graph.Item, nil, nil)
	b.AddEdge(ego, heavy, graph.Click, 100)
	var lights []graph.NodeID
	for i := 0; i < 10; i++ {
		l := b.AddNode(graph.Item, nil, nil)
		lights = append(lights, l)
		b.AddEdge(ego, l, graph.Click, 1)
	}
	g := b.Build()
	r := rng.New(5)
	heavyHit := 0
	for i := 0; i < 100; i++ {
		for _, e := range (Weighted{}).Sample(g, ego, nil, 2, r, nil) {
			if e.To == heavy {
				heavyHit++
			}
		}
	}
	if heavyHit < 90 {
		t.Fatalf("heavy edge sampled only %d/100 times", heavyHit)
	}
	_ = lights
}

// Importance walks must surface the structurally central neighbor: a
// neighbor that is also reachable through other neighbors accumulates
// more visits.
func TestImportanceWalkFindsHub(t *testing.T) {
	b := graph.NewBuilder()
	ego := b.AddNode(graph.User, nil, nil)
	hub := b.AddNode(graph.Item, nil, nil)
	b.AddUndirected(ego, hub, graph.Click, 1)
	for i := 0; i < 8; i++ {
		leaf := b.AddNode(graph.Item, nil, nil)
		b.AddUndirected(ego, leaf, graph.Click, 1)
		// Every leaf also links to the hub, making it 2-hop central.
		b.AddUndirected(leaf, hub, graph.Session, 1)
	}
	g := b.Build()
	s := NewImportanceWalk()
	r := rng.New(6)
	out := s.Sample(g, ego, nil, 1, r, nil)
	if len(out) != 1 || out[0].To != hub {
		t.Fatalf("importance walk picked %v, want hub %d", out, hub)
	}
}

// Cluster importance must take representatives from distinct content
// clusters rather than exhausting the dominant one.
func TestClusterImportanceIsMultiModal(t *testing.T) {
	b := graph.NewBuilder()
	ego := b.AddNode(graph.User, nil, tensor.Vec{1, 0})
	// Cluster A: 8 near-identical items along (1,0), heavy weights.
	for i := 0; i < 8; i++ {
		id := b.AddNode(graph.Item, nil, tensor.Vec{1, 0.01 * float32(i)})
		b.AddEdge(ego, id, graph.Click, 10)
	}
	// Cluster B: 4 items along (0,1), light weights.
	var bNodes []graph.NodeID
	for i := 0; i < 4; i++ {
		id := b.AddNode(graph.Item, nil, tensor.Vec{0.01 * float32(i), 1})
		bNodes = append(bNodes, id)
		b.AddEdge(ego, id, graph.Click, 1)
	}
	g := b.Build()
	s := NewClusterImportance()
	r := rng.New(7)
	out := s.Sample(g, ego, nil, 4, r, nil)
	foundB := false
	for _, e := range out {
		for _, bn := range bNodes {
			if e.To == bn {
				foundB = true
			}
		}
	}
	if !foundB {
		t.Fatal("cluster-importance ignored the minority cluster")
	}
}

func TestBiasedWalkRespectsFocal(t *testing.T) {
	g, ego, focal := starGraph(20)
	s := NewBiasedWalk()
	r := rng.New(8)
	// Just a contract check plus determinism-of-name; walk bias is
	// statistical and covered by the contract test.
	out := s.Sample(g, ego, focal, 5, r, nil)
	if len(out) != 5 {
		t.Fatalf("biased walk returned %d edges", len(out))
	}
}

func TestBuildTreeShape(t *testing.T) {
	g, ego, focal := starGraph(20)
	r := rng.New(9)
	tree := BuildTree(g, ego, focal, 2, 3, NewFocalBiased(), r, nil)
	if tree.Node != ego {
		t.Fatal("root is not ego")
	}
	if len(tree.Edges) != 3 || len(tree.Children) != 3 {
		t.Fatalf("hop-1 fanout = %d, want 3", len(tree.Edges))
	}
	for _, c := range tree.Children {
		if len(c.Edges) > 3 {
			t.Fatalf("hop-2 fanout = %d > 3", len(c.Edges))
		}
		for _, gc := range c.Children {
			if len(gc.Edges) != 0 {
				t.Fatal("tree deeper than 2 hops")
			}
		}
	}
	if tree.Size() < 4 {
		t.Fatalf("tree size = %d", tree.Size())
	}
}

func TestBuildTreeZeroHops(t *testing.T) {
	g, ego, focal := starGraph(5)
	tree := BuildTree(g, ego, focal, 0, 3, NewFocalBiased(), rng.New(10), nil)
	if tree.Size() != 1 || len(tree.Edges) != 0 {
		t.Fatal("zero-hop tree must be the bare ego")
	}
}

func TestIsolatedNode(t *testing.T) {
	b := graph.NewBuilder()
	iso := b.AddNode(graph.User, nil, tensor.Vec{1})
	g := b.Build()
	for _, s := range allSamplers() {
		out := s.Sample(g, iso, tensor.Vec{1}, 5, rng.New(11), nil)
		if len(out) != 0 {
			t.Fatalf("%s sampled from isolated node", s.Name())
		}
	}
}

func BenchmarkFocalBiasedK10(b *testing.B) {
	g, ego, focal := starGraph(200)
	s := NewFocalBiased()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(g, ego, focal, 10, r, nil)
	}
}

func BenchmarkBuildTree2Hop(b *testing.B) {
	g, ego, focal := starGraph(200)
	s := NewFocalBiased()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildTree(g, ego, focal, 2, 10, s, r, nil)
	}
}

// k <= 0 must be a no-op for every sampler, not a panic (regression:
// make([]graph.Edge, k) with negative k used to crash).
func TestNonPositiveKReturnsNil(t *testing.T) {
	g, ego, focal := starGraph(20)
	for _, s := range allSamplers() {
		for _, k := range []int{0, -1, -100} {
			if out := s.Sample(g, ego, focal, k, rng.New(12), nil); out != nil {
				t.Fatalf("%s with k=%d returned %v, want nil", s.Name(), k, out)
			}
		}
	}
	if tree := BuildTree(g, ego, focal, 2, -3, NewFocalBiased(), rng.New(12), nil); tree.Size() != 1 {
		t.Fatalf("BuildTree with negative k expanded to size %d", tree.Size())
	}
}

// A reused scratch must produce the same samples as the nil-scratch path
// for the deterministic sampler, and valid contract-respecting samples
// for the stochastic ones.
func TestScratchParity(t *testing.T) {
	g, ego, focal := starGraph(30)
	sc := NewScratch()
	for _, s := range allSamplers() {
		want := s.Sample(g, ego, focal, 7, rng.New(13), nil)
		wantCopy := append([]graph.Edge(nil), want...)
		got := s.Sample(g, ego, focal, 7, rng.New(13), sc)
		if len(got) != len(wantCopy) {
			t.Fatalf("%s: scratch len %d vs nil len %d", s.Name(), len(got), len(wantCopy))
		}
		for i := range got {
			if got[i] != wantCopy[i] {
				t.Fatalf("%s: scratch result diverges at %d: %v vs %v", s.Name(), i, got[i], wantCopy[i])
			}
		}
	}
	// Repeated reuse of the same scratch must stay correct.
	nbrSet := map[graph.NodeID]bool{}
	for _, e := range g.Neighbors(ego) {
		nbrSet[e.To] = true
	}
	r := rng.New(14)
	for i := 0; i < 50; i++ {
		for _, s := range allSamplers() {
			for _, e := range s.Sample(g, ego, focal, 5, r, sc) {
				if !nbrSet[e.To] {
					t.Fatalf("%s returned non-neighbor under scratch reuse", s.Name())
				}
			}
		}
	}
}

// Scratch-built trees must match nil-scratch trees node for node, and
// survive arena growth; Reset must recycle without corrupting a tree
// built afterwards.
func TestBuildTreeScratchParity(t *testing.T) {
	g, ego, focal := starGraph(40)
	s := NewFocalBiased()
	var walk func(a, b *Tree) bool
	walk = func(a, b *Tree) bool {
		if a.Node != b.Node || len(a.Edges) != len(b.Edges) {
			return false
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] || !walk(a.Children[i], b.Children[i]) {
				return false
			}
		}
		return true
	}
	sc := NewScratch()
	for round := 0; round < 3; round++ {
		sc.Reset()
		want := BuildTree(g, ego, focal, 2, 6, s, rng.New(15), nil)
		got := BuildTree(g, ego, focal, 2, 6, s, rng.New(15), sc)
		if !walk(want, got) {
			t.Fatalf("round %d: scratch tree diverges from nil-scratch tree", round)
		}
	}
}

// The bounded-heap partial selection must agree with a full sort.
func TestTopKScoredMatchesSort(t *testing.T) {
	r := rng.New(16)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(60)
		k := 1 + r.Intn(n)
		ss := make([]scoredEdge, n)
		for i := range ss {
			ss[i] = scoredEdge{
				e:     graph.Edge{To: graph.NodeID(i), Weight: float32(r.Intn(5))},
				score: float32(r.Intn(10)),
			}
		}
		ref := append([]scoredEdge(nil), ss...)
		sortScoredRef(ref)
		topKScored(ss, k)
		for i := 0; i < k; i++ {
			// Scores (and tie-break weights) must match the sorted prefix;
			// identities may differ on full ties.
			if ss[i].score != ref[i].score || ss[i].e.Weight != ref[i].e.Weight {
				t.Fatalf("trial %d (n=%d k=%d) rank %d: got (%.0f,%.0f) want (%.0f,%.0f)",
					trial, n, k, i, ss[i].score, ss[i].e.Weight, ref[i].score, ref[i].e.Weight)
			}
		}
	}
}

func sortScoredRef(ss []scoredEdge) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && scoredLess(ss[j-1], ss[j]); j-- {
			ss[j-1], ss[j] = ss[j], ss[j-1]
		}
	}
}

func BenchmarkFocalBiasedK10Scratch(b *testing.B) {
	g, ego, focal := starGraph(200)
	s := NewFocalBiased()
	r := rng.New(1)
	sc := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(g, ego, focal, 10, r, sc)
	}
}

func BenchmarkBuildTree2HopScratch(b *testing.B) {
	g, ego, focal := starGraph(200)
	s := NewFocalBiased()
	r := rng.New(1)
	sc := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Reset()
		_ = BuildTree(g, ego, focal, 2, 10, s, r, sc)
	}
}
