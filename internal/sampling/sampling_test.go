package sampling

import (
	"testing"

	"zoomer/internal/graph"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// starGraph builds an ego with n item neighbors whose content vectors
// rotate from aligned-with-focal to orthogonal.
func starGraph(n int) (*graph.Graph, graph.NodeID, tensor.Vec) {
	b := graph.NewBuilder()
	focal := tensor.Vec{1, 0}
	ego := b.AddNode(graph.User, nil, tensor.Vec{1, 0})
	for i := 0; i < n; i++ {
		// Content interpolates between (1,0) and (0,1) as i grows.
		frac := float32(i) / float32(n)
		c := tensor.Vec{1 - frac, frac}
		tensor.Normalize(c)
		id := b.AddNode(graph.Item, nil, c)
		b.AddUndirected(ego, id, graph.Click, 1+float32(i%3))
	}
	return b.Build(), ego, focal
}

func allSamplers() []Sampler {
	return []Sampler{
		NewFocalBiased(),
		Uniform{},
		Weighted{},
		NewImportanceWalk(),
		NewBiasedWalk(),
		NewClusterImportance(),
	}
}

// Every sampler must return at most k edges, all of which are true
// neighbors, with no duplicates.
func TestSamplerContracts(t *testing.T) {
	g, ego, focal := starGraph(20)
	nbrSet := map[graph.NodeID]bool{}
	for _, e := range g.Neighbors(ego) {
		nbrSet[e.To] = true
	}
	for _, s := range allSamplers() {
		r := rng.New(1)
		for _, k := range []int{1, 5, 19, 20, 50} {
			out := s.Sample(g, ego, focal, k, r)
			if len(out) > k && k < 20 {
				t.Fatalf("%s returned %d > k=%d", s.Name(), len(out), k)
			}
			if k >= 20 && len(out) != 20 {
				t.Fatalf("%s with k>=degree returned %d, want all 20", s.Name(), len(out))
			}
			seen := map[graph.NodeID]bool{}
			for _, e := range out {
				if !nbrSet[e.To] {
					t.Fatalf("%s returned non-neighbor %d", s.Name(), e.To)
				}
				if seen[e.To] {
					t.Fatalf("%s returned duplicate %d", s.Name(), e.To)
				}
				seen[e.To] = true
			}
		}
	}
}

// The focal-biased sampler must keep the most focal-relevant neighbors:
// with focal (1,0) and rotating content, the earliest nodes are best.
func TestFocalBiasedPicksRelevant(t *testing.T) {
	g, ego, focal := starGraph(20)
	s := NewFocalBiased()
	r := rng.New(2)
	out := s.Sample(g, ego, focal, 5, r)
	for _, e := range out {
		c := g.Content(e.To)
		if c[0] < c[1] {
			t.Fatalf("focal-biased kept low-relevance neighbor with content %v", c)
		}
	}
}

// Relevance ordering must agree between eq. (5) and cosine on this
// geometry (both are monotone in the angle for unit vectors).
func TestRelevanceFuncsAgreeOnOrdering(t *testing.T) {
	focal := tensor.Vec{1, 0}
	near := tensor.Vec{0.9, 0.1}
	far := tensor.Vec{0.1, 0.9}
	tensor.Normalize(near)
	tensor.Normalize(far)
	if !(TanimotoRelevance(focal, near) > TanimotoRelevance(focal, far)) {
		t.Fatal("eq.5 ordering wrong")
	}
	if !(CosineRelevance(focal, near) > CosineRelevance(focal, far)) {
		t.Fatal("cosine ordering wrong")
	}
}

// The focal-biased sampler output must change when the focal changes:
// the dynamic, per-request ROI at the heart of the paper.
func TestFocalBiasedIsFocalSensitive(t *testing.T) {
	g, ego, _ := starGraph(20)
	s := NewFocalBiased()
	r := rng.New(3)
	a := s.Sample(g, ego, tensor.Vec{1, 0}, 5, r)
	b := s.Sample(g, ego, tensor.Vec{0, 1}, 5, r)
	aSet := map[graph.NodeID]bool{}
	for _, e := range a {
		aSet[e.To] = true
	}
	overlap := 0
	for _, e := range b {
		if aSet[e.To] {
			overlap++
		}
	}
	if overlap == 5 {
		t.Fatal("ROI identical under opposite focal interests")
	}
}

// Uniform sampling must cover the neighborhood across repetitions.
func TestUniformCoverage(t *testing.T) {
	g, ego, _ := starGraph(20)
	r := rng.New(4)
	seen := map[graph.NodeID]bool{}
	for i := 0; i < 200; i++ {
		for _, e := range (Uniform{}).Sample(g, ego, nil, 3, r) {
			seen[e.To] = true
		}
	}
	if len(seen) < 18 {
		t.Fatalf("uniform sampler covered only %d/20 neighbors", len(seen))
	}
}

// Weighted sampling must prefer heavy edges.
func TestWeightedPrefersHeavyEdges(t *testing.T) {
	b := graph.NewBuilder()
	ego := b.AddNode(graph.User, nil, nil)
	heavy := b.AddNode(graph.Item, nil, nil)
	b.AddEdge(ego, heavy, graph.Click, 100)
	var lights []graph.NodeID
	for i := 0; i < 10; i++ {
		l := b.AddNode(graph.Item, nil, nil)
		lights = append(lights, l)
		b.AddEdge(ego, l, graph.Click, 1)
	}
	g := b.Build()
	r := rng.New(5)
	heavyHit := 0
	for i := 0; i < 100; i++ {
		for _, e := range (Weighted{}).Sample(g, ego, nil, 2, r) {
			if e.To == heavy {
				heavyHit++
			}
		}
	}
	if heavyHit < 90 {
		t.Fatalf("heavy edge sampled only %d/100 times", heavyHit)
	}
	_ = lights
}

// Importance walks must surface the structurally central neighbor: a
// neighbor that is also reachable through other neighbors accumulates
// more visits.
func TestImportanceWalkFindsHub(t *testing.T) {
	b := graph.NewBuilder()
	ego := b.AddNode(graph.User, nil, nil)
	hub := b.AddNode(graph.Item, nil, nil)
	b.AddUndirected(ego, hub, graph.Click, 1)
	for i := 0; i < 8; i++ {
		leaf := b.AddNode(graph.Item, nil, nil)
		b.AddUndirected(ego, leaf, graph.Click, 1)
		// Every leaf also links to the hub, making it 2-hop central.
		b.AddUndirected(leaf, hub, graph.Session, 1)
	}
	g := b.Build()
	s := NewImportanceWalk()
	r := rng.New(6)
	out := s.Sample(g, ego, nil, 1, r)
	if len(out) != 1 || out[0].To != hub {
		t.Fatalf("importance walk picked %v, want hub %d", out, hub)
	}
}

// Cluster importance must take representatives from distinct content
// clusters rather than exhausting the dominant one.
func TestClusterImportanceIsMultiModal(t *testing.T) {
	b := graph.NewBuilder()
	ego := b.AddNode(graph.User, nil, tensor.Vec{1, 0})
	// Cluster A: 8 near-identical items along (1,0), heavy weights.
	for i := 0; i < 8; i++ {
		id := b.AddNode(graph.Item, nil, tensor.Vec{1, 0.01 * float32(i)})
		b.AddEdge(ego, id, graph.Click, 10)
	}
	// Cluster B: 4 items along (0,1), light weights.
	var bNodes []graph.NodeID
	for i := 0; i < 4; i++ {
		id := b.AddNode(graph.Item, nil, tensor.Vec{0.01 * float32(i), 1})
		bNodes = append(bNodes, id)
		b.AddEdge(ego, id, graph.Click, 1)
	}
	g := b.Build()
	s := NewClusterImportance()
	r := rng.New(7)
	out := s.Sample(g, ego, nil, 4, r)
	foundB := false
	for _, e := range out {
		for _, bn := range bNodes {
			if e.To == bn {
				foundB = true
			}
		}
	}
	if !foundB {
		t.Fatal("cluster-importance ignored the minority cluster")
	}
}

func TestBiasedWalkRespectsFocal(t *testing.T) {
	g, ego, focal := starGraph(20)
	s := NewBiasedWalk()
	r := rng.New(8)
	// Just a contract check plus determinism-of-name; walk bias is
	// statistical and covered by the contract test.
	out := s.Sample(g, ego, focal, 5, r)
	if len(out) != 5 {
		t.Fatalf("biased walk returned %d edges", len(out))
	}
}

func TestBuildTreeShape(t *testing.T) {
	g, ego, focal := starGraph(20)
	r := rng.New(9)
	tree := BuildTree(g, ego, focal, 2, 3, NewFocalBiased(), r)
	if tree.Node != ego {
		t.Fatal("root is not ego")
	}
	if len(tree.Edges) != 3 || len(tree.Children) != 3 {
		t.Fatalf("hop-1 fanout = %d, want 3", len(tree.Edges))
	}
	for _, c := range tree.Children {
		if len(c.Edges) > 3 {
			t.Fatalf("hop-2 fanout = %d > 3", len(c.Edges))
		}
		for _, gc := range c.Children {
			if len(gc.Edges) != 0 {
				t.Fatal("tree deeper than 2 hops")
			}
		}
	}
	if tree.Size() < 4 {
		t.Fatalf("tree size = %d", tree.Size())
	}
}

func TestBuildTreeZeroHops(t *testing.T) {
	g, ego, focal := starGraph(5)
	tree := BuildTree(g, ego, focal, 0, 3, NewFocalBiased(), rng.New(10))
	if tree.Size() != 1 || len(tree.Edges) != 0 {
		t.Fatal("zero-hop tree must be the bare ego")
	}
}

func TestIsolatedNode(t *testing.T) {
	b := graph.NewBuilder()
	iso := b.AddNode(graph.User, nil, tensor.Vec{1})
	g := b.Build()
	for _, s := range allSamplers() {
		out := s.Sample(g, iso, tensor.Vec{1}, 5, rng.New(11))
		if len(out) != 0 {
			t.Fatalf("%s sampled from isolated node", s.Name())
		}
	}
}

func BenchmarkFocalBiasedK10(b *testing.B) {
	g, ego, focal := starGraph(200)
	s := NewFocalBiased()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(g, ego, focal, 10, r)
	}
}

func BenchmarkBuildTree2Hop(b *testing.B) {
	g, ego, focal := starGraph(200)
	s := NewFocalBiased()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildTree(g, ego, focal, 2, 10, s, r)
	}
}
