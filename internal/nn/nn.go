// Package nn provides the neural-network building blocks used by Zoomer
// and every baseline: dense parameters, linear/MLP layers, sparse
// embedding tables, and SGD/Adam optimizers with sparse updates.
//
// It mirrors the split in the paper's XDL training stack: dense model
// parameters (attention vectors, projection matrices) are small and
// updated densely; embedding tables are huge and updated sparsely — only
// the rows touched by a minibatch carry gradients, and optimizer state for
// a row is allocated the first time that row is updated.
package nn

import (
	"fmt"
	"math"

	"zoomer/internal/ad"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// Param is a dense trainable parameter with a persistent gradient buffer.
type Param struct {
	Name string
	Val  *tensor.Matrix
	Grad *tensor.Matrix
}

// NewParam returns a zero-initialized parameter of the given shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		Val:  tensor.NewMatrix(rows, cols),
		Grad: tensor.NewMatrix(rows, cols),
	}
}

// XavierInit fills p with Glorot-uniform values scaled for its shape.
func (p *Param) XavierInit(r *rng.RNG) *Param {
	limit := float32(math.Sqrt(6.0 / float64(p.Val.Rows+p.Val.Cols)))
	for i := range p.Val.Data {
		p.Val.Data[i] = (r.Float32()*2 - 1) * limit
	}
	return p
}

// Node enrolls the parameter in a tape so gradients accumulate into
// p.Grad during Backward.
func (p *Param) Node(t *ad.Tape) *ad.Node { return t.Watch(p.Val, p.Grad) }

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad.Data {
		p.Grad.Data[i] = 0
	}
}

// NumValues returns the number of scalar values in the parameter.
func (p *Param) NumValues() int { return len(p.Val.Data) }

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W, B *Param
}

// NewLinear returns a Xavier-initialized linear layer mapping in -> out.
func NewLinear(name string, in, out int, r *rng.RNG) *Linear {
	return &Linear{
		W: NewParam(name+".W", in, out).XavierInit(r),
		B: NewParam(name+".b", 1, out),
	}
}

// Forward applies the layer to a batch (rows are samples).
func (l *Linear) Forward(t *ad.Tape, x *ad.Node) *ad.Node {
	return t.AddBias(t.MatMul(x, l.W.Node(t)), l.B.Node(t))
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Activation selects the nonlinearity of an MLP layer.
type Activation int

// Supported activations.
const (
	ActNone Activation = iota
	ActReLU
	ActLeakyReLU
	ActTanh
	ActSigmoid
)

func applyAct(t *ad.Tape, a Activation, x *ad.Node) *ad.Node {
	switch a {
	case ActNone:
		return x
	case ActReLU:
		return t.ReLU(x)
	case ActLeakyReLU:
		return t.LeakyReLU(0.2, x)
	case ActTanh:
		return t.Tanh(x)
	case ActSigmoid:
		return t.Sigmoid(x)
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// MLP is a stack of linear layers with a shared hidden activation and an
// optional output activation.
type MLP struct {
	Layers []*Linear
	Hidden Activation
	Output Activation
}

// NewMLP builds an MLP over the given layer sizes, e.g. sizes = [128, 64,
// 1] yields two linear layers. Hidden layers use hidden; the final layer
// uses output.
func NewMLP(name string, sizes []int, hidden, output Activation, r *rng.RNG) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least an input and output size")
	}
	m := &MLP{Hidden: hidden, Output: output}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(fmt.Sprintf("%s.l%d", name, i), sizes[i], sizes[i+1], r))
	}
	return m
}

// Forward applies the MLP to a batch.
func (m *MLP) Forward(t *ad.Tape, x *ad.Node) *ad.Node {
	for i, l := range m.Layers {
		x = l.Forward(t, x)
		if i+1 < len(m.Layers) {
			x = applyAct(t, m.Hidden, x)
		} else {
			x = applyAct(t, m.Output, x)
		}
	}
	return x
}

// Params returns all trainable parameters of the MLP.
func (m *MLP) Params() []*Param {
	var out []*Param
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// EmbeddingTable maps integer ids to dense rows with sparse gradient
// accumulation: only rows looked up during a step carry gradients, and
// Adam moment state is allocated per-row on first touch — the structure of
// the paper's parameter-server embedding storage.
type EmbeddingTable struct {
	Name string
	Dim  int
	rows *tensor.Matrix

	grads map[int32][]float32
	// Per-row Adam moments, lazily allocated.
	adamM, adamV map[int32][]float32
	adamT        int
}

// NewEmbeddingTable creates a table of vocab rows of width dim,
// initialized uniformly in [-1/sqrt(dim), 1/sqrt(dim)].
func NewEmbeddingTable(name string, vocab, dim int, r *rng.RNG) *EmbeddingTable {
	if vocab <= 0 || dim <= 0 {
		panic("nn: embedding table needs positive vocab and dim")
	}
	e := &EmbeddingTable{
		Name:  name,
		Dim:   dim,
		rows:  tensor.NewMatrix(vocab, dim),
		grads: make(map[int32][]float32),
	}
	limit := float32(1 / math.Sqrt(float64(dim)))
	for i := range e.rows.Data {
		e.rows.Data[i] = (r.Float32()*2 - 1) * limit
	}
	return e
}

// Vocab returns the number of rows.
func (e *EmbeddingTable) Vocab() int { return e.rows.Rows }

// Row returns a read-only view of row id (no gradient tracking); used for
// inference-time embedding export.
func (e *EmbeddingTable) Row(id int32) tensor.Vec { return e.rows.Row(int(id)) }

// Lookup gathers the rows for ids into a len(ids) x Dim node. Gradients
// scatter back into the table's sparse gradient map.
func (e *EmbeddingTable) Lookup(t *ad.Tape, ids []int32) *ad.Node {
	val := tensor.NewMatrix(len(ids), e.Dim)
	for i, id := range ids {
		copy(val.Row(i), e.rows.Row(int(id)))
	}
	idsCopy := make([]int32, len(ids))
	copy(idsCopy, ids)
	return t.Custom(val, true, func(out *ad.Node) {
		for i, id := range idsCopy {
			g, ok := e.grads[id]
			if !ok {
				g = make([]float32, e.Dim)
				e.grads[id] = g
			}
			src := out.Grad.Row(i)
			for j := range g {
				g[j] += src[j]
			}
		}
	})
}

// LookupOne gathers a single row as a 1 x Dim node.
func (e *EmbeddingTable) LookupOne(t *ad.Tape, id int32) *ad.Node {
	return e.Lookup(t, []int32{id})
}

// TouchedRows reports how many rows carry pending gradients.
func (e *EmbeddingTable) TouchedRows() int { return len(e.grads) }

// ZeroGrad discards pending sparse gradients.
func (e *EmbeddingTable) ZeroGrad() { clear(e.grads) }

// StepSGD applies pending sparse gradients with plain SGD and clears them.
func (e *EmbeddingTable) StepSGD(lr float32) {
	for id, g := range e.grads {
		row := e.rows.Row(int(id))
		for j := range row {
			row[j] -= lr * g[j]
		}
	}
	clear(e.grads)
}

// StepAdam applies pending sparse gradients with Adam (lazy per-row
// moments, table-global bias correction) and clears them.
func (e *EmbeddingTable) StepAdam(lr float32, beta1, beta2, eps float64) {
	if e.adamM == nil {
		e.adamM = make(map[int32][]float32)
		e.adamV = make(map[int32][]float32)
	}
	e.adamT++
	bc1 := 1 - math.Pow(beta1, float64(e.adamT))
	bc2 := 1 - math.Pow(beta2, float64(e.adamT))
	for id, g := range e.grads {
		m, ok := e.adamM[id]
		if !ok {
			m = make([]float32, e.Dim)
			e.adamM[id] = m
			v := make([]float32, e.Dim)
			e.adamV[id] = v
		}
		v := e.adamV[id]
		row := e.rows.Row(int(id))
		for j := range row {
			gj := float64(g[j])
			mj := beta1*float64(m[j]) + (1-beta1)*gj
			vj := beta2*float64(v[j]) + (1-beta2)*gj*gj
			m[j] = float32(mj)
			v[j] = float32(vj)
			row[j] -= float32(float64(lr) * (mj / bc1) / (math.Sqrt(vj/bc2) + eps))
		}
	}
	clear(e.grads)
}

// ApplyDelta adds delta to row id directly; the parameter-server path uses
// this to install worker-pushed updates.
func (e *EmbeddingTable) ApplyDelta(id int32, delta []float32) {
	row := e.rows.Row(int(id))
	for j := range row {
		row[j] += delta[j]
	}
}

// SGD is a plain stochastic-gradient-descent optimizer with optional L2
// weight decay (the paper's "regulation loss").
type SGD struct {
	LR          float32
	WeightDecay float32
}

// Step applies and clears gradients for the given dense parameters.
func (s *SGD) Step(params ...*Param) {
	for _, p := range params {
		for i := range p.Val.Data {
			g := p.Grad.Data[i] + s.WeightDecay*p.Val.Data[i]
			p.Val.Data[i] -= s.LR * g
			p.Grad.Data[i] = 0
		}
	}
}

// Adam is the Adam optimizer for dense parameters, with state keyed by
// parameter identity so one optimizer can drive a whole model.
type Adam struct {
	LR           float32
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float32

	t     int
	state map[*Param]*adamState
}

type adamState struct{ m, v *tensor.Matrix }

// NewAdam returns an Adam optimizer with standard defaults
// (beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies and clears gradients for the given dense parameters.
func (a *Adam) Step(params ...*Param) {
	if a.state == nil {
		a.state = make(map[*Param]*adamState)
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		st, ok := a.state[p]
		if !ok {
			st = &adamState{
				m: tensor.NewMatrix(p.Val.Rows, p.Val.Cols),
				v: tensor.NewMatrix(p.Val.Rows, p.Val.Cols),
			}
			a.state[p] = st
		}
		for i := range p.Val.Data {
			g := float64(p.Grad.Data[i] + a.WeightDecay*p.Val.Data[i])
			m := a.Beta1*float64(st.m.Data[i]) + (1-a.Beta1)*g
			v := a.Beta2*float64(st.v.Data[i]) + (1-a.Beta2)*g*g
			st.m.Data[i] = float32(m)
			st.v.Data[i] = float32(v)
			p.Val.Data[i] -= float32(float64(a.LR) * (m / bc1) / (math.Sqrt(v/bc2) + a.Eps))
			p.Grad.Data[i] = 0
		}
	}
}
