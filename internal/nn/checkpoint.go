package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpoint format: magic, version, then each dense parameter and each
// embedding table with its name and shape. Loading validates names and
// shapes against the live model, so a checkpoint can only be restored
// into the architecture that produced it — the contract a production
// trainer/server pair needs.
const (
	ckptMagic   = 0x5a4d434b // "ZMCK"
	ckptVersion = 1
)

type ckptWriter struct {
	w   *bufio.Writer
	err error
}

func (cw *ckptWriter) u32(v uint32) {
	if cw.err != nil {
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, cw.err = cw.w.Write(buf[:])
}

func (cw *ckptWriter) f32s(vs []float32) {
	for _, v := range vs {
		cw.u32(math.Float32bits(v))
	}
}

func (cw *ckptWriter) str(s string) {
	cw.u32(uint32(len(s)))
	if cw.err == nil {
		_, cw.err = cw.w.WriteString(s)
	}
}

type ckptReader struct {
	r   *bufio.Reader
	err error
}

func (cr *ckptReader) u32() uint32 {
	if cr.err != nil {
		return 0
	}
	var buf [4]byte
	_, cr.err = io.ReadFull(cr.r, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

func (cr *ckptReader) f32s(dst []float32) {
	for i := range dst {
		dst[i] = math.Float32frombits(cr.u32())
	}
}

func (cr *ckptReader) str() string {
	n := cr.u32()
	if cr.err != nil || n > 1<<16 {
		if cr.err == nil {
			cr.err = fmt.Errorf("nn: implausible name length %d", n)
		}
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(cr.r, buf); err != nil {
		cr.err = err
		return ""
	}
	return string(buf)
}

// SaveCheckpoint writes params and tables to w.
func SaveCheckpoint(w io.Writer, params []*Param, tables []*EmbeddingTable) error {
	cw := &ckptWriter{w: bufio.NewWriter(w)}
	cw.u32(ckptMagic)
	cw.u32(ckptVersion)
	cw.u32(uint32(len(params)))
	cw.u32(uint32(len(tables)))
	for _, p := range params {
		cw.str(p.Name)
		cw.u32(uint32(p.Val.Rows))
		cw.u32(uint32(p.Val.Cols))
		cw.f32s(p.Val.Data)
	}
	for _, t := range tables {
		cw.str(t.Name)
		cw.u32(uint32(t.Vocab()))
		cw.u32(uint32(t.Dim))
		cw.f32s(t.rows.Data)
	}
	if cw.err != nil {
		return cw.err
	}
	return cw.w.Flush()
}

// LoadCheckpoint restores params and tables from r. The checkpoint's
// names, shapes, and ordering must match the live model exactly.
// Optimizer state (Adam moments) is not checkpointed; training resumes
// with fresh moments, as XDL's sparse path does after failover.
func LoadCheckpoint(r io.Reader, params []*Param, tables []*EmbeddingTable) error {
	cr := &ckptReader{r: bufio.NewReader(r)}
	if m := cr.u32(); cr.err == nil && m != ckptMagic {
		return fmt.Errorf("nn: bad checkpoint magic %#x", m)
	}
	if v := cr.u32(); cr.err == nil && v != ckptVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d", v)
	}
	if n := cr.u32(); cr.err == nil && int(n) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", n, len(params))
	}
	if n := cr.u32(); cr.err == nil && int(n) != len(tables) {
		return fmt.Errorf("nn: checkpoint has %d tables, model has %d", n, len(tables))
	}
	for _, p := range params {
		name := cr.str()
		rows, cols := cr.u32(), cr.u32()
		if cr.err != nil {
			return cr.err
		}
		if name != p.Name {
			return fmt.Errorf("nn: checkpoint param %q, model expects %q", name, p.Name)
		}
		if int(rows) != p.Val.Rows || int(cols) != p.Val.Cols {
			return fmt.Errorf("nn: param %q shape %dx%d, model has %dx%d", name, rows, cols, p.Val.Rows, p.Val.Cols)
		}
		cr.f32s(p.Val.Data)
	}
	for _, t := range tables {
		name := cr.str()
		vocab, dim := cr.u32(), cr.u32()
		if cr.err != nil {
			return cr.err
		}
		if name != t.Name {
			return fmt.Errorf("nn: checkpoint table %q, model expects %q", name, t.Name)
		}
		if int(vocab) != t.Vocab() || int(dim) != t.Dim {
			return fmt.Errorf("nn: table %q shape %dx%d, model has %dx%d", name, vocab, dim, t.Vocab(), t.Dim)
		}
		cr.f32s(t.rows.Data)
	}
	return cr.err
}
