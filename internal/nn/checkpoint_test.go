package nn

import (
	"bytes"
	"strings"
	"testing"

	"zoomer/internal/rng"
)

func ckptFixture(seed uint64) ([]*Param, []*EmbeddingTable) {
	r := rng.New(seed)
	params := []*Param{
		NewParam("w1", 3, 4).XavierInit(r),
		NewParam("b1", 1, 4),
	}
	tables := []*EmbeddingTable{
		NewEmbeddingTable("emb1", 10, 4, r),
		NewEmbeddingTable("emb2", 5, 4, r),
	}
	return params, tables
}

func TestCheckpointRoundTrip(t *testing.T) {
	params, tables := ckptFixture(1)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, params, tables); err != nil {
		t.Fatal(err)
	}
	// Fresh model with same architecture but different init.
	params2, tables2 := ckptFixture(99)
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), params2, tables2); err != nil {
		t.Fatal(err)
	}
	for i := range params {
		for j := range params[i].Val.Data {
			if params[i].Val.Data[j] != params2[i].Val.Data[j] {
				t.Fatalf("param %d value %d not restored", i, j)
			}
		}
	}
	for i := range tables {
		for row := int32(0); row < int32(tables[i].Vocab()); row++ {
			a, b := tables[i].Row(row), tables2[i].Row(row)
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("table %d row %d not restored", i, row)
				}
			}
		}
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	params, tables := ckptFixture(2)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, params, tables); err != nil {
		t.Fatal(err)
	}
	// Wrong param name.
	p2, t2 := ckptFixture(2)
	p2[0].Name = "other"
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), p2, t2); err == nil {
		t.Fatal("name mismatch accepted")
	}
	// Wrong shape.
	p3, t3 := ckptFixture(2)
	p3[0] = NewParam("w1", 2, 2)
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), p3, t3); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	// Wrong table vocab.
	p4, t4 := ckptFixture(2)
	t4[0] = NewEmbeddingTable("emb1", 11, 4, rng.New(3))
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), p4, t4); err == nil {
		t.Fatal("vocab mismatch accepted")
	}
	// Wrong counts.
	p5, t5 := ckptFixture(2)
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), p5[:1], t5); err == nil {
		t.Fatal("count mismatch accepted")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	params, tables := ckptFixture(3)
	if err := LoadCheckpoint(strings.NewReader("garbage data here"), params, tables); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := LoadCheckpoint(strings.NewReader(""), params, tables); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestCheckpointTruncation(t *testing.T) {
	params, tables := ckptFixture(4)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, params, tables); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, 10, len(data) / 2, len(data) - 2} {
		p, tb := ckptFixture(4)
		if err := LoadCheckpoint(bytes.NewReader(data[:cut]), p, tb); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
