package nn

import (
	"math"
	"testing"

	"zoomer/internal/ad"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

func TestParamNodeAccumulatesGrad(t *testing.T) {
	r := rng.New(1)
	p := NewParam("w", 2, 2).XavierInit(r)
	tp := ad.NewTape()
	loss := tp.SumAll(p.Node(tp))
	tp.Backward(loss)
	for _, g := range p.Grad.Data {
		if g != 1 {
			t.Fatalf("grad = %v, want all ones", p.Grad.Data)
		}
	}
	p.ZeroGrad()
	for _, g := range p.Grad.Data {
		if g != 0 {
			t.Fatal("ZeroGrad did not clear")
		}
	}
}

func TestXavierInitBounds(t *testing.T) {
	r := rng.New(2)
	p := NewParam("w", 100, 50).XavierInit(r)
	limit := math.Sqrt(6.0 / 150.0)
	var nonzero int
	for _, v := range p.Val.Data {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("value %v outside Xavier bound %v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(p.Val.Data)/2 {
		t.Fatal("Xavier init left most weights zero")
	}
}

func TestLinearForwardShape(t *testing.T) {
	r := rng.New(3)
	l := NewLinear("fc", 4, 3, r)
	tp := ad.NewTape()
	x := tp.Const(tensor.NewMatrix(5, 4))
	y := l.Forward(tp, x)
	if y.Rows() != 5 || y.Cols() != 3 {
		t.Fatalf("Linear output %dx%d, want 5x3", y.Rows(), y.Cols())
	}
	if len(l.Params()) != 2 {
		t.Fatal("Linear should expose W and b")
	}
}

// A linear layer trained with Adam must fit a linear teacher.
func TestLinearLearnsTeacher(t *testing.T) {
	r := rng.New(4)
	teacherW := []float32{1.5, -2, 0.5}
	l := NewLinear("fc", 3, 1, r)
	opt := NewAdam(0.05)
	var lastLoss float32
	for step := 0; step < 300; step++ {
		x := tensor.NewMatrix(16, 3)
		targets := make([]float32, 16)
		for i := 0; i < 16; i++ {
			row := x.Row(i)
			var dot float32
			for j := range row {
				row[j] = r.Float32()*2 - 1
				dot += row[j] * teacherW[j]
			}
			if dot > 0 {
				targets[i] = 1
			}
		}
		tp := ad.NewTape()
		logits := l.Forward(tp, tp.Const(x))
		loss := tp.BCEWithLogits(logits, targets)
		tp.Backward(loss)
		opt.Step(l.Params()...)
		lastLoss = loss.Scalar()
	}
	if lastLoss > 0.25 {
		t.Fatalf("linear model failed to fit teacher: loss %v", lastLoss)
	}
}

func TestMLPForward(t *testing.T) {
	r := rng.New(5)
	m := NewMLP("mlp", []int{8, 16, 4, 1}, ActReLU, ActNone, r)
	if len(m.Layers) != 3 {
		t.Fatalf("MLP has %d layers, want 3", len(m.Layers))
	}
	if len(m.Params()) != 6 {
		t.Fatalf("MLP has %d params, want 6", len(m.Params()))
	}
	tp := ad.NewTape()
	x := tp.Const(tensor.NewMatrix(2, 8))
	y := m.Forward(tp, x)
	if y.Rows() != 2 || y.Cols() != 1 {
		t.Fatalf("MLP output %dx%d", y.Rows(), y.Cols())
	}
}

// An MLP must solve XOR, which a linear model cannot: checks that
// gradients flow correctly through hidden layers.
func TestMLPLearnsXOR(t *testing.T) {
	r := rng.New(6)
	m := NewMLP("xor", []int{2, 8, 1}, ActTanh, ActNone, r)
	opt := NewAdam(0.05)
	x := tensor.NewMatrix(4, 2)
	copy(x.Data, []float32{0, 0, 0, 1, 1, 0, 1, 1})
	targets := []float32{0, 1, 1, 0}
	var loss float32
	for step := 0; step < 1500; step++ {
		tp := ad.NewTape()
		logits := m.Forward(tp, tp.Const(x))
		l := tp.BCEWithLogits(logits, targets)
		tp.Backward(l)
		opt.Step(m.Params()...)
		loss = l.Scalar()
	}
	if loss > 0.1 {
		t.Fatalf("MLP failed to learn XOR: loss %v", loss)
	}
}

func TestEmbeddingLookupValues(t *testing.T) {
	r := rng.New(7)
	e := NewEmbeddingTable("emb", 10, 4, r)
	tp := ad.NewTape()
	n := e.Lookup(tp, []int32{3, 7, 3})
	if n.Rows() != 3 || n.Cols() != 4 {
		t.Fatalf("lookup shape %dx%d", n.Rows(), n.Cols())
	}
	for j := 0; j < 4; j++ {
		if n.Val.At(0, j) != e.Row(3)[j] || n.Val.At(2, j) != e.Row(3)[j] {
			t.Fatal("lookup row mismatch")
		}
	}
}

func TestEmbeddingSparseGradAccumulation(t *testing.T) {
	r := rng.New(8)
	e := NewEmbeddingTable("emb", 10, 2, r)
	tp := ad.NewTape()
	// id 3 appears twice: its gradient must be doubled.
	n := e.Lookup(tp, []int32{3, 5, 3})
	loss := tp.SumAll(n)
	tp.Backward(loss)
	if e.TouchedRows() != 2 {
		t.Fatalf("touched rows = %d, want 2", e.TouchedRows())
	}
	if g := e.grads[3]; g[0] != 2 || g[1] != 2 {
		t.Fatalf("grad for repeated id = %v, want [2 2]", g)
	}
	if g := e.grads[5]; g[0] != 1 || g[1] != 1 {
		t.Fatalf("grad for single id = %v, want [1 1]", g)
	}
	// Untouched rows must not appear.
	if _, ok := e.grads[0]; ok {
		t.Fatal("untouched row has gradient")
	}
}

func TestEmbeddingStepSGD(t *testing.T) {
	r := rng.New(9)
	e := NewEmbeddingTable("emb", 4, 2, r)
	before := tensor.Copy(e.Row(1))
	otherBefore := tensor.Copy(e.Row(0))
	tp := ad.NewTape()
	n := e.LookupOne(tp, 1)
	tp.Backward(tp.SumAll(n))
	e.StepSGD(0.1)
	after := e.Row(1)
	for j := range after {
		want := before[j] - 0.1
		if math.Abs(float64(after[j]-want)) > 1e-6 {
			t.Fatalf("SGD row update wrong: %v -> %v", before, after)
		}
	}
	for j := range otherBefore {
		if e.Row(0)[j] != otherBefore[j] {
			t.Fatal("SGD touched an unrelated row")
		}
	}
	if e.TouchedRows() != 0 {
		t.Fatal("StepSGD did not clear gradients")
	}
}

func TestEmbeddingStepAdamMovesAgainstGradient(t *testing.T) {
	r := rng.New(10)
	e := NewEmbeddingTable("emb", 4, 3, r)
	before := tensor.Copy(e.Row(2))
	tp := ad.NewTape()
	tp.Backward(tp.SumAll(e.LookupOne(tp, 2)))
	e.StepAdam(0.01, 0.9, 0.999, 1e-8)
	after := e.Row(2)
	for j := range after {
		if after[j] >= before[j] {
			t.Fatalf("Adam did not decrease value against positive grad: %v -> %v", before[j], after[j])
		}
	}
}

func TestEmbeddingTrainsToSeparateClasses(t *testing.T) {
	// Two ids with opposite labels: after training, their first weight
	// components must separate under a fixed probe vector.
	r := rng.New(11)
	e := NewEmbeddingTable("emb", 2, 4, r)
	probe := tensor.NewMatrix(4, 1)
	for i := range probe.Data {
		probe.Data[i] = 1
	}
	for step := 0; step < 200; step++ {
		tp := ad.NewTape()
		emb := e.Lookup(tp, []int32{0, 1})
		logits := tp.MatMul(emb, tp.Const(probe))
		loss := tp.BCEWithLogits(logits, []float32{1, 0})
		tp.Backward(loss)
		e.StepAdam(0.05, 0.9, 0.999, 1e-8)
	}
	score := func(id int32) float32 {
		var s float32
		for _, v := range e.Row(id) {
			s += v
		}
		return s
	}
	if !(score(0) > 1 && score(1) < -1) {
		t.Fatalf("embeddings did not separate: pos=%v neg=%v", score(0), score(1))
	}
}

func TestApplyDelta(t *testing.T) {
	r := rng.New(12)
	e := NewEmbeddingTable("emb", 3, 2, r)
	before := tensor.Copy(e.Row(1))
	e.ApplyDelta(1, []float32{0.5, -0.5})
	if e.Row(1)[0] != before[0]+0.5 || e.Row(1)[1] != before[1]-0.5 {
		t.Fatal("ApplyDelta wrong")
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := NewParam("w", 1, 1)
	p.Val.Data[0] = 1
	opt := &SGD{LR: 0.1, WeightDecay: 0.5}
	opt.Step(p) // grad 0, decay pulls toward zero
	if p.Val.Data[0] >= 1 {
		t.Fatalf("weight decay did not shrink: %v", p.Val.Data[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w - 3)^2 via its gradient 2(w-3).
	p := NewParam("w", 1, 1)
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.Grad.Data[0] = 2 * (p.Val.Data[0] - 3)
		opt.Step(p)
	}
	if math.Abs(float64(p.Val.Data[0]-3)) > 0.05 {
		t.Fatalf("Adam did not converge: w = %v, want 3", p.Val.Data[0])
	}
}

func TestZeroGradTable(t *testing.T) {
	r := rng.New(13)
	e := NewEmbeddingTable("emb", 3, 2, r)
	tp := ad.NewTape()
	tp.Backward(tp.SumAll(e.LookupOne(tp, 0)))
	if e.TouchedRows() == 0 {
		t.Fatal("no touched rows after backward")
	}
	e.ZeroGrad()
	if e.TouchedRows() != 0 {
		t.Fatal("ZeroGrad left rows")
	}
}

func BenchmarkEmbeddingLookupBatch(b *testing.B) {
	r := rng.New(1)
	e := NewEmbeddingTable("emb", 100000, 64, r)
	ids := make([]int32, 256)
	for i := range ids {
		ids[i] = int32(r.Intn(100000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := ad.NewTape()
		n := e.Lookup(tp, ids)
		tp.Backward(tp.SumAll(n))
		e.ZeroGrad()
	}
}
