package rpc

import (
	"errors"
	"net"
	"testing"
	"time"

	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
)

func startShardServer(t *testing.T) (*Server, string) {
	t.Helper()
	g := buildGraph(t)
	srv := NewServer(g, ServerConfig{Shards: 1, Strategy: partition.Hash, Replicas: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv.Start(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// An expired per-call deadline fails fast and typed at the stub: no
// wire traffic, no RNG consumption, and — crucially — no charge against
// the health circuit. A slow caller budget is not a dead server.
func TestRemoteSampleDeadlineExpiredIsTypedAndUncharged(t *testing.T) {
	_, addr := startShardServer(t)
	cl := NewClientWith(addr, ClientConfig{Timeout: 2 * time.Second})
	defer cl.Close()
	rs := NewRemoteShard(cl, 0, 0, 0)

	r := rng.New(21)
	before := r.State()
	out := make([]graph.NodeID, 4)
	for i := 0; i < 10; i++ { // well past the circuit's failure threshold
		_, err := rs.SampleIntoBy(1, out, r, time.Now().Add(-time.Millisecond))
		if !errors.Is(err, engine.ErrDeadlineExceeded) {
			t.Fatalf("expired deadline: got %v, want engine.ErrDeadlineExceeded", err)
		}
	}
	if r.State() != before {
		t.Fatal("expired calls consumed the caller's RNG")
	}
	if !cl.Healthy() {
		t.Fatal("expired deadlines tripped the health circuit")
	}
	// The stub still serves normally afterwards.
	if _, err := rs.SampleInto(1, out, r); err != nil {
		t.Fatalf("post-deadline sample: %v", err)
	}
}

// A generous deadline leaves draws bit-identical to the unbounded call:
// the budget only shrinks the wire timeout, never the sampling stream.
func TestRemoteSampleDeadlineBitIdentical(t *testing.T) {
	_, addr := startShardServer(t)
	cl := NewClientWith(addr, ClientConfig{Timeout: 2 * time.Second})
	defer cl.Close()
	rs := NewRemoteShard(cl, 0, 0, 0)

	ra, rb := rng.New(33), rng.New(33)
	a := make([]graph.NodeID, 5)
	b := make([]graph.NodeID, 5)
	for id := 0; id < 40; id += 3 {
		na, err := rs.SampleInto(graph.NodeID(id), a, ra)
		if err != nil {
			t.Fatalf("unbounded: %v", err)
		}
		nb, err := rs.SampleIntoBy(graph.NodeID(id), b, rb, time.Now().Add(time.Minute))
		if err != nil {
			t.Fatalf("bounded: %v", err)
		}
		if na != nb {
			t.Fatalf("id %d: %d vs %d draws", id, na, nb)
		}
		for i := 0; i < na; i++ {
			if a[i] != b[i] {
				t.Fatalf("id %d draw %d: %d vs %d", id, i, a[i], b[i])
			}
		}
	}
}

// A deadline expiring while the request waits on a blackholed server
// surfaces typed — wrapped over the transport detail — without waiting
// for the full static client timeout.
func TestRemoteSampleDeadlineBoundsWireWait(t *testing.T) {
	bh := startBlackhole(t, "127.0.0.1:0")
	defer bh.kill()
	cl := NewClientWith(bh.ln.Addr().String(), ClientConfig{Timeout: 30 * time.Second})
	defer cl.Close()
	rs := NewRemoteShard(cl, 0, 0, 0)

	r := rng.New(5)
	out := make([]graph.NodeID, 4)
	start := time.Now()
	_, err := rs.SampleIntoBy(1, out, r, time.Now().Add(150*time.Millisecond))
	elapsed := time.Since(start)
	if !errors.Is(err, engine.ErrDeadlineExceeded) {
		t.Fatalf("blackholed call: got %v, want engine.ErrDeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline-bounded call took %v — the static 30s timeout leaked through", elapsed)
	}
}
