package rpc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
	"zoomer/internal/serve"
)

// migrate moves one partition from src to dst in the zero-downtime
// order: the destination acquires before the source drains, so the
// partition is never unowned.
func migrate(t *testing.T, shard int, src, dst *Server) {
	t.Helper()
	if _, err := dst.AcquirePartition(shard); err != nil {
		t.Fatalf("acquire %d: %v", shard, err)
	}
	if _, err := src.ReleasePartition(shard); err != nil {
		t.Fatalf("release %d: %v", shard, err)
	}
}

// The live-handoff pin: a partition migrates between two live servers
// while a caller samples continuously, and the caller observes nothing —
// zero failed calls, every draw bit-identical to the in-process engine
// (itself pinned identical to a static cluster by the loopback
// equivalence tests), the RNG stream intact. Afterwards the moved
// shard's traffic demonstrably lands on the new owner.
func TestLiveHandoffDeterministic(t *testing.T) {
	g := buildGraph(t)
	const shards, k, moved = 4, 5, 1
	local := engine.New(g, engine.Config{Shards: 1, Replicas: 1})
	servers, cluster := startCluster(t, g, shards, partition.Hash,
		[][]int{{0, 1}, {2, 3}}, 1)
	remote := cluster.Engine
	srcSrv, dstSrv := servers[0], servers[1]

	// A continuous background sampler: single draws in lockstep against
	// its own local reference stream, all through the migrations below.
	stop := make(chan struct{})
	samplerErr := make(chan error, 1)
	var sampled int
	go func() {
		defer close(samplerErr)
		rl, rr := rng.New(555), rng.New(555)
		want := make([]graph.NodeID, k)
		got := make([]graph.NodeID, k)
		for id := 0; ; id = (id + 1) % g.NumNodes() {
			select {
			case <-stop:
				return
			default:
			}
			nid := graph.NodeID(id)
			nw := local.SampleNeighborsInto(nid, want, rl)
			ng, err := remote.TrySampleNeighborsInto(nid, got, rr)
			if err != nil {
				samplerErr <- err
				return
			}
			if nw != ng {
				samplerErr <- errors.New("sampler count diverged")
				return
			}
			for i := 0; i < nw; i++ {
				if want[i] != got[i] {
					samplerErr <- errors.New("sampler draw diverged")
					return
				}
			}
			sampled++
		}
	}()

	// Deterministic lockstep batches with migrations between fixed steps:
	// shard 1 moves A→B at step 3 and back B→A at step 7. The remote
	// stream must stay bit-identical to the local one across both moves.
	rl, rr := rng.New(123), rng.New(123)
	idsRNG := rng.New(7)
	ids := make([]graph.NodeID, 96)
	want := make([]graph.NodeID, len(ids)*k)
	wantNs := make([]int32, len(ids))
	got := make([]graph.NodeID, len(ids)*k)
	gotNs := make([]int32, len(ids))
	bsL, bsR := engine.NewBatchScratch(), engine.NewBatchScratch()
	for step := 0; step < 10; step++ {
		switch step {
		case 3:
			migrate(t, moved, srcSrv, dstSrv)
		case 7:
			migrate(t, moved, dstSrv, srcSrv)
		}
		for i := range ids {
			ids[i] = graph.NodeID(idsRNG.Intn(g.NumNodes()))
		}
		if _, err := local.SampleNeighborsBatchInto(ids, k, want, wantNs, rl, bsL); err != nil {
			t.Fatalf("step %d: local batch: %v", step, err)
		}
		if _, err := remote.SampleNeighborsBatchInto(ids, k, got, gotNs, rr, bsR); err != nil {
			t.Fatalf("step %d: remote batch failed during handoff: %v", step, err)
		}
		for i := range ids {
			if wantNs[i] != gotNs[i] {
				t.Fatalf("step %d entry %d: count %d, want %d", step, i, gotNs[i], wantNs[i])
			}
			for j := 0; j < int(wantNs[i]); j++ {
				if want[i*k+j] != got[i*k+j] {
					t.Fatalf("step %d entry %d draw %d: %d, want %d (draws diverged across handoff)",
						step, i, j, got[i*k+j], want[i*k+j])
				}
			}
		}
	}
	if a, b := rl.Uint64(), rr.Uint64(); a != b {
		t.Fatalf("RNG streams diverged across the handoffs: %d vs %d", a, b)
	}

	close(stop)
	if err := <-samplerErr; err != nil {
		t.Fatalf("continuous sampler surfaced a failure: %v", err)
	}
	if sampled == 0 {
		t.Fatal("continuous sampler never ran")
	}

	// The engine refreshed its ownership view at least twice (one per
	// drain it ran into).
	if remote.Epoch() < 2 {
		t.Fatalf("engine epoch %d after two migrations, want >= 2", remote.Epoch())
	}

	// Traffic proof: shard 1 is back on server A; batches of shard-1 ids
	// must land there and not on B.
	var shard1 []graph.NodeID
	for id := 0; len(shard1) < 16 && id < g.NumNodes(); id++ {
		if remote.ShardOf(graph.NodeID(id)) == moved {
			shard1 = append(shard1, graph.NodeID(id))
		}
	}
	beforeA, beforeB := srcSrv.OpCount(OpBatch), dstSrv.OpCount(OpBatch)
	if _, err := remote.SampleNeighborsBatchInto(shard1, k, got[:len(shard1)*k], gotNs[:len(shard1)], rr, bsR); err != nil {
		t.Fatalf("post-handoff batch: %v", err)
	}
	if d := srcSrv.OpCount(OpBatch) - beforeA; d != 1 {
		t.Fatalf("returned owner served %d batch round trips, want 1", d)
	}
	if d := dstSrv.OpCount(OpBatch) - beforeB; d != 0 {
		t.Fatalf("drained server still served %d batch round trips", d)
	}
}

// At the raw client level a drained partition answers with the typed
// wrong-epoch redirect over a healthy connection: it satisfies
// errors.Is(err, engine.ErrWrongEpoch), is not ErrShardUnavailable, does
// not kill the connection, and does not count against the health
// circuit.
func TestDrainedShardRedirectsTyped(t *testing.T) {
	g := buildGraph(t)
	const shards = 2
	srv, addr := startServer(t, g, ServerConfig{Shards: shards, Strategy: partition.Hash, Replicas: 1})
	cl := NewClient(addr)
	t.Cleanup(func() { cl.Close() })

	var onShard0, onShard1 graph.NodeID = -1, -1
	part := partition.Split(g, shards, partition.Hash)
	for id := 0; id < g.NumNodes() && (onShard0 < 0 || onShard1 < 0); id++ {
		if part.Owner(graph.NodeID(id)) == 0 && onShard0 < 0 {
			onShard0 = graph.NodeID(id)
		} else if part.Owner(graph.NodeID(id)) == 1 && onShard1 < 0 {
			onShard1 = graph.NodeID(id)
		}
	}

	if epoch, err := srv.ReleasePartition(1); err != nil || epoch != 1 {
		t.Fatalf("release: epoch %d, err %v", epoch, err)
	}
	rs := NewRemoteShard(cl, 1, 0, 0)
	out := make([]graph.NodeID, 4)
	ns := make([]int32, 1)
	_, err := rs.SampleBatchInto([]graph.NodeID{onShard1}, []int32{0}, 9, 4, out, ns)
	if err == nil {
		t.Fatal("batch against a drained shard succeeded")
	}
	if !errors.Is(err, engine.ErrWrongEpoch) {
		t.Fatalf("error %v is not engine.ErrWrongEpoch", err)
	}
	if errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("redirect %v mislabeled as a transport failure", err)
	}
	r := rng.New(1)
	if _, err := rs.SampleInto(onShard1, out, r); !errors.Is(err, engine.ErrWrongEpoch) {
		t.Fatalf("single-sample redirect: %v", err)
	}

	// The connection survived and the circuit never opened: an owned-shard
	// read on the same client succeeds immediately, even after enough
	// redirects to trip a failure threshold.
	for i := 0; i < 5; i++ {
		rs.SampleBatchInto([]graph.NodeID{onShard1}, []int32{0}, 9, 4, out, ns)
	}
	rs0 := NewRemoteShard(cl, 0, 0, 0)
	if _, err := rs0.SampleInto(onShard0, out, r); err != nil {
		t.Fatalf("healthy shard read after redirects: %v", err)
	}

	// Reassign ops are idempotent: re-releasing keeps the epoch, and a
	// remote acquire brings the shard back at a bumped epoch.
	if epoch, err := cl.Reassign(1, false); err != nil || epoch != 1 {
		t.Fatalf("idempotent release: epoch %d, err %v", epoch, err)
	}
	if epoch, err := cl.Reassign(1, true); err != nil || epoch != 2 {
		t.Fatalf("remote acquire: epoch %d, err %v", epoch, err)
	}
	if epoch, owned, _, err := cl.RoutingEpoch(); err != nil || epoch != 2 || len(owned) != 2 {
		t.Fatalf("routing-epoch poll: epoch %d, %d owned, err %v", epoch, len(owned), err)
	}
	if n, err := rs.SampleBatchInto([]graph.NodeID{onShard1}, []int32{0}, 9, 4, out, ns); err != nil || n != 4 {
		t.Fatalf("reacquired shard: n=%d err=%v", n, err)
	}
}

// The fault pin for handoff: drains race in-flight multiplexed windows.
// Concurrent workers keep full windows of batches in flight (1
// connection, tiny window, overlapped multi-shard visits) while the
// migration loop bounces a partition between two live servers. Every
// call must succeed and every draw must stay bit-identical to the local
// engine — requests dispatched before a drain complete against the old
// owner, requests after it are redirected, refreshed and retried, and
// nothing is ever half-written. Run under -race by `make race`.
func TestHandoffRacingInFlightWindows(t *testing.T) {
	g := buildGraph(t)
	const shards, moved = 4, 2
	local := engine.New(g, engine.Config{Shards: 1, Replicas: 1})
	servers := make([]*Server, 2)
	addrs := make([]string, 2)
	for i, owned := range [][]int{{0, 1}, {2, 3}} {
		servers[i], addrs[i] = startServer(t, g, ServerConfig{
			Shards: shards, Strategy: partition.Hash, Owned: owned, Replicas: 1,
			ConnWorkers: 2, ConnWindow: 8,
		})
	}
	cluster, err := DialClusterWith(ClientConfig{Conns: 1, Window: 4}, addrs...)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	remote := cluster.Engine

	stop := make(chan struct{})
	var migrations int
	var mwg sync.WaitGroup
	mwg.Add(1)
	go func() { // migration loop: bounce the partition A→B→A→…
		defer mwg.Done()
		src, dst := servers[0], servers[1]
		// Start with shard 2 on B (initial layout); first move is B→A.
		src, dst = dst, src
		for {
			select {
			case <-stop:
				return
			case <-time.After(15 * time.Millisecond):
			}
			if _, err := dst.AcquirePartition(moved); err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			if _, err := src.ReleasePartition(moved); err != nil {
				t.Errorf("release: %v", err)
				return
			}
			migrations++
			src, dst = dst, src
		}
	}()

	const workers, iters, batch, k = 6, 120, 32, 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			idsR := rng.New(seed)
			rl, rr := rng.New(seed+100), rng.New(seed+100)
			bsL, bsR := engine.NewBatchScratch(), engine.NewBatchScratch()
			ids := make([]graph.NodeID, batch)
			want := make([]graph.NodeID, batch*k)
			wantNs := make([]int32, batch)
			got := make([]graph.NodeID, batch*k)
			gotNs := make([]int32, batch)
			single := make([]graph.NodeID, k)
			wantSingle := make([]graph.NodeID, k)
			for it := 0; it < iters; it++ {
				for i := range ids {
					ids[i] = graph.NodeID(idsR.Intn(g.NumNodes()))
				}
				if _, err := local.SampleNeighborsBatchInto(ids, k, want, wantNs, rl, bsL); err != nil {
					t.Errorf("local batch: %v", err)
					return
				}
				if _, err := remote.SampleNeighborsBatchInto(ids, k, got, gotNs, rr, bsR); err != nil {
					t.Errorf("remote batch failed during handoff churn: %v", err)
					return
				}
				for i := range ids {
					if wantNs[i] != gotNs[i] {
						t.Errorf("entry %d: count %d, want %d", i, gotNs[i], wantNs[i])
						return
					}
					for j := 0; j < int(wantNs[i]); j++ {
						if want[i*k+j] != got[i*k+j] {
							t.Errorf("entry %d draw %d diverged during handoff churn", i, j)
							return
						}
					}
				}
				nw := local.SampleNeighborsInto(ids[0], wantSingle, rl)
				ng, err := remote.TrySampleNeighborsInto(ids[0], single, rr)
				if err != nil {
					t.Errorf("single sample failed during handoff churn: %v", err)
					return
				}
				if nw != ng {
					t.Errorf("single count diverged: %d vs %d", ng, nw)
					return
				}
				for i := 0; i < nw; i++ {
					if wantSingle[i] != single[i] {
						t.Errorf("single draw %d diverged", i)
						return
					}
				}
			}
		}(uint64(w + 31))
	}
	wg.Wait()
	close(stop)
	mwg.Wait()
	if t.Failed() {
		return
	}
	if migrations == 0 {
		t.Fatal("migration loop never moved the partition; the race was not exercised")
	}
	t.Logf("handoff churn: %d migrations under %d workers, engine epoch %d", migrations, workers, remote.Epoch())
}

// The serving tier must ride through a handoff untouched: a neighbor
// cache (miss fills + async refreshers, all through the remote engine)
// keeps answering while its shard's partition migrates, and every entry
// it returns stays a plausible neighbor set.
func TestServeCacheFollowsHandoff(t *testing.T) {
	g := buildGraph(t)
	const shards, cacheK, moved = 4, 8, 3
	servers, cluster := startCluster(t, g, shards, partition.Hash,
		[][]int{{0, 1}, {2, 3}}, 1)
	remote := cluster.Engine
	cache := serve.NewNeighborCache(remote, cacheK, 77)
	defer cache.Close()

	r := rng.New(3)
	touch := func(rounds int) {
		for i := 0; i < rounds; i++ {
			for id := 0; id < g.NumNodes(); id += 3 {
				e := cache.Get(graph.NodeID(id), r)
				if n := len(e.Neighbors()); n > cacheK {
					t.Fatalf("entry for %d has %d neighbors, cap %d", id, n, cacheK)
				}
				e.Release()
			}
		}
	}
	touch(2) // warm: miss fills + queued refreshes across every segment
	migrate(t, moved, servers[1], servers[0])
	touch(2) // shard 3 now on server 0; fills and refreshers must follow
	migrate(t, moved, servers[0], servers[1])
	touch(2)
	hits, misses, _ := cache.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("cache never exercised: %d hits, %d misses", hits, misses)
	}
}
