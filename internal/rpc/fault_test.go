package rpc

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
)

// Killing a shard server must surface as the typed ErrShardUnavailable —
// promptly (no hang) and with every batch count zeroed (no partial
// results) — and a server restarted on the same address must be served
// again transparently by the pooled client's redial path.
func TestShardFailureAndReconnect(t *testing.T) {
	g := buildGraph(t)
	const shards = 2
	local := engine.New(g, engine.Config{Shards: 1, Replicas: 1})

	srv := NewServer(g, ServerConfig{Shards: shards, Strategy: partition.Hash, Replicas: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	srv.Start(ln)

	cluster, err := DialCluster(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cluster.Close()
	remote := cluster.Engine

	const k = 4
	ids := make([]graph.NodeID, 32)
	r := rng.New(9)
	for i := range ids {
		ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	out := make([]graph.NodeID, len(ids)*k)
	ns := make([]int32, len(ids))
	if _, err := remote.SampleNeighborsBatchInto(ids, k, out, ns, rng.New(1), nil); err != nil {
		t.Fatalf("warm batch: %v", err)
	}

	// Kill the server: listener and every open (pooled) connection die.
	srv.Close()

	for i := range ns {
		ns[i] = 7 // sentinel: must be zeroed on failure
	}
	start := time.Now()
	n, err := remote.SampleNeighborsBatchInto(ids, k, out, ns, rng.New(2), nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("batch against a dead shard succeeded")
	}
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("error %v is not ErrShardUnavailable", err)
	}
	if n != 0 {
		t.Fatalf("dead-shard batch reported %d draws", n)
	}
	for i, v := range ns {
		if v != 0 {
			t.Fatalf("dead-shard batch left count %d at entry %d (partial-result corruption)", v, i)
		}
	}
	if elapsed > 4*time.Second {
		t.Fatalf("dead-shard batch took %v (hang)", elapsed)
	}
	// The single-sample path surfaces the same typed error without
	// consuming the caller's stream.
	rr := rng.New(77)
	st := rr.State()
	if _, err := remote.TrySampleNeighborsInto(ids[0], out[:k], rr); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("single sample error %v is not ErrShardUnavailable", err)
	}
	if rr.State() != st {
		t.Fatal("failed single sample consumed the RNG stream")
	}

	// Restart on the same address: the next call redials and must again
	// be bit-identical to the in-process engine.
	srv2 := NewServer(g, ServerConfig{Shards: shards, Strategy: partition.Hash, Replicas: 1})
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	srv2.Start(ln2)
	defer srv2.Close()

	want := make([]graph.NodeID, len(ids)*k)
	wantNs := make([]int32, len(ids))
	if _, err := local.SampleNeighborsBatchInto(ids, k, want, wantNs, rng.New(3), nil); err != nil {
		t.Fatalf("local batch: %v", err)
	}
	if _, err := remote.SampleNeighborsBatchInto(ids, k, out, ns, rng.New(3), nil); err != nil {
		t.Fatalf("post-restart batch: %v", err)
	}
	for i := range ids {
		if wantNs[i] != ns[i] {
			t.Fatalf("post-restart entry %d: count %d, local %d", i, ns[i], wantNs[i])
		}
		for j := 0; j < int(wantNs[i]); j++ {
			if want[i*k+j] != out[i*k+j] {
				t.Fatalf("post-restart entry %d draw %d differs", i, j)
			}
		}
	}
}

// Hammer batches while the server dies and comes back: every call must
// either succeed with fully consistent counts (each entry 0 or k) or
// fail typed with every count zeroed — never a half-written batch.
func TestNoPartialResultsUnderChurn(t *testing.T) {
	g := buildGraph(t)
	srv := NewServer(g, ServerConfig{Shards: 2, Strategy: partition.Hash, Replicas: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	srv.Start(ln)
	cluster, err := DialCluster(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cluster.Close()
	remote := cluster.Engine

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn: kill and restart the server continuously
		defer wg.Done()
		alive, cur := true, srv
		var curLn net.Listener
		for {
			select {
			case <-stop:
				if alive {
					cur.Close()
				}
				return
			case <-time.After(20 * time.Millisecond):
			}
			if alive {
				cur.Close()
				alive = false
			} else {
				cur = NewServer(g, ServerConfig{Shards: 2, Strategy: partition.Hash, Replicas: 1})
				var err error
				curLn, err = net.Listen("tcp", addr)
				if err != nil {
					continue // previous socket not released yet; retry next tick
				}
				cur.Start(curLn)
				alive = true
			}
		}
	}()

	const k = 3
	ids := make([]graph.NodeID, 16)
	r := rng.New(11)
	for i := range ids {
		ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	out := make([]graph.NodeID, len(ids)*k)
	ns := make([]int32, len(ids))
	okCalls, failCalls := 0, 0
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for i := range ns {
			ns[i] = 7
		}
		_, err := remote.SampleNeighborsBatchInto(ids, k, out, ns, r, nil)
		if err != nil {
			failCalls++
			if !errors.Is(err, ErrShardUnavailable) {
				t.Fatalf("untyped failure: %v", err)
			}
			for i, v := range ns {
				if v != 0 {
					t.Fatalf("failed batch left count %d at entry %d", v, i)
				}
			}
			continue
		}
		okCalls++
		for i, v := range ns {
			if v != 0 && v != k {
				t.Fatalf("successful batch has inconsistent count %d at entry %d", v, i)
			}
		}
	}
	close(stop)
	wg.Wait()
	t.Logf("churn: %d ok, %d typed failures", okCalls, failCalls)
	if okCalls == 0 {
		t.Fatal("no batch ever succeeded under churn")
	}
}

// The pooled client must be safe under concurrent callers (run with
// -race): connections are checked out per call, so parallel batches,
// singles and attribute reads share the pool without corruption.
func TestClientPoolConcurrency(t *testing.T) {
	g := buildGraph(t)
	_, cluster := startCluster(t, g, 4, partition.Hash, [][]int{{0, 1}, {2, 3}}, 2)
	remote := cluster.Engine

	const workers, iters, batch, k = 8, 60, 24, 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			bs := engine.NewBatchScratch()
			ids := make([]graph.NodeID, batch)
			out := make([]graph.NodeID, batch*k)
			ns := make([]int32, batch)
			single := make([]graph.NodeID, k)
			for it := 0; it < iters; it++ {
				for i := range ids {
					ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
				}
				if _, err := remote.SampleNeighborsBatchInto(ids, k, out, ns, r, bs); err != nil {
					t.Errorf("batch: %v", err)
					return
				}
				for i := range ids {
					for j := 0; j < int(ns[i]); j++ {
						if int(out[i*k+j]) >= g.NumNodes() {
							t.Errorf("out-of-range draw %d", out[i*k+j])
							return
						}
					}
				}
				if _, err := remote.TrySampleNeighborsInto(ids[0], single, r); err != nil {
					t.Errorf("single: %v", err)
					return
				}
				if nbrs := remote.Neighbors(ids[1]); len(nbrs) != g.Degree(ids[1]) {
					t.Errorf("neighbors of %d: %d edges, want %d", ids[1], len(nbrs), g.Degree(ids[1]))
					return
				}
			}
		}(uint64(w + 20))
	}
	wg.Wait()
}
