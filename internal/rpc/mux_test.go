package rpc

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
)

// blackholeServer speaks the v2 preface and then swallows every request
// frame without answering — the deterministic way to hold K requests in
// flight. Kill severs the listener and every accepted connection.
type blackholeServer struct {
	ln     net.Listener
	mu     sync.Mutex
	conns  []net.Conn
	frames atomic.Int64
}

func startBlackhole(t *testing.T, addr string) *blackholeServer {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	b := &blackholeServer{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			b.mu.Lock()
			b.conns = append(b.conns, c)
			b.mu.Unlock()
			go func() {
				var pre [prefaceLen]byte
				if _, err := io.ReadFull(c, pre[:]); err != nil {
					return
				}
				if _, err := parsePreface(pre[:]); err != nil {
					return
				}
				c.Write(appendPreface(pre[:0], ProtocolVersion))
				var fs frameScratch
				for {
					if _, err := fs.readFrame(c); err != nil {
						return
					}
					b.frames.Add(1)
				}
			}()
		}
	}()
	return b
}

func (b *blackholeServer) kill() {
	b.ln.Close()
	b.mu.Lock()
	for _, c := range b.conns {
		c.Close()
	}
	b.conns = nil
	b.mu.Unlock()
}

// Killing a server with K multiplexed requests in flight must fail all K
// promptly with the typed error — no hang, and no request ever receives
// another request's bytes. A real server restarted on the same address
// must then be served again, bit-identical to a local engine.
func TestMuxInFlightFailure(t *testing.T) {
	g := buildGraph(t)
	bh := startBlackhole(t, "127.0.0.1:0")
	addr := bh.ln.Addr().String()

	cl := NewClientWith(addr, ClientConfig{Timeout: 3 * time.Second})
	defer cl.Close()

	const K = 8
	errs := make(chan error, K)
	for w := 0; w < K; w++ {
		go func(seed uint64) {
			out := make([]graph.NodeID, 4)
			r := rng.New(seed)
			_, _, err := cl.sample(graph.NodeID(seed), 4, r.State(), out, time.Time{})
			errs <- err
		}(uint64(w))
	}
	// Wait until every request frame is on the server, i.e. in flight.
	deadline := time.Now().Add(2 * time.Second)
	for bh.frames.Load() < K {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests reached the server", bh.frames.Load(), K)
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	bh.kill()
	for i := 0; i < K; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrShardUnavailable) {
				t.Fatalf("in-flight request failed untyped: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request still hanging %v after the kill", time.Since(start))
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("draining %d in-flight failures took %v", K, elapsed)
	}

	// A real server on the same address serves the same client again —
	// the probe call reconnects and closes the failure circuit — and its
	// draws are bit-identical to a local store's.
	srv := NewServer(g, ServerConfig{Shards: 1, Strategy: partition.Hash, Replicas: 1})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	srv.Start(ln)
	defer srv.Close()

	local := engine.New(g, engine.Config{Shards: 1, Replicas: 1})
	var id graph.NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if g.Degree(graph.NodeID(i)) > 0 {
			id = graph.NodeID(i)
			break
		}
	}
	rr := rng.New(42)
	got := make([]graph.NodeID, 5)
	var n int
	var st [4]uint64
	deadline = time.Now().Add(5 * time.Second)
	for {
		var err error
		n, st, err = cl.sample(id, 5, rr.State(), got, time.Time{})
		if err == nil {
			break
		}
		if !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("post-restart failure untyped: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("server restarted but client never reconnected: %v", err)
		}
	}
	rl := rng.New(42)
	want := make([]graph.NodeID, 5)
	nw := local.SampleNeighborsInto(id, want, rl)
	if n != nw {
		t.Fatalf("post-restart sample wrote %d draws, local %d", n, nw)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			t.Fatalf("post-restart draw %d: remote %d, local %d", i, got[i], want[i])
		}
	}
	if st != rl.State() {
		t.Fatal("post-restart RNG state diverged from local")
	}
}

// A protocol-1 client (no preface; first bytes are a bare frame) must be
// answered loudly — an old-style error frame naming the mismatch — and
// dropped, never silently misframed.
func TestVersionMismatchOldClientLoudError(t *testing.T) {
	g := buildGraph(t)
	_, addr := startServer(t, g, ServerConfig{Shards: 1, Strategy: partition.Hash, Replicas: 1})
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	// A v1 OpInfo request: u32 length, then [op]. No preface.
	req := []byte{1, 0, 0, 0, byte(OpInfo)}
	if _, err := c.Write(req); err != nil {
		t.Fatalf("write v1 frame: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(3 * time.Second))
	var fs frameScratch
	body, err := fs.readFrame(c)
	if err != nil {
		t.Fatalf("old client got no error frame, just %v", err)
	}
	if len(body) == 0 || body[0] != statusErr {
		t.Fatalf("old client got a non-error reply (% x)", body)
	}
	msg := string(body[1:])
	if !strings.Contains(msg, "protocol version mismatch") {
		t.Fatalf("error does not name the mismatch: %q", msg)
	}
	// The connection is then closed: the next read sees EOF, not a hang.
	if _, err := fs.readFrame(c); err == nil {
		t.Fatal("server kept serving a protocol-1 connection")
	}
}

// A v2 client hitting a peer that does not speak the preface (an old
// server, or something else entirely) must fail the handshake loudly
// instead of hanging or misframing.
func TestVersionMismatchOldServerLoudError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// An old server reads the preface as a frame header, deems it
			// oversized and drops the connection.
			go func() {
				buf := make([]byte, prefaceLen)
				io.ReadFull(c, buf)
				c.Close()
			}()
		}
	}()
	cl := NewClientWith(ln.Addr().String(), ClientConfig{Timeout: 2 * time.Second})
	defer cl.Close()
	if _, err := cl.Info(); err == nil {
		t.Fatal("handshake with a preface-less server succeeded")
	} else if !errors.Is(err, ErrShardUnavailable) || !strings.Contains(err.Error(), "preface") {
		t.Fatalf("handshake failure is not loud/typed: %v", err)
	}
}

// A server speaking a different protocol version must be rejected by
// name, not negotiated with.
func TestVersionMismatchFutureServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, prefaceLen)
				if _, err := io.ReadFull(c, buf); err == nil {
					c.Write(appendPreface(buf[:0], 99))
				}
				// Leave the connection open: the client must still bail.
			}()
		}
	}()
	cl := NewClientWith(ln.Addr().String(), ClientConfig{Timeout: 2 * time.Second})
	defer cl.Close()
	if _, err := cl.Info(); err == nil {
		t.Fatal("client accepted protocol version 99")
	} else if !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("future-version failure is not loud: %v", err)
	}
}

// Hammer one multiplexed connection (Conns: 1, tiny window) from many
// goroutines — slot contention, reader-lease handoff and pipelined
// dispatch all on one socket. Every caller's draws must be bit-identical
// to a local engine consuming the same stream (run under -race).
func TestMuxSharedConnectionHammer(t *testing.T) {
	g := buildGraph(t)
	srv := NewServer(g, ServerConfig{Shards: 2, Strategy: partition.Hash, Replicas: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv.Start(ln)
	t.Cleanup(func() { srv.Close() })

	cl := NewClientWith(ln.Addr().String(), ClientConfig{Conns: 1, Window: 4})
	t.Cleanup(func() { cl.Close() })
	info, err := cl.Info()
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	routing, err := cl.Routing()
	if err != nil {
		t.Fatalf("routing: %v", err)
	}
	backends := make([]engine.ShardBackend, info.NumShards)
	for _, sh := range info.Owned {
		backends[sh.ID] = NewRemoteShard(cl, sh.ID, sh.Nodes, sh.Edges)
	}
	remote := engine.NewWithBackends(routing, backends, info.ContentDim)
	t.Cleanup(remote.Close)
	local := engine.New(g, engine.Config{Shards: 1, Replicas: 1})

	const workers, iters, k = 16, 80, 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rRemote, rLocal := rng.New(seed), rng.New(seed)
			got := make([]graph.NodeID, k)
			want := make([]graph.NodeID, k)
			bs := engine.NewBatchScratch()
			ids := make([]graph.NodeID, 8)
			gotOut := make([]graph.NodeID, len(ids)*k)
			gotNs := make([]int32, len(ids))
			wantOut := make([]graph.NodeID, len(ids)*k)
			wantNs := make([]int32, len(ids))
			for it := 0; it < iters; it++ {
				id := graph.NodeID((int(seed)*131 + it*17) % g.NumNodes())
				ng, err := remote.TrySampleNeighborsInto(id, got, rRemote)
				if err != nil {
					t.Errorf("sample: %v", err)
					return
				}
				nw := local.SampleNeighborsInto(id, want, rLocal)
				if ng != nw {
					t.Errorf("id %d: remote %d draws, local %d", id, ng, nw)
					return
				}
				for i := 0; i < nw; i++ {
					if got[i] != want[i] {
						t.Errorf("id %d draw %d: remote %d, local %d (cross-request corruption?)", id, i, got[i], want[i])
						return
					}
				}
				for i := range ids {
					ids[i] = graph.NodeID((int(seed)*37 + it*13 + i*7) % g.NumNodes())
				}
				base := rng.New(seed + uint64(it))
				if _, err := remote.SampleNeighborsBatchInto(ids, k, gotOut, gotNs, base, bs); err != nil {
					t.Errorf("batch: %v", err)
					return
				}
				baseL := rng.New(seed + uint64(it))
				if _, err := local.SampleNeighborsBatchInto(ids, k, wantOut, wantNs, baseL, nil); err != nil {
					t.Errorf("local batch: %v", err)
					return
				}
				for i := range ids {
					if gotNs[i] != wantNs[i] {
						t.Errorf("batch entry %d: remote count %d, local %d", i, gotNs[i], wantNs[i])
						return
					}
					for j := 0; j < int(wantNs[i]); j++ {
						if gotOut[i*k+j] != wantOut[i*k+j] {
							t.Errorf("batch entry %d draw %d differs (cross-request corruption?)", i, j)
							return
						}
					}
				}
			}
		}(uint64(w + 100))
	}
	wg.Wait()
}
