package rpc

import (
	"errors"
	"net"
	"testing"
	"time"
)

// An admin session against an unreachable server fails within its
// probe budget with the typed deadline error — never hanging for the
// generous operation timeout.
func TestAdminDeadlineTyped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close() // reserve a dead address

	adm := NewAdmin(addr, AdminConfig{
		Attempts:     2,
		ProbeTimeout: 300 * time.Millisecond,
		Backoff:      10 * time.Millisecond,
		OpTimeout:    time.Minute,
	})
	t.Cleanup(func() { adm.Close() })
	start := time.Now()
	_, err = adm.Reassign(0, true)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("reassign against a dead address succeeded")
	}
	if !errors.Is(err, ErrAdminDeadline) {
		t.Fatalf("error %v does not match ErrAdminDeadline", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("deadline took %v, want ≈ 2 probes × 300ms", elapsed)
	}
}

// The happy path: reassign moves a partition in and out of the served
// set, and status reports the epoch, owned partitions and member view.
func TestAdminReassignAndStatus(t *testing.T) {
	g := buildGraph(t)
	_, addr := startReplicaServer(t, g, 2, []int{0})
	adm := NewAdmin(addr, AdminConfig{})
	t.Cleanup(func() { adm.Close() })

	epoch0, owned, members, err := adm.Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if len(owned) != 1 || owned[0].ID != 0 {
		t.Fatalf("initial owned set %+v, want partition 0 only", owned)
	}
	if len(members) != 1 || members[0] != addr {
		t.Fatalf("member view %v, want [%s]", members, addr)
	}

	epoch1, err := adm.Reassign(1, true)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if epoch1 <= epoch0 {
		t.Fatalf("acquire did not bump the epoch (%d → %d)", epoch0, epoch1)
	}
	if _, owned, _, err = adm.Status(); err != nil || len(owned) != 2 {
		t.Fatalf("owned set after acquire %+v (err %v), want 2 partitions", owned, err)
	}

	epoch2, err := adm.Reassign(1, false)
	if err != nil {
		t.Fatalf("release: %v", err)
	}
	if epoch2 <= epoch1 {
		t.Fatalf("release did not bump the epoch (%d → %d)", epoch1, epoch2)
	}
	if _, owned, _, err = adm.Status(); err != nil || len(owned) != 1 {
		t.Fatalf("owned set after release %+v (err %v), want 1 partition", owned, err)
	}
}
