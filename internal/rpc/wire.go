// Package rpc puts graph shards on the other side of a TCP connection:
// the distributed deployment of §VI, where each server owns one or more
// partitions of the web-scale graph and the serving tier talks to them
// over the network. A Server owns the engine.Shard stores for the
// partitions it serves; a RemoteShard is the client-side stub that plugs
// those stores into the Engine routing layer behind the same
// engine.ShardBackend seam the in-process shards use.
//
// The protocol (version 2) is a compact binary framing over TCP with
// full-duplex multiplexing. A connection opens with an 8-byte preface
// exchange (magic + version, rejected loudly on mismatch); after that a
// frame is a little-endian uint32 body length followed by the body, and
// every body starts with a uint64 request id: a request body is
// [u64 id | op byte | payload], a response body is
// [u64 id | status byte | payload] where status 0 carries the op's
// result, status 1 an error string, and status 2 the wrong-epoch
// redirect of a drained partition. Many requests may be in flight per
// connection at once — responses are matched by id and may arrive in
// any order, so N concurrent callers share a small bounded pool of
// pipelined connections instead of checking a connection out per call.
// The server dispatches each connection's requests across a bounded
// worker group, overlapping shard reads behind one socket.
//
// Shard ownership is live: the reassign op moves partitions in and out
// of a running server's served set (a planned handoff, driven by
// zoomer-shard's admin mode), the routing-epoch op polls the server's
// current ownership, and a Cluster-assembled engine follows a migration
// automatically — the first redirected call refreshes the binding and
// retries against the new owner, with zero failed calls surfaced and
// draws bit-identical to an undisturbed cluster (the handoff tests pin
// this down).
//
// Determinism across the wire is the load-bearing property: RNG state
// (single samples) or the derived-sub-stream base (batches) travels in
// the request and every draw happens shard-side, so a remote engine is
// bit-identical to an in-process one — the loopback equivalence tests pin
// this down. The scatter-gather batch call maps one shard visit onto one
// round trip, and both ends reuse per-slot encode/decode scratch so the
// steady-state sample/batch path performs no heap allocation.
package rpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Protocol preface: immediately after dialing, the client writes the
// 8-byte preface (magic + little-endian version) and the server answers
// with its own. Either side failing the exchange closes the connection
// with a loud error instead of exchanging misframed bytes: a version-1
// client hitting a version-2 server receives an old-style error frame
// (its own framing) naming the mismatch, and a version-2 client hitting
// a pre-preface server fails the handshake instead of hanging.
const (
	// ProtocolVersion is the wire protocol version this build speaks.
	// Version 3 added the members op, the member list in routing-epoch
	// responses and the member addresses in wrong-epoch redirects.
	// Version 4 adds the idempotent graph-append op and the per-shard
	// ingest-stats section of the routing-epoch response; the framing is
	// unchanged from version 2.
	ProtocolVersion = 4
	prefaceLen      = 8
)

var prefaceMagic = [4]byte{'Z', 'M', 'R', 'P'}

// appendPreface composes the preface for the given version.
func appendPreface(b []byte, version uint32) []byte {
	b = append(b, prefaceMagic[:]...)
	return appendU32(b, version)
}

// parsePreface validates an 8-byte preface and returns the peer version.
func parsePreface(p []byte) (uint32, error) {
	if len(p) != prefaceLen || p[0] != prefaceMagic[0] || p[1] != prefaceMagic[1] ||
		p[2] != prefaceMagic[2] || p[3] != prefaceMagic[3] {
		return 0, fmt.Errorf("rpc: peer did not send the protocol preface (speaks protocol version 1?)")
	}
	return binary.LittleEndian.Uint32(p[4:8]), nil
}

// Op identifies a request type on the wire; exported so tests and
// monitoring can read per-op server counters.
type Op byte

// The request vocabulary: the four GraphService methods, the batch call
// mirroring SampleNeighborsBatchInto, the two handshake reads (metadata
// and the routing table), and the live-handoff pair — reassign (an admin
// command: acquire or drain one partition) and routing-epoch (the cheap
// ownership poll clients refresh from after a redirect).
const (
	OpInfo Op = iota + 1
	OpRouting
	OpSample
	OpBatch
	OpNeighbors
	OpFeatures
	OpContent
	OpReassign
	OpEpoch
	// OpMembers is the membership exchange (protocol v3): the request
	// optionally announces the caller's advertised address, the response
	// lists every server address this server knows. Servers announce to
	// each other with it; clients poll it to discover servers that joined
	// after dial.
	OpMembers
	// OpAppend is the idempotent durable write (protocol v4): append a
	// batch of edges to one owned shard at an exact per-shard sequence
	// number. The request is [u8 flags | u32 shard | u64 seq | edge
	// payload]; flag bit 0 marks a replica fan-out copy, which the
	// receiver applies locally without forwarding further. The response
	// is [u8 result | u64 lastSeq] — applied, duplicate (seq already
	// applied; safe retry outcome) or gap (seq beyond lastSeq+1; the
	// caller resyncs from lastSeq). A non-owner answers with the
	// wrong-epoch redirect like any other shard-targeted op.
	OpAppend
	numOps
)

// appendFlagFanout marks an OpAppend request as a replica fan-out copy:
// the receiver applies it locally and never forwards it again, so a
// replica group cannot echo appends among itself.
const appendFlagFanout = 1

// OpAppend response results.
const (
	// appendApplied: the record was WAL-logged and applied; lastSeq == seq.
	appendApplied = 0
	// appendDup: seq was already applied (an at-least-once retry landing
	// twice); nothing was written. lastSeq reports the shard's watermark.
	appendDup = 1
	// appendGap: seq is beyond lastSeq+1; nothing was written. The caller
	// must resync its sequence cache from lastSeq.
	appendGap = 2
)

// String returns the lowercase op name.
func (o Op) String() string {
	switch o {
	case OpInfo:
		return "info"
	case OpRouting:
		return "routing"
	case OpSample:
		return "sample"
	case OpBatch:
		return "batch"
	case OpNeighbors:
		return "neighbors"
	case OpFeatures:
		return "features"
	case OpContent:
		return "content"
	case OpReassign:
		return "reassign"
	case OpEpoch:
		return "routing-epoch"
	case OpMembers:
		return "members"
	case OpAppend:
		return "graph-append"
	default:
		return fmt.Sprintf("op(%d)", byte(o))
	}
}

// Reassign actions (the first payload byte of an OpReassign request).
const (
	// ReassignAcquire commands the server to load the partition's
	// CSR+alias store and start serving it.
	ReassignAcquire = 0
	// ReassignRelease commands the server to drain the partition:
	// requests already dispatched complete, subsequent ones are answered
	// with the wrong-epoch redirect.
	ReassignRelease = 1
)

const (
	statusOK  = 0
	statusErr = 1
	// statusMoved is the wrong-epoch redirect: the target partition is
	// not (or no longer) owned by this server. The payload is the
	// server's current routing epoch (u64), the shard id (u32) and —
	// protocol v3 onward — the server's member address list, so a
	// redirected client learns where the partition might have gone
	// without a separate round trip. The client surfaces the redirect as
	// engine.ErrWrongEpoch, which triggers the engine's one-shot
	// ownership refresh and retry.
	statusMoved = 2

	// maxFrame bounds a frame body; anything larger is a protocol error,
	// not a legitimate message (the largest real payloads are batch
	// responses of ~batch×k×4 bytes and degree-balanced routing tables of
	// 8 bytes per node).
	maxFrame = 1 << 28

	// readBufSize sizes the buffered reader both ends put in front of the
	// socket: large enough that a typical batch frame — and usually a few
	// pipelined ones — arrives in one kernel read. Frames larger than the
	// buffer still work (bufio reads them straight into the target).
	readBufSize = 32 << 10
)

// frameScratch is the per-worker framing state both ends reuse: the
// 4-byte length header and growable read/write buffers, so steady-state
// framing allocates nothing.
type frameScratch struct {
	hdr  [4]byte
	rbuf []byte
	wbuf []byte
}

// begin starts composing a version-2 frame body in the reusable write
// buffer, leaving the 4-byte length hole and the 8-byte request-id hole
// at the front. Append payload bytes to the returned slice, then hand it
// to writeFrame with the id the frame answers.
func (fs *frameScratch) begin(tag byte) []byte {
	b := append(fs.wbuf[:0], 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, tag)
	return b
}

// writeFrame seals the length header and request id and writes the frame
// in one call. It stores buf back into the scratch so capacity growth is
// kept. Callers serialize writes to c themselves (the server's response
// write lock; the client's per-connection write lock).
func (fs *frameScratch) writeFrame(c net.Conn, buf []byte, id uint64) error {
	fs.wbuf = buf
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	binary.LittleEndian.PutUint64(buf[4:12], id)
	_, err := c.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame body into the reusable read
// buffer and returns it (valid until the next readFrame on this scratch).
func (fs *frameScratch) readFrame(c io.Reader) ([]byte, error) {
	if _, err := io.ReadFull(c, fs.hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(fs.hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	if cap(fs.rbuf) < int(n) {
		fs.rbuf = make([]byte, n)
	}
	fs.rbuf = fs.rbuf[:n]
	if _, err := io.ReadFull(c, fs.rbuf); err != nil {
		return nil, err
	}
	return fs.rbuf, nil
}

// cursor decodes a frame body sequentially; out-of-bounds reads latch the
// bad flag (checked once at the end) instead of returning per-read
// errors, keeping decode loops branch-light and allocation-free.
type cursor struct {
	b   []byte
	off int
	bad bool
}

func (cu *cursor) u32() uint32 {
	if cu.off+4 > len(cu.b) {
		cu.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(cu.b[cu.off:])
	cu.off += 4
	return v
}

func (cu *cursor) u8() byte {
	if cu.off+1 > len(cu.b) {
		cu.bad = true
		return 0
	}
	v := cu.b[cu.off]
	cu.off++
	return v
}

func (cu *cursor) u64() uint64 {
	if cu.off+8 > len(cu.b) {
		cu.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(cu.b[cu.off:])
	cu.off += 8
	return v
}

// rest returns the undecoded tail of the body.
func (cu *cursor) rest() []byte {
	if cu.bad {
		return nil
	}
	return cu.b[cu.off:]
}

// str decodes a length-prefixed string (u32 length + raw bytes).
func (cu *cursor) str() string {
	n := cu.u32()
	if cu.bad || cu.off+int(n) > len(cu.b) {
		cu.bad = true
		return ""
	}
	s := string(cu.b[cu.off : cu.off+int(n)])
	cu.off += int(n)
	return s
}

func (cu *cursor) err() error {
	if cu.bad {
		return fmt.Errorf("rpc: truncated frame (%d bytes)", len(cu.b))
	}
	return nil
}

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// maxMembers bounds a member address list on the wire; a list larger
// than any plausible cluster is a protocol error, not a membership view.
const maxMembers = 1024

// appendAddrList encodes a member address list: u32 count, then each
// address as u32 length + raw bytes.
func appendAddrList(b []byte, addrs []string) []byte {
	b = appendU32(b, uint32(len(addrs)))
	for _, a := range addrs {
		b = appendU32(b, uint32(len(a)))
		b = append(b, a...)
	}
	return b
}

// decodeAddrList decodes a member address list written by
// appendAddrList, latching the cursor's bad flag on implausible shapes.
func decodeAddrList(cu *cursor) []string {
	count := cu.u32()
	if cu.bad || count > maxMembers {
		cu.bad = true
		return nil
	}
	if count == 0 {
		return nil
	}
	addrs := make([]string, 0, count)
	for i := uint32(0); i < count; i++ {
		a := cu.str()
		if cu.bad || len(a) > 256 {
			cu.bad = true
			return nil
		}
		addrs = append(addrs, a)
	}
	return addrs
}
