// Package rpc puts graph shards on the other side of a TCP connection:
// the distributed deployment of §VI, where each server owns one or more
// partitions of the web-scale graph and the serving tier talks to them
// over the network. A Server owns the engine.Shard stores for the
// partitions it serves; a RemoteShard is the client-side stub that plugs
// those stores into the Engine routing layer behind the same
// engine.ShardBackend seam the in-process shards use.
//
// The protocol is a compact length-prefixed binary framing over TCP. A
// frame is a little-endian uint32 body length followed by the body; a
// request body is [op byte | payload], a response body is
// [status byte | payload] where status 0 carries the op's result and
// status 1 carries an error string. One request is answered by exactly
// one response, in order, per connection; concurrency comes from the
// client's connection pool, not from multiplexing.
//
// Determinism across the wire is the load-bearing property: RNG state
// (single samples) or the derived-sub-stream base (batches) travels in
// the request and every draw happens shard-side, so a remote engine is
// bit-identical to an in-process one — the loopback equivalence tests pin
// this down. The scatter-gather batch call maps one shard visit onto one
// round trip, and both ends reuse per-connection encode/decode scratch so
// the steady-state sample/batch path performs no heap allocation.
package rpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Op identifies a request type on the wire; exported so tests and
// monitoring can read per-op server counters.
type Op byte

// The request vocabulary: the four GraphService methods, the batch call
// mirroring SampleNeighborsBatchInto, and the two handshake reads
// (metadata and the routing table).
const (
	OpInfo Op = iota + 1
	OpRouting
	OpSample
	OpBatch
	OpNeighbors
	OpFeatures
	OpContent
	numOps
)

// String returns the lowercase op name.
func (o Op) String() string {
	switch o {
	case OpInfo:
		return "info"
	case OpRouting:
		return "routing"
	case OpSample:
		return "sample"
	case OpBatch:
		return "batch"
	case OpNeighbors:
		return "neighbors"
	case OpFeatures:
		return "features"
	case OpContent:
		return "content"
	default:
		return fmt.Sprintf("op(%d)", byte(o))
	}
}

const (
	statusOK  = 0
	statusErr = 1

	// maxFrame bounds a frame body; anything larger is a protocol error,
	// not a legitimate message (the largest real payloads are batch
	// responses of ~batch×k×4 bytes and degree-balanced routing tables of
	// 8 bytes per node).
	maxFrame = 1 << 28
)

// frameScratch is the per-connection framing state both ends reuse: the
// 4-byte length header and growable read/write buffers, so steady-state
// framing allocates nothing.
type frameScratch struct {
	hdr  [4]byte
	rbuf []byte
	wbuf []byte
}

// begin starts composing a frame body in the reusable write buffer,
// leaving the 4-byte length hole at the front. Append payload bytes to
// the returned slice, then hand it to writeFrame.
func (fs *frameScratch) begin(tag byte) []byte {
	b := append(fs.wbuf[:0], 0, 0, 0, 0, tag)
	return b
}

// writeFrame seals the length header and writes the frame in one call.
// It stores buf back into the scratch so capacity growth is kept.
func (fs *frameScratch) writeFrame(c net.Conn, buf []byte) error {
	fs.wbuf = buf
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	_, err := c.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame body into the reusable read
// buffer and returns it (valid until the next readFrame on this scratch).
func (fs *frameScratch) readFrame(c net.Conn) ([]byte, error) {
	if _, err := io.ReadFull(c, fs.hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(fs.hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	if cap(fs.rbuf) < int(n) {
		fs.rbuf = make([]byte, n)
	}
	fs.rbuf = fs.rbuf[:n]
	if _, err := io.ReadFull(c, fs.rbuf); err != nil {
		return nil, err
	}
	return fs.rbuf, nil
}

// cursor decodes a frame body sequentially; out-of-bounds reads latch the
// bad flag (checked once at the end) instead of returning per-read
// errors, keeping decode loops branch-light and allocation-free.
type cursor struct {
	b   []byte
	off int
	bad bool
}

func (cu *cursor) u32() uint32 {
	if cu.off+4 > len(cu.b) {
		cu.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(cu.b[cu.off:])
	cu.off += 4
	return v
}

func (cu *cursor) u64() uint64 {
	if cu.off+8 > len(cu.b) {
		cu.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(cu.b[cu.off:])
	cu.off += 8
	return v
}

// rest returns the undecoded tail of the body.
func (cu *cursor) rest() []byte {
	if cu.bad {
		return nil
	}
	return cu.b[cu.off:]
}

func (cu *cursor) err() error {
	if cu.bad {
		return fmt.Errorf("rpc: truncated frame (%d bytes)", len(cu.b))
	}
	return nil
}

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
