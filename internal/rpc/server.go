package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/ingest"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
)

// ServerConfig sizes a shard server.
type ServerConfig struct {
	Shards   int                // total partitions of the graph
	Strategy partition.Strategy // node-to-shard assignment
	Owned    []int              // shard ids served at start (nil = all); handoffs move them later
	Replicas int                // replicas per owned shard (initial and acquired alike)
	// Locality enables BFS row renumbering within each shard
	// (partition.Options.Locality). Every server of one cluster must
	// agree on it — local indices travel in the routing blob, and the
	// reorder is deterministic, so same graph + same flag = same layout.
	Locality bool

	// Advertise is the address other cluster members and serving-tier
	// clients should reach this server at. When set, the server joins the
	// membership registry (its routing blobs carry a placement section,
	// redirects and epoch polls carry the member list); when empty the
	// server is invisible to dynamic discovery, exactly as before.
	Advertise string

	// WALDir enables durable ingestion: each owned shard logs appends to
	// a write-ahead log under <WALDir>/shard-<id> before applying them,
	// and replays the log into the freshly built store on startup and on
	// partition acquisition — a kill -9 mid-append recovers to the exact
	// pre-crash ingest epoch. Empty disables durability: appends apply
	// in memory only and die with the process.
	WALDir string
	// Fsync makes every append group-commit to disk before it is
	// acknowledged (see ingest.Options.Fsync). Meaningless without WALDir.
	Fsync bool

	// ConnWorkers bounds the concurrent request dispatch per connection
	// (default 4): a multiplexing client pipelines many requests onto one
	// socket, and this many are served at once, their responses written
	// back tagged by request id in completion order.
	ConnWorkers int
	// ConnWindow bounds the decoded-but-unserved requests buffered per
	// connection (default 64). The read loop blocks once it is full —
	// backpressure against a client whose window outruns the server.
	ConnWindow int
}

const (
	defaultConnWorkers = 4
	defaultConnWindow  = 64
	handshakeTimeout   = 5 * time.Second
)

// Server owns the in-process stores for some partitions of a graph and
// serves them over TCP. Construction does the heavy lifting of the
// paper's deployment shard-side — partitioning and alias-table builds —
// so a connecting client needs only the routing table. Every connection
// runs a preface handshake (loud protocol-version mismatch), then a read
// loop feeding a bounded per-connection worker group: pipelined requests
// dispatch concurrently and responses return tagged by request id, in
// completion order. The shard stores themselves are immutable and read
// lock-free, so dispatch concurrency scales like in-process replica
// concurrency.
//
// Ownership is dynamic: AcquirePartition and ReleasePartition (driven by
// the reassign op, i.e. zoomer-shard's admin mode) move partitions in
// and out of the served set at runtime without restarting the server.
// Each change installs a new immutable ownership snapshot behind an
// atomic pointer and bumps the routing epoch; requests already
// dispatched keep the store they resolved and complete normally, while
// requests for a partition this snapshot does not own are answered with
// the wrong-epoch redirect that tells clients to re-resolve ownership.
type Server struct {
	part        *partition.Partition
	routingBase []byte                    // epoch-0 routing blob; snapshots copy + patch it
	own         atomic.Pointer[ownership] // current epoch + served stores
	numNodes    int
	contentDim  int
	workers     int
	window      int
	replicas    int
	advertise   string
	ownMu       sync.Mutex // serializes ownership transitions

	memMu   sync.Mutex // membership registry: advertised addresses of known servers
	members map[string]struct{}

	// write path: per-shard ingest state (WAL + apply ordering), the
	// cached clients appends fan out to replica siblings over, and the
	// count of fan-out copies that could not be delivered (replica lag).
	walDir     string
	fsync      bool
	ingMu      sync.Mutex
	ingests    map[int]*shardIngest
	fanMu      sync.Mutex
	fanClients map[string]*Client
	replicaLag atomic.Int64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	opCounts [numOps]atomic.Int64
}

// shardIngest is one owned shard's write-path state. mu orders the
// dup/gap check, WAL write and delta apply of one append as a unit; the
// fan-out stage chains to fanMu (acquired before mu is released, so
// copies leave in sequence order) because mu must never be held across a
// network call — two replicas fanning out to each other would deadlock
// on each other's apply mutex. The fsync group-commit wait happens after
// both so concurrent appends coalesce into one sync. wal is nil when the
// server runs without durability (no WALDir).
type shardIngest struct {
	mu    sync.Mutex
	fanMu sync.Mutex
	wal   *ingest.WAL
}

// ownership is one immutable view of the partitions this server serves:
// the stores, the epoch that versions them, and the routing blob
// (stamped with that epoch, so connecting clients see the current one).
// Handlers load it once per request, so a request resolves its store and
// completes against it even while a reassignment installs a successor.
type ownership struct {
	epoch   uint64
	shards  map[int]*engine.Shard
	routing []byte
}

// errShardMoved is the server-side wrong-epoch outcome: the request
// targeted a partition outside the current ownership snapshot. serve
// answers it with a statusMoved redirect frame instead of a plain error.
type errShardMoved struct {
	shard int
	epoch uint64
}

func (e *errShardMoved) Error() string {
	return fmt.Sprintf("rpc: shard %d not owned by this server (routing epoch %d)", e.shard, e.epoch)
}

// NewServer partitions g and builds the owned shards' stores and alias
// tables. It panics on an invalid config (mirroring engine.New).
func NewServer(g *graph.Graph, cfg ServerConfig) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.ConnWorkers <= 0 {
		cfg.ConnWorkers = defaultConnWorkers
	}
	if cfg.ConnWindow <= 0 {
		cfg.ConnWindow = defaultConnWindow
	}
	if cfg.ConnWindow < cfg.ConnWorkers {
		// Every worker needs a slot to be able to hold a request; clamp
		// to the worker count rather than overriding an explicit bound.
		cfg.ConnWindow = cfg.ConnWorkers
	}
	part := partition.SplitOpts(g, cfg.Shards, cfg.Strategy, partition.Options{Locality: cfg.Locality})
	owned := cfg.Owned
	if owned == nil {
		owned = make([]int, cfg.Shards)
		for i := range owned {
			owned[i] = i
		}
	}
	s := &Server{
		part:       part,
		numNodes:   g.NumNodes(),
		contentDim: g.ContentDim(),
		workers:    cfg.ConnWorkers,
		window:     cfg.ConnWindow,
		replicas:   cfg.Replicas,
		advertise:  cfg.Advertise,
		walDir:     cfg.WALDir,
		fsync:      cfg.Fsync,
		ingests:    make(map[int]*shardIngest),
		conns:      make(map[net.Conn]struct{}),
		members:    make(map[string]struct{}),
	}
	if cfg.Advertise != "" {
		s.members[cfg.Advertise] = struct{}{}
	}
	shards := make(map[int]*engine.Shard, len(owned))
	for _, id := range owned {
		if id < 0 || id >= cfg.Shards {
			panic(fmt.Sprintf("rpc: owned shard %d of %d", id, cfg.Shards))
		}
		shards[id] = engine.BuildShard(part, id, cfg.Replicas)
		if err := s.openIngest(id, shards[id]); err != nil {
			// An unreadable WAL directory at boot is a deployment fault on
			// par with an invalid config; refusing to start beats serving a
			// shard whose durable history cannot be honored.
			panic(err.Error())
		}
	}
	s.own.Store(s.newOwnership(0, shards))
	return s
}

// openIngest creates shard id's write-path state, replaying its WAL into
// the freshly built store when durability is configured — the recovery
// half of crash consistency: the store's ingest epoch after replay equals
// the WAL's last durable sequence number.
func (s *Server) openIngest(id int, sh *engine.Shard) error {
	ing := &shardIngest{}
	if s.walDir != "" {
		dir := filepath.Join(s.walDir, fmt.Sprintf("shard-%d", id))
		w, recovered, err := ingest.Open(dir, ingest.Options{Fsync: s.fsync})
		if err != nil {
			return fmt.Errorf("rpc: open WAL for shard %d: %w", id, err)
		}
		for _, rec := range recovered {
			if _, _, aerr := sh.ApplyAppend(rec.Seq, rec.Edges); aerr != nil {
				w.Close()
				return fmt.Errorf("rpc: replay WAL record %d for shard %d: %w", rec.Seq, id, aerr)
			}
		}
		ing.wal = w
	}
	s.ingMu.Lock()
	s.ingests[id] = ing
	s.ingMu.Unlock()
	return nil
}

// ingestFor returns shard id's write-path state, nil once the shard has
// been released.
func (s *Server) ingestFor(id int) *shardIngest {
	s.ingMu.Lock()
	defer s.ingMu.Unlock()
	return s.ingests[id]
}

// closeIngest drops shard id's write-path state and closes its WAL.
func (s *Server) closeIngest(id int) {
	s.ingMu.Lock()
	ing := s.ingests[id]
	delete(s.ingests, id)
	s.ingMu.Unlock()
	if ing != nil && ing.wal != nil {
		ing.mu.Lock()
		ing.wal.Close()
		ing.mu.Unlock()
	}
}

// newOwnership stamps a served-store set with its epoch and the matching
// routing blob: a copy of the once-marshaled table with just the epoch
// field patched, so a reassignment of a large degree-balanced graph
// does not re-encode 8 bytes per node under the ownership lock. An
// advertising server re-marshals instead: its blob carries a placement
// section mapping each owned shard to the advertised address, and that
// section changes with ownership (transitions are rare; the re-encode
// happens at most once per reassignment).
func (s *Server) newOwnership(epoch uint64, shards map[int]*engine.Shard) *ownership {
	if s.advertise != "" {
		placement := make([][]string, s.part.NumShards())
		for id := range placement {
			if shards[id] != nil {
				placement[id] = []string{s.advertise}
			}
		}
		// Safe to mutate the shared table here: transitions serialize
		// under ownMu (or run before Start), and concurrent request
		// handlers read only the immutable owner/local arrays.
		rt := s.part.RoutingTable()
		rt.SetPlacement(placement)
		rt.SetEpoch(epoch)
		blob, err := rt.MarshalBinary()
		if err != nil {
			panic(fmt.Sprintf("rpc: marshal routing: %v", err))
		}
		return &ownership{epoch: epoch, shards: shards, routing: blob}
	}
	if s.routingBase == nil {
		blob, err := s.part.RoutingTable().MarshalBinary()
		if err != nil {
			panic(fmt.Sprintf("rpc: marshal routing: %v", err))
		}
		s.routingBase = blob
	}
	blob := append([]byte(nil), s.routingBase...)
	if err := partition.PatchEpoch(blob, epoch); err != nil {
		panic(fmt.Sprintf("rpc: stamp routing epoch: %v", err))
	}
	return &ownership{epoch: epoch, shards: shards, routing: blob}
}

// AcquirePartition loads partition id's CSR slice and alias tables and
// adds it to the served set, bumping the routing epoch — the destination
// half of a live shard handoff (reassign/acquire over the wire; run it
// on the destination before draining the source so the partition never
// goes unowned). The build happens outside any lock; requests keep being
// served throughout. Acquiring an already-owned partition is a no-op
// returning the current epoch.
func (s *Server) AcquirePartition(id int) (uint64, error) {
	if id < 0 || id >= s.part.NumShards() {
		return 0, fmt.Errorf("rpc: partition %d out of range [0,%d)", id, s.part.NumShards())
	}
	if o := s.own.Load(); o.shards[id] != nil {
		return o.epoch, nil
	}
	sh := engine.BuildShard(s.part, id, s.replicas)
	s.ownMu.Lock()
	defer s.ownMu.Unlock()
	o := s.own.Load()
	if o.shards[id] != nil {
		return o.epoch, nil // lost a race to a concurrent acquire; drop our build
	}
	// Replay the shard's durable history (if any) before the partition
	// becomes visible: the first append it serves must continue the WAL's
	// sequence, not restart it.
	if err := s.openIngest(id, sh); err != nil {
		return 0, err
	}
	shards := make(map[int]*engine.Shard, len(o.shards)+1)
	for k, v := range o.shards {
		shards[k] = v
	}
	shards[id] = sh
	next := s.newOwnership(o.epoch+1, shards)
	s.own.Store(next)
	return next.epoch, nil
}

// ReleasePartition drains partition id: it leaves the served set and the
// routing epoch bumps, so requests decoded from now on are answered with
// the wrong-epoch redirect while requests already dispatched complete
// against the store they resolved. The source half of a live handoff;
// releasing a partition this server does not own is a no-op returning
// the current epoch.
func (s *Server) ReleasePartition(id int) (uint64, error) {
	if id < 0 || id >= s.part.NumShards() {
		return 0, fmt.Errorf("rpc: partition %d out of range [0,%d)", id, s.part.NumShards())
	}
	s.ownMu.Lock()
	defer s.ownMu.Unlock()
	o := s.own.Load()
	if o.shards[id] == nil {
		return o.epoch, nil
	}
	shards := make(map[int]*engine.Shard, len(o.shards)-1)
	for k, v := range o.shards {
		if k != id {
			shards[k] = v
		}
	}
	next := s.newOwnership(o.epoch+1, shards)
	s.own.Store(next)
	// Appends decoded from now on answer with the redirect (their
	// ingestFor lookup finds nothing); the WAL closes once the state is
	// unpublished so a re-acquire reopens a consistent log.
	s.closeIngest(id)
	return next.epoch, nil
}

// Epoch returns the server's current routing epoch (0 until the first
// reassignment).
func (s *Server) Epoch() uint64 { return s.own.Load().epoch }

// Start begins accepting connections on ln (ownership transfers to the
// server; Close closes it). It returns immediately.
func (s *Server) Start(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				c.Close()
				return
			}
			s.conns[c] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go s.handle(c)
		}
	}()
}

// ListenAndServe listens on addr and starts serving.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.Start(ln)
	return nil
}

// Addr returns the listening address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener, severs every open connection (in-flight
// requests observe a closed socket — how the fault-injection tests kill a
// shard mid-batch) and waits for the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.ln = nil
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	// Handlers have drained: close the WALs (syncing their tails) and the
	// fan-out clients.
	s.ingMu.Lock()
	ings := s.ingests
	s.ingests = make(map[int]*shardIngest)
	s.ingMu.Unlock()
	for _, ing := range ings {
		if ing.wal != nil {
			ing.wal.Close()
		}
	}
	s.fanMu.Lock()
	fans := s.fanClients
	s.fanClients = nil
	s.fanMu.Unlock()
	for _, cl := range fans {
		cl.Close()
	}
	return nil
}

// ReplicaLag reports how many append fan-out copies could not be
// delivered to a replica sibling (after per-copy retry) — each one is a
// record a sibling will only regain by replaying its own WAL or being
// re-acquired.
func (s *Server) ReplicaLag() int64 { return s.replicaLag.Load() }

// OpCount reports how many requests of one op this server has served —
// the request accounting the round-trip budget tests assert against
// (one OpBatch per owning shard per scatter-gather hop).
func (s *Server) OpCount(op Op) int64 {
	if op >= numOps {
		return 0
	}
	return s.opCounts[op].Load()
}

// Advertise returns the address this server announces itself at ("" for
// a non-advertising server).
func (s *Server) Advertise() string { return s.advertise }

// Members returns the advertised addresses of every server this one
// knows — itself included when it advertises — sorted for deterministic
// wire encoding.
func (s *Server) Members() []string {
	s.memMu.Lock()
	out := make([]string, 0, len(s.members))
	for a := range s.members {
		out = append(out, a)
	}
	s.memMu.Unlock()
	sort.Strings(out)
	return out
}

// AddMembers merges advertised addresses into the membership registry.
// Empty and over-long addresses are dropped; the registry is bounded at
// maxMembers, beyond which new addresses are ignored (a registry that
// large signals an announce storm, not a cluster).
func (s *Server) AddMembers(addrs ...string) {
	s.memMu.Lock()
	defer s.memMu.Unlock()
	for _, a := range addrs {
		if a == "" || len(a) > 256 || len(s.members) >= maxMembers {
			continue
		}
		s.members[a] = struct{}{}
	}
}

// AnnounceTo registers this server with a peer over the members op and
// merges the peer's member view back — how a server joining a running
// cluster becomes discoverable: announce to any live member, and every
// client refreshing from (or redirected by) that member learns the new
// address. timeout bounds the exchange; 0 means DefaultTimeout.
func (s *Server) AnnounceTo(peer string, timeout time.Duration) error {
	if s.advertise == "" {
		return errors.New("rpc: AnnounceTo on a server without an advertise address")
	}
	cl := NewClientWith(peer, ClientConfig{Conns: 1, Timeout: timeout})
	defer cl.Close()
	theirs, err := cl.Members(s.advertise)
	if err != nil {
		return fmt.Errorf("rpc: announce to %s: %w", peer, err)
	}
	s.AddMembers(peer)
	s.AddMembers(theirs...)
	return nil
}

// OwnedShards returns the shard ids this server currently serves, in
// map order.
func (s *Server) OwnedShards() []int {
	o := s.own.Load()
	out := make([]int, 0, len(o.shards))
	for id := range o.shards {
		out = append(out, id)
	}
	return out
}

// serverConn is one dispatch worker's scratch: framing buffers plus the
// decode/sample staging reused across requests, so a healthy
// sample/batch request cycle allocates nothing server-side.
type serverConn struct {
	frameScratch
	gids  []graph.NodeID
	idx   []int32
	out   []graph.NodeID
	ns    []int32
	edges []ingest.Edge
	r     rng.RNG
}

// reqSlot is one buffered request: its id and a copy of [op | payload]
// (the read loop's frame buffer is reused for the next frame before the
// dispatch worker runs). Slot buffers are reused across requests.
type reqSlot struct {
	id  uint64
	buf []byte
}

// handshake runs the server side of the preface exchange. A peer that
// does not speak the preface — a protocol-1 client whose first bytes are
// a bare frame — is answered with an old-style error frame naming the
// mismatch (which a v1 client surfaces as a remote error) and dropped.
func (s *Server) handshake(c net.Conn) bool {
	var pre [prefaceLen]byte
	c.SetDeadline(time.Now().Add(handshakeTimeout))
	defer c.SetDeadline(time.Time{})
	// Read the 4-byte magic alone first: a protocol-1 client's first
	// bytes are a bare frame header, possibly of a request shorter than
	// the full preface, and it must not be left hanging for more bytes.
	if _, err := io.ReadFull(c, pre[:4]); err != nil {
		return false
	}
	version := uint32(0)
	if [4]byte{pre[0], pre[1], pre[2], pre[3]} == prefaceMagic {
		if _, err := io.ReadFull(c, pre[4:]); err != nil {
			return false
		}
		version = binary.LittleEndian.Uint32(pre[4:8])
	}
	if version != ProtocolVersion {
		// Name both sides: "server speaks v4, client v3" tells the operator
		// exactly which end of a mixed-version fleet is behind.
		msg := fmt.Sprintf("protocol version mismatch: server speaks v%d, client v%d; upgrade the older side", ProtocolVersion, version)
		// Old-style frame: u32 length, status byte, error text — the one
		// shape a pre-multiplexing client can decode.
		reply := make([]byte, 4, 5+len(msg))
		reply = append(reply, statusErr)
		reply = append(reply, msg...)
		binary.LittleEndian.PutUint32(reply[:4], uint32(len(reply)-4))
		c.Write(reply)
		return false
	}
	_, err := c.Write(appendPreface(pre[:0], ProtocolVersion))
	return err == nil
}

func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	if !s.handshake(c) {
		return
	}

	// Bounded per-connection dispatch: the read loop decodes frames into
	// pooled request slots (a LIFO free list keeps the warm-buffer set
	// small) and the workers serve them concurrently, writing responses
	// under a shared write lock. Workers start lazily: while the
	// connection has exactly one request outstanding and no more input
	// buffered — the request-at-a-time steady state — the read loop
	// serves inline, skipping the handoff entirely; a pipelined burst
	// spills to the worker group and overlaps.
	slots := make([]reqSlot, s.window)
	free := newSlotStack(s.window)
	var reqs chan int32
	var inflight atomic.Int32
	var wmu sync.Mutex
	var cwg sync.WaitGroup
	startWorkers := func() {
		reqs = make(chan int32, s.window)
		for w := 0; w < s.workers; w++ {
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				sc := &serverConn{}
				for idx := range reqs {
					s.serve(c, &slots[idx], sc, &wmu)
					inflight.Add(-1)
					free.push(idx)
				}
			}()
		}
	}

	var fs frameScratch
	inline := &serverConn{}
	var inlineSlot reqSlot
	br := bufio.NewReaderSize(c, readBufSize)
	for {
		body, err := fs.readFrame(br)
		if err != nil || len(body) < 9 {
			break // peer gone or corrupt framing; drop the connection
		}
		if inflight.Load() == 0 && br.Buffered() == 0 {
			// Borrowing the frame buffer is safe: the inline serve
			// completes before the next readFrame reuses it.
			inlineSlot.id = binary.LittleEndian.Uint64(body[:8])
			inlineSlot.buf = body[8:]
			s.serve(c, &inlineSlot, inline, &wmu)
			continue
		}
		idx, _ := free.pop(nil)
		sl := &slots[idx]
		sl.id = binary.LittleEndian.Uint64(body[:8])
		sl.buf = append(sl.buf[:0], body[8:]...)
		inflight.Add(1)
		if reqs == nil {
			startWorkers()
		}
		reqs <- idx
	}
	if reqs != nil {
		close(reqs)
	}
	cwg.Wait()
}

// serve dispatches one request and writes its response frame. A
// wrong-epoch outcome (the request targeted a partition outside the
// ownership snapshot) is answered with a statusMoved redirect frame
// carrying the current epoch; any other error with a statusErr frame.
func (s *Server) serve(c net.Conn, sl *reqSlot, sc *serverConn, wmu *sync.Mutex) {
	op := Op(sl.buf[0])
	if op < numOps {
		s.opCounts[op].Add(1)
	}
	resp, err := s.dispatch(op, sl.buf[1:], sc)
	if err != nil {
		var mv *errShardMoved
		if errors.As(err, &mv) {
			// The redirect carries the member view (protocol v3): the
			// partition went *somewhere*, and these addresses are where a
			// redirected client should look.
			b := sc.begin(statusMoved)
			b = appendU64(b, mv.epoch)
			b = appendU32(b, uint32(mv.shard))
			resp = appendAddrList(b, s.Members())
		} else {
			resp = append(sc.begin(statusErr), err.Error()...)
		}
	}
	wmu.Lock()
	c.SetWriteDeadline(time.Now().Add(DefaultTimeout))
	werr := sc.writeFrame(c, resp, sl.id)
	wmu.Unlock()
	if werr != nil {
		c.Close() // unblocks the read loop; the connection is done
	}
}

// shardFor routes id to its owning store within one ownership snapshot.
// A partition outside the snapshot — drained by a handoff, or a stale
// client routing view — yields the redirect error; an out-of-range node
// id a plain one.
func (s *Server) shardFor(o *ownership, id graph.NodeID) (*engine.Shard, error) {
	if id < 0 || int(id) >= s.numNodes {
		return nil, fmt.Errorf("rpc: node %d out of range [0,%d)", id, s.numNodes)
	}
	owner := s.part.Owner(id)
	sh, ok := o.shards[owner]
	if !ok {
		return nil, &errShardMoved{shard: owner, epoch: o.epoch}
	}
	return sh, nil
}

func (s *Server) dispatch(op Op, payload []byte, sc *serverConn) ([]byte, error) {
	// One ownership snapshot per request: the store it resolves stays
	// valid for the whole dispatch even if a reassignment lands meanwhile.
	o := s.own.Load()
	switch op {
	case OpInfo:
		return s.handleInfo(o, sc), nil
	case OpRouting:
		return append(sc.begin(statusOK), o.routing...), nil
	case OpSample:
		return s.handleSample(o, payload, sc)
	case OpBatch:
		return s.handleBatch(o, payload, sc)
	case OpNeighbors:
		return s.handleNeighbors(o, payload, sc)
	case OpFeatures:
		return s.handleFeatures(o, payload, sc)
	case OpContent:
		return s.handleContent(o, payload, sc)
	case OpReassign:
		return s.handleReassign(payload, sc)
	case OpEpoch:
		return s.handleEpoch(sc), nil
	case OpMembers:
		return s.handleMembers(payload, sc)
	case OpAppend:
		return s.handleAppend(o, payload, sc)
	default:
		return nil, fmt.Errorf("rpc: unknown op %d", byte(op))
	}
}

// appendOwned encodes the snapshot's served-partition triples — count,
// then (id, nodes, edges) each — the shape both Info and routing-epoch
// responses carry.
func (s *Server) appendOwned(b []byte, o *ownership) []byte {
	b = appendU32(b, uint32(len(o.shards)))
	for id := range o.shards {
		b = appendU32(b, uint32(id))
		b = appendU32(b, uint32(s.part.Shards[id].NumNodes()))
		b = appendU32(b, uint32(s.part.Shards[id].NumEdges()))
	}
	return b
}

func (s *Server) handleInfo(o *ownership, sc *serverConn) []byte {
	b := sc.begin(statusOK)
	b = appendU32(b, uint32(s.numNodes))
	b = appendU32(b, uint32(s.contentDim))
	b = appendU32(b, uint32(s.part.NumShards()))
	b = appendU32(b, uint32(s.part.Strategy()))
	return s.appendOwned(b, o)
}

// handleReassign executes an admin acquire/release command and answers
// with the resulting epoch.
func (s *Server) handleReassign(payload []byte, sc *serverConn) ([]byte, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("rpc: empty reassign request")
	}
	action := payload[0]
	cu := cursor{b: payload[1:]}
	shard := int(cu.u32())
	if err := cu.err(); err != nil {
		return nil, err
	}
	var epoch uint64
	var err error
	switch action {
	case ReassignAcquire:
		epoch, err = s.AcquirePartition(shard)
	case ReassignRelease:
		epoch, err = s.ReleasePartition(shard)
	default:
		return nil, fmt.Errorf("rpc: unknown reassign action %d", action)
	}
	if err != nil {
		return nil, err
	}
	return appendU64(sc.begin(statusOK), epoch), nil
}

// handleEpoch answers the ownership poll: current epoch plus the served
// partitions — enough for a client to rebind moved shards without
// re-fetching the routing blob — the member view (protocol v3), so every
// poll doubles as membership discovery, and the per-shard ingest rows
// (protocol v4), so every poll doubles as write-path observability.
func (s *Server) handleEpoch(sc *serverConn) []byte {
	o := s.own.Load()
	b := sc.begin(statusOK)
	b = appendU64(b, o.epoch)
	b = s.appendOwned(b, o)
	b = appendAddrList(b, s.Members())
	return s.appendIngest(b, o)
}

// appendIngest encodes the protocol-v4 ingest section of the epoch
// response: one row per owned shard, in shard order — sequence watermark,
// delta-layer shape, and (when durable) WAL segment/fsync counters with
// the fsync latency histogram.
func (s *Server) appendIngest(b []byte, o *ownership) []byte {
	ids := make([]int, 0, len(o.shards))
	for id := range o.shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	b = appendU32(b, uint32(len(ids)))
	for _, id := range ids {
		st, _ := o.shards[id].IngestStats()
		if ing := s.ingestFor(id); ing != nil && ing.wal != nil {
			ws := ing.wal.Stats()
			st.WALSegments = ws.Segments
			st.Fsyncs = ws.Fsyncs
			st.FsyncNanos = ws.FsyncNanos
			st.FsyncHist = ws.FsyncHist
		}
		b = appendU32(b, uint32(id))
		b = appendU64(b, st.Seq)
		b = appendU32(b, uint32(st.DeltaNodes))
		b = appendU64(b, st.DeltaEdges)
		b = appendU64(b, st.Compactions)
		b = appendU32(b, uint32(st.WALSegments))
		b = appendU64(b, st.Fsyncs)
		b = appendU64(b, st.FsyncNanos)
		b = appendU32(b, uint32(len(st.FsyncHist)))
		for _, c := range st.FsyncHist {
			b = appendU64(b, c)
		}
	}
	return b
}

// handleMembers runs the membership exchange: a non-empty announce joins
// the registry, and the response is the current member view.
func (s *Server) handleMembers(payload []byte, sc *serverConn) ([]byte, error) {
	cu := cursor{b: payload}
	announce := cu.str()
	if err := cu.err(); err != nil {
		return nil, err
	}
	if announce != "" {
		s.AddMembers(announce)
	}
	return appendAddrList(sc.begin(statusOK), s.Members()), nil
}

func (s *Server) handleSample(o *ownership, payload []byte, sc *serverConn) ([]byte, error) {
	cu := cursor{b: payload}
	id := graph.NodeID(cu.u32())
	k := int(cu.u32())
	var st [4]uint64
	for i := range st {
		st[i] = cu.u64()
	}
	if err := cu.err(); err != nil {
		return nil, err
	}
	if k <= 0 || k > 1<<20 {
		return nil, fmt.Errorf("rpc: sample k=%d out of range", k)
	}
	sh, err := s.shardFor(o, id)
	if err != nil {
		return nil, err
	}
	if cap(sc.out) < k {
		sc.out = make([]graph.NodeID, k)
	}
	// The caller's stream continues here: restore its state, draw
	// shard-side exactly as an in-process call would, hand the advanced
	// state back.
	sc.r.SetState(st)
	n := sh.SampleNeighborsInto(id, sc.out[:k], &sc.r)
	b := sc.begin(statusOK)
	for _, w := range sc.r.State() {
		b = appendU64(b, w)
	}
	b = appendU32(b, uint32(n))
	for _, v := range sc.out[:n] {
		b = appendU32(b, uint32(v))
	}
	return b, nil
}

func (s *Server) handleBatch(o *ownership, payload []byte, sc *serverConn) ([]byte, error) {
	cu := cursor{b: payload}
	base := cu.u64()
	k := int(cu.u32())
	count := int(cu.u32())
	if cu.bad || k <= 0 || k > 1<<20 || count <= 0 || count > maxFrame/8 {
		return nil, fmt.Errorf("rpc: bad batch header k=%d count=%d", k, count)
	}
	if cap(sc.gids) < count {
		sc.gids = make([]graph.NodeID, count)
		sc.idx = make([]int32, count)
	}
	gids, idx := sc.gids[:count], sc.idx[:count]
	maxIdx := int32(0)
	for j := 0; j < count; j++ {
		idx[j] = int32(cu.u32())
		gids[j] = graph.NodeID(cu.u32())
		if idx[j] > maxIdx {
			maxIdx = idx[j]
		}
		if idx[j] < 0 {
			return nil, fmt.Errorf("rpc: negative batch index %d", idx[j])
		}
	}
	if err := cu.err(); err != nil {
		return nil, err
	}
	// Bound the staging the client's entry indices imply: a legitimate
	// batch response carries ~(maxIdx+1)*k draws, so anything past the
	// frame budget is a malformed request, not a big batch.
	if (int64(maxIdx)+1)*int64(k) > maxFrame/4 {
		return nil, fmt.Errorf("rpc: batch index %d with k=%d exceeds frame budget", maxIdx, k)
	}
	// One batch request is one shard visit: every entry must live on the
	// same owned shard (the client stub groups per shard before calling).
	sh, err := s.shardFor(o, gids[0])
	if err != nil {
		return nil, err
	}
	owner := s.part.Owner(gids[0])
	for _, id := range gids[1:] {
		if id < 0 || int(id) >= s.numNodes || s.part.Owner(id) != owner {
			return nil, fmt.Errorf("rpc: batch mixes shards (%d and node %d)", owner, id)
		}
	}
	// Stage draws in the global-batch layout the shard method writes
	// (idx are the client's entry indices, so seeds — and therefore
	// draws — are bit-identical to an in-process scatter-gather visit).
	need := (int(maxIdx) + 1) * k
	if cap(sc.out) < need {
		sc.out = make([]graph.NodeID, need)
	}
	if cap(sc.ns) < int(maxIdx)+1 {
		sc.ns = make([]int32, maxIdx+1)
	}
	out, ns := sc.out[:need], sc.ns[:maxIdx+1]
	total, err := sh.SampleBatchInto(gids, idx, base, k, out, ns)
	if err != nil {
		return nil, err
	}
	b := sc.begin(statusOK)
	b = appendU32(b, uint32(total))
	for j := 0; j < count; j++ {
		n := ns[idx[j]]
		b = appendU32(b, uint32(n))
		lo := int(idx[j]) * k
		for _, v := range out[lo : lo+int(n)] {
			b = appendU32(b, uint32(v))
		}
	}
	return b, nil
}

func (s *Server) handleNeighbors(o *ownership, payload []byte, sc *serverConn) ([]byte, error) {
	cu := cursor{b: payload}
	id := graph.NodeID(cu.u32())
	if err := cu.err(); err != nil {
		return nil, err
	}
	sh, err := s.shardFor(o, id)
	if err != nil {
		return nil, err
	}
	nbrs := sh.Neighbors(id)
	b := sc.begin(statusOK)
	b = appendU32(b, uint32(len(nbrs)))
	for _, e := range nbrs {
		b = appendU32(b, uint32(e.To))
		b = appendU32(b, uint32(e.Type))
		b = appendU32(b, math.Float32bits(e.Weight))
	}
	return b, nil
}

func (s *Server) handleFeatures(o *ownership, payload []byte, sc *serverConn) ([]byte, error) {
	cu := cursor{b: payload}
	id := graph.NodeID(cu.u32())
	if err := cu.err(); err != nil {
		return nil, err
	}
	sh, err := s.shardFor(o, id)
	if err != nil {
		return nil, err
	}
	fs := sh.Features(id)
	b := sc.begin(statusOK)
	b = appendU32(b, uint32(len(fs)))
	for _, f := range fs {
		b = appendU32(b, uint32(f))
	}
	return b, nil
}

// IngestStats reports every owned shard's write-path state in shard
// order: delta-layer shape from the store, WAL counters from the log.
func (s *Server) IngestStats() []engine.IngestStats {
	o := s.own.Load()
	ids := make([]int, 0, len(o.shards))
	for id := range o.shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]engine.IngestStats, 0, len(ids))
	for _, id := range ids {
		st, _ := o.shards[id].IngestStats()
		if ing := s.ingestFor(id); ing != nil && ing.wal != nil {
			ws := ing.wal.Stats()
			st.WALSegments = ws.Segments
			st.Fsyncs = ws.Fsyncs
			st.FsyncNanos = ws.FsyncNanos
			st.FsyncHist = ws.FsyncHist
		}
		out = append(out, st)
	}
	return out
}

// handleAppend serves the idempotent durable write (protocol v4):
// validate, WAL-log, apply to the delta layer, fan out to replica
// siblings, then group-commit — acknowledging only once the record is as
// durable as the configuration promises. The dup/gap check and the
// WAL+apply run as a unit under the shard's ingest mutex, so concurrent
// writers serialize into one strictly sequenced history; fan-out chains
// to its own mutex and the fsync wait happens last so syncs coalesce.
func (s *Server) handleAppend(o *ownership, payload []byte, sc *serverConn) ([]byte, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("rpc: empty append request")
	}
	flags := payload[0]
	cu := cursor{b: payload[1:]}
	shard := int(cu.u32())
	seq := cu.u64()
	count := int(cu.u32())
	if cu.bad || count <= 0 || count > ingest.MaxRecordEdges {
		return nil, fmt.Errorf("rpc: bad append header (%d edges)", count)
	}
	if cap(sc.edges) < count {
		sc.edges = make([]ingest.Edge, count)
	}
	edges := sc.edges[:count]
	for i := range edges {
		edges[i] = ingest.Edge{
			Src:    graph.NodeID(cu.u32()),
			Dst:    graph.NodeID(cu.u32()),
			Type:   graph.EdgeType(cu.u8()),
			Weight: math.Float32frombits(cu.u32()),
		}
	}
	if err := cu.err(); err != nil {
		return nil, err
	}
	if shard < 0 || shard >= s.part.NumShards() {
		return nil, fmt.Errorf("rpc: append shard %d out of range [0,%d)", shard, s.part.NumShards())
	}
	if seq == 0 {
		return nil, fmt.Errorf("rpc: append sequence numbers start at 1")
	}
	sh, ok := o.shards[shard]
	if !ok {
		return nil, &errShardMoved{shard: shard, epoch: o.epoch}
	}
	// Validate before the WAL write: the log must never hold a record
	// replay would refuse.
	if err := sh.ValidateAppend(edges); err != nil {
		return nil, err
	}
	ing := s.ingestFor(shard)
	if ing == nil {
		// Released between the snapshot load and here; the current epoch
		// tells the client its view is stale.
		return nil, &errShardMoved{shard: shard, epoch: s.own.Load().epoch}
	}

	ing.mu.Lock()
	cur := sh.LastAppliedSeq()
	if seq <= cur {
		ing.mu.Unlock()
		b := sc.begin(statusOK)
		b = append(b, appendDup)
		return appendU64(b, cur), nil
	}
	if seq != cur+1 {
		ing.mu.Unlock()
		b := sc.begin(statusOK)
		b = append(b, appendGap)
		return appendU64(b, cur), nil
	}
	var commit int64
	if ing.wal != nil {
		var werr error
		commit, werr = ing.wal.Write(seq, edges)
		if werr != nil {
			ing.mu.Unlock()
			return nil, werr
		}
	}
	if _, _, aerr := sh.ApplyAppend(seq, edges); aerr != nil {
		// Unreachable short of a bug: validation ran pre-WAL and the
		// sequence was checked under this mutex. Surface loudly — the WAL
		// now holds a record the store refused.
		ing.mu.Unlock()
		return nil, fmt.Errorf("rpc: apply after WAL write: %w", aerr)
	}
	if flags&appendFlagFanout == 0 {
		// Chain into the fan-out stage before releasing the apply mutex:
		// copies leave in sequence order, so a healthy sibling never sees
		// a gap, yet no mutex a fan-out copy needs at the receiver is held
		// across the network call. The cost — replica RTTs serialize this
		// shard's writers — is the price of not needing a per-sibling
		// reorder buffer; lagging siblings are counted, logged and left to
		// WAL replay rather than retried forever.
		ing.fanMu.Lock()
		ing.mu.Unlock()
		s.fanoutAppend(shard, seq, edges)
		ing.fanMu.Unlock()
	} else {
		ing.mu.Unlock()
	}
	if ing.wal != nil {
		if err := ing.wal.Sync(commit); err != nil {
			// The record is applied in memory but its durability is void;
			// the sticky WAL failure makes every later append fail typed.
			return nil, err
		}
	}
	b := sc.begin(statusOK)
	b = append(b, appendApplied)
	return appendU64(b, seq), nil
}

// fanClient returns (creating on first use) the cached client for
// fan-out copies to peer.
func (s *Server) fanClient(peer string) *Client {
	s.fanMu.Lock()
	defer s.fanMu.Unlock()
	if s.fanClients == nil {
		s.fanClients = make(map[string]*Client)
	}
	cl := s.fanClients[peer]
	if cl == nil {
		cl = NewClientWith(peer, ClientConfig{Conns: 1})
		s.fanClients[peer] = cl
	}
	return cl
}

// fanoutAppend forwards one applied record to every known sibling with
// bounded retry. A sibling that redirects (does not serve the shard) is
// not a replica and is skipped; one that answers gap is lagging (it
// missed earlier records) and will catch up from its own WAL or a
// re-acquire; transport failures get one fresh-connection retry. Lag and
// delivery failures feed the replicaLag counter and the log — durability
// of the primary's ack never depends on sibling delivery.
func (s *Server) fanoutAppend(shard int, seq uint64, edges []ingest.Edge) {
	if s.advertise == "" {
		return
	}
	for _, peer := range s.Members() {
		if peer == s.advertise {
			continue
		}
		cl := s.fanClient(peer)
		var lastErr error
		delivered := false
		for attempt := 0; attempt < 2 && !delivered; attempt++ {
			res, peerSeq, err := cl.appendOnce(shard, seq, edges, true)
			switch {
			case err == nil && (res == appendApplied || res == appendDup):
				delivered = true
			case err == nil: // gap: the sibling is behind
				lastErr = fmt.Errorf("replica behind at seq %d", peerSeq)
			case errors.Is(err, engine.ErrWrongEpoch):
				delivered = true // not a replica of this shard; nothing to forward
			default:
				lastErr = err
			}
		}
		if !delivered {
			s.replicaLag.Add(1)
			Logf("rpc: append fan-out to %s (shard %d, seq %d) failed: %v", peer, shard, seq, lastErr)
		}
	}
}

func (s *Server) handleContent(o *ownership, payload []byte, sc *serverConn) ([]byte, error) {
	cu := cursor{b: payload}
	id := graph.NodeID(cu.u32())
	if err := cu.err(); err != nil {
		return nil, err
	}
	sh, err := s.shardFor(o, id)
	if err != nil {
		return nil, err
	}
	content := sh.Content(id)
	b := sc.begin(statusOK)
	if content == nil {
		b = appendU32(b, 0)
		return b, nil
	}
	b = appendU32(b, 1)
	b = appendU32(b, uint32(len(content)))
	for _, v := range content {
		b = appendU32(b, math.Float32bits(v))
	}
	return b, nil
}
