package rpc

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zoomer/internal/partition"
)

// The circuit opens after FailThreshold consecutive transport failures,
// refuses calls typed while open, and closes again the moment a probe
// reaches a server restarted on the same address.
func TestCircuitAcrossServerRestart(t *testing.T) {
	g := buildGraph(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	srv := NewServer(g, ServerConfig{Shards: 2, Strategy: partition.Hash, Replicas: 1})
	srv.Start(ln)

	cl := NewClientWith(addr, ClientConfig{Conns: 1, Timeout: 500 * time.Millisecond, FailThreshold: 3})
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.Info(); err != nil {
		t.Fatalf("warm info: %v", err)
	}
	if !cl.Healthy() {
		t.Fatal("healthy client reports unhealthy")
	}

	srv.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Info(); err == nil {
			t.Fatalf("call %d against dead server succeeded", i)
		}
	}
	if cl.Healthy() {
		t.Fatal("circuit did not open after threshold failures")
	}
	if _, err := cl.Info(); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("open-circuit call error %v, want ErrShardUnavailable", err)
	}

	// Restart on the same address: the next call is admitted as the
	// probe, reaches the new server and closes the circuit.
	var ln2 net.Listener
	for i := 0; i < 40; i++ {
		if ln2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	srv2 := NewServer(g, ServerConfig{Shards: 2, Strategy: partition.Hash, Replicas: 1})
	srv2.Start(ln2)
	t.Cleanup(func() { srv2.Close() })

	if _, err := cl.Info(); err != nil {
		t.Fatalf("probe against restarted server: %v", err)
	}
	if !cl.Healthy() {
		t.Fatal("circuit did not close after a successful probe")
	}
}

// An idle circuit decays: after breakerDecay with no traffic the stale
// outage information is discarded — Healthy flips back and the next
// call dials freely (half-open) instead of failing typed.
func TestCircuitIdleDecay(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close() // reserve a dead address

	cl := NewClientWith(addr, ClientConfig{Conns: 1, Timeout: 200 * time.Millisecond, FailThreshold: 2})
	t.Cleanup(func() { cl.Close() })
	for i := 0; i < 2; i++ {
		if _, err := cl.Info(); err == nil {
			t.Fatal("call against dead address succeeded")
		}
	}
	if cl.Healthy() {
		t.Fatal("circuit did not open")
	}

	time.Sleep(breakerDecay + 100*time.Millisecond)
	if !cl.Healthy() {
		t.Fatal("idle circuit did not decay")
	}

	// The decayed circuit admits calls freely again: one more failure
	// resets the count to 1 (below threshold), not straight back to open.
	if _, err := cl.Info(); err == nil {
		t.Fatal("call against dead address succeeded after decay")
	}
	if !cl.Healthy() {
		t.Fatal("a single post-decay failure re-opened the circuit below threshold")
	}
	if _, err := cl.Info(); err == nil {
		t.Fatal("call against dead address succeeded")
	}
	if cl.Healthy() {
		t.Fatal("circuit did not re-open at threshold after decay")
	}
}

// While the circuit is open, concurrent callers adopt one probe's
// outcome instead of dialing per caller: a stalled server costs the
// fleet one probe (bounded by the call timeout), and every waiter fails
// typed without ever touching the network.
func TestCircuitWaiterAdoption(t *testing.T) {
	bh := startBlackhole(t, "127.0.0.1:0")
	t.Cleanup(bh.kill)
	addr := bh.ln.Addr().String()
	accepts := func() int {
		bh.mu.Lock()
		defer bh.mu.Unlock()
		return len(bh.conns)
	}

	cl := NewClientWith(addr, ClientConfig{Conns: 1, Timeout: 250 * time.Millisecond, FailThreshold: 1})
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.Info(); err == nil {
		t.Fatal("call against blackhole succeeded")
	}
	if cl.Healthy() {
		t.Fatal("circuit did not open at threshold 1")
	}
	before := accepts()

	const callers = 16
	var (
		wg    sync.WaitGroup
		typed atomic.Int64
	)
	start := time.Now()
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.Info()
			if errors.Is(err, ErrShardUnavailable) {
				typed.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if got := typed.Load(); got != callers {
		t.Fatalf("%d/%d waiters failed typed", got, callers)
	}
	// Unguarded, 16 callers × 2 dial attempts would land 32 connections.
	// Waiter adoption bounds it to the probe's attempts (plus at most a
	// couple of stragglers that became the next probe).
	if dialed := accepts() - before; dialed > 6 {
		t.Fatalf("%d connections dialed by %d callers behind an open circuit", dialed, callers)
	}
	// And nobody serialized behind per-caller timeouts.
	if elapsed > 4*250*time.Millisecond {
		t.Fatalf("waiters took %v, want ≈ one probe timeout", elapsed)
	}
}
