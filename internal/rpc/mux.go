package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// muxConn is one full-duplex multiplexed connection: a fixed window of
// in-flight request slots, writes serialized under a lock (the writer
// role), and the reader role passed between awaiting callers as a lease
// (leader/follower): whoever holds the lease reads frames off the
// socket, completing other callers' slots by request id as they fly by,
// and hands the role on when its own response arrives. No dedicated
// reader goroutine exists, so a caller awaiting its response blocks
// directly in the kernel read — one wakeup, not a netpoll wake plus a
// channel handoff — and a response that has already landed in the
// kernel buffer is consumed without blocking at all. The request id on
// the wire is the slot index, so lookup is an array read and a slot is
// reused only after its caller has consumed the response — no id map,
// no allocation at steady state.
//
// Failure is connection-granular: any transport error (read, write, or a
// caller's deadline expiring) kills the whole connection and delivers
// the error to every in-flight slot exactly once — a pipelined request
// never hangs on a dead peer and never receives another request's bytes.
type muxConn struct {
	c       net.Conn
	br      *bufio.Reader // buffered view of c, owned by the lease holder
	timeout time.Duration
	onMoved func(addrs []string) // membership hook for redirect addresses; may be nil

	slots []muxSlot
	free  *slotStack    // indices of slots not in flight (LIFO)
	lease chan struct{} // buffered 1: the reader-role token
	rhdr  [12]byte      // frame header scratch, owned by the lease holder

	wmu  sync.Mutex // serializes request frame writes
	dead atomic.Bool

	emu  sync.Mutex
	errp error // first transport error, recorded before dead is set
}

// muxSlot is one in-flight request's state. The caller owns req/resp/err
// from acquisition until it returns the slot to the free list; pending
// marks the window between frame write and response delivery, during
// which exactly one completer (the reader, or the connection's failure
// path) wins the compare-and-swap and signals done.
type muxSlot struct {
	idx     int32
	pending atomic.Bool
	req     []byte // composed request frame, capacity reused
	resp    []byte // response body (status byte + payload), capacity reused
	err     error
	done    chan struct{} // buffered 1; one signal per pending request
}

// errMuxTimeout marks a caller-side deadline expiry; it kills the
// connection (a peer that stopped answering one request cannot be
// trusted with the others).
var errMuxTimeout = errors.New("rpc: request timed out")

// dialMux dials addr, performs the preface exchange and starts the
// reader. window bounds the in-flight requests on this connection;
// onMoved (may be nil) receives redirect-carried member addresses.
func dialMux(addr string, window int, timeout time.Duration, onMoved func([]string)) (*muxConn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if err := c.SetDeadline(time.Now().Add(timeout)); err != nil {
		c.Close()
		return nil, err
	}
	var pre [prefaceLen]byte
	if _, err := c.Write(appendPreface(pre[:0], ProtocolVersion)); err != nil {
		c.Close()
		return nil, fmt.Errorf("protocol preface: %w", err)
	}
	if _, err := io.ReadFull(c, pre[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("protocol preface not acknowledged (server speaks an older protocol?): %w", err)
	}
	v, err := parsePreface(pre[:])
	if err != nil {
		c.Close()
		return nil, err
	}
	if v != ProtocolVersion {
		c.Close()
		return nil, fmt.Errorf("rpc: protocol version mismatch: server speaks v%d, client v%d", v, ProtocolVersion)
	}
	c.SetDeadline(time.Time{})
	// Buffered reads: one kernel read typically delivers a whole frame —
	// often several pipelined ones — instead of paying a syscall each for
	// header and body.
	mc := &muxConn{c: c, br: bufio.NewReaderSize(c, readBufSize), timeout: timeout,
		onMoved: onMoved,
		slots:   make([]muxSlot, window), free: newSlotStack(window),
		lease: make(chan struct{}, 1)}
	for i := range mc.slots {
		mc.slots[i].idx = int32(i)
		mc.slots[i].done = make(chan struct{}, 1)
	}
	mc.lease <- struct{}{} // the reader role starts free
	return mc, nil
}

// slotStack is a LIFO free list of slot indices with a semaphore for
// bounded blocking acquisition. LIFO matters: steady state keeps
// reusing the same few just-released slots, so their request/response
// buffers stay grown and warm instead of rotating through every slot in
// the window.
type slotStack struct {
	mu    sync.Mutex
	idxs  []int32
	avail chan struct{}
}

func newSlotStack(n int) *slotStack {
	s := &slotStack{idxs: make([]int32, 0, n), avail: make(chan struct{}, n)}
	for i := n - 1; i >= 0; i-- {
		s.push(int32(i))
	}
	return s
}

// pop blocks for a free index until timeout fires (a nil timeout blocks
// indefinitely). A token on avail guarantees the stack is non-empty.
func (s *slotStack) pop(timeout <-chan time.Time) (int32, bool) {
	select {
	case <-s.avail:
	case <-timeout:
		return 0, false
	}
	s.mu.Lock()
	i := s.idxs[len(s.idxs)-1]
	s.idxs = s.idxs[:len(s.idxs)-1]
	s.mu.Unlock()
	return i, true
}

// tryPop takes a free index only if one is available right now.
func (s *slotStack) tryPop() (int32, bool) {
	select {
	case <-s.avail:
	default:
		return 0, false
	}
	s.mu.Lock()
	i := s.idxs[len(s.idxs)-1]
	s.idxs = s.idxs[:len(s.idxs)-1]
	s.mu.Unlock()
	return i, true
}

func (s *slotStack) push(i int32) {
	s.mu.Lock()
	s.idxs = append(s.idxs, i)
	s.mu.Unlock()
	s.avail <- struct{}{}
}

// transportErr returns the error that killed the connection.
func (mc *muxConn) transportErr() error {
	mc.emu.Lock()
	defer mc.emu.Unlock()
	if mc.errp != nil {
		return mc.errp
	}
	return errors.New("rpc: connection closed")
}

// fail kills the connection: records err, closes the socket (unblocking
// the reader and any blocked write) and delivers err to every in-flight
// slot that no other completer has claimed. Safe to call concurrently;
// each pending slot is signaled exactly once across all completers.
func (mc *muxConn) fail(err error) {
	mc.emu.Lock()
	if mc.errp == nil {
		mc.errp = err
	}
	mc.emu.Unlock()
	mc.dead.Store(true)
	mc.c.Close()
	for i := range mc.slots {
		sl := &mc.slots[i]
		if sl.pending.CompareAndSwap(true, false) {
			sl.err = mc.transportErr()
			sl.done <- struct{}{}
		}
	}
}

// close tears the connection down without a pending caller (pool
// shutdown / replacement of a dead connection).
func (mc *muxConn) close() { mc.fail(errors.New("rpc: client closed")) }

// unlease returns the reader-role token.
func (mc *muxConn) unlease() { mc.lease <- struct{}{} }

// readOne demultiplexes a single response frame while holding the
// lease. It claims the target slot (winning the pending CAS) before
// reading the body directly into the slot's buffer, so a slot's
// response bytes are never shared with another request and the failure
// path cannot race the copy. A completed foreign slot is signaled; the
// holder's own slot (sl == own) is not — the holder consumes the result
// directly. A non-nil error obliges the caller to fail the connection;
// any slot claimed by the failed read has its outcome recorded already.
// d bounds the kernel read — the connection timeout, or the holder's
// smaller per-call budget; either way a read-deadline expiry fails the
// connection, so a shortened read changes when the teardown happens,
// not whether it does.
func (mc *muxConn) readOne(own *muxSlot, d time.Duration) (mine bool, err error) {
	mc.c.SetReadDeadline(time.Now().Add(d))
	if _, err := io.ReadFull(mc.br, mc.rhdr[:]); err != nil { // u32 length + u64 request id
		return false, err
	}
	n := int(binary.LittleEndian.Uint32(mc.rhdr[0:4]))
	id := binary.LittleEndian.Uint64(mc.rhdr[4:12])
	if n < 9 || n > maxFrame || id >= uint64(len(mc.slots)) {
		return false, fmt.Errorf("rpc: malformed response frame (len %d, id %d)", n, id)
	}
	sl := &mc.slots[id]
	if !sl.pending.CompareAndSwap(true, false) {
		return false, fmt.Errorf("rpc: response for request %d not in flight", id)
	}
	body := n - 8
	if cap(sl.resp) < body {
		sl.resp = make([]byte, body)
	}
	sl.resp = sl.resp[:body]
	if _, rerr := io.ReadFull(mc.br, sl.resp); rerr != nil {
		sl.err = rerr
		if sl != own {
			sl.done <- struct{}{}
		}
		return sl == own, rerr
	}
	sl.err = nil
	if sl == own {
		return true, nil
	}
	sl.done <- struct{}{}
	return false, nil
}

// acquire checks a free slot out of the window, composing the frame
// prefix ([len hole | request id | op]) into the slot's request buffer.
// It blocks while the window is full — backpressure, bounded by ct
// armed with d (the connection timeout, or a caller deadline's smaller
// remaining budget). Failing to win a slot sends nothing, so a
// deadline-bounded caller that times out here has not perturbed the
// connection at all.
func (mc *muxConn) acquire(op Op, ct *callTimer, d time.Duration) (*muxSlot, []byte, error) {
	idx, ok := mc.free.pop(ct.after(d))
	if !ok {
		return nil, nil, errMuxTimeout
	}
	ct.settle()
	sl := &mc.slots[idx]
	b := append(sl.req[:0], 0, 0, 0, 0)
	b = appendU64(b, uint64(idx))
	b = append(b, byte(op))
	return sl, b, nil
}

// tryAcquire is acquire without blocking: it fails immediately when the
// window is full. The async start path uses it so a caller holding one
// slot never blocks waiting for another — the hold-and-wait that would
// deadlock a full window of multi-shard callers.
func (mc *muxConn) tryAcquire(op Op) (*muxSlot, []byte, bool) {
	idx, ok := mc.free.tryPop()
	if !ok {
		return nil, nil, false
	}
	sl := &mc.slots[idx]
	b := append(sl.req[:0], 0, 0, 0, 0)
	b = appendU64(b, uint64(idx))
	b = append(b, byte(op))
	return sl, b, true
}

// release returns a slot whose response has been fully consumed to the
// free list.
func (mc *muxConn) release(sl *muxSlot) { mc.free.push(sl.idx) }

// send seals and writes the composed request frame, marking the slot in
// flight. This is the pipelining half: the caller regains control the
// moment the frame is on the wire and may send to other shards before
// awaiting any response. On error the slot is already released.
func (mc *muxConn) send(sl *muxSlot, req []byte) error {
	sl.req = req
	binary.LittleEndian.PutUint32(req[0:4], uint32(len(req)-4))
	sl.pending.Store(true)
	if mc.dead.Load() {
		// The connection died before this request was written. Either we
		// reclaim the slot ourselves or the failure path just did.
		if !sl.pending.CompareAndSwap(true, false) {
			<-sl.done
		}
		mc.release(sl)
		return mc.transportErr()
	}
	mc.wmu.Lock()
	mc.c.SetWriteDeadline(time.Now().Add(mc.timeout))
	_, werr := mc.c.Write(req)
	mc.wmu.Unlock()
	if werr != nil {
		mc.fail(werr)
		<-sl.done // fail (or the reader) delivered exactly one signal
		mc.release(sl)
		return mc.transportErr()
	}
	return nil
}

// await waits for a sent slot's response, serving as the connection's
// reader whenever the role is free (see muxConn). On success it returns
// the response payload with the status byte stripped — valid until the
// caller releases the slot. A statusErr answer comes back as
// *remoteError (connection healthy, slot already released); any
// transport failure or timeout kills the connection, releases the slot
// and returns the error. d bounds the wait (the connection timeout, or a
// caller deadline's smaller remaining budget); a request already on the
// wire cannot be abandoned without orphaning its window slot, so a
// deadline expiring mid-flight tears the connection down exactly like
// the static timeout — the peer held a response past a caller's budget.
// The lease holder's kernel reads stay bounded by the connection
// timeout, so a short per-call budget can overshoot by at most one
// read; the caller re-checks its deadline on return.
func (mc *muxConn) await(sl *muxSlot, ct *callTimer, d time.Duration) ([]byte, error) {
	tC := ct.after(d)
	for {
		select {
		case <-sl.done:
			// Completed by another holder or the failure path.
			ct.settle()
			return mc.finish(sl)
		case <-mc.lease:
			// Reader role: demultiplex frames — completing other
			// callers' slots along the way — until our own response or
			// a transport failure arrives. The kernel read deadline
			// bounds this — shrunk to the holder's own budget when that
			// is smaller, so a deadline-bounded lease holder is not
			// stuck in a read for the full connection timeout; the
			// outer timer only covers the waits.
			rd := mc.timeout
			if d < rd {
				rd = d
			}
			for {
				select {
				case <-sl.done: // completed just before we took the role
					mc.unlease()
					ct.settle()
					return mc.finish(sl)
				default:
				}
				mine, rerr := mc.readOne(sl, rd)
				if rerr != nil {
					mc.unlease()
					mc.fail(rerr)
					if !mine {
						<-sl.done // fail delivered our outcome
					}
					ct.settle()
					return mc.finish(sl)
				}
				if mine {
					mc.unlease()
					ct.settle()
					return mc.finish(sl)
				}
			}
		case <-tC:
			mc.fail(fmt.Errorf("%w after %v", errMuxTimeout, d))
			<-sl.done
			return mc.finish(sl)
		}
	}
}

// finish consumes a completed slot: error check, status strip, release.
// The returned body is valid until the caller releases the slot.
func (mc *muxConn) finish(sl *muxSlot) ([]byte, error) {
	if sl.err != nil {
		err := sl.err
		mc.release(sl)
		return nil, err
	}
	body := sl.resp
	if len(body) == 0 {
		mc.fail(errors.New("rpc: empty response frame"))
		mc.release(sl)
		return nil, mc.transportErr()
	}
	if body[0] == statusErr {
		err := &remoteError{msg: string(body[1:])}
		mc.release(sl)
		return nil, err
	}
	if body[0] == statusMoved {
		cu := cursor{b: body[1:]}
		epoch := cu.u64()
		shard := int(cu.u32())
		var addrs []string
		if !cu.bad && len(cu.rest()) > 0 { // v3 servers append their member view
			addrs = decodeAddrList(&cu)
		}
		bad := cu.bad
		mc.release(sl)
		if bad {
			return nil, &remoteError{msg: "malformed shard-moved redirect"}
		}
		if mc.onMoved != nil && len(addrs) > 0 {
			mc.onMoved(addrs)
		}
		return nil, &movedError{shard: shard, epoch: epoch, addrs: addrs}
	}
	return body[1:], nil
}

// roundTrip is send + await: the synchronous request cycle, bounded by d
// (see await).
func (mc *muxConn) roundTrip(sl *muxSlot, req []byte, ct *callTimer, d time.Duration) ([]byte, error) {
	if err := mc.send(sl, req); err != nil {
		return nil, err
	}
	return mc.await(sl, ct, d)
}

// callTimer is a reusable timer for the two bounded waits of one call
// (slot acquisition, response). Pooled so the steady-state request cycle
// allocates nothing; the stop/drain pattern is safe under both pre- and
// post-1.23 timer semantics.
type callTimer struct{ t *time.Timer }

var timerPool = sync.Pool{New: func() any {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return &callTimer{t: t}
}}

func (ct *callTimer) after(d time.Duration) <-chan time.Time {
	ct.t.Reset(d)
	return ct.t.C
}

// settle stops the timer and drains a concurrently delivered tick so the
// next after() cannot observe a stale one.
func (ct *callTimer) settle() {
	if !ct.t.Stop() {
		select {
		case <-ct.t.C:
		default:
		}
	}
}

func getTimer() *callTimer { return timerPool.Get().(*callTimer) }
func putTimer(ct *callTimer) {
	ct.settle()
	timerPool.Put(ct)
}
