package rpc

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
)

// startReplicaServer starts one advertising shard server owning the
// given partitions. The listener is opened first so the advertised
// address (which travels in routing placement, redirects and member
// views) is the real dialable one.
func startReplicaServer(t testing.TB, g *graph.Graph, shards int, owned []int) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	s := NewServer(g, ServerConfig{
		Shards: shards, Strategy: partition.Hash, Owned: owned,
		Replicas: 1, Advertise: addr,
	})
	s.Start(ln)
	t.Cleanup(func() { s.Close() })
	return s, addr
}

// Two servers owning every partition form 2-way replica groups: the
// engine spreads reads across both, and the draws stay bit-identical to
// a local engine (the replica serving a call never changes its result).
func TestReplicatedClusterSpreadsLoad(t *testing.T) {
	g := buildGraph(t)
	const shards = 4
	all := []int{0, 1, 2, 3}
	srvA, addrA := startReplicaServer(t, g, shards, all)
	srvB, addrB := startReplicaServer(t, g, shards, all)
	cluster, err := DialCluster(addrA, addrB)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	remote := cluster.Engine
	for id := 0; id < shards; id++ {
		if got := len(remote.ReplicaSet(id)); got != 2 {
			t.Fatalf("shard %d bound to %d replicas, want 2", id, got)
		}
	}

	local := engine.New(g, engine.Config{Shards: 1, Replicas: 1})
	rl, rr := rng.New(42), rng.New(42)
	want := make([]graph.NodeID, 6)
	got := make([]graph.NodeID, 6)
	for id := 0; id < 200; id++ {
		nid := graph.NodeID(id % g.NumNodes())
		nw := local.SampleNeighborsInto(nid, want, rl)
		ng, err := remote.TrySampleNeighborsInto(nid, got, rr)
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		if nw != ng {
			t.Fatalf("node %d: %d draws, want %d", id, ng, nw)
		}
		for i := 0; i < nw; i++ {
			if want[i] != got[i] {
				t.Fatalf("node %d draw %d: %d, want %d", id, i, got[i], want[i])
			}
		}
	}
	a, b := srvA.OpCount(OpSample), srvB.OpCount(OpSample)
	if a == 0 || b == 0 {
		t.Fatalf("load not spread across replicas: %d / %d sample ops", a, b)
	}
}

// Acceptance pin: killing a single replica mid-run yields no
// caller-visible error — single draws and scatter-gather batches fail
// over to the surviving replica and stay bit-identical to an
// undisturbed local engine.
func TestKillReplicaMidBatch(t *testing.T) {
	g := buildGraph(t)
	const shards = 4
	all := []int{0, 1, 2, 3}
	srvA, addrA := startReplicaServer(t, g, shards, all)
	_, addrB := startReplicaServer(t, g, shards, all)
	cluster, err := DialCluster(addrA, addrB)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	cluster.SetPollTimeout(300 * time.Millisecond)
	remote := cluster.Engine
	local := engine.New(g, engine.Config{Shards: 1, Replicas: 1})

	const k = 5
	r := rng.New(9)
	ids := make([]graph.NodeID, 48)
	for i := range ids {
		ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	wantOut := make([]graph.NodeID, len(ids)*k)
	wantNs := make([]int32, len(ids))
	gotOut := make([]graph.NodeID, len(ids)*k)
	gotNs := make([]int32, len(ids))
	rl, rr := rng.New(77), rng.New(77)
	single := make([]graph.NodeID, k)
	singleWant := make([]graph.NodeID, k)

	for round := 0; round < 10; round++ {
		if round == 3 {
			srvA.Close() // one replica of every group dies mid-run
		}
		if _, err := local.SampleNeighborsBatchInto(ids, k, wantOut, wantNs, rl, nil); err != nil {
			t.Fatalf("local batch: %v", err)
		}
		if _, err := remote.SampleNeighborsBatchInto(ids, k, gotOut, gotNs, rr, nil); err != nil {
			t.Fatalf("round %d: batch after replica kill: %v", round, err)
		}
		for i := range ids {
			if wantNs[i] != gotNs[i] {
				t.Fatalf("round %d entry %d: count %d, want %d", round, i, gotNs[i], wantNs[i])
			}
			for j := 0; j < int(wantNs[i]); j++ {
				if wantOut[i*k+j] != gotOut[i*k+j] {
					t.Fatalf("round %d entry %d draw %d diverged", round, i, j)
				}
			}
		}
		nid := graph.NodeID((round * 13) % g.NumNodes())
		nw := local.SampleNeighborsInto(nid, singleWant, rl)
		ng, err := remote.TrySampleNeighborsInto(nid, single, rr)
		if err != nil {
			t.Fatalf("round %d: single draw after replica kill: %v", round, err)
		}
		if nw != ng {
			t.Fatalf("round %d: single draw count %d, want %d", round, ng, nw)
		}
		for i := 0; i < nw; i++ {
			if singleWant[i] != single[i] {
				t.Fatalf("round %d single draw %d diverged", round, i)
			}
		}
	}
}

// Zero healthy replicas degrades typed-and-loud, not with a hang or a
// panic: the surfaced error matches both engine.ErrNoReplicas and
// ErrShardUnavailable.
func TestZeroHealthyReplicasTyped(t *testing.T) {
	g := buildGraph(t)
	all := []int{0, 1}
	srvA, addrA := startReplicaServer(t, g, 2, all)
	srvB, addrB := startReplicaServer(t, g, 2, all)
	cluster, err := DialCluster(addrA, addrB)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	cluster.SetPollTimeout(300 * time.Millisecond)
	remote := cluster.Engine

	r := rng.New(5)
	out := make([]graph.NodeID, 4)
	if _, err := remote.TrySampleNeighborsInto(0, out, r); err != nil {
		t.Fatalf("warm draw: %v", err)
	}
	srvA.Close()
	srvB.Close()

	_, err = remote.TrySampleNeighborsInto(0, out, r)
	if err == nil {
		t.Fatal("draw against a fully dead cluster succeeded")
	}
	if !errors.Is(err, engine.ErrNoReplicas) {
		t.Fatalf("error %v does not match engine.ErrNoReplicas", err)
	}
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("error %v does not match ErrShardUnavailable", err)
	}

	ids := []graph.NodeID{0, 1, 2, 3}
	bout := make([]graph.NodeID, len(ids)*4)
	ns := make([]int32, len(ids))
	if _, err := remote.SampleNeighborsBatchInto(ids, 4, bout, ns, r, nil); err == nil {
		t.Fatal("batch against a fully dead cluster succeeded")
	} else if !errors.Is(err, engine.ErrNoReplicas) || !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("batch error %v lacks the typed chain", err)
	}
}

// Dynamic membership: a server that joins after the cluster was dialed
// is discovered through the member view, validated, adopted and bound as
// a replica — and keeps the cluster serving when the original server
// dies.
func TestMembershipDiscovery(t *testing.T) {
	g := buildGraph(t)
	all := []int{0, 1}
	srvA, addrA := startReplicaServer(t, g, 2, all)

	cluster, err := DialCluster(addrA) // B does not exist yet
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	cluster.SetPollTimeout(500 * time.Millisecond)
	remote := cluster.Engine
	if got := len(remote.ReplicaSet(0)); got != 1 {
		t.Fatalf("bound %d replicas before join, want 1", got)
	}

	// B joins: announces itself to A, the only step a new server takes.
	srvB, addrB := startReplicaServer(t, g, 2, all)
	if err := srvB.AnnounceTo(addrA, 0); err != nil {
		t.Fatalf("announce: %v", err)
	}
	members := srvA.Members()
	if len(members) != 2 {
		t.Fatalf("A's member view after join: %v", members)
	}

	// One refresh discovers B through A's member view, probes it and
	// binds it into every replica group.
	if err := cluster.Refresh(); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	for id := 0; id < 2; id++ {
		if got := len(remote.ReplicaSet(id)); got != 2 {
			t.Fatalf("shard %d bound to %d replicas after join, want 2 (member %s not adopted)", id, got, addrB)
		}
	}

	// The original server dies; the adopted one keeps the cluster alive.
	srvA.Close()
	local := engine.New(g, engine.Config{Shards: 1, Replicas: 1})
	rl, rr := rng.New(21), rng.New(21)
	want := make([]graph.NodeID, 4)
	got := make([]graph.NodeID, 4)
	for id := 0; id < 50; id++ {
		nid := graph.NodeID(id % g.NumNodes())
		nw := local.SampleNeighborsInto(nid, want, rl)
		ng, err := remote.TrySampleNeighborsInto(nid, got, rr)
		if err != nil {
			t.Fatalf("draw %d after founder death: %v", id, err)
		}
		if nw != ng {
			t.Fatalf("draw %d: %d draws, want %d", id, ng, nw)
		}
		for i := 0; i < nw; i++ {
			if want[i] != got[i] {
				t.Fatalf("draw %d sample %d diverged", id, i)
			}
		}
	}
}

// Acceptance pin: a rolling upgrade — every server of a 2-replica
// cluster killed and replaced in sequence, under continuous sampler and
// batch load — completes with zero failed calls and draws bit-identical
// to an undisturbed local engine.
func TestRollingUpgrade(t *testing.T) {
	g := buildGraph(t)
	const shards = 4
	all := []int{0, 1, 2, 3}
	srvA, addrA := startReplicaServer(t, g, shards, all)
	srvB, addrB := startReplicaServer(t, g, shards, all)
	cluster, err := DialCluster(addrA, addrB)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	cluster.SetPollTimeout(500 * time.Millisecond)
	remote := cluster.Engine
	local := engine.New(g, engine.Config{Shards: 1, Replicas: 1})

	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []string
	)
	fail := func(s string) {
		mu.Lock()
		if len(failures) < 8 {
			failures = append(failures, s)
		}
		mu.Unlock()
	}

	// Continuous single-draw load, lockstep against the local engine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rl, rr := rng.New(101), rng.New(101)
		want := make([]graph.NodeID, 4)
		got := make([]graph.NodeID, 4)
		for id := 0; ; id++ {
			select {
			case <-stop:
				return
			default:
			}
			nid := graph.NodeID(id % g.NumNodes())
			nw := local.SampleNeighborsInto(nid, want, rl)
			ng, err := remote.TrySampleNeighborsInto(nid, got, rr)
			if err != nil {
				fail("sampler: " + err.Error())
				return
			}
			if nw != ng {
				fail("sampler: draw count diverged")
				return
			}
			for i := 0; i < nw; i++ {
				if want[i] != got[i] {
					fail("sampler: draws diverged")
					return
				}
			}
		}
	}()

	// Continuous scatter-gather batch load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		const k = 4
		rl, rr := rng.New(202), rng.New(202)
		seedR := rng.New(303)
		ids := make([]graph.NodeID, 32)
		for i := range ids {
			ids[i] = graph.NodeID(seedR.Intn(g.NumNodes()))
		}
		wantOut := make([]graph.NodeID, len(ids)*k)
		wantNs := make([]int32, len(ids))
		gotOut := make([]graph.NodeID, len(ids)*k)
		gotNs := make([]int32, len(ids))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := local.SampleNeighborsBatchInto(ids, k, wantOut, wantNs, rl, nil); err != nil {
				fail("batcher local: " + err.Error())
				return
			}
			if _, err := remote.SampleNeighborsBatchInto(ids, k, gotOut, gotNs, rr, nil); err != nil {
				fail("batcher: " + err.Error())
				return
			}
			for i := range ids {
				if wantNs[i] != gotNs[i] {
					fail("batcher: counts diverged")
					return
				}
				for j := 0; j < int(wantNs[i]); j++ {
					if wantOut[i*k+j] != gotOut[i*k+j] {
						fail("batcher: draws diverged")
						return
					}
				}
			}
		}
	}()

	// Kill and replace every original server in sequence. Each
	// replacement announces itself to a surviving member and one refresh
	// binds it before the old server goes away.
	time.Sleep(100 * time.Millisecond)
	live := []string{addrA, addrB}
	for i, old := range []*Server{srvA, srvB} {
		newSrv, newAddr := startReplicaServer(t, g, shards, all)
		survivor := live[1-i] // the peer still alive this round (round 1: A's replacement)
		if err := newSrv.AnnounceTo(survivor, 0); err != nil {
			t.Fatalf("replacement %d announce: %v", i, err)
		}
		if err := cluster.Refresh(); err != nil {
			t.Fatalf("refresh binding replacement %d: %v", i, err)
		}
		old.Close()
		live[i] = newAddr
		time.Sleep(200 * time.Millisecond) // let load churn through the new topology
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	if len(failures) > 0 {
		t.Fatalf("rolling upgrade surfaced failures: %v", failures)
	}
}

// Refresh is bounded per server: a stalled member (accepts and
// handshakes, then swallows frames) is timed out, logged and skipped —
// the refresh completes on the healthy server's answer instead of
// hanging.
func TestRefreshSkipsStalledServer(t *testing.T) {
	g := buildGraph(t)
	srvA, addrA := startReplicaServer(t, g, 2, []int{0, 1})
	bh := startBlackhole(t, "127.0.0.1:0")
	t.Cleanup(bh.kill)
	srvA.AddMembers(bh.ln.Addr().String())

	cluster, err := DialCluster(addrA)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	cluster.SetPollTimeout(300 * time.Millisecond)

	start := time.Now()
	if err := cluster.Refresh(); err != nil {
		t.Fatalf("refresh with a stalled member: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("refresh took %v with one stalled member (per-server bound not applied)", elapsed)
	}

	// The healthy binding still serves.
	r := rng.New(6)
	out := make([]graph.NodeID, 4)
	if _, err := cluster.Engine.TrySampleNeighborsInto(0, out, r); err != nil {
		t.Fatalf("draw after refresh: %v", err)
	}
}
