package rpc

import (
	"testing"

	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
)

// BenchmarkRPCRoundTrip measures one single-sample request over a
// loopback TCP connection — the floor a remote read adds over the
// ~hundred-ns in-process sample. The client hot path reuses pooled
// per-connection scratch; allocs/op is the pin that it stays
// allocation-free at steady state (server included: both ends run in
// this process).
func BenchmarkRPCRoundTrip(b *testing.B) {
	g := buildGraph(b)
	_, cluster := startCluster(b, g, 2, partition.Hash, [][]int{{0, 1}}, 1)
	remote := cluster.Engine
	var ego graph.NodeID
	for id := 0; id < g.NumNodes(); id++ {
		if g.Degree(graph.NodeID(id)) >= 5 {
			ego = graph.NodeID(id)
			break
		}
	}
	r := rng.New(1)
	out := make([]graph.NodeID, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := remote.TrySampleNeighborsInto(ego, out, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteBatch measures one scatter-gather batch (64 entries,
// k=10) against a two-server cluster: two round trips amortized over the
// whole batch, the unit of work a cache-segment refresher issues.
func BenchmarkRemoteBatch(b *testing.B) {
	g := buildGraph(b)
	_, cluster := startCluster(b, g, 2, partition.Hash, [][]int{{0}, {1}}, 1)
	remote := cluster.Engine
	const batch, k = 64, 10
	r := rng.New(2)
	ids := make([]graph.NodeID, batch)
	for i := range ids {
		ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	out := make([]graph.NodeID, batch*k)
	ns := make([]int32, batch)
	bs := engine.NewBatchScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := remote.SampleNeighborsBatchInto(ids, k, out, ns, r, bs); err != nil {
			b.Fatal(err)
		}
	}
}
