package rpc

import (
	"sync/atomic"
	"testing"

	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
)

// BenchmarkRPCRoundTrip measures one single-sample request over a
// loopback TCP connection — the floor a remote read adds over the
// ~hundred-ns in-process sample. The client hot path reuses pooled
// per-connection scratch; allocs/op is the pin that it stays
// allocation-free at steady state (server included: both ends run in
// this process).
func BenchmarkRPCRoundTrip(b *testing.B) {
	g := buildGraph(b)
	_, cluster := startCluster(b, g, 2, partition.Hash, [][]int{{0, 1}}, 1)
	remote := cluster.Engine
	var ego graph.NodeID
	for id := 0; id < g.NumNodes(); id++ {
		if g.Degree(graph.NodeID(id)) >= 5 {
			ego = graph.NodeID(id)
			break
		}
	}
	r := rng.New(1)
	out := make([]graph.NodeID, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := remote.TrySampleNeighborsInto(ego, out, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteBatch measures one scatter-gather batch (64 entries,
// k=10) against a two-server cluster: both shard visits are put on the
// wire before either is awaited, so the batch costs ~max of the two
// round trips plus whatever the CPU serializes. (On a 1-CPU container
// the loopback path is CPU-bound end to end, so wall clock stays near
// the sequential figure; the overlap itself is pinned by the engine's
// fan-out tests and pays off when servers have their own cores or a real
// network sits in between.)
func BenchmarkRemoteBatch(b *testing.B) {
	g := buildGraph(b)
	_, cluster := startCluster(b, g, 2, partition.Hash, [][]int{{0}, {1}}, 1)
	remote := cluster.Engine
	const batch, k = 64, 10
	r := rng.New(2)
	ids := make([]graph.NodeID, batch)
	for i := range ids {
		ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	out := make([]graph.NodeID, batch*k)
	ns := make([]int32, batch)
	bs := engine.NewBatchScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := remote.SampleNeighborsBatchInto(ids, k, out, ns, r, bs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteBatchParallel measures concurrent batch callers sharing
// the multiplexed connection pool — the serving tier's refreshers and
// miss fills overlapping on the same sockets. Per-op time under
// concurrency (throughput) is the figure of merit: pipelined frames
// coalesce in the kernel and the per-connection windows amortize
// syscalls across callers, where the old checkout-per-call pool would
// serialize on connection ownership.
func BenchmarkRemoteBatchParallel(b *testing.B) {
	g := buildGraph(b)
	_, cluster := startCluster(b, g, 2, partition.Hash, [][]int{{0}, {1}}, 1)
	remote := cluster.Engine
	const batch, k = 64, 10
	b.ReportAllocs()
	b.SetParallelism(8) // 8×GOMAXPROCS concurrent callers
	b.ResetTimer()
	var worker atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(uint64(worker.Add(1)))
		ids := make([]graph.NodeID, batch)
		for i := range ids {
			ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
		}
		out := make([]graph.NodeID, batch*k)
		ns := make([]int32, batch)
		bs := engine.NewBatchScratch()
		for pb.Next() {
			if _, err := remote.SampleNeighborsBatchInto(ids, k, out, ns, r, bs); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkRemoteTree measures a 2-hop SampleTree over a four-shard,
// two-server cluster: each hop is one scatter-gather batch whose shard
// visits overlap, so a hop costs ~one round trip however many shards the
// frontier touches.
func BenchmarkRemoteTree(b *testing.B) {
	g := buildGraph(b)
	_, cluster := startCluster(b, g, 4, partition.Hash, [][]int{{0, 1}, {2, 3}}, 1)
	remote := cluster.Engine
	var ego graph.NodeID
	for id := 0; id < g.NumNodes(); id++ {
		if g.Degree(graph.NodeID(id)) >= 10 {
			ego = graph.NodeID(id)
			break
		}
	}
	r := rng.New(3)
	bs := engine.NewBatchScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := remote.SampleTree(ego, 2, 10, r, bs); err != nil {
			b.Fatal(err)
		}
	}
}
