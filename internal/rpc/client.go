package rpc

import (
	"errors"
	"fmt"
	"log"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/ingest"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// ErrShardUnavailable is the typed transport failure: the shard server
// could not be reached, the connection died mid-call, or the client's
// failure circuit is open and refused the call outright. Engine batch
// errors wrap it, so callers check
// errors.Is(err, rpc.ErrShardUnavailable) at any layer. It aliases the
// engine's sentinel so the engine can recognize a transport failure —
// and fail over to a sibling replica — without importing this package.
var ErrShardUnavailable = engine.ErrShardUnavailable

// remoteError is an application-level failure the server answered with
// (bad request, out-of-range node). The connection is healthy and the
// call must not be retried.
type remoteError struct{ msg string }

func (e *remoteError) Error() string { return "rpc: server: " + e.msg }

// Is re-types well-known server-answered failures that crossed the wire
// as strings: an append rejected by validation carries the
// engine.ErrBadAppend marker in its message, and matching it again
// client-side keeps remote shards indistinguishable from local ones for
// callers that branch on the sentinel (the gateway's 400 mapping,
// Engine.Append's no-retry rule).
func (e *remoteError) Is(target error) bool {
	return target == engine.ErrBadAppend && strings.Contains(e.msg, engine.ErrBadAppend.Error())
}

// movedError is the wrong-epoch redirect decoded from a statusMoved
// response: the server answered — over a healthy connection — that it no
// longer (or never) owned the target partition, and reported its current
// routing epoch. It matches engine.ErrWrongEpoch under errors.Is, which
// is what makes the engine refresh its ownership view and retry instead
// of surfacing the failure; like remoteError it is not a transport
// failure, so it neither trips the health circuit nor burns the
// retry-on-fresh-connection attempt.
type movedError struct {
	shard int
	epoch uint64
	// addrs is the redirecting server's member view (protocol v3): where
	// the partition might have gone. The cluster feeds it into membership
	// discovery so a redirect to a server the engine has never dialed
	// still resolves.
	addrs []string
}

func (e *movedError) Error() string {
	return fmt.Sprintf("rpc: shard %d moved (server routing epoch %d): %v", e.shard, e.epoch, engine.ErrWrongEpoch)
}

// Is makes errors.Is(err, engine.ErrWrongEpoch) true for the redirect.
func (e *movedError) Is(target error) bool { return target == engine.ErrWrongEpoch }

// permanent reports whether err is a server-answered outcome on a healthy
// connection — a remote application error or a wrong-epoch redirect — as
// opposed to a transport failure that should count against the health
// circuit and be retried on a fresh connection.
func permanent(err error) bool {
	var re *remoteError
	var mv *movedError
	return errors.As(err, &re) || errors.As(err, &mv)
}

// DefaultTimeout bounds dial and per-call I/O, guaranteeing a dead peer
// surfaces as ErrShardUnavailable instead of a hang.
const DefaultTimeout = 5 * time.Second

// ClientConfig bounds the multiplexed connection pool.
type ClientConfig struct {
	// Conns is the number of pooled multiplexed connections (default 2).
	// Each is shared by every concurrent caller; more connections spread
	// head-of-line blocking on the kernel socket, not request slots.
	Conns int
	// Window is the in-flight request limit per connection (default 32).
	// A caller finding every slot of its connection taken blocks until
	// one frees — backpressure, bounded by Timeout.
	Window int
	// Timeout bounds dialing and each request's in-flight time (default
	// DefaultTimeout).
	Timeout time.Duration
	// FailThreshold is the consecutive-transport-failure count that opens
	// the health circuit (default 3). While open, a single probe call at
	// a time is allowed to dial; every other caller waits for the probe's
	// outcome and then either proceeds (shard recovered) or fails with
	// ErrShardUnavailable without dialing — one dial attempt per outage
	// instead of one per caller. Any success closes the circuit; an idle
	// second decays it.
	FailThreshold int
}

func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.Conns <= 0 {
		cfg.Conns = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	return cfg
}

// breakerDecay is how long the circuit stays open with no traffic before
// the consecutive-failure count resets and calls probe freely again.
const breakerDecay = time.Second

// Client is a multiplexed-connection client to one shard server. Calls
// share a small bounded pool of pipelined connections: a call picks a
// connection round-robin, occupies one in-flight window slot on it, and
// overlaps on the wire with every other caller's requests — no
// connection is ever checked out exclusively. A connection that sees a
// transport error is discarded (failing its in-flight requests with
// typed errors, never with another request's bytes) and the call retried
// once on a freshly dialed one — all reads are idempotent (seeds travel
// in the request), so the retry is safe, and it is what makes a
// restarted server transparently reconnect-and-serve. Repeated failures
// open a health circuit: one probe call dials at a time while every
// other caller adopts the probe's outcome, replacing redial-per-call
// dial storms. Safe for concurrent use; the steady-state sample/batch
// path reuses per-slot scratch and performs no heap allocation.
type Client struct {
	addr string
	cfg  ClientConfig

	mu     sync.Mutex
	conns  []*muxConn // fixed length cfg.Conns; nil until first use
	closed bool
	next   atomic.Uint32 // round-robin connection cursor

	hmu       sync.Mutex // health circuit state
	fails     int
	probeDone chan struct{} // non-nil while a probe call is in flight
	lastErr   time.Time

	// onMoved, when set, receives the member address list carried by
	// wrong-epoch redirects (protocol v3) — the cluster's membership
	// discovery hook. Set before first use; called from decode paths.
	onMoved func(addrs []string)
}

// NewClient returns a client for the shard server at addr with default
// pool bounds. No connection is made until the first call.
func NewClient(addr string) *Client { return NewClientWith(addr, ClientConfig{}) }

// NewClientWith returns a client with explicit pool bounds.
func NewClientWith(addr string, cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	return &Client{addr: addr, cfg: cfg, conns: make([]*muxConn, cfg.Conns)}
}

// SetTimeout overrides the per-call I/O and dial deadline (default
// DefaultTimeout). Not concurrency-safe; set before first use.
func (cl *Client) SetTimeout(d time.Duration) { cl.cfg.Timeout = d }

// SetDiscover installs the membership-discovery hook: fn receives the
// member address list carried by wrong-epoch redirects. Not
// concurrency-safe; set before first use.
func (cl *Client) SetDiscover(fn func(addrs []string)) { cl.onMoved = fn }

// Healthy reports whether the failure circuit would admit a call right
// now — false while the circuit is open (consecutive transport failures
// at or over the threshold, with the decay window not yet elapsed). The
// engine's replica picker uses it to steer reads away from a server
// that is currently failing without ever blocking on it.
func (cl *Client) Healthy() bool {
	cl.hmu.Lock()
	defer cl.hmu.Unlock()
	return cl.fails < cl.cfg.FailThreshold || time.Since(cl.lastErr) > breakerDecay
}

// Addr returns the server address this client targets.
func (cl *Client) Addr() string { return cl.addr }

// Close tears down the pooled connections; in-flight calls fail with
// typed errors.
func (cl *Client) Close() error {
	cl.mu.Lock()
	cl.closed = true
	conns := cl.conns
	cl.conns = nil
	cl.mu.Unlock()
	for _, mc := range conns {
		if mc != nil {
			mc.close()
		}
	}
	return nil
}

// admit applies the health circuit. Below the failure threshold every
// call proceeds immediately. Above it, exactly one probe call at a time
// is allowed to touch the network; every other caller receives the
// probe's completion channel, waits for its outcome, and — if the
// circuit is still open — fails with ErrShardUnavailable without ever
// dialing. One dial attempt in flight per outage instead of one per
// caller, and a recovered server admits every waiter the moment the
// probe succeeds. The probe flag must be handed back through settle.
func (cl *Client) admit() (probe bool, wait chan struct{}) {
	cl.hmu.Lock()
	defer cl.hmu.Unlock()
	if cl.fails >= cl.cfg.FailThreshold && time.Since(cl.lastErr) > breakerDecay {
		cl.fails = 0 // decay: the outage information is stale
	}
	if cl.fails < cl.cfg.FailThreshold {
		return false, nil
	}
	if cl.probeDone != nil {
		return false, cl.probeDone
	}
	cl.probeDone = make(chan struct{})
	return true, nil
}

// open reports whether the circuit is still refusing calls (a waiter's
// post-probe check).
func (cl *Client) open() bool {
	cl.hmu.Lock()
	defer cl.hmu.Unlock()
	return cl.fails >= cl.cfg.FailThreshold
}

// settle records a call's transport outcome in the circuit and releases
// the probe's waiters.
func (cl *Client) settle(probe, failed bool) {
	cl.hmu.Lock()
	defer cl.hmu.Unlock()
	if probe && cl.probeDone != nil {
		close(cl.probeDone)
		cl.probeDone = nil
	}
	if failed {
		cl.fails++
		cl.lastErr = time.Now()
	} else {
		cl.fails = 0
	}
}

// releaseProbe abandons a probe reservation without recording an
// outcome: waiters wake, see the circuit still open and fail typed. The
// async start path uses it when the probe call cannot actually reach
// the wire (no free window slot), so no waiter is ever left waiting on
// a probe whose outcome is deferred behind the waiter's own await.
func (cl *Client) releaseProbe() {
	cl.hmu.Lock()
	defer cl.hmu.Unlock()
	if cl.probeDone != nil {
		close(cl.probeDone)
		cl.probeDone = nil
	}
}

// gate combines admission and probe-waiting: it returns the probe flag
// and nil when the call may proceed, or the typed failure when the
// circuit refused it.
func (cl *Client) gate() (probe bool, err error) {
	probe, wait := cl.admit()
	if wait == nil {
		return probe, nil
	}
	<-wait
	if cl.open() {
		return false, cl.unavailable(nil)
	}
	return false, nil
}

// conn returns a live pooled connection, dialing into the round-robin
// slot when it is empty or its connection has died. Every transport
// error marks its connection dead, so a retrying caller lands on a
// fresh one naturally — no forced redial, and no caller ever severs a
// live connection another caller just dialed.
func (cl *Client) conn() (*muxConn, error) {
	i := int(cl.next.Add(1)) % cl.cfg.Conns
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, errors.New("client closed")
	}
	if mc := cl.conns[i]; mc != nil && !mc.dead.Load() {
		cl.mu.Unlock()
		return mc, nil
	}
	cl.mu.Unlock()
	nc, err := dialMux(cl.addr, cl.cfg.Window, cl.cfg.Timeout, cl.onMoved)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		nc.close()
		return nil, errors.New("client closed")
	}
	if old := cl.conns[i]; old != nil && !old.dead.Load() {
		// Another caller installed a live connection while we dialed;
		// share theirs, drop ours.
		cl.mu.Unlock()
		nc.close()
		return old, nil
	} else if old != nil {
		old.close()
	}
	cl.conns[i] = nc
	cl.mu.Unlock()
	return nc, nil
}

// unavailable wraps the last transport error as the typed failure.
func (cl *Client) unavailable(err error) error {
	if err == nil {
		err = errors.New("circuit open, probe in flight")
	}
	return fmt.Errorf("%w: %s: %v", ErrShardUnavailable, cl.addr, err)
}

// deadlineExpired reports whether a non-zero deadline has passed.
func deadlineExpired(deadline time.Time) bool {
	return !time.Now().Before(deadline)
}

// errDeadline wraps the typed per-call deadline failure for this server.
// It is not a transport failure: the circuit is not charged and the
// engine neither fails over nor refreshes ownership for it.
func (cl *Client) errDeadline() error {
	return fmt.Errorf("rpc: %s: %w", cl.addr, engine.ErrDeadlineExceeded)
}

// budget returns the per-attempt I/O bound for a call carrying deadline:
// the configured Timeout, shrunk to the remaining budget when that is
// smaller. ok is false when the budget is already spent — the caller
// must fail typed without touching the wire. The zero deadline always
// returns the full Timeout without reading the clock.
func (cl *Client) budget(deadline time.Time) (d time.Duration, ok bool) {
	d = cl.cfg.Timeout
	if deadline.IsZero() {
		return d, true
	}
	rem := time.Until(deadline)
	if rem <= 0 {
		return 0, false
	}
	if rem < d {
		d = rem
	}
	return d, true
}

// sample runs one OpSample request: k weighted draws for id, the
// caller's RNG state travelling out and the advanced state travelling
// back. n is k, or 0 for an isolated node. A non-zero deadline shrinks
// the per-attempt I/O bound to the remaining budget and converts
// post-expiry failures into the typed deadline error (not charged to the
// health circuit — a slow answer is not a dead server). Hand-rolled (no
// closures) to keep the hot path allocation-free.
func (cl *Client) sample(id graph.NodeID, k int, st [4]uint64, out []graph.NodeID, deadline time.Time) (n int, newSt [4]uint64, err error) {
	probe, gerr := cl.gate()
	if gerr != nil {
		return 0, st, gerr
	}
	var lastErr error
	failed := true
	defer func() { cl.settle(probe, failed) }()
	for attempt := 0; attempt < 2; attempt++ {
		d, ok := cl.budget(deadline)
		if !ok {
			failed = false
			return 0, st, cl.errDeadline()
		}
		mc, err := cl.conn()
		if err != nil {
			lastErr = err
			continue
		}
		ct := getTimer()
		sl, req, err := mc.acquire(OpSample, ct, d)
		if err != nil {
			putTimer(ct)
			if !deadline.IsZero() && deadlineExpired(deadline) {
				// The window stayed full for the whole remaining budget:
				// backpressure, not a dead peer. Nothing was sent.
				failed = false
				return 0, st, cl.errDeadline()
			}
			lastErr = err
			continue
		}
		req = appendU32(req, uint32(id))
		req = appendU32(req, uint32(k))
		for _, w := range st {
			req = appendU64(req, w)
		}
		body, err := mc.roundTrip(sl, req, ct, d)
		putTimer(ct)
		if err != nil {
			if permanent(err) {
				failed = false
				return 0, st, err
			}
			if !deadline.IsZero() && deadlineExpired(deadline) {
				failed = false
				return 0, st, fmt.Errorf("%v: %w", err, engine.ErrDeadlineExceeded)
			}
			lastErr = err
			continue
		}
		cu := cursor{b: body}
		for i := range newSt {
			newSt[i] = cu.u64()
		}
		n := int(cu.u32())
		bad := cu.bad || n < 0 || n > k || n > len(out)
		if !bad {
			for i := 0; i < n; i++ {
				out[i] = graph.NodeID(cu.u32())
			}
			bad = cu.bad
		}
		mc.release(sl)
		if bad {
			mc.fail(fmt.Errorf("rpc: malformed sample response (%d bytes)", len(body)))
			failed = false
			return 0, st, fmt.Errorf("rpc: sample returned %d draws for k=%d", n, k)
		}
		failed = false
		return n, newSt, nil
	}
	return 0, st, cl.unavailable(lastErr)
}

// appendBatch encodes an OpBatch payload.
func appendBatch(req []byte, gids []graph.NodeID, idx []int32, base uint64, k int) []byte {
	req = appendU64(req, base)
	req = appendU32(req, uint32(k))
	req = appendU32(req, uint32(len(gids)))
	for j := range gids {
		req = appendU32(req, uint32(idx[j]))
		req = appendU32(req, uint32(gids[j]))
	}
	return req
}

// decodeBatch scatters an OpBatch response into out/ns and releases the
// slot. A malformed body kills the connection and reports a permanent
// (non-transport) error.
func decodeBatch(mc *muxConn, sl *muxSlot, body []byte, gids []graph.NodeID, idx []int32, k int, out []graph.NodeID, ns []int32) (int, error) {
	cu := cursor{b: body}
	total := int(cu.u32())
	good := true
	for j := range gids {
		n := int32(cu.u32())
		i := int(idx[j])
		if n < 0 || int(n) > k || (i+1)*k > len(out) || i >= len(ns) {
			good = false
			break
		}
		ns[i] = n
		lo := i * k
		for d := 0; d < int(n); d++ {
			out[lo+d] = graph.NodeID(cu.u32())
		}
	}
	good = good && !cu.bad
	mc.release(sl)
	if !good {
		err := fmt.Errorf("rpc: malformed batch response (%d bytes)", len(body))
		mc.fail(err)
		return 0, err
	}
	return total, nil
}

// batchAttempt runs one full synchronous OpBatch attempt. transport
// reports whether a failure was a transport-level one (retryable, counts
// against the health circuit) as opposed to a server-answered or
// malformed-response error.
func (cl *Client) batchAttempt(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) (total int, transport bool, err error) {
	mc, err := cl.conn()
	if err != nil {
		return 0, true, err
	}
	ct := getTimer()
	defer putTimer(ct)
	sl, req, err := mc.acquire(OpBatch, ct, cl.cfg.Timeout)
	if err != nil {
		return 0, true, err
	}
	req = appendBatch(req, gids, idx, base, k)
	body, err := mc.roundTrip(sl, req, ct, cl.cfg.Timeout)
	if err != nil {
		if permanent(err) {
			return 0, false, err
		}
		return 0, true, err
	}
	total, err = decodeBatch(mc, sl, body, gids, idx, k, out, ns)
	return total, false, err
}

// sampleBatch runs one OpBatch request — one scatter-gather shard visit,
// with the ShardBackend.SampleBatchInto contract: entry j's draws land
// in out[idx[j]*k:...] and its count in ns[idx[j]].
func (cl *Client) sampleBatch(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) (int, error) {
	probe, gerr := cl.gate()
	if gerr != nil {
		return 0, gerr
	}
	total, transport, err := cl.batchAttempt(gids, idx, base, k, out, ns)
	if err != nil && transport {
		total, transport, err = cl.batchAttempt(gids, idx, base, k, out, ns)
	}
	cl.settle(probe, err != nil && transport)
	if err != nil && transport {
		return 0, cl.unavailable(err)
	}
	return total, err
}

// appendOnce runs exactly one OpAppend attempt. Unlike every read path
// it is never retried internally: after a transport failure the record
// may or may not have been applied server-side, and only the caller's
// sequence cache can disambiguate (the dup result on a same-seq retry
// means the lost attempt landed). fanout marks the request a replica
// fan-out copy the receiver must not forward again.
func (cl *Client) appendOnce(shard int, seq uint64, edges []ingest.Edge, fanout bool) (result byte, lastSeq uint64, err error) {
	probe, gerr := cl.gate()
	if gerr != nil {
		return 0, 0, gerr
	}
	failed := true
	defer func() { cl.settle(probe, failed) }()
	mc, err := cl.conn()
	if err != nil {
		return 0, 0, cl.unavailable(err)
	}
	ct := getTimer()
	defer putTimer(ct)
	sl, req, err := mc.acquire(OpAppend, ct, cl.cfg.Timeout)
	if err != nil {
		return 0, 0, cl.unavailable(err)
	}
	var flags byte
	if fanout {
		flags = appendFlagFanout
	}
	req = append(req, flags)
	req = appendU32(req, uint32(shard))
	req = ingest.AppendPayload(req, seq, edges) // on-wire == on-disk encoding
	body, err := mc.roundTrip(sl, req, ct, cl.cfg.Timeout)
	if err != nil {
		if permanent(err) {
			failed = false
			return 0, 0, err
		}
		return 0, 0, cl.unavailable(err)
	}
	cu := cursor{b: body}
	result = cu.u8()
	lastSeq = cu.u64()
	bad := cu.bad || result > appendGap
	mc.release(sl)
	if bad {
		mc.fail(fmt.Errorf("rpc: malformed append response (%d bytes)", len(body)))
		failed = false
		return 0, 0, fmt.Errorf("rpc: malformed append response")
	}
	failed = false
	return result, lastSeq, nil
}

// pendingBatch is one started (sent, not yet awaited) batch visit — the
// engine.BatchHandle the stub hands the scatter-gather fan-out. Pooled;
// returned to the pool when awaited.
type pendingBatch struct {
	cl       *Client
	mc       *muxConn // nil when the start attempt failed before the wire
	sl       *muxSlot
	ct       *callTimer
	probe    bool
	deferred bool          // window was full: nothing sent, await runs the call
	wait     chan struct{} // non-nil: circuit open behind another probe; await resolves
	serr     error         // non-nil: start-side transport failure (await retries)

	gids []graph.NodeID
	idx  []int32
	base uint64
	k    int
	out  []graph.NodeID
	ns   []int32
}

var pendingPool = sync.Pool{New: func() any { return new(pendingBatch) }}

// startBatch gates the circuit, composes the request and puts it on the
// wire without waiting. It never blocks on another call's probe — a
// caller may hold several un-awaited handles on one client (the engine
// fan-out does), and the probe they would wait for can be one of those
// very handles, so the wait is deferred to AwaitBatch, which runs after
// every earlier-started handle has settled. Every other failure mode is
// deferred too, so concurrently started sibling visits are never
// abandoned mid-flight. The returned handle must be awaited exactly
// once.
func (cl *Client) startBatch(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) *pendingBatch {
	p := pendingPool.Get().(*pendingBatch)
	*p = pendingBatch{cl: cl, gids: gids, idx: idx, base: base, k: k, out: out, ns: ns}
	probe, wait := cl.admit()
	if wait != nil {
		// Behind another probe: the await adopts its outcome. Marked
		// deferred so the engine collects it only after every on-the-wire
		// handle — by then the probe (an earlier-started sibling, or a
		// foreign time-bounded call) has settled, and a fresh synchronous
		// call here cannot block window capacity the caller still holds.
		p.wait = wait
		p.deferred = true
		return p
	}
	p.probe = probe
	mc, err := cl.conn()
	if err != nil {
		p.serr = err
		return p
	}
	// Never block for a window slot here: the caller may already hold
	// slots for sibling visits, and a window's worth of such callers
	// blocking on each other is a deadlock. A full window defers this
	// group (Started() false); the engine runs it synchronously after
	// awaiting — and thereby releasing — its started visits.
	sl, req, ok := mc.tryAcquire(OpBatch)
	if !ok {
		if p.probe {
			// The probe reservation must not outlive the start phase: a
			// deferred probe settles only after the engine's first await
			// pass, and a sibling waiter awaited in that pass would
			// deadlock on it. Abandon the reservation instead; waiters
			// fail typed and the next call re-probes.
			cl.releaseProbe()
			p.probe = false
		}
		p.deferred = true
		return p
	}
	req = appendBatch(req, gids, idx, base, k)
	if err := mc.send(sl, req); err != nil {
		p.serr = err
		return p
	}
	p.mc, p.sl, p.ct = mc, sl, getTimer()
	return p
}

// Started reports whether the visit is actually on the wire. The engine
// awaits started handles first: an unstarted handle's await issues a
// fresh synchronous call, which may block for window capacity that only
// the caller's own started handles will free.
func (p *pendingBatch) Started() bool { return !p.deferred }

// AwaitBatch collects a started visit: waits for the response, decodes
// it, retries once synchronously on a transport failure (the same
// reconnect-and-serve semantics as the synchronous path) and settles the
// health circuit. It implements engine.BatchHandle.
func (p *pendingBatch) AwaitBatch() (int, error) {
	cl := p.cl
	if p.wait != nil {
		// Start found the circuit open behind another probe. That probe
		// has settled by now (it was awaited before us, or belongs to
		// another caller whose calls are time-bounded); adopt its
		// outcome: fail typed while the circuit stays open, or run the
		// whole call synchronously now that the shard is back.
		wait, gids, idx, base, k, out, ns := p.wait, p.gids, p.idx, p.base, p.k, p.out, p.ns
		p.recycle()
		<-wait
		if cl.open() {
			return 0, cl.unavailable(nil)
		}
		return cl.sampleBatch(gids, idx, base, k, out, ns)
	}
	var total int
	transport, err := false, error(nil)
	switch {
	case p.deferred:
		// Nothing was sent; run the call now with the usual two attempts.
		// The caller holds no window slots at this point (its started
		// handles were awaited first), so blocking for capacity is safe.
		total, transport, err = cl.batchAttempt(p.gids, p.idx, p.base, p.k, p.out, p.ns)
	case p.mc == nil:
		transport, err = true, p.serr
	default:
		body, aerr := p.mc.await(p.sl, p.ct, cl.cfg.Timeout)
		putTimer(p.ct)
		if aerr != nil {
			if permanent(aerr) {
				err = aerr
			} else {
				transport, err = true, aerr
			}
		} else {
			total, err = decodeBatch(p.mc, p.sl, body, p.gids, p.idx, p.k, p.out, p.ns)
		}
	}
	if err != nil && transport {
		total, transport, err = cl.batchAttempt(p.gids, p.idx, p.base, p.k, p.out, p.ns)
	}
	cl.settle(p.probe, err != nil && transport)
	p.recycle()
	if err != nil && transport {
		return 0, cl.unavailable(err)
	}
	return total, err
}

// recycle returns the handle to the pool.
func (p *pendingBatch) recycle() {
	*p = pendingBatch{}
	pendingPool.Put(p)
}

// call runs one request/response cycle through the shared lifecycle —
// circuit admission, slot acquisition on a pooled connection,
// retry-once-on-fresh-connection, short-circuit on a server-answered
// error. encode appends the request payload (nil for payload-free ops);
// decode reads the response body while the slot is still held. The
// zero-allocation hot paths (sample, sampleBatch) keep hand-rolled
// copies of this scaffold because the closures here cost heap
// allocations — fine for handshakes and attribute reads, not for the
// per-request cycle.
func (cl *Client) call(op Op, encode func([]byte) []byte, decode func(body []byte) error) error {
	probe, gerr := cl.gate()
	if gerr != nil {
		return gerr
	}
	var lastErr error
	failed := true
	defer func() { cl.settle(probe, failed) }()
	for attempt := 0; attempt < 2; attempt++ {
		mc, err := cl.conn()
		if err != nil {
			lastErr = err
			continue
		}
		ct := getTimer()
		sl, req, err := mc.acquire(op, ct, cl.cfg.Timeout)
		if err != nil {
			putTimer(ct)
			lastErr = err
			continue
		}
		if encode != nil {
			req = encode(req)
		}
		body, err := mc.roundTrip(sl, req, ct, cl.cfg.Timeout)
		putTimer(ct)
		if err != nil {
			if permanent(err) {
				failed = false
				return err
			}
			lastErr = err
			continue
		}
		derr := decode(body)
		mc.release(sl)
		failed = false
		if derr != nil {
			// Undecodable response: the stream itself is suspect.
			mc.fail(fmt.Errorf("rpc: malformed %v response: %v", op, derr))
			return derr
		}
		return nil
	}
	return cl.unavailable(lastErr)
}

// nodeRead runs one single-id read op.
func (cl *Client) nodeRead(op Op, id graph.NodeID, decode func(cu *cursor) error) error {
	return cl.call(op,
		func(b []byte) []byte { return appendU32(b, uint32(id)) },
		func(body []byte) error {
			cu := cursor{b: body}
			return decode(&cu)
		})
}

// ShardInfo describes one partition a server owns. Ingest is the
// shard's write-path row from a protocol-v4 epoch response (nil from the
// info handshake, which does not carry the section).
type ShardInfo struct {
	ID, Nodes, Edges int
	Ingest           *engine.IngestStats
}

// Info is the server handshake: the shape of the graph behind the server
// and the partitions it owns.
type Info struct {
	NumNodes   int
	ContentDim int
	NumShards  int
	Strategy   partition.Strategy
	Owned      []ShardInfo
}

// Info fetches the server handshake.
func (cl *Client) Info() (Info, error) {
	var info Info
	err := cl.call(OpInfo, nil, func(body []byte) error {
		cu := cursor{b: body}
		info.NumNodes = int(cu.u32())
		info.ContentDim = int(cu.u32())
		info.NumShards = int(cu.u32())
		info.Strategy = partition.Strategy(cu.u32())
		if cu.bad {
			return fmt.Errorf("rpc: malformed info response")
		}
		var derr error
		info.Owned, derr = decodeOwned(&cu, info.NumShards)
		return derr
	})
	return info, err
}

// Routing fetches the partition's routing table — everything the Engine
// routing layer needs to direct requests at this cluster. The table
// carries the server's current routing epoch.
func (cl *Client) Routing() (*partition.Routing, error) {
	var r *partition.Routing
	err := cl.call(OpRouting, nil, func(body []byte) error {
		var uerr error
		r, uerr = partition.UnmarshalRouting(body)
		return uerr
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// decodeOwned decodes the (count, then id/nodes/edges triples) tail both
// the info and routing-epoch responses carry.
func decodeOwned(cu *cursor, numShards int) ([]ShardInfo, error) {
	owned := int(cu.u32())
	if cu.bad || owned < 0 || owned > numShards {
		return nil, fmt.Errorf("rpc: malformed owned-shard list")
	}
	out := make([]ShardInfo, owned)
	for i := range out {
		out[i] = ShardInfo{ID: int(cu.u32()), Nodes: int(cu.u32()), Edges: int(cu.u32())}
	}
	if err := cu.err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Reassign commands the server to acquire or release one partition — the
// admin half of a live shard handoff (zoomer-shard's -admin mode sends
// exactly this). It returns the server's routing epoch after the change;
// acquiring an already-owned or releasing a non-owned partition is a
// no-op that returns the current epoch.
func (cl *Client) Reassign(shard int, acquire bool) (uint64, error) {
	var epoch uint64
	action := byte(ReassignRelease)
	if acquire {
		action = ReassignAcquire
	}
	err := cl.call(OpReassign,
		func(b []byte) []byte {
			b = append(b, action)
			return appendU32(b, uint32(shard))
		},
		func(body []byte) error {
			cu := cursor{b: body}
			epoch = cu.u64()
			return cu.err()
		})
	return epoch, err
}

// RoutingEpoch polls the server's current routing epoch, the partitions
// it serves and (protocol v3) its member view — the cheap ownership
// read a client refreshes from after a wrong-epoch redirect, without
// re-fetching the (possibly node-sized) routing blob.
func (cl *Client) RoutingEpoch() (uint64, []ShardInfo, []string, error) {
	var epoch uint64
	var owned []ShardInfo
	var members []string
	err := cl.call(OpEpoch, nil, func(body []byte) error {
		cu := cursor{b: body}
		epoch = cu.u64()
		var derr error
		owned, derr = decodeOwned(&cu, 1<<20)
		if derr != nil {
			return derr
		}
		if len(cu.rest()) > 0 { // v3 servers append their member view
			members = decodeAddrList(&cu)
		}
		if len(cu.rest()) > 0 { // v4 servers append per-shard ingest rows
			decodeIngest(&cu, owned)
		}
		return cu.err()
	})
	if err != nil {
		return 0, nil, nil, err
	}
	return epoch, owned, members, nil
}

// decodeIngest decodes the protocol-v4 ingest section of an epoch
// response and attaches each row to its shard's entry in owned.
func decodeIngest(cu *cursor, owned []ShardInfo) {
	byID := make(map[int]int, len(owned))
	for i := range owned {
		byID[owned[i].ID] = i
	}
	count := int(cu.u32())
	if cu.bad || count < 0 || count > 1<<20 {
		cu.bad = true
		return
	}
	for n := 0; n < count; n++ {
		var st engine.IngestStats
		st.Shard = int(cu.u32())
		st.Seq = cu.u64()
		st.DeltaNodes = int(cu.u32())
		st.DeltaEdges = cu.u64()
		st.Compactions = cu.u64()
		st.WALSegments = int(cu.u32())
		st.Fsyncs = cu.u64()
		st.FsyncNanos = cu.u64()
		hl := int(cu.u32())
		if cu.bad || hl < 0 || hl > 64 {
			cu.bad = true
			return
		}
		if hl > 0 {
			st.FsyncHist = make([]uint64, hl)
			for i := range st.FsyncHist {
				st.FsyncHist[i] = cu.u64()
			}
		}
		if cu.bad {
			return
		}
		if i, ok := byID[st.Shard]; ok {
			row := st
			owned[i].Ingest = &row
		}
	}
}

// Members runs the membership exchange (protocol v3): announce, when
// non-empty, registers the caller's advertised address with the server;
// the response lists every server address the server knows, announce
// included. A serving-tier client polls with an empty announce.
func (cl *Client) Members(announce string) ([]string, error) {
	var members []string
	err := cl.call(OpMembers,
		func(b []byte) []byte {
			b = appendU32(b, uint32(len(announce)))
			return append(b, announce...)
		},
		func(body []byte) error {
			cu := cursor{b: body}
			members = decodeAddrList(&cu)
			return cu.err()
		})
	if err != nil {
		return nil, err
	}
	return members, nil
}

// RemoteShard is the client-side stub for one partition served by a
// shard server: an engine.ShardBackend whose reads happen over the wire.
// Several stubs (one per owned partition) share one Client and its
// multiplexed connections, so concurrent visits to different partitions
// of the same server pipeline onto the same sockets.
type RemoteShard struct {
	cl           *Client
	shard        int
	nodes, edges int
	requests     atomic.Int64

	// write facet: appendMu serializes this stub's appends; nextSeq
	// caches the server's sequence watermark (0 = unknown, resynced from
	// dup/gap answers). ingStats is the shard's last observed ingest row
	// (fed by cluster refreshes decoding v4 epoch responses).
	appendMu sync.Mutex
	nextSeq  uint64
	ingStats atomic.Pointer[engine.IngestStats]
}

// The stub plugs into the routing layer exactly like an in-process
// shard, and advertises the async seam the parallel scatter-gather path
// prefers.
var (
	_ engine.ShardBackend    = (*RemoteShard)(nil)
	_ engine.BackendStats    = (*RemoteShard)(nil)
	_ engine.BatchStarter    = (*RemoteShard)(nil)
	_ engine.HealthReporter  = (*RemoteShard)(nil)
	_ engine.DeadlineSampler = (*RemoteShard)(nil)
	_ engine.EdgeAppender    = (*RemoteShard)(nil)
	_ engine.IngestReporter  = (*RemoteShard)(nil)
)

// NewRemoteShard returns a stub for partition shard behind cl. nodes and
// edges size the partition for Stats (zero when unknown).
func NewRemoteShard(cl *Client, shard, nodes, edges int) *RemoteShard {
	return &RemoteShard{cl: cl, shard: shard, nodes: nodes, edges: edges}
}

// Shard returns the partition id this stub serves.
func (rs *RemoteShard) Shard() int { return rs.shard }

// Requests reports the client-side served-call count (engine.BackendStats).
func (rs *RemoteShard) Requests() int64 { return rs.requests.Load() }

// ShardSize reports the partition size from the server handshake.
func (rs *RemoteShard) ShardSize() (nodes, edges int) { return rs.nodes, rs.edges }

// Healthy reports whether the underlying client's failure circuit would
// admit a call right now (engine.HealthReporter) — the engine's replica
// picker steers reads away from an unhealthy stub.
func (rs *RemoteShard) Healthy() bool { return rs.cl.Healthy() }

// SampleInto draws len(out) weighted neighbors of id shard-side,
// consuming r's stream exactly as an in-process shard would: the state
// travels in the request and the advanced state is restored from the
// response. On error r is not consumed and out is unspecified.
func (rs *RemoteShard) SampleInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) (int, error) {
	return rs.SampleIntoBy(id, out, r, time.Time{})
}

// SampleIntoBy is SampleInto bounded by a per-call deadline
// (engine.DeadlineSampler). The remaining budget shrinks the wire
// timeout for this one call; once spent, the call fails with the typed
// engine.ErrDeadlineExceeded without consuming r and without charging
// the client's health circuit. The zero deadline means unbounded and
// costs no clock read.
func (rs *RemoteShard) SampleIntoBy(id graph.NodeID, out []graph.NodeID, r *rng.RNG, deadline time.Time) (int, error) {
	if len(out) == 0 {
		return 0, nil
	}
	if !deadline.IsZero() && deadlineExpired(deadline) {
		return 0, rs.cl.errDeadline()
	}
	rs.requests.Add(1)
	n, st, err := rs.cl.sample(id, len(out), r.State(), out, deadline)
	if err != nil {
		return 0, err
	}
	r.SetState(st)
	return n, nil
}

// SampleBatchInto serves one scatter-gather group in one round trip; see
// engine.ShardBackend for the contract. The batch base travels in the
// request and every sub-stream is derived and drawn shard-side, so the
// draws are bit-identical to an in-process visit.
func (rs *RemoteShard) SampleBatchInto(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) (int, error) {
	if len(gids) == 0 {
		return 0, nil
	}
	rs.requests.Add(int64(len(gids)))
	return rs.cl.sampleBatch(gids, idx, base, k, out, ns)
}

// StartSampleBatch puts one scatter-gather visit on the wire without
// waiting for it — engine.BatchStarter, the overlap mechanism of the
// parallel batch path. The returned handle must be awaited.
func (rs *RemoteShard) StartSampleBatch(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) engine.BatchHandle {
	rs.requests.Add(int64(len(gids)))
	return rs.cl.startBatch(gids, idx, base, k, out, ns)
}

// AppendEdges implements engine.EdgeAppender over the graph-append op:
// exactly-once in effect over an at-least-once wire. The stub assigns
// the next sequence number from its cache and retries with the SAME
// number across transport failures, so a retry of a delivered-but-
// unacknowledged record lands as a duplicate instead of a double apply.
// A dup answer counts as success only when an earlier attempt of this
// very call may have been delivered; otherwise the cache was stale
// (another writer advanced the shard, or a fresh stub) and the call
// resyncs from the server's watermark and retries under a new number.
func (rs *RemoteShard) AppendEdges(edges []ingest.Edge) (uint64, error) {
	rs.appendMu.Lock()
	defer rs.appendMu.Unlock()
	rs.requests.Add(1)
	const maxAttempts = 5
	sent := false // an attempt of this call may have reached the server
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		seq := rs.nextSeq
		if seq == 0 {
			seq = 1 // cold cache: the first dup/gap answer resyncs us
		}
		res, last, err := rs.cl.appendOnce(rs.shard, seq, edges, false)
		if err != nil {
			if permanent(err) {
				// Server-answered (validation failure or redirect): nothing
				// was applied. Redirects surface as engine.ErrWrongEpoch so
				// the engine refreshes ownership and re-routes the batch.
				return 0, err
			}
			sent = true // the lost attempt may have been applied
			lastErr = err
			continue
		}
		switch res {
		case appendApplied:
			rs.nextSeq = seq + 1
			return seq, nil
		case appendDup:
			if sent {
				// Our earlier attempt landed; its response was lost.
				rs.nextSeq = seq + 1
				return seq, nil
			}
			rs.nextSeq = last + 1 // stale cache; retry under a fresh number
		case appendGap:
			// The server is behind seq, so no attempt of ours applied.
			rs.nextSeq = last + 1
			sent = false
		}
	}
	if lastErr == nil {
		lastErr = errors.New("rpc: append sequence never converged")
	}
	return 0, fmt.Errorf("rpc: append to shard %d failed after %d attempts: %w", rs.shard, maxAttempts, lastErr)
}

// IngestStats implements engine.IngestReporter from the stub's cached
// ingest row; false until a cluster refresh has observed one.
func (rs *RemoteShard) IngestStats() (engine.IngestStats, bool) {
	if st := rs.ingStats.Load(); st != nil {
		return *st, true
	}
	return engine.IngestStats{}, false
}

// setIngest caches the shard's latest observed ingest row.
func (rs *RemoteShard) setIngest(st *engine.IngestStats) {
	if st != nil {
		rs.ingStats.Store(st)
	}
}

// NeighborsOf fetches and decodes id's adjacency list (a fresh copy; the
// remote CSR slice cannot be shared).
func (rs *RemoteShard) NeighborsOf(id graph.NodeID) ([]graph.Edge, error) {
	rs.requests.Add(1)
	var nbrs []graph.Edge
	err := rs.cl.nodeRead(OpNeighbors, id, func(cu *cursor) error {
		n := int(cu.u32())
		if cu.bad || n < 0 || n > maxFrame/12 {
			return fmt.Errorf("rpc: malformed neighbors response")
		}
		if n > 0 {
			nbrs = make([]graph.Edge, n)
		}
		for i := range nbrs {
			nbrs[i] = graph.Edge{
				To:     graph.NodeID(cu.u32()),
				Type:   graph.EdgeType(cu.u32()),
				Weight: math.Float32frombits(cu.u32()),
			}
		}
		return cu.err()
	})
	if err != nil {
		return nil, err
	}
	return nbrs, nil
}

// FeaturesOf fetches id's categorical features.
func (rs *RemoteShard) FeaturesOf(id graph.NodeID) ([]int32, error) {
	rs.requests.Add(1)
	var fs []int32
	err := rs.cl.nodeRead(OpFeatures, id, func(cu *cursor) error {
		n := int(cu.u32())
		if cu.bad || n < 0 || n > maxFrame/4 {
			return fmt.Errorf("rpc: malformed features response")
		}
		if n > 0 {
			fs = make([]int32, n)
		}
		for i := range fs {
			fs[i] = int32(cu.u32())
		}
		return cu.err()
	})
	if err != nil {
		return nil, err
	}
	return fs, nil
}

// ContentOf fetches id's content vector (nil when the node has none).
func (rs *RemoteShard) ContentOf(id graph.NodeID) (tensor.Vec, error) {
	rs.requests.Add(1)
	var v tensor.Vec
	err := rs.cl.nodeRead(OpContent, id, func(cu *cursor) error {
		present := cu.u32()
		if present == 0 {
			return cu.err()
		}
		n := int(cu.u32())
		if cu.bad || n < 0 || n > maxFrame/4 {
			return fmt.Errorf("rpc: malformed content response")
		}
		v = make(tensor.Vec, n)
		for i := range v {
			v[i] = math.Float32frombits(cu.u32())
		}
		return cu.err()
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Logf is where the cluster logs skipped servers and rejected member
// addresses during a refresh. Replace it to route into a structured
// logger; it must be safe for concurrent use.
var Logf = log.Printf

// defaultPollTimeout bounds each server's ownership poll inside Refresh
// independently of the per-call Timeout, so one stalled server delays
// the whole refresh by at most this much.
const defaultPollTimeout = 2 * time.Second

// Cluster is a set of shard-server clients assembled into a remote
// Engine: the routing table is fetched from the first server, every
// partition is bound to the stubs of the servers claiming it (its
// replica group), and the resulting Engine routes exactly as an
// in-process one — fanning reads across the group and failing over when
// a replica dies.
//
// The binding is live: the Engine is assembled with a RefreshFunc that
// calls Refresh, so when a shard server drains a partition (a planned
// handoff driven by the reassign op) or a replica dies, the first
// redirected or failed-over call re-resolves ownership across the
// cluster's servers and the engine retries — no restart, no error
// surfaced to callers. Membership is dynamic: servers discovered
// through redirect address lists, epoch-poll member views and routing
// placement are validated and adopted on the next refresh, so ownership
// may move to — and replicas may appear on — servers that joined after
// the cluster was dialed.
type Cluster struct {
	Engine *engine.Engine
	Info   Info // shape handshake from the first server

	cfg         ClientConfig
	pollTimeout time.Duration // per-server Refresh poll bound (defaultPollTimeout)

	mu      sync.Mutex
	clients []*Client
	byAddr  map[string]int           // dialed address → clients index
	pending map[string]struct{}      // discovered addresses awaiting validation
	stubs   map[stubKey]*RemoteShard // reused across refreshes to keep counters

	refreshMu sync.Mutex // serializes poll→install so a stale view never overwrites a fresher one
}

// stubKey identifies one (server, partition) stub.
type stubKey struct{ server, shard int }

// stub returns the cached stub binding one partition to one server's
// client, creating it on first use. Reuse keeps the client-side request
// counters monotone across ownership swaps.
func (c *Cluster) stub(server int, sh ShardInfo) *RemoteShard {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := stubKey{server: server, shard: sh.ID}
	rs := c.stubs[key]
	if rs == nil {
		rs = NewRemoteShard(c.clients[server], sh.ID, sh.Nodes, sh.Edges)
		c.stubs[key] = rs
	}
	rs.setIngest(sh.Ingest)
	return rs
}

// noteMembers records discovered server addresses for validation on the
// next refresh. Safe for concurrent use; it is the discovery hook every
// cluster client feeds redirect address lists into.
func (c *Cluster) noteMembers(addrs []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range addrs {
		if a == "" || len(a) > 256 || len(c.pending)+len(c.clients) >= maxMembers {
			continue
		}
		if _, ok := c.byAddr[a]; ok {
			continue
		}
		c.pending[a] = struct{}{}
	}
}

// addClient installs a validated server address as a full cluster
// member and returns its client index.
func (c *Cluster) addClient(addr string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.byAddr[addr]; ok {
		return i
	}
	cl := NewClientWith(addr, c.cfg)
	cl.SetDiscover(c.noteMembers)
	c.clients = append(c.clients, cl)
	c.byAddr[addr] = len(c.clients) - 1
	return len(c.clients) - 1
}

// snapshotClients returns the current client list (append-only, so the
// prefix stays valid) for a lock-free poll loop.
func (c *Cluster) snapshotClients() []*Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clients[:len(c.clients):len(c.clients)]
}

// adoptPending validates every noted address with a short-deadline
// probe — reachability plus the graph-shape handshake — and adopts the
// ones that check out. Unreachable or mismatched addresses are logged
// and dropped (a redirect naming a bogus server must not poison the
// cluster); they re-enter pending if discovered again.
func (c *Cluster) adoptPending() {
	c.mu.Lock()
	if len(c.pending) == 0 {
		c.mu.Unlock()
		return
	}
	pend := make([]string, 0, len(c.pending))
	for a := range c.pending {
		pend = append(pend, a)
	}
	c.pending = make(map[string]struct{})
	c.mu.Unlock()
	sort.Strings(pend) // deterministic adoption → deterministic client order
	for _, addr := range pend {
		probe := NewClientWith(addr, ClientConfig{Conns: 1, Timeout: c.pollTimeout})
		info, err := probe.Info()
		probe.Close()
		if err != nil {
			Logf("rpc: cluster: dropping discovered member %s: %v", addr, err)
			continue
		}
		if info.NumShards != c.Info.NumShards || info.NumNodes != c.Info.NumNodes ||
			info.Strategy != c.Info.Strategy || info.ContentDim != c.Info.ContentDim {
			Logf("rpc: cluster: dropping discovered member %s: serves a different graph (%d/%d shards, %d/%d nodes)",
				addr, info.NumShards, c.Info.NumShards, info.NumNodes, c.Info.NumNodes)
			continue
		}
		c.addClient(addr)
	}
}

// pollRes is one server's ownership-poll outcome.
type pollRes struct {
	owned   []ShardInfo
	members []string
	err     error
}

// pollServers polls every client's routing epoch concurrently, each
// bounded by pollTimeout independently of the call Timeout: one dead or
// stalled server costs the refresh at most pollTimeout, never a hang.
// A timed-out slot reports the timeout; its goroutine finishes (and is
// discarded) in the background, writing only its private channel.
func (c *Cluster) pollServers(clients []*Client) []pollRes {
	results := make([]pollRes, len(clients))
	type landed struct {
		idx int
		res pollRes
	}
	ch := make(chan landed, len(clients))
	for si, cl := range clients {
		go func(si int, cl *Client) {
			var r pollRes
			_, r.owned, r.members, r.err = cl.RoutingEpoch()
			ch <- landed{idx: si, res: r}
		}(si, cl)
	}
	timer := time.NewTimer(c.pollTimeout)
	defer timer.Stop()
	got := 0
	for got < len(clients) {
		select {
		case l := <-ch:
			results[l.idx] = l.res
			got++
		case <-timer.C:
			for si := range results {
				if results[si].owned == nil && results[si].err == nil {
					results[si].err = fmt.Errorf("%w: %s: ownership poll timed out after %v",
						ErrShardUnavailable, clients[si].Addr(), c.pollTimeout)
				}
			}
			return results
		}
	}
	return results
}

// Refresh re-resolves which servers own each partition by polling every
// client's routing epoch, and installs the new replica binding into the
// engine. Every reachable claimant of a partition joins its replica
// group (client order, so the first claimant stays the deterministic
// primary); a server that cannot be reached — or times out, bounded
// per-server — keeps nothing bound, is logged and skipped. A partition
// nobody currently claims keeps its existing binding (a server
// mid-restart will either come back owning it or the next redirect will
// refresh again). Member views collected during the poll feed dynamic
// membership: newly discovered servers are validated, adopted and
// polled within the same refresh, so a redirect to a server the engine
// has never dialed still resolves in one refresh cycle. The engine
// single-flights calls here through its RefreshFunc seam; calling it
// directly (e.g. on an operator's schedule) is also safe — refreshes
// serialize, so an install always reflects a poll at least as recent as
// the one it replaces.
func (c *Cluster) Refresh() error {
	c.refreshMu.Lock()
	defer c.refreshMu.Unlock()
	nshards := c.Info.NumShards

	// Bounded discover→poll rounds: a poll can surface new members whose
	// ownership matters for this very refresh (the partition moved to a
	// server we had never dialed), so adoption loops until the member set
	// is stable — at most three rounds, then we bind what we have.
	var clients []*Client
	var polls []pollRes
	for round := 0; ; round++ {
		c.adoptPending()
		clients = c.snapshotClients()
		polls = c.pollServers(clients)
		for si := range polls {
			if polls[si].err == nil {
				c.noteMembers(polls[si].members)
			}
		}
		c.mu.Lock()
		stable := len(c.pending) == 0
		c.mu.Unlock()
		if stable || round >= 2 {
			break
		}
	}

	// Bind every reachable claimant, in client order so the primary
	// (groups[id][0]) stays deterministic.
	groups := make([][]engine.ShardBackend, nshards)
	var firstErr error
	reached := 0
	for si := range polls {
		if err := polls[si].err; err != nil {
			if firstErr == nil {
				firstErr = err
			}
			Logf("rpc: cluster: refresh skipping %s: %v", clients[si].Addr(), err)
			continue
		}
		reached++
		for _, sh := range polls[si].owned {
			if sh.ID < 0 || sh.ID >= nshards {
				return fmt.Errorf("rpc: %s claims shard %d of %d", clients[si].Addr(), sh.ID, nshards)
			}
			groups[sh.ID] = append(groups[sh.ID], c.stub(si, sh))
		}
	}
	if reached == 0 {
		return fmt.Errorf("rpc: routing refresh: no shard server reachable: %w", firstErr)
	}
	for id := range groups {
		if groups[id] == nil {
			groups[id] = c.Engine.ReplicaSet(id)
		}
	}
	c.Engine.InstallReplicaSets(groups)
	return nil
}

// DialCluster connects to the given shard servers with default pool
// bounds and assembles the remote engine.
func DialCluster(addrs ...string) (*Cluster, error) {
	return DialClusterWith(ClientConfig{}, addrs...)
}

// DialClusterWith is DialCluster with explicit per-server pool bounds.
// Every partition must be owned by at least one reachable server; every
// claimant joins the partition's replica group (dial order, so the
// first claimant is the primary). The assembled engine re-resolves
// ownership automatically when a partition later moves — including to
// servers that joined the cluster after this call (see Cluster).
func DialClusterWith(cfg ClientConfig, addrs ...string) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("rpc: no shard server addresses")
	}
	cluster := &Cluster{
		cfg:         cfg,
		pollTimeout: defaultPollTimeout,
		byAddr:      make(map[string]int),
		pending:     make(map[string]struct{}),
		stubs:       make(map[stubKey]*RemoteShard),
	}
	fail := func(err error) (*Cluster, error) {
		cluster.Close()
		return nil, err
	}
	var groups [][]engine.ShardBackend
	var routing *partition.Routing
	for i, addr := range addrs {
		cl := NewClientWith(addr, cfg)
		cl.SetDiscover(cluster.noteMembers)
		cluster.clients = append(cluster.clients, cl)
		cluster.byAddr[addr] = i
		info, err := cl.Info()
		if err != nil {
			return fail(fmt.Errorf("rpc: handshake with %s: %w", addr, err))
		}
		if i == 0 {
			cluster.Info = info
			routing, err = cl.Routing()
			if err != nil {
				return fail(fmt.Errorf("rpc: routing from %s: %w", addr, err))
			}
			groups = make([][]engine.ShardBackend, info.NumShards)
			// A v3 routing blob may carry replica placement: advertised
			// addresses of the servers serving each shard. Note them for
			// discovery — addresses we were not dialed with are validated
			// and adopted on the first refresh.
			if routing.HasPlacement() {
				for sh := 0; sh < info.NumShards; sh++ {
					cluster.noteMembers(routing.Placement(sh))
				}
			}
		} else if info.NumShards != cluster.Info.NumShards || info.NumNodes != cluster.Info.NumNodes ||
			info.Strategy != cluster.Info.Strategy || info.ContentDim != cluster.Info.ContentDim {
			return fail(fmt.Errorf("rpc: %s serves a different graph (%d/%d shards, %d/%d nodes)",
				addr, info.NumShards, cluster.Info.NumShards, info.NumNodes, cluster.Info.NumNodes))
		}
		for _, sh := range info.Owned {
			if sh.ID < 0 || sh.ID >= len(groups) {
				return fail(fmt.Errorf("rpc: %s claims shard %d of %d", addr, sh.ID, len(groups)))
			}
			groups[sh.ID] = append(groups[sh.ID], cluster.stub(i, sh))
		}
	}
	for id, g := range groups {
		if len(g) == 0 {
			return fail(fmt.Errorf("rpc: no server owns shard %d", id))
		}
	}
	cluster.Engine = engine.NewWithReplicaSets(routing, groups, cluster.Info.ContentDim)
	cluster.Engine.SetRefresh(cluster.Refresh)
	return cluster, nil
}

// IngestStats polls every cluster member's routing epoch and returns one
// write-path row per shard — from its first reachable claimant, in shard
// order. Unreachable servers are skipped (their shards report through
// replicas when any); cached stub rows are refreshed along the way.
func (c *Cluster) IngestStats() []engine.IngestStats {
	clients := c.snapshotClients()
	polls := c.pollServers(clients)
	byShard := make(map[int]engine.IngestStats)
	for si := range polls {
		if polls[si].err != nil {
			continue
		}
		for _, sh := range polls[si].owned {
			if sh.Ingest == nil {
				continue
			}
			c.stub(si, sh)
			if _, ok := byShard[sh.ID]; !ok {
				byShard[sh.ID] = *sh.Ingest
			}
		}
	}
	out := make([]engine.IngestStats, 0, len(byShard))
	for _, st := range byShard {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// SetPollTimeout overrides the per-server ownership-poll bound used by
// Refresh (default 2s). Not concurrency-safe; set before first use.
func (c *Cluster) SetPollTimeout(d time.Duration) { c.pollTimeout = d }

// Close shuts down the remote engine's fan-out workers and closes every
// client in the cluster.
func (c *Cluster) Close() error {
	if c.Engine != nil {
		c.Engine.Close()
	}
	for _, cl := range c.snapshotClients() {
		cl.Close()
	}
	return nil
}
