package rpc

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

// ErrShardUnavailable is the typed transport failure: the shard server
// could not be reached, or the connection died mid-call and one fresh
// redial also failed. Engine batch errors wrap it, so callers check
// errors.Is(err, rpc.ErrShardUnavailable) at any layer.
var ErrShardUnavailable = errors.New("rpc: shard unavailable")

// remoteError is an application-level failure the server answered with
// (bad request, non-owned shard). The connection is healthy and the call
// must not be retried.
type remoteError struct{ msg string }

func (e *remoteError) Error() string { return "rpc: server: " + e.msg }

// DefaultTimeout bounds dial and per-call I/O, guaranteeing a dead peer
// surfaces as ErrShardUnavailable instead of a hang.
const DefaultTimeout = 5 * time.Second

// Client is a pooled connection client to one shard server. Calls check
// out a pooled connection (dialing lazily), run one request/response
// cycle on it and return it; a connection that sees a transport error is
// discarded and the call retried once on a freshly dialed one — all reads
// are idempotent (seeds travel in the request), so the retry is safe, and
// it is what makes a restarted server transparently reconnect-and-serve.
// Safe for concurrent use; the steady-state sample/batch path reuses
// per-connection scratch and performs no heap allocation.
type Client struct {
	addr    string
	timeout time.Duration

	mu     sync.Mutex
	free   []*clientConn
	closed bool
}

type clientConn struct {
	c net.Conn
	frameScratch
}

// NewClient returns a client for the shard server at addr. No connection
// is made until the first call.
func NewClient(addr string) *Client {
	return &Client{addr: addr, timeout: DefaultTimeout}
}

// SetTimeout overrides the per-call I/O and dial deadline (default
// DefaultTimeout). Not concurrency-safe; set before first use.
func (cl *Client) SetTimeout(d time.Duration) { cl.timeout = d }

// Addr returns the server address this client targets.
func (cl *Client) Addr() string { return cl.addr }

// Close releases pooled connections. In-flight calls on checked-out
// connections finish (or fail) on their own.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.closed = true
	for _, cn := range cl.free {
		cn.c.Close()
	}
	cl.free = nil
	return nil
}

// acquire checks out a pooled connection, or dials when the pool is
// empty or fresh dialing is forced (the retry path).
func (cl *Client) acquire(fresh bool) (*clientConn, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, errors.New("client closed")
	}
	if !fresh && len(cl.free) > 0 {
		cn := cl.free[len(cl.free)-1]
		cl.free = cl.free[:len(cl.free)-1]
		cl.mu.Unlock()
		return cn, nil
	}
	cl.mu.Unlock()
	c, err := net.DialTimeout("tcp", cl.addr, cl.timeout)
	if err != nil {
		return nil, err
	}
	return &clientConn{c: c}, nil
}

func (cl *Client) release(cn *clientConn) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		cn.c.Close()
		return
	}
	cl.free = append(cl.free, cn)
	cl.mu.Unlock()
}

// roundTrip seals and writes the composed request frame, then reads the
// response body and strips the status byte. A statusErr response comes
// back as *remoteError with the connection still healthy.
func (cn *clientConn) roundTrip(req []byte, timeout time.Duration) ([]byte, error) {
	if err := cn.c.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if err := cn.writeFrame(cn.c, req); err != nil {
		return nil, err
	}
	body, err := cn.readFrame(cn.c)
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, errors.New("empty response frame")
	}
	if body[0] == statusErr {
		return nil, &remoteError{msg: string(body[1:])}
	}
	return body[1:], nil
}

// unavailable wraps the last transport error as the typed failure.
func (cl *Client) unavailable(err error) error {
	return fmt.Errorf("%w: %s: %v", ErrShardUnavailable, cl.addr, err)
}

// sample runs one OpSample round trip: k weighted draws for id, the
// caller's RNG state travelling out and the advanced state travelling
// back. n is k, or 0 for an isolated node.
func (cl *Client) sample(id graph.NodeID, k int, st [4]uint64, out []graph.NodeID) (n int, newSt [4]uint64, err error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cn, err := cl.acquire(attempt > 0)
		if err != nil {
			lastErr = err
			continue
		}
		req := cn.begin(byte(OpSample))
		req = appendU32(req, uint32(id))
		req = appendU32(req, uint32(k))
		for _, w := range st {
			req = appendU64(req, w)
		}
		body, err := cn.roundTrip(req, cl.timeout)
		if err != nil {
			cn.c.Close()
			var re *remoteError
			if errors.As(err, &re) {
				return 0, st, err
			}
			lastErr = err
			continue
		}
		cu := cursor{b: body}
		for i := range newSt {
			newSt[i] = cu.u64()
		}
		n := int(cu.u32())
		if n < 0 || n > k || n > len(out) {
			cn.c.Close()
			return 0, st, fmt.Errorf("rpc: sample returned %d draws for k=%d", n, k)
		}
		for i := 0; i < n; i++ {
			out[i] = graph.NodeID(cu.u32())
		}
		if cu.bad {
			cn.c.Close()
			return 0, st, cu.err()
		}
		cl.release(cn)
		return n, newSt, nil
	}
	return 0, st, cl.unavailable(lastErr)
}

// sampleBatch runs one OpBatch round trip — one scatter-gather shard
// visit, with the ShardBackend.SampleBatchInto contract: entry j's draws
// land in out[idx[j]*k:...] and its count in ns[idx[j]].
func (cl *Client) sampleBatch(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) (int, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cn, err := cl.acquire(attempt > 0)
		if err != nil {
			lastErr = err
			continue
		}
		req := cn.begin(byte(OpBatch))
		req = appendU64(req, base)
		req = appendU32(req, uint32(k))
		req = appendU32(req, uint32(len(gids)))
		for j := range gids {
			req = appendU32(req, uint32(idx[j]))
			req = appendU32(req, uint32(gids[j]))
		}
		body, err := cn.roundTrip(req, cl.timeout)
		if err != nil {
			cn.c.Close()
			var re *remoteError
			if errors.As(err, &re) {
				return 0, err
			}
			lastErr = err
			continue
		}
		cu := cursor{b: body}
		total := int(cu.u32())
		ok := true
		for j := range gids {
			n := int32(cu.u32())
			i := int(idx[j])
			if n < 0 || int(n) > k || (i+1)*k > len(out) || i >= len(ns) {
				ok = false
				break
			}
			ns[i] = n
			lo := i * k
			for d := 0; d < int(n); d++ {
				out[lo+d] = graph.NodeID(cu.u32())
			}
		}
		if !ok || cu.bad {
			cn.c.Close()
			return 0, fmt.Errorf("rpc: malformed batch response (%d bytes)", len(body))
		}
		cl.release(cn)
		return total, nil
	}
	return 0, cl.unavailable(lastErr)
}

// call runs one request/response cycle through the shared connection
// lifecycle — acquire, round trip, discard-and-retry-once on transport
// failure, short-circuit on a server-answered error. encode appends the
// request payload (nil for payload-free ops); decode reads the response
// body while the connection is still checked out. The zero-allocation
// hot paths (sample, sampleBatch) keep hand-rolled copies of this
// scaffold because the closures here cost heap allocations — fine for
// handshakes and attribute reads, not for the per-request cycle.
func (cl *Client) call(op Op, encode func([]byte) []byte, decode func(body []byte) error) error {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cn, err := cl.acquire(attempt > 0)
		if err != nil {
			lastErr = err
			continue
		}
		req := cn.begin(byte(op))
		if encode != nil {
			req = encode(req)
		}
		body, err := cn.roundTrip(req, cl.timeout)
		if err != nil {
			cn.c.Close()
			var re *remoteError
			if errors.As(err, &re) {
				return err
			}
			lastErr = err
			continue
		}
		if err := decode(body); err != nil {
			cn.c.Close()
			return err
		}
		cl.release(cn)
		return nil
	}
	return cl.unavailable(lastErr)
}

// nodeRead runs one single-id read op.
func (cl *Client) nodeRead(op Op, id graph.NodeID, decode func(cu *cursor) error) error {
	return cl.call(op,
		func(b []byte) []byte { return appendU32(b, uint32(id)) },
		func(body []byte) error {
			cu := cursor{b: body}
			return decode(&cu)
		})
}

// ShardInfo describes one partition a server owns.
type ShardInfo struct {
	ID, Nodes, Edges int
}

// Info is the server handshake: the shape of the graph behind the server
// and the partitions it owns.
type Info struct {
	NumNodes   int
	ContentDim int
	NumShards  int
	Strategy   partition.Strategy
	Owned      []ShardInfo
}

// Info fetches the server handshake.
func (cl *Client) Info() (Info, error) {
	var info Info
	err := cl.call(OpInfo, nil, func(body []byte) error {
		cu := cursor{b: body}
		info.NumNodes = int(cu.u32())
		info.ContentDim = int(cu.u32())
		info.NumShards = int(cu.u32())
		info.Strategy = partition.Strategy(cu.u32())
		owned := int(cu.u32())
		if cu.bad || owned < 0 || owned > info.NumShards {
			return fmt.Errorf("rpc: malformed info response")
		}
		info.Owned = make([]ShardInfo, owned)
		for i := range info.Owned {
			info.Owned[i] = ShardInfo{ID: int(cu.u32()), Nodes: int(cu.u32()), Edges: int(cu.u32())}
		}
		if err := cu.err(); err != nil {
			return err
		}
		sort.Slice(info.Owned, func(i, j int) bool { return info.Owned[i].ID < info.Owned[j].ID })
		return nil
	})
	return info, err
}

// Routing fetches the partition's routing table — everything the Engine
// routing layer needs to direct requests at this cluster.
func (cl *Client) Routing() (*partition.Routing, error) {
	var r *partition.Routing
	err := cl.call(OpRouting, nil, func(body []byte) error {
		var uerr error
		r, uerr = partition.UnmarshalRouting(body)
		return uerr
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// RemoteShard is the client-side stub for one partition served by a
// shard server: an engine.ShardBackend whose reads happen over the wire.
// Several stubs (one per owned partition) can share one Client and its
// connection pool.
type RemoteShard struct {
	cl           *Client
	shard        int
	nodes, edges int
	requests     atomic.Int64
}

// The stub plugs into the routing layer exactly like an in-process shard.
var (
	_ engine.ShardBackend = (*RemoteShard)(nil)
	_ engine.BackendStats = (*RemoteShard)(nil)
)

// NewRemoteShard returns a stub for partition shard behind cl. nodes and
// edges size the partition for Stats (zero when unknown).
func NewRemoteShard(cl *Client, shard, nodes, edges int) *RemoteShard {
	return &RemoteShard{cl: cl, shard: shard, nodes: nodes, edges: edges}
}

// Shard returns the partition id this stub serves.
func (rs *RemoteShard) Shard() int { return rs.shard }

// Requests reports the client-side served-call count (engine.BackendStats).
func (rs *RemoteShard) Requests() int64 { return rs.requests.Load() }

// ShardSize reports the partition size from the server handshake.
func (rs *RemoteShard) ShardSize() (nodes, edges int) { return rs.nodes, rs.edges }

// SampleInto draws len(out) weighted neighbors of id shard-side,
// consuming r's stream exactly as an in-process shard would: the state
// travels in the request and the advanced state is restored from the
// response. On error r is not consumed and out is unspecified.
func (rs *RemoteShard) SampleInto(id graph.NodeID, out []graph.NodeID, r *rng.RNG) (int, error) {
	if len(out) == 0 {
		return 0, nil
	}
	rs.requests.Add(1)
	n, st, err := rs.cl.sample(id, len(out), r.State(), out)
	if err != nil {
		return 0, err
	}
	r.SetState(st)
	return n, nil
}

// SampleBatchInto serves one scatter-gather group in one round trip; see
// engine.ShardBackend for the contract. The batch base travels in the
// request and every sub-stream is derived and drawn shard-side, so the
// draws are bit-identical to an in-process visit.
func (rs *RemoteShard) SampleBatchInto(gids []graph.NodeID, idx []int32, base uint64, k int, out []graph.NodeID, ns []int32) (int, error) {
	if len(gids) == 0 {
		return 0, nil
	}
	rs.requests.Add(int64(len(gids)))
	return rs.cl.sampleBatch(gids, idx, base, k, out, ns)
}

// NeighborsOf fetches and decodes id's adjacency list (a fresh copy; the
// remote CSR slice cannot be shared).
func (rs *RemoteShard) NeighborsOf(id graph.NodeID) ([]graph.Edge, error) {
	rs.requests.Add(1)
	var nbrs []graph.Edge
	err := rs.cl.nodeRead(OpNeighbors, id, func(cu *cursor) error {
		n := int(cu.u32())
		if cu.bad || n < 0 || n > maxFrame/12 {
			return fmt.Errorf("rpc: malformed neighbors response")
		}
		if n > 0 {
			nbrs = make([]graph.Edge, n)
		}
		for i := range nbrs {
			nbrs[i] = graph.Edge{
				To:     graph.NodeID(cu.u32()),
				Type:   graph.EdgeType(cu.u32()),
				Weight: math.Float32frombits(cu.u32()),
			}
		}
		return cu.err()
	})
	if err != nil {
		return nil, err
	}
	return nbrs, nil
}

// FeaturesOf fetches id's categorical features.
func (rs *RemoteShard) FeaturesOf(id graph.NodeID) ([]int32, error) {
	rs.requests.Add(1)
	var fs []int32
	err := rs.cl.nodeRead(OpFeatures, id, func(cu *cursor) error {
		n := int(cu.u32())
		if cu.bad || n < 0 || n > maxFrame/4 {
			return fmt.Errorf("rpc: malformed features response")
		}
		if n > 0 {
			fs = make([]int32, n)
		}
		for i := range fs {
			fs[i] = int32(cu.u32())
		}
		return cu.err()
	})
	if err != nil {
		return nil, err
	}
	return fs, nil
}

// ContentOf fetches id's content vector (nil when the node has none).
func (rs *RemoteShard) ContentOf(id graph.NodeID) (tensor.Vec, error) {
	rs.requests.Add(1)
	var v tensor.Vec
	err := rs.cl.nodeRead(OpContent, id, func(cu *cursor) error {
		present := cu.u32()
		if present == 0 {
			return cu.err()
		}
		n := int(cu.u32())
		if cu.bad || n < 0 || n > maxFrame/4 {
			return fmt.Errorf("rpc: malformed content response")
		}
		v = make(tensor.Vec, n)
		for i := range v {
			v[i] = math.Float32frombits(cu.u32())
		}
		return cu.err()
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Cluster is a set of shard-server clients assembled into a remote
// Engine: the routing table is fetched from the first server, every
// partition is bound to the stub of the server owning it, and the
// resulting Engine routes exactly as an in-process one.
type Cluster struct {
	Engine  *engine.Engine
	Info    Info // shape handshake from the first server
	clients []*Client
}

// DialCluster connects to the given shard servers and assembles the
// remote engine. Every partition must be owned by exactly one reachable
// server (the first claimant wins when servers overlap); a partition no
// server owns is an error.
func DialCluster(addrs ...string) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("rpc: no shard server addresses")
	}
	cluster := &Cluster{}
	fail := func(err error) (*Cluster, error) {
		cluster.Close()
		return nil, err
	}
	var backends []engine.ShardBackend
	var routing *partition.Routing
	for i, addr := range addrs {
		cl := NewClient(addr)
		cluster.clients = append(cluster.clients, cl)
		info, err := cl.Info()
		if err != nil {
			return fail(fmt.Errorf("rpc: handshake with %s: %w", addr, err))
		}
		if i == 0 {
			cluster.Info = info
			routing, err = cl.Routing()
			if err != nil {
				return fail(fmt.Errorf("rpc: routing from %s: %w", addr, err))
			}
			backends = make([]engine.ShardBackend, info.NumShards)
		} else if info.NumShards != cluster.Info.NumShards || info.NumNodes != cluster.Info.NumNodes ||
			info.Strategy != cluster.Info.Strategy || info.ContentDim != cluster.Info.ContentDim {
			return fail(fmt.Errorf("rpc: %s serves a different graph (%d/%d shards, %d/%d nodes)",
				addr, info.NumShards, cluster.Info.NumShards, info.NumNodes, cluster.Info.NumNodes))
		}
		for _, sh := range info.Owned {
			if sh.ID < 0 || sh.ID >= len(backends) {
				return fail(fmt.Errorf("rpc: %s claims shard %d of %d", addr, sh.ID, len(backends)))
			}
			if backends[sh.ID] == nil {
				backends[sh.ID] = NewRemoteShard(cl, sh.ID, sh.Nodes, sh.Edges)
			}
		}
	}
	for id, be := range backends {
		if be == nil {
			return fail(fmt.Errorf("rpc: no server owns shard %d", id))
		}
	}
	cluster.Engine = engine.NewWithBackends(routing, backends, cluster.Info.ContentDim)
	return cluster, nil
}

// Close closes every client in the cluster.
func (c *Cluster) Close() error {
	for _, cl := range c.clients {
		cl.Close()
	}
	return nil
}
