package rpc

import (
	"testing"
	"time"

	"zoomer/internal/graph"
	"zoomer/internal/rng"
)

// BenchmarkFailoverFirstDraw times the caller-visible failover latency:
// one replica of a warm 2-replica cluster is killed and the timed
// region is the first single draw after the kill — dead-connection
// detection plus the retry on the surviving sibling. Setup (servers,
// dial, warm-up) is rebuilt outside the timer each iteration.
func BenchmarkFailoverFirstDraw(b *testing.B) {
	Logf = func(string, ...any) {} // refresh skip-logging would corrupt -bench output parsing
	g := buildGraph(b)
	all := []int{0, 1}
	out := make([]graph.NodeID, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srvA, addrA := startReplicaServer(b, g, 2, all)
		_, addrB := startReplicaServer(b, g, 2, all)
		cluster, err := DialCluster(addrA, addrB)
		if err != nil {
			b.Fatal(err)
		}
		cluster.SetPollTimeout(time.Second)
		r := rng.New(uint64(i) + 1)
		var ego graph.NodeID
		for id := 0; id < g.NumNodes(); id++ {
			if g.Degree(graph.NodeID(id)) >= 5 {
				ego = graph.NodeID(id)
				break
			}
		}
		// Warm both replicas' connections so the timed draw pays only for
		// the failure, not a first dial.
		for w := 0; w < 4; w++ {
			if _, err := cluster.Engine.TrySampleNeighborsInto(ego, out, r); err != nil {
				b.Fatal(err)
			}
		}
		srvA.Close()
		b.StartTimer()
		if _, err := cluster.Engine.TrySampleNeighborsInto(ego, out, r); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		cluster.Close()
		b.StartTimer()
	}
}

// BenchmarkFailoverDeadReplica measures steady-state single draws while
// one of two replicas stays dead — after the circuit has opened and the
// background refresh has rebound the group, i.e. the per-call price of
// serving through an outage (it should sit at the healthy round-trip
// figure, not pay a failed dial per call).
func BenchmarkFailoverDeadReplica(b *testing.B) {
	Logf = func(string, ...any) {} // refresh skip-logging would corrupt -bench output parsing
	g := buildGraph(b)
	all := []int{0, 1}
	srvA, addrA := startReplicaServer(b, g, 2, all)
	_, addrB := startReplicaServer(b, g, 2, all)
	cluster, err := DialCluster(addrA, addrB)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetPollTimeout(time.Second)
	remote := cluster.Engine
	var ego graph.NodeID
	for id := 0; id < g.NumNodes(); id++ {
		if g.Degree(graph.NodeID(id)) >= 5 {
			ego = graph.NodeID(id)
			break
		}
	}
	r := rng.New(1)
	out := make([]graph.NodeID, 10)
	srvA.Close()
	// Drive the transition: first draws pay the failover, open the dead
	// replica's circuit and kick the refresh that drops it from the
	// group; then settle.
	for w := 0; w < 64; w++ {
		if _, err := remote.TrySampleNeighborsInto(ego, out, r); err != nil {
			b.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := remote.TrySampleNeighborsInto(ego, out, r); err != nil {
			b.Fatal(err)
		}
	}
}
