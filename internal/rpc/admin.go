package rpc

import (
	"errors"
	"fmt"
	"time"
)

// ErrAdminDeadline is the typed outcome of an admin operation that
// exhausted its reachability probes or its overall deadline: the target
// server never became reachable within the configured bounds. Callers
// (zoomer-shard's admin mode) map it to a distinct exit code so scripts
// can tell "server unreachable" from "server refused the command".
var ErrAdminDeadline = errors.New("rpc: admin deadline exceeded (server unreachable)")

// AdminConfig bounds an admin session against an unreachable or slow
// server. The zero value gets sensible defaults.
type AdminConfig struct {
	// Attempts is how many reachability probes Connect makes before
	// failing with ErrAdminDeadline (default 3).
	Attempts int
	// ProbeTimeout bounds each reachability probe (default 2s).
	ProbeTimeout time.Duration
	// Backoff is the wait after the first failed probe, doubling per
	// retry (default 250ms).
	Backoff time.Duration
	// OpTimeout bounds each admin operation once the server has proven
	// reachable (default 5m — an acquire blocks while the server builds
	// the partition's alias tables, far beyond the RPC default).
	OpTimeout time.Duration
}

func (cfg AdminConfig) withDefaults() AdminConfig {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 3
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 5 * time.Minute
	}
	return cfg
}

// Admin is a deadline-bounded admin session with one shard server: every
// operation either completes or fails typed within its bounds, never
// hanging on an unreachable server. Construct with NewAdmin, then
// Connect before issuing commands.
type Admin struct {
	addr string
	cfg  AdminConfig
	cl   *Client // long-deadline client; non-nil after a successful Connect
}

// NewAdmin returns an unconnected admin session for the server at addr.
func NewAdmin(addr string, cfg AdminConfig) *Admin {
	return &Admin{addr: addr, cfg: cfg.withDefaults()}
}

// Connect proves the server reachable with bounded, backed-off probes —
// each a short-deadline handshake, so a dead server costs
// Attempts×ProbeTimeout plus backoff, not one OpTimeout per command —
// then opens the long-deadline operation client. Exhausting the probes
// fails with an error matching ErrAdminDeadline.
func (a *Admin) Connect() error {
	if a.cl != nil {
		return nil
	}
	var lastErr error
	backoff := a.cfg.Backoff
	for attempt := 0; attempt < a.cfg.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		probe := NewClientWith(a.addr, ClientConfig{Conns: 1, Timeout: a.cfg.ProbeTimeout})
		_, err := probe.Info()
		probe.Close()
		if err == nil {
			a.cl = NewClientWith(a.addr, ClientConfig{Conns: 1, Timeout: a.cfg.OpTimeout})
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("%w: %s after %d probes: %v", ErrAdminDeadline, a.addr, a.cfg.Attempts, lastErr)
}

// Reassign sends one acquire/release command (see Client.Reassign),
// bounded by OpTimeout.
func (a *Admin) Reassign(shard int, acquire bool) (uint64, error) {
	if err := a.Connect(); err != nil {
		return 0, err
	}
	return a.cl.Reassign(shard, acquire)
}

// Status polls the server's routing epoch, owned partitions and member
// view, bounded by OpTimeout.
func (a *Admin) Status() (epoch uint64, owned []ShardInfo, members []string, err error) {
	if err := a.Connect(); err != nil {
		return 0, nil, nil, err
	}
	return a.cl.RoutingEpoch()
}

// Close tears down the session.
func (a *Admin) Close() error {
	if a.cl != nil {
		return a.cl.Close()
	}
	return nil
}
