package rpc

import (
	"net"
	"testing"

	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/graphbuild"
	"zoomer/internal/loggen"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
	"zoomer/internal/sampling"
)

func buildGraph(t testing.TB) *graph.Graph {
	t.Helper()
	logs := loggen.MustGenerate(loggen.TaobaoConfig(loggen.ScaleTiny, 1))
	return graphbuild.Build(logs, graphbuild.DefaultConfig()).Graph
}

// startServer builds and starts one shard server on a loopback listener,
// returning it and its dialable address.
func startServer(t testing.TB, g *graph.Graph, cfg ServerConfig) (*Server, string) {
	t.Helper()
	s := NewServer(g, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s.Start(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

// startCluster spins one server per owned-set and dials them into a
// remote engine.
func startCluster(t testing.TB, g *graph.Graph, shards int, strat partition.Strategy, layout [][]int, replicas int) ([]*Server, *Cluster) {
	t.Helper()
	servers := make([]*Server, len(layout))
	addrs := make([]string, len(layout))
	for i, owned := range layout {
		servers[i], addrs[i] = startServer(t, g, ServerConfig{
			Shards: shards, Strategy: strat, Owned: owned, Replicas: replicas,
		})
	}
	cluster, err := DialCluster(addrs...)
	if err != nil {
		t.Fatalf("dial cluster: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	return servers, cluster
}

// The loopback equivalence pin: an Engine whose shards sit behind TCP
// must be bit-identical to the in-process single-store engine — single
// draws, scatter-gather batches, multi-hop trees and full ROI
// construction — across both partition strategies and a multi-server
// layout. This is what makes the distributed backend trustworthy.
func TestLoopbackEquivalence(t *testing.T) {
	g := buildGraph(t)
	local := engine.New(g, engine.Config{Shards: 1, Replicas: 1})

	cases := []struct {
		name   string
		shards int
		strat  partition.Strategy
		layout [][]int
	}{
		{"hash-4-two-servers", 4, partition.Hash, [][]int{{0, 2}, {1, 3}}},
		{"degree-3-one-server", 3, partition.DegreeBalanced, [][]int{{0, 1, 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, cluster := startCluster(t, g, tc.shards, tc.strat, tc.layout, 2)
			remote := cluster.Engine
			if remote.NumNodes() != g.NumNodes() || remote.ContentDim() != g.ContentDim() {
				t.Fatalf("handshake shape %d/%d, want %d/%d",
					remote.NumNodes(), remote.ContentDim(), g.NumNodes(), g.ContentDim())
			}

			// Single draws: the RNG state travels over the wire and must be
			// consumed exactly as in-process.
			rl, rr := rng.New(99), rng.New(99)
			want := make([]graph.NodeID, 7)
			got := make([]graph.NodeID, 7)
			for id := 0; id < g.NumNodes(); id += 3 {
				nid := graph.NodeID(id)
				nw := local.SampleNeighborsInto(nid, want, rl)
				ng := remote.SampleNeighborsInto(nid, got, rr)
				if nw != ng {
					t.Fatalf("node %d: remote wrote %d, local %d", id, ng, nw)
				}
				for i := 0; i < nw; i++ {
					if want[i] != got[i] {
						t.Fatalf("node %d draw %d: remote %d, local %d", id, i, got[i], want[i])
					}
				}
			}
			if a, b := rl.Uint64(), rr.Uint64(); a != b {
				t.Fatalf("RNG streams diverged after remote draws: %d vs %d", a, b)
			}

			// Scatter-gather batch.
			r := rng.New(7)
			const k = 6
			ids := make([]graph.NodeID, 300)
			for i := range ids {
				ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
			}
			wantOut := make([]graph.NodeID, len(ids)*k)
			wantNs := make([]int32, len(ids))
			gotOut := make([]graph.NodeID, len(ids)*k)
			gotNs := make([]int32, len(ids))
			if _, err := local.SampleNeighborsBatchInto(ids, k, wantOut, wantNs, rng.New(123), engine.NewBatchScratch()); err != nil {
				t.Fatalf("local batch: %v", err)
			}
			if _, err := remote.SampleNeighborsBatchInto(ids, k, gotOut, gotNs, rng.New(123), engine.NewBatchScratch()); err != nil {
				t.Fatalf("remote batch: %v", err)
			}
			for i := range ids {
				if wantNs[i] != gotNs[i] {
					t.Fatalf("batch entry %d: remote count %d, local %d", i, gotNs[i], wantNs[i])
				}
				for j := 0; j < int(wantNs[i]); j++ {
					if wantOut[i*k+j] != gotOut[i*k+j] {
						t.Fatalf("batch entry %d draw %d: remote %d, local %d", i, j, gotOut[i*k+j], wantOut[i*k+j])
					}
				}
			}

			// Frontier-batched multi-hop expansion.
			var ego graph.NodeID
			for id := 0; id < g.NumNodes(); id++ {
				if g.Degree(graph.NodeID(id)) >= 5 {
					ego = graph.NodeID(id)
					break
				}
			}
			wantTree, err := local.SampleTree(ego, 2, 5, rng.New(55), engine.NewBatchScratch())
			if err != nil {
				t.Fatalf("local tree: %v", err)
			}
			gotTree, err := remote.SampleTree(ego, 2, 5, rng.New(55), engine.NewBatchScratch())
			if err != nil {
				t.Fatalf("remote tree: %v", err)
			}
			if len(wantTree) <= 1 || len(gotTree) != len(wantTree) {
				t.Fatalf("tree sizes %d vs %d", len(gotTree), len(wantTree))
			}
			for i := range wantTree {
				if wantTree[i] != gotTree[i] {
					t.Fatalf("tree node %d: remote %+v, local %+v", i, gotTree[i], wantTree[i])
				}
			}

			// Full ROI construction through the GraphView seam: the sampler
			// reads adjacencies and content over the wire and must reproduce
			// the local trees exactly.
			s := sampling.NewFocalBiased()
			var compare func(a, b *sampling.Tree)
			compare = func(a, b *sampling.Tree) {
				if a.Node != b.Node || len(a.Edges) != len(b.Edges) {
					t.Fatalf("ROI tree node %d/%d edges %d/%d", a.Node, b.Node, len(a.Edges), len(b.Edges))
				}
				for i := range a.Edges {
					if a.Edges[i] != b.Edges[i] {
						t.Fatalf("ROI edge %d differs at node %d", i, a.Node)
					}
					compare(a.Children[i], b.Children[i])
				}
			}
			for id := 0; id < g.NumNodes() && id < 100; id += 17 {
				nid := graph.NodeID(id)
				focal := g.Content(nid)
				want := sampling.BuildTree(g, nid, focal, 2, 4, s, rng.New(31), nil)
				got := sampling.BuildTree(remote, nid, focal, 2, 4, s, rng.New(31), sampling.NewScratch())
				compare(want, got)
			}
		})
	}
}

// Node attribute reads over the wire must return exactly the source
// graph's rows.
func TestRemoteReadsMatchGraph(t *testing.T) {
	g := buildGraph(t)
	_, cluster := startCluster(t, g, 4, partition.Hash, [][]int{{0, 1}, {2, 3}}, 1)
	remote := cluster.Engine
	for id := 0; id < g.NumNodes(); id += 5 {
		nid := graph.NodeID(id)
		want, got := g.Neighbors(nid), remote.Neighbors(nid)
		if len(want) != len(got) {
			t.Fatalf("node %d: %d edges remote, %d local", id, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("node %d edge %d: %+v vs %+v", id, i, got[i], want[i])
			}
		}
		wf, gf := g.Features(nid), remote.Features(nid)
		if len(wf) != len(gf) {
			t.Fatalf("node %d: feature rows differ", id)
		}
		for i := range wf {
			if wf[i] != gf[i] {
				t.Fatalf("node %d feature %d differs", id, i)
			}
		}
		wc, gc := g.Content(nid), remote.Content(nid)
		if len(wc) != len(gc) {
			t.Fatalf("node %d: content rows differ (%d vs %d)", id, len(gc), len(wc))
		}
		for i := range wc {
			if wc[i] != gc[i] {
				t.Fatalf("node %d content %d differs", id, i)
			}
		}
	}
}

// The routing layer must accept any mix of in-process shards and remote
// stubs and stay bit-identical to the fully local engine.
func TestMixedLocalRemoteBackends(t *testing.T) {
	g := buildGraph(t)
	const shards = 4
	local := engine.New(g, engine.Config{Shards: shards, Replicas: 1, Strategy: partition.Hash})

	// Shards 1 and 3 live behind a server; 0 and 2 are in-process.
	_, addr := startServer(t, g, ServerConfig{Shards: shards, Strategy: partition.Hash, Owned: []int{1, 3}, Replicas: 1})
	cl := NewClient(addr)
	t.Cleanup(func() { cl.Close() })
	info, err := cl.Info()
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	routing, err := cl.Routing()
	if err != nil {
		t.Fatalf("routing: %v", err)
	}
	part := partition.Split(g, shards, partition.Hash)
	backends := make([]engine.ShardBackend, shards)
	backends[0] = engine.BuildShard(part, 0, 1)
	backends[2] = engine.BuildShard(part, 2, 1)
	for _, sh := range info.Owned {
		backends[sh.ID] = NewRemoteShard(cl, sh.ID, sh.Nodes, sh.Edges)
	}
	mixed := engine.NewWithBackends(routing, backends, info.ContentDim)

	r := rng.New(17)
	const k = 5
	ids := make([]graph.NodeID, 200)
	for i := range ids {
		ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	wantOut := make([]graph.NodeID, len(ids)*k)
	wantNs := make([]int32, len(ids))
	gotOut := make([]graph.NodeID, len(ids)*k)
	gotNs := make([]int32, len(ids))
	if _, err := local.SampleNeighborsBatchInto(ids, k, wantOut, wantNs, rng.New(5), nil); err != nil {
		t.Fatalf("local batch: %v", err)
	}
	if _, err := mixed.SampleNeighborsBatchInto(ids, k, gotOut, gotNs, rng.New(5), nil); err != nil {
		t.Fatalf("mixed batch: %v", err)
	}
	for i := range ids {
		if wantNs[i] != gotNs[i] {
			t.Fatalf("entry %d: mixed count %d, local %d", i, gotNs[i], wantNs[i])
		}
		for j := 0; j < int(wantNs[i]); j++ {
			if wantOut[i*k+j] != gotOut[i*k+j] {
				t.Fatalf("entry %d draw %d: mixed %d, local %d", i, j, gotOut[i*k+j], wantOut[i*k+j])
			}
		}
	}
}

// The acceptance pin on round-trip budget: a scatter-gather batch issues
// at most one OpBatch request per owning shard, and SampleTree at most
// one per owning shard per hop — asserted against the servers' own
// request counters with one server per shard.
func TestBatchRoundTripBudget(t *testing.T) {
	g := buildGraph(t)
	const shards = 4
	servers, cluster := startCluster(t, g, shards, partition.Hash,
		[][]int{{0}, {1}, {2}, {3}}, 1)
	remote := cluster.Engine

	// A batch spanning every shard: exactly one round trip per shard.
	const k = 4
	ids := make([]graph.NodeID, 64)
	r := rng.New(3)
	for i := range ids {
		ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	out := make([]graph.NodeID, len(ids)*k)
	ns := make([]int32, len(ids))
	if _, err := remote.SampleNeighborsBatchInto(ids, k, out, ns, r, nil); err != nil {
		t.Fatalf("batch: %v", err)
	}
	owned := make([]bool, shards)
	for _, id := range ids {
		owned[remote.ShardOf(id)] = true
	}
	for si, srv := range servers {
		want := int64(0)
		if owned[si] {
			want = 1
		}
		if got := srv.OpCount(OpBatch); got != want {
			t.Fatalf("shard %d served %d batch round trips for one batch, want %d", si, got, want)
		}
	}

	// A multi-hop tree: ≤ hops round trips per shard.
	before := make([]int64, shards)
	for si, srv := range servers {
		before[si] = srv.OpCount(OpBatch)
	}
	const hops = 2
	var ego graph.NodeID
	for id := 0; id < g.NumNodes(); id++ {
		if g.Degree(graph.NodeID(id)) >= 5 {
			ego = graph.NodeID(id)
			break
		}
	}
	if _, err := remote.SampleTree(ego, hops, 5, r, nil); err != nil {
		t.Fatalf("tree: %v", err)
	}
	for si, srv := range servers {
		if got := srv.OpCount(OpBatch) - before[si]; got > hops {
			t.Fatalf("shard %d served %d batch round trips for a %d-hop tree", si, got, hops)
		}
	}
}

// Stats over a remote cluster folds in the stubs' client-side request
// counters and the handshake's partition sizes.
func TestRemoteStats(t *testing.T) {
	g := buildGraph(t)
	_, cluster := startCluster(t, g, 3, partition.DegreeBalanced, [][]int{{0, 1, 2}}, 1)
	remote := cluster.Engine
	r := rng.New(4)
	out := make([]graph.NodeID, 4)
	for id := 0; id < 60; id++ {
		remote.SampleNeighborsInto(graph.NodeID(id%g.NumNodes()), out, r)
	}
	st := remote.Stats()
	var totalReq int64
	totalNodes := 0
	for si := 0; si < 3; si++ {
		totalReq += st.RequestsPerShard[si]
		totalNodes += st.NodesPerShard[si]
	}
	if totalReq != 60 {
		t.Fatalf("remote stats counted %d requests, want 60", totalReq)
	}
	if totalNodes != g.NumNodes() {
		t.Fatalf("remote stats count %d nodes, graph has %d", totalNodes, g.NumNodes())
	}
}

// The steady-state remote sample/batch cycle must stay allocation-free —
// client encode/decode scratch, pooled connections and server-side
// staging are all reused. Both ends run in this process, so the
// measurement covers the full cycle.
func TestRemoteHotPathDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		// The race detector makes sync.Pool drop items at random, so the
		// pooled call timers and batch handles re-allocate spuriously.
		t.Skip("allocation accounting is not meaningful under -race")
	}
	g := buildGraph(t)
	_, cluster := startCluster(t, g, 2, partition.Hash, [][]int{{0, 1}}, 1)
	remote := cluster.Engine
	const batch, k = 32, 6
	r := rng.New(8)
	ids := make([]graph.NodeID, batch)
	for i := range ids {
		ids[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	out := make([]graph.NodeID, batch*k)
	ns := make([]int32, batch)
	bs := engine.NewBatchScratch()
	single := make([]graph.NodeID, k)

	// Warm the pool and every scratch buffer.
	for i := 0; i < 5; i++ {
		if _, err := remote.SampleNeighborsBatchInto(ids, k, out, ns, r, bs); err != nil {
			t.Fatalf("warm batch: %v", err)
		}
		remote.TrySampleNeighborsInto(ids[0], single, r)
	}
	if avg := testing.AllocsPerRun(50, func() {
		remote.SampleNeighborsBatchInto(ids, k, out, ns, r, bs)
	}); avg > 0.5 {
		t.Fatalf("remote batch allocates %.1f objects/op at steady state", avg)
	}
	if avg := testing.AllocsPerRun(50, func() {
		remote.TrySampleNeighborsInto(ids[0], single, r)
	}); avg > 0.5 {
		t.Fatalf("remote single sample allocates %.1f objects/op at steady state", avg)
	}
}
