package rpc

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zoomer/internal/engine"
	"zoomer/internal/graph"
	"zoomer/internal/ingest"
	"zoomer/internal/partition"
	"zoomer/internal/rng"
)

// ingestRecord builds a deterministic edge batch: record i links node
// (i mod n) to node ((i*7+1) mod n) with a weight that dominates the
// base graph, so a draw from the source almost surely lands on the new
// neighbor once the append is visible.
func ingestRecord(g *graph.Graph, i int) []ingest.Edge {
	n := graph.NodeID(g.NumNodes())
	src := graph.NodeID(i) % n
	dst := (src*7 + 1) % n
	if dst == src {
		dst = (dst + 1) % n
	}
	return []ingest.Edge{{Src: src, Dst: dst, Type: graph.Click, Weight: float32(100 + i)}}
}

// hasEdge reports whether the adjacency of src includes dst.
func hasEdge(adj []graph.Edge, dst graph.NodeID) bool {
	for _, e := range adj {
		if e.To == dst {
			return true
		}
	}
	return false
}

// An Engine routed over TCP must accept appends, route them to the
// owning shards by epoch, and serve reads that are bit-identical to a
// local engine fed the same records — the loopback-equivalence pin
// extended to the write path.
func TestRemoteAppendRoundTrip(t *testing.T) {
	g := buildGraph(t)
	const shards = 2
	_, cluster := startCluster(t, g, shards, partition.Hash, [][]int{{0, 1}}, 1)
	remote := cluster.Engine
	local := engine.New(g, engine.Config{Shards: shards, Replicas: 1})

	var batch []ingest.Edge
	for i := 0; i < 24; i++ {
		batch = append(batch, ingestRecord(g, i)...)
	}
	if n, err := remote.Append(batch); err != nil || n != len(batch) {
		t.Fatalf("remote append: %d/%d edges, err %v", n, len(batch), err)
	}
	if n, err := local.Append(batch); err != nil || n != len(batch) {
		t.Fatalf("local append: %d/%d edges, err %v", n, len(batch), err)
	}

	for _, e := range batch {
		if adj := remote.Neighbors(e.Src); !hasEdge(adj, e.Dst) {
			t.Fatalf("appended edge %d->%d missing from remote adjacency %v", e.Src, e.Dst, adj)
		}
	}

	// Draw equivalence over the touched nodes: remote delta-aware
	// sampling must match the local engine draw for draw.
	rl, rr := rng.New(99), rng.New(99)
	want := make([]graph.NodeID, 8)
	got := make([]graph.NodeID, 8)
	for _, e := range batch {
		nl := local.SampleNeighborsInto(e.Src, want, rl)
		nr := remote.SampleNeighborsInto(e.Src, got, rr)
		if nl != nr {
			t.Fatalf("node %d: draw count %d remote vs %d local", e.Src, nr, nl)
		}
		for i := 0; i < nl; i++ {
			if want[i] != got[i] {
				t.Fatalf("node %d draw %d: remote %d, local %d", e.Src, i, got[i], want[i])
			}
		}
	}

	// The ingest rows travel in the v4 epoch response and surface
	// through the engine facet.
	if err := cluster.Refresh(); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	rows := remote.IngestStats()
	if len(rows) != shards {
		t.Fatalf("ingest stats: %d rows, want %d", len(rows), shards)
	}
	var deltaEdges uint64
	for _, st := range rows {
		// One Append call = one record per owner shard, so each shard's
		// sequence is exactly 1; the edges spread across both.
		if st.Seq != 1 {
			t.Fatalf("shard %d: seq %d, want 1", st.Shard, st.Seq)
		}
		deltaEdges += st.DeltaEdges
	}
	if int(deltaEdges) != len(batch) {
		t.Fatalf("total delta edges %d, want %d", deltaEdges, len(batch))
	}
}

// The wire op itself is idempotent: re-sending an applied sequence
// answers dup with the high-water mark, skipping ahead answers gap, and
// a cold client stub resynchronizes off those answers without ever
// double-applying.
func TestAppendIdempotencyAndResync(t *testing.T) {
	g := buildGraph(t)
	_, addr := startServer(t, g, ServerConfig{Shards: 1, Strategy: partition.Hash, Replicas: 1})
	cl := NewClient(addr)
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.Info(); err != nil {
		t.Fatalf("handshake: %v", err)
	}

	edges := ingestRecord(g, 3)
	res, last, err := cl.appendOnce(0, 1, edges, false)
	if err != nil || res != appendApplied || last != 1 {
		t.Fatalf("first append: res %d last %d err %v", res, last, err)
	}
	// Same sequence again: a lost-ack retry must be a no-op.
	res, last, err = cl.appendOnce(0, 1, edges, false)
	if err != nil || res != appendDup || last != 1 {
		t.Fatalf("dup append: res %d last %d err %v", res, last, err)
	}
	// Skipping ahead must be refused with the mark the server is at.
	res, last, err = cl.appendOnce(0, 5, edges, false)
	if err != nil || res != appendGap || last != 1 {
		t.Fatalf("gap append: res %d last %d err %v", res, last, err)
	}

	// A fresh stub has no idea the shard is at 1: it probes with 1, reads
	// the dup answer, resynchronizes and lands the record at 2.
	rs := NewRemoteShard(cl, 0, g.NumNodes(), 0)
	seq, err := rs.AppendEdges(ingestRecord(g, 4))
	if err != nil || seq != 2 {
		t.Fatalf("cold-cache append: seq %d err %v", seq, err)
	}
	// The warmed cache goes straight to 3.
	seq, err = rs.AppendEdges(ingestRecord(g, 5))
	if err != nil || seq != 3 {
		t.Fatalf("warm-cache append: seq %d err %v", seq, err)
	}

	// Validation failures are typed and permanent — no retry loop, no WAL
	// record, no sequence burned — and the engine.ErrBadAppend sentinel
	// survives the wire (the gateway's 400 mapping depends on it).
	if _, err := rs.AppendEdges([]ingest.Edge{{Src: 0, Dst: 1, Type: graph.Click, Weight: -1}}); !errors.Is(err, engine.ErrBadAppend) {
		t.Fatalf("negative-weight append: got %v, want errors.Is ErrBadAppend", err)
	}
	seq, err = rs.AppendEdges(ingestRecord(g, 6))
	if err != nil || seq != 4 {
		t.Fatalf("append after rejected record: seq %d err %v", seq, err)
	}
}

// A v4 client dialing a v3 server must fail loudly naming BOTH versions,
// so a skewed rollout reads as "upgrade the server", not a mystery
// timeout. Extends the TestVersionMismatch* family.
func TestVersionSkewOldServerNamesBothVersions(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, prefaceLen)
				if _, err := io.ReadFull(c, buf); err == nil {
					// A v3 server echoes its own preface before rejecting.
					c.Write(appendPreface(buf[:0], 3))
				}
			}()
		}
	}()

	cl := NewClientWith(ln.Addr().String(), ClientConfig{Timeout: 2 * time.Second})
	defer cl.Close()
	_, err = cl.Info()
	if err == nil {
		t.Fatalf("v4 client accepted v3 server")
	}
	msg := err.Error()
	if !strings.Contains(msg, "version mismatch") || !strings.Contains(msg, "v3") || !strings.Contains(msg, "v4") {
		t.Fatalf("skew error must name both versions, got: %v", err)
	}
}

// The reverse direction: a v3 client (simulated with a raw preface)
// hitting a v4 server gets an error frame naming both versions before
// the connection drops.
func TestVersionSkewOldClientNamesBothVersions(t *testing.T) {
	g := buildGraph(t)
	_, addr := startServer(t, g, ServerConfig{Shards: 1, Strategy: partition.Hash, Replicas: 1})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write(appendPreface(nil, 3)); err != nil {
		t.Fatalf("write preface: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	var fs frameScratch
	body, err := fs.readFrame(conn)
	if err != nil {
		t.Fatalf("v3 client got no error frame, just %v", err)
	}
	if len(body) == 0 || body[0] != statusErr {
		t.Fatalf("v3 client got a non-error reply (% x)", body)
	}
	msg := string(body[1:])
	if !strings.Contains(msg, "version mismatch") || !strings.Contains(msg, "v3") || !strings.Contains(msg, "v4") {
		t.Fatalf("skew error must name both versions, got: %q", msg)
	}
}

// startDurableServer starts an advertising server whose owned shards
// journal to walDir with fsync on — the production write-path shape.
func startDurableServer(t testing.TB, g *graph.Graph, shards int, owned []int, walDir string) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	s := NewServer(g, ServerConfig{
		Shards: shards, Strategy: partition.Hash, Owned: owned,
		Replicas: 1, Advertise: addr, WALDir: walDir, Fsync: true,
	})
	s.Start(ln)
	return s, addr
}

// The crash-recovery acceptance pin: a server that vanishes mid-stream
// without any shutdown courtesy must, on restart over the same WAL
// directory, reconstruct the exact delta state — draws bit-identical to
// a local engine fed the same records. (True kill -9 equivalence of the
// log format itself is pinned by ingest's TestWALCrashRecoveryEquivalence;
// this layer proves the server replays what the log holds.)
func TestAppendRecoveryAfterRestart(t *testing.T) {
	g := buildGraph(t)
	walDir := t.TempDir()
	srv, addr := startDurableServer(t, g, 1, nil, walDir)

	cl := NewClient(addr)
	rs := NewRemoteShard(cl, 0, g.NumNodes(), 0)
	const records = 30
	var all []ingest.Edge
	for i := 0; i < records; i++ {
		edges := ingestRecord(g, i)
		all = append(all, edges...)
		if seq, err := rs.AppendEdges(edges); err != nil || seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d err %v", i, seq, err)
		}
	}
	cl.Close()

	// Crash: drop the server on the floor. No Close, no WAL courtesy —
	// the acknowledged records must already be durable.
	abandonServer(srv)

	srv2, addr2 := startDurableServer(t, g, 1, nil, walDir)
	t.Cleanup(func() { srv2.Close() })
	rows := srv2.IngestStats()
	if len(rows) != 1 || rows[0].Seq != records {
		t.Fatalf("after replay: stats %+v, want seq %d", rows, records)
	}

	local := engine.New(g, engine.Config{Shards: 1, Replicas: 1})
	if n, err := local.Append(all); err != nil || n != len(all) {
		t.Fatalf("local control append: %d err %v", n, err)
	}

	cluster, err := DialCluster(addr2)
	if err != nil {
		t.Fatalf("dial restarted server: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	remote := cluster.Engine
	rl, rr := rng.New(7), rng.New(7)
	want := make([]graph.NodeID, 8)
	got := make([]graph.NodeID, 8)
	for _, e := range all {
		nl := local.SampleNeighborsInto(e.Src, want, rl)
		nr := remote.SampleNeighborsInto(e.Src, got, rr)
		if nl != nr {
			t.Fatalf("node %d: draw count %d recovered vs %d control", e.Src, nr, nl)
		}
		for i := 0; i < nl; i++ {
			if want[i] != got[i] {
				t.Fatalf("node %d draw %d: recovered %d, control %d", e.Src, i, got[i], want[i])
			}
		}
	}

	// The restarted server continues the sequence, not a fresh one: a
	// cold stub resyncs to records+1.
	cl2 := NewClient(addr2)
	t.Cleanup(func() { cl2.Close() })
	rs2 := NewRemoteShard(cl2, 0, g.NumNodes(), 0)
	if seq, err := rs2.AppendEdges(ingestRecord(g, records)); err != nil || seq != records+1 {
		t.Fatalf("post-restart append: seq %d err %v", seq, err)
	}
}

// The serving-tier discipline under a writer crash, extending the
// TestRollingUpgrade rules to the write path: with a 2-way replica
// group ingesting a live stream, killing one replica mid-stream must
// cost readers nothing — zero failed reads while the survivor keeps
// accepting writes and the victim restarts from its WAL with every
// record it ever acknowledged.
func TestServingSurvivesWriterCrash(t *testing.T) {
	g := buildGraph(t)
	dirA, dirB := t.TempDir(), t.TempDir()
	srvA, addrA := startDurableServer(t, g, 1, []int{0}, dirA)
	srvB, addrB := startDurableServer(t, g, 1, []int{0}, dirB)
	t.Cleanup(func() { srvB.Close() })
	srvA.AddMembers(addrB)
	srvB.AddMembers(addrA)

	cluster, err := DialCluster(addrA, addrB)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	remote := cluster.Engine

	// Continuous reader: every draw must succeed for the full run.
	var failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rng.New(1)
		out := make([]graph.NodeID, 8)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := graph.NodeID(i % g.NumNodes())
			if _, err := remote.TrySampleNeighborsInto(id, out, r); err != nil {
				failed.Add(1)
			}
		}
	}()

	const total, crashAt = 60, 20
	for i := 0; i < total; i++ {
		if i == crashAt {
			// Kill A mid-stream. Its WAL holds everything it acknowledged;
			// the log's kill -9 torn-tail behavior is pinned at the ingest
			// layer, so severing the server is the rpc-layer crash shape.
			srvA.Close()
		}
		edges := ingestRecord(g, i)
		if n, err := remote.Append(edges); err != nil || n != len(edges) {
			t.Fatalf("append %d through crash: %d err %v", i, n, err)
		}
	}

	// The survivor holds the full stream: every record either landed on B
	// directly or arrived as a fan-out copy from A before the crash.
	rowsB := srvB.IngestStats()
	if len(rowsB) != 1 || rowsB[0].Seq != total {
		t.Fatalf("survivor stats %+v, want seq %d", rowsB, total)
	}

	// Restart A over its WAL: it recovers exactly its durable prefix and
	// rejoins. It lags the survivor until re-fed (replica write lag — see
	// OPERATIONS.md); what it must never do is invent or lose records.
	srvA2, _ := startDurableServer(t, g, 1, []int{0}, dirA)
	t.Cleanup(func() { srvA2.Close() })
	rowsA := srvA2.IngestStats()
	if len(rowsA) != 1 {
		t.Fatalf("restarted stats %+v", rowsA)
	}
	if rowsA[0].Seq < crashAt || rowsA[0].Seq > total {
		t.Fatalf("restarted server recovered seq %d, want within [%d,%d]", rowsA[0].Seq, crashAt, total)
	}

	close(stop)
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d reads failed during writer crash and recovery", n)
	}
}

// A full WAL directory must fail appends typed without wedging the read
// path — the disk-full satellite at the rpc layer. /dev/full makes every
// write return ENOSPC on Linux.
func TestAppendWALWriteFailureKeepsServing(t *testing.T) {
	g := buildGraph(t)
	walDir := t.TempDir()
	srv, addr := startDurableServer(t, g, 1, nil, walDir)
	t.Cleanup(func() { srv.Close() })

	cl := NewClient(addr)
	t.Cleanup(func() { cl.Close() })
	rs := NewRemoteShard(cl, 0, g.NumNodes(), 0)
	if seq, err := rs.AppendEdges(ingestRecord(g, 0)); err != nil || seq != 1 {
		t.Fatalf("seed append: seq %d err %v", seq, err)
	}

	// Sever the WAL under the server: closing the journal makes every
	// write fail typed, the same caller-visible shape as a full or
	// yanked disk.
	failWAL(t, srv, 0)

	if _, err := rs.AppendEdges(ingestRecord(g, 1)); err == nil {
		t.Fatalf("append succeeded with a dead WAL")
	}

	// Reads keep flowing: the durability fault stays on the write path.
	cluster, err := DialCluster(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	r := rng.New(5)
	out := make([]graph.NodeID, 8)
	for i := 0; i < 50; i++ {
		if _, err := cluster.Engine.TrySampleNeighborsInto(graph.NodeID(i%g.NumNodes()), out, r); err != nil {
			t.Fatalf("read %d failed after WAL fault: %v", i, err)
		}
	}
}

// failWAL force-closes the shard's journal so the next write fails
// typed — the test stand-in for ENOSPC without needing /dev/full.
func failWAL(t testing.TB, s *Server, shard int) {
	t.Helper()
	ing := s.ingestFor(shard)
	if ing == nil || ing.wal == nil {
		t.Fatalf("shard %d has no WAL to fail", shard)
	}
	if err := ing.wal.Close(); err != nil {
		t.Fatalf("close WAL: %v", err)
	}
}

// abandonServer severs the listener and every live connection WITHOUT
// closing the WALs or draining handlers — the closest in-process
// stand-in for kill -9 that still lets the test reuse the WAL directory
// (the log format's true SIGKILL behavior is pinned by the ingest
// package's chaos suite).
func abandonServer(s *Server) {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.ln = nil
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}
