package graph

import (
	"testing"
	"testing/quick"

	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	u := b.AddNode(User, []int32{1}, tensor.Vec{1, 0})
	q := b.AddNode(Query, []int32{2}, tensor.Vec{0, 1})
	i := b.AddNode(Item, []int32{3}, tensor.Vec{1, 1})
	b.AddUndirected(u, q, Click, 1)
	b.AddUndirected(q, i, Click, 2)
	b.AddUndirected(u, i, Session, 0.5)
	return b.Build()
}

func TestBasicTopology(t *testing.T) {
	g := buildTriangle(t)
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if g.Type(0) != User || g.Type(1) != Query || g.Type(2) != Item {
		t.Fatal("node types wrong")
	}
	if g.Degree(0) != 2 || g.Degree(1) != 2 || g.Degree(2) != 2 {
		t.Fatal("degrees wrong")
	}
	if g.NumNodesOfType(User) != 1 || g.NumNodesOfType(Item) != 1 {
		t.Fatal("per-type counts wrong")
	}
	if g.NumEdgesOfType(Click) != 4 || g.NumEdgesOfType(Session) != 2 {
		t.Fatal("per-edge-type counts wrong")
	}
}

func TestFeaturesAndContent(t *testing.T) {
	g := buildTriangle(t)
	if g.Features(1)[0] != 2 {
		t.Fatal("features lost")
	}
	if g.Content(2)[0] != 1 || g.Content(2)[1] != 1 {
		t.Fatal("content lost")
	}
	if g.ContentDim() != 2 {
		t.Fatalf("content dim = %d", g.ContentDim())
	}
}

func TestLocalIndex(t *testing.T) {
	b := NewBuilder()
	b.AddNode(User, nil, nil) // user 0
	b.AddNode(Item, nil, nil) // item 0
	b.AddNode(User, nil, nil) // user 1
	b.AddNode(Item, nil, nil) // item 1
	b.AddNode(Item, nil, nil) // item 2
	g := b.Build()
	wants := []int32{0, 0, 1, 1, 2}
	for id, want := range wants {
		if g.LocalIndex(NodeID(id)) != want {
			t.Fatalf("LocalIndex(%d) = %d, want %d", id, g.LocalIndex(NodeID(id)), want)
		}
	}
}

func TestDuplicateEdgesMerge(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(User, nil, nil)
	c := b.AddNode(Item, nil, nil)
	// Three clicks on the same item must merge into weight 3.
	b.AddEdge(a, c, Click, 1)
	b.AddEdge(a, c, Click, 1)
	b.AddEdge(a, c, Click, 1)
	// A similarity edge to the same node stays separate (different type).
	b.AddEdge(a, c, Similarity, 0.4)
	g := b.Build()
	nbrs := g.Neighbors(a)
	if len(nbrs) != 2 {
		t.Fatalf("expected 2 merged edges, got %d: %v", len(nbrs), nbrs)
	}
	var clickW, simW float32
	for _, e := range nbrs {
		switch e.Type {
		case Click:
			clickW = e.Weight
		case Similarity:
			simW = e.Weight
		}
	}
	if clickW != 3 {
		t.Fatalf("merged click weight = %v, want 3", clickW)
	}
	if simW != 0.4 {
		t.Fatalf("similarity weight = %v", simW)
	}
}

func TestNeighborsByType(t *testing.T) {
	b := NewBuilder()
	q := b.AddNode(Query, nil, nil)
	u1 := b.AddNode(User, nil, nil)
	u2 := b.AddNode(User, nil, nil)
	i1 := b.AddNode(Item, nil, nil)
	b.AddEdge(q, u1, Click, 1)
	b.AddEdge(q, u2, Click, 1)
	b.AddEdge(q, i1, Click, 1)
	g := b.Build()
	byType := g.NeighborsByType(q)
	if len(byType[User]) != 2 || len(byType[Item]) != 1 || len(byType[Query]) != 0 {
		t.Fatalf("NeighborsByType wrong: %v", byType)
	}
}

func TestNodesOfType(t *testing.T) {
	g := buildTriangle(t)
	items := g.NodesOfType(Item)
	if len(items) != 1 || items[0] != 2 {
		t.Fatalf("NodesOfType(Item) = %v", items)
	}
}

func TestStats(t *testing.T) {
	g := buildTriangle(t)
	s := g.Stats()
	if s.Nodes != 3 || s.Edges != 6 || s.MaxDegree != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MeanDegree != 2 {
		t.Fatalf("mean degree = %v", s.MeanDegree)
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder()
	b.AddNode(User, nil, nil)
	b.Build()
	mustPanic(t, func() { b.AddNode(User, nil, nil) })
	mustPanic(t, func() { b.AddEdge(0, 0, Click, 1) })
	mustPanic(t, func() { b.Build() })

	b2 := NewBuilder()
	b2.AddNode(User, nil, nil)
	mustPanic(t, func() { b2.AddEdge(0, 5, Click, 1) })
	mustPanic(t, func() { b2.AddEdge(0, 0, Click, -1) })

	b3 := NewBuilder()
	b3.AddNode(User, nil, tensor.Vec{1, 2})
	mustPanic(t, func() { b3.AddNode(User, nil, tensor.Vec{1, 2, 3}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestTypeStrings(t *testing.T) {
	if User.String() != "user" || Query.String() != "query" || Item.String() != "item" {
		t.Fatal("node type strings wrong")
	}
	if Click.String() != "click" || Session.String() != "session" || Similarity.String() != "similarity" {
		t.Fatal("edge type strings wrong")
	}
	if NodeType(9).String() == "" || EdgeType(9).String() == "" {
		t.Fatal("unknown types must still print")
	}
}

// Property: for random graphs, CSR preserves every (merged) edge and
// offsets are monotone.
func TestCSRInvariants(t *testing.T) {
	r := rng.New(77)
	if err := quick.Check(func(seed uint32) bool {
		n := 2 + int(seed%30)
		b := NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode(NodeType(i%NumNodeTypes), nil, nil)
		}
		m := r.Intn(4 * n)
		type key struct {
			from, to NodeID
			et       EdgeType
		}
		want := map[key]float32{}
		for i := 0; i < m; i++ {
			from := NodeID(r.Intn(n))
			to := NodeID(r.Intn(n))
			et := EdgeType(r.Intn(NumEdgeTypes))
			w := r.Float32()
			b.AddEdge(from, to, et, w)
			want[key{from, to, et}] += w
		}
		g := b.Build()
		// Every merged edge present exactly once with summed weight.
		got := map[key]float32{}
		for id := 0; id < n; id++ {
			prev := key{-1, -1, 0}
			for _, e := range g.Neighbors(NodeID(id)) {
				k := key{NodeID(id), e.To, e.Type}
				if k == prev {
					return false // duplicate not merged
				}
				prev = k
				got[k] = e.Weight
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, w := range want {
			gw, ok := got[k]
			if !ok {
				return false
			}
			diff := gw - w
			if diff < -1e-4 || diff > 1e-4 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild10K(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		bd := NewBuilder()
		for j := 0; j < 10000; j++ {
			bd.AddNode(NodeType(j%NumNodeTypes), nil, nil)
		}
		for j := 0; j < 50000; j++ {
			bd.AddEdge(NodeID(r.Intn(10000)), NodeID(r.Intn(10000)), EdgeType(r.Intn(NumEdgeTypes)), 1)
		}
		_ = bd.Build()
	}
}
