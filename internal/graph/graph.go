// Package graph implements the heterogeneous retrieval graph of the paper
// (§II): typed nodes (user, query, item), typed weighted edges
// (interaction edges from clicks and sessions, similarity edges from
// MinHash Jaccard), per-node sparse categorical features for embedding
// lookups, and a dense content vector used by the focal-biased sampler's
// relevance score (eq. 5).
//
// Storage is CSR (compressed sparse row) built once by a Builder and
// immutable afterwards, which is what allows the engine package to shard
// and replicate it freely.
package graph

import (
	"fmt"
	"sort"

	"zoomer/internal/tensor"
)

// NodeType identifies the class of a node in the heterogeneous graph.
type NodeType uint8

// The node types of the Taobao retrieval graph. MovieLens-mode graphs
// reuse them as User/Tag(Query)/Movie(Item).
const (
	User NodeType = iota
	Query
	Item
	numNodeTypes
)

// NumNodeTypes is the count of distinct node types.
const NumNodeTypes = int(numNodeTypes)

// String returns the lowercase name of the node type.
func (t NodeType) String() string {
	switch t {
	case User:
		return "user"
	case Query:
		return "query"
	case Item:
		return "item"
	default:
		return fmt.Sprintf("nodetype(%d)", uint8(t))
	}
}

// EdgeType identifies the relation an edge encodes.
type EdgeType uint8

// Edge types per the paper's graph-construction rules: Click links a user
// to a query/item it interacted with and clicked items to their query;
// Session links adjacently clicked items; Similarity links content-similar
// nodes with Jaccard weights.
const (
	Click EdgeType = iota
	Session
	Similarity
	numEdgeTypes
)

// NumEdgeTypes is the count of distinct edge types.
const NumEdgeTypes = int(numEdgeTypes)

// String returns the lowercase name of the edge type.
func (t EdgeType) String() string {
	switch t {
	case Click:
		return "click"
	case Session:
		return "session"
	case Similarity:
		return "similarity"
	default:
		return fmt.Sprintf("edgetype(%d)", uint8(t))
	}
}

// NodeID is a graph-global node identifier.
type NodeID = int32

// Edge is one adjacency entry: the neighbor, the relation type and a
// non-negative weight (click counts or similarity scores).
type Edge struct {
	To     NodeID
	Type   EdgeType
	Weight float32
}

// Graph is an immutable heterogeneous graph in CSR form.
type Graph struct {
	types    []NodeType
	offsets  []int32 // len = numNodes+1
	edges    []Edge
	features [][]int32    // sparse categorical feature ids per node
	content  []tensor.Vec // dense content vector per node (may be nil rows)

	countByType [NumNodeTypes]int
	localIndex  []int32 // index of node within its type (0-based)
	contentDim  int
	edgesByType [NumEdgeTypes]int
}

// NumNodes returns the total node count.
func (g *Graph) NumNodes() int { return len(g.types) }

// NumEdges returns the total directed edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumNodesOfType returns the node count for one type.
func (g *Graph) NumNodesOfType(t NodeType) int { return g.countByType[t] }

// NumEdgesOfType returns the directed edge count for one edge type.
func (g *Graph) NumEdgesOfType(t EdgeType) int { return g.edgesByType[t] }

// Type returns the node type of id.
func (g *Graph) Type(id NodeID) NodeType { return g.types[id] }

// LocalIndex returns the 0-based index of id among nodes of its type;
// embedding tables are per-type, so this is the embedding row.
func (g *Graph) LocalIndex(id NodeID) int32 { return g.localIndex[id] }

// Degree returns the out-degree of id.
func (g *Graph) Degree(id NodeID) int {
	return int(g.offsets[id+1] - g.offsets[id])
}

// Neighbors returns a read-only view of id's adjacency list.
func (g *Graph) Neighbors(id NodeID) []Edge {
	return g.edges[g.offsets[id]:g.offsets[id+1]]
}

// Offsets returns the CSR row-offset array (len NumNodes+1): node id's
// adjacency occupies Edges()[Offsets()[id]:Offsets()[id+1]]. The view is
// shared and must not be mutated; it exists so the engine can lay
// per-edge auxiliary state (alias tables) out flat and CSR-aligned.
func (g *Graph) Offsets() []int32 { return g.offsets }

// Edges returns the contiguous CSR edge array (len NumEdges), aligned
// with Offsets. The view is shared and must not be mutated.
func (g *Graph) Edges() []Edge { return g.edges }

// EdgeRange returns the [lo, hi) bounds of id's adjacency within Edges.
func (g *Graph) EdgeRange(id NodeID) (lo, hi int32) {
	return g.offsets[id], g.offsets[id+1]
}

// Features returns the sparse categorical feature ids of id.
func (g *Graph) Features(id NodeID) []int32 { return g.features[id] }

// Content returns the dense content vector of id (nil if absent).
func (g *Graph) Content(id NodeID) tensor.Vec { return g.content[id] }

// ContentDim returns the dimensionality of content vectors.
func (g *Graph) ContentDim() int { return g.contentDim }

// NodesOfType returns all node ids of the given type, in id order.
func (g *Graph) NodesOfType(t NodeType) []NodeID {
	out := make([]NodeID, 0, g.countByType[t])
	for id, nt := range g.types {
		if nt == t {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// NeighborsByType partitions id's neighbors by neighbor node type.
// The attention module (eq. 8–11) aggregates per neighbor type; this is
// its access path.
func (g *Graph) NeighborsByType(id NodeID) [NumNodeTypes][]Edge {
	var out [NumNodeTypes][]Edge
	for _, e := range g.Neighbors(id) {
		t := g.types[e.To]
		out[t] = append(out[t], e)
	}
	return out
}

// Stats summarizes the graph for logging and the graphgen tool.
type Stats struct {
	Nodes       int
	Edges       int
	NodesByType [NumNodeTypes]int
	EdgesByType [NumEdgeTypes]int
	MaxDegree   int
	MeanDegree  float64
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	for t := 0; t < NumNodeTypes; t++ {
		s.NodesByType[t] = g.countByType[t]
	}
	for t := 0; t < NumEdgeTypes; t++ {
		s.EdgesByType[t] = g.edgesByType[t]
	}
	for id := 0; id < g.NumNodes(); id++ {
		d := g.Degree(NodeID(id))
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if g.NumNodes() > 0 {
		s.MeanDegree = float64(g.NumEdges()) / float64(g.NumNodes())
	}
	return s
}

// Builder accumulates nodes and edges and freezes them into a Graph.
// It is not safe for concurrent use.
type Builder struct {
	types      []NodeType
	features   [][]int32
	content    []tensor.Vec
	srcs       []NodeID
	adds       []Edge
	frozen     bool
	contentDim int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddNode appends a node and returns its id. features are sparse
// categorical ids (embedding rows are resolved per type elsewhere);
// content is the dense content vector used for relevance scoring and may
// be nil.
func (b *Builder) AddNode(t NodeType, features []int32, content tensor.Vec) NodeID {
	if b.frozen {
		panic("graph: AddNode after Build")
	}
	id := NodeID(len(b.types))
	b.types = append(b.types, t)
	b.features = append(b.features, features)
	b.content = append(b.content, content)
	if len(content) > 0 {
		if b.contentDim == 0 {
			b.contentDim = len(content)
		} else if b.contentDim != len(content) {
			panic(fmt.Sprintf("graph: content dim %d != %d", len(content), b.contentDim))
		}
	}
	return id
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.types) }

// AddEdge appends a directed edge. Weight must be non-negative.
func (b *Builder) AddEdge(from, to NodeID, t EdgeType, weight float32) {
	if b.frozen {
		panic("graph: AddEdge after Build")
	}
	if weight < 0 {
		panic("graph: negative edge weight")
	}
	if int(from) >= len(b.types) || int(to) >= len(b.types) || from < 0 || to < 0 {
		panic(fmt.Sprintf("graph: edge (%d,%d) references unknown node (have %d)", from, to, len(b.types)))
	}
	b.srcs = append(b.srcs, from)
	b.adds = append(b.adds, Edge{To: to, Type: t, Weight: weight})
}

// AddUndirected appends the edge in both directions.
func (b *Builder) AddUndirected(a, c NodeID, t EdgeType, weight float32) {
	b.AddEdge(a, c, t, weight)
	b.AddEdge(c, a, t, weight)
}

// Build freezes the builder into an immutable CSR graph. Parallel edges
// between the same pair with the same type are merged by summing weights
// (repeated clicks accumulate, matching the paper's click-count weights).
func (b *Builder) Build() *Graph {
	if b.frozen {
		panic("graph: Build called twice")
	}
	b.frozen = true
	n := len(b.types)
	g := &Graph{
		types:      b.types,
		features:   b.features,
		content:    b.content,
		contentDim: b.contentDim,
		localIndex: make([]int32, n),
	}
	var perType [NumNodeTypes]int32
	for id, t := range b.types {
		g.localIndex[id] = perType[t]
		perType[t]++
		g.countByType[t]++
	}

	// Counting sort edges into CSR.
	counts := make([]int32, n+1)
	for _, s := range b.srcs {
		counts[s+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	g.offsets = counts
	edges := make([]Edge, len(b.adds))
	cursor := make([]int32, n)
	copy(cursor, g.offsets[:n])
	for i, s := range b.srcs {
		edges[cursor[s]] = b.adds[i]
		cursor[s]++
	}

	// Merge duplicates per node: sort each adjacency run by (To, Type) and
	// coalesce, then compact the edge array and rebuild offsets.
	out := edges[:0]
	newOffsets := make([]int32, n+1)
	for id := 0; id < n; id++ {
		lo, hi := g.offsets[id], g.offsets[id+1]
		run := edges[lo:hi]
		sort.Slice(run, func(i, j int) bool {
			if run[i].To != run[j].To {
				return run[i].To < run[j].To
			}
			return run[i].Type < run[j].Type
		})
		start := len(out)
		for _, e := range run {
			if m := len(out); m > start && out[m-1].To == e.To && out[m-1].Type == e.Type {
				out[m-1].Weight += e.Weight
			} else {
				out = append(out, e)
			}
		}
		newOffsets[id+1] = int32(len(out))
	}
	g.edges = out
	g.offsets = newOffsets
	for _, e := range g.edges {
		g.edgesByType[e.Type]++
	}
	// Release builder staging.
	b.srcs, b.adds = nil, nil
	return g
}
