package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The on-disk format of §VI ("the graphs are stored using compact
// binary-format files"): a magic header, node section (types, features,
// content vectors), then the CSR arrays. All integers are little-endian;
// content vectors are float32.
const (
	serialMagic   = 0x5a4d5247 // "ZMRG"
	serialVersion = 1
)

// WriteTo serializes the graph. It returns the number of bytes written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(vs ...uint32) error {
		for _, v := range vs {
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], v)
			m, err := bw.Write(buf[:])
			n += int64(m)
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := put(serialMagic, serialVersion, uint32(g.NumNodes()), uint32(len(g.edges)), uint32(g.contentDim)); err != nil {
		return n, err
	}
	// Node types.
	for _, t := range g.types {
		if err := put(uint32(t)); err != nil {
			return n, err
		}
	}
	// Features: length-prefixed id lists.
	for _, f := range g.features {
		if err := put(uint32(len(f))); err != nil {
			return n, err
		}
		for _, id := range f {
			if err := put(uint32(id)); err != nil {
				return n, err
			}
		}
	}
	// Content: presence flag + values.
	for _, c := range g.content {
		if c == nil {
			if err := put(0); err != nil {
				return n, err
			}
			continue
		}
		if err := put(1); err != nil {
			return n, err
		}
		for _, v := range c {
			if err := put(math.Float32bits(v)); err != nil {
				return n, err
			}
		}
	}
	// CSR offsets and edges.
	for _, off := range g.offsets {
		if err := put(uint32(off)); err != nil {
			return n, err
		}
	}
	for _, e := range g.edges {
		if err := put(uint32(e.To), uint32(e.Type), math.Float32bits(e.Weight)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read deserializes a graph written by WriteTo.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	get := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	magic, err := get()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if magic != serialMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	version, err := get()
	if err != nil {
		return nil, err
	}
	if version != serialVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	numNodes, err := get()
	if err != nil {
		return nil, err
	}
	numEdges, err := get()
	if err != nil {
		return nil, err
	}
	contentDim, err := get()
	if err != nil {
		return nil, err
	}

	b := NewBuilder()
	// Stage nodes first (types read in order), then content/features.
	types := make([]NodeType, numNodes)
	for i := range types {
		v, err := get()
		if err != nil {
			return nil, err
		}
		if v >= uint32(numNodeTypes) {
			return nil, fmt.Errorf("graph: invalid node type %d", v)
		}
		types[i] = NodeType(v)
	}
	features := make([][]int32, numNodes)
	for i := range features {
		ln, err := get()
		if err != nil {
			return nil, err
		}
		if ln > 1<<20 {
			return nil, fmt.Errorf("graph: implausible feature count %d", ln)
		}
		if ln > 0 {
			f := make([]int32, ln)
			for j := range f {
				v, err := get()
				if err != nil {
					return nil, err
				}
				f[j] = int32(v)
			}
			features[i] = f
		}
	}
	for i := uint32(0); i < numNodes; i++ {
		present, err := get()
		if err != nil {
			return nil, err
		}
		var content []float32
		if present == 1 {
			content = make([]float32, contentDim)
			for j := range content {
				v, err := get()
				if err != nil {
					return nil, err
				}
				content[j] = math.Float32frombits(v)
			}
		}
		b.AddNode(types[i], features[i], content)
	}

	offsets := make([]int32, numNodes+1)
	for i := range offsets {
		v, err := get()
		if err != nil {
			return nil, err
		}
		offsets[i] = int32(v)
	}
	if uint32(offsets[numNodes]) != numEdges {
		return nil, fmt.Errorf("graph: offset/edge mismatch %d vs %d", offsets[numNodes], numEdges)
	}
	for node := uint32(0); node < numNodes; node++ {
		for e := offsets[node]; e < offsets[node+1]; e++ {
			to, err := get()
			if err != nil {
				return nil, err
			}
			et, err := get()
			if err != nil {
				return nil, err
			}
			wbits, err := get()
			if err != nil {
				return nil, err
			}
			if to >= numNodes || et >= uint32(numEdgeTypes) {
				return nil, fmt.Errorf("graph: invalid edge %d -> %d type %d", node, to, et)
			}
			b.AddEdge(NodeID(node), NodeID(to), EdgeType(et), math.Float32frombits(wbits))
		}
	}
	return b.Build(), nil
}
