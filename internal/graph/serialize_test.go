package graph

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"zoomer/internal/rng"
	"zoomer/internal/tensor"
)

func randomGraph(seed uint64, n, m int) *Graph {
	r := rng.New(seed)
	b := NewBuilder()
	for i := 0; i < n; i++ {
		var feats []int32
		for j := 0; j < 1+r.Intn(4); j++ {
			feats = append(feats, int32(r.Intn(100)))
		}
		var content tensor.Vec
		if r.Float64() < 0.8 {
			content = tensor.Vec{r.Float32(), r.Float32() - 0.5, r.Float32() * 3}
		}
		b.AddNode(NodeType(i%NumNodeTypes), feats, content)
	}
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)), EdgeType(r.Intn(NumEdgeTypes)), r.Float32()+0.1)
	}
	return b.Build()
}

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	if a.ContentDim() != b.ContentDim() {
		t.Fatalf("content dim %d vs %d", a.ContentDim(), b.ContentDim())
	}
	for id := 0; id < a.NumNodes(); id++ {
		nid := NodeID(id)
		if a.Type(nid) != b.Type(nid) {
			t.Fatalf("node %d type mismatch", id)
		}
		af, bf := a.Features(nid), b.Features(nid)
		if len(af) != len(bf) {
			t.Fatalf("node %d feature count mismatch", id)
		}
		for j := range af {
			if af[j] != bf[j] {
				t.Fatalf("node %d feature %d mismatch", id, j)
			}
		}
		ac, bc := a.Content(nid), b.Content(nid)
		if (ac == nil) != (bc == nil) || len(ac) != len(bc) {
			t.Fatalf("node %d content presence mismatch", id)
		}
		for j := range ac {
			if ac[j] != bc[j] {
				t.Fatalf("node %d content %d mismatch", id, j)
			}
		}
		an, bn := a.Neighbors(nid), b.Neighbors(nid)
		if len(an) != len(bn) {
			t.Fatalf("node %d degree mismatch", id)
		}
		for j := range an {
			if an[j] != bn[j] {
				t.Fatalf("node %d edge %d mismatch: %v vs %v", id, j, an[j], bn[j])
			}
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	g := randomGraph(1, 50, 200)
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)
}

func TestSerializeEmptyFeaturesAndContent(t *testing.T) {
	b := NewBuilder()
	b.AddNode(User, nil, nil)
	b.AddNode(Item, []int32{7}, nil)
	g := b.Build()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a graph at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	g := randomGraph(2, 20, 60)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Any truncation must error, never panic or return a bogus graph.
	for _, cut := range []int{4, 9, len(full) / 2, len(full) - 3} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	g := randomGraph(3, 5, 10)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // corrupt version field
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestWriteToPropagatesWriterErrors(t *testing.T) {
	g := randomGraph(4, 10, 30)
	if _, err := g.WriteTo(failingWriter{}); err == nil {
		t.Fatal("writer error swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func BenchmarkSerialize(b *testing.B) {
	g := randomGraph(5, 5000, 40000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeserialize(b *testing.B) {
	g := randomGraph(6, 5000, 40000)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
