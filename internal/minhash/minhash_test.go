package minhash

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"zoomer/internal/rng"
)

func TestIdenticalSetsSimilarityOne(t *testing.T) {
	h := NewHasher(64, 1)
	a := h.Sign([]string{"red", "dress", "summer"})
	b := h.Sign([]string{"summer", "red", "dress"}) // order must not matter
	if s := Similarity(a, b); s != 1 {
		t.Fatalf("identical sets similarity = %v, want 1", s)
	}
}

func TestDisjointSetsNearZero(t *testing.T) {
	h := NewHasher(128, 2)
	a := h.Sign([]string{"phone", "huawei", "5g"})
	b := h.Sign([]string{"sofa", "leather", "brown"})
	if s := Similarity(a, b); s > 0.1 {
		t.Fatalf("disjoint sets similarity = %v, want ~0", s)
	}
}

func TestEmptySet(t *testing.T) {
	h := NewHasher(32, 3)
	empty := h.Sign(nil)
	nonEmpty := h.Sign([]string{"x"})
	if s := Similarity(empty, nonEmpty); s != 0 {
		t.Fatalf("empty-vs-nonempty similarity = %v, want 0", s)
	}
	// Two empties collide on the all-max sentinel: that is fine because
	// graph construction never links two featureless nodes; just check it
	// does not panic.
	_ = Similarity(empty, h.Sign(nil))
}

func TestEstimateTracksExactJaccard(t *testing.T) {
	h := NewHasher(256, 4)
	mk := func(lo, hi int) []string {
		out := make([]string, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, fmt.Sprintf("tok%d", i))
		}
		return out
	}
	cases := []struct{ aLo, aHi, bLo, bHi int }{
		{0, 100, 50, 150}, // Jaccard 50/150 = 1/3
		{0, 100, 75, 175}, // 25/175
		{0, 50, 0, 100},   // 50/100
		{0, 10, 5, 15},    // 5/15
	}
	for _, c := range cases {
		a, b := mk(c.aLo, c.aHi), mk(c.bLo, c.bHi)
		exact := ExactJaccard(a, b)
		est := Similarity(h.Sign(a), h.Sign(b))
		if math.Abs(est-exact) > 0.08 {
			t.Fatalf("estimate %v too far from exact %v for [%d,%d) vs [%d,%d)",
				est, exact, c.aLo, c.aHi, c.bLo, c.bHi)
		}
	}
}

func TestSignIDsMatchesSemantics(t *testing.T) {
	h := NewHasher(256, 5)
	a := h.SignIDs([]uint64{1, 2, 3, 4, 5, 6, 7, 8})
	b := h.SignIDs([]uint64{5, 6, 7, 8, 9, 10, 11, 12})
	est := Similarity(a, b)
	// Exact Jaccard is 4/12 = 1/3.
	if math.Abs(est-1.0/3) > 0.12 {
		t.Fatalf("id-based estimate %v too far from 1/3", est)
	}
	if s := Similarity(h.SignIDs([]uint64{9, 9, 9}), h.SignIDs([]uint64{9})); s != 1 {
		t.Fatalf("duplicate ids should not change the set: %v", s)
	}
}

// Property: similarity is symmetric and within [0,1].
func TestSimilarityProperties(t *testing.T) {
	h := NewHasher(64, 6)
	r := rng.New(7)
	if err := quick.Check(func(na, nb uint8) bool {
		a := make([]uint64, int(na%20))
		b := make([]uint64, int(nb%20))
		for i := range a {
			a[i] = r.Uint64() % 40
		}
		for i := range b {
			b[i] = r.Uint64() % 40
		}
		sa, sb := h.SignIDs(a), h.SignIDs(b)
		s1, s2 := Similarity(sa, sb), Similarity(sb, sa)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarityPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on signature length mismatch")
		}
	}()
	Similarity(make(Signature, 4), make(Signature, 8))
}

func TestExactJaccard(t *testing.T) {
	if j := ExactJaccard(nil, nil); j != 0 {
		t.Fatalf("Jaccard(∅,∅) = %v", j)
	}
	if j := ExactJaccard([]string{"a"}, []string{"a"}); j != 1 {
		t.Fatalf("Jaccard identical = %v", j)
	}
	if j := ExactJaccard([]string{"a", "b"}, []string{"b", "c"}); math.Abs(j-1.0/3) > 1e-12 {
		t.Fatalf("Jaccard = %v, want 1/3", j)
	}
	// Duplicates must not inflate.
	if j := ExactJaccard([]string{"a", "a", "b"}, []string{"b", "b", "c"}); math.Abs(j-1.0/3) > 1e-12 {
		t.Fatalf("Jaccard with dups = %v, want 1/3", j)
	}
}

func TestNewHasherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHasher(0) did not panic")
		}
	}()
	NewHasher(0, 1)
}

func BenchmarkSign20Tokens(b *testing.B) {
	h := NewHasher(64, 1)
	ids := make([]uint64, 20)
	for i := range ids {
		ids[i] = uint64(i * 977)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.SignIDs(ids)
	}
}
